package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/workload"
)

// DriftParams configures an evolving-workload simulation: a fixed user
// population whose specifications drift over time (see
// workload.Evolving), optionally with periodic image-split passes.
// This exercises the bloat dynamics of Section V — merged images
// accumulate packages no current job requests — and measures what
// pruning buys back.
type DriftParams struct {
	Repo       *pkggraph.Repo
	Alpha      float64
	CacheBytes int64
	Users      int
	Requests   int
	MaxInitial int
	Seed       int64
	// MutateProb overrides the population's drift rate when positive.
	MutateProb float64

	// PruneEvery runs a split pass every N requests (0 disables).
	PruneEvery int
	// PruneUtilization and PruneMinServed parameterize core.Prune.
	PruneUtilization float64
	PruneMinServed   int
}

func (p DriftParams) validate() error {
	if p.Repo == nil {
		return fmt.Errorf("sim: DriftParams.Repo is nil")
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("sim: alpha %v out of range", p.Alpha)
	}
	if p.Users < 1 || p.Requests < 1 || p.MaxInitial < 1 {
		return fmt.Errorf("sim: need users, requests and maxInitial >= 1")
	}
	if p.PruneEvery > 0 && (p.PruneUtilization <= 0 || p.PruneUtilization >= 1) {
		return fmt.Errorf("sim: PruneUtilization %v out of range (0,1)", p.PruneUtilization)
	}
	return nil
}

// DriftResult extends the run summary with split accounting.
type DriftResult struct {
	Result
	Splits      int64
	SplitsBytes int64 // bytes shed from images by splitting
}

// RunDrift simulates the drifting population against one manager.
func RunDrift(p DriftParams) (DriftResult, error) {
	if err := p.validate(); err != nil {
		return DriftResult{}, err
	}
	gen, err := workload.NewEvolving(p.Repo, p.Users, p.MaxInitial, p.Seed)
	if err != nil {
		return DriftResult{}, err
	}
	if p.MutateProb > 0 {
		gen.MutateProb = p.MutateProb
	}
	mgr, err := core.NewManager(p.Repo, core.Config{
		Alpha:    p.Alpha,
		Capacity: p.CacheBytes,
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return DriftResult{}, err
	}
	var out DriftResult
	for i := 0; i < p.Requests; i++ {
		if _, err := mgr.Request(gen.Next()); err != nil {
			return DriftResult{}, fmt.Errorf("sim: drift request %d: %w", i, err)
		}
		if p.PruneEvery > 0 && (i+1)%p.PruneEvery == 0 {
			splits, err := mgr.Prune(p.PruneUtilization, p.PruneMinServed)
			if err != nil {
				return DriftResult{}, err
			}
			for _, s := range splits {
				out.SplitsBytes += s.OldSize - s.NewSize
			}
		}
	}
	st := mgr.Stats()
	out.Result = Result{
		Alpha:               p.Alpha,
		Requests:            p.Requests,
		Stats:               st,
		Images:              mgr.Len(),
		TotalData:           mgr.TotalData(),
		UniqueData:          mgr.UniqueData(),
		CacheEfficiency:     mgr.CacheEfficiency(),
		ContainerEfficiency: st.MeanContainerEfficiency(),
	}
	out.Splits = st.Splits
	return out, nil
}
