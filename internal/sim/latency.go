package sim

import (
	"fmt"
	"time"
)

// Latency modeling.
//
// The paper treats cumulative write volume as its hardware-independent
// overhead metric ("we thus use cumulative write size as a metric for
// overhead/latency") and frames the operational zone's upper bound as
// a cap on preparation cost — "e.g. allowing at most a twofold
// increase in the compute and I/O time compared to directly creating
// the requested images". LatencyModel converts the simulator's byte
// accounting into those time terms.

// LatencyModel converts bytes written into simulated preparation time.
type LatencyModel struct {
	// WriteBandwidth is the cache area's sustained write rate in
	// bytes/second.
	WriteBandwidth int64
}

// DefaultLatencyModel matches the Shrinkwrap cost model's write rate
// (500 MB/s of head-node scratch).
func DefaultLatencyModel() LatencyModel {
	return LatencyModel{WriteBandwidth: 500 << 20}
}

// PrepTime converts a byte volume into preparation time.
func (m LatencyModel) PrepTime(bytes int64) time.Duration {
	if m.WriteBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(m.WriteBandwidth) * float64(time.Second))
}

// LatencyPoint summarizes preparation overhead at one α.
type LatencyPoint struct {
	Alpha float64
	// MeanPrep is the average simulated preparation time per job
	// (hits cost nothing; merges pay the full image rewrite).
	MeanPrep time.Duration
	// DirectPrep is the average time to directly create each job's
	// requested image — the paper's baseline for the "twofold" limit.
	DirectPrep time.Duration
	// Overhead is MeanPrep/DirectPrep.
	Overhead float64
}

// LatencyFromSweep derives per-job preparation latency for every point
// of an α sweep.
func LatencyFromSweep(points []SweepPoint, requests int, m LatencyModel) ([]LatencyPoint, error) {
	if requests < 1 {
		return nil, fmt.Errorf("sim: requests must be >= 1, got %d", requests)
	}
	out := make([]LatencyPoint, 0, len(points))
	for _, p := range points {
		actual := m.PrepTime(int64(p.ActualWriteGB * float64(1<<30)))
		direct := m.PrepTime(int64(p.RequestedWriteGB * float64(1<<30)))
		lp := LatencyPoint{
			Alpha:      p.Alpha,
			MeanPrep:   actual / time.Duration(requests),
			DirectPrep: direct / time.Duration(requests),
		}
		if direct > 0 {
			lp.Overhead = float64(actual) / float64(direct)
		} else {
			lp.Overhead = 1
		}
		out = append(out, lp)
	}
	return out, nil
}
