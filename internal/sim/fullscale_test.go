package sim

import (
	"testing"

	"repro/internal/pkggraph"
)

// TestPaperShapesFullScale replays the paper's main configuration —
// the full 9,660-package repository, 500 unique jobs x5 repeats, cache
// at the paper's 1.4x cache:repo ratio — and asserts the qualitative
// shapes of Figures 4 and 8. Each α point runs in well under a second;
// the dominating cost is generating the repository once.
func TestPaperShapesFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale simulation in -short mode")
	}
	repo := pkggraph.MustGenerate(pkggraph.DefaultGenConfig(), 1)
	base := Params{
		Repo:       repo,
		CacheBytes: repo.TotalSize() * 14 / 10,
		UniqueJobs: 500,
		Repeats:    5,
		MaxInitial: 100,
		Seed:       1,
		UseMinHash: true,
	}
	run := func(alpha float64) Result {
		p := base
		p.Alpha = alpha
		r, err := Run(p)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		return r
	}

	low := run(0.40)
	mid := run(0.75)
	high := run(0.95)
	one := run(1.00)

	// Figure 4a: inserts and deletes dominate at low α and collapse at
	// high α; merges take over through the upper range; at α=1 hits
	// jump and merges recede.
	if low.Stats.Merges > low.Stats.Inserts/10 {
		t.Errorf("low alpha should be insert-dominated: merges=%d inserts=%d", low.Stats.Merges, low.Stats.Inserts)
	}
	if mid.Stats.Merges <= mid.Stats.Inserts {
		t.Errorf("mid alpha should be merge-dominated: merges=%d inserts=%d", mid.Stats.Merges, mid.Stats.Inserts)
	}
	if one.Stats.Hits <= high.Stats.Hits {
		t.Errorf("alpha=1 hit jump missing: %d <= %d", one.Stats.Hits, high.Stats.Hits)
	}
	if one.Stats.Merges >= high.Stats.Merges {
		t.Errorf("alpha=1 merge drop missing: %d >= %d", one.Stats.Merges, high.Stats.Merges)
	}
	if one.Images != 1 {
		t.Errorf("alpha=1 should converge to a single image, got %d", one.Images)
	}

	// Figure 4c: at low α actual writes track (slightly under)
	// requested; at high α merging amplifies I/O well past requested.
	ampLow := float64(low.Stats.BytesWritten) / float64(low.Stats.RequestedBytes)
	ampHigh := float64(high.Stats.BytesWritten) / float64(high.Stats.RequestedBytes)
	if ampLow > 1.02 {
		t.Errorf("low alpha write amplification = %.2f, want <= ~1", ampLow)
	}
	if ampHigh < 1.3 {
		t.Errorf("high alpha write amplification = %.2f, want well above 1", ampHigh)
	}

	// Figure 4b: unique data grows with α; at α=1 unique equals total.
	if !(low.UniqueData < mid.UniqueData && mid.UniqueData < high.UniqueData) {
		t.Errorf("unique data not increasing: %d, %d, %d", low.UniqueData, mid.UniqueData, high.UniqueData)
	}
	if one.UniqueData != one.TotalData {
		t.Errorf("alpha=1 unique %d != total %d", one.UniqueData, one.TotalData)
	}

	// Figure 8: cache efficiency increases with α while container
	// efficiency decreases; the curves cross somewhere in the sweep.
	if !(low.CacheEfficiency < mid.CacheEfficiency && mid.CacheEfficiency < high.CacheEfficiency) {
		t.Errorf("cache efficiency not increasing: %.2f, %.2f, %.2f",
			low.CacheEfficiency, mid.CacheEfficiency, high.CacheEfficiency)
	}
	if !(low.ContainerEfficiency > mid.ContainerEfficiency && mid.ContainerEfficiency > high.ContainerEfficiency) {
		t.Errorf("container efficiency not decreasing: %.2f, %.2f, %.2f",
			low.ContainerEfficiency, mid.ContainerEfficiency, high.ContainerEfficiency)
	}
	// The operational zone's flavor: a moderate α keeps both
	// efficiencies workable.
	if mid.CacheEfficiency < 0.15 {
		t.Errorf("mid alpha cache efficiency %.2f too low", mid.CacheEfficiency)
	}
	if mid.ContainerEfficiency < 0.5 {
		t.Errorf("mid alpha container efficiency %.2f too low", mid.ContainerEfficiency)
	}
}
