package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/pkggraph"
	"repro/internal/stats"
)

// Fig3Point is one x position of the paper's Figure 3: for a fixed
// specification size, the median (over samples) of the selection-only
// storage, the closed image's package count, and the closed image's
// storage size.
type Fig3Point struct {
	SpecSize      int     // packages selected (x axis)
	SpecOnlyGB    float64 // "Spec. Size": storage of the bare selection
	ImagePackages float64 // "Image Count": packages after closure
	ImageGB       float64 // "Image Size": storage after closure
}

// ClosureCurve reproduces Figure 3: for each specification size from
// step to maxSpec, draw `samples` uniform random selections, close them
// over the dependency graph, and report medians. The paper uses sizes
// up to 1,000 with 100 samples each.
func ClosureCurve(repo *pkggraph.Repo, maxSpec, step, samples int, seed int64) ([]Fig3Point, error) {
	if repo == nil {
		return nil, fmt.Errorf("sim: nil repo")
	}
	if maxSpec < 1 || step < 1 || samples < 1 {
		return nil, fmt.Errorf("sim: invalid curve parameters maxSpec=%d step=%d samples=%d", maxSpec, step, samples)
	}
	if maxSpec > repo.Len() {
		maxSpec = repo.Len()
	}
	rng := rand.New(rand.NewSource(seed))
	var points []Fig3Point
	for size := step; size <= maxSpec; size += step {
		specGB := make([]float64, samples)
		imgPkgs := make([]float64, samples)
		imgGB := make([]float64, samples)
		for s := 0; s < samples; s++ {
			ids := sampleDistinct(rng, repo.Len(), size)
			specGB[s] = stats.BytesToGB(repo.SetSize(ids))
			closure := repo.Closure(ids)
			imgPkgs[s] = float64(len(closure))
			imgGB[s] = stats.BytesToGB(repo.SetSize(closure))
		}
		points = append(points, Fig3Point{
			SpecSize:      size,
			SpecOnlyGB:    stats.Median(specGB),
			ImagePackages: stats.Median(imgPkgs),
			ImageGB:       stats.Median(imgGB),
		})
	}
	return points, nil
}

// sampleDistinct draws n distinct IDs from [0, limit), sorted.
func sampleDistinct(rng *rand.Rand, limit, n int) []pkggraph.PkgID {
	if n >= limit {
		out := make([]pkggraph.PkgID, limit)
		for i := range out {
			out[i] = pkggraph.PkgID(i)
		}
		return out
	}
	seen := make(map[pkggraph.PkgID]bool, n)
	out := make([]pkggraph.PkgID, 0, n)
	for len(out) < n {
		id := pkggraph.PkgID(rng.Intn(limit))
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
