package sim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// SweepPoint is the median behaviour at one α across repeated
// simulations: the quantities plotted in Figures 4, 6, 7 and 8.
type SweepPoint struct {
	Alpha float64

	// Median operation counts (Figure 4a).
	Hits    float64
	Inserts float64
	Deletes float64
	Merges  float64

	// Median cache contents at end of run (Figure 4b).
	UniqueGB float64
	TotalGB  float64

	// Median cumulative I/O (Figure 4c).
	ActualWriteGB    float64
	RequestedWriteGB float64

	// Median efficiencies (Figures 6, 7, 8), in [0, 1].
	CacheEfficiency     float64
	ContainerEfficiency float64

	// Interquartile spread of the efficiencies across repetitions —
	// the run-to-run variability the paper reports medians to tame.
	CacheEffP25, CacheEffP75         float64
	ContainerEffP25, ContainerEffP75 float64
}

// WriteAmplification is ActualWriteGB / RequestedWriteGB: how much
// extra I/O merging costs relative to directly creating each requested
// image. The paper suggests capping this (e.g. at 2x) as the upper
// bound of the operational zone.
func (p SweepPoint) WriteAmplification() float64 {
	if p.RequestedWriteGB == 0 {
		return 1
	}
	return p.ActualWriteGB / p.RequestedWriteGB
}

// DefaultAlphas returns the sweep grid the paper plots: 0.40 to 1.00
// in steps of 0.05.
func DefaultAlphas() []float64 {
	var out []float64
	for a := 0.40; a < 1.0001; a += 0.05 {
		// Round to the grid to avoid float drift (0.7000000000000002).
		out = append(out, float64(int(a*100+0.5))/100)
	}
	return out
}

// SweepAlpha runs `reps` independent simulations at every α in alphas
// and reduces each metric to its per-α median, the paper's reporting
// method ("we repeated the simulation 20 times and reported the median
// behavior"). Repetition i uses workload seed base.Seed+i at every α,
// pairing the trials across α values.
//
// Runs execute on a worker pool of `parallelism` goroutines
// (<=0 means GOMAXPROCS).
func SweepAlpha(base Params, alphas []float64, reps, parallelism int) ([]SweepPoint, error) {
	if len(alphas) == 0 {
		return nil, fmt.Errorf("sim: no alphas to sweep")
	}
	if reps < 1 {
		return nil, fmt.Errorf("sim: reps must be >= 1, got %d", reps)
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}

	type job struct{ ai, rep int }
	type outcome struct {
		ai, rep int
		res     Result
		err     error
	}

	jobs := make(chan job)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				p := base
				p.Alpha = alphas[j.ai]
				p.Seed = base.Seed + int64(j.rep)
				p.TimelineEvery = 0
				res, err := Run(p)
				results <- outcome{j.ai, j.rep, res, err}
			}
		}()
	}
	go func() {
		for ai := range alphas {
			for rep := 0; rep < reps; rep++ {
				jobs <- job{ai, rep}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// metric matrices: [metric][rep][alpha]
	const nMetrics = 10
	mats := make([][][]float64, nMetrics)
	for m := range mats {
		mats[m] = make([][]float64, reps)
		for r := range mats[m] {
			mats[m][r] = make([]float64, len(alphas))
		}
	}
	var firstErr error
	for out := range results {
		if out.err != nil {
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		r, a := out.rep, out.ai
		st := out.res.Stats
		mats[0][r][a] = float64(st.Hits)
		mats[1][r][a] = float64(st.Inserts)
		mats[2][r][a] = float64(st.Deletes)
		mats[3][r][a] = float64(st.Merges)
		mats[4][r][a] = stats.BytesToGB(out.res.UniqueData)
		mats[5][r][a] = stats.BytesToGB(out.res.TotalData)
		mats[6][r][a] = stats.BytesToGB(st.BytesWritten)
		mats[7][r][a] = stats.BytesToGB(st.RequestedBytes)
		mats[8][r][a] = out.res.CacheEfficiency
		mats[9][r][a] = out.res.ContainerEfficiency
	}
	if firstErr != nil {
		return nil, firstErr
	}

	med := make([][]float64, nMetrics)
	for m := range mats {
		med[m] = stats.MedianOfColumns(mats[m])
	}
	quantileOfColumns := func(rows [][]float64, q float64) []float64 {
		out := make([]float64, len(alphas))
		col := make([]float64, reps)
		for a := range out {
			for r := 0; r < reps; r++ {
				col[r] = rows[r][a]
			}
			out[a] = stats.Quantile(col, q)
		}
		return out
	}
	cacheP25 := quantileOfColumns(mats[8], 0.25)
	cacheP75 := quantileOfColumns(mats[8], 0.75)
	contP25 := quantileOfColumns(mats[9], 0.25)
	contP75 := quantileOfColumns(mats[9], 0.75)
	points := make([]SweepPoint, len(alphas))
	for a := range alphas {
		points[a] = SweepPoint{
			Alpha:               alphas[a],
			Hits:                med[0][a],
			Inserts:             med[1][a],
			Deletes:             med[2][a],
			Merges:              med[3][a],
			UniqueGB:            med[4][a],
			TotalGB:             med[5][a],
			ActualWriteGB:       med[6][a],
			RequestedWriteGB:    med[7][a],
			CacheEfficiency:     med[8][a],
			ContainerEfficiency: med[9][a],
			CacheEffP25:         cacheP25[a],
			CacheEffP75:         cacheP75[a],
			ContainerEffP25:     contP25[a],
			ContainerEffP75:     contP75[a],
		}
	}
	return points, nil
}

// OperationalZone locates the paper's Figure 8 bounds on the swept
// curve: the lowest α whose cache efficiency reaches minCacheEff
// (default 0.30, the "thrashing zone" boundary) and the highest α
// whose write amplification stays at or below maxWriteAmp (default
// 2.0, the "excessive image size" boundary). ok is false when no α
// satisfies both.
func OperationalZone(points []SweepPoint, minCacheEff, maxWriteAmp float64) (lo, hi float64, ok bool) {
	if minCacheEff <= 0 {
		minCacheEff = 0.30
	}
	if maxWriteAmp <= 0 {
		maxWriteAmp = 2.0
	}
	lo, hi = -1, -1
	for _, p := range points {
		if p.CacheEfficiency >= minCacheEff && p.WriteAmplification() <= maxWriteAmp {
			if lo < 0 {
				lo = p.Alpha
			}
			hi = p.Alpha
		}
	}
	return lo, hi, lo >= 0
}
