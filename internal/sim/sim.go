// Package sim is the trace-driven simulation harness that regenerates
// the paper's evaluation (Section VI): single instrumented runs
// (Figure 5), α sweeps with repeated trials and median reporting
// (Figures 4, 6, 7, 8), and baseline comparisons.
//
// Every run is deterministic given its Params. Sweeps fan repetitions
// out over a bounded worker pool; each repetition is an independent
// Manager, so no locking is needed beyond the result collection.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// WorkloadKind selects the request-generation scheme.
type WorkloadKind uint8

// Workload schemes (Section VI).
const (
	// WorkloadDeps is the dependency scheme: random initial selection
	// plus dependency closure.
	WorkloadDeps WorkloadKind = iota
	// WorkloadRandom is the uniform random scheme of Figure 7.
	WorkloadRandom
)

// String names the scheme.
func (k WorkloadKind) String() string {
	switch k {
	case WorkloadDeps:
		return "deps"
	case WorkloadRandom:
		return "random"
	default:
		return fmt.Sprintf("workload(%d)", uint8(k))
	}
}

// Params configures one simulation run.
type Params struct {
	Repo *pkggraph.Repo

	// Alpha is the merge threshold.
	Alpha float64
	// CacheBytes is the cache capacity (0 = unlimited).
	CacheBytes int64
	// UniqueJobs and Repeats define the request stream: UniqueJobs
	// distinct specifications, each repeated Repeats times, shuffled.
	UniqueJobs int
	Repeats    int
	// Workload selects the generation scheme.
	Workload WorkloadKind
	// MaxInitial caps the initial package selection (paper: 100).
	// Zero means 100.
	MaxInitial int
	// Seed drives all randomness (workload and shuffle).
	Seed int64

	// UseMinHash enables the candidate prefilter (the configuration
	// the paper's prototype motivates). Exact distances are used when
	// false.
	UseMinHash bool
	// NoCandidateSort disables closest-first merge ordering
	// (ablation A2).
	NoCandidateSort bool
	// Conflicts is the merge conflict policy (nil = none, the CVMFS
	// case).
	Conflicts spec.ConflictPolicy

	// TimelineEvery records a timeline point every N requests
	// (0 = no timeline).
	TimelineEvery int

	// Tracer, when non-nil, receives one telemetry.Event per simulated
	// request (the `landlord-sim -events` hook). Sweeps share the
	// tracer across repetitions, so it must be safe for concurrent use
	// (telemetry.JSONLSink and telemetry.Ring are).
	Tracer telemetry.Tracer
}

func (p Params) validate() error {
	if p.Repo == nil {
		return fmt.Errorf("sim: Params.Repo is nil")
	}
	if p.Alpha < 0 || p.Alpha > 1 {
		return fmt.Errorf("sim: alpha %v out of range", p.Alpha)
	}
	if p.UniqueJobs < 1 {
		return fmt.Errorf("sim: UniqueJobs must be >= 1, got %d", p.UniqueJobs)
	}
	if p.Repeats < 1 {
		return fmt.Errorf("sim: Repeats must be >= 1, got %d", p.Repeats)
	}
	return nil
}

// TimelinePoint is a cumulative snapshot after a given request count
// (the series of Figure 5).
type TimelinePoint struct {
	Request      int
	Hits         int64
	Inserts      int64
	Deletes      int64
	Merges       int64
	CachedBytes  int64
	BytesWritten int64
}

// Result summarizes one simulation run.
type Result struct {
	Alpha      float64
	Requests   int
	Stats      core.Stats
	Images     int   // images cached at end of run
	TotalData  int64 // bytes cached at end of run
	UniqueData int64 // deduplicated bytes at end of run
	// CacheEfficiency is UniqueData/TotalData (1 for an empty cache).
	CacheEfficiency float64
	// ContainerEfficiency is the mean per-request requested/used ratio.
	ContainerEfficiency float64
	Timeline            []TimelinePoint
}

// generator builds the workload generator for p.
func (p Params) generator() workload.Generator {
	switch p.Workload {
	case WorkloadRandom:
		g := workload.NewUniformRandom(p.Repo, p.Seed)
		return g
	default:
		g := workload.NewDepClosure(p.Repo, p.Seed)
		if p.MaxInitial > 0 {
			g.MaxInitial = p.MaxInitial
		}
		return g
	}
}

// managerConfig translates Params into a core.Config.
func (p Params) managerConfig() core.Config {
	cfg := core.Config{
		Alpha:           p.Alpha,
		Capacity:        p.CacheBytes,
		Conflicts:       p.Conflicts,
		NoCandidateSort: p.NoCandidateSort,
		Tracer:          p.Tracer,
	}
	if p.UseMinHash {
		cfg.MinHash = core.DefaultMinHash()
	}
	return cfg
}

// Run generates the request stream for p and replays it against a
// fresh Manager.
func Run(p Params) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	stream, err := workload.Stream(p.generator(), p.UniqueJobs, p.Repeats, p.Seed+0x5eed)
	if err != nil {
		return Result{}, err
	}
	mgr, err := core.NewManager(p.Repo, p.managerConfig())
	if err != nil {
		return Result{}, err
	}
	return Replay(mgr, stream, p.TimelineEvery)
}

// timelineTracer accumulates the Figure 5 timeline from per-request
// telemetry events: operation counts, eviction churn, cache occupancy
// and cumulative writes, sampled every `every` requests. It replaces
// the earlier ad-hoc Stats polling, so the timeline and the event
// trace are definitionally consistent.
type timelineTracer struct {
	every int
	cum   TimelinePoint
	out   []TimelinePoint
}

// Trace implements telemetry.Tracer.
func (t *timelineTracer) Trace(ev *telemetry.Event) {
	t.cum.Request++
	switch ev.Op {
	case "hit":
		t.cum.Hits++
	case "merge":
		t.cum.Merges++
	case "insert":
		t.cum.Inserts++
	}
	t.cum.Deletes += int64(ev.Evicted)
	t.cum.BytesWritten += ev.BytesWritten
	t.cum.CachedBytes = ev.CachedBytes
	if t.cum.Request%t.every == 0 {
		t.out = append(t.out, t.cum)
	}
}

// Replay drives an existing Manager with a request stream, recording a
// timeline point every `every` requests (0 disables the timeline). It
// is also the entry point for trace-driven runs (see internal/trace).
// Timeline counters start at zero from the first replayed request,
// regardless of the Manager's prior history; any tracer already on the
// Manager keeps receiving events.
func Replay(mgr *core.Manager, stream []spec.Spec, every int) (Result, error) {
	var tl *timelineTracer
	if every > 0 {
		tl = &timelineTracer{every: every}
		orig := mgr.Tracer()
		mgr.SetTracer(telemetry.Multi(orig, tl))
		defer mgr.SetTracer(orig)
	}
	for i, s := range stream {
		if _, err := mgr.Request(s); err != nil {
			return Result{}, fmt.Errorf("sim: request %d: %w", i, err)
		}
	}
	st := mgr.Stats()
	res := Result{
		Alpha:               mgr.Alpha(),
		Requests:            len(stream),
		Stats:               st,
		Images:              mgr.Len(),
		TotalData:           mgr.TotalData(),
		UniqueData:          mgr.UniqueData(),
		CacheEfficiency:     mgr.CacheEfficiency(),
		ContainerEfficiency: st.MeanContainerEfficiency(),
	}
	if tl != nil {
		res.Timeline = tl.out
	}
	return res, nil
}
