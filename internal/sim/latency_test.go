package sim

import (
	"testing"
	"time"
)

func TestPrepTime(t *testing.T) {
	m := LatencyModel{WriteBandwidth: 100}
	if got := m.PrepTime(200); got != 2*time.Second {
		t.Fatalf("PrepTime = %v, want 2s", got)
	}
	if (LatencyModel{}).PrepTime(1000) != 0 {
		t.Fatal("zero bandwidth should cost nothing")
	}
}

func TestDefaultLatencyModelScale(t *testing.T) {
	// A 60 GB image at 500 MB/s: about two minutes.
	d := DefaultLatencyModel().PrepTime(60 << 30)
	if d < 30*time.Second || d > 10*time.Minute {
		t.Fatalf("60GB prep = %v, want minutes", d)
	}
}

func TestLatencyFromSweep(t *testing.T) {
	points := []SweepPoint{
		{Alpha: 0.4, ActualWriteGB: 1000, RequestedWriteGB: 1000},
		{Alpha: 0.95, ActualWriteGB: 1900, RequestedWriteGB: 1000},
	}
	lat, err := LatencyFromSweep(points, 2500, DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 2 {
		t.Fatalf("points = %d", len(lat))
	}
	if lat[0].Overhead < 0.99 || lat[0].Overhead > 1.01 {
		t.Fatalf("low alpha overhead = %v, want ~1", lat[0].Overhead)
	}
	if lat[1].Overhead < 1.89 || lat[1].Overhead > 1.91 {
		t.Fatalf("high alpha overhead = %v, want ~1.9", lat[1].Overhead)
	}
	if lat[1].MeanPrep <= lat[0].MeanPrep {
		t.Fatal("high alpha should cost more prep time per job")
	}
	// Per-job times are plausible: 1000 GB over 2500 jobs at 500 MB/s
	// is ~0.8s per job.
	if lat[0].MeanPrep < 100*time.Millisecond || lat[0].MeanPrep > 10*time.Second {
		t.Fatalf("mean prep = %v, implausible", lat[0].MeanPrep)
	}
}

func TestLatencyFromSweepValidation(t *testing.T) {
	if _, err := LatencyFromSweep(nil, 0, DefaultLatencyModel()); err == nil {
		t.Fatal("zero requests accepted")
	}
}

func TestLatencyZeroDirect(t *testing.T) {
	lat, err := LatencyFromSweep([]SweepPoint{{Alpha: 0.5}}, 10, DefaultLatencyModel())
	if err != nil {
		t.Fatal(err)
	}
	if lat[0].Overhead != 1 {
		t.Fatalf("zero-direct overhead = %v, want 1", lat[0].Overhead)
	}
}
