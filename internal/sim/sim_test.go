package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func testRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return pkggraph.MustGenerate(cfg, 42)
}

// testParams returns a small but non-trivial simulation: ~480-package
// repo, 40 unique jobs x3, cache at 1x repo size.
func testParams(t testing.TB) Params {
	repo := testRepo(t)
	return Params{
		Repo:       repo,
		Alpha:      0.75,
		CacheBytes: repo.TotalSize(),
		UniqueJobs: 40,
		Repeats:    3,
		MaxInitial: 10,
		Seed:       1,
		UseMinHash: true,
	}
}

func TestRunValidation(t *testing.T) {
	p := testParams(t)
	p.Repo = nil
	if _, err := Run(p); err == nil {
		t.Error("nil repo accepted")
	}
	p = testParams(t)
	p.Alpha = 1.5
	if _, err := Run(p); err == nil {
		t.Error("bad alpha accepted")
	}
	p = testParams(t)
	p.UniqueJobs = 0
	if _, err := Run(p); err == nil {
		t.Error("zero jobs accepted")
	}
	p = testParams(t)
	p.Repeats = 0
	if _, err := Run(p); err == nil {
		t.Error("zero repeats accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	p := testParams(t)
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.TotalData != b.TotalData || a.UniqueData != b.UniqueData {
		t.Fatalf("same params, different results:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

func TestRunBasicInvariants(t *testing.T) {
	p := testParams(t)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Requests != int64(p.UniqueJobs*p.Repeats) {
		t.Fatalf("requests = %d, want %d", st.Requests, p.UniqueJobs*p.Repeats)
	}
	if st.Hits+st.Inserts+st.Merges != st.Requests {
		t.Fatalf("ops don't partition requests: %+v", st)
	}
	if res.UniqueData > res.TotalData {
		t.Fatalf("unique %d > total %d", res.UniqueData, res.TotalData)
	}
	if res.CacheEfficiency < 0 || res.CacheEfficiency > 1 {
		t.Fatalf("cache efficiency %v out of range", res.CacheEfficiency)
	}
	if res.ContainerEfficiency <= 0 || res.ContainerEfficiency > 1 {
		t.Fatalf("container efficiency %v out of range", res.ContainerEfficiency)
	}
	// With repeats, there must be some reuse.
	if st.Hits == 0 {
		t.Error("no hits despite repeated jobs")
	}
}

func TestRunTimeline(t *testing.T) {
	p := testParams(t)
	p.TimelineEvery = 10
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := (p.UniqueJobs * p.Repeats) / 10
	if len(res.Timeline) != want {
		t.Fatalf("timeline points = %d, want %d", len(res.Timeline), want)
	}
	for i := 1; i < len(res.Timeline); i++ {
		prev, cur := res.Timeline[i-1], res.Timeline[i]
		if cur.Request <= prev.Request {
			t.Fatal("timeline not ordered")
		}
		if cur.Hits < prev.Hits || cur.Inserts < prev.Inserts ||
			cur.Merges < prev.Merges || cur.Deletes < prev.Deletes ||
			cur.BytesWritten < prev.BytesWritten {
			t.Fatal("cumulative counters decreased")
		}
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Hits != res.Stats.Hits || last.BytesWritten != res.Stats.BytesWritten {
		t.Fatal("final timeline point disagrees with stats")
	}
}

func TestCacheLimitRespected(t *testing.T) {
	p := testParams(t)
	p.CacheBytes = p.Repo.TotalSize() / 4
	p.TimelineEvery = 5
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Deletes == 0 {
		t.Error("small cache produced no deletes")
	}
	// The cache may transiently exceed its limit only by the one
	// in-use image; in the timeline it should hover near the limit.
	for _, pt := range res.Timeline {
		if pt.CachedBytes > p.CacheBytes*3 {
			t.Fatalf("cache wildly exceeded limit: %d vs %d", pt.CachedBytes, p.CacheBytes)
		}
	}
}

func TestAlphaShapesOperations(t *testing.T) {
	// Figure 4a's headline shape at small scale: a high-α run merges
	// more and inserts less than a low-α run.
	lo := testParams(t)
	lo.Alpha = 0.40
	hi := testParams(t)
	hi.Alpha = 0.95
	rlo, err := Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	rhi, err := Run(hi)
	if err != nil {
		t.Fatal(err)
	}
	if rhi.Stats.Merges <= rlo.Stats.Merges {
		t.Errorf("merges: alpha 0.95 %d <= alpha 0.40 %d", rhi.Stats.Merges, rlo.Stats.Merges)
	}
	if rhi.Stats.Inserts >= rlo.Stats.Inserts {
		t.Errorf("inserts: alpha 0.95 %d >= alpha 0.40 %d", rhi.Stats.Inserts, rlo.Stats.Inserts)
	}
	// Merging improves cache efficiency (Figure 4b / 8). (The Figure 4c
	// write-amplification shape needs paper-scale proportions — see
	// TestPaperShapesFullScale — because a tiny repository saturates
	// into subset hits.)
	if rhi.CacheEfficiency <= rlo.CacheEfficiency {
		t.Errorf("cache efficiency: high alpha %v <= low alpha %v", rhi.CacheEfficiency, rlo.CacheEfficiency)
	}
	// While degrading container efficiency.
	if rhi.ContainerEfficiency >= rlo.ContainerEfficiency {
		t.Errorf("container efficiency: high alpha %v >= low alpha %v", rhi.ContainerEfficiency, rlo.ContainerEfficiency)
	}
}

func TestRandomWorkloadRarelyMerges(t *testing.T) {
	// Figure 7: without dependency structure, moderate α finds almost
	// nothing to merge.
	deps := testParams(t)
	deps.Alpha = 0.75
	rand := testParams(t)
	rand.Alpha = 0.75
	rand.Workload = WorkloadRandom
	rd, err := Run(deps)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(rand)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Stats.Merges == 0 {
		t.Fatal("dependency workload produced no merges at alpha 0.75")
	}
	if rr.Stats.Merges*4 > rd.Stats.Merges {
		t.Errorf("random workload merged too much: %d vs deps %d", rr.Stats.Merges, rd.Stats.Merges)
	}
}

func TestWorkloadKindString(t *testing.T) {
	if WorkloadDeps.String() != "deps" || WorkloadRandom.String() != "random" {
		t.Fatal("workload names wrong")
	}
	if WorkloadKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestSweepAlpha(t *testing.T) {
	p := testParams(t)
	p.UniqueJobs = 20
	alphas := []float64{0.4, 0.75, 0.95}
	points, err := SweepAlpha(p, alphas, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(alphas) {
		t.Fatalf("points = %d", len(points))
	}
	for i, pt := range points {
		if pt.Alpha != alphas[i] {
			t.Fatalf("point %d alpha = %v", i, pt.Alpha)
		}
		if pt.RequestedWriteGB <= 0 {
			t.Fatalf("point %d has no requested writes", i)
		}
	}
	// Requested writes are α-independent by construction (same
	// workload seeds at every α).
	if points[0].RequestedWriteGB != points[2].RequestedWriteGB {
		t.Errorf("requested writes vary with alpha: %v vs %v",
			points[0].RequestedWriteGB, points[2].RequestedWriteGB)
	}
	// Figure 4a shape on medians.
	if points[2].Merges <= points[0].Merges {
		t.Errorf("median merges did not increase with alpha")
	}
}

func TestSweepAlphaValidation(t *testing.T) {
	p := testParams(t)
	if _, err := SweepAlpha(p, nil, 3, 1); err == nil {
		t.Error("empty alphas accepted")
	}
	if _, err := SweepAlpha(p, []float64{0.5}, 0, 1); err == nil {
		t.Error("zero reps accepted")
	}
	bad := p
	bad.UniqueJobs = 0
	if _, err := SweepAlpha(bad, []float64{0.5}, 1, 1); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestDefaultAlphas(t *testing.T) {
	as := DefaultAlphas()
	if len(as) != 13 {
		t.Fatalf("len = %d, want 13", len(as))
	}
	if as[0] != 0.40 || as[len(as)-1] != 1.00 {
		t.Fatalf("range = [%v, %v]", as[0], as[len(as)-1])
	}
	for i := 1; i < len(as); i++ {
		if as[i]-as[i-1] < 0.049 || as[i]-as[i-1] > 0.051 {
			t.Fatalf("uneven step at %d: %v", i, as[i]-as[i-1])
		}
	}
}

func TestOperationalZone(t *testing.T) {
	points := []SweepPoint{
		{Alpha: 0.4, CacheEfficiency: 0.1, ActualWriteGB: 10, RequestedWriteGB: 10},
		{Alpha: 0.5, CacheEfficiency: 0.35, ActualWriteGB: 12, RequestedWriteGB: 10},
		{Alpha: 0.6, CacheEfficiency: 0.5, ActualWriteGB: 15, RequestedWriteGB: 10},
		{Alpha: 0.7, CacheEfficiency: 0.7, ActualWriteGB: 25, RequestedWriteGB: 10},
	}
	lo, hi, ok := OperationalZone(points, 0.3, 2.0)
	if !ok || lo != 0.5 || hi != 0.6 {
		t.Fatalf("zone = [%v, %v] ok=%v, want [0.5, 0.6]", lo, hi, ok)
	}
	_, _, ok = OperationalZone(points, 0.99, 1.0)
	if ok {
		t.Fatal("impossible constraints reported a zone")
	}
}

func TestWriteAmplification(t *testing.T) {
	p := SweepPoint{ActualWriteGB: 20, RequestedWriteGB: 10}
	if p.WriteAmplification() != 2 {
		t.Fatalf("amplification = %v", p.WriteAmplification())
	}
	if (SweepPoint{}).WriteAmplification() != 1 {
		t.Fatal("zero-request amplification should be 1")
	}
}

func TestClosureCurve(t *testing.T) {
	repo := testRepo(t)
	points, err := ClosureCurve(repo, 100, 25, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for i, pt := range points {
		if pt.ImagePackages < float64(pt.SpecSize) {
			t.Fatalf("closure shrank at %d: %v < %d", i, pt.ImagePackages, pt.SpecSize)
		}
		if pt.ImageGB < pt.SpecOnlyGB {
			t.Fatalf("image smaller than selection at %d", i)
		}
		if i > 0 && pt.ImagePackages < points[i-1].ImagePackages {
			t.Fatalf("image package count not monotone at %d", i)
		}
	}
}

func TestClosureCurveValidation(t *testing.T) {
	repo := testRepo(t)
	if _, err := ClosureCurve(nil, 10, 5, 1, 1); err == nil {
		t.Error("nil repo accepted")
	}
	if _, err := ClosureCurve(repo, 0, 5, 1, 1); err == nil {
		t.Error("zero maxSpec accepted")
	}
	if _, err := ClosureCurve(repo, 10, 0, 1, 1); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := ClosureCurve(repo, 10, 5, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestClosureCurveClampsToRepo(t *testing.T) {
	repo := testRepo(t)
	points, err := ClosureCurve(repo, repo.Len()*2, repo.Len(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := points[len(points)-1]
	if last.SpecSize != repo.Len() {
		t.Fatalf("last spec size = %d, want %d", last.SpecSize, repo.Len())
	}
	if int(last.ImagePackages) != repo.Len() {
		t.Fatalf("full selection should close to whole repo")
	}
}

func TestRunBaselines(t *testing.T) {
	repo := testRepo(t)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 3), 20, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunBaselines(repo, stream, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	byName := map[string]BaselineResult{}
	for _, r := range results {
		byName[r.Name] = r
		if r.Requests != len(stream) {
			t.Fatalf("%s saw %d requests", r.Name, r.Requests)
		}
	}
	landlord := results[0]
	naive := byName["naive"]
	layered := byName["layered"]
	fullrepo := byName["fullrepo"]
	// LANDLORD stores less than the naive cache (the whole point).
	if landlord.StoredBytes >= naive.StoredBytes {
		t.Errorf("landlord stored %d >= naive %d", landlord.StoredBytes, naive.StoredBytes)
	}
	// And is more storage-efficient.
	if landlord.StorageEfficiency() <= naive.StorageEfficiency() {
		t.Errorf("landlord eff %v <= naive %v", landlord.StorageEfficiency(), naive.StorageEfficiency())
	}
	// The layered store transfers the whole chain per job: enormous.
	if layered.TransferredBytes <= naive.TransferredBytes {
		t.Errorf("layered transferred %d <= naive %d", layered.TransferredBytes, naive.TransferredBytes)
	}
	// The full-repo image stores the entire repository.
	if fullrepo.StoredBytes != repo.TotalSize() {
		t.Errorf("fullrepo stored %d != repo %d", fullrepo.StoredBytes, repo.TotalSize())
	}
	// The ideal copy-on-write store bounds everything from below on
	// storage and everything except fullrepo from below on transfers.
	cow := byName["ideal-cow"]
	if cow.StoredBytes > landlord.StoredBytes || cow.StoredBytes > naive.StoredBytes {
		t.Errorf("ideal-cow stored %d should lower-bound the container stores", cow.StoredBytes)
	}
	if cow.StorageEfficiency() != 1 {
		t.Errorf("ideal-cow efficiency = %v", cow.StorageEfficiency())
	}
}

func TestBaselineStorageEfficiencyEmpty(t *testing.T) {
	if (BaselineResult{}).StorageEfficiency() != 1 {
		t.Fatal("empty result efficiency should be 1")
	}
}

func TestReplayWithTrace(t *testing.T) {
	repo := testRepo(t)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 4), 15, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewManager(repo, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(m, stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != len(stream) {
		t.Fatalf("requests = %d", res.Requests)
	}
	if res.Alpha != 0.8 {
		t.Fatalf("alpha = %v", res.Alpha)
	}
}

// tracerFunc adapts a closure to telemetry.Tracer.
type tracerFunc func(*telemetry.Event)

func (f tracerFunc) Trace(ev *telemetry.Event) { f(ev) }

func TestRunTracerSeesEveryRequest(t *testing.T) {
	// The Params.Tracer hook (the `-events` path) must observe one event
	// per request and must coexist with the tracer-driven timeline.
	p := testParams(t)
	p.TimelineEvery = 10
	var events int
	ops := map[string]int64{}
	p.Tracer = tracerFunc(func(ev *telemetry.Event) {
		events++
		ops[ev.Op]++
	})
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.UniqueJobs * p.Repeats
	if events != want {
		t.Fatalf("tracer saw %d events, want %d", events, want)
	}
	if ops["hit"] != res.Stats.Hits || ops["insert"] != res.Stats.Inserts || ops["merge"] != res.Stats.Merges {
		t.Fatalf("tracer op counts %v disagree with stats %+v", ops, res.Stats)
	}
	if len(res.Timeline) != want/10 {
		t.Fatalf("timeline points = %d, want %d", len(res.Timeline), want/10)
	}
}

func TestSweepQuantiles(t *testing.T) {
	p := testParams(t)
	p.UniqueJobs = 15
	points, err := SweepAlpha(p, []float64{0.75}, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	pt := points[0]
	if pt.CacheEffP25 > pt.CacheEfficiency || pt.CacheEfficiency > pt.CacheEffP75 {
		t.Fatalf("cache quantiles disordered: %v <= %v <= %v",
			pt.CacheEffP25, pt.CacheEfficiency, pt.CacheEffP75)
	}
	if pt.ContainerEffP25 > pt.ContainerEfficiency || pt.ContainerEfficiency > pt.ContainerEffP75 {
		t.Fatalf("container quantiles disordered: %v <= %v <= %v",
			pt.ContainerEffP25, pt.ContainerEfficiency, pt.ContainerEffP75)
	}
}
