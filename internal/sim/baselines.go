package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// BaselineResult summarizes one store's behaviour over a request
// stream, for the Section III comparison (naive per-spec images,
// Docker-style layering, one full-repo image) against LANDLORD.
type BaselineResult struct {
	Name             string
	Requests         int
	Images           int   // images (or layers) held at end
	StoredBytes      int64 // bytes held at end
	UniqueBytes      int64 // deduplicated content at end
	BytesWritten     int64 // cumulative build I/O
	TransferredBytes int64 // cumulative bytes shipped to workers
	Hits             int64
}

// StorageEfficiency is UniqueBytes/StoredBytes (1 = no duplication).
func (b BaselineResult) StorageEfficiency() float64 {
	if b.StoredBytes == 0 {
		return 1
	}
	return float64(b.UniqueBytes) / float64(b.StoredBytes)
}

// RunBaselines replays one stream against every store: LANDLORD at the
// given α, the naive exact-match cache, the layered lineage, and the
// full-repository image. All stores see identical requests, so the
// results are directly comparable.
func RunBaselines(repo *pkggraph.Repo, stream []spec.Spec, alpha float64, capacity int64) ([]BaselineResult, error) {
	landlord, err := core.NewManager(repo, core.Config{
		Alpha:    alpha,
		Capacity: capacity,
		MinHash:  core.DefaultMinHash(),
	})
	if err != nil {
		return nil, err
	}
	naive := image.NewNaiveStore(repo, capacity)
	layered := image.NewLayeredStore(repo)
	fullrepo := image.NewFullRepoStore(repo)
	cow := image.NewIdealCoWStore(repo)

	for i, s := range stream {
		if _, err := landlord.Request(s); err != nil {
			return nil, fmt.Errorf("sim: landlord request %d: %w", i, err)
		}
		if _, err := naive.Request(s); err != nil {
			return nil, fmt.Errorf("sim: naive request %d: %w", i, err)
		}
		if _, err := layered.Request(s); err != nil {
			return nil, fmt.Errorf("sim: layered request %d: %w", i, err)
		}
		if _, err := fullrepo.Request(s); err != nil {
			return nil, fmt.Errorf("sim: fullrepo request %d: %w", i, err)
		}
		if _, err := cow.Request(s); err != nil {
			return nil, fmt.Errorf("sim: cow request %d: %w", i, err)
		}
	}

	lst := landlord.Stats()
	nst := naive.Stats()
	yst := layered.Stats()
	fst := fullrepo.Stats()
	cst := cow.Stats()
	return []BaselineResult{
		{
			Name:         fmt.Sprintf("landlord(α=%.2f)", alpha),
			Requests:     len(stream),
			Images:       landlord.Len(),
			StoredBytes:  landlord.TotalData(),
			UniqueBytes:  landlord.UniqueData(),
			BytesWritten: lst.BytesWritten,
			// LANDLORD workers pull the image the job runs in; the
			// written bytes double as a transfer proxy plus hits reuse.
			TransferredBytes: lst.BytesWritten,
			Hits:             lst.Hits,
		},
		{
			Name:             "naive",
			Requests:         len(stream),
			Images:           naive.Len(),
			StoredBytes:      naive.TotalData(),
			UniqueBytes:      naive.UniqueData(),
			BytesWritten:     nst.BytesWritten,
			TransferredBytes: nst.TransferredBytes,
			Hits:             nst.Hits,
		},
		{
			Name:             "layered",
			Requests:         len(stream),
			Images:           layered.Layers(),
			StoredBytes:      layered.TotalData(),
			UniqueBytes:      layered.UniqueData(),
			BytesWritten:     yst.BytesWritten,
			TransferredBytes: yst.TransferredBytes,
		},
		{
			Name:             "fullrepo",
			Requests:         len(stream),
			Images:           1,
			StoredBytes:      repo.TotalSize(),
			UniqueBytes:      repo.TotalSize(),
			BytesWritten:     fst.BytesWritten,
			TransferredBytes: fst.TransferredBytes,
		},
		{
			// The unreachable upper bound: perfect copy-on-write
			// sharing, which container stores cannot provide
			// (Section III).
			Name:             "ideal-cow",
			Requests:         len(stream),
			Images:           1,
			StoredBytes:      cow.TotalData(),
			UniqueBytes:      cow.TotalData(),
			BytesWritten:     cst.BytesWritten,
			TransferredBytes: cst.TransferredBytes,
		},
	}, nil
}
