package sim

import "testing"

func driftParams(t *testing.T) DriftParams {
	repo := testRepo(t)
	return DriftParams{
		Repo:       repo,
		Alpha:      0.9,
		CacheBytes: repo.TotalSize() * 2,
		Users:      6,
		Requests:   150,
		MaxInitial: 8,
		Seed:       1,
		MutateProb: 0.5,
	}
}

func TestRunDriftValidation(t *testing.T) {
	p := driftParams(t)
	p.Repo = nil
	if _, err := RunDrift(p); err == nil {
		t.Error("nil repo accepted")
	}
	p = driftParams(t)
	p.Alpha = 2
	if _, err := RunDrift(p); err == nil {
		t.Error("bad alpha accepted")
	}
	p = driftParams(t)
	p.Users = 0
	if _, err := RunDrift(p); err == nil {
		t.Error("zero users accepted")
	}
	p = driftParams(t)
	p.PruneEvery = 10
	p.PruneUtilization = 0
	if _, err := RunDrift(p); err == nil {
		t.Error("prune without utilization accepted")
	}
}

func TestRunDriftDeterministic(t *testing.T) {
	p := driftParams(t)
	a, err := RunDrift(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDrift(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.TotalData != b.TotalData {
		t.Fatal("same params, different drift results")
	}
}

func TestRunDriftBasic(t *testing.T) {
	res, err := RunDrift(driftParams(t))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Requests != 150 {
		t.Fatalf("requests = %d", st.Requests)
	}
	// A small drifting population mostly repeats itself: plenty of
	// hits, some merges as specs drift.
	if st.Hits == 0 || st.Merges == 0 {
		t.Fatalf("drift should produce hits and merges: %+v", st)
	}
	if res.Splits != 0 {
		t.Fatalf("splits without pruning: %d", res.Splits)
	}
}

func TestRunDriftPruningShedsBloat(t *testing.T) {
	base := driftParams(t)
	base.Requests = 400
	noPrune, err := RunDrift(base)
	if err != nil {
		t.Fatal(err)
	}
	pruned := base
	pruned.PruneEvery = 50
	pruned.PruneUtilization = 0.6
	pruned.PruneMinServed = 3
	withPrune, err := RunDrift(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if withPrune.Splits == 0 {
		t.Fatal("no splits under a drifting workload")
	}
	if withPrune.SplitsBytes <= 0 {
		t.Fatal("splits shed no bytes")
	}
	// Shedding cold bloat keeps the cache footprint below the
	// unpruned run's.
	if withPrune.TotalData >= noPrune.TotalData {
		t.Errorf("pruned cache %d >= unpruned %d", withPrune.TotalData, noPrune.TotalData)
	}
}
