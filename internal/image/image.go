// Package image implements the baseline container-image stores that the
// paper's Section III analyzes as "imperfect solutions" to the
// container explosion problem, plus the comparison of Figure 1:
//
//   - NaiveStore: one container per distinct specification, exact-match
//     reuse only, LRU eviction — the behaviour the paper attributes to
//     conventional image caches ("only jobs with identical requirements
//     can reuse existing containers").
//   - LayeredStore: Docker-style additive layering. Content can be
//     masked but never removed, every job transfers the full chain, and
//     functionally equivalent layers are not recognized.
//   - FullRepoStore: a single image holding the entire repository.
//
// The LANDLORD composition store itself lives in internal/core; the
// simulator runs these side by side for the baseline benchmarks.
package image

import (
	"fmt"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// NaiveStats counts naive-store activity.
type NaiveStats struct {
	Requests         int64
	Hits             int64
	Inserts          int64
	Deletes          int64
	BytesWritten     int64
	TransferredBytes int64 // bytes shipped to the worker per request
}

// NaiveStore caches one image per distinct specification with LRU
// eviction. No subset reuse, no merging.
type NaiveStore struct {
	repo     *pkggraph.Repo
	capacity int64

	entries map[uint64][]*naiveEntry // spec hash -> entries (collision chain)
	total   int64
	clock   uint64
	stats   NaiveStats
}

type naiveEntry struct {
	spec    spec.Spec
	size    int64
	lastUse uint64
}

// NewNaiveStore creates a naive store with the given byte capacity
// (zero or negative = unlimited).
func NewNaiveStore(repo *pkggraph.Repo, capacity int64) *NaiveStore {
	return &NaiveStore{
		repo:     repo,
		capacity: capacity,
		entries:  make(map[uint64][]*naiveEntry),
	}
}

// Len returns the number of cached images.
func (n *NaiveStore) Len() int {
	c := 0
	for _, chain := range n.entries {
		c += len(chain)
	}
	return c
}

// TotalData returns the bytes stored.
func (n *NaiveStore) TotalData() int64 { return n.total }

// UniqueData returns the size of the union of all cached images.
func (n *NaiveStore) UniqueData() int64 {
	var u spec.Spec
	for _, chain := range n.entries {
		for _, e := range chain {
			u = u.Union(e.spec)
		}
	}
	return u.Size(n.repo)
}

// Stats returns a copy of the counters.
func (n *NaiveStore) Stats() NaiveStats { return n.stats }

// Request satisfies s with an exact-match image, creating one if
// needed. It returns whether the request hit.
func (n *NaiveStore) Request(s spec.Spec) (hit bool, err error) {
	if s.Empty() {
		return false, fmt.Errorf("image: empty specification")
	}
	n.clock++
	n.stats.Requests++
	h := s.Hash()
	for _, e := range n.entries[h] {
		if e.spec.Equal(s) {
			e.lastUse = n.clock
			n.stats.Hits++
			n.stats.TransferredBytes += e.size
			return true, nil
		}
	}
	size := s.Size(n.repo)
	e := &naiveEntry{spec: s, size: size, lastUse: n.clock}
	n.entries[h] = append(n.entries[h], e)
	n.total += size
	n.stats.Inserts++
	n.stats.BytesWritten += size
	n.stats.TransferredBytes += size
	n.evict(e)
	return false, nil
}

func (n *NaiveStore) evict(keep *naiveEntry) {
	if n.capacity <= 0 {
		return
	}
	for n.total > n.capacity {
		var victim *naiveEntry
		var victimHash uint64
		var victimIdx int
		for h, chain := range n.entries {
			for i, e := range chain {
				if e == keep {
					continue
				}
				if victim == nil || e.lastUse < victim.lastUse {
					victim, victimHash, victimIdx = e, h, i
				}
			}
		}
		if victim == nil {
			return
		}
		chain := n.entries[victimHash]
		n.entries[victimHash] = append(chain[:victimIdx], chain[victimIdx+1:]...)
		if len(n.entries[victimHash]) == 0 {
			delete(n.entries, victimHash)
		}
		n.total -= victim.size
		n.stats.Deletes++
	}
}

// Layer is one additive step of a layered image chain.
type Layer struct {
	Added spec.Spec // packages introduced by this layer
	Size  int64
}

// LayeredStats counts layered-store activity.
type LayeredStats struct {
	Requests         int64
	LayersCreated    int64
	BytesWritten     int64 // layer bytes written (additive only)
	TransferredBytes int64 // full chain shipped per request
}

// LayeredStore models the Figure 1 "refining via layers" approach: a
// single image lineage extended by appending a layer with whatever the
// next job needs. Old content can be masked but never removed, and the
// whole chain must be stored and transferred.
type LayeredStore struct {
	repo   *pkggraph.Repo
	layers []Layer
	union  spec.Spec // packages present anywhere in the chain
	total  int64
	stats  LayeredStats
}

// NewLayeredStore creates an empty lineage over repo.
func NewLayeredStore(repo *pkggraph.Repo) *LayeredStore {
	return &LayeredStore{repo: repo}
}

// Layers returns the chain depth.
func (l *LayeredStore) Layers() int { return len(l.layers) }

// TotalData returns the stored chain size: the sum of all layer sizes,
// including masked or stale content ("changes to layered images are
// strictly additive").
func (l *LayeredStore) TotalData() int64 { return l.total }

// UniqueData returns the size of the distinct packages in the chain.
func (l *LayeredStore) UniqueData() int64 { return l.union.Size(l.repo) }

// Stats returns a copy of the counters.
func (l *LayeredStore) Stats() LayeredStats { return l.stats }

// Request satisfies s by appending a layer with any missing packages.
// It returns the number of bytes the new layer added (zero when the
// chain already contains everything requested).
func (l *LayeredStore) Request(s spec.Spec) (added int64, err error) {
	if s.Empty() {
		return 0, fmt.Errorf("image: empty specification")
	}
	l.stats.Requests++
	missing := s.Diff(l.union)
	if !missing.Empty() {
		size := missing.Size(l.repo)
		l.layers = append(l.layers, Layer{Added: missing, Size: size})
		l.union = l.union.Union(missing)
		l.total += size
		added = size
		l.stats.LayersCreated++
		l.stats.BytesWritten += size
	}
	// Each job must pull the entire chain: even hidden lower-layer
	// content "still exists in a previous layer and must be
	// transferred and stored".
	l.stats.TransferredBytes += l.total
	return added, nil
}

// FullRepoStats counts full-repo store activity.
type FullRepoStats struct {
	Requests         int64
	BytesWritten     int64 // one-time image build
	TransferredBytes int64
}

// FullRepoStore models the single all-purpose image: the entire
// software repository packed into one container.
type FullRepoStore struct {
	repo        *pkggraph.Repo
	built       bool
	transferred bool // whether the worker already holds the image
	stats       FullRepoStats
}

// NewFullRepoStore creates the store; the image is built lazily on the
// first request.
func NewFullRepoStore(repo *pkggraph.Repo) *FullRepoStore {
	return &FullRepoStore{repo: repo}
}

// ImageSize returns the size of the all-purpose image.
func (f *FullRepoStore) ImageSize() int64 { return f.repo.TotalSize() }

// Stats returns a copy of the counters.
func (f *FullRepoStore) Stats() FullRepoStats { return f.stats }

// Request satisfies s from the full image. The first request pays the
// build and transfer of the whole repository; later requests are free.
// It returns the per-request container efficiency (requested size over
// repository size).
func (f *FullRepoStore) Request(s spec.Spec) (containerEff float64, err error) {
	if s.Empty() {
		return 0, fmt.Errorf("image: empty specification")
	}
	f.stats.Requests++
	if !f.built {
		f.built = true
		f.stats.BytesWritten += f.repo.TotalSize()
	}
	if !f.transferred {
		f.transferred = true
		f.stats.TransferredBytes += f.repo.TotalSize()
	}
	total := f.repo.TotalSize()
	if total == 0 {
		return 1, nil
	}
	return float64(s.Size(f.repo)) / float64(total), nil
}

// Invalidate marks the image stale (a repository update), forcing the
// next request to rebuild and retransfer — the cost the paper cites for
// keeping full-repo images current ("the process took around 24
// hours").
func (f *FullRepoStore) Invalidate() {
	f.built = false
	f.transferred = false
}

// IdealCoWStats counts ideal copy-on-write store activity.
type IdealCoWStats struct {
	Requests         int64
	BytesWritten     int64 // only never-before-seen packages
	TransferredBytes int64 // exactly the requested bytes per job
}

// IdealCoWStore models the unreachable upper bound of Section III's
// deduplication discussion: a store with perfect copy-on-write sharing
// where every package is kept exactly once and every job pays only for
// its own requirements. Local installations and CVMFS itself behave
// this way; container images "by design contain complete copies of all
// data", so no container store can reach it. It exists to bound the
// baseline comparisons from above.
type IdealCoWStore struct {
	repo  *pkggraph.Repo
	union spec.Spec
	stats IdealCoWStats
}

// NewIdealCoWStore creates the store.
func NewIdealCoWStore(repo *pkggraph.Repo) *IdealCoWStore {
	return &IdealCoWStore{repo: repo}
}

// TotalData returns the stored bytes: the union of everything ever
// requested, held once.
func (s *IdealCoWStore) TotalData() int64 { return s.union.Size(s.repo) }

// Stats returns a copy of the counters.
func (s *IdealCoWStore) Stats() IdealCoWStats { return s.stats }

// Request satisfies the job, storing only packages never seen before.
// It returns the bytes newly written.
func (s *IdealCoWStore) Request(sp spec.Spec) (added int64, err error) {
	if sp.Empty() {
		return 0, fmt.Errorf("image: empty specification")
	}
	s.stats.Requests++
	missing := sp.Diff(s.union)
	if !missing.Empty() {
		added = missing.Size(s.repo)
		s.union = s.union.Union(missing)
		s.stats.BytesWritten += added
	}
	s.stats.TransferredBytes += sp.Size(s.repo)
	return added, nil
}
