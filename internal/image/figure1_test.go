package image

import (
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// TestFigure1Scenario reproduces the paper's Figure 1 ("Refining via
// layers vs. Composition") literally: three jobs requiring {A,B},
// {B,C} and {A,B} again.
//
//   - Layering: the second job appends a layer with C; the first and
//     third jobs have identical requirements yet the chain retains and
//     transfers everything, and "old content can be masked but not
//     removed".
//   - Composition: it is "immediately clear when images are equivalent
//     and can be reused" — the third job hits.
func TestFigure1Scenario(t *testing.T) {
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "A", Version: "1", Platform: "p", Tier: pkggraph.TierLibrary, Size: 10, FileCount: 1},
		{ID: 1, Name: "B", Version: "1", Platform: "p", Tier: pkggraph.TierLibrary, Size: 10, FileCount: 1},
		{ID: 2, Name: "C", Version: "1", Platform: "p", Tier: pkggraph.TierLibrary, Size: 10, FileCount: 1},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []spec.Spec{
		spec.New([]pkggraph.PkgID{0, 1}), // {A,B}
		spec.New([]pkggraph.PkgID{1, 2}), // {B,C}
		spec.New([]pkggraph.PkgID{0, 1}), // {A,B} again
	}

	// Layering.
	layered := NewLayeredStore(repo)
	for _, j := range jobs {
		if _, err := layered.Request(j); err != nil {
			t.Fatal(err)
		}
	}
	// The chain holds A, B and C: C is hidden from the third job but
	// "still exists in a previous layer and must be transferred and
	// stored".
	if layered.TotalData() != 30 {
		t.Fatalf("layered stored %d, want 30 (A+B+C, nothing removable)", layered.TotalData())
	}
	// Every job pulls the whole chain: 20 + 30 + 30.
	if got := layered.Stats().TransferredBytes; got != 80 {
		t.Fatalf("layered transferred %d, want 80", got)
	}

	// Composition (LANDLORD at alpha 0: reuse only, to mirror the
	// figure's right panel).
	mgr, err := core.NewManager(repo, core.Config{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	var ops []core.Op
	for _, j := range jobs {
		res, err := mgr.Request(j)
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, res.Op)
	}
	if ops[0] != core.OpInsert || ops[1] != core.OpInsert {
		t.Fatalf("composition ops: %v", ops)
	}
	if ops[2] != core.OpHit {
		t.Fatalf("identical requirements must be recognized: third op = %v", ops[2])
	}
}
