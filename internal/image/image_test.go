package image

import (
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func flatRepo(t *testing.T, n int, size int64) *pkggraph.Repo {
	t.Helper()
	pkgs := make([]pkggraph.Package, n)
	for i := range pkgs {
		pkgs[i] = pkggraph.Package{
			ID: pkggraph.PkgID(i), Name: "pkg", Version: string(rune('a' + i)), Platform: "p",
			Tier: pkggraph.TierLibrary, Size: size, FileCount: 1,
		}
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func sp(vs ...pkggraph.PkgID) spec.Spec { return spec.New(vs) }

func TestNaiveExactMatchOnly(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	n := NewNaiveStore(repo, 0)
	hit, err := n.Request(sp(1, 2, 3))
	if err != nil || hit {
		t.Fatalf("first request: hit=%v err=%v", hit, err)
	}
	hit, _ = n.Request(sp(1, 2, 3))
	if !hit {
		t.Fatal("identical request should hit")
	}
	// Subset does NOT hit in the naive store.
	hit, _ = n.Request(sp(1, 2))
	if hit {
		t.Fatal("naive store must not serve subsets")
	}
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
}

func TestNaiveEmptySpec(t *testing.T) {
	n := NewNaiveStore(flatRepo(t, 2, 1), 0)
	if _, err := n.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestNaiveDuplicationGrows(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	n := NewNaiveStore(repo, 0)
	n.Request(sp(1, 2, 3))
	n.Request(sp(1, 2, 4))
	n.Request(sp(1, 2, 5))
	if n.TotalData() != 90 {
		t.Fatalf("TotalData = %d, want 90", n.TotalData())
	}
	if n.UniqueData() != 50 {
		t.Fatalf("UniqueData = %d, want 50", n.UniqueData())
	}
}

func TestNaiveLRUEviction(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	n := NewNaiveStore(repo, 250)
	n.Request(sp(1))
	n.Request(sp(2))
	n.Request(sp(1)) // touch
	n.Request(sp(3)) // evict {2}
	if n.Len() != 2 {
		t.Fatalf("Len = %d, want 2", n.Len())
	}
	if hit, _ := n.Request(sp(1)); !hit {
		t.Fatal("recently used image evicted")
	}
	if hit, _ := n.Request(sp(2)); hit {
		t.Fatal("LRU image should have been evicted")
	}
	st := n.Stats()
	if st.Deletes == 0 {
		t.Fatal("no deletes recorded")
	}
}

func TestNaiveStatsAccounting(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	n := NewNaiveStore(repo, 0)
	n.Request(sp(1, 2)) // insert: 20 written, 20 transferred
	n.Request(sp(1, 2)) // hit: 20 transferred
	st := n.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Inserts != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesWritten != 20 || st.TransferredBytes != 40 {
		t.Fatalf("bytes: %+v", st)
	}
}

func TestLayeredAdditiveOnly(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	l := NewLayeredStore(repo)
	added, err := l.Request(sp(1, 2, 3))
	if err != nil || added != 30 {
		t.Fatalf("first layer: added=%d err=%v", added, err)
	}
	added, _ = l.Request(sp(1, 2, 4)) // only {4} is new
	if added != 10 {
		t.Fatalf("second layer added = %d, want 10", added)
	}
	if l.Layers() != 2 {
		t.Fatalf("Layers = %d, want 2", l.Layers())
	}
	// Nothing is ever removed: total only grows.
	if l.TotalData() != 40 {
		t.Fatalf("TotalData = %d, want 40", l.TotalData())
	}
	if l.UniqueData() != 40 {
		t.Fatalf("UniqueData = %d, want 40", l.UniqueData())
	}
}

func TestLayeredSatisfiedRequestAddsNothing(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	l := NewLayeredStore(repo)
	l.Request(sp(1, 2, 3))
	added, _ := l.Request(sp(2, 3))
	if added != 0 {
		t.Fatalf("satisfied request added %d bytes", added)
	}
	if l.Layers() != 1 {
		t.Fatalf("Layers = %d, want 1", l.Layers())
	}
}

func TestLayeredTransfersWholeChain(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	l := NewLayeredStore(repo)
	l.Request(sp(1))    // chain 10, transfer 10
	l.Request(sp(2))    // chain 20, transfer 20
	l.Request(sp(1, 2)) // chain 20, transfer 20
	st := l.Stats()
	if st.TransferredBytes != 50 {
		t.Fatalf("TransferredBytes = %d, want 50", st.TransferredBytes)
	}
	if st.BytesWritten != 20 {
		t.Fatalf("BytesWritten = %d, want 20", st.BytesWritten)
	}
}

func TestLayeredEmptySpec(t *testing.T) {
	l := NewLayeredStore(flatRepo(t, 2, 1))
	if _, err := l.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestFullRepoFirstRequestPaysEverything(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	f := NewFullRepoStore(repo)
	if f.ImageSize() != 100 {
		t.Fatalf("ImageSize = %d", f.ImageSize())
	}
	eff, err := f.Request(sp(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if eff != 0.2 {
		t.Fatalf("container efficiency = %v, want 0.2", eff)
	}
	st := f.Stats()
	if st.BytesWritten != 100 || st.TransferredBytes != 100 {
		t.Fatalf("first request stats: %+v", st)
	}
	f.Request(sp(3))
	st = f.Stats()
	if st.BytesWritten != 100 || st.TransferredBytes != 100 {
		t.Fatalf("later requests must be free: %+v", st)
	}
}

func TestFullRepoInvalidate(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	f := NewFullRepoStore(repo)
	f.Request(sp(1))
	f.Invalidate()
	f.Request(sp(1))
	st := f.Stats()
	if st.BytesWritten != 200 || st.TransferredBytes != 200 {
		t.Fatalf("invalidate should force rebuild: %+v", st)
	}
}

func TestFullRepoEmptySpec(t *testing.T) {
	f := NewFullRepoStore(flatRepo(t, 2, 1))
	if _, err := f.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestIdealCoWStore(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	s := NewIdealCoWStore(repo)
	added, err := s.Request(sp(1, 2, 3))
	if err != nil || added != 30 {
		t.Fatalf("first request: added=%d err=%v", added, err)
	}
	added, _ = s.Request(sp(2, 3, 4)) // only {4} new
	if added != 10 {
		t.Fatalf("second request added %d, want 10", added)
	}
	if s.TotalData() != 40 {
		t.Fatalf("TotalData = %d, want 40 (each package once)", s.TotalData())
	}
	st := s.Stats()
	if st.BytesWritten != 40 {
		t.Fatalf("BytesWritten = %d, want 40", st.BytesWritten)
	}
	// Transfers are exactly the requested bytes: 30 + 30.
	if st.TransferredBytes != 60 {
		t.Fatalf("TransferredBytes = %d, want 60", st.TransferredBytes)
	}
	if _, err := s.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}
