// Package trace records and replays job request streams as JSON lines,
// enabling the paper's trace-driven simulation methodology: a stream
// generated once (or captured from a real submission system) can be
// replayed against any cache configuration.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Record is one traced job request.
type Record struct {
	// Seq is the request's position in the stream, starting at 0.
	Seq int `json:"seq"`
	// Packages lists the required package keys (name/version/platform).
	Packages []string `json:"packages"`
}

// Save writes the stream to w, one JSON record per line.
func Save(w io.Writer, repo *pkggraph.Repo, stream []spec.Spec) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, s := range stream {
		rec := Record{Seq: i, Packages: make([]string, 0, s.Len())}
		for _, id := range s.IDs() {
			rec.Packages = append(rec.Packages, repo.Package(id).Key())
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("trace: encoding request %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the stream to the named file.
func SaveFile(path string, repo *pkggraph.Repo, stream []spec.Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Save(f, repo, stream); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a stream saved by Save, resolving package keys against
// repo. Records must appear in Seq order; gaps or reordering are
// errors, since a scrambled trace silently changes the experiment.
func Load(r io.Reader, repo *pkggraph.Repo) ([]spec.Spec, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var stream []spec.Spec
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding request %d: %w", len(stream), err)
		}
		if rec.Seq != len(stream) {
			return nil, fmt.Errorf("trace: record %d has seq %d (out of order or gap)", len(stream), rec.Seq)
		}
		ids := make([]pkggraph.PkgID, 0, len(rec.Packages))
		for _, key := range rec.Packages {
			id, ok := repo.Lookup(key)
			if !ok {
				return nil, fmt.Errorf("trace: request %d references unknown package %q", rec.Seq, key)
			}
			ids = append(ids, id)
		}
		stream = append(stream, spec.New(ids))
	}
	return stream, nil
}

// LoadFile reads a stream from the named file.
func LoadFile(path string, repo *pkggraph.Repo) ([]spec.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, repo)
}
