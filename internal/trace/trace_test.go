package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	return pkggraph.MustGenerate(cfg, 42)
}

func TestRoundTrip(t *testing.T) {
	repo := testRepo(t)
	stream, err := workload.Stream(workload.NewDepClosure(repo, 1), 10, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, repo, stream); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf, repo)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(loaded) != len(stream) {
		t.Fatalf("len = %d, want %d", len(loaded), len(stream))
	}
	for i := range stream {
		if !loaded[i].Equal(stream[i]) {
			t.Fatalf("request %d differs after round trip", i)
		}
	}
}

func TestLoadRejectsGap(t *testing.T) {
	repo := testRepo(t)
	text := `{"seq":0,"packages":[]}` + "\n" + `{"seq":2,"packages":[]}` + "\n"
	if _, err := Load(strings.NewReader(text), repo); err == nil {
		t.Fatal("expected error for seq gap")
	}
}

func TestLoadRejectsUnknownPackage(t *testing.T) {
	repo := testRepo(t)
	text := `{"seq":0,"packages":["ghost/1.0/p"]}` + "\n"
	if _, err := Load(strings.NewReader(text), repo); err == nil {
		t.Fatal("expected error for unknown package")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	repo := testRepo(t)
	if _, err := Load(strings.NewReader("not json\n"), repo); err == nil {
		t.Fatal("expected error for malformed input")
	}
}

func TestLoadEmpty(t *testing.T) {
	repo := testRepo(t)
	stream, err := Load(strings.NewReader(""), repo)
	if err != nil {
		t.Fatalf("Load empty: %v", err)
	}
	if len(stream) != 0 {
		t.Fatalf("empty trace produced %d requests", len(stream))
	}
}

func TestSaveLoadFile(t *testing.T) {
	repo := testRepo(t)
	path := t.TempDir() + "/trace.jsonl"
	stream := []spec.Spec{spec.New([]pkggraph.PkgID{0, 1})}
	if err := SaveFile(path, repo, stream); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path, repo)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if len(loaded) != 1 || !loaded[0].Equal(stream[0]) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(t.TempDir()+"/missing", repo); err == nil {
		t.Fatal("expected error for missing file")
	}
}
