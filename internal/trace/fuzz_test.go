package trace

import (
	"strings"
	"testing"

	"repro/internal/pkggraph"
)

// FuzzLoad feeds arbitrary bytes to the trace loader: it must reject
// or accept without panicking, and accepted traces must re-serialize.
func FuzzLoad(f *testing.F) {
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "a", Version: "1", Platform: "p", Tier: pkggraph.TierCore, Size: 1, FileCount: 1},
		{ID: 1, Name: "b", Version: "1", Platform: "p", Tier: pkggraph.TierCore, Size: 1, FileCount: 1},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(`{"seq":0,"packages":["a/1/p"]}` + "\n")
	f.Add(`{"seq":0,"packages":["a/1/p","b/1/p"]}` + "\n" + `{"seq":1,"packages":[]}` + "\n")
	f.Add(`{"seq":5}` + "\n")
	f.Add(`not json`)
	f.Add("")
	f.Add(`{"seq":0,"packages":["ghost/1/p"]}` + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		stream, err := Load(strings.NewReader(input), repo)
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := Save(&sb, repo, stream); err != nil {
			t.Fatalf("Save failed on accepted trace: %v", err)
		}
		back, err := Load(strings.NewReader(sb.String()), repo)
		if err != nil {
			t.Fatalf("round trip load failed: %v", err)
		}
		if len(back) != len(stream) {
			t.Fatalf("round trip length %d vs %d", len(back), len(stream))
		}
		for i := range back {
			if !back[i].Equal(stream[i]) {
				t.Fatalf("round trip changed request %d", i)
			}
		}
	})
}
