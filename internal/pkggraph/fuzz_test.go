package pkggraph

import (
	"bytes"
	"testing"
)

// FuzzLoad throws arbitrary bytes at the repository loader: it must
// reject or accept without panicking, and accepted repositories must
// round-trip through Save.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	MustGenerate(smallGenConfig(), 1).Save(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte(`{"name":"x","version":"1","platform":"p","tier":"core","size":1,"files":1}`))
	f.Add([]byte(`{"name":"x","version":"1","platform":"p","tier":"bogus","size":1,"files":1}`))
	f.Add([]byte(`{"name":"a","version":"1","platform":"p","tier":"core","size":-5,"files":1}`))
	f.Add([]byte("not json"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, input []byte) {
		repo, err := Load(bytes.NewReader(input))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := repo.Save(&out); err != nil {
			t.Fatalf("Save failed on accepted repo: %v", err)
		}
		back, err := Load(&out)
		if err != nil {
			t.Fatalf("round trip load failed: %v", err)
		}
		if back.Len() != repo.Len() || back.TotalSize() != repo.TotalSize() {
			t.Fatalf("round trip changed repo: %d/%d vs %d/%d",
				back.Len(), back.TotalSize(), repo.Len(), repo.TotalSize())
		}
	})
}
