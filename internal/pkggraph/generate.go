package pkggraph

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig controls the synthetic repository generator. The defaults
// (DefaultGenConfig) are calibrated to the SFT CVMFS repository the
// paper characterizes: 9,660 packages in a hierarchical dependency tree
// where a handful of core components are transitive dependencies of
// nearly everything, and a uniform random selection of up to 100
// packages closes to roughly 5x as many packages (Figure 3).
type GenConfig struct {
	// Family counts per tier. Each family expands into
	// VersionsPerFamily distinct packages.
	CoreFamilies        int
	FrameworkFamilies   int
	LibraryFamilies     int
	ApplicationFamilies int
	VersionsPerFamily   int

	// Platform is the platform/configuration string attached to every
	// generated package key.
	Platform string

	// Size distribution: package sizes are log-normal with the given
	// median and sigma (of the underlying normal). Core packages are
	// scaled by CoreSizeFactor to model base frameworks, toolchains and
	// calibration data.
	MedianPkgBytes int64
	SizeSigma      float64
	CoreSizeFactor float64

	// MeanFileBytes controls how many synthetic files a package is
	// considered to contain (used by the CVMFS substrate).
	MeanFileBytes int64

	// ZipfS is the skew of the popularity distribution used when
	// choosing which families a package depends on. Larger values
	// concentrate dependencies on fewer, more popular families,
	// producing the "compact distribution of common packages" the paper
	// identifies as the property its merging strategy exploits.
	ZipfS float64

	// Dependency fan-out ranges [min,max] per tier, counted in
	// families.
	FrameworkCoreDeps [2]int
	LibraryFwDeps     [2]int
	LibraryLibDeps    [2]int
	AppLibDeps        [2]int
	AppFwDeps         [2]int
}

// DefaultGenConfig returns the SFT-calibrated configuration:
// (15+150+750+1500) families x 4 versions = 9,660 packages, total size
// ~0.4 TB.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		CoreFamilies:        15,
		FrameworkFamilies:   150,
		LibraryFamilies:     750,
		ApplicationFamilies: 1500,
		VersionsPerFamily:   4,
		Platform:            "x86_64-centos7-gcc8-opt",
		MedianPkgBytes:      12 << 20, // 12 MB
		SizeSigma:           1.6,
		CoreSizeFactor:      15,
		MeanFileBytes:       128 << 10, // 128 KB
		ZipfS:               1.1,
		FrameworkCoreDeps:   [2]int{2, 4},
		LibraryFwDeps:       [2]int{1, 3},
		LibraryLibDeps:      [2]int{0, 3},
		AppLibDeps:          [2]int{2, 5},
		AppFwDeps:           [2]int{0, 1},
	}
}

// TotalPackages returns the number of packages the configuration will
// generate.
func (c GenConfig) TotalPackages() int {
	return (c.CoreFamilies + c.FrameworkFamilies + c.LibraryFamilies + c.ApplicationFamilies) * c.VersionsPerFamily
}

func (c GenConfig) validate() error {
	if c.VersionsPerFamily < 1 {
		return fmt.Errorf("pkggraph: VersionsPerFamily must be >= 1, got %d", c.VersionsPerFamily)
	}
	if c.CoreFamilies < 1 {
		return fmt.Errorf("pkggraph: need at least one core family")
	}
	if c.MedianPkgBytes <= 0 {
		return fmt.Errorf("pkggraph: MedianPkgBytes must be positive")
	}
	if c.SizeSigma < 0 {
		return fmt.Errorf("pkggraph: SizeSigma must be non-negative")
	}
	for _, rng := range [][2]int{c.FrameworkCoreDeps, c.LibraryFwDeps, c.LibraryLibDeps, c.AppLibDeps, c.AppFwDeps} {
		if rng[0] < 0 || rng[1] < rng[0] {
			return fmt.Errorf("pkggraph: invalid dependency range %v", rng)
		}
	}
	return nil
}

// family is a generator-internal handle: a named family and the IDs of
// its version packages (oldest first).
type family struct {
	name     string
	versions []PkgID
}

// zipfSampler draws family indices with probability proportional to
// 1/(rank+1)^s, so low indices (popular families) dominate.
type zipfSampler struct {
	cum []float64 // cumulative weights
}

func newZipfSampler(n int, s float64) *zipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfSampler{cum: cum}
}

// sample returns an index in [0, n).
func (z *zipfSampler) sample(r *rand.Rand) int {
	if len(z.cum) == 0 {
		return 0
	}
	x := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleBelow returns an index in [0, limit), used for intra-tier
// dependencies that must point at earlier families to stay acyclic.
func (z *zipfSampler) sampleBelow(r *rand.Rand, limit int) int {
	if limit <= 0 {
		return -1
	}
	x := r.Float64() * z.cum[limit-1]
	lo, hi := 0, limit-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pickVersion chooses a version package from a family, skewed toward
// the newest version (60/25/10/5 across the newest four), mirroring how
// most jobs track recent releases while some pin old ones.
func pickVersion(r *rand.Rand, fam family) PkgID {
	n := len(fam.versions)
	if n == 1 {
		return fam.versions[0]
	}
	x := r.Float64()
	var back int
	switch {
	case x < 0.60:
		back = 0
	case x < 0.85:
		back = 1
	case x < 0.95:
		back = 2
	default:
		back = 3
	}
	if back >= n {
		back = n - 1
	}
	return fam.versions[n-1-back]
}

// Generate builds a synthetic repository per cfg using a deterministic
// PRNG seeded with seed. The same (cfg, seed) always yields the same
// repository.
func Generate(cfg GenConfig, seed int64) (*Repo, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	total := cfg.TotalPackages()
	pkgs := make([]Package, 0, total)

	logMedian := math.Log(float64(cfg.MedianPkgBytes))
	sizeFor := func(tier Tier) int64 {
		v := math.Exp(logMedian + r.NormFloat64()*cfg.SizeSigma)
		if tier == TierCore {
			v *= cfg.CoreSizeFactor
		}
		if v < 4096 {
			v = 4096
		}
		return int64(v)
	}
	filesFor := func(size int64) int {
		if cfg.MeanFileBytes <= 0 {
			return 1
		}
		n := int(float64(size)/float64(cfg.MeanFileBytes)*(0.5+r.Float64())) + 1
		if n > 200000 {
			n = 200000
		}
		return n
	}

	addFamily := func(tier Tier, name string, deps func(version int) []PkgID) family {
		fam := family{name: name}
		for v := 0; v < cfg.VersionsPerFamily; v++ {
			id := PkgID(len(pkgs))
			size := sizeFor(tier)
			pkgs = append(pkgs, Package{
				ID:        id,
				Name:      name,
				Version:   fmt.Sprintf("%d.%d.0", v+1, r.Intn(10)),
				Platform:  cfg.Platform,
				Tier:      tier,
				Size:      size,
				FileCount: filesFor(size),
				Deps:      deps(v),
			})
			fam.versions = append(fam.versions, id)
		}
		return fam
	}

	intn := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + r.Intn(hi-lo+1)
	}

	// Tier 0: core families with no dependencies.
	coreFams := make([]family, 0, cfg.CoreFamilies)
	for i := 0; i < cfg.CoreFamilies; i++ {
		coreFams = append(coreFams, addFamily(TierCore, fmt.Sprintf("core-%03d", i),
			func(int) []PkgID { return nil }))
	}
	coreZipf := newZipfSampler(len(coreFams), cfg.ZipfS)

	// depPick draws distinct families from a tier via the Zipf sampler
	// and resolves each to a version package.
	depPick := func(fams []family, z *zipfSampler, count, limit int) []PkgID {
		if count <= 0 || len(fams) == 0 {
			return nil
		}
		chosen := make(map[int]struct{}, count)
		out := make([]PkgID, 0, count)
		for attempts := 0; len(out) < count && attempts < count*8; attempts++ {
			var idx int
			if limit > 0 {
				idx = z.sampleBelow(r, limit)
				if idx < 0 {
					break
				}
			} else {
				idx = z.sample(r)
			}
			if _, dup := chosen[idx]; dup {
				continue
			}
			chosen[idx] = struct{}{}
			out = append(out, pickVersion(r, fams[idx]))
		}
		return out
	}

	// Tier 1: frameworks depend on core families.
	fwFams := make([]family, 0, cfg.FrameworkFamilies)
	for i := 0; i < cfg.FrameworkFamilies; i++ {
		fwFams = append(fwFams, addFamily(TierFramework, fmt.Sprintf("framework-%03d", i),
			func(int) []PkgID {
				return depPick(coreFams, coreZipf, intn(cfg.FrameworkCoreDeps[0], cfg.FrameworkCoreDeps[1]), 0)
			}))
	}
	fwZipf := newZipfSampler(len(fwFams), cfg.ZipfS)

	// Tier 2: libraries depend on frameworks and earlier libraries.
	libFams := make([]family, 0, cfg.LibraryFamilies)
	libZipf := newZipfSampler(cfg.LibraryFamilies, cfg.ZipfS)
	for i := 0; i < cfg.LibraryFamilies; i++ {
		idx := i
		libFams = append(libFams, addFamily(TierLibrary, fmt.Sprintf("library-%04d", i),
			func(int) []PkgID {
				deps := depPick(fwFams, fwZipf, intn(cfg.LibraryFwDeps[0], cfg.LibraryFwDeps[1]), 0)
				deps = append(deps, depPick(libFams, libZipf, intn(cfg.LibraryLibDeps[0], cfg.LibraryLibDeps[1]), idx)...)
				return deps
			}))
	}

	// Tier 3: applications depend on libraries (and sometimes a
	// framework directly).
	for i := 0; i < cfg.ApplicationFamilies; i++ {
		addFamily(TierApplication, fmt.Sprintf("app-%04d", i),
			func(int) []PkgID {
				deps := depPick(libFams, libZipf, intn(cfg.AppLibDeps[0], cfg.AppLibDeps[1]), 0)
				deps = append(deps, depPick(fwFams, fwZipf, intn(cfg.AppFwDeps[0], cfg.AppFwDeps[1]), 0)...)
				return deps
			})
	}

	return New(pkgs)
}

// MustGenerate is Generate that panics on error; convenient for
// examples, benchmarks and tests where the config is known-valid.
func MustGenerate(cfg GenConfig, seed int64) *Repo {
	r, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return r
}
