package pkggraph

import "sort"

// RepoStats summarizes the structural properties the paper
// characterizes in Section VI ("Characterizing Package Dependencies").
type RepoStats struct {
	Packages     int
	Families     int
	TotalSize    int64
	TierCounts   map[Tier]int
	TierSizes    map[Tier]int64
	MaxDepth     int     // longest dependency chain
	MeanOutDeg   float64 // mean direct dependencies per package
	MeanInDeg    float64 // mean direct dependents per package
	MeanClosure  float64 // mean transitive closure cardinality (incl. self)
	MaxClosure   int
	TopDependees []PkgID // the 10 most depended-upon packages (transitively)
}

// Stats computes structural statistics over the repository.
func (r *Repo) Stats() RepoStats {
	s := RepoStats{
		Packages:   r.Len(),
		Families:   r.Families(),
		TotalSize:  r.TotalSize(),
		TierCounts: make(map[Tier]int),
		TierSizes:  make(map[Tier]int64),
	}
	if r.Len() == 0 {
		return s
	}
	var outDeg int
	inCount := make([]int, r.Len()) // transitive dependent counts
	depth := make([]int, r.Len())   // longest chain ending at pkg
	for i := range r.pkgs {
		p := &r.pkgs[i]
		s.TierCounts[p.Tier]++
		s.TierSizes[p.Tier] += p.Size
		outDeg += len(p.Deps)
		var closure int
		closure = len(r.closures[i])
		s.MeanClosure += float64(closure)
		if closure > s.MaxClosure {
			s.MaxClosure = closure
		}
		for _, c := range r.closures[i] {
			if c != PkgID(i) {
				inCount[c]++
			}
		}
	}
	s.MeanClosure /= float64(r.Len())
	s.MeanOutDeg = float64(outDeg) / float64(r.Len())
	var inTotal int
	for i := range r.pkgs {
		inTotal += len(r.pkgs[i].Deps)
	}
	s.MeanInDeg = float64(inTotal) / float64(r.Len())

	// Depth: packages are not guaranteed to be in topological order by
	// ID, so walk a topological order.
	order, err := topoOrder(r.pkgs)
	if err == nil {
		for _, id := range order {
			d := 0
			for _, dep := range r.pkgs[id].Deps {
				if depth[dep]+1 > d {
					d = depth[dep] + 1
				}
			}
			depth[id] = d
			if d > s.MaxDepth {
				s.MaxDepth = d
			}
		}
	}

	type rankedPkg struct {
		id PkgID
		n  int
	}
	ranked := make([]rankedPkg, r.Len())
	for i := range inCount {
		ranked[i] = rankedPkg{PkgID(i), inCount[i]}
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].n != ranked[b].n {
			return ranked[a].n > ranked[b].n
		}
		return ranked[a].id < ranked[b].id
	})
	top := 10
	if top > len(ranked) {
		top = len(ranked)
	}
	for i := 0; i < top; i++ {
		s.TopDependees = append(s.TopDependees, ranked[i].id)
	}
	return s
}

// TransitiveDependents returns, for every package, the number of other
// packages whose closure contains it. Near-universal core components —
// the ones the paper observes "have a very high likelihood of appearing
// in every container image" — have counts close to Len().
func (r *Repo) TransitiveDependents() []int {
	counts := make([]int, r.Len())
	for i := range r.pkgs {
		for _, c := range r.closures[i] {
			if c != PkgID(i) {
				counts[c]++
			}
		}
	}
	return counts
}

// SharedCoreFraction reports the fraction of packages whose closure
// includes at least one TierCore package: a measure of how hierarchical
// the repository is.
func (r *Repo) SharedCoreFraction() float64 {
	if r.Len() == 0 {
		return 0
	}
	n := 0
	for i := range r.pkgs {
		for _, c := range r.closures[i] {
			if r.pkgs[c].Tier == TierCore {
				n++
				break
			}
		}
	}
	return float64(n) / float64(r.Len())
}
