package pkggraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// smallGenConfig is a scaled-down repository for fast tests: same tier
// proportions as the default, ~480 packages.
func smallGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallGenConfig()
	a := MustGenerate(cfg, 42)
	b := MustGenerate(cfg, 42)
	if a.Len() != b.Len() || a.TotalSize() != b.TotalSize() {
		t.Fatalf("same seed produced different repos: %d/%d vs %d/%d",
			a.Len(), a.TotalSize(), b.Len(), b.TotalSize())
	}
	for i := 0; i < a.Len(); i++ {
		pa, pb := a.Package(PkgID(i)), b.Package(PkgID(i))
		if pa.Key() != pb.Key() || pa.Size != pb.Size || len(pa.Deps) != len(pb.Deps) {
			t.Fatalf("package %d differs: %v vs %v", i, pa, pb)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := smallGenConfig()
	a := MustGenerate(cfg, 1)
	b := MustGenerate(cfg, 2)
	if a.TotalSize() == b.TotalSize() {
		t.Fatal("different seeds produced identical total sizes (suspicious)")
	}
}

func TestGeneratePackageCount(t *testing.T) {
	cfg := smallGenConfig()
	r := MustGenerate(cfg, 7)
	if r.Len() != cfg.TotalPackages() {
		t.Fatalf("Len = %d, want %d", r.Len(), cfg.TotalPackages())
	}
}

func TestGenerateDefaultMatchesSFTScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	cfg := DefaultGenConfig()
	if got := cfg.TotalPackages(); got != 9660 {
		t.Fatalf("default config generates %d packages, want 9660 (paper, Section VI)", got)
	}
	r := MustGenerate(cfg, 1)
	// Total repo size should land in the hundreds-of-GB range the SFT
	// calibration targets (see DESIGN.md §3).
	gb := float64(r.TotalSize()) / float64(1<<30)
	if gb < 200 || gb > 900 {
		t.Errorf("total repo size = %.0f GB, want 200-900 GB", gb)
	}
}

func TestGenerateTiersAcyclicAndLayered(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 3)
	for i := 0; i < r.Len(); i++ {
		p := r.Package(PkgID(i))
		for _, d := range p.Deps {
			dp := r.Package(d)
			if dp.Tier > p.Tier {
				t.Fatalf("%s (%v) depends on lower-tier %s (%v)", p.Key(), p.Tier, dp.Key(), dp.Tier)
			}
			if dp.Tier == p.Tier && dp.Tier != TierLibrary {
				t.Fatalf("intra-tier dep outside library tier: %s -> %s", p.Key(), dp.Key())
			}
		}
	}
}

func TestGenerateCoreHasNoDeps(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 4)
	for i := 0; i < r.Len(); i++ {
		p := r.Package(PkgID(i))
		if p.Tier == TierCore && len(p.Deps) != 0 {
			t.Fatalf("core package %s has deps %v", p.Key(), p.Deps)
		}
	}
}

func TestGenerateSharedCore(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 5)
	// The generator must produce the paper's hierarchical property:
	// nearly all packages transitively depend on core components.
	if frac := r.SharedCoreFraction(); frac < 0.9 {
		t.Fatalf("SharedCoreFraction = %v, want >= 0.9", frac)
	}
}

// TestClosureExpansionMatchesFig3 verifies the paper's Figure 3 shape:
// for small selections (~100 packages) the dependency closure contains
// roughly 5x as many packages, and the expansion factor falls as the
// selection grows.
func TestClosureExpansionMatchesFig3(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	repo := MustGenerate(DefaultGenConfig(), 1)
	rng := rand.New(rand.NewSource(99))
	expand := func(n int) float64 {
		var total float64
		const reps = 20
		for rep := 0; rep < reps; rep++ {
			ids := make([]PkgID, 0, n)
			seen := make(map[PkgID]bool, n)
			for len(ids) < n {
				id := PkgID(rng.Intn(repo.Len()))
				if !seen[id] {
					seen[id] = true
					ids = append(ids, id)
				}
			}
			total += float64(len(repo.Closure(ids))) / float64(n)
		}
		return total / reps
	}
	at100 := expand(100)
	at1000 := expand(1000)
	if at100 < 3.0 || at100 > 8.0 {
		t.Errorf("expansion at 100 packages = %.2fx, want ~5x (3-8)", at100)
	}
	if at1000 >= at100 {
		t.Errorf("expansion should fall with selection size: at100=%.2f at1000=%.2f", at100, at1000)
	}
	if at1000 < 1.5 || at1000 > 5.0 {
		t.Errorf("expansion at 1000 packages = %.2fx, want 1.5-5x", at1000)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := DefaultGenConfig()
	bad.VersionsPerFamily = 0
	if _, err := Generate(bad, 1); err == nil {
		t.Error("expected error for zero versions")
	}
	bad = DefaultGenConfig()
	bad.CoreFamilies = 0
	if _, err := Generate(bad, 1); err == nil {
		t.Error("expected error for zero core families")
	}
	bad = DefaultGenConfig()
	bad.MedianPkgBytes = 0
	if _, err := Generate(bad, 1); err == nil {
		t.Error("expected error for zero median size")
	}
	bad = DefaultGenConfig()
	bad.AppLibDeps = [2]int{5, 2}
	if _, err := Generate(bad, 1); err == nil {
		t.Error("expected error for inverted dep range")
	}
}

func TestMustGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerate should panic on invalid config")
		}
	}()
	bad := DefaultGenConfig()
	bad.VersionsPerFamily = -1
	MustGenerate(bad, 1)
}

func TestZipfSamplerSkew(t *testing.T) {
	z := newZipfSampler(100, 1.1)
	r := rand.New(rand.NewSource(8))
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.sample(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// sampleBelow must respect the limit.
	for i := 0; i < 1000; i++ {
		if idx := z.sampleBelow(r, 10); idx < 0 || idx >= 10 {
			t.Fatalf("sampleBelow out of range: %d", idx)
		}
	}
	if z.sampleBelow(r, 0) != -1 {
		t.Fatal("sampleBelow(0) should return -1")
	}
}

func TestPickVersionSkewsLatest(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	fam := family{name: "x", versions: []PkgID{0, 1, 2, 3}}
	counts := make(map[PkgID]int)
	for i := 0; i < 10000; i++ {
		counts[pickVersion(r, fam)]++
	}
	if counts[3] <= counts[0] {
		t.Fatalf("latest version not favored: %v", counts)
	}
	single := family{name: "y", versions: []PkgID{7}}
	if pickVersion(r, single) != 7 {
		t.Fatal("single-version family must return its only version")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := MustGenerate(smallGenConfig(), 21)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != orig.Len() || loaded.TotalSize() != orig.TotalSize() {
		t.Fatalf("round trip size mismatch")
	}
	for i := 0; i < orig.Len(); i++ {
		a, b := orig.Package(PkgID(i)), loaded.Package(PkgID(i))
		if a.Key() != b.Key() || a.Size != b.Size || a.Tier != b.Tier || a.FileCount != b.FileCount {
			t.Fatalf("package %d mismatch: %+v vs %+v", i, a, b)
		}
		if !idsEqual(a.Deps, b.Deps) {
			t.Fatalf("package %d deps mismatch: %v vs %v", i, a.Deps, b.Deps)
		}
	}
}

func TestLoadRejectsUnknownTier(t *testing.T) {
	_, err := Load(bytes.NewBufferString(`{"name":"x","version":"1","platform":"p","tier":"bogus","size":1,"files":1}`))
	if err == nil {
		t.Fatal("expected error for unknown tier")
	}
}

func TestLoadRejectsUnknownDep(t *testing.T) {
	_, err := Load(bytes.NewBufferString(`{"name":"x","version":"1","platform":"p","tier":"core","size":1,"files":1,"deps":["gone/1/p"]}`))
	if err == nil {
		t.Fatal("expected error for unknown dep key")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/repo.jsonl"
	orig := MustGenerate(smallGenConfig(), 22)
	if err := orig.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Len() != orig.Len() {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(dir + "/missing.jsonl"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestWriteDOT(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 31)
	var buf bytes.Buffer
	if err := r.WriteDOT(&buf, 50); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "digraph repo {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatalf("not a DOT document:\n%.80s", out)
	}
	if strings.Count(out, "[label=") != 50 {
		t.Fatalf("node count = %d, want 50", strings.Count(out, "[label="))
	}
	// Edges must only reference included nodes.
	if strings.Contains(out, "-> n500") {
		t.Fatal("edge to excluded node")
	}
	// maxNodes 0 means everything.
	buf.Reset()
	if err := r.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "[label="); got != r.Len() {
		t.Fatalf("full graph nodes = %d, want %d", got, r.Len())
	}
}
