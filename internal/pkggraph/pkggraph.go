// Package pkggraph models a structured software repository: a set of
// packages identified by name/version/platform, each with an installed
// size and a list of direct dependencies forming a DAG.
//
// This is the substrate the LANDLORD paper builds on. The paper extracts
// a dependency tree of the SFT CVMFS repository (9,660 packages) from
// build metadata; here the same shape is produced synthetically by
// Generate (see generate.go), calibrated so that dependency closures
// behave like the paper's Figure 3.
//
// All higher layers (specifications, the cache manager, the simulator)
// refer to packages by compact PkgID indices into a Repo, so set
// operations are merge walks over sorted ID slices.
package pkggraph

import (
	"fmt"
	"sort"
)

// PkgID is a compact index of a package within a Repo. IDs are assigned
// densely from 0 in the order packages are given to New.
type PkgID uint32

// Tier classifies packages by their position in the dependency
// hierarchy the paper describes: a few near-universal core components, a
// middle of frameworks and libraries, and a long tail of application
// packages.
type Tier uint8

// Tiers, ordered from most to least depended-upon.
const (
	TierCore Tier = iota
	TierFramework
	TierLibrary
	TierApplication
)

// String returns the lower-case tier name.
func (t Tier) String() string {
	switch t {
	case TierCore:
		return "core"
	case TierFramework:
		return "framework"
	case TierLibrary:
		return "library"
	case TierApplication:
		return "application"
	default:
		return fmt.Sprintf("tier(%d)", uint8(t))
	}
}

// Package describes one installable unit of the repository. A program or
// library typically appears as several Packages: one per version and
// platform, exactly as in CVMFS.
type Package struct {
	ID        PkgID
	Name      string // family name, e.g. "ROOT"
	Version   string // e.g. "6.18.04"
	Platform  string // e.g. "x86_64-centos7-gcc8-opt"
	Tier      Tier
	Size      int64   // installed bytes
	FileCount int     // number of files, used by the CVMFS substrate
	Deps      []PkgID // direct dependencies, sorted ascending
}

// Key returns the unique name/version/platform string for the package,
// the identifier the paper's Jaccard metric operates over.
func (p *Package) Key() string {
	return p.Name + "/" + p.Version + "/" + p.Platform
}

// Repo is an immutable package repository with precomputed transitive
// closures. Construct with New; a Repo is safe for concurrent use.
type Repo struct {
	pkgs      []Package
	byKey     map[string]PkgID
	families  map[string][]PkgID // family name -> versions, in insertion order
	closures  [][]PkgID          // per-package transitive closure (incl. self), sorted
	totalSize int64
}

// New validates pkgs (dense IDs, unique keys, in-range acyclic deps) and
// builds a Repo with per-package transitive closures precomputed.
func New(pkgs []Package) (*Repo, error) {
	r := &Repo{
		pkgs:     pkgs,
		byKey:    make(map[string]PkgID, len(pkgs)),
		families: make(map[string][]PkgID),
	}
	for i := range pkgs {
		p := &pkgs[i]
		if p.ID != PkgID(i) {
			return nil, fmt.Errorf("pkggraph: package %q has ID %d, want dense ID %d", p.Key(), p.ID, i)
		}
		if p.Size < 0 {
			return nil, fmt.Errorf("pkggraph: package %q has negative size %d", p.Key(), p.Size)
		}
		key := p.Key()
		if _, dup := r.byKey[key]; dup {
			return nil, fmt.Errorf("pkggraph: duplicate package key %q", key)
		}
		r.byKey[key] = p.ID
		r.families[p.Name] = append(r.families[p.Name], p.ID)
		r.totalSize += p.Size
		for _, d := range p.Deps {
			if int(d) >= len(pkgs) {
				return nil, fmt.Errorf("pkggraph: package %q depends on out-of-range ID %d", key, d)
			}
			if d == p.ID {
				return nil, fmt.Errorf("pkggraph: package %q depends on itself", key)
			}
		}
		if !sort.SliceIsSorted(p.Deps, func(a, b int) bool { return p.Deps[a] < p.Deps[b] }) {
			sort.Slice(p.Deps, func(a, b int) bool { return p.Deps[a] < p.Deps[b] })
		}
	}
	order, err := topoOrder(pkgs)
	if err != nil {
		return nil, err
	}
	r.closures = buildClosures(pkgs, order)
	return r, nil
}

// topoOrder returns a dependency-first ordering of package IDs, or an
// error naming a package on a cycle.
func topoOrder(pkgs []Package) ([]PkgID, error) {
	n := len(pkgs)
	indeg := make([]int, n) // number of unprocessed dependencies
	rev := make([][]PkgID, n)
	for i := range pkgs {
		indeg[i] = len(pkgs[i].Deps)
		for _, d := range pkgs[i].Deps {
			rev[d] = append(rev[d], PkgID(i))
		}
	}
	queue := make([]PkgID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, PkgID(i))
		}
	}
	order := make([]PkgID, 0, n)
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, id)
		for _, u := range rev[id] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("pkggraph: dependency cycle involving %q", pkgs[i].Key())
			}
		}
	}
	return order, nil
}

// buildClosures computes, in dependency-first order, each package's
// transitive closure (including itself) as a sorted ID slice.
func buildClosures(pkgs []Package, order []PkgID) [][]PkgID {
	closures := make([][]PkgID, len(pkgs))
	for _, id := range order {
		p := &pkgs[id]
		if len(p.Deps) == 0 {
			closures[id] = []PkgID{id}
			continue
		}
		// Union the dependency closures plus self via a mark set.
		seen := make(map[PkgID]struct{}, 16)
		seen[id] = struct{}{}
		for _, d := range p.Deps {
			for _, c := range closures[d] {
				seen[c] = struct{}{}
			}
		}
		cl := make([]PkgID, 0, len(seen))
		for c := range seen {
			cl = append(cl, c)
		}
		sort.Slice(cl, func(a, b int) bool { return cl[a] < cl[b] })
		closures[id] = cl
	}
	return closures
}

// Len returns the number of packages in the repository.
func (r *Repo) Len() int { return len(r.pkgs) }

// TotalSize returns the sum of all package sizes: the full-repository
// image size in Section III's "imperfect solution" discussion.
func (r *Repo) TotalSize() int64 { return r.totalSize }

// Package returns the package with the given ID. It panics on an
// out-of-range ID, which always indicates a caller bug.
func (r *Repo) Package(id PkgID) *Package { return &r.pkgs[id] }

// Lookup finds a package by its name/version/platform key.
func (r *Repo) Lookup(key string) (PkgID, bool) {
	id, ok := r.byKey[key]
	return id, ok
}

// Families returns the number of distinct package family names.
func (r *Repo) Families() int { return len(r.families) }

// FamilyVersions returns the package IDs belonging to a family, in the
// order they were added (oldest version first). The returned slice must
// not be modified.
func (r *Repo) FamilyVersions(name string) []PkgID { return r.families[name] }

// PackageClosure returns the precomputed transitive closure (including
// the package itself) as a sorted ID slice. The returned slice is shared
// and must not be modified.
func (r *Repo) PackageClosure(id PkgID) []PkgID { return r.closures[id] }

// Closure expands a set of package IDs to its full dependency closure,
// returned as a new sorted, duplicate-free slice. This is the paper's
// image-construction step: "when building a simulated image, we
// recursively include dependencies of requested software".
func (r *Repo) Closure(ids []PkgID) []PkgID {
	if len(ids) == 0 {
		return nil
	}
	if len(ids) == 1 {
		out := make([]PkgID, len(r.closures[ids[0]]))
		copy(out, r.closures[ids[0]])
		return out
	}
	seen := make(map[PkgID]struct{}, len(ids)*8)
	for _, id := range ids {
		for _, c := range r.closures[id] {
			seen[c] = struct{}{}
		}
	}
	out := make([]PkgID, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// SetSize returns the total installed size of a set of package IDs. The
// slice may contain duplicates; each distinct ID is counted once only if
// the input is sorted (the canonical form used throughout). For safety
// with unsorted input, duplicates are skipped via adjacency, so callers
// must pass sorted slices.
func (r *Repo) SetSize(ids []PkgID) int64 {
	var total int64
	var prev PkgID
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		total += r.pkgs[id].Size
		prev = id
	}
	return total
}

// ClosureSize returns the installed size of the dependency closure of
// ids.
func (r *Repo) ClosureSize(ids []PkgID) int64 {
	return r.SetSize(r.Closure(ids))
}
