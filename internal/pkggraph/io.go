package pkggraph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonPackage is the on-disk form of a Package. Dependencies are stored
// as keys rather than IDs so the file remains meaningful if packages
// are reordered.
type jsonPackage struct {
	Name      string   `json:"name"`
	Version   string   `json:"version"`
	Platform  string   `json:"platform"`
	Tier      string   `json:"tier"`
	Size      int64    `json:"size"`
	FileCount int      `json:"files"`
	Deps      []string `json:"deps,omitempty"`
}

func tierFromString(s string) (Tier, error) {
	switch s {
	case "core":
		return TierCore, nil
	case "framework":
		return TierFramework, nil
	case "library":
		return TierLibrary, nil
	case "application":
		return TierApplication, nil
	}
	return 0, fmt.Errorf("pkggraph: unknown tier %q", s)
}

// Save writes the repository as JSON lines (one package per line) to w.
// Packages appear in ID order, so Load reconstructs identical IDs.
func (r *Repo) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.pkgs {
		p := &r.pkgs[i]
		jp := jsonPackage{
			Name:      p.Name,
			Version:   p.Version,
			Platform:  p.Platform,
			Tier:      p.Tier.String(),
			Size:      p.Size,
			FileCount: p.FileCount,
		}
		for _, d := range p.Deps {
			jp.Deps = append(jp.Deps, r.pkgs[d].Key())
		}
		if err := enc.Encode(&jp); err != nil {
			return fmt.Errorf("pkggraph: encoding %q: %w", p.Key(), err)
		}
	}
	return bw.Flush()
}

// SaveFile writes the repository to the named file.
func (r *Repo) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a repository previously written by Save. Dependency keys
// must refer to packages that appear earlier in the stream (Save always
// satisfies this only when the repo was topologically ID-ordered; Load
// therefore resolves keys in a second pass and accepts any order).
func Load(rd io.Reader) (*Repo, error) {
	dec := json.NewDecoder(bufio.NewReader(rd))
	var raw []jsonPackage
	for {
		var jp jsonPackage
		if err := dec.Decode(&jp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("pkggraph: decoding package %d: %w", len(raw), err)
		}
		raw = append(raw, jp)
	}
	pkgs := make([]Package, len(raw))
	keyToID := make(map[string]PkgID, len(raw))
	for i, jp := range raw {
		tier, err := tierFromString(jp.Tier)
		if err != nil {
			return nil, err
		}
		pkgs[i] = Package{
			ID:        PkgID(i),
			Name:      jp.Name,
			Version:   jp.Version,
			Platform:  jp.Platform,
			Tier:      tier,
			Size:      jp.Size,
			FileCount: jp.FileCount,
		}
		keyToID[pkgs[i].Key()] = PkgID(i)
	}
	for i, jp := range raw {
		for _, dk := range jp.Deps {
			id, ok := keyToID[dk]
			if !ok {
				return nil, fmt.Errorf("pkggraph: package %q depends on unknown key %q", pkgs[i].Key(), dk)
			}
			pkgs[i].Deps = append(pkgs[i].Deps, id)
		}
	}
	return New(pkgs)
}

// LoadFile reads a repository from the named file.
func LoadFile(path string) (*Repo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
