package pkggraph

import (
	"sort"
	"testing"
	"testing/quick"
)

// tinyRepo builds a small hand-written repository:
//
//	base (core)
//	fw (framework) -> base
//	libA (library) -> fw
//	libB (library) -> fw, libA
//	app (application) -> libB
func tinyRepo(t *testing.T) *Repo {
	t.Helper()
	pkgs := []Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: TierCore, Size: 100, FileCount: 10},
		{ID: 1, Name: "fw", Version: "1.0", Platform: "p", Tier: TierFramework, Size: 50, FileCount: 5, Deps: []PkgID{0}},
		{ID: 2, Name: "libA", Version: "1.0", Platform: "p", Tier: TierLibrary, Size: 20, FileCount: 2, Deps: []PkgID{1}},
		{ID: 3, Name: "libB", Version: "1.0", Platform: "p", Tier: TierLibrary, Size: 30, FileCount: 3, Deps: []PkgID{1, 2}},
		{ID: 4, Name: "app", Version: "1.0", Platform: "p", Tier: TierApplication, Size: 10, FileCount: 1, Deps: []PkgID{3}},
	}
	r, err := New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func idsEqual(a, b []PkgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewRejectsNonDenseIDs(t *testing.T) {
	_, err := New([]Package{{ID: 5, Name: "x", Version: "1", Platform: "p"}})
	if err == nil {
		t.Fatal("expected error for non-dense ID")
	}
}

func TestNewRejectsDuplicateKeys(t *testing.T) {
	_, err := New([]Package{
		{ID: 0, Name: "x", Version: "1", Platform: "p"},
		{ID: 1, Name: "x", Version: "1", Platform: "p"},
	})
	if err == nil {
		t.Fatal("expected error for duplicate keys")
	}
}

func TestNewRejectsSelfDependency(t *testing.T) {
	_, err := New([]Package{{ID: 0, Name: "x", Version: "1", Platform: "p", Deps: []PkgID{0}}})
	if err == nil {
		t.Fatal("expected error for self dependency")
	}
}

func TestNewRejectsOutOfRangeDep(t *testing.T) {
	_, err := New([]Package{{ID: 0, Name: "x", Version: "1", Platform: "p", Deps: []PkgID{9}}})
	if err == nil {
		t.Fatal("expected error for out-of-range dep")
	}
}

func TestNewRejectsNegativeSize(t *testing.T) {
	_, err := New([]Package{{ID: 0, Name: "x", Version: "1", Platform: "p", Size: -1}})
	if err == nil {
		t.Fatal("expected error for negative size")
	}
}

func TestNewRejectsCycle(t *testing.T) {
	_, err := New([]Package{
		{ID: 0, Name: "a", Version: "1", Platform: "p", Deps: []PkgID{1}},
		{ID: 1, Name: "b", Version: "1", Platform: "p", Deps: []PkgID{0}},
	})
	if err == nil {
		t.Fatal("expected error for cycle")
	}
}

func TestPackageClosure(t *testing.T) {
	r := tinyRepo(t)
	cases := []struct {
		id   PkgID
		want []PkgID
	}{
		{0, []PkgID{0}},
		{1, []PkgID{0, 1}},
		{2, []PkgID{0, 1, 2}},
		{3, []PkgID{0, 1, 2, 3}},
		{4, []PkgID{0, 1, 2, 3, 4}},
	}
	for _, c := range cases {
		if got := r.PackageClosure(c.id); !idsEqual(got, c.want) {
			t.Errorf("closure(%d) = %v, want %v", c.id, got, c.want)
		}
	}
}

func TestClosureOfSet(t *testing.T) {
	r := tinyRepo(t)
	got := r.Closure([]PkgID{2, 4})
	want := []PkgID{0, 1, 2, 3, 4}
	if !idsEqual(got, want) {
		t.Fatalf("Closure = %v, want %v", got, want)
	}
}

func TestClosureEmpty(t *testing.T) {
	r := tinyRepo(t)
	if got := r.Closure(nil); got != nil {
		t.Fatalf("Closure(nil) = %v, want nil", got)
	}
}

func TestClosureSingleIsCopy(t *testing.T) {
	r := tinyRepo(t)
	got := r.Closure([]PkgID{1})
	got[0] = 99
	if r.PackageClosure(1)[0] == 99 {
		t.Fatal("Closure returned shared memory for singleton input")
	}
}

func TestSetSizeAndClosureSize(t *testing.T) {
	r := tinyRepo(t)
	if got := r.SetSize([]PkgID{0, 1}); got != 150 {
		t.Errorf("SetSize = %d, want 150", got)
	}
	// Duplicates in sorted input counted once.
	if got := r.SetSize([]PkgID{0, 0, 1}); got != 150 {
		t.Errorf("SetSize with dup = %d, want 150", got)
	}
	if got := r.ClosureSize([]PkgID{4}); got != 210 {
		t.Errorf("ClosureSize = %d, want 210", got)
	}
}

func TestLookupAndFamilies(t *testing.T) {
	r := tinyRepo(t)
	id, ok := r.Lookup("libA/1.0/p")
	if !ok || id != 2 {
		t.Fatalf("Lookup = %d,%v", id, ok)
	}
	if _, ok := r.Lookup("nope/1/p"); ok {
		t.Fatal("Lookup of missing key succeeded")
	}
	if r.Families() != 5 {
		t.Fatalf("Families = %d, want 5", r.Families())
	}
	if vs := r.FamilyVersions("base"); len(vs) != 1 || vs[0] != 0 {
		t.Fatalf("FamilyVersions(base) = %v", vs)
	}
}

func TestTotalSize(t *testing.T) {
	r := tinyRepo(t)
	if r.TotalSize() != 210 {
		t.Fatalf("TotalSize = %d, want 210", r.TotalSize())
	}
}

func TestTierString(t *testing.T) {
	if TierCore.String() != "core" || TierApplication.String() != "application" {
		t.Fatal("tier names wrong")
	}
	if Tier(200).String() == "" {
		t.Fatal("unknown tier should still render")
	}
}

func TestStatsOnTinyRepo(t *testing.T) {
	r := tinyRepo(t)
	s := r.Stats()
	if s.Packages != 5 || s.Families != 5 {
		t.Fatalf("bad counts: %+v", s)
	}
	if s.MaxDepth != 4 {
		t.Errorf("MaxDepth = %d, want 4", s.MaxDepth)
	}
	if s.MaxClosure != 5 {
		t.Errorf("MaxClosure = %d, want 5", s.MaxClosure)
	}
	if s.TierCounts[TierLibrary] != 2 {
		t.Errorf("library count = %d, want 2", s.TierCounts[TierLibrary])
	}
	// base is in every closure except its own -> 4 transitive dependents.
	if len(s.TopDependees) == 0 || s.TopDependees[0] != 0 {
		t.Errorf("TopDependees = %v, want base first", s.TopDependees)
	}
}

func TestTransitiveDependents(t *testing.T) {
	r := tinyRepo(t)
	counts := r.TransitiveDependents()
	want := []int{4, 3, 2, 1, 0}
	for i, w := range want {
		if counts[i] != w {
			t.Errorf("dependents[%d] = %d, want %d", i, counts[i], w)
		}
	}
}

func TestSharedCoreFraction(t *testing.T) {
	r := tinyRepo(t)
	if got := r.SharedCoreFraction(); got != 1.0 {
		t.Fatalf("SharedCoreFraction = %v, want 1.0", got)
	}
}

// Property: closures are always sorted, duplicate-free, and include the
// package itself plus all direct deps.
func TestClosureInvariantsProperty(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 11)
	f := func(rawIDs []uint16) bool {
		ids := make([]PkgID, 0, len(rawIDs))
		for _, v := range rawIDs {
			ids = append(ids, PkgID(int(v)%r.Len()))
		}
		cl := r.Closure(ids)
		if !sort.SliceIsSorted(cl, func(a, b int) bool { return cl[a] < cl[b] }) {
			return false
		}
		for i := 1; i < len(cl); i++ {
			if cl[i] == cl[i-1] {
				return false
			}
		}
		inClosure := make(map[PkgID]bool, len(cl))
		for _, c := range cl {
			inClosure[c] = true
		}
		for _, id := range ids {
			if !inClosure[id] {
				return false
			}
			for _, d := range r.Package(id).Deps {
				if !inClosure[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: closure is idempotent — closing a closed set changes nothing.
func TestClosureIdempotentProperty(t *testing.T) {
	r := MustGenerate(smallGenConfig(), 12)
	f := func(seed uint16) bool {
		id := PkgID(int(seed) % r.Len())
		once := r.Closure([]PkgID{id})
		twice := r.Closure(once)
		return idsEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
