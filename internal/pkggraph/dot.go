package pkggraph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders (a bounded prefix of) the dependency graph in
// Graphviz DOT form, for visualizing the hierarchical structure the
// merging strategy depends on. Packages are colored by tier; at most
// maxNodes packages are emitted (0 means all — avoid for the full
// 9,660-package repository, which Graphviz will not enjoy).
func (r *Repo) WriteDOT(w io.Writer, maxNodes int) error {
	if maxNodes <= 0 || maxNodes > r.Len() {
		maxNodes = r.Len()
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph repo {")
	fmt.Fprintln(bw, "  rankdir=BT;")
	fmt.Fprintln(bw, "  node [shape=box, style=filled, fontsize=9];")
	colors := map[Tier]string{
		TierCore:        "#d95f52",
		TierFramework:   "#e8a33d",
		TierLibrary:     "#7aa5d2",
		TierApplication: "#9ac079",
	}
	included := make([]bool, r.Len())
	for i := 0; i < maxNodes; i++ {
		p := &r.pkgs[i]
		included[i] = true
		fmt.Fprintf(bw, "  n%d [label=%q, fillcolor=%q];\n", i, p.Name+"\n"+p.Version, colors[p.Tier])
	}
	for i := 0; i < maxNodes; i++ {
		for _, d := range r.pkgs[i].Deps {
			if included[d] {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", i, d)
			}
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
