package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func sp(vs ...pkggraph.PkgID) spec.Spec { return spec.New(vs) }

func TestJaccardIdentical(t *testing.T) {
	a := sp(1, 2, 3)
	if d := JaccardDistance(a, a); d != 0 {
		t.Fatalf("distance to self = %v, want 0", d)
	}
}

func TestJaccardDisjoint(t *testing.T) {
	if d := JaccardDistance(sp(1, 2), sp(3, 4)); d != 1 {
		t.Fatalf("disjoint distance = %v, want 1", d)
	}
}

func TestJaccardEmptyConventions(t *testing.T) {
	if d := JaccardDistance(spec.Spec{}, spec.Spec{}); d != 0 {
		t.Fatalf("empty-empty = %v, want 0", d)
	}
	if d := JaccardDistance(spec.Spec{}, sp(1)); d != 1 {
		t.Fatalf("empty-nonempty = %v, want 1", d)
	}
}

func TestJaccardKnownValue(t *testing.T) {
	// |A∩B| = 2, |A∪B| = 4 -> d = 0.5
	if d := JaccardDistance(sp(1, 2, 3), sp(2, 3, 4)); d != 0.5 {
		t.Fatalf("distance = %v, want 0.5", d)
	}
}

func TestJaccardOneElementDiff(t *testing.T) {
	// Paper: "two specifications that differ only by one element" have
	// small distance.
	big := make([]pkggraph.PkgID, 100)
	for i := range big {
		big[i] = pkggraph.PkgID(i)
	}
	a := spec.New(big)
	b := spec.New(append(big[:99:99], 200))
	d := JaccardDistance(a, b)
	if d > 0.03 {
		t.Fatalf("one-element difference distance = %v, want small", d)
	}
}

func TestJaccardSimilarityComplement(t *testing.T) {
	a, b := sp(1, 2, 3), sp(3, 4)
	if s := JaccardSimilarity(a, b); math.Abs(s+JaccardDistance(a, b)-1) > 1e-15 {
		t.Fatal("similarity + distance != 1")
	}
}

// Property: Jaccard distance is a metric on the support we use —
// symmetric, bounded in [0,1], zero iff equal, and satisfies the
// triangle inequality.
func TestJaccardMetricProperties(t *testing.T) {
	f := func(xs, ys, zs []uint8) bool {
		a := specFrom(xs)
		b := specFrom(ys)
		c := specFrom(zs)
		dab := JaccardDistance(a, b)
		dba := JaccardDistance(b, a)
		if dab != dba {
			return false
		}
		if dab < 0 || dab > 1 {
			return false
		}
		if (dab == 0) != a.Equal(b) {
			return false
		}
		dac := JaccardDistance(a, c)
		dcb := JaccardDistance(c, b)
		return dab <= dac+dcb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func specFrom(xs []uint8) spec.Spec {
	ids := make([]pkggraph.PkgID, len(xs))
	for i, x := range xs {
		ids[i] = pkggraph.PkgID(x % 32)
	}
	return spec.New(ids)
}

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
	h, err := NewHasher(16, 1)
	if err != nil || h.K() != 16 {
		t.Fatalf("NewHasher: %v, k=%d", err, h.K())
	}
}

func TestMustNewHasherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewHasher(-1, 0)
}

func TestSignDeterministic(t *testing.T) {
	h := MustNewHasher(32, 7)
	a := h.Sign(sp(1, 2, 3))
	b := h.Sign(sp(3, 2, 1))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signature depends on order (it must not)")
		}
	}
}

func TestSignEmpty(t *testing.T) {
	h := MustNewHasher(8, 7)
	e := h.Sign(spec.Spec{})
	for _, v := range e {
		if v != math.MaxUint64 {
			t.Fatal("empty signature should be all MaxUint64")
		}
	}
	if d := EstimateDistance(e, h.Sign(spec.Spec{})); d != 0 {
		t.Fatalf("empty-empty estimate = %v, want 0", d)
	}
	if d := EstimateDistance(e, h.Sign(sp(1, 2, 3))); d != 1 {
		t.Fatalf("empty-nonempty estimate = %v, want 1", d)
	}
}

func TestEstimateDistanceIdentical(t *testing.T) {
	h := MustNewHasher(64, 3)
	s := h.Sign(sp(5, 6, 7, 8))
	if d := EstimateDistance(s, s); d != 0 {
		t.Fatalf("self estimate = %v", d)
	}
}

func TestEstimateDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EstimateDistance(make(Signature, 4), make(Signature, 8))
}

func TestEstimateDistanceZeroLength(t *testing.T) {
	if d := EstimateDistance(Signature{}, Signature{}); d != 0 {
		t.Fatalf("zero-length estimate = %v", d)
	}
}

// TestMinHashAccuracy draws random set pairs with known Jaccard
// distance and checks the k=128 estimator lands within a few standard
// errors.
func TestMinHashAccuracy(t *testing.T) {
	h := MustNewHasher(128, 42)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(400)
		overlap := rng.Intn(n)
		a := make([]pkggraph.PkgID, 0, n)
		b := make([]pkggraph.PkgID, 0, n)
		for i := 0; i < n; i++ {
			a = append(a, pkggraph.PkgID(i))
		}
		for i := 0; i < overlap; i++ {
			b = append(b, pkggraph.PkgID(i))
		}
		for i := 0; i < n-overlap; i++ {
			b = append(b, pkggraph.PkgID(100000+i))
		}
		sa, sb := spec.New(a), spec.New(b)
		exact := JaccardDistance(sa, sb)
		est := EstimateDistance(h.Sign(sa), h.Sign(sb))
		// Standard error ~ sqrt(d(1-d)/k) <= 0.045 at k=128; allow 4σ.
		if math.Abs(est-exact) > 0.18 {
			t.Errorf("trial %d: exact %.3f est %.3f (|Δ|=%.3f)", trial, exact, est, math.Abs(est-exact))
		}
	}
}

// Property: merging signatures equals signing the union.
func TestMergeSignaturesProperty(t *testing.T) {
	h := MustNewHasher(32, 9)
	f := func(xs, ys []uint8) bool {
		a := specFrom(xs)
		b := specFrom(ys)
		merged := MergeSignatures(h.Sign(a), h.Sign(b))
		direct := h.Sign(a.Union(b))
		for i := range merged {
			if merged[i] != direct[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSignaturesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MergeSignatures(make(Signature, 2), make(Signature, 3))
}

// Property: estimator is always in [0,1] and symmetric.
func TestEstimatorRangeProperty(t *testing.T) {
	h := MustNewHasher(16, 11)
	f := func(xs, ys []uint8) bool {
		a := h.Sign(specFrom(xs))
		b := h.Sign(specFrom(ys))
		d1 := EstimateDistance(a, b)
		d2 := EstimateDistance(b, a)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
