package similarity_test

import (
	"fmt"

	"repro/internal/pkggraph"
	"repro/internal/similarity"
	"repro/internal/spec"
)

// ExampleJaccardDistance shows the paper's merge-threshold arithmetic:
// specifications sharing half their union are at distance 0.5.
func ExampleJaccardDistance() {
	a := spec.New([]pkggraph.PkgID{1, 2, 3})
	b := spec.New([]pkggraph.PkgID{2, 3, 4})
	fmt.Printf("d = %.2f\n", similarity.JaccardDistance(a, b))
	// At alpha 0.75, these two would be merged; at alpha 0.4 they
	// would remain separate images.

	// Output:
	// d = 0.50
}

// ExampleHasher_Sign shows MinHash signatures estimating distance in
// O(k) independent of specification size.
func ExampleHasher_Sign() {
	h := similarity.MustNewHasher(256, 42)
	big := make([]pkggraph.PkgID, 1000)
	for i := range big {
		big[i] = pkggraph.PkgID(i)
	}
	a := spec.New(big)       // {0..999}
	b := spec.New(big[:900]) // {0..899}: similarity 0.9
	exact := similarity.JaccardDistance(a, b)
	est := similarity.EstimateDistance(h.Sign(a), h.Sign(b))
	fmt.Printf("exact %.2f, estimate within 0.1: %v\n", exact, est > exact-0.1 && est < exact+0.1)

	// Output:
	// exact 0.10, estimate within 0.1: true
}
