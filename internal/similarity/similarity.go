// Package similarity implements the specification similarity metric at
// the heart of LANDLORD's merge policy: the Jaccard distance over
// package sets, plus the MinHash sketch (Broder 1997) the paper cites
// as "a constant-time approximation of the Jaccard metric … important
// in practice due to the sizes of the data involved".
package similarity

import (
	"fmt"
	"math"

	"repro/internal/spec"
)

// JaccardDistance returns
//
//	d_j(A, B) = 1 - |A ∩ B| / |A ∪ B|
//
// for the package sets of a and b. Two empty specifications are defined
// to have distance 0 (they are identical); an empty versus a non-empty
// specification has distance 1.
func JaccardDistance(a, b spec.Spec) float64 {
	if a.Empty() && b.Empty() {
		return 0
	}
	inter := a.IntersectionLen(b)
	union := a.Len() + b.Len() - inter
	return 1 - float64(inter)/float64(union)
}

// JaccardSimilarity returns 1 - JaccardDistance(a, b).
func JaccardSimilarity(a, b spec.Spec) float64 {
	return 1 - JaccardDistance(a, b)
}

// splitmix64 is the SplitMix64 finalizer: a fast, well-distributed
// 64-bit mixing function used to derive the K independent hash
// functions MinHash requires.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Signature is a MinHash sketch: the per-hash-function minima over a
// specification's package IDs. Signatures produced by the same Hasher
// are comparable with EstimateDistance.
type Signature []uint64

// Hasher produces MinHash signatures with k hash functions derived from
// a seed. A Hasher is immutable and safe for concurrent use.
type Hasher struct {
	seeds []uint64
}

// NewHasher creates a Hasher with k hash functions (k >= 1). Larger k
// reduces the estimator's standard error, which is about 1/sqrt(k).
func NewHasher(k int, seed int64) (*Hasher, error) {
	if k < 1 {
		return nil, fmt.Errorf("similarity: MinHash needs k >= 1, got %d", k)
	}
	h := &Hasher{seeds: make([]uint64, k)}
	s := uint64(seed)
	for i := range h.seeds {
		s = splitmix64(s + uint64(i) + 1)
		h.seeds[i] = s
	}
	return h, nil
}

// MustNewHasher is NewHasher that panics on error.
func MustNewHasher(k int, seed int64) *Hasher {
	h, err := NewHasher(k, seed)
	if err != nil {
		panic(err)
	}
	return h
}

// K returns the number of hash functions.
func (h *Hasher) K() int { return len(h.seeds) }

// Sign computes the MinHash signature of s. An empty specification
// yields a signature of all math.MaxUint64, which estimates distance 0
// against another empty signature and (almost surely) 1 against any
// non-empty one — matching JaccardDistance's conventions.
func (h *Hasher) Sign(s spec.Spec) Signature {
	sig := make(Signature, len(h.seeds))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, id := range s.IDs() {
		x := uint64(id) + 0x100000001
		for i, seed := range h.seeds {
			v := splitmix64(x ^ seed)
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// SignInto is Sign into caller-owned storage: dst must have length
// h.K(). It fills dst with exactly the signature Sign would allocate
// and returns it, so a pooled scratch buffer makes the miss path's
// signing allocation-free (the hot path the interned-bitset manager
// pools per request).
func (h *Hasher) SignInto(dst Signature, s spec.Spec) Signature {
	if len(dst) != len(h.seeds) {
		panic(fmt.Sprintf("similarity: SignInto dst length %d, hasher has k=%d", len(dst), len(h.seeds)))
	}
	for i := range dst {
		dst[i] = math.MaxUint64
	}
	for _, id := range s.IDs() {
		x := uint64(id) + 0x100000001
		for i, seed := range h.seeds {
			v := splitmix64(x ^ seed)
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
	return dst
}

// EstimateDistance estimates the Jaccard distance between the sets
// underlying two signatures as the fraction of positions whose minima
// differ. Both signatures must come from the same Hasher; it panics on
// length mismatch because comparing sketches from different hashers is
// meaningless and always a caller bug.
func EstimateDistance(a, b Signature) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("similarity: signature length mismatch %d vs %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return 1 - float64(same)/float64(len(a))
}

// MergeSignatures returns the signature of the union of the two
// underlying sets: the positionwise minimum. This lets the cache
// manager maintain the sketch of a merged image in O(k) without
// re-signing the union.
func MergeSignatures(a, b Signature) Signature {
	if len(a) != len(b) {
		panic(fmt.Sprintf("similarity: signature length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Signature, len(a))
	for i := range a {
		if a[i] < b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// MergeSignaturesInto folds b into dst in place (positionwise
// minimum): the allocation-free form of MergeSignatures for callers
// that own dst, such as the manager updating a merged image's sketch.
func MergeSignaturesInto(dst, b Signature) {
	if len(dst) != len(b) {
		panic(fmt.Sprintf("similarity: signature length mismatch %d vs %d", len(dst), len(b)))
	}
	for i := range dst {
		if b[i] < dst[i] {
			dst[i] = b[i]
		}
	}
}
