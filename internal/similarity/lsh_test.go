package similarity

import (
	"math/rand"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func TestNewLSHIndexValidation(t *testing.T) {
	if _, err := NewLSHIndex(0, 1); err == nil {
		t.Error("bands=0 accepted")
	}
	if _, err := NewLSHIndex(1, 0); err == nil {
		t.Error("rows=0 accepted")
	}
	x, err := NewLSHIndex(16, 4)
	if err != nil || x.SignatureLen() != 64 {
		t.Fatalf("NewLSHIndex: %v, len=%d", err, x.SignatureLen())
	}
}

func TestLSHInsertRemove(t *testing.T) {
	x, _ := NewLSHIndex(8, 2)
	h := MustNewHasher(16, 1)
	sig := h.Sign(sp(1, 2, 3))
	if err := x.Insert(7, sig); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d", x.Len())
	}
	if err := x.Insert(7, sig); err == nil {
		t.Fatal("duplicate id accepted")
	}
	cands, err := x.Candidates(sig)
	if err != nil || len(cands) != 1 || cands[0] != 7 {
		t.Fatalf("Candidates = %v, %v", cands, err)
	}
	x.Remove(7)
	if x.Len() != 0 {
		t.Fatal("Remove failed")
	}
	x.Remove(7) // no-op
	cands, _ = x.Candidates(sig)
	if len(cands) != 0 {
		t.Fatalf("stale candidates: %v", cands)
	}
}

func TestLSHLengthMismatch(t *testing.T) {
	x, _ := NewLSHIndex(8, 2)
	short := make(Signature, 4)
	if err := x.Insert(1, short); err == nil {
		t.Error("short insert accepted")
	}
	if err := x.Update(1, short); err == nil {
		t.Error("short update accepted")
	}
	if _, err := x.Candidates(short); err == nil {
		t.Error("short query accepted")
	}
}

func TestLSHIdenticalSetsAlwaysCollide(t *testing.T) {
	x, _ := NewLSHIndex(16, 4)
	h := MustNewHasher(64, 2)
	a := h.Sign(sp(10, 20, 30, 40))
	b := h.Sign(sp(40, 30, 20, 10))
	x.Insert(1, a)
	cands, _ := x.Candidates(b)
	if len(cands) != 1 || cands[0] != 1 {
		t.Fatalf("identical sets did not collide: %v", cands)
	}
}

func TestLSHInsertCopiesSignature(t *testing.T) {
	x, _ := NewLSHIndex(4, 1)
	h := MustNewHasher(4, 3)
	sig := h.Sign(sp(1, 2))
	x.Insert(1, sig)
	sig[0] = 12345 // caller mutates its slice
	cands, _ := x.Candidates(h.Sign(sp(1, 2)))
	if len(cands) != 1 {
		t.Fatal("index shared caller's slice")
	}
}

func TestLSHUpdate(t *testing.T) {
	x, _ := NewLSHIndex(16, 1)
	h := MustNewHasher(16, 4)
	old := h.Sign(sp(1, 2, 3))
	x.Insert(5, old)
	grown := h.Sign(sp(1, 2, 3, 4, 5, 6))
	if err := x.Update(5, grown); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 1 {
		t.Fatalf("Len = %d after update", x.Len())
	}
	cands, _ := x.Candidates(grown)
	if len(cands) != 1 || cands[0] != 5 {
		t.Fatalf("updated signature not retrievable: %v", cands)
	}
}

// TestLSHRecall checks the banded retrieval probability: with rows=1
// and 64 bands, sets sharing >= 25% similarity must essentially always
// be retrieved, while retrieval of unrelated sets stays rare.
func TestLSHRecall(t *testing.T) {
	const k = 64
	h := MustNewHasher(k, 7)
	x, _ := NewLSHIndex(k, 1)
	rng := rand.New(rand.NewSource(9))

	base := make([]pkggraph.PkgID, 200)
	for i := range base {
		base[i] = pkggraph.PkgID(i)
	}
	query := spec.New(base)

	// 40 similar sets (share half of base) and 40 disjoint sets.
	for i := 0; i < 40; i++ {
		ids := append([]pkggraph.PkgID{}, base[:100]...)
		for j := 0; j < 100; j++ {
			ids = append(ids, pkggraph.PkgID(10000+i*1000+rng.Intn(900)))
		}
		x.Insert(uint64(i), h.Sign(spec.New(ids)))
	}
	for i := 0; i < 40; i++ {
		ids := make([]pkggraph.PkgID, 200)
		for j := range ids {
			ids[j] = pkggraph.PkgID(100000 + i*1000 + j)
		}
		x.Insert(uint64(1000+i), h.Sign(spec.New(ids)))
	}

	cands, err := x.Candidates(h.Sign(query))
	if err != nil {
		t.Fatal(err)
	}
	similar, disjoint := 0, 0
	for _, id := range cands {
		if id < 1000 {
			similar++
		} else {
			disjoint++
		}
	}
	// Similar sets have s ~= 1/3: miss probability (2/3)^64 ~ 0. All 40
	// must be retrieved.
	if similar < 38 {
		t.Errorf("retrieved %d/40 similar sets", similar)
	}
	// Disjoint sets only collide through hash accidents.
	if disjoint > 4 {
		t.Errorf("retrieved %d/40 disjoint sets", disjoint)
	}
}

// TestLSHRowsSharpenCutoff verifies that more rows per band suppress
// weakly similar candidates.
func TestLSHRowsSharpenCutoff(t *testing.T) {
	const k = 64
	h := MustNewHasher(k, 11)
	sharp, _ := NewLSHIndex(8, 8) // s must be high to match 8 rows
	rng := rand.New(rand.NewSource(4))

	// Weakly similar set: ~10% overlap with the query.
	query := make([]pkggraph.PkgID, 100)
	for i := range query {
		query[i] = pkggraph.PkgID(i)
	}
	weak := append([]pkggraph.PkgID{}, query[:10]...)
	for j := 0; j < 90; j++ {
		weak = append(weak, pkggraph.PkgID(5000+rng.Intn(5000)))
	}
	sharp.Insert(1, h.Sign(spec.New(weak)))
	cands, _ := sharp.Candidates(h.Sign(spec.New(query)))
	if len(cands) != 0 {
		t.Errorf("8-row bands retrieved a ~5%%-similar set: %v", cands)
	}

	// The same pair under rows=1 is found essentially always.
	loose, _ := NewLSHIndex(64, 1)
	loose.Insert(1, h.Sign(spec.New(weak)))
	cands, _ = loose.Candidates(h.Sign(spec.New(query)))
	if len(cands) != 1 {
		t.Errorf("1-row bands missed a ~5%%-similar set")
	}
}
