package similarity

import (
	"fmt"
	"slices"
	"sort"
)

// LSHIndex is a banded locality-sensitive index over MinHash
// signatures, for retrieving merge candidates from image populations
// far larger than a linear scan can serve (site-wide registries with
// tens of thousands of images, rather than the tens a single head-node
// cache holds).
//
// Signatures of length bands*rows are cut into `bands` bands of `rows`
// values; two sets collide when any band matches exactly. The
// probability that sets with Jaccard similarity s share a band is
//
//	1 - (1 - s^rows)^bands
//
// With rows=1 the index retrieves even weakly similar sets with high
// probability (miss probability (1-s)^bands), which suits LANDLORD's
// merge search where the interesting similarity threshold 1-α can be
// as low as 0.05. Larger rows sharpen the cutoff for high-similarity
// retrieval at the cost of recall below it.
//
// Retrieval is probabilistic: a true candidate can be missed, so an
// index-backed search is an approximation of Algorithm 1's exact scan.
// The index is not safe for concurrent use.
type LSHIndex struct {
	bands, rows int
	tables      []map[uint64][]uint64 // band -> band hash -> ids
	sigs        map[uint64]Signature  // id -> signature (for Remove)
}

// NewLSHIndex creates an index for signatures of length bands*rows.
func NewLSHIndex(bands, rows int) (*LSHIndex, error) {
	if bands < 1 || rows < 1 {
		return nil, fmt.Errorf("similarity: LSH needs bands >= 1 and rows >= 1, got %d x %d", bands, rows)
	}
	x := &LSHIndex{
		bands:  bands,
		rows:   rows,
		tables: make([]map[uint64][]uint64, bands),
		sigs:   make(map[uint64]Signature, 64),
	}
	for i := range x.tables {
		x.tables[i] = make(map[uint64][]uint64)
	}
	return x, nil
}

// SignatureLen returns the signature length the index expects.
func (x *LSHIndex) SignatureLen() int { return x.bands * x.rows }

// Len returns the number of indexed sets.
func (x *LSHIndex) Len() int { return len(x.sigs) }

// bandHash mixes one band of the signature into a bucket key.
func bandHash(band Signature) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range band {
		h ^= v
		h *= 1099511628211
		h ^= h >> 29
	}
	return h
}

// Insert adds a set under id. Inserting an id that is already present
// is an error; use Update to change a signature.
func (x *LSHIndex) Insert(id uint64, sig Signature) error {
	if len(sig) != x.SignatureLen() {
		return fmt.Errorf("similarity: signature length %d, index expects %d", len(sig), x.SignatureLen())
	}
	if _, dup := x.sigs[id]; dup {
		return fmt.Errorf("similarity: id %d already indexed", id)
	}
	own := make(Signature, len(sig))
	copy(own, sig)
	x.sigs[id] = own
	for b := 0; b < x.bands; b++ {
		key := bandHash(own[b*x.rows : (b+1)*x.rows])
		x.tables[b][key] = append(x.tables[b][key], id)
	}
	return nil
}

// Remove deletes an id from the index. Removing an absent id is a
// no-op.
func (x *LSHIndex) Remove(id uint64) {
	sig, ok := x.sigs[id]
	if !ok {
		return
	}
	delete(x.sigs, id)
	for b := 0; b < x.bands; b++ {
		key := bandHash(sig[b*x.rows : (b+1)*x.rows])
		bucket := x.tables[b][key]
		for i, v := range bucket {
			if v == id {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(x.tables[b], key)
		} else {
			x.tables[b][key] = bucket
		}
	}
}

// Update replaces an id's signature (for merged images whose contents
// grew).
func (x *LSHIndex) Update(id uint64, sig Signature) error {
	if len(sig) != x.SignatureLen() {
		return fmt.Errorf("similarity: signature length %d, index expects %d", len(sig), x.SignatureLen())
	}
	x.Remove(id)
	return x.Insert(id, sig)
}

// Candidates returns the ids sharing at least one band with sig, in
// ascending order. The query itself (if indexed) is included.
func (x *LSHIndex) Candidates(sig Signature) ([]uint64, error) {
	if len(sig) != x.SignatureLen() {
		return nil, fmt.Errorf("similarity: signature length %d, index expects %d", len(sig), x.SignatureLen())
	}
	seen := make(map[uint64]struct{})
	for b := 0; b < x.bands; b++ {
		key := bandHash(sig[b*x.rows : (b+1)*x.rows])
		for _, id := range x.tables[b][key] {
			seen[id] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// CandidatesAppend is Candidates into caller-owned storage: bucket
// contents are appended to dst, then sorted and deduplicated in place,
// and the (possibly regrown) slice is returned — the same ascending
// unique IDs Candidates builds, without the per-query map. This is the
// retrieval the interned hot path uses as its *primary* candidate
// source, so it must not allocate once dst has warmed up to the
// typical candidate count.
func (x *LSHIndex) CandidatesAppend(sig Signature, dst []uint64) ([]uint64, error) {
	if len(sig) != x.SignatureLen() {
		return dst, fmt.Errorf("similarity: signature length %d, index expects %d", len(sig), x.SignatureLen())
	}
	base := len(dst)
	for b := 0; b < x.bands; b++ {
		key := bandHash(sig[b*x.rows : (b+1)*x.rows])
		dst = append(dst, x.tables[b][key]...)
	}
	tail := dst[base:]
	slices.Sort(tail)
	dst = dst[:base+len(dedupSorted(tail))]
	return dst, nil
}

// dedupSorted removes adjacent duplicates in place and returns the
// shortened slice.
func dedupSorted(ids []uint64) []uint64 {
	if len(ids) < 2 {
		return ids
	}
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
