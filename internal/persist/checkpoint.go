package persist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/core"
)

// Checkpoint is the durable envelope around a complete manager state.
// It is written as a single CRC-framed JSON record, so checkpoint
// validation reuses the WAL frame codec.
type Checkpoint struct {
	// SavedUnixNano timestamps the checkpoint (for checkpoint-age
	// monitoring and operator forensics).
	SavedUnixNano int64 `json:"saved_unix_nano"`
	// WALSeq is the first WAL segment NOT covered by this checkpoint;
	// recovery replays segments with seq >= WALSeq. Zero for
	// standalone checkpoints (the cmd/landlord wrapper, which keeps no
	// WAL).
	WALSeq uint64 `json:"wal_seq,omitempty"`
	// Meta carries embedder-defined context, e.g. the wrapper records
	// which repository the state was built against.
	Meta map[string]string `json:"meta,omitempty"`
	// State is the full manager state.
	State core.ManagerState `json:"state"`
}

// WriteCheckpointFile atomically writes ck to path: the frame goes to
// a temporary file in the same directory, is fsynced, renamed into
// place, and the directory is fsynced so the rename itself is durable.
func WriteCheckpointFile(path string, ck Checkpoint) error {
	return writeCheckpointFile(OSFS{}, path, ck)
}

// writeCheckpointFile is WriteCheckpointFile over an arbitrary FS; the
// store routes its checkpoints through here so fault injection covers
// the temp-write/sync/rename/dir-sync sequence too.
func writeCheckpointFile(fsys FS, path string, ck Checkpoint) error {
	payload, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("persist: encoding checkpoint: %w", err)
	}
	data := appendFrame(nil, payload)
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(fsys, dir)
}

// ReadCheckpointFile reads and validates a checkpoint written by
// WriteCheckpointFile. Trailing garbage after the single frame is
// rejected: a checkpoint is exactly one record.
func ReadCheckpointFile(path string) (Checkpoint, error) {
	return readCheckpointFile(OSFS{}, path)
}

// readCheckpointFile is ReadCheckpointFile over an arbitrary FS.
func readCheckpointFile(fsys FS, path string) (Checkpoint, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return Checkpoint{}, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	payload, err := readFrame(br)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("persist: checkpoint %s: %w", path, err)
	}
	if _, err := br.ReadByte(); err == nil {
		return Checkpoint{}, fmt.Errorf("persist: checkpoint %s: %w: trailing data", path, ErrCorrupt)
	}
	var ck Checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return Checkpoint{}, fmt.Errorf("persist: checkpoint %s: %w: %v", path, ErrCorrupt, err)
	}
	return ck, nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry
// is durable. Failures are returned; on filesystems that reject
// directory syncs (some network mounts) callers may ignore them.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
