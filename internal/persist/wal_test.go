package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
)

func sampleMutations() []core.Mutation {
	return []core.Mutation{
		{Kind: core.MutInsert, ImageID: 0, LastUse: 1, RequestBytes: 30, Packages: []string{"a/1/x", "b/1/x"}},
		{Kind: core.MutTouch, ImageID: 0, LastUse: 2, RequestBytes: 10},
		{Kind: core.MutMerge, ImageID: 0, LastUse: 3, Version: 1, Merges: 1, RequestBytes: 20, Packages: []string{"a/1/x", "b/1/x", "c/1/x"}},
		{Kind: core.MutDelete, ImageID: 0},
		{Kind: core.MutSplit, ImageID: 4, Version: 2, Packages: []string{"c/1/x"}},
	}
}

func encodeAll(t *testing.T, muts []core.Mutation) []byte {
	t.Helper()
	var buf []byte
	for _, mut := range muts {
		var err error
		buf, err = EncodeRecord(buf, mut)
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	muts := sampleMutations()
	data := encodeAll(t, muts)
	got, err := ReadSegment(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if !reflect.DeepEqual(got, muts) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, muts)
	}
}

func TestReadSegmentEmpty(t *testing.T) {
	got, err := ReadSegment(bytes.NewReader(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty segment: got %d records, err %v", len(got), err)
	}
}

func TestReadSegmentTornTail(t *testing.T) {
	muts := sampleMutations()
	data := encodeAll(t, muts)
	// Every strict prefix decodes to a prefix of the records, and any
	// cut that does not land exactly on a record boundary reports a
	// torn tail.
	bounds := map[int]int{0: 0} // byte offset -> records intact
	off := 0
	for i, mut := range muts {
		rec, err := EncodeRecord(nil, mut)
		if err != nil {
			t.Fatal(err)
		}
		off += len(rec)
		bounds[off] = i + 1
	}
	for cut := 0; cut <= len(data); cut++ {
		got, err := ReadSegment(bytes.NewReader(data[:cut]))
		if n, boundary := bounds[cut]; boundary {
			if err != nil {
				t.Fatalf("cut %d (boundary): unexpected error %v", cut, err)
			}
			if len(got) != n {
				t.Fatalf("cut %d: %d records, want %d", cut, len(got), n)
			}
		} else {
			if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d (torn): err = %v, want torn/corrupt", cut, err)
			}
		}
		for i, mut := range got {
			if !reflect.DeepEqual(mut, muts[i]) {
				t.Fatalf("cut %d: record %d differs", cut, i)
			}
		}
	}
}

func TestReadSegmentRejectsBitFlips(t *testing.T) {
	muts := sampleMutations()
	data := encodeAll(t, muts)
	for off := range data {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0xFF
		got, err := ReadSegment(bytes.NewReader(mutated))
		// The decode must stop at or before the record containing the
		// flip, and everything it returned must be an intact prefix.
		if err == nil && len(got) == len(muts) {
			t.Fatalf("flip at %d went undetected", off)
		}
		for i, mut := range got {
			if !reflect.DeepEqual(mut, muts[i]) {
				t.Fatalf("flip at %d: surviving record %d corrupted: %+v", off, i, mut)
			}
		}
	}
}

func TestReadSegmentLengthCap(t *testing.T) {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecordBytes+1)
	_, err := ReadSegment(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint-test.ckpt")
	ck := Checkpoint{
		SavedUnixNano: 12345,
		WALSeq:        7,
		Meta:          map[string]string{"repo_seed": "1"},
		State: core.ManagerState{
			Images: []core.ImageSnapshot{{ID: 3, Packages: []string{"a/1/x"}, LastUse: 9, Version: 2}},
			NextID: 4,
			Clock:  9,
			Stats:  core.Stats{Requests: 9, Hits: 8, Inserts: 1},
		},
	}
	if err := WriteCheckpointFile(path, ck); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("ReadCheckpointFile: %v", err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestCheckpointFileDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := WriteCheckpointFile(path, Checkpoint{SavedUnixNano: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := range data {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x01
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpointFile(path); err == nil {
			t.Fatalf("flip at %d went undetected", off)
		}
	}
	// Trailing garbage is also rejected: a checkpoint is one record.
	if err := os.WriteFile(path, append(data, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
