package persist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// streamRepo builds a small deterministic package repo for streaming
// tests.
func streamRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	return testRepo(t, 40, 10)
}

// streamedPrimary is a primary-side fixture: a sharded manager whose
// commit hook publishes every mutation into a Streamer, plus the
// checkpoint provider capturing MergedState consistently with the
// stream position.
type streamedPrimary struct {
	mgr *core.ShardedManager
	str *Streamer
}

func newStreamedPrimary(t *testing.T, repo *pkggraph.Repo, ring int) *streamedPrimary {
	t.Helper()
	p := &streamedPrimary{}
	cfg := core.Config{Alpha: 0.6}
	var err error
	p.mgr, err = core.NewSharded(repo, cfg)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	p.str = NewStreamer(1, ring, func() ([]byte, uint64, error) {
		var payload []byte
		var next uint64
		var cerr error
		p.mgr.WithExclusiveAll(func(ms []*core.Manager) {
			next = p.str.Next()
			payload, cerr = json.Marshal(StreamCheckpoint{Next: next, State: core.MergedState(ms)})
		})
		return payload, next, cerr
	})
	p.mgr.SetCommitHook(commitFunc(func(mut core.Mutation) {
		payload, err := json.Marshal(mut)
		if err != nil {
			t.Errorf("encoding mutation: %v", err)
			return
		}
		p.str.Publish(payload)
	}))
	return p
}

// commitFunc adapts a function to core.CommitHook.
type commitFunc func(core.Mutation)

func (f commitFunc) Commit(mut core.Mutation) { f(mut) }

// replica is a follower-side cache applying streamed mutations.
type replica struct {
	mgr *core.ShardedManager
	fol *Follower
}

func newReplica(t *testing.T, repo *pkggraph.Repo) *replica {
	t.Helper()
	mgr, err := core.NewSharded(repo, core.Config{Alpha: 0.6})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	r := &replica{mgr: mgr}
	r.fol = NewFollower(
		func(payload []byte) error {
			var mut core.Mutation
			if err := json.Unmarshal(payload, &mut); err != nil {
				return err
			}
			return r.mgr.ApplyMutation(mut)
		},
		func(payload []byte) error {
			var ck StreamCheckpoint
			if err := json.Unmarshal(payload, &ck); err != nil {
				return err
			}
			// A checkpoint replaces the whole state: swap in a fresh
			// manager so resync works from any prior position.
			fresh, err := core.NewSharded(repo, core.Config{Alpha: 0.6})
			if err != nil {
				return err
			}
			if err := fresh.ImportState(ck.State); err != nil {
				return err
			}
			r.mgr = fresh
			return nil
		},
	)
	return r
}

// driveRequests pushes n deterministic specs through the primary.
func driveRequests(t *testing.T, repo *pkggraph.Repo, p *streamedPrimary, n, offset int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sp := spec.New([]pkggraph.PkgID{
			pkggraph.PkgID((i*3 + offset) % repo.Len()),
			pkggraph.PkgID((i*7 + offset + 1) % repo.Len()),
		})
		if _, err := p.mgr.Request(sp); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func stateBytes(t *testing.T, st core.ManagerState) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	return string(b)
}

// TestStreamReplicaByteIdentical: a follower pulling over real HTTP
// converges to a state byte-identical to the primary's ExportState.
func TestStreamReplicaByteIdentical(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 0)
	mux := http.NewServeMux()
	mux.HandleFunc("/ha/v1/wal", p.str.ServeWAL)
	mux.HandleFunc("/ha/v1/checkpoint", p.str.ServeCheckpoint)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := newReplica(t, repo)
	driveRequests(t, repo, p, 60, 0)
	for i := 0; i < 10; i++ {
		if _, err := r.fol.Pull(context.Background(), ts.Client(), ts.URL+"/ha/v1"); err != nil {
			t.Fatalf("pull: %v", err)
		}
		if r.fol.Next() == p.str.Next() {
			break
		}
	}
	if r.fol.Next() != p.str.Next() {
		t.Fatalf("follower watermark %d never reached primary next %d", r.fol.Next(), p.str.Next())
	}
	if got, want := stateBytes(t, r.mgr.ExportState()), stateBytes(t, p.mgr.ExportState()); got != want {
		t.Fatalf("replica state diverged from primary:\n got: %s\nwant: %s", got, want)
	}
	if r.fol.Resyncs() != 0 {
		t.Fatalf("full-ring stream should not have resynced, got %d", r.fol.Resyncs())
	}
}

// TestStreamGapForcesCheckpointResync: a follower whose watermark aged
// out of the ring resyncs from the primary's checkpoint and still
// reaches byte-identical state.
func TestStreamGapForcesCheckpointResync(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 8) // tiny ring: laggards gap fast
	mux := http.NewServeMux()
	mux.HandleFunc("/wal", p.str.ServeWAL)
	mux.HandleFunc("/checkpoint", p.str.ServeCheckpoint)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := newReplica(t, repo)
	driveRequests(t, repo, p, 80, 0) // far beyond the 8-record ring
	for i := 0; i < 10 && r.fol.Next() != p.str.Next(); i++ {
		if _, err := r.fol.Pull(context.Background(), ts.Client(), ts.URL); err != nil {
			t.Fatalf("pull: %v", err)
		}
	}
	if r.fol.Resyncs() == 0 {
		t.Fatalf("gapped follower never resynced")
	}
	if got, want := stateBytes(t, r.mgr.ExportState()), stateBytes(t, p.mgr.ExportState()); got != want {
		t.Fatalf("resynced replica diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestStreamFollowerCrashRestart: a replica that crashes mid-stream
// (all follower state lost) restarts, resyncs from the primary's
// checkpoint, and converges to byte-identical state — the PR 2
// crash-recovery contract, one network hop out.
func TestStreamFollowerCrashRestart(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 16)
	mux := http.NewServeMux()
	mux.HandleFunc("/wal", p.str.ServeWAL)
	mux.HandleFunc("/checkpoint", p.str.ServeCheckpoint)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	r := newReplica(t, repo)
	driveRequests(t, repo, p, 30, 0)
	for i := 0; i < 10 && r.fol.Next() != p.str.Next(); i++ {
		if _, err := r.fol.Pull(context.Background(), ts.Client(), ts.URL); err != nil {
			t.Fatalf("pull: %v", err)
		}
	}

	// Crash: the replica process dies; a fresh one starts from zero
	// while the primary keeps moving past the ring bound.
	driveRequests(t, repo, p, 60, 5)
	r2 := newReplica(t, repo)
	for i := 0; i < 10 && r2.fol.Next() != p.str.Next(); i++ {
		if _, err := r2.fol.Pull(context.Background(), ts.Client(), ts.URL); err != nil {
			t.Fatalf("restarted pull: %v", err)
		}
	}
	if r2.fol.Next() != p.str.Next() {
		t.Fatalf("restarted follower watermark %d != primary %d", r2.fol.Next(), p.str.Next())
	}
	if r2.fol.Resyncs() == 0 {
		t.Fatalf("restarted follower should have resynced from the checkpoint")
	}
	if got, want := stateBytes(t, r2.mgr.ExportState()), stateBytes(t, p.mgr.ExportState()); got != want {
		t.Fatalf("restarted replica diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestStreamBatchTruncationEveryOffset mirrors the PR 2 WAL
// fault-injection tests at the stream layer: a batch truncated at
// every possible byte offset must yield a clean applied prefix —
// never a corrupted apply, never a watermark past what was applied —
// and the follower must recover to full identity once the complete
// batch is re-fetched.
func TestStreamBatchTruncationEveryOffset(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 0)
	driveRequests(t, repo, p, 12, 0)
	batch, ok := p.str.Batch(1, 0)
	if !ok || batch.Count == 0 {
		t.Fatalf("no batch to truncate (ok=%v count=%d)", ok, batch.Count)
	}
	want := stateBytes(t, p.mgr.ExportState())

	for cut := 0; cut <= len(batch.Frames); cut++ {
		r := newReplica(t, repo)
		applied, err := r.fol.ApplyBatch(batch.StreamID, batch.From, batch.Frames[:cut])
		if err != nil {
			t.Fatalf("cut %d: ApplyBatch error: %v", cut, err)
		}
		if got := r.fol.Next(); got != batch.From+uint64(applied) {
			t.Fatalf("cut %d: watermark %d != from+applied %d", cut, got, batch.From+uint64(applied))
		}
		// Re-apply the full batch: the overlap is skipped, the tail
		// lands, and the state matches the primary exactly.
		if _, err := r.fol.ApplyBatch(batch.StreamID, batch.From, batch.Frames); err != nil {
			t.Fatalf("cut %d: completing batch: %v", cut, err)
		}
		if r.fol.Next() != batch.Next {
			t.Fatalf("cut %d: final watermark %d != %d", cut, r.fol.Next(), batch.Next)
		}
		if got := stateBytes(t, r.mgr.ExportState()); got != want {
			t.Fatalf("cut %d: state diverged after recovery", cut)
		}
	}
}

// TestStreamCorruptFrameStopsCleanly: a flipped bit mid-batch yields
// the prefix before the corruption and no error, so the watermark
// re-fetches the damaged record.
func TestStreamCorruptFrameStopsCleanly(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 0)
	driveRequests(t, repo, p, 8, 0)
	batch, _ := p.str.Batch(1, 0)
	if batch.Count < 3 {
		t.Fatalf("need >= 3 frames, got %d", batch.Count)
	}
	corrupted := append([]byte(nil), batch.Frames...)
	corrupted[len(corrupted)/2] ^= 0x40

	r := newReplica(t, repo)
	applied, err := r.fol.ApplyBatch(batch.StreamID, batch.From, corrupted)
	if err != nil {
		t.Fatalf("corrupt batch should apply its clean prefix, got %v", err)
	}
	if uint64(applied) >= uint64(batch.Count) {
		t.Fatalf("corruption not detected: applied %d of %d", applied, batch.Count)
	}
	if _, err := r.fol.ApplyBatch(batch.StreamID, batch.From, batch.Frames); err != nil {
		t.Fatalf("clean re-fetch: %v", err)
	}
	if got, want := stateBytes(t, r.mgr.ExportState()), stateBytes(t, p.mgr.ExportState()); got != want {
		t.Fatalf("state diverged after corrupt-then-clean recovery")
	}
}

// TestStreamBumpForcesResync: a stream identity change (primary
// re-based its log) gaps every follower into a checkpoint resync.
func TestStreamBumpForcesResync(t *testing.T) {
	repo := streamRepo(t)
	p := newStreamedPrimary(t, repo, 0)
	driveRequests(t, repo, p, 10, 0)
	r := newReplica(t, repo)
	batch, _ := p.str.Batch(1, 0)
	if _, err := r.fol.ApplyBatch(batch.StreamID, batch.From, batch.Frames); err != nil {
		t.Fatalf("initial batch: %v", err)
	}

	p.str.Bump(2)
	driveRequests(t, repo, p, 10, 3)
	if _, ok := p.str.Batch(r.fol.Next(), 0); ok {
		// The watermark may or may not be serviceable after Bump; what
		// matters is the identity check below.
		t.Log("batch served post-bump; follower must still detect the identity change")
	}
	b2, ok := p.str.Batch(p.str.Next(), 0)
	if !ok {
		t.Fatalf("empty batch at next should serve")
	}
	if _, err := r.fol.ApplyBatch(b2.StreamID, b2.From, b2.Frames); err != ErrStreamGap {
		t.Fatalf("stream identity change: got %v, want ErrStreamGap", err)
	}
	cb, err := p.str.Checkpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := r.fol.ApplyCheckpoint(cb.StreamID, cb.Next, cb.Frame); err != nil {
		t.Fatalf("resync: %v", err)
	}
	if got, want := stateBytes(t, r.mgr.ExportState()), stateBytes(t, p.mgr.ExportState()); got != want {
		t.Fatalf("post-bump resync diverged")
	}
}

// TestStreamStoreTap: the Store's commit tap publishes exactly the
// WAL's records, so a streamer attached to a persistent server
// replicates what recovery would replay.
func TestStreamStoreTap(t *testing.T) {
	repo := streamRepo(t)
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mgr, _, err := st.RecoverSharded(repo, core.Config{Alpha: 0.6})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	var taps []core.Mutation
	str := NewStreamer(1, 0, nil)
	st.SetTap(func(payload []byte) {
		var mut core.Mutation
		if err := json.Unmarshal(payload, &mut); err != nil {
			t.Errorf("tap payload: %v", err)
			return
		}
		taps = append(taps, mut)
		str.Publish(payload)
	})

	for i := 0; i < 20; i++ {
		sp := spec.New([]pkggraph.PkgID{
			pkggraph.PkgID(i % repo.Len()),
			pkggraph.PkgID((i*5 + 1) % repo.Len()),
		})
		if _, err := mgr.Request(sp); err != nil {
			t.Fatalf("request: %v", err)
		}
	}
	if len(taps) == 0 {
		t.Fatalf("tap observed no records")
	}
	if st.Close() != nil {
		t.Fatalf("close")
	}

	// Replay the replica from the streamed records alone and compare
	// against a fresh recovery of the same WAL.
	r := newReplica(t, repo)
	batch, ok := str.Batch(1, 0)
	if !ok {
		t.Fatalf("batch")
	}
	if _, err := r.fol.ApplyBatch(batch.StreamID, batch.From, batch.Frames); err != nil {
		t.Fatalf("apply: %v", err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	rec, _, err := st2.RecoverSharded(repo, core.Config{Alpha: 0.6})
	if err != nil {
		t.Fatalf("re-recover: %v", err)
	}
	if !reflect.DeepEqual(r.mgr.ExportState(), rec.ExportState()) {
		t.Fatalf("streamed replica != WAL recovery:\n got: %s\nwant: %s",
			stateBytes(t, r.mgr.ExportState()), stateBytes(t, rec.ExportState()))
	}
}

// TestStreamWatermarkAcks: serving a batch from N proves the streamer
// treats N as an ack — a later batch from a higher watermark never
// re-serves acked records, and Batch rejects watermarks outside
// [floor, next].
func TestStreamWatermarkAcks(t *testing.T) {
	s := NewStreamer(9, 4, nil)
	for i := 0; i < 6; i++ {
		s.Publish([]byte(fmt.Sprintf("rec-%d", i)))
	}
	// Ring of 4 with 6 published: floor is 3 (seqs 3..6 retained).
	if _, ok := s.Batch(2, 0); ok {
		t.Fatalf("aged-out watermark 2 must gap")
	}
	b, ok := s.Batch(5, 0)
	if !ok || b.From != 5 || b.Count != 2 || b.Next != 7 {
		t.Fatalf("batch from 5: ok=%v from=%d count=%d next=%d", ok, b.From, b.Count, b.Next)
	}
	n := 0
	if _, err := DecodeFrames(b.Frames, func(p []byte) error {
		want := fmt.Sprintf("rec-%d", 4+n) // seq 5 carries rec-4 (seq 1 carried rec-0)
		if string(p) != want {
			return fmt.Errorf("frame %d: %q != %q", n, p, want)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Batch(8, 0); ok {
		t.Fatalf("future watermark 8 must gap")
	}
	if b, ok := s.Batch(7, 0); !ok || b.Count != 0 {
		t.Fatalf("caught-up watermark must serve an empty batch")
	}
}
