package persist_test

import (
	"encoding/json"
	"errors"
	"os"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/persist"
)

// healHarness drives a persistent manager through an injected WAL
// failure and returns everything the heal tests need.
type healHarness struct {
	dir   string
	ffs   *check.FaultFS
	store *persist.Store
	mgr   *core.Manager
	cfg   core.Config
}

func newHealHarness(t *testing.T, plan check.FaultPlan) (*healHarness, *check.Stream) {
	t.Helper()
	const seed = int64(7)
	dir := t.TempDir()
	repo := check.SmallRepo(seed)
	cfg := core.Config{Alpha: 0.6, Capacity: repo.TotalSize() / 3}
	ffs := check.NewFaultFS(plan)
	store, err := persist.Open(dir, persist.Options{FS: ffs, SyncPolicy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mgr, _, err := store.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &healHarness{dir: dir, ffs: ffs, store: store, mgr: mgr, cfg: cfg}, check.NewStream(repo, seed)
}

// driveUntilSticky issues durable requests until the injected fault
// trips the store.
func (h *healHarness) driveUntilSticky(t *testing.T, stream *check.Stream) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if _, err := h.mgr.Request(stream.Next()); err != nil {
			t.Fatal(err)
		}
		h.store.WaitDurable()
		if h.store.Err() != nil {
			return
		}
	}
	t.Fatal("fault never fired; the plan's op counts no longer match the workload")
}

func TestHealClearsStickyAndTaint(t *testing.T) {
	h, stream := newHealHarness(t, check.FaultPlan{FailWriteAt: 40})
	seedRepo := check.SmallRepo(7)

	// A durable pre-failure insert must never become tainted.
	first, err := h.mgr.Request(stream.Next())
	if err != nil {
		t.Fatal(err)
	}
	if err := h.store.WaitDurable(); err != nil {
		t.Fatal(err)
	}

	h.driveUntilSticky(t, stream)

	// Mutations while sticky are dropped: any insert/merge acked from
	// memory now names an image recovery cannot rebuild.
	var stickyInsert core.Result
	found := false
	for i := 0; i < 500 && !found; i++ {
		res, err := h.mgr.Request(stream.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Op == core.OpInsert || res.Op == core.OpMerge {
			stickyInsert, found = res, true
		}
	}
	if !found {
		t.Fatal("workload produced no insert/merge while sticky")
	}
	if !h.store.Tainted(stickyInsert.ImageID) {
		t.Fatalf("image %d inserted while sticky is not tainted", stickyInsert.ImageID)
	}
	if h.store.Tainted(first.ImageID) && first.ImageID != stickyInsert.ImageID {
		t.Fatalf("durable pre-failure image %d is tainted", first.ImageID)
	}
	if h.store.TaintedCount() == 0 {
		t.Fatal("TaintedCount = 0 with a sticky store and dropped inserts")
	}

	// The probe write heals the store in place.
	state := h.mgr.ExportState()
	if err := h.store.Heal(state); err != nil {
		t.Fatalf("Heal through a recovered filesystem: %v", err)
	}
	if err := h.store.Err(); err != nil {
		t.Fatalf("sticky error survived Heal: %v", err)
	}
	if h.store.TaintedCount() != 0 {
		t.Fatalf("TaintedCount = %d after Heal, want 0", h.store.TaintedCount())
	}
	if h.store.Tainted(stickyInsert.ImageID) {
		t.Fatal("taint survived Heal despite the covering checkpoint")
	}
	if got := h.store.Heals(); got != 1 {
		t.Fatalf("Heals = %d, want 1", got)
	}

	// Power-loss immediately after the heal: the probe checkpoint alone
	// must reconstruct the exact healed state, dropped WAL records and
	// all.
	if err := h.ffs.Crash(check.CrashPower, 0); err != nil {
		t.Fatal(err)
	}
	store2, err := persist.Open(h.dir, persist.Options{SyncPolicy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	mgr2, _, err := store2.Recover(seedRepo, h.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr2.CheckIntegrity(); err != nil {
		t.Fatalf("post-heal recovery inconsistent: %v", err)
	}
	want, _ := json.Marshal(state)
	got, _ := json.Marshal(mgr2.ExportState())
	if string(want) != string(got) {
		t.Fatalf("recovered state diverges from healed state\nwant: %s\ngot:  %s", want, got)
	}
}

func TestHealRetriesAfterFailedProbe(t *testing.T) {
	// FailWriteAt trips the store; ShortWriteAt tears the first heal's
	// probe checkpoint, so the probe itself fails and the store must
	// stay failed until a later probe succeeds.
	h, stream := newHealHarness(t, check.FaultPlan{FailWriteAt: 40, ShortWriteAt: 41})
	h.driveUntilSticky(t, stream)

	state := h.mgr.ExportState()
	if err := h.store.Heal(state); err == nil {
		t.Fatal("Heal succeeded despite the torn probe write")
	}
	if h.store.Err() == nil {
		t.Fatal("store healthy after a failed probe")
	}
	if got := h.store.Heals(); got != 0 {
		t.Fatalf("Heals = %d after failed probe, want 0", got)
	}

	// Faults exhausted: the next probe goes through.
	if err := h.store.Heal(state); err != nil {
		t.Fatalf("second Heal: %v", err)
	}
	if err := h.store.Err(); err != nil {
		t.Fatalf("sticky error after successful retry: %v", err)
	}
	if got := h.store.Heals(); got != 1 {
		t.Fatalf("Heals = %d, want 1", got)
	}

	// Post-heal commits are durable again.
	if _, err := h.mgr.Request(stream.Next()); err != nil {
		t.Fatal(err)
	}
	if err := h.store.WaitDurable(); err != nil {
		t.Fatalf("WaitDurable after heal: %v", err)
	}
}

// failOpenFS delegates to an inner FS but fails OpenFile while armed —
// the rotation failure mode a full or read-only directory produces.
type failOpenFS struct {
	persist.FS
	armed bool
}

func (f *failOpenFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	if f.armed {
		return nil, errors.New("injected: open refused")
	}
	return f.FS.OpenFile(name, flag, perm)
}

// TestFailedRotationTripsSticky: a checkpoint whose segment rotation
// cannot open the next WAL file has already sealed the old one. The
// store must go sticky immediately — not sit on a closed handle until
// the next append trips over it — so the degraded-mode probe knows to
// heal.
func TestFailedRotationTripsSticky(t *testing.T) {
	const seed = int64(7)
	dir := t.TempDir()
	repo := check.SmallRepo(seed)
	cfg := core.Config{Alpha: 0.6}
	fs := &failOpenFS{FS: persist.OSFS{}}
	store, err := persist.Open(dir, persist.Options{FS: fs, SyncPolicy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mgr, _, err := store.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream := check.NewStream(repo, seed)
	if _, err := mgr.Request(stream.Next()); err != nil {
		t.Fatal(err)
	}
	if err := store.WaitDurable(); err != nil {
		t.Fatal(err)
	}

	fs.armed = true
	if _, err := store.Checkpoint(mgr.ExportState()); err == nil {
		t.Fatal("checkpoint succeeded with segment opens refused")
	}
	if store.Err() == nil {
		t.Fatal("failed rotation left the store healthy; the heal probe would never run")
	}

	// The probe heals it in place once the directory is writable again.
	fs.armed = false
	if err := store.Heal(mgr.ExportState()); err != nil {
		t.Fatalf("Heal after failed rotation: %v", err)
	}
	if err := store.Err(); err != nil {
		t.Fatalf("sticky error survived Heal: %v", err)
	}
	if _, err := mgr.Request(stream.Next()); err != nil {
		t.Fatal(err)
	}
	if err := store.WaitDurable(); err != nil {
		t.Fatalf("WaitDurable after heal: %v", err)
	}
}

func TestHealRefusesClosedStore(t *testing.T) {
	h, stream := newHealHarness(t, check.FaultPlan{})
	if _, err := h.mgr.Request(stream.Next()); err != nil {
		t.Fatal(err)
	}
	state := h.mgr.ExportState()
	if err := h.store.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.store.Heal(state); err == nil {
		t.Fatal("Heal resurrected a closed store")
	}
}
