package persist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
)

// WAL streaming replication.
//
// A Streamer sits beside a WAL producer (Store.SetTap, or any caller
// of Publish) and keeps a bounded ring of CRC-framed records, each
// with a contiguous sequence number. Followers replicate by asking for
// "everything from sequence N": the request's from-value is the
// watermark ack (it proves every earlier record was applied), the
// response is a concatenation of raw frames, and the frame codec's
// prefix property means a torn response yields a clean prefix the next
// poll simply re-extends. When a follower's watermark has aged out of
// the ring — or the stream identity changed because the primary
// restarted or re-based — the streamer answers "gap" and the follower
// resyncs from a checkpoint the streamer's provider captures, then
// re-enters the record stream at the checkpoint's sequence.
//
// The same pair serves two deployments: the fleet master ships its
// durable control-plane log to the standby inside lease renewals
// (push), and a cache server exposes ServeWAL/ServeCheckpoint so read
// replicas pull over HTTP. Both directions carry identical frames, so
// corruption detection, gap handling, and resync behave the same.

// Stream HTTP headers.
const (
	// StreamIDHeader carries the stream identity; a follower seeing a
	// different value than it last applied must resync.
	StreamIDHeader = "X-Landlord-Stream"
	// StreamFromHeader is the sequence of the first frame in the body.
	StreamFromHeader = "X-Landlord-Stream-From"
	// StreamNextHeader is the sequence after the last frame in the body
	// (the follower's next watermark once it applies everything).
	StreamNextHeader = "X-Landlord-Stream-Next"
)

// ErrStreamGap reports that a follower's watermark cannot be served
// from the streamer's ring (aged out, or the stream identity changed):
// the follower must resync from a checkpoint.
var ErrStreamGap = errors.New("persist: stream gap, checkpoint resync required")

// DefaultStreamRing is how many records a Streamer retains before
// laggards are forced through a checkpoint resync.
const DefaultStreamRing = 4096

// AppendFrame appends one CRC-framed payload to buf and returns it —
// the exported face of the WAL frame codec, for callers building
// streamable records outside the Store (the fleet's HA log).
func AppendFrame(buf, payload []byte) []byte { return appendFrame(buf, payload) }

// DecodeFrames invokes fn for every intact frame in b, in order,
// stopping at the first torn or corrupt frame. It returns how many
// frames were decoded and why decoding stopped: nil for a clean end,
// io.ErrUnexpectedEOF for a torn tail, an ErrCorrupt-wrapped error for
// a failed checksum or length, or fn's error. The prefix property
// holds: bytes after a bad frame are never interpreted.
func DecodeFrames(b []byte, fn func(payload []byte) error) (int, error) {
	br := bufio.NewReader(bytes.NewReader(b))
	n := 0
	for {
		payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := fn(payload); err != nil {
			return n, err
		}
		n++
	}
}

// StreamBatch is one slice of the record stream: Count frames covering
// sequences [From, Next).
type StreamBatch struct {
	StreamID uint64 `json:"stream"`
	From     uint64 `json:"from"`
	Count    int    `json:"count"`
	Next     uint64 `json:"next"`
	// Frames is the concatenated CRC-framed records.
	Frames []byte `json:"frames,omitempty"`
}

// StreamCheckpointBatch is a checkpoint resync: one framed checkpoint
// payload that replaces the follower's state, after which the follower
// re-enters the record stream at Next.
type StreamCheckpointBatch struct {
	StreamID uint64 `json:"stream"`
	Next     uint64 `json:"next"`
	// Frame is the single CRC-framed checkpoint payload.
	Frame []byte `json:"frame"`
}

// StreamCheckpoint is the conventional checkpoint payload for cache
// streams: the full exported manager state plus the stream position it
// is consistent with. Providers marshal one under the same exclusion
// that serializes Publish so State and Next agree.
type StreamCheckpoint struct {
	Next  uint64            `json:"next"`
	State core.ManagerState `json:"state"`
}

// CheckpointFunc captures a resync checkpoint. It must return a
// payload consistent with a specific stream position: every record
// published before `next` is reflected in the payload and none at or
// after it — which the provider guarantees by capturing state and
// reading Streamer.Next under the same exclusion that serializes
// Publish calls (for the cache server, the all-shard exclusive lock;
// for the fleet master, its state mutex).
type CheckpointFunc func() (payload []byte, next uint64, err error)

// Streamer is the primary side of WAL streaming: a bounded ring of
// framed records with contiguous sequence numbers, plus the checkpoint
// provider that rescues followers the ring no longer covers.
type Streamer struct {
	ckpt CheckpointFunc

	mu     sync.Mutex
	id     uint64
	max    int
	floor  uint64 // sequence of frames[0]
	next   uint64 // sequence the next Publish assigns
	frames [][]byte
}

// NewStreamer creates a streamer with identity id (must be non-zero;
// followers treat 0 as "no stream yet") retaining up to maxRecords
// frames (<= 0 takes DefaultStreamRing). ckpt provides resync
// checkpoints; nil disables resync (gapped followers stay gapped).
func NewStreamer(id uint64, maxRecords int, ckpt CheckpointFunc) *Streamer {
	if maxRecords <= 0 {
		maxRecords = DefaultStreamRing
	}
	return &Streamer{id: id, max: maxRecords, floor: 1, next: 1, ckpt: ckpt}
}

// ID returns the stream identity.
func (s *Streamer) ID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.id
}

// Next returns the sequence the next published record will get (one
// past the newest buffered record).
func (s *Streamer) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Publish frames payload, appends it to the ring, and returns its
// sequence. The payload is copied; callers may reuse the slice.
func (s *Streamer) Publish(payload []byte) uint64 {
	frame := appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.next
	s.next++
	s.frames = append(s.frames, frame)
	if len(s.frames) > s.max {
		drop := len(s.frames) - s.max
		s.frames = append([][]byte(nil), s.frames[drop:]...)
		s.floor += uint64(drop)
	}
	return seq
}

// Bump changes the stream identity (clearing the ring), forcing every
// follower through a checkpoint resync. Embedders call it when the
// record stream re-bases — a WAL heal, a promotion seeding a new
// primary's log from replicated state.
func (s *Streamer) Bump(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.id = id
	s.frames = nil
	s.floor = s.next
}

// Batch returns frames covering [from, next), capped at maxBytes of
// frame data (<= 0: no cap; at least one frame is always included when
// available). ok is false when the ring cannot serve from — the
// watermark predates the ring's floor or exceeds next — and the caller
// should fall back to Checkpoint.
func (s *Streamer) Batch(from uint64, maxBytes int) (StreamBatch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.floor || from > s.next {
		return StreamBatch{StreamID: s.id}, false
	}
	b := StreamBatch{StreamID: s.id, From: from, Next: from}
	for i := int(from - s.floor); i < len(s.frames); i++ {
		f := s.frames[i]
		if maxBytes > 0 && len(b.Frames) > 0 && len(b.Frames)+len(f) > maxBytes {
			break
		}
		b.Frames = append(b.Frames, f...)
		b.Count++
		b.Next++
	}
	return b, true
}

// Checkpoint captures a resync batch from the provider.
func (s *Streamer) Checkpoint() (StreamCheckpointBatch, error) {
	if s.ckpt == nil {
		return StreamCheckpointBatch{}, fmt.Errorf("persist: streamer has no checkpoint provider")
	}
	payload, next, err := s.ckpt()
	if err != nil {
		return StreamCheckpointBatch{}, err
	}
	s.mu.Lock()
	id := s.id
	s.mu.Unlock()
	return StreamCheckpointBatch{
		StreamID: id,
		Next:     next,
		Frame:    appendFrame(nil, payload),
	}, nil
}

// ServeWAL is the pull endpoint: GET ?from=N[&max=M] returns the
// concatenated frames from sequence N as a binary body, with the
// stream headers describing what was served. A gapped watermark gets
// 410 Gone — the follower's cue to hit ServeCheckpoint.
func (s *Streamer) ServeWAL(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "wal needs ?from=<uint64>", http.StatusBadRequest)
		return
	}
	maxBytes := 0
	if v := r.URL.Query().Get("max"); v != "" {
		if m, err := strconv.Atoi(v); err == nil {
			maxBytes = m
		}
	}
	b, ok := s.Batch(from, maxBytes)
	w.Header().Set(StreamIDHeader, strconv.FormatUint(b.StreamID, 10))
	if !ok {
		w.Header().Set(StreamNextHeader, strconv.FormatUint(s.Next(), 10))
		http.Error(w, "watermark gapped; resync from checkpoint", http.StatusGone)
		return
	}
	w.Header().Set(StreamFromHeader, strconv.FormatUint(b.From, 10))
	w.Header().Set(StreamNextHeader, strconv.FormatUint(b.Next, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b.Frames)
}

// ServeCheckpoint is the resync endpoint: GET returns one framed
// checkpoint payload as the body, with StreamNextHeader naming the
// sequence the follower re-enters the record stream at.
func (s *Streamer) ServeCheckpoint(w http.ResponseWriter, r *http.Request) {
	cb, err := s.Checkpoint()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set(StreamIDHeader, strconv.FormatUint(cb.StreamID, 10))
	w.Header().Set(StreamNextHeader, strconv.FormatUint(cb.Next, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(cb.Frame)
}

// Follower is the replica side: it applies streamed records through
// Apply and checkpoint payloads through Restore, tracking the
// watermark (Next) that acks everything applied.
type Follower struct {
	// Apply consumes one streamed record payload.
	Apply func(payload []byte) error
	// Restore replaces the replica's state from a checkpoint payload.
	Restore func(payload []byte) error

	mu      sync.Mutex
	stream  uint64
	next    uint64
	applied uint64
	resyncs int
}

// NewFollower creates a follower expecting a fresh stream (watermark
// 1, no stream identity yet).
func NewFollower(apply, restore func(payload []byte) error) *Follower {
	return &Follower{Apply: apply, Restore: restore, next: 1}
}

// Next returns the follower's watermark: the sequence it needs next,
// which acks every earlier record.
func (f *Follower) Next() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Applied returns how many records have been applied in total.
func (f *Follower) Applied() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Resyncs returns how many checkpoint resyncs the follower performed.
func (f *Follower) Resyncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.resyncs
}

// ApplyBatch applies the framed records of one batch beginning at
// sequence from on stream id. Records below the watermark are decoded
// and skipped (overlapping batches are harmless); a batch from a
// different stream or beyond the watermark returns ErrStreamGap. A
// torn or corrupt tail ends the batch early with no error — the clean
// prefix is applied, and the unchanged watermark makes the next poll
// re-fetch the rest. Apply errors abort and are returned.
func (f *Follower) ApplyBatch(stream, from uint64, frames []byte) (int, error) {
	f.mu.Lock()
	if f.stream == 0 && f.applied == 0 {
		f.stream = stream // first contact: adopt the stream
	}
	if stream != f.stream || from > f.next {
		f.mu.Unlock()
		return 0, ErrStreamGap
	}
	skip := int(f.next - from)
	f.mu.Unlock()

	applied := 0
	_, err := DecodeFrames(frames, func(payload []byte) error {
		if skip > 0 {
			skip--
			return nil
		}
		if err := f.Apply(payload); err != nil {
			return err
		}
		applied++
		f.mu.Lock()
		f.next++
		f.applied++
		f.mu.Unlock()
		return nil
	})
	if err != nil && (errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt)) {
		// Torn/corrupt tail: the applied prefix is sound, the watermark
		// re-fetches the rest.
		return applied, nil
	}
	return applied, err
}

// ApplyCheckpoint resyncs the follower: restore from the framed
// checkpoint payload, adopt the stream identity, and re-enter the
// record stream at next.
func (f *Follower) ApplyCheckpoint(stream, next uint64, frame []byte) error {
	var payload []byte
	n, err := DecodeFrames(frame, func(p []byte) error {
		payload = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		return fmt.Errorf("persist: checkpoint frame: %w", err)
	}
	if n != 1 {
		return fmt.Errorf("persist: checkpoint batch carried %d frames, want 1", n)
	}
	if err := f.Restore(payload); err != nil {
		return err
	}
	f.mu.Lock()
	f.stream = stream
	f.next = next
	f.resyncs++
	f.mu.Unlock()
	return nil
}

// Pull performs one HTTP replication poll against a Streamer mounted
// at base+"/wal" and base+"/checkpoint": fetch from the watermark,
// apply what arrives, resync from the checkpoint on a gap (410, a
// stream identity change, or a watermark the primary cannot serve).
// It returns how many records were applied.
func (f *Follower) Pull(ctx context.Context, hc *http.Client, base string) (int, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	stream, next, body, status, err := f.fetch(ctx, hc,
		fmt.Sprintf("%s/wal?from=%d", base, f.Next()))
	if err != nil {
		return 0, err
	}
	gap := status == http.StatusGone
	if !gap && status != http.StatusOK {
		return 0, fmt.Errorf("persist: wal pull: status %d", status)
	}
	if !gap {
		n, err := f.ApplyBatch(stream, f.Next(), body)
		if err == nil {
			return n, nil
		}
		if !errors.Is(err, ErrStreamGap) {
			return n, err
		}
	}
	stream, next, body, status, err = f.fetch(ctx, hc, base+"/checkpoint")
	if err != nil {
		return 0, err
	}
	if status != http.StatusOK {
		return 0, fmt.Errorf("persist: checkpoint pull: status %d", status)
	}
	if err := f.ApplyCheckpoint(stream, next, body); err != nil {
		return 0, err
	}
	return 0, nil
}

// fetch GETs url and returns the stream headers, body, and status.
func (f *Follower) fetch(ctx context.Context, hc *http.Client, url string) (stream, next uint64, body []byte, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, 0, nil, 0, err
	}
	defer resp.Body.Close()
	stream, _ = strconv.ParseUint(resp.Header.Get(StreamIDHeader), 10, 64)
	next, _ = strconv.ParseUint(resp.Header.Get(StreamNextHeader), 10, 64)
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		// A torn body is a torn tail: the clean prefix is still usable.
		err = nil
	}
	return stream, next, body, resp.StatusCode, nil
}
