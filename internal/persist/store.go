package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

// Store ties the WAL and checkpoints together for one state
// directory. Lifecycle: Open, Recover (which returns the reconstructed
// Manager and installs the store as its commit hook), then Commit
// flows mutations to the WAL until Close. Checkpoint compacts at any
// point; the caller must hold whatever lock serializes access to the
// Manager while exporting the state it passes in (the HTTP server
// holds its request mutex, so commits and checkpoints never
// interleave).
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        File   // open append segment; nil before Recover / after Close
	seq      uint64 // sequence number of the open segment
	segBytes int64
	lastSync time.Time
	sticky   error
	buf      []byte // scratch frame buffer, reused across commits

	// Group commit (FsyncAlways): Commit appends records to the OS in
	// mutation order and returns; durability is paid in WaitDurable,
	// where concurrent waiters elect one leader whose single fsync
	// covers every record appended so far — the shared batch.
	appendSeq  uint64     // records appended to the OS, guarded by mu
	durableSeq uint64     // records known to be on stable storage, guarded by mu
	flushing   bool       // a leader's fsync is in flight
	flushCond  *sync.Cond // on mu; signaled whenever durableSeq advances

	// Taint tracking for degraded-mode serving: pending holds the
	// image IDs of insert/merge records appended but not yet known
	// durable (a prefix-ordered queue drained by markDurableLocked);
	// when the store fails they move to tainted, joined by every
	// insert/merge dropped while sticky. A tainted image exists in
	// memory but is not guaranteed to survive a crash, so a degraded
	// server must refuse to ack hits on it (see Tainted). Heal clears
	// both — its full-state checkpoint re-covers everything.
	pending []pendingRec
	tainted map[uint64]struct{}
	heals   int64

	// tap, when set, observes every successfully appended record's
	// payload in append order, inside the commit critical section — the
	// hook WAL streaming replication (stream.go) publishes from. The
	// payload slice is only valid for the duration of the call.
	tap func(payload []byte)

	lastCkptUnixNano atomic.Int64

	// Metric series; nil until RegisterMetrics.
	walRecords  *telemetry.Counter
	walBytes    *telemetry.Counter
	walErrors   *telemetry.Counter
	checkpoints *telemetry.Counter
	healsCtr    *telemetry.Counter
	batchHist   *telemetry.Histogram
}

// pendingRec is one appended-but-not-yet-durable insert/merge record.
type pendingRec struct {
	seq uint64 // append sequence of the record
	id  uint64 // image whose existence the record establishes
}

var (
	errNotRecovered = errors.New("persist: store not recovered; call Recover before Commit")
	errClosed       = errors.New("persist: store closed")
)

// Open prepares a store over dir, creating it if needed. No files are
// opened until Recover.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{dir: dir, opts: opts, tainted: make(map[uint64]struct{})}
	st.flushCond = sync.NewCond(&st.mu)
	return st, nil
}

// Dir returns the state directory.
func (st *Store) Dir() string { return st.dir }

// SetTap installs fn as the append observer: it is called with every
// successfully appended record's payload, in append order, under the
// store's commit lock (so it must stay cheap and must not re-enter the
// store). The payload slice is reused; implementations that retain it
// must copy. Replication attaches a Streamer here. Call before traffic;
// not safe to change concurrently with commits.
func (st *Store) SetTap(fn func(payload []byte)) {
	st.mu.Lock()
	st.tap = fn
	st.mu.Unlock()
}

// Err returns the sticky append error, if any. Once an append fails
// (disk full, removed directory) the store stops logging and the cache
// keeps serving from memory; operators see the error here and in the
// landlord_persist_wal_errors_total metric.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sticky
}

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	Duration         time.Duration
	CheckpointSeq    uint64 // 0 when no checkpoint was loaded
	CheckpointImages int
	SegmentsScanned  int
	RecordsReplayed  int
	RecordsSkipped   int
	CorruptSegments  int
	TornTail         bool
	Warnings         []string
}

// String renders a one-line log summary.
func (r *RecoveryReport) String() string {
	return fmt.Sprintf("checkpoint seq=%d images=%d, replayed %d record(s) from %d segment(s) in %v (skipped=%d corrupt_segments=%d torn_tail=%v warnings=%d)",
		r.CheckpointSeq, r.CheckpointImages, r.RecordsReplayed, r.SegmentsScanned,
		r.Duration.Round(time.Millisecond), r.RecordsSkipped, r.CorruptSegments, r.TornTail, len(r.Warnings))
}

func (r *RecoveryReport) warn(format string, args ...any) {
	const maxWarnings = 16
	if len(r.Warnings) < maxWarnings {
		r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
	}
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".log"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

func (st *Store) segPath(seq uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix))
}

func (st *Store) ckptPath(seq uint64) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%016d%s", ckptPrefix, seq, ckptSuffix))
}

// parseSeq extracts the sequence number from a segment or checkpoint
// file name, or returns false for unrelated files.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return n, err == nil
}

// scan lists segment and checkpoint sequence numbers, ascending.
func (st *Store) scan() (segs, ckpts []uint64, err error) {
	entries, err := st.opts.FS.ReadDir(st.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), segPrefix, segSuffix); ok {
			segs = append(segs, n)
		} else if n, ok := parseSeq(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts = append(ckpts, n)
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(ckpts, func(a, b int) bool { return ckpts[a] < ckpts[b] })
	return segs, ckpts, nil
}

// CacheReplayer is the cache surface recovery drives: bulk state
// import from a checkpoint plus record-at-a-time mutation replay from
// the WAL tail. Both *core.Manager and *core.ShardedManager satisfy
// it, so one recovery loop serves the unsharded and sharded caches.
type CacheReplayer interface {
	ImportState(core.ManagerState) error
	ApplyMutation(core.Mutation) error
}

// Recover rebuilds a Manager from the newest valid checkpoint plus the
// WAL tail, installs the store as the manager's commit hook
// (overriding any hook already in cfg), and opens a fresh segment for
// subsequent commits. It never fails on corrupt state — the report's
// Warnings say what was skipped — only on I/O errors reaching the
// directory or invalid cfg.
func (st *Store) Recover(repo *pkggraph.Repo, cfg core.Config) (*core.Manager, *RecoveryReport, error) {
	cfg.Commit = st
	c, rep, err := st.RecoverWith(func() (CacheReplayer, error) { return core.NewManager(repo, cfg) })
	if err != nil {
		return nil, nil, err
	}
	return c.(*core.Manager), rep, nil
}

// RecoverSharded is Recover for the sharded cache: it rebuilds a
// ShardedManager with cfg.Shards shards from the same checkpoint + WAL
// state directory. Checkpoints partition by ImageID mod shards
// (strided ID allocation makes the owner recoverable from the ID with
// no format change), so a directory written by a shards=1 daemon
// reloads into any shard count and vice versa — though changing the
// count across a restart re-homes only *new* images, so resident
// images stop matching the router until they age out; keep cache_shards
// stable for full hit retention.
func (st *Store) RecoverSharded(repo *pkggraph.Repo, cfg core.Config) (*core.ShardedManager, *RecoveryReport, error) {
	cfg.Commit = st
	c, rep, err := st.RecoverWith(func() (CacheReplayer, error) { return core.NewSharded(repo, cfg) })
	if err != nil {
		return nil, nil, err
	}
	return c.(*core.ShardedManager), rep, nil
}

// RecoverWith is the generic recovery loop under Recover and
// RecoverSharded. newCache must return a fresh, empty cache on every
// call: recovery constructs one per checkpoint candidate (abandoning
// the half-imported cache when a checkpoint is unreadable or rejected)
// and a final empty one when no checkpoint loads. The constructor is
// responsible for wiring this store as the cache's commit hook; a
// constructor error is fatal (invalid configuration), unlike corrupt
// state, which only warns.
//
// WAL ordering under sharding: every shard's commit hook fires under
// that shard's stamping lock, so the log is a merge of per-shard
// subsequences, each strictly monotone in Seq (stamps are drawn from
// one shared clock and are globally unique). The cross-shard
// interleaving in the file is whatever order the hooks reached the
// store's append lock — NOT globally Seq-sorted — and replay tolerates
// that because mutations carry absolute values and shards own disjoint
// ImageIDs (ID mod shards names the owner), so records from different
// shards commute under ApplyMutation.
func (st *Store) RecoverWith(newCache func() (CacheReplayer, error)) (CacheReplayer, *RecoveryReport, error) {
	start := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		return nil, nil, errors.New("persist: Recover called twice")
	}

	segs, ckpts, err := st.scan()
	if err != nil {
		return nil, nil, err
	}
	rep := &RecoveryReport{}

	// Newest checkpoint that both parses and imports wins.
	var mgr CacheReplayer
	var ckptSeq uint64
	for i := len(ckpts) - 1; i >= 0; i-- {
		seq := ckpts[i]
		ck, err := readCheckpointFile(st.opts.FS, st.ckptPath(seq))
		if err != nil {
			rep.warn("checkpoint %d unreadable: %v", seq, err)
			continue
		}
		m, err := newCache()
		if err != nil {
			return nil, nil, err
		}
		if err := m.ImportState(ck.State); err != nil {
			rep.warn("checkpoint %d rejected: %v", seq, err)
			continue
		}
		mgr, ckptSeq = m, seq
		rep.CheckpointSeq = seq
		rep.CheckpointImages = len(ck.State.Images)
		if ck.SavedUnixNano != 0 {
			st.lastCkptUnixNano.Store(ck.SavedUnixNano)
		}
		break
	}
	if mgr == nil {
		m, err := newCache()
		if err != nil {
			return nil, nil, err
		}
		mgr = m
	}

	// Replay segments not covered by the checkpoint, oldest first.
	var maxSeq uint64
	if len(ckpts) > 0 {
		maxSeq = ckpts[len(ckpts)-1]
	}
	for i, seq := range segs {
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq < ckptSeq {
			continue // compacted into the checkpoint; stale file
		}
		rep.SegmentsScanned++
		f, err := st.opts.FS.Open(st.segPath(seq))
		if err != nil {
			rep.CorruptSegments++
			rep.warn("segment %d unreadable: %v", seq, err)
			continue
		}
		muts, readErr := ReadSegment(f)
		f.Close()
		for _, mut := range muts {
			if err := mgr.ApplyMutation(mut); err != nil {
				rep.RecordsSkipped++
				rep.warn("segment %d: %v", seq, err)
				continue
			}
			rep.RecordsReplayed++
		}
		if readErr != nil {
			if i == len(segs)-1 {
				// The normal crash signature: the final record was
				// mid-write when the process died.
				rep.TornTail = true
				rep.warn("segment %d ends with a torn record: %v", seq, readErr)
			} else {
				rep.CorruptSegments++
				rep.warn("segment %d corrupt mid-stream: %v", seq, readErr)
			}
		}
	}

	// Open a fresh segment for post-recovery commits; earlier segments
	// stay until the next checkpoint compacts them.
	st.seq = maxSeq + 1
	f, err := st.opts.FS.OpenFile(st.segPath(st.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st.f = f
	st.segBytes = 0
	st.lastSync = time.Now()
	if st.lastCkptUnixNano.Load() == 0 {
		st.lastCkptUnixNano.Store(time.Now().UnixNano())
	}
	rep.Duration = time.Since(start)
	return mgr, rep, nil
}

// Commit implements core.CommitHook: one framed record per mutation,
// appended in mutation order. It never blocks the cache on durability
// failures — the first error sticks, later mutations are dropped, and
// Err/metrics surface it.
//
// Commit is called with the cache's locks held (the ConcurrentManager
// invokes the hook before releasing the lock that ordered the
// mutation), so it must stay cheap: it writes to the OS but never
// fsyncs under FsyncAlways. Durability under that policy is paid in
// WaitDurable, which the server calls after releasing the cache locks
// and before acknowledging the request.
func (st *Store) Commit(mut core.Mutation) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sticky != nil {
		st.taintLocked(mut)
		return
	}
	if st.f == nil {
		st.fail(errNotRecovered)
		st.taintLocked(mut)
		return
	}
	buf, err := EncodeRecord(st.buf[:0], mut)
	st.buf = buf
	if err != nil {
		st.fail(fmt.Errorf("persist: encoding mutation: %w", err))
		st.taintLocked(mut)
		return
	}
	if st.segBytes > 0 && st.segBytes+int64(len(buf)) > st.opts.SegmentBytes {
		if err := st.rotateLocked(); err != nil {
			st.fail(err)
			st.taintLocked(mut)
			return
		}
	}
	n, err := st.f.Write(buf)
	st.segBytes += int64(n)
	if err != nil {
		st.fail(fmt.Errorf("persist: appending WAL record: %w", err))
		// The record may be torn on disk; not durable either way.
		st.taintLocked(mut)
		return
	}
	st.appendSeq++
	if st.tap != nil {
		st.tap(buf[frameHeaderSize:])
	}
	if mut.Kind == core.MutInsert || mut.Kind == core.MutMerge {
		st.pending = append(st.pending, pendingRec{seq: st.appendSeq, id: mut.ImageID})
	}
	if st.walRecords != nil {
		st.walRecords.Inc()
		st.walBytes.Add(int64(n))
	}
	if st.opts.SyncPolicy == FsyncInterval && time.Since(st.lastSync) >= st.opts.SyncInterval {
		if err := st.f.Sync(); err != nil {
			st.fail(fmt.Errorf("persist: syncing WAL: %w", err))
			return
		}
		st.lastSync = time.Now()
		st.markDurableLocked(st.appendSeq)
	}
}

// WaitDurable blocks until every record appended before the call is on
// stable storage, and returns the sticky error if durability has
// degraded. Under FsyncInterval and FsyncNever it returns immediately:
// the policy's staleness bound is the durability contract there.
//
// Under FsyncAlways this is the group-commit protocol: the first
// waiter to arrive becomes the leader and fsyncs once for every record
// appended so far; waiters arriving while that fsync is in flight
// sleep, and one of them leads the next round, syncing the whole batch
// that accumulated meanwhile. N concurrent committers therefore cost
// ~2 fsyncs, not N — the dominant durability cost amortizes across the
// batch.
func (st *Store) WaitDurable() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.opts.SyncPolicy != FsyncAlways || st.f == nil {
		return st.sticky
	}
	target := st.appendSeq
	for st.durableSeq < target && st.sticky == nil {
		if st.flushing {
			st.flushCond.Wait()
			continue
		}
		st.flushing = true
		f := st.f
		seg := st.seq
		upto := st.appendSeq
		st.mu.Unlock()
		err := f.Sync()
		st.mu.Lock()
		st.flushing = false
		switch {
		case st.seq != seg:
			// The segment rotated (or the store closed) while we were
			// syncing: rotation fsynced the records we cover, and
			// markDurableLocked already advanced past upto. Any error
			// from syncing the closed handle is expected noise.
		case err != nil:
			st.fail(fmt.Errorf("persist: group-commit sync: %w", err))
		default:
			if st.batchHist != nil && upto > st.durableSeq {
				st.batchHist.Observe(float64(upto - st.durableSeq))
			}
			st.markDurableLocked(upto)
		}
		st.flushCond.Broadcast()
	}
	return st.sticky
}

// markDurableLocked advances the durable watermark, clears pending
// taint candidates the watermark now covers, and wakes waiters.
func (st *Store) markDurableLocked(seq uint64) {
	if seq > st.durableSeq {
		st.durableSeq = seq
	}
	i := 0
	for i < len(st.pending) && st.pending[i].seq <= st.durableSeq {
		i++
	}
	if i > 0 {
		st.pending = append(st.pending[:0], st.pending[i:]...)
	}
	st.flushCond.Broadcast()
}

// taintLocked records that mut was dropped or left non-durable; only
// insert/merge records matter — a dropped touch loses an LRU stamp,
// and a dropped delete/split leaves the on-disk image a superset of
// memory, both safe to serve from after a crash.
func (st *Store) taintLocked(mut core.Mutation) {
	if mut.Kind == core.MutInsert || mut.Kind == core.MutMerge {
		st.tainted[mut.ImageID] = struct{}{}
	}
}

func (st *Store) fail(err error) {
	st.sticky = err
	// Everything appended but not yet durable is now suspect.
	for _, p := range st.pending {
		st.tainted[p.id] = struct{}{}
	}
	st.pending = st.pending[:0]
	if st.walErrors != nil {
		st.walErrors.Inc()
	}
	// Unblock group-commit waiters; they return the sticky error.
	st.flushCond.Broadcast()
}

// Tainted reports whether an acked response naming image id could be
// lost in a crash: the record establishing the image was dropped or
// never made durable. Degraded-mode serving consults this before
// answering hits from memory.
func (st *Store) Tainted(id uint64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.tainted[id]; ok {
		return true
	}
	// While the store is failing, appended-but-unflushed records are
	// just as suspect as dropped ones.
	if st.sticky != nil {
		for _, p := range st.pending {
			if p.id == id {
				return true
			}
		}
	}
	return false
}

// TaintedCount returns how many images are currently tainted.
func (st *Store) TaintedCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.tainted)
}

// rotateLocked seals the current segment (flush + fsync + close) and
// opens the next one. Sealing makes every record appended so far
// durable, so the group-commit watermark advances with it.
func (st *Store) rotateLocked() error {
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("persist: sealing segment %d: %w", st.seq, err)
	}
	if err := st.f.Close(); err != nil {
		return fmt.Errorf("persist: closing segment %d: %w", st.seq, err)
	}
	st.markDurableLocked(st.appendSeq)
	st.seq++
	f, err := st.opts.FS.OpenFile(st.segPath(st.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		// The old segment is already sealed and closed: without a new
		// one the store cannot log at all. Mark it failed so the
		// degraded-mode heal probe retries the open, instead of leaving
		// a closed handle to trip over on the next append.
		err = fmt.Errorf("persist: opening segment %d: %w", st.seq, err)
		st.fail(err)
		return err
	}
	st.f = f
	st.segBytes = 0
	st.lastSync = time.Now()
	return nil
}

// CheckpointInfo reports one completed checkpoint.
type CheckpointInfo struct {
	Seq      uint64        `json:"seq"`
	Images   int           `json:"images"`
	Bytes    int64         `json:"bytes"`
	Duration time.Duration `json:"-"`
}

// Checkpoint compacts the log: it rotates the WAL, durably writes
// state as checkpoint-<newseq>, and deletes the now-covered older
// segments and checkpoints. The caller must prevent concurrent
// mutations between exporting state and this call returning (the HTTP
// server holds its manager mutex across both).
func (st *Store) Checkpoint(state core.ManagerState) (CheckpointInfo, error) {
	start := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return CheckpointInfo{}, errNotRecovered
	}
	if err := st.rotateLocked(); err != nil {
		return CheckpointInfo{}, err
	}
	now := time.Now()
	path := st.ckptPath(st.seq)
	if err := writeCheckpointFile(st.opts.FS, path, Checkpoint{
		SavedUnixNano: now.UnixNano(),
		WALSeq:        st.seq,
		State:         state,
	}); err != nil {
		return CheckpointInfo{}, err
	}
	info := CheckpointInfo{Seq: st.seq, Images: len(state.Images)}
	if fi, err := st.opts.FS.Stat(path); err == nil {
		info.Bytes = fi.Size()
	}
	st.lastCkptUnixNano.Store(now.UnixNano())
	if st.checkpoints != nil {
		st.checkpoints.Inc()
	}
	// Garbage-collect covered files; failures leave stale files that
	// recovery ignores and the next checkpoint retries.
	if segs, ckpts, err := st.scan(); err == nil {
		for _, seq := range segs {
			if seq < info.Seq {
				st.opts.FS.Remove(st.segPath(seq))
			}
		}
		for _, seq := range ckpts {
			if seq < info.Seq {
				st.opts.FS.Remove(st.ckptPath(seq))
			}
		}
	}
	info.Duration = time.Since(start)
	return info, nil
}

// Heal attempts to recover a failed store in place: it abandons the
// broken segment, opens a fresh one at a higher sequence, and durably
// writes a full-state checkpoint there. The checkpoint write IS the
// probe — it exercises create, write, fsync, and rename on the state
// directory, so its success is direct evidence the fault cleared. On
// success the sticky error, pending queue, and taint set are all
// cleared: every image in memory is now covered by the checkpoint.
// On failure the store stays failed and the error says why.
//
// Like Checkpoint, the caller must prevent concurrent mutations
// between exporting state and Heal returning (the server holds the
// manager's exclusive lock across both).
func (st *Store) Heal(state core.ManagerState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if errors.Is(st.sticky, errClosed) {
		return st.sticky
	}
	if st.f == nil && st.sticky == nil {
		return errNotRecovered
	}
	// Abandon the broken segment; its handle may be beyond repair and
	// the checkpoint below makes its contents irrelevant.
	if st.f != nil {
		st.f.Sync()
		st.f.Close()
		st.f = nil
	}
	st.seq++ // invalidates in-flight group-commit leaders' captures
	f, err := st.opts.FS.OpenFile(st.segPath(st.seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		err = fmt.Errorf("persist: heal: opening segment %d: %w", st.seq, err)
		st.fail(err)
		return err
	}
	now := time.Now()
	path := st.ckptPath(st.seq)
	if werr := writeCheckpointFile(st.opts.FS, path, Checkpoint{
		SavedUnixNano: now.UnixNano(),
		WALSeq:        st.seq,
		State:         state,
	}); werr != nil {
		f.Close()
		werr = fmt.Errorf("persist: heal: writing probe checkpoint: %w", werr)
		st.fail(werr)
		return werr
	}
	// Probe succeeded: the store is whole again.
	st.f = f
	st.segBytes = 0
	st.lastSync = time.Now()
	st.sticky = nil
	st.pending = st.pending[:0]
	st.tainted = make(map[uint64]struct{})
	st.markDurableLocked(st.appendSeq)
	st.heals++
	st.lastCkptUnixNano.Store(now.UnixNano())
	if st.healsCtr != nil {
		st.healsCtr.Inc()
	}
	if st.checkpoints != nil {
		st.checkpoints.Inc()
	}
	// Older files are covered by the probe checkpoint.
	if segs, ckpts, err := st.scan(); err == nil {
		for _, seq := range segs {
			if seq < st.seq {
				st.opts.FS.Remove(st.segPath(seq))
			}
		}
		for _, seq := range ckpts {
			if seq < st.seq {
				st.opts.FS.Remove(st.ckptPath(seq))
			}
		}
	}
	return nil
}

// Heals returns how many times Heal has succeeded.
func (st *Store) Heals() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.heals
}

// Sync forces the WAL to stable storage regardless of policy.
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	if err := st.f.Sync(); err != nil {
		return err
	}
	st.markDurableLocked(st.appendSeq)
	return nil
}

// Close seals the WAL. Commits after Close are dropped (and counted as
// errors).
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	err := st.f.Sync()
	if cerr := st.f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		st.markDurableLocked(st.appendSeq)
	}
	st.f = nil
	st.seq++ // invalidate any in-flight group-commit leader's segment capture
	if st.sticky == nil {
		st.sticky = errClosed
		st.flushCond.Broadcast()
	}
	return err
}

// RegisterMetrics exposes the durability series on reg: recovery
// duration and replay counts (from rep, which may be nil), WAL
// record/byte/error counters, checkpoint count, and a scrape-time
// checkpoint-age gauge.
func (st *Store) RegisterMetrics(reg *telemetry.Registry, rep *RecoveryReport) {
	if rep != nil {
		reg.Gauge("landlord_persist_recovery_seconds",
			"Wall-clock time of the last crash recovery").Set(rep.Duration.Seconds())
		reg.Gauge("landlord_persist_replayed_records",
			"WAL records replayed by the last recovery").Set(float64(rep.RecordsReplayed))
		reg.Gauge("landlord_persist_skipped_records",
			"WAL records skipped as corrupt or inapplicable by the last recovery").Set(float64(rep.RecordsSkipped))
	}
	st.walRecords = reg.Counter("landlord_persist_wal_records_total", "Mutations appended to the WAL")
	st.walBytes = reg.Counter("landlord_persist_wal_bytes_total", "Bytes appended to the WAL")
	st.walErrors = reg.Counter("landlord_persist_wal_errors_total", "WAL append/sync failures (durability degraded)")
	st.checkpoints = reg.Counter("landlord_persist_checkpoints_total", "Checkpoints written")
	st.healsCtr = reg.Counter("landlord_persist_heals_total", "Successful in-place store heals (degraded-mode recovery)")
	reg.GaugeFunc("landlord_persist_tainted_images",
		"Images whose durability records were lost to WAL failures", func() float64 {
			return float64(st.TaintedCount())
		})
	st.batchHist = reg.Histogram("landlord_persist_group_commit_records",
		"Records made durable per group-commit fsync",
		telemetry.ExponentialBuckets(1, 2, 10))
	reg.GaugeFunc("landlord_persist_checkpoint_age_seconds",
		"Seconds since the last durable checkpoint", func() float64 {
			t := st.lastCkptUnixNano.Load()
			if t == 0 {
				return -1
			}
			return time.Since(time.Unix(0, t)).Seconds()
		})
}

// ensure Store satisfies the hook interface and both cache flavors
// satisfy the recovery interface.
var (
	_ core.CommitHook = (*Store)(nil)
	_ CacheReplayer   = (*core.Manager)(nil)
	_ CacheReplayer   = (*core.ShardedManager)(nil)
)
