// Package persist is the durability layer for the LANDLORD cache: an
// append-only, checksummed write-ahead log of cache mutations plus
// periodic checkpoints, so a site daemon comes back from a crash or
// restart with its accumulated cache state instead of re-paying the
// full insert/merge I/O the paper shows dominates cost.
//
// Everything is standard library only. The on-disk pieces:
//
//   - WAL segments (wal-<seq>.log): a stream of length-prefixed,
//     CRC32C-checksummed JSON records, one per core.Mutation
//     (insert/merge/touch/delete/split). Segments rotate at a
//     configurable size; a checkpoint makes older segments garbage.
//   - Checkpoints (checkpoint-<seq>.ckpt): one framed JSON record
//     holding a complete core.ManagerState. The sequence number names
//     the first WAL segment NOT covered by the checkpoint, so recovery
//     is "load newest valid checkpoint, replay segments >= seq".
//
// Recovery is deliberately forgiving: a torn final record (the normal
// crash signature) truncates replay at the last intact record; a
// corrupt checkpoint falls back to the next-older one or to an empty
// cache; corrupt records or segments are skipped with a logged
// warning. The cache is authoritative state about *derived* data —
// images can always be rebuilt from the repository — so recovering
// most of the state cheaply always beats refusing to start.
//
// Durability is governed by an fsync policy: "always" guarantees every
// record is on stable storage before the request that produced it is
// acknowledged (no acknowledged mutation is ever lost), "interval"
// syncs at most every SyncInterval (bounded loss under power failure,
// near-zero cost; a killed process loses nothing because records are
// still written to the kernel per append), and "never" leaves syncing
// to the OS entirely.
//
// Under "always" the sync is a group commit, not one fsync per record:
// Commit appends to the OS in mutation order and returns (it runs with
// the cache's locks held and must not stall concurrent hits behind a
// disk flush), and the server calls WaitDurable after releasing those
// locks, before acknowledging. Concurrent WaitDurable callers elect a
// leader whose single fsync covers every record appended so far, so N
// in-flight requests cost ~2 fsyncs instead of N.
package persist

import (
	"fmt"
	"time"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs at most once per SyncInterval (the default):
	// bounded data loss on power failure, negligible overhead.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every appended record.
	FsyncAlways
	// FsyncNever never calls fsync; the OS writes back on its own
	// schedule.
	FsyncNever
)

// String returns the policy's configuration-file spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses the configuration-file spelling. The empty
// string selects the default (interval).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// Options parameterize a Store. The zero value is usable: 4 MB
// segments, interval fsync every 100ms.
type Options struct {
	// SegmentBytes rotates the WAL to a fresh segment once the current
	// one exceeds this size (default 4 MB).
	SegmentBytes int64
	// SyncPolicy is the WAL fsync policy (default FsyncInterval).
	SyncPolicy FsyncPolicy
	// SyncInterval bounds staleness under FsyncInterval (default 100ms).
	SyncInterval time.Duration
	// FS is the filesystem the store operates on (default OSFS). Tests
	// substitute a fault-injecting implementation (internal/check).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}
