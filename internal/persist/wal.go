package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/core"
)

// Frame format, shared by WAL records and checkpoint files:
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// The CRC covers only the payload; a flipped bit anywhere in the
// frame (including the length, which then frames the wrong bytes)
// fails the check with probability 1-2^-32.

const (
	frameHeaderSize = 8
	// MaxRecordBytes caps a single frame's payload, so a corrupted
	// length field cannot drive a multi-gigabyte allocation. A 16 MB
	// record would hold a ~100k-package image; real records are a few
	// hundred bytes to a few hundred kilobytes.
	MaxRecordBytes = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a frame that is present but fails validation
// (bad length, bad checksum). A torn tail surfaces as
// io.ErrUnexpectedEOF instead.
var ErrCorrupt = errors.New("persist: corrupt record")

// appendFrame appends the framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads and validates one frame. io.EOF means a clean end of
// stream; io.ErrUnexpectedEOF a torn (partially written) frame; and
// ErrCorrupt a frame that fails its length sanity check or checksum.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length == 0 || length > MaxRecordBytes {
		return nil, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// EncodeRecord frames one mutation for appending to a WAL segment.
func EncodeRecord(buf []byte, mut core.Mutation) ([]byte, error) {
	payload, err := json.Marshal(mut)
	if err != nil {
		return buf, err
	}
	return appendFrame(buf, payload), nil
}

// ReadSegment decodes every intact record from r, stopping at the
// first torn or corrupt frame. It returns the decoded mutations and
// the reason decoding stopped early: nil for a clean end,
// io.ErrUnexpectedEOF for a torn tail, an ErrCorrupt-wrapped error for
// a failed checksum or length, or a JSON error for a record that
// frames valid bytes that do not parse.
//
// A prefix property holds by construction: whatever bytes follow a bad
// frame are never interpreted, so the result is always a prefix of the
// records originally appended.
func ReadSegment(r io.Reader) ([]core.Mutation, error) {
	br := bufio.NewReader(r)
	var out []core.Mutation
	for {
		payload, err := readFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		var mut core.Mutation
		if err := json.Unmarshal(payload, &mut); err != nil {
			return out, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		out = append(out, mut)
	}
}
