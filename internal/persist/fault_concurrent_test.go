package persist_test

import (
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/persist"
)

// TestConcurrentLoadSurvivesInjectedFaults extends the single-threaded
// truncation tests to concurrent load: four goroutines drive a
// persistent ConcurrentManager through a filesystem that injects a
// sync failure and a torn write mid-run, then the process "loses
// power" with a torn tail. The WAL must degrade to its sticky error
// without disturbing the serving path, and recovery from the damaged
// directory must yield a consistent prefix of the pre-crash state.
func TestConcurrentLoadSurvivesInjectedFaults(t *testing.T) {
	const (
		seed    = int64(42)
		workers = 4
		each    = 400
	)
	dir := t.TempDir()
	repo := check.SmallRepo(seed)
	mcfg := core.Config{Alpha: 0.6, Capacity: repo.TotalSize() / 3}

	ffs := check.NewFaultFS(check.FaultPlan{FailSyncAt: 300, ShortWriteAt: 500})
	store, err := persist.Open(dir, persist.Options{
		FS:           ffs,
		SyncPolicy:   persist.FsyncAlways,
		SegmentBytes: 32 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, _, err := store.Recover(repo, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cmgr := core.Concurrent(mgr)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := check.NewStream(repo, seed+int64(w))
			for i := 0; i < each; i++ {
				if _, err := cmgr.Request(stream.Next()); err != nil {
					errs[w] = err
					return
				}
				store.WaitDurable() // sticky error expected once the fault fires
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: request failed under injected persist faults: %v", w, err)
		}
	}
	if got := cmgr.Stats().Requests; got != workers*each {
		t.Fatalf("served %d requests, want %d — the cache must keep serving after WAL degradation", got, workers*each)
	}
	if ffs.Injected() == 0 {
		t.Fatal("no fault fired; the plan's op counts no longer match the workload")
	}
	if store.Err() == nil {
		t.Fatal("store has no sticky error despite an injected fault")
	}
	preClock := mgr.Clock()

	if err := ffs.Crash(check.CrashPower, 17); err != nil {
		t.Fatal(err)
	}

	// The next life reads the damaged directory through the real
	// filesystem: injected damage must be indistinguishable from real
	// crash damage.
	store2, err := persist.Open(dir, persist.Options{SyncPolicy: persist.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	mgr2, rec, err := store2.Recover(repo, mcfg)
	if err != nil {
		t.Fatalf("recovery from fault-damaged directory: %v", err)
	}
	if err := mgr2.CheckIntegrity(); err != nil {
		t.Fatalf("recovered state is inconsistent: %v", err)
	}
	if got := mgr2.Clock(); got > preClock {
		t.Fatalf("recovered clock %d exceeds pre-crash clock %d (recovery invented state)", got, preClock)
	}
	t.Logf("recovered clock %d of %d after %d injected fault(s); report: %+v", mgr2.Clock(), preClock, ffs.Injected(), rec)
}
