package persist

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the store needs. Production uses OSFS;
// internal/check substitutes a fault-injecting implementation that
// fails writes, truncates at sync boundaries, and simulates kill-9
// crashes at seeded operation counts — so every durability claim in
// this package is tested against the failures it is supposed to
// survive, not just the happy path.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile mirrors os.OpenFile; the store only uses the flag
	// combinations os.O_CREATE|os.O_WRONLY|os.O_EXCL (new WAL segment)
	// and read-only opens via Open.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Stat(name string) (fs.FileInfo, error)
	// CreateTemp mirrors os.CreateTemp: an exclusive fresh file in dir
	// whose name derives from pattern.
	CreateTemp(dir, pattern string) (File, error)
}

// File is the handle surface the store needs; *os.File satisfies it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Name() string
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

var _ File = (*os.File)(nil)
