package persist

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzWALDecode throws arbitrary bytes at the WAL record decoder. The
// invariants: never panic, never allocate beyond the record cap, and
// whatever decodes must re-encode and decode back to the same records
// (the decoder only ever accepts well-formed prefixes).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: empty, a real single-record stream, a real
	// multi-record stream, a torn tail, a flipped byte, and raw noise.
	f.Add([]byte{})
	single, err := EncodeRecord(nil, core.Mutation{
		Kind: core.MutInsert, ImageID: 1, LastUse: 2, RequestBytes: 30,
		Packages: []string{"a/1/x", "b/2/x"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(single)
	multi := append([]byte(nil), single...)
	for _, mut := range []core.Mutation{
		{Kind: core.MutTouch, ImageID: 1, LastUse: 3, RequestBytes: 10},
		{Kind: core.MutMerge, ImageID: 1, LastUse: 4, Version: 1, Merges: 1, RequestBytes: 20, Packages: []string{"a/1/x", "c/3/x"}},
		{Kind: core.MutSplit, ImageID: 1, Version: 2, Packages: []string{"a/1/x"}},
		{Kind: core.MutDelete, ImageID: 1},
	} {
		multi, err = EncodeRecord(multi, mut)
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(multi)
	f.Add(multi[:len(multi)-3])
	flipped := append([]byte(nil), multi...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("\x01\x00\x00\x00\xff\xff\xff\xffX"))
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		muts, _ := ReadSegment(bytes.NewReader(data))
		// Round-trip: accepted records are canonical.
		var reenc []byte
		for _, mut := range muts {
			var err error
			reenc, err = EncodeRecord(reenc, mut)
			if err != nil {
				t.Fatalf("re-encoding accepted record %+v: %v", mut, err)
			}
		}
		again, err := ReadSegment(bytes.NewReader(reenc))
		if err != nil {
			t.Fatalf("re-decoding re-encoded stream: %v", err)
		}
		if len(again) != len(muts) {
			t.Fatalf("round trip lost records: %d -> %d", len(muts), len(again))
		}
	})
}
