package persist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// testRepo builds n independent packages of size bytes each.
func testRepo(t *testing.T, n int, size int64) *pkggraph.Repo {
	t.Helper()
	pkgs := make([]pkggraph.Package, n)
	for i := range pkgs {
		pkgs[i] = pkggraph.Package{
			ID: pkggraph.PkgID(i), Name: "pkg", Version: fmt.Sprintf("v%d", i), Platform: "p",
			Tier: pkggraph.TierLibrary, Size: size, FileCount: 1,
		}
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("pkggraph.New: %v", err)
	}
	return r
}

func testConfig() core.Config {
	return core.Config{Alpha: 0.5, Capacity: 160}
}

// randSpec draws 1-3 distinct package IDs.
func randSpec(rng *rand.Rand, n int) spec.Spec {
	k := 1 + rng.Intn(3)
	ids := make([]pkggraph.PkgID, 0, k)
	for len(ids) < k {
		ids = append(ids, pkggraph.PkgID(rng.Intn(n)))
	}
	return spec.New(ids) // dedups, so the spec may end up shorter
}

func stateJSON(t *testing.T, st core.ManagerState) string {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	return string(b)
}

// walRun is a recorded workload: the live persisted manager's final
// state, the WAL bytes it produced, and the reference state after each
// record prefix (prefixJSON[r] = state with the first r records applied).
type walRun struct {
	repo       *pkggraph.Repo
	cfg        core.Config
	data       []byte
	muts       []core.Mutation
	bounds     []int // bounds[r] = byte offset after record r; bounds[0] = 0
	prefixJSON []string
	finalJSON  string
}

// buildWALRun drives the same request stream (with periodic prune
// passes) through a persisted manager and a plain in-memory reference,
// checks they agree, and precomputes the reference state at every
// record prefix of the WAL.
func buildWALRun(t *testing.T, requests, pruneEvery int) *walRun {
	t.Helper()
	repo := testRepo(t, 24, 10)
	cfg := testConfig()

	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	live, rep, err := st.Recover(repo, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rep.RecordsReplayed != 0 || rep.CheckpointSeq != 0 {
		t.Fatalf("fresh dir recovered state: %+v", rep)
	}
	ref, err := core.NewManager(repo, cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < requests; i++ {
		s := randSpec(rng, repo.Len())
		if _, err := live.Request(s); err != nil {
			t.Fatalf("live request %d: %v", i, err)
		}
		if _, err := ref.Request(s); err != nil {
			t.Fatalf("ref request %d: %v", i, err)
		}
		if pruneEvery > 0 && (i+1)%pruneEvery == 0 {
			if _, err := live.Prune(0.5, 1); err != nil {
				t.Fatalf("live prune: %v", err)
			}
			if _, err := ref.Prune(0.5, 1); err != nil {
				t.Fatalf("ref prune: %v", err)
			}
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("store error after stream: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(st.segPath(1))
	if err != nil {
		t.Fatalf("reading WAL: %v", err)
	}
	muts, err := ReadSegment(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decoding full WAL: %v", err)
	}
	if len(muts) == 0 {
		t.Fatal("empty WAL")
	}

	// Re-encode to learn record boundaries, and verify the encoding is
	// byte-identical to what the store wrote.
	run := &walRun{repo: repo, cfg: cfg, data: data, muts: muts, bounds: []int{0}}
	var reenc []byte
	for _, mut := range muts {
		reenc, err = EncodeRecord(reenc, mut)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		run.bounds = append(run.bounds, len(reenc))
	}
	if !bytes.Equal(reenc, data) {
		t.Fatal("re-encoded WAL differs from on-disk bytes")
	}

	// Reference state after each record prefix.
	replay, err := core.NewManager(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run.prefixJSON = []string{stateJSON(t, replay.ExportState())}
	for i, mut := range muts {
		if err := replay.ApplyMutation(mut); err != nil {
			t.Fatalf("replaying record %d (%+v): %v", i, mut, err)
		}
		run.prefixJSON = append(run.prefixJSON, stateJSON(t, replay.ExportState()))
	}

	// The full replay, the live persisted manager, and the untouched
	// reference manager must all agree exactly.
	run.finalJSON = run.prefixJSON[len(muts)]
	if got := stateJSON(t, live.ExportState()); got != run.finalJSON {
		t.Fatalf("live state != full replay:\nlive   %s\nreplay %s", got, run.finalJSON)
	}
	if got := stateJSON(t, ref.ExportState()); got != run.finalJSON {
		t.Fatalf("reference state != full replay:\nref    %s\nreplay %s", got, run.finalJSON)
	}
	return run
}

// TestCrashRecoveryEveryTruncation is the core durability property:
// for EVERY byte offset t, recovering from the first t bytes of the
// WAL yields exactly the reference state at the last record boundary
// <= t. Simulates kill -9 at every possible moment.
func TestCrashRecoveryEveryTruncation(t *testing.T) {
	run := buildWALRun(t, 18, 6)

	// recordsAt[t] = records fully contained in the first t bytes.
	recordsAt := make([]int, len(run.data)+1)
	r := 0
	for cut := 0; cut <= len(run.data); cut++ {
		if r+1 < len(run.bounds) && run.bounds[r+1] <= cut {
			r++
		}
		recordsAt[cut] = r
	}

	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal-0000000000000001.log")
	for cut := 0; cut <= len(run.data); cut++ {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, run.data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mgr, rep, err := st.Recover(run.repo, run.cfg)
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		want := run.prefixJSON[recordsAt[cut]]
		if got := stateJSON(t, mgr.ExportState()); got != want {
			t.Fatalf("cut %d (%d records): recovered state mismatch:\n got %s\nwant %s",
				cut, recordsAt[cut], got, want)
		}
		torn := cut != run.bounds[recordsAt[cut]]
		if torn != rep.TornTail {
			t.Fatalf("cut %d: TornTail = %v, want %v", cut, rep.TornTail, torn)
		}
		st.Close()
	}
}

// TestCrashRecoveryEveryBitFlip flips every byte of the WAL in turn;
// recovery must never fail and must always land on some record-prefix
// state (the flipped record and everything after it are discarded).
func TestCrashRecoveryEveryBitFlip(t *testing.T) {
	run := buildWALRun(t, 10, 5)
	prefixes := make(map[string]bool, len(run.prefixJSON))
	for _, s := range run.prefixJSON {
		prefixes[s] = true
	}

	dir := t.TempDir()
	walPath := filepath.Join(dir, "wal-0000000000000001.log")
	for off := range run.data {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		mutated := append([]byte(nil), run.data...)
		mutated[off] ^= 0xFF
		if err := os.WriteFile(walPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mgr, rep, err := st.Recover(run.repo, run.cfg)
		if err != nil {
			t.Fatalf("flip at %d: Recover: %v", off, err)
		}
		if got := stateJSON(t, mgr.ExportState()); !prefixes[got] {
			t.Fatalf("flip at %d: recovered state is not a record prefix: %s", off, got)
		}
		if len(rep.Warnings) == 0 {
			t.Fatalf("flip at %d: no warning reported", off)
		}
		st.Close()
	}
}

// TestTornTailAppend simulates a crash mid-append: valid WAL plus the
// first half of one more frame. Recovery keeps every whole record.
func TestTornTailAppend(t *testing.T) {
	run := buildWALRun(t, 8, 0)
	extra, err := EncodeRecord(nil, core.Mutation{Kind: core.MutDelete, ImageID: 0})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), run.data...), extra[:len(extra)/2]...)

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mgr, rep, err := st.Recover(run.repo, run.cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if !rep.TornTail {
		t.Errorf("TornTail not reported: %+v", rep)
	}
	if rep.RecordsReplayed != len(run.muts) {
		t.Errorf("replayed %d records, want %d", rep.RecordsReplayed, len(run.muts))
	}
	if got := stateJSON(t, mgr.ExportState()); got != run.finalJSON {
		t.Errorf("state mismatch after torn tail:\n got %s\nwant %s", got, run.finalJSON)
	}
}

// TestCheckpointCompaction checkpoints mid-stream with tiny segments,
// then verifies rotation happened, covered files were deleted, and a
// restart recovers the exact reference state from checkpoint + tail.
func TestCheckpointCompaction(t *testing.T) {
	repo := testRepo(t, 24, 10)
	cfg := testConfig()
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 512, SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := st.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewManager(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	var lastCkpt CheckpointInfo
	for i := 0; i < 70; i++ {
		s := randSpec(rng, repo.Len())
		if _, err := live.Request(s); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Request(s); err != nil {
			t.Fatal(err)
		}
		if (i+1)%20 == 0 {
			info, err := st.Checkpoint(live.ExportState())
			if err != nil {
				t.Fatalf("Checkpoint after %d requests: %v", i+1, err)
			}
			if info.Seq <= lastCkpt.Seq {
				t.Fatalf("checkpoint seq did not advance: %+v then %+v", lastCkpt, info)
			}
			lastCkpt = info
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Covered files must be gone: no segment or checkpoint older than
	// the last checkpoint's sequence.
	segs, ckpts, err := st.scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 || ckpts[0] != lastCkpt.Seq {
		t.Fatalf("checkpoints on disk = %v, want exactly [%d]", ckpts, lastCkpt.Seq)
	}
	for _, seq := range segs {
		if seq < lastCkpt.Seq {
			t.Fatalf("segment %d predates checkpoint %d but was not collected", seq, lastCkpt.Seq)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple live segments from 512-byte rotation, got %v", segs)
	}

	// Restart.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr, rep, err := st2.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq != lastCkpt.Seq {
		t.Errorf("recovered from checkpoint %d, want %d", rep.CheckpointSeq, lastCkpt.Seq)
	}
	if rep.RecordsReplayed == 0 {
		t.Error("no WAL tail replayed; the 10 post-checkpoint requests are lost")
	}
	if got, want := stateJSON(t, mgr.ExportState()), stateJSON(t, ref.ExportState()); got != want {
		t.Errorf("recovered state mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestRecoverFallsBackPastBadCheckpoints plants two newer, bad
// checkpoints (one unreadable, one referencing unknown packages) above
// a good one; recovery must skip both with warnings and land on the
// good checkpoint's exact state.
func TestRecoverFallsBackPastBadCheckpoints(t *testing.T) {
	repo := testRepo(t, 24, 10)
	cfg := testConfig()
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := st.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		if _, err := live.Request(randSpec(rng, repo.Len())); err != nil {
			t.Fatal(err)
		}
	}
	want := stateJSON(t, live.ExportState())
	if _, err := st.Checkpoint(live.ExportState()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Newer checkpoint with garbage bytes.
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-0000000000000090.ckpt"),
		[]byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Newer checkpoint that frames valid JSON but cannot be imported.
	if err := WriteCheckpointFile(filepath.Join(dir, "checkpoint-0000000000000091.ckpt"), Checkpoint{
		SavedUnixNano: 1,
		State: core.ManagerState{Images: []core.ImageSnapshot{
			{ID: 1, Packages: []string{"no/such/package"}, LastUse: 1},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr, rep, err := st2.Recover(repo, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if len(rep.Warnings) < 2 {
		t.Errorf("expected warnings for both bad checkpoints, got %q", rep.Warnings)
	}
	if got := stateJSON(t, mgr.ExportState()); got != want {
		t.Errorf("state mismatch after checkpoint fallback:\n got %s\nwant %s", got, want)
	}
	for _, w := range rep.Warnings {
		if strings.Contains(w, "91 rejected") {
			return
		}
	}
	t.Errorf("no 'rejected' warning for unimportable checkpoint 91: %q", rep.Warnings)
}

// TestFsyncPolicies runs the same workload under each policy and
// verifies recovery is exact in all of them (in-process, the page
// cache makes all three equivalent; this exercises the sync paths).
func TestFsyncPolicies(t *testing.T) {
	for _, opts := range []Options{
		{SyncPolicy: FsyncAlways},
		{SyncPolicy: FsyncInterval, SyncInterval: time.Nanosecond},
		{SyncPolicy: FsyncNever},
	} {
		t.Run(opts.SyncPolicy.String(), func(t *testing.T) {
			repo := testRepo(t, 24, 10)
			cfg := testConfig()
			dir := t.TempDir()
			st, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			live, _, err := st.Recover(repo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 12; i++ {
				if _, err := live.Request(randSpec(rng, repo.Len())); err != nil {
					t.Fatal(err)
				}
			}
			want := stateJSON(t, live.ExportState())
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			mgr, _, err := st2.Recover(repo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := stateJSON(t, mgr.ExportState()); got != want {
				t.Errorf("recovered state mismatch:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestStoreLifecycleErrors covers the guard rails: Commit before
// Recover, Recover twice, Checkpoint on a closed store.
func TestStoreLifecycleErrors(t *testing.T) {
	repo := testRepo(t, 4, 10)
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Commit(core.Mutation{Kind: core.MutDelete, ImageID: 0})
	if st.Err() == nil {
		t.Error("Commit before Recover did not set the sticky error")
	}

	st2, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Recover(repo, testConfig()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Recover(repo, testConfig()); err == nil {
		t.Error("second Recover succeeded")
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Checkpoint(core.ManagerState{}); err == nil {
		t.Error("Checkpoint after Close succeeded")
	}
	st2.Commit(core.Mutation{Kind: core.MutDelete, ImageID: 0}) // must not panic
}

// TestRegisterMetrics smoke-tests the metric series end to end.
func TestRegisterMetrics(t *testing.T) {
	repo := testRepo(t, 8, 10)
	st, err := Open(t.TempDir(), Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	live, rep, err := st.Recover(repo, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	st.RegisterMetrics(reg, rep)
	if _, err := live.Request(spec.New([]pkggraph.PkgID{0, 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(live.ExportState()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{
		"landlord_persist_recovery_seconds",
		"landlord_persist_wal_records_total 1",
		"landlord_persist_checkpoints_total 1",
		"landlord_persist_checkpoint_age_seconds",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("metrics output missing %q:\n%s", series, out)
		}
	}
}

// TestRecoveryOf10kImages is the scale gate from the issue: a
// checkpoint holding 10,000 images plus a 1,000-record WAL tail must
// recover in under 5 seconds.
func TestRecoveryOf10kImages(t *testing.T) {
	const nPkgs, nImages, nTail = 5000, 10000, 1000
	repo := testRepo(t, nPkgs, 10)
	cfg := core.Config{Alpha: 0.5} // unlimited capacity

	imgs := make([]core.ImageSnapshot, nImages)
	for i := range imgs {
		a := i % nPkgs
		b := (a + 1 + i/nPkgs) % nPkgs
		imgs[i] = core.ImageSnapshot{
			ID:       uint64(i),
			Packages: []string{repo.Package(pkggraph.PkgID(a)).Key(), repo.Package(pkggraph.PkgID(b)).Key()},
			LastUse:  uint64(i + 1),
		}
	}
	state := core.ManagerState{
		Images: imgs,
		NextID: nImages,
		Clock:  nImages,
		Stats:  core.Stats{Requests: nImages, Inserts: nImages},
	}

	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Recover(repo, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Checkpoint(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nTail; i++ {
		st.Commit(core.Mutation{
			Kind: core.MutTouch, ImageID: uint64(i * 7 % nImages),
			LastUse: uint64(nImages + i + 1), RequestBytes: 20,
		})
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr, rep, err := st2.Recover(repo, cfg)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if mgr.Len() != nImages {
		t.Fatalf("recovered %d images, want %d", mgr.Len(), nImages)
	}
	if rep.RecordsReplayed != nTail {
		t.Fatalf("replayed %d records, want %d", rep.RecordsReplayed, nTail)
	}
	if rep.Duration > 5*time.Second {
		t.Fatalf("recovery of %d images took %v, budget 5s", nImages, rep.Duration)
	}
	t.Logf("recovered %d images + %d WAL records in %v", nImages, nTail, rep.Duration)
}

// TestGroupCommitConcurrent drives a ConcurrentManager backed by an
// FsyncAlways store from many goroutines, each acknowledging its
// requests only after WaitDurable — the server's request pipeline in
// miniature. It pins the two properties group commit must preserve:
//
//   - Ordering: the WAL on disk, read back after the run, replays to a
//     state byte-identical to the live manager's, proving concurrent
//     commits landed in linearization order.
//   - Amortization: every record became durable through a leader's
//     batched fsync (the batch-size histogram's observations sum to
//     the record count), and nothing was lost before Close.
func TestGroupCommitConcurrent(t *testing.T) {
	repo := testRepo(t, 24, 10)
	cfg := core.Config{Alpha: 0.5, Capacity: 160}
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	m, rep, err := st.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	st.RegisterMetrics(reg, rep)
	cm := core.Concurrent(m)

	const workers = 8
	const perWorker = 150
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 40))
			for i := 0; i < perWorker; i++ {
				if _, err := cm.Request(randSpec(rng, repo.Len())); err != nil {
					t.Errorf("worker %d request %d: %v", g, i, err)
					return
				}
				// Ack barrier: the request's mutations must be on stable
				// storage before this iteration completes.
				if err := st.WaitDurable(); err != nil {
					t.Errorf("worker %d WaitDurable: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := st.Err(); err != nil {
		t.Fatalf("store degraded: %v", err)
	}
	live := stateJSON(t, cm.ExportState())

	// Read the WAL back while the store is still open: WaitDurable
	// returned for every request, so every record is already in the
	// file (and fsynced) without any help from Close.
	data, err := os.ReadFile(st.segPath(1))
	if err != nil {
		t.Fatal(err)
	}
	muts, err := ReadSegment(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("WAL corrupt after concurrent commits: %v", err)
	}
	replay, err := core.NewManager(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, mut := range muts {
		if err := replay.ApplyMutation(mut); err != nil {
			t.Fatalf("replaying record %d (%+v): %v", i, mut, err)
		}
	}
	if got := stateJSON(t, replay.ExportState()); got != live {
		t.Fatalf("WAL replay != live state:\nreplay %s\n  live %s", got, live)
	}

	// Every record's durability was paid by a group-commit leader, and
	// the batch sizes account for exactly the records written.
	hist := reg.Histogram("landlord_persist_group_commit_records",
		"Records made durable per group-commit fsync",
		telemetry.ExponentialBuckets(1, 2, 10))
	if hist.Count() == 0 {
		t.Fatal("no group-commit fsyncs recorded")
	}
	if got, want := int64(hist.Sum()), int64(len(muts)); got != want {
		t.Errorf("batched records sum to %d, want %d (one per WAL record)", got, want)
	}
	t.Logf("%d records over %d fsyncs (mean batch %.1f)",
		len(muts), hist.Count(), hist.Sum()/float64(hist.Count()))

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// And the canonical end-to-end check: recovery sees the same state.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2, _, err := st2.Recover(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateJSON(t, m2.ExportState()); got != live {
		t.Errorf("recovered state != live state:\n got %s\nlive %s", got, live)
	}
}
