package persist

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Sharded crash recovery.
//
// The sharded cache shares one Store: every shard's commit hook
// appends to the same WAL, so the log is a merge of per-shard
// subsequences each strictly monotone in Seq, with arbitrary
// cross-shard interleaving. These tests pin that RecoverSharded
// rebuilds the exact sharded state from that merged log: strided IDs
// route every record and checkpoint image back to its owning shard
// (ImageID mod shards) with no format change.

func shardedConfig(shards int) core.Config {
	cfg := testConfig()
	cfg.Shards = shards
	return cfg
}

// TestRecoverShardedWALOnly replays a pure WAL (no checkpoint) into a
// fresh sharded cache and requires the merged export byte-identical to
// the live cache that wrote it: per-shard insert replay re-derives the
// same strided NextID values, so even the ID allocator state survives
// exactly.
func TestRecoverShardedWALOnly(t *testing.T) {
	repo := testRepo(t, 24, 10)
	cfg := shardedConfig(4)
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live, rep, err := st.RecoverSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq != 0 || rep.RecordsReplayed != 0 {
		t.Fatalf("empty dir recovery not empty: %+v", rep)
	}

	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 120; i++ {
		if _, err := live.Request(randSpec(rng, repo.Len())); err != nil {
			t.Fatal(err)
		}
	}
	want := stateJSON(t, live.ExportState())
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr, rep2, err := st2.RecoverSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.RecordsReplayed == 0 {
		t.Fatal("no WAL records replayed")
	}
	if got := stateJSON(t, mgr.ExportState()); got != want {
		t.Errorf("recovered sharded state != live state:\n got %s\nwant %s", got, want)
	}
	if err := mgr.CheckIntegrity(); err != nil {
		t.Errorf("recovered integrity: %v", err)
	}
}

// TestRecoverShardedCheckpointed restarts from a mid-stream merged
// checkpoint plus the WAL tail. Importing a merged checkpoint aligns
// each shard's NextID up into its residue class, so the allocator
// watermark may legitimately exceed the live cache's (never shrink —
// IDs must not be reused); everything else — images, stamps, clock,
// stats — must match exactly.
func TestRecoverShardedCheckpointed(t *testing.T) {
	repo := testRepo(t, 24, 10)
	cfg := shardedConfig(4)
	dir := t.TempDir()
	st, err := Open(dir, Options{SegmentBytes: 512, SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := st.RecoverSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 90; i++ {
		if _, err := live.Request(randSpec(rng, repo.Len())); err != nil {
			t.Fatal(err)
		}
		if (i+1)%30 == 0 {
			if _, err := st.Checkpoint(live.ExportState()); err != nil {
				t.Fatalf("Checkpoint after %d requests: %v", i+1, err)
			}
		}
	}
	liveState := live.ExportState()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	mgr, rep, err := st2.RecoverSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CheckpointSeq == 0 {
		t.Fatal("recovery did not load a checkpoint")
	}
	gotState := mgr.ExportState()
	if gotState.NextID < liveState.NextID {
		t.Errorf("recovered NextID %d < live %d: IDs could be reused", gotState.NextID, liveState.NextID)
	}
	gotState.NextID, liveState.NextID = 0, 0
	if got, want := stateJSON(t, gotState), stateJSON(t, liveState); got != want {
		t.Errorf("recovered sharded state != live state (NextID normalized):\n got %s\nwant %s", got, want)
	}
	if err := mgr.CheckIntegrity(); err != nil {
		t.Errorf("recovered integrity: %v", err)
	}
}

// TestRecoverShardedCrossCount reloads a directory written by a
// shards=1 daemon into a shards=4 cache (and back): strided routing by
// ImageID mod shards accepts any historical allocation pattern, so
// every image survives the reload — only future hit locality changes
// when the count changes.
func TestRecoverShardedCrossCount(t *testing.T) {
	repo := testRepo(t, 24, 10)
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncPolicy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	live, _, err := st.RecoverSharded(repo, shardedConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 80; i++ {
		if _, err := live.Request(randSpec(rng, repo.Len())); err != nil {
			t.Fatal(err)
		}
	}
	images, bytes := live.Len(), live.TotalData()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	wide, _, err := st2.RecoverSharded(repo, shardedConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Len() != images || wide.TotalData() != bytes {
		t.Errorf("cross-count reload lost state: %d images/%d bytes, want %d/%d",
			wide.Len(), wide.TotalData(), images, bytes)
	}
	if err := wide.CheckIntegrity(); err != nil {
		t.Errorf("cross-count integrity: %v", err)
	}
	// The reloaded cache must keep serving.
	for i := 0; i < 40; i++ {
		if _, err := wide.Request(randSpec(rng, repo.Len())); err != nil {
			t.Fatal(err)
		}
	}
	if err := wide.CheckIntegrity(); err != nil {
		t.Errorf("post-reload integrity: %v", err)
	}
}
