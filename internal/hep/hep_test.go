package hep

import (
	"testing"
	"time"

	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/similarity"
	"repro/internal/stats"
)

func testRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 4
	cfg.FrameworkFamilies = 12
	cfg.LibraryFamilies = 60
	cfg.ApplicationFamilies = 120
	return pkggraph.MustGenerate(cfg, 42)
}

func TestBenchmarksTableMatchesPaper(t *testing.T) {
	if len(Benchmarks) != 7 {
		t.Fatalf("Benchmarks has %d rows, want 7", len(Benchmarks))
	}
	a, ok := ByName("atlas-sim")
	if !ok {
		t.Fatal("atlas-sim missing")
	}
	if a.PaperRunTime != 5340*time.Second || a.PaperPrepTime != 115*time.Second {
		t.Fatalf("atlas-sim times wrong: %+v", a)
	}
	if a.PaperMinimalImage != 7600*stats.MB || a.PaperFullRepo != 4800*stats.GB {
		t.Fatalf("atlas-sim sizes wrong: %+v", a)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a nonexistent app")
	}
}

func TestSpecDeterministicAndSized(t *testing.T) {
	repo := testRepo(t)
	for _, a := range Benchmarks {
		s1 := a.Spec(repo)
		s2 := a.Spec(repo)
		if !s1.Equal(s2) {
			t.Fatalf("%s spec not deterministic", a.Name)
		}
		if s1.Empty() {
			t.Fatalf("%s spec empty", a.Name)
		}
		size := s1.Size(repo)
		if size < a.PaperMinimalImage {
			t.Errorf("%s spec size %s below target %s", a.Name,
				stats.FormatBytes(size), stats.FormatBytes(a.PaperMinimalImage))
		}
		// The greedy growth overshoots by at most one closure step; a
		// spec several times the target would distort the table.
		if size > a.PaperMinimalImage*4 {
			t.Errorf("%s spec size %s far above target %s", a.Name,
				stats.FormatBytes(size), stats.FormatBytes(a.PaperMinimalImage))
		}
	}
}

func TestSpecsShareExperimentCore(t *testing.T) {
	repo := testRepo(t)
	atlasGen, _ := ByName("atlas-gen")
	atlasSim, _ := ByName("atlas-sim")
	d := similarity.JaccardDistance(atlasGen.Spec(repo), atlasSim.Spec(repo))
	if d >= 1 {
		t.Fatalf("same-experiment apps share nothing (d=%v)", d)
	}
}

func TestMeasure(t *testing.T) {
	repo := testRepo(t)
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
	a, _ := ByName("lhcb-gen-sim")
	row, err := Measure(a, builder, repo)
	if err != nil {
		t.Fatal(err)
	}
	if row.MeasuredImage < a.PaperMinimalImage {
		t.Errorf("measured image %s below target", stats.FormatBytes(row.MeasuredImage))
	}
	if row.MeasuredPrep <= 0 {
		t.Error("no prep time measured")
	}
	if row.MeasuredWarmPrep >= row.MeasuredPrep {
		t.Errorf("warm build (%v) not faster than cold (%v)", row.MeasuredWarmPrep, row.MeasuredPrep)
	}
	if row.MeasuredPackages < 1 || row.RepoSize != repo.TotalSize() {
		t.Errorf("bad row: %+v", row)
	}
}

func TestMeasureAll(t *testing.T) {
	repo := testRepo(t)
	builder := shrinkwrap.NewBuilder(cvmfs.NewStore(repo), shrinkwrap.DefaultCostModel())
	rows, err := MeasureAll(builder, repo)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Benchmarks) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Prep times should land in the tens-of-seconds range the paper
	// reports (37-115s), given the calibrated cost model.
	for _, r := range rows {
		if r.MeasuredPrep < 5*time.Second || r.MeasuredPrep > 20*time.Minute {
			t.Errorf("%s prep time %v implausible", r.App.Name, r.MeasuredPrep)
		}
	}
}
