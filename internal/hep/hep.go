// Package hep models the seven LHC benchmark applications of the
// paper's Figure 2 (alice-gen-sim through lhcb-gen-sim) over the
// synthetic repository, and measures the Shrinkwrap analogues of the
// table's columns: preparation time and minimal image size.
//
// The paper's published numbers are kept as reference constants; the
// harness reports them side by side with measured values from this
// reproduction, which is what EXPERIMENTS.md records. Running times are
// properties of the physics payloads themselves (event generation,
// detector simulation, ...), not of the container machinery, so they
// are carried through as reference values only.
package hep

import (
	"fmt"
	"time"

	"repro/internal/pkggraph"
	"repro/internal/shrinkwrap"
	"repro/internal/spec"
	"repro/internal/stats"
)

// App is one benchmark application with the paper's published
// measurements.
type App struct {
	Name       string
	Experiment string
	// Phase is the pipeline stage: gen, sim, digi or reco.
	Phase string
	// PaperRunTime is Figure 2's "Running Time".
	PaperRunTime time.Duration
	// PaperPrepTime is Figure 2's "Prep. Time".
	PaperPrepTime time.Duration
	// PaperMinimalImage is Figure 2's "Minimal Image" size in bytes.
	PaperMinimalImage int64
	// PaperFullRepo is Figure 2's "Full Repo" size in bytes.
	PaperFullRepo int64
}

// Benchmarks lists Figure 2 verbatim.
var Benchmarks = []App{
	{"alice-gen-sim", "alice", "gen-sim", 131 * time.Second, 59 * time.Second, 6_000 * stats.MB, 450 * stats.GB},
	{"atlas-gen", "atlas", "gen", 600 * time.Second, 37 * time.Second, 2_700 * stats.MB, 4_800 * stats.GB},
	{"atlas-sim", "atlas", "sim", 5340 * time.Second, 115 * time.Second, 7_600 * stats.MB, 4_800 * stats.GB},
	{"cms-digi", "cms", "digi", 629 * time.Second, 62 * time.Second, 8_400 * stats.MB, 8_800 * stats.GB},
	{"cms-gen-sim", "cms", "gen-sim", 2360 * time.Second, 71 * time.Second, 6_100 * stats.MB, 8_800 * stats.GB},
	{"cms-reco", "cms", "reco", 961 * time.Second, 78 * time.Second, 7_300 * stats.MB, 8_800 * stats.GB},
	{"lhcb-gen-sim", "lhcb", "gen-sim", 1010 * time.Second, 67 * time.Second, 3_700 * stats.MB, 1_000 * stats.GB},
}

// ByName returns the benchmark with the given name.
func ByName(name string) (App, bool) {
	for _, a := range Benchmarks {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// hashString is FNV-1a, used to derive a stable per-app seed.
func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Spec derives the application's container specification over repo: a
// deterministic selection of packages (seeded by the app name) whose
// dependency closure approximates the app's minimal image size. Each
// growth step evaluates a batch of candidate packages and takes the
// one that lands the closure closest to the target, so the measured
// image tracks the paper's column instead of overshooting by whole
// closures. Apps from the same experiment still share the repository's
// core through their closures.
func (a App) Spec(repo *pkggraph.Repo) spec.Spec {
	target := a.PaperMinimalImage
	x := hashString(a.Name)
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	const batch = 48
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	var picks []pkggraph.PkgID
	s := spec.Spec{}
	size := int64(0)
	for iter := 0; iter < 64 && size < target; iter++ {
		var bestID pkggraph.PkgID
		var bestSpec spec.Spec
		var bestSize int64
		found := false
		for c := 0; c < batch; c++ {
			id := pkggraph.PkgID(next() % uint64(repo.Len()))
			cand := spec.WithClosure(repo, append(picks[:len(picks):len(picks)], id))
			candSize := cand.Size(repo)
			if candSize <= size {
				continue // no progress: already contained
			}
			if !found || abs(candSize-target) < abs(bestSize-target) {
				bestID, bestSpec, bestSize, found = id, cand, candSize, true
			}
		}
		if !found {
			break
		}
		picks = append(picks, bestID)
		s, size = bestSpec, bestSize
	}
	return s
}

// Row is one line of the reproduced Figure 2 table: paper reference
// values next to measured ones.
type Row struct {
	App App
	// MeasuredPrep is the simulated cold-cache Shrinkwrap build time.
	MeasuredPrep time.Duration
	// MeasuredWarmPrep is the build time with the head-node object
	// cache already populated by the cold build.
	MeasuredWarmPrep time.Duration
	// MeasuredImage is the built image's logical size.
	MeasuredImage int64
	// MeasuredPackages is the number of packages in the spec.
	MeasuredPackages int
	// RepoSize is the synthetic repository's total size (the "Full
	// Repo" analogue; one shared repo stands in for the per-experiment
	// CVMFS repositories).
	RepoSize int64
}

// Measure builds the app's image against store with a cold local cache
// and then again warm, returning the comparison row.
func Measure(a App, builder *shrinkwrap.Builder, repo *pkggraph.Repo) (Row, error) {
	s := a.Spec(repo)
	if s.Empty() {
		return Row{}, fmt.Errorf("hep: %s produced an empty spec", a.Name)
	}
	builder.DropCache()
	cold, err := builder.Build(s)
	if err != nil {
		return Row{}, fmt.Errorf("hep: building %s: %w", a.Name, err)
	}
	warm, err := builder.Build(s)
	if err != nil {
		return Row{}, fmt.Errorf("hep: rebuilding %s: %w", a.Name, err)
	}
	return Row{
		App:              a,
		MeasuredPrep:     cold.PrepTime,
		MeasuredWarmPrep: warm.PrepTime,
		MeasuredImage:    cold.Image.Bytes,
		MeasuredPackages: s.Len(),
		RepoSize:         repo.TotalSize(),
	}, nil
}

// MeasureAll measures every benchmark application.
func MeasureAll(builder *shrinkwrap.Builder, repo *pkggraph.Repo) ([]Row, error) {
	rows := make([]Row, 0, len(Benchmarks))
	for _, a := range Benchmarks {
		row, err := Measure(a, builder, repo)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
