package report

import (
	"bytes"
	"encoding/csv"
	"os"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func samplePoints() []sim.SweepPoint {
	return []sim.SweepPoint{
		{Alpha: 0.4, Hits: 52, Inserts: 2448, Deletes: 2436, Merges: 0,
			UniqueGB: 112, TotalGB: 614, ActualWriteGB: 117900, RequestedWriteGB: 120200,
			CacheEfficiency: 0.181, ContainerEfficiency: 0.999},
		{Alpha: 0.95, Hits: 425, Inserts: 70, Deletes: 65, Merges: 2005,
			UniqueGB: 267, TotalGB: 576, ActualWriteGB: 227700, RequestedWriteGB: 120200,
			CacheEfficiency: 0.467, ContainerEfficiency: 0.458},
	}
}

func TestWriteSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(records) != 3 {
		t.Fatalf("records = %d, want header + 2", len(records))
	}
	if records[0][0] != "alpha" || records[1][0] != "0.4" {
		t.Fatalf("unexpected cells: %v / %v", records[0], records[1])
	}
	if len(records[1]) != len(records[0]) {
		t.Fatal("ragged CSV")
	}
}

func TestWriteSweepDat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSweepDat(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# alpha") {
		t.Fatalf("missing gnuplot header: %q", lines[0])
	}
	if fields := strings.Fields(lines[1]); len(fields) != 11 {
		t.Fatalf("data line has %d fields, want 11", len(fields))
	}
}

func TestWriteTimelineCSV(t *testing.T) {
	points := []sim.TimelinePoint{
		{Request: 50, Hits: 4, Inserts: 10, Deletes: 3, Merges: 36,
			CachedBytes: 551 * stats.GB, BytesWritten: 3 * stats.TB},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(records) != 2 {
		t.Fatalf("bad CSV: %v %v", records, err)
	}
	if records[1][0] != "50" || records[1][5] != "551" {
		t.Fatalf("row: %v", records[1])
	}
}

func TestWriteFig3CSV(t *testing.T) {
	points := []sim.Fig3Point{{SpecSize: 100, SpecOnlyGB: 4, ImagePackages: 505, ImageGB: 65.6}}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "505") {
		t.Fatalf("missing data: %s", buf.String())
	}
}

func TestWriteBaselinesCSV(t *testing.T) {
	results := []sim.BaselineResult{
		{Name: "landlord(α=0.75)", Requests: 2500, Images: 8,
			StoredBytes: 608 * stats.GB, UniqueBytes: 177 * stats.GB,
			BytesWritten: 146 * stats.TB, TransferredBytes: 146 * stats.TB, Hits: 177},
	}
	var buf bytes.Buffer
	if err := WriteBaselinesCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil || len(records) != 2 {
		t.Fatalf("bad CSV: %v %v", records, err)
	}
	if records[1][0] != "landlord(α=0.75)" {
		t.Fatalf("row: %v", records[1])
	}
}

func TestToFile(t *testing.T) {
	path := t.TempDir() + "/sweep.csv"
	if err := ToFile(path, samplePoints(), WriteSweepCSV); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "alpha") {
		t.Fatal("file missing header")
	}
	if err := ToFile("/nonexistent-dir/x.csv", samplePoints(), WriteSweepCSV); err == nil {
		t.Fatal("bad path accepted")
	}
}

func readFile(path string) (string, error) {
	var buf bytes.Buffer
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := buf.ReadFrom(f); err != nil {
		return "", err
	}
	return buf.String(), nil
}
