// Package report renders simulation results as CSV and as
// whitespace-separated .dat series (the gnuplot form the paper's
// figures are drawn from), so every landlord-sim experiment can be
// re-plotted exactly like the original evaluation.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/sim"
	"repro/internal/stats"
)

// writeRecords writes rows through encoding/csv with a header.
func writeRecords(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
func i(v int64) string   { return strconv.FormatInt(v, 10) }

// WriteSweepCSV emits an α sweep (Figures 4, 6, 7, 8) as CSV: one row
// per α with every collected metric.
func WriteSweepCSV(w io.Writer, points []sim.SweepPoint) error {
	header := []string{
		"alpha", "hits", "inserts", "deletes", "merges",
		"unique_gb", "total_gb", "actual_write_gb", "requested_write_gb",
		"cache_efficiency", "container_efficiency", "write_amplification",
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			f(p.Alpha), f(p.Hits), f(p.Inserts), f(p.Deletes), f(p.Merges),
			f(p.UniqueGB), f(p.TotalGB), f(p.ActualWriteGB), f(p.RequestedWriteGB),
			f(p.CacheEfficiency), f(p.ContainerEfficiency), f(p.WriteAmplification()),
		})
	}
	return writeRecords(w, header, rows)
}

// WriteSweepDat emits the sweep as a gnuplot-style .dat block: a
// commented header line followed by whitespace-separated columns.
func WriteSweepDat(w io.Writer, points []sim.SweepPoint) error {
	if _, err := fmt.Fprintln(w, "# alpha hits inserts deletes merges unique_gb total_gb actual_write_gb requested_write_gb cache_eff container_eff"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%.2f %.0f %.0f %.0f %.0f %.3f %.3f %.3f %.3f %.4f %.4f\n",
			p.Alpha, p.Hits, p.Inserts, p.Deletes, p.Merges,
			p.UniqueGB, p.TotalGB, p.ActualWriteGB, p.RequestedWriteGB,
			p.CacheEfficiency, p.ContainerEfficiency); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineCSV emits a single-run timeline (Figure 5) as CSV.
func WriteTimelineCSV(w io.Writer, points []sim.TimelinePoint) error {
	header := []string{"request", "hits", "inserts", "deletes", "merges", "cached_gb", "written_gb"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.Request), i(p.Hits), i(p.Inserts), i(p.Deletes), i(p.Merges),
			f(stats.BytesToGB(p.CachedBytes)), f(stats.BytesToGB(p.BytesWritten)),
		})
	}
	return writeRecords(w, header, rows)
}

// WriteFig3CSV emits the closure curve (Figure 3) as CSV.
func WriteFig3CSV(w io.Writer, points []sim.Fig3Point) error {
	header := []string{"spec_size", "spec_only_gb", "image_packages", "image_gb"}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			strconv.Itoa(p.SpecSize), f(p.SpecOnlyGB), f(p.ImagePackages), f(p.ImageGB),
		})
	}
	return writeRecords(w, header, rows)
}

// WriteBaselinesCSV emits the Section III baseline comparison as CSV.
func WriteBaselinesCSV(w io.Writer, results []sim.BaselineResult) error {
	header := []string{
		"store", "requests", "images", "stored_bytes", "unique_bytes",
		"storage_efficiency", "bytes_written", "transferred_bytes", "hits",
	}
	rows := make([][]string, 0, len(results))
	for _, r := range results {
		rows = append(rows, []string{
			r.Name, strconv.Itoa(r.Requests), strconv.Itoa(r.Images),
			i(r.StoredBytes), i(r.UniqueBytes), f(r.StorageEfficiency()),
			i(r.BytesWritten), i(r.TransferredBytes), i(r.Hits),
		})
	}
	return writeRecords(w, header, rows)
}

// ToFile writes via the given emitter to a freshly created file.
func ToFile[T any](path string, data T, emit func(io.Writer, T) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f, data); err != nil {
		f.Close()
		return fmt.Errorf("report: writing %s: %w", path, err)
	}
	return f.Close()
}
