package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Sharded cache core.
//
// A ShardedManager partitions the cache into N independent
// ConcurrentManagers keyed by the request's package keys (the fleet
// RouteKey fnv64a idiom), so merges/inserts/evictions on different
// shards proceed in parallel instead of serializing on one write lock.
// Three mechanisms keep the partitioned cache provably equivalent to a
// single Algorithm 1 cache over the shard-local image sets:
//
//   - One shared atomic logical clock: every shard draws Seq stamps
//     from the same source, so stamps are globally unique and dense
//     (1..requests) and the merged mutation stream still linearizes by
//     Seq. Per-shard streams remain monotone in the WAL (each shard's
//     hook fires under its stamping lock), and records from different
//     shards commute on replay because mutations carry absolute values
//     and shards own disjoint images.
//
//   - Strided image IDs: shard i of N allocates IDs ≡ i (mod N), so
//     ImageID mod N names the owning shard in every mutation and
//     checkpoint. Recovery and checkpoint import route records with no
//     format change, and a shards=1 manager is byte-identical to the
//     unsharded Manager.
//
//   - Per-shard byte budgets summing exactly to the global capacity,
//     with a balancer (balance.go) that shifts budget toward hot
//     shards at maintenance points under full exclusion. The global
//     byte bound is the sum of per-shard bounds, which the check
//     harness audits across shards.
type ShardedManager struct {
	repo     *pkggraph.Repo
	shards   []*ConcurrentManager
	clockSrc *atomic.Uint64
	capacity int64 // global byte budget (zero or negative: unlimited)

	// routes, when non-nil, is the interned route-term table ShardFor
	// uses instead of streaming key strings (nil when the fast path is
	// disabled or there is only one shard).
	routes *RouteTable

	balMu sync.Mutex
	bal   BalancerStats
}

// fnv64a incremental hashing (hash/fnv without the allocating Hash64
// wrapper — the router runs on every request).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// routeMix is the splitmix64 finalizer (same constants as the fleet
// ring): the per-key sum below concentrates entropy in the low bits
// poorly, so mix before reducing mod shards.
func routeMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// routeKeyHash is the per-key term of the route hash: fnv64a over the
// key bytes plus a '\n' terminator (the fleet RouteKey framing).
func routeKeyHash(k string) uint64 {
	h := fnvString(fnvOffset64, k)
	h ^= '\n'
	h *= fnvPrime64
	return h
}

// ShardRoute maps a request's package keys to a shard index in [0,
// shards). The route is the splitmix-finalized *sum* of per-key fnv64a
// hashes, so it is a pure function of the key multiset — key order
// cannot matter by construction, and duplicate keys do not cancel (a
// XOR would erase pairs) — the properties the shadow checker audits on
// every insert and FuzzShardRoute fuzzes. shards < 2 always routes
// to 0.
func ShardRoute(packages []string, shards int) int {
	if shards < 2 {
		return 0
	}
	var sum uint64
	for _, k := range packages {
		sum += routeKeyHash(k)
	}
	return int(routeMix(sum) % uint64(shards))
}

// RouteTable is the interned form of the route hash: each package's
// routeKeyHash term, precomputed per PkgID at repository load, so
// routing a request is one table lookup and one add per package — no
// string bytes are ever re-hashed on the request path. Route is a pure
// function identity with ShardRoute over the spec's keys; the shard
// shadow checker audits the agreement on every insert and
// FuzzShardRoute pins it across arbitrary specs and shard counts.
type RouteTable struct {
	terms []uint64
}

// NewRouteTable precomputes the per-package route terms for repo.
func NewRouteTable(repo *pkggraph.Repo) *RouteTable {
	rt := &RouteTable{terms: make([]uint64, repo.Len())}
	for i := range rt.terms {
		rt.terms[i] = routeKeyHash(repo.Package(pkggraph.PkgID(i)).Key())
	}
	return rt
}

// Route maps s to a shard index in [0, shards): the splitmix-finalized
// sum of the spec's interned terms, byte-identical to
// ShardRoute(keys, shards). shards < 2 always routes to 0.
func (rt *RouteTable) Route(s spec.Spec, shards int) int {
	if shards < 2 {
		return 0
	}
	var sum uint64
	for _, id := range s.IDs() {
		sum += rt.terms[id]
	}
	return int(routeMix(sum) % uint64(shards))
}

// NewSharded validates cfg and creates an empty sharded manager with
// cfg.Shards shards (minimum 1). The capacity is split evenly across
// shards (remainder bytes to the lowest indices) so budgets sum to the
// configured capacity exactly; Rebalance reshapes the split later.
// cfg.Commit and cfg.Tracer are shared by every shard and must be safe
// for concurrent use when more than one shard is configured.
func NewSharded(repo *pkggraph.Repo, cfg Config) (*ShardedManager, error) {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	sm := &ShardedManager{
		repo:     repo,
		capacity: cfg.Capacity,
		clockSrc: new(atomic.Uint64),
	}
	if n >= 2 && !cfg.NoFastPath {
		sm.routes = NewRouteTable(repo)
	}
	budgets := SplitBudget(cfg.Capacity, n)
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Shards = n
		scfg.Capacity = budgets[i]
		m, err := NewManager(repo, scfg)
		if err != nil {
			return nil, err
		}
		m.clockSrc = sm.clockSrc
		m.idOffset = uint64(i)
		m.idStride = uint64(n)
		m.nextID = uint64(i)
		sm.shards = append(sm.shards, Concurrent(m))
	}
	return sm, nil
}

// NumShards returns the shard count.
func (sm *ShardedManager) NumShards() int { return len(sm.shards) }

// Shard returns the i'th shard for direct access (tests, harnesses).
func (sm *ShardedManager) Shard(i int) *ConcurrentManager { return sm.shards[i] }

// Capacity returns the global byte capacity (zero or negative means
// unlimited).
func (sm *ShardedManager) Capacity() int64 { return sm.capacity }

// ShardFor returns the shard a request for s routes to. With the fast
// path enabled it sums the interned RouteTable terms; otherwise it
// streams each package's name/version/platform fields straight into
// the fnv state. Both compute the same hash as ShardRoute(keysOf(s), n)
// without the per-request key-slice and key-string allocations that
// dominated routing cost on the hot path.
func (sm *ShardedManager) ShardFor(s spec.Spec) int {
	n := len(sm.shards)
	if n < 2 {
		return 0
	}
	var route int
	if sm.routes != nil {
		route = sm.routes.Route(s, n)
	} else {
		repo := sm.repo
		var sum uint64
		for _, id := range s.IDs() {
			p := repo.Package(id)
			// Byte-identical to routeKeyHash(p.Key()): Key() is
			// name + "/" + version + "/" + platform.
			h := fnvString(fnvOffset64, p.Name)
			h = fnvString(h, "/")
			h = fnvString(h, p.Version)
			h = fnvString(h, "/")
			h = fnvString(h, p.Platform)
			h ^= '\n'
			h *= fnvPrime64
			sum += h
		}
		route = int(routeMix(sum) % uint64(n))
	}
	if mutantEnabled("route") && s.Len()%3 == 1 {
		route = (route + 1) % n
	}
	return route
}

// Request runs Algorithm 1 for s on the shard its key set routes to.
func (sm *ShardedManager) Request(s spec.Spec) (Result, error) {
	return sm.RequestCtx(context.Background(), s)
}

// RequestCtx is Request with deadline/cancellation awareness (see
// ConcurrentManager.RequestCtx).
func (sm *ShardedManager) RequestCtx(ctx context.Context, s spec.Spec) (Result, error) {
	if s.Empty() {
		return Result{}, errEmptySpec()
	}
	return sm.shards[sm.ShardFor(s)].RequestCtx(ctx, s)
}

// PeekHit answers "would this spec hit?" with zero mutation on the
// shard s routes to (see ConcurrentManager.PeekHit).
func (sm *ShardedManager) PeekHit(s spec.Spec) (Result, bool) {
	if s.Empty() {
		return Result{}, false
	}
	return sm.shards[sm.ShardFor(s)].PeekHit(s)
}

// WithExclusiveAll runs fn as the sole user of every shard's Manager:
// shard locks are acquired in index order (the fixed order that makes
// multi-shard exclusion deadlock-free) and released in reverse. This is
// the critical section for checkpoints, restores, and rebalancing —
// anything that must observe or mutate a globally frozen cache. fn must
// not retain ms or its elements.
func (sm *ShardedManager) WithExclusiveAll(fn func(ms []*Manager)) {
	for _, c := range sm.shards {
		c.lock()
	}
	ms := make([]*Manager, len(sm.shards))
	for i, c := range sm.shards {
		ms[i] = c.m
	}
	fn(ms)
	for i := len(sm.shards) - 1; i >= 0; i-- {
		sm.shards[i].mu.Unlock()
	}
}

// WithSharedAll runs fn with every shard quiescent for reading (read
// lock plus hitMu each, acquired in index order). fn must not retain
// ms or its elements.
func (sm *ShardedManager) WithSharedAll(fn func(ms []*Manager)) {
	for _, c := range sm.shards {
		c.rlock()
	}
	for _, c := range sm.shards {
		c.hitMu.Lock()
	}
	ms := make([]*Manager, len(sm.shards))
	for i, c := range sm.shards {
		ms[i] = c.m
	}
	fn(ms)
	for i := len(sm.shards) - 1; i >= 0; i-- {
		sm.shards[i].hitMu.Unlock()
	}
	for i := len(sm.shards) - 1; i >= 0; i-- {
		sm.shards[i].mu.RUnlock()
	}
}

// Stats returns the field-wise sum of every shard's counters. Each
// shard's copy is internally consistent; across shards the sum may lag
// in-flight requests by a request or two (use WithSharedAll +
// MergedStats for a quiesced view).
func (sm *ShardedManager) Stats() Stats {
	var out Stats
	for _, c := range sm.shards {
		out = addStats(out, c.Stats())
	}
	return out
}

// Len returns the number of cached images across all shards.
func (sm *ShardedManager) Len() int {
	n := 0
	for _, c := range sm.shards {
		n += c.Len()
	}
	return n
}

// TotalData returns the summed size of all cached images.
func (sm *ShardedManager) TotalData() int64 {
	var t int64
	for _, c := range sm.shards {
		t += c.TotalData()
	}
	return t
}

// UniqueData returns the size of the union of all shards' package sets.
func (sm *ShardedManager) UniqueData() int64 {
	var u int64
	sm.WithSharedAll(func(ms []*Manager) { u = UnionData(ms) })
	return u
}

// CacheEfficiency returns UniqueData/TotalData across all shards.
func (sm *ShardedManager) CacheEfficiency() float64 {
	var u, t float64
	sm.WithSharedAll(func(ms []*Manager) {
		u = float64(UnionData(ms))
		for _, m := range ms {
			t += float64(m.TotalData())
		}
	})
	if t == 0 {
		return 1
	}
	return u / t
}

// Alpha returns the configured merge threshold.
func (sm *ShardedManager) Alpha() float64 { return sm.shards[0].Alpha() }

// Tracer returns the configured request tracer (nil when disabled).
func (sm *ShardedManager) Tracer() telemetry.Tracer { return sm.shards[0].Tracer() }

// CheckIntegrity validates every shard (see Manager.CheckIntegrity).
func (sm *ShardedManager) CheckIntegrity() error {
	for i, c := range sm.shards {
		if err := c.CheckIntegrity(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// Prune runs the split pass shard by shard and concatenates the
// results (see Manager.Prune).
func (sm *ShardedManager) Prune(maxUtilization float64, minServed int) ([]SplitResult, error) {
	var out []SplitResult
	for _, c := range sm.shards {
		res, err := c.Prune(maxUtilization, minServed)
		if err != nil {
			return out, err
		}
		out = append(out, res...)
	}
	return out, nil
}

// Snapshot captures every cached image across shards, ordered by last
// use (the canonical cross-shard order: stamps are globally unique).
func (sm *ShardedManager) Snapshot() []ImageSnapshot {
	var snaps []ImageSnapshot
	sm.WithSharedAll(func(ms []*Manager) {
		for _, m := range ms {
			snaps = append(snaps, m.Snapshot()...)
		}
	})
	sort.SliceStable(snaps, func(a, b int) bool { return snaps[a].LastUse < snaps[b].LastUse })
	return snaps
}

// ExportState captures the merged state of all shards (see
// MergedState). For a checkpoint that must stay consistent with the
// WAL, use WithExclusiveAll and export under the same critical section
// as the log rotation.
func (sm *ShardedManager) ExportState() ManagerState {
	var st ManagerState
	sm.WithSharedAll(func(ms []*Manager) { st = MergedState(ms) })
	return st
}

// ImportState loads a merged checkpoint into an empty sharded manager:
// each image goes to the shard its ID names (ID mod N), so identities,
// versions, and LRU stamps survive exactly. Works for checkpoints
// written by any shard count, including legacy unsharded ones.
func (sm *ShardedManager) ImportState(st ManagerState) error {
	n := len(sm.shards)
	parts := make([][]ImageSnapshot, n)
	for _, snap := range st.Images {
		i := int(snap.ID % uint64(n))
		parts[i] = append(parts[i], snap)
	}
	maxClock := st.Clock
	for _, snap := range st.Images {
		if snap.LastUse > maxClock {
			maxClock = snap.LastUse
		}
	}
	for i, c := range sm.shards {
		sub := ManagerState{
			Images: parts[i],
			NextID: st.NextID,
			Clock:  st.Clock,
		}
		// The merged stats land whole on shard 0 (summing per-shard
		// stats reproduces them; splitting per shard is unknowable from
		// a merged checkpoint, and "ops partition requests" holds for
		// both the zero and the whole).
		if i == 0 {
			sub.Stats = st.Stats
		}
		if err := c.m.ImportState(sub); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if maxClock > sm.clockSrc.Load() {
		sm.clockSrc.Store(maxClock)
	}
	return nil
}

// ApplyMutation replays one logged mutation during recovery, routed to
// the owning shard by ImageID. Only for single-goroutine use before
// the manager serves traffic.
func (sm *ShardedManager) ApplyMutation(mut Mutation) error {
	i := int(mut.ImageID % uint64(len(sm.shards)))
	if err := sm.shards[i].m.ApplyMutation(mut); err != nil {
		return err
	}
	if mut.LastUse > sm.clockSrc.Load() {
		sm.clockSrc.Store(mut.LastUse)
	}
	return nil
}

// Restore loads a legacy snapshot into an empty sharded cache: images
// are routed by their package keys (the same pure route a fresh insert
// of that spec would take) and re-IDed within each shard's residue
// class. See Manager.Restore.
func (sm *ShardedManager) Restore(snaps []ImageSnapshot) error {
	return sm.RestoreThen(snaps, nil)
}

// RestoreThen is Restore with a continuation: on success, fn (if
// non-nil) runs while every shard is still held exclusively — the
// critical section a restore-then-checkpoint sequence needs so no
// mutation can slip between the state rewrite and the log rotation.
// fn must not retain ms or its elements.
func (sm *ShardedManager) RestoreThen(snaps []ImageSnapshot, fn func(ms []*Manager)) error {
	var err error
	sm.WithExclusiveAll(func(ms []*Manager) {
		if err = RestoreAll(ms, snaps); err != nil {
			return
		}
		// Advance the shared clock source past the restored stamps —
		// Restore bumps the per-shard clocks without drawing from it.
		var max uint64
		for _, m := range ms {
			if m.clock > max {
				max = m.clock
			}
		}
		if max > sm.clockSrc.Load() {
			sm.clockSrc.Store(max)
		}
		if fn != nil {
			fn(ms)
		}
	})
	return err
}

// Images returns copied image rows across all shards for read-only
// listings (see ConcurrentManager.Images), ordered by ID so the
// listing is stable regardless of shard count.
func (sm *ShardedManager) Images() []Image {
	var out []Image
	for _, c := range sm.shards {
		out = append(out, c.Images()...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// SetCommitHook replaces the commit hook on every shard (see
// Manager.SetCommitHook). Call before serving traffic.
func (sm *ShardedManager) SetCommitHook(h CommitHook) {
	for _, c := range sm.shards {
		c.m.SetCommitHook(h)
	}
}

// SetLockWaitMetrics installs the lock-wait histograms on every shard
// (see ConcurrentManager.SetLockWaitMetrics).
func (sm *ShardedManager) SetLockWaitMetrics(read, write *telemetry.Histogram) {
	for _, c := range sm.shards {
		c.SetLockWaitMetrics(read, write)
	}
}

// ReadHits sums fast-path hits across shards.
func (sm *ShardedManager) ReadHits() int64 {
	var n int64
	for _, c := range sm.shards {
		n += c.ReadHits()
	}
	return n
}

// WriteLockAcquisitions sums write-lock acquisitions across shards.
func (sm *ShardedManager) WriteLockAcquisitions() int64 {
	var n int64
	for _, c := range sm.shards {
		n += c.WriteLockAcquisitions()
	}
	return n
}

// MergedState merges per-shard states into the canonical global state:
// images across all shards ordered by LastUse (stamps are globally
// unique, so the order is total), NextID the maximum shard allocator,
// Clock the maximum shard clock (the shared counter's value at
// quiescence), Stats the field-wise sum. A 1-shard merge is exactly
// that shard's ExportState. Callers must hold the shards quiescent
// (WithSharedAll or WithExclusiveAll).
func MergedState(ms []*Manager) ManagerState {
	var out ManagerState
	for _, m := range ms {
		st := m.ExportState()
		out.Images = append(out.Images, st.Images...)
		if st.NextID > out.NextID {
			out.NextID = st.NextID
		}
		if st.Clock > out.Clock {
			out.Clock = st.Clock
		}
		out.Stats = addStats(out.Stats, st.Stats)
	}
	sort.SliceStable(out.Images, func(a, b int) bool { return out.Images[a].LastUse < out.Images[b].LastUse })
	return out
}

// MergedStats sums per-shard counters. Callers must hold the shards
// quiescent.
func MergedStats(ms []*Manager) Stats {
	var out Stats
	for _, m := range ms {
		out = addStats(out, m.Stats())
	}
	return out
}

// UnionData returns the size of the union of every shard's package
// sets. Callers must hold the shards quiescent.
func UnionData(ms []*Manager) int64 {
	var u spec.Spec
	var repo *pkggraph.Repo
	for _, m := range ms {
		repo = m.repo
		for _, img := range m.images {
			if img != nil {
				u = u.Union(img.Spec)
			}
		}
	}
	if repo == nil {
		return 0
	}
	return u.Size(repo)
}

// RestoreAll loads a legacy snapshot into empty shard managers,
// routing each image by the pure shard route of its package keys.
// Callers must hold the shards exclusively.
func RestoreAll(ms []*Manager, snaps []ImageSnapshot) error {
	n := len(ms)
	parts := make([][]ImageSnapshot, n)
	for _, snap := range snaps {
		i := ShardRoute(snap.Packages, n)
		parts[i] = append(parts[i], snap)
	}
	for i, m := range ms {
		if err := m.Restore(parts[i]); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// addStats returns the field-wise sum a+b.
func addStats(a, b Stats) Stats {
	return Stats{
		Requests:        a.Requests + b.Requests,
		Hits:            a.Hits + b.Hits,
		Inserts:         a.Inserts + b.Inserts,
		Merges:          a.Merges + b.Merges,
		Deletes:         a.Deletes + b.Deletes,
		Splits:          a.Splits + b.Splits,
		BytesWritten:    a.BytesWritten + b.BytesWritten,
		RequestedBytes:  a.RequestedBytes + b.RequestedBytes,
		ContainerEffSum: a.ContainerEffSum + b.ContainerEffSum,
	}
}
