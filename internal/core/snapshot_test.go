package core

import (
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	m := mgr(t, repo, Config{Alpha: 0.6})
	request(t, m, sp(1, 2, 3))
	request(t, m, sp(1, 2, 4)) // merge
	request(t, m, sp(10, 11))  // insert
	snaps := m.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d images, want 2", len(snaps))
	}

	m2 := mgr(t, repo, Config{Alpha: 0.6})
	if err := m2.Restore(snaps); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if m2.Len() != m.Len() || m2.TotalData() != m.TotalData() || m2.UniqueData() != m.UniqueData() {
		t.Fatalf("restored state differs: %d/%d vs %d/%d",
			m2.Len(), m2.TotalData(), m.Len(), m.TotalData())
	}
	// Behaviour equivalence: a subset request hits in both.
	r1 := request(t, m, sp(1, 2))
	r2 := request(t, m2, sp(1, 2))
	if r1.Op != OpHit || r2.Op != OpHit || r1.ImageSize != r2.ImageSize {
		t.Fatalf("restored manager behaves differently: %+v vs %+v", r1, r2)
	}
}

func TestRestorePreservesLRUOrder(t *testing.T) {
	repo := flatRepo(t, 20, 100)
	m := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	request(t, m, sp(1))
	request(t, m, sp(2))
	request(t, m, sp(1)) // 2 is now LRU

	m2 := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Inserting a third image must evict {2}, as it would in m.
	request(t, m2, sp(3))
	if r := request(t, m2, sp(1)); r.Op != OpHit {
		t.Fatal("restored LRU evicted the recently used image")
	}
	if r := request(t, m2, sp(2)); r.Op != OpInsert {
		t.Fatal("restored LRU kept the stale image")
	}
}

func TestRestoreIntoNonEmptyFails(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1))
	if err := m.Restore(nil); err == nil {
		t.Fatal("Restore into non-empty manager accepted")
	}
}

func TestRestoreRejectsUnknownPackage(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	err := m.Restore([]ImageSnapshot{{Packages: []string{"ghost/1/p"}, LastUse: 1}})
	if err == nil {
		t.Fatal("unknown package accepted")
	}
}

func TestRestoreRejectsEmptyImage(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	if err := m.Restore([]ImageSnapshot{{LastUse: 1}}); err == nil {
		t.Fatal("empty snapshot image accepted")
	}
}

func TestSnapshotWithMinHashRestores(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	cfg := Config{Alpha: 0.6, MinHash: DefaultMinHash()}
	m := mgr(t, repo, cfg)
	request(t, m, sp(1, 2, 3))
	m2 := mgr(t, repo, cfg)
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Signature-dependent paths must still work after restore.
	if r := request(t, m2, sp(1, 2)); r.Op != OpHit {
		t.Fatalf("subset hit failed after minhash restore: %v", r.Op)
	}
	if r := request(t, m2, sp(1, 2, 4)); r.Op != OpMerge {
		t.Fatalf("merge failed after minhash restore: %v", r.Op)
	}
}
