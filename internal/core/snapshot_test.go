package core

import (
	"reflect"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	m := mgr(t, repo, Config{Alpha: 0.6})
	request(t, m, sp(1, 2, 3))
	request(t, m, sp(1, 2, 4)) // merge
	request(t, m, sp(10, 11))  // insert
	snaps := m.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshot has %d images, want 2", len(snaps))
	}

	m2 := mgr(t, repo, Config{Alpha: 0.6})
	if err := m2.Restore(snaps); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if m2.Len() != m.Len() || m2.TotalData() != m.TotalData() || m2.UniqueData() != m.UniqueData() {
		t.Fatalf("restored state differs: %d/%d vs %d/%d",
			m2.Len(), m2.TotalData(), m.Len(), m.TotalData())
	}
	// Behaviour equivalence: a subset request hits in both.
	r1 := request(t, m, sp(1, 2))
	r2 := request(t, m2, sp(1, 2))
	if r1.Op != OpHit || r2.Op != OpHit || r1.ImageSize != r2.ImageSize {
		t.Fatalf("restored manager behaves differently: %+v vs %+v", r1, r2)
	}
}

func TestRestorePreservesLRUOrder(t *testing.T) {
	repo := flatRepo(t, 20, 100)
	m := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	request(t, m, sp(1))
	request(t, m, sp(2))
	request(t, m, sp(1)) // 2 is now LRU

	m2 := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Inserting a third image must evict {2}, as it would in m.
	request(t, m2, sp(3))
	if r := request(t, m2, sp(1)); r.Op != OpHit {
		t.Fatal("restored LRU evicted the recently used image")
	}
	if r := request(t, m2, sp(2)); r.Op != OpInsert {
		t.Fatal("restored LRU kept the stale image")
	}
}

func TestRestoreIntoNonEmptyFails(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1))
	if err := m.Restore(nil); err == nil {
		t.Fatal("Restore into non-empty manager accepted")
	}
}

func TestRestoreRejectsUnknownPackage(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	err := m.Restore([]ImageSnapshot{{Packages: []string{"ghost/1/p"}, LastUse: 1}})
	if err == nil {
		t.Fatal("unknown package accepted")
	}
}

func TestRestoreRejectsEmptyImage(t *testing.T) {
	repo := flatRepo(t, 5, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	if err := m.Restore([]ImageSnapshot{{LastUse: 1}}); err == nil {
		t.Fatal("empty snapshot image accepted")
	}
}

// TestRestoreCapacityOverflow: a snapshot larger than the configured
// capacity restores whole (supporting capacity shrinks across a
// restart); the next live request brings the cache back under budget.
func TestRestoreCapacityOverflow(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	big := mgr(t, repo, Config{Alpha: 0})
	request(t, big, sp(1))
	request(t, big, sp(2))
	request(t, big, sp(3))

	small := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	if err := small.Restore(big.Snapshot()); err != nil {
		t.Fatalf("over-capacity Restore: %v", err)
	}
	if small.Len() != 3 || small.TotalData() != 300 {
		t.Fatalf("restore trimmed the snapshot early: %d images, %d bytes", small.Len(), small.TotalData())
	}
	request(t, small, sp(4))
	if small.TotalData() > 250 {
		t.Fatalf("cache still over capacity after a request: %d bytes", small.TotalData())
	}
	// LRU means {3} (and the new {4}) survive; {1} and {2} go.
	if r := request(t, small, sp(3)); r.Op != OpHit {
		t.Fatalf("most-recent restored image was evicted (op %v)", r.Op)
	}
	if err := small.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPruneSnapshotRoundTrip: prune a manager mid-life, carry
// its snapshot through Restore, and verify the split survives the trip
// and both managers stay behaviourally identical.
func TestSnapshotPruneSnapshotRoundTrip(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	m := mgr(t, repo, Config{Alpha: 0.5})
	request(t, m, sp(1, 2, 3, 4))
	if _, err := m.Prune(0.5, 1); err != nil { // reset the insert-seeded hot window
		t.Fatalf("Prune: %v", err)
	}
	request(t, m, sp(1, 2)) // hot subset: {1,2} of a 4-package image
	request(t, m, sp(1, 2))
	splits, err := m.Prune(0.5, 2)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if len(splits) != 1 {
		t.Fatalf("expected 1 split, got %+v", splits)
	}

	snaps := m.Snapshot()
	m2 := mgr(t, repo, Config{Alpha: 0.5})
	if err := m2.Restore(snaps); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if m2.TotalData() != m.TotalData() || m2.Len() != m.Len() {
		t.Fatalf("pruned state lost in round trip: %d/%d vs %d/%d",
			m2.Len(), m2.TotalData(), m.Len(), m.TotalData())
	}
	// The snapshot of the restored manager must match modulo the IDs
	// Restore reassigns.
	again := m2.Snapshot()
	for i := range snaps {
		a, b := snaps[i], again[i]
		a.ID, b.ID = 0, 0
		a.Version, b.Version = 0, 0 // Restore resets content versions
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("snapshot %d changed in round trip:\n before %+v\n after  %+v", i, snaps[i], again[i])
		}
	}
	if err := m2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestImportStateRoundTrip: ImportState is the checkpoint loader; it
// must preserve IDs, versions, the clock, ID allocation, and stats
// bit for bit.
func TestImportStateRoundTrip(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	m := mgr(t, repo, Config{Alpha: 0.5, Capacity: 120})
	request(t, m, sp(1, 2, 3))
	request(t, m, sp(1, 2, 3, 4)) // merge -> version 1
	request(t, m, sp(10, 11))
	request(t, m, sp(12, 13)) // evicts under the 120-byte cap
	st := m.ExportState()

	m2 := mgr(t, repo, Config{Alpha: 0.5, Capacity: 120})
	if err := m2.ImportState(st); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if err := m2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if got := m2.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatalf("export/import/export not a fixed point:\n got %+v\nwant %+v", got, st)
	}
	if m2.Stats() != m.Stats() {
		t.Fatalf("stats lost: %+v vs %+v", m2.Stats(), m.Stats())
	}
	// ID allocation continues where the donor left off.
	r := request(t, m2, sp(15))
	if wantNext := st.NextID; r.ImageID != wantNext {
		t.Fatalf("new image got ID %d, want %d", r.ImageID, wantNext)
	}
}

func TestImportStateRejects(t *testing.T) {
	repo := flatRepo(t, 5, 10)
	occupied := mgr(t, repo, Config{})
	request(t, occupied, sp(1))
	if err := occupied.ImportState(ManagerState{}); err == nil {
		t.Error("ImportState into non-empty manager accepted")
	}

	cases := []struct {
		name string
		st   ManagerState
	}{
		{"unknown package", ManagerState{Images: []ImageSnapshot{
			{ID: 0, Packages: []string{"ghost/1/p"}, LastUse: 1}}}},
		{"empty image", ManagerState{Images: []ImageSnapshot{
			{ID: 0, LastUse: 1}}}},
		{"duplicate ID", ManagerState{Images: []ImageSnapshot{
			{ID: 7, Packages: []string{key(repo, 1)}, LastUse: 1},
			{ID: 7, Packages: []string{key(repo, 2)}, LastUse: 2}}}},
	}
	for _, tc := range cases {
		m := mgr(t, repo, Config{})
		if err := m.ImportState(tc.st); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSnapshotWithMinHashRestores(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	cfg := Config{Alpha: 0.6, MinHash: DefaultMinHash()}
	m := mgr(t, repo, cfg)
	request(t, m, sp(1, 2, 3))
	m2 := mgr(t, repo, cfg)
	if err := m2.Restore(m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Signature-dependent paths must still work after restore.
	if r := request(t, m2, sp(1, 2)); r.Op != OpHit {
		t.Fatalf("subset hit failed after minhash restore: %v", r.Op)
	}
	if r := request(t, m2, sp(1, 2, 4)); r.Op != OpMerge {
		t.Fatalf("merge failed after minhash restore: %v", r.Op)
	}
}
