package core

import (
	"fmt"
	"sort"
)

// ImageSnapshot is the serializable state of one cached image, used by
// the persistence layer (internal/persist) and the HTTP
// snapshot/restore endpoints to carry the cache across restarts.
type ImageSnapshot struct {
	// ID is the image's identity. Restore ignores it (legacy snapshots
	// predate it); ImportState preserves it so a recovered cache hands
	// out the same (ImageID, Version) pairs workers already hold.
	ID uint64 `json:"id"`
	// Packages are the image's package keys (name/version/platform),
	// portable across repository reloads.
	Packages []string `json:"packages"`
	// LastUse is the logical-clock timestamp of the image's last use;
	// relative order is what matters for LRU.
	LastUse uint64 `json:"last_use"`
	// Merges counts specifications merged into the image.
	Merges int `json:"merges"`
	// Version is the image's content version (see Image.Version).
	Version uint64 `json:"version,omitempty"`
}

// ManagerState is the complete serializable state of a Manager:
// every image plus the counters that make recovery exact. Images are
// kept in last-use order, which is canonical (each request stamps a
// unique clock value), so two states of equal caches compare equal.
type ManagerState struct {
	Images []ImageSnapshot `json:"images"`
	// NextID and Clock continue ID allocation and the LRU clock where
	// the saved manager left off.
	NextID uint64 `json:"next_id"`
	Clock  uint64 `json:"clock"`
	Stats  Stats  `json:"stats"`
}

// Snapshot captures every cached image in insertion order.
func (m *Manager) Snapshot() []ImageSnapshot {
	snaps := make([]ImageSnapshot, 0, len(m.byID))
	for _, img := range m.images {
		if img == nil {
			continue
		}
		snaps = append(snaps, ImageSnapshot{
			ID:       img.ID,
			Packages: m.keysOf(img.Spec),
			LastUse:  img.lastUse,
			Merges:   img.Merges,
			Version:  img.Version,
		})
	}
	return snaps
}

// ExportState captures the manager's full state for checkpointing.
func (m *Manager) ExportState() ManagerState {
	snaps := m.Snapshot()
	sort.SliceStable(snaps, func(a, b int) bool { return snaps[a].LastUse < snaps[b].LastUse })
	return ManagerState{
		Images: snaps,
		NextID: m.nextID,
		Clock:  m.clock,
		Stats:  m.stats,
	}
}

// ImportState loads a checkpoint into an empty Manager, reconstructing
// images (with their original IDs and versions), sizes, signatures,
// counters, and the LRU clock. Importing into a non-empty Manager is
// an error. A state larger than the manager's capacity is accepted:
// the LRU evictor brings the cache back under budget on the next
// request, which is the right behaviour when a site shrinks its
// configured capacity across a restart.
func (m *Manager) ImportState(st ManagerState) error {
	if len(m.byID) != 0 {
		return fmt.Errorf("core: ImportState into non-empty manager (%d images)", len(m.byID))
	}
	var maxClock, maxID uint64
	for i, snap := range st.Images {
		s, err := m.specFromKeys(snap.Packages)
		if err != nil {
			return fmt.Errorf("core: checkpoint image %d: %w", i, err)
		}
		if s.Empty() {
			return fmt.Errorf("core: checkpoint image %d is empty", i)
		}
		if _, dup := m.byID[snap.ID]; dup {
			return fmt.Errorf("core: checkpoint image %d duplicates ID %d", i, snap.ID)
		}
		img := &Image{
			ID:      snap.ID,
			Spec:    s,
			Size:    s.Size(m.repo),
			Version: snap.Version,
			Merges:  snap.Merges,
			lastUse: snap.LastUse,
			sig:     m.sign(s),
		}
		m.appendImage(img)
		m.indexInsert(img)
		m.total += img.Size
		if snap.LastUse > maxClock {
			maxClock = snap.LastUse
		}
		if snap.ID > maxID {
			maxID = snap.ID
		}
	}
	sort.SliceStable(m.images, func(a, b int) bool { return m.images[a].lastUse < m.images[b].lastUse })
	m.reorderOrds()
	m.clock = maxClock
	if st.Clock > m.clock {
		m.clock = st.Clock
	}
	m.nextID = maxID + 1
	if len(st.Images) == 0 {
		m.nextID = 0
	}
	if st.NextID > m.nextID {
		m.nextID = st.NextID
	}
	m.alignNextID()
	m.stats = st.Stats
	return nil
}

// Restore loads a snapshot into an empty Manager, reconstructing
// images, sizes, signatures and the LRU clock. Image IDs are
// reassigned in snapshot order (legacy format; use ImportState to
// preserve identities). Restoring into a non-empty Manager is an error
// (it would silently interleave two cache histories). A snapshot
// larger than the configured capacity restores successfully; the LRU
// evictor trims the overflow on the next request.
func (m *Manager) Restore(snaps []ImageSnapshot) error {
	if len(m.byID) != 0 {
		return fmt.Errorf("core: Restore into non-empty manager (%d images)", len(m.byID))
	}
	var maxClock uint64
	for i, snap := range snaps {
		s, err := m.specFromKeys(snap.Packages)
		if err != nil {
			return fmt.Errorf("core: snapshot image %d: %w", i, err)
		}
		if s.Empty() {
			return fmt.Errorf("core: snapshot image %d is empty", i)
		}
		img := &Image{
			ID:      m.nextID,
			Spec:    s,
			Size:    s.Size(m.repo),
			Merges:  snap.Merges,
			lastUse: snap.LastUse,
			sig:     m.sign(s),
		}
		m.nextID += m.stride()
		m.appendImage(img)
		m.indexInsert(img)
		m.total += img.Size
		if snap.LastUse > maxClock {
			maxClock = snap.LastUse
		}
	}
	// Keep insertion order stable by last use so LRU ties resolve the
	// same way across save/load cycles.
	sort.SliceStable(m.images, func(a, b int) bool { return m.images[a].lastUse < m.images[b].lastUse })
	m.reorderOrds()
	m.clock = maxClock
	return nil
}
