package core

import (
	"fmt"
	"sort"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// ImageSnapshot is the serializable state of one cached image, used by
// the job-wrapper deployment (cmd/landlord) to persist the cache
// between invocations.
type ImageSnapshot struct {
	// Packages are the image's package keys (name/version/platform),
	// portable across repository reloads.
	Packages []string `json:"packages"`
	// LastUse is the logical-clock timestamp of the image's last use;
	// relative order is what matters for LRU.
	LastUse uint64 `json:"last_use"`
	// Merges counts specifications merged into the image.
	Merges int `json:"merges"`
}

// Snapshot captures every cached image in insertion order.
func (m *Manager) Snapshot() []ImageSnapshot {
	snaps := make([]ImageSnapshot, 0, len(m.byID))
	for _, img := range m.images {
		if img == nil {
			continue
		}
		keys := make([]string, 0, img.Spec.Len())
		for _, id := range img.Spec.IDs() {
			keys = append(keys, m.repo.Package(id).Key())
		}
		snaps = append(snaps, ImageSnapshot{
			Packages: keys,
			LastUse:  img.lastUse,
			Merges:   img.Merges,
		})
	}
	return snaps
}

// Restore loads a snapshot into an empty Manager, reconstructing
// images, sizes, signatures and the LRU clock. Restoring into a
// non-empty Manager is an error (it would silently interleave two
// cache histories).
func (m *Manager) Restore(snaps []ImageSnapshot) error {
	if len(m.byID) != 0 {
		return fmt.Errorf("core: Restore into non-empty manager (%d images)", len(m.byID))
	}
	var maxClock uint64
	for i, snap := range snaps {
		ids := make([]pkggraph.PkgID, 0, len(snap.Packages))
		for _, key := range snap.Packages {
			id, ok := m.repo.Lookup(key)
			if !ok {
				return fmt.Errorf("core: snapshot image %d references unknown package %q", i, key)
			}
			ids = append(ids, id)
		}
		s := spec.New(ids)
		if s.Empty() {
			return fmt.Errorf("core: snapshot image %d is empty", i)
		}
		img := &Image{
			ID:      m.nextID,
			Spec:    s,
			Size:    s.Size(m.repo),
			Merges:  snap.Merges,
			lastUse: snap.LastUse,
			sig:     m.sign(s),
		}
		m.nextID++
		m.images = append(m.images, img)
		m.byID[img.ID] = img
		m.total += img.Size
		if snap.LastUse > maxClock {
			maxClock = snap.LastUse
		}
	}
	// Keep insertion order stable by last use so LRU ties resolve the
	// same way across save/load cycles.
	sort.SliceStable(m.images, func(a, b int) bool { return m.images[a].lastUse < m.images[b].lastUse })
	m.clock = maxClock
	return nil
}
