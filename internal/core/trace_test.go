package core

import (
	"context"
	"testing"

	"repro/internal/spec"
	"repro/internal/telemetry"
)

// collectTracer retains every event for assertions.
type collectTracer struct{ events []telemetry.Event }

func (c *collectTracer) Trace(ev *telemetry.Event) { c.events = append(c.events, *ev) }

func TestRequestEmitsOneEventPerRequest(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.6, Tracer: tr})

	request(t, m, sp(0, 1, 2, 3)) // insert
	request(t, m, sp(0, 1, 2, 3)) // hit
	request(t, m, sp(0, 1, 2, 4)) // merge: d = 2/5 = 0.4 < 0.6

	if len(tr.events) != 3 {
		t.Fatalf("traced %d events for 3 requests", len(tr.events))
	}
	for i, ev := range tr.events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.SpecPackages != 4 || ev.RequestBytes != 4 {
			t.Errorf("event %d spec sizing = %d pkgs / %d bytes", i, ev.SpecPackages, ev.RequestBytes)
		}
		if ev.DurationNanos < 0 {
			t.Errorf("event %d negative duration", i)
		}
		if ev.Images < 1 || ev.CachedBytes < 1 {
			t.Errorf("event %d cache snapshot empty: %+v", i, ev)
		}
	}

	insert, hit, merge := tr.events[0], tr.events[1], tr.events[2]
	if insert.Op != "insert" || insert.BytesWritten != 4 {
		t.Errorf("insert event: %+v", insert)
	}
	if hit.Op != "hit" || hit.BytesWritten != 0 || hit.SupersetScanned == 0 {
		t.Errorf("hit event: %+v", hit)
	}
	if merge.Op != "merge" || merge.ImageSize != 5 || merge.BytesWritten != 5 {
		t.Errorf("merge event: %+v", merge)
	}
	if len(merge.Candidates) != 1 || merge.Candidates[0].Distance != 0.4 {
		t.Errorf("merge candidates: %+v", merge.Candidates)
	}
}

func TestTracePrefilterCounts(t *testing.T) {
	repo := flatRepo(t, 26, 1)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{
		Alpha:   0.3,
		MinHash: &MinHashConfig{K: 64, Seed: 1, Margin: 0.1},
		Tracer:  tr,
	})
	// Two distant images, then a request close to neither: the
	// prefilter should reject at least one distant image outright.
	request(t, m, sp(0, 1, 2, 3, 4, 5, 6, 7))
	request(t, m, sp(16, 17, 18, 19, 20, 21, 22, 23))
	request(t, m, sp(8, 9, 10, 11, 12, 13, 14, 15))

	last := tr.events[len(tr.events)-1]
	if last.Op != "insert" {
		t.Fatalf("expected disjoint request to insert, got %q", last.Op)
	}
	if last.PrefilterAccepted+last.PrefilterRejected != 2 {
		t.Fatalf("prefilter examined %d+%d images, want 2",
			last.PrefilterAccepted, last.PrefilterRejected)
	}
	if last.PrefilterRejected == 0 {
		t.Fatalf("prefilter rejected nothing for disjoint sets: %+v", last)
	}
}

func TestTraceEvictionAccounting(t *testing.T) {
	repo := flatRepo(t, 12, 10)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.1, Capacity: 60, Tracer: tr})

	request(t, m, sp(0, 1, 2)) // 30 bytes
	request(t, m, sp(3, 4, 5)) // 60 bytes total
	request(t, m, sp(6, 7, 8)) // 90 -> evicts the LRU image
	ev := tr.events[2]
	if ev.Evicted != 1 || ev.EvictedBytes != 30 {
		t.Fatalf("eviction event: %+v", ev)
	}
	if ev.CachedBytes != 60 || ev.Images != 2 {
		t.Fatalf("post-eviction snapshot: %+v", ev)
	}
}

func TestSetTracerStacksCollectors(t *testing.T) {
	repo := flatRepo(t, 6, 1)
	first := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.5, Tracer: first})
	second := &collectTracer{}
	m.SetTracer(telemetry.Multi(m.Tracer(), second))

	request(t, m, sp(0, 1))
	if len(first.events) != 1 || len(second.events) != 1 {
		t.Fatalf("stacked tracers got %d/%d events", len(first.events), len(second.events))
	}
}

// spanStages flattens a trace's stages for coverage assertions.
func spanStages(tr telemetry.Trace) map[string]int {
	out := map[string]int{}
	for _, sp := range tr.Spans {
		out[sp.Stage]++
	}
	return out
}

func TestRequestTracedRecordsAlgorithmSpans(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	ring := telemetry.NewTraceRing(16, 16)
	spans := telemetry.NewSpanTracer(ring)
	// Capacity forces an eviction sweep on every mutation; the event
	// tracer makes the scan spans carry their work-count attributes.
	m := mgr(t, repo, Config{Alpha: 0.6, Capacity: 6, Tracer: &collectTracer{}})

	run := func(s spec.Spec, outcome string) telemetry.Trace {
		t.Helper()
		at := spans.Start(0, 0)
		res, err := m.RequestTraced(s, at)
		if err != nil {
			t.Fatal(err)
		}
		at.Finish(res.Op.String(), "", res.Seq)
		if res.Op.String() != outcome {
			t.Fatalf("op %s, want %s", res.Op, outcome)
		}
		tr, ok := ring.Get(at.TraceID())
		if !ok {
			t.Fatalf("trace for %s not retained", outcome)
		}
		return tr
	}

	insert := run(sp(0, 1, 2, 3), "insert")
	hit := run(sp(0, 1, 2, 3), "hit")
	merge := run(sp(0, 1, 2, 4), "merge")

	st := spanStages(insert)
	for _, stage := range []string{telemetry.StageSupersetScan, telemetry.StageMergeScan, telemetry.StageInsert, telemetry.StageEvict} {
		if st[stage] != 1 {
			t.Fatalf("insert trace stages %v missing %s", st, stage)
		}
	}
	st = spanStages(hit)
	if st[telemetry.StageHit] != 1 || st[telemetry.StageSupersetScan] != 1 {
		t.Fatalf("hit trace stages %v", st)
	}
	if st[telemetry.StageMergeScan] != 0 {
		t.Fatalf("hit trace ran a merge scan: %v", st)
	}
	st = spanStages(merge)
	if st[telemetry.StageMerge] != 1 || st[telemetry.StageEvict] != 1 {
		t.Fatalf("merge trace stages %v", st)
	}

	// The scan spans carry their work counts as attributes.
	for _, sp := range hit.Spans {
		if sp.Stage == telemetry.StageSupersetScan {
			if len(sp.Attrs) != 1 || sp.Attrs[0].Key != "scanned" || sp.Attrs[0].Num < 1 {
				t.Fatalf("superset_scan attrs %+v", sp.Attrs)
			}
		}
	}

	// Request with a nil trace still works (the untraced path).
	if _, err := m.RequestTraced(sp(0, 1, 5), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Request(sp(0, 1, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentManagerTracesLockWaits(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	ring := telemetry.NewTraceRing(16, 16)
	spans := telemetry.NewSpanTracer(ring)
	cm, err := NewConcurrent(repo, Config{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}

	run := func(s spec.Spec) telemetry.Trace {
		t.Helper()
		at := spans.Start(0, 0)
		ctx := telemetry.ContextWithTrace(context.Background(), at)
		res, err := cm.RequestCtx(ctx, s)
		if err != nil {
			t.Fatal(err)
		}
		at.Finish(res.Op.String(), "", res.Seq)
		tr, ok := ring.Get(at.TraceID())
		if !ok {
			t.Fatalf("trace not retained")
		}
		return tr
	}

	miss := spanStages(run(sp(0, 1, 2, 3))) // insert: read path, then write path
	if miss[telemetry.StageLockWaitRead] != 1 || miss[telemetry.StageLockWaitWrite] != 1 {
		t.Fatalf("insert stages %v, want both lock-wait spans", miss)
	}
	fast := spanStages(run(sp(0, 1, 2, 3))) // hit: read path only
	if fast[telemetry.StageLockWaitRead] != 1 || fast[telemetry.StageLockWaitWrite] != 0 {
		t.Fatalf("hit stages %v, want read lock wait only", fast)
	}
	if fast[telemetry.StageHit] != 1 {
		t.Fatalf("fast-path hit not spanned: %v", fast)
	}
}
