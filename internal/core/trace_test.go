package core

import (
	"testing"

	"repro/internal/telemetry"
)

// collectTracer retains every event for assertions.
type collectTracer struct{ events []telemetry.Event }

func (c *collectTracer) Trace(ev *telemetry.Event) { c.events = append(c.events, *ev) }

func TestRequestEmitsOneEventPerRequest(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.6, Tracer: tr})

	request(t, m, sp(0, 1, 2, 3)) // insert
	request(t, m, sp(0, 1, 2, 3)) // hit
	request(t, m, sp(0, 1, 2, 4)) // merge: d = 2/5 = 0.4 < 0.6

	if len(tr.events) != 3 {
		t.Fatalf("traced %d events for 3 requests", len(tr.events))
	}
	for i, ev := range tr.events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
		if ev.SpecPackages != 4 || ev.RequestBytes != 4 {
			t.Errorf("event %d spec sizing = %d pkgs / %d bytes", i, ev.SpecPackages, ev.RequestBytes)
		}
		if ev.DurationNanos < 0 {
			t.Errorf("event %d negative duration", i)
		}
		if ev.Images < 1 || ev.CachedBytes < 1 {
			t.Errorf("event %d cache snapshot empty: %+v", i, ev)
		}
	}

	insert, hit, merge := tr.events[0], tr.events[1], tr.events[2]
	if insert.Op != "insert" || insert.BytesWritten != 4 {
		t.Errorf("insert event: %+v", insert)
	}
	if hit.Op != "hit" || hit.BytesWritten != 0 || hit.SupersetScanned == 0 {
		t.Errorf("hit event: %+v", hit)
	}
	if merge.Op != "merge" || merge.ImageSize != 5 || merge.BytesWritten != 5 {
		t.Errorf("merge event: %+v", merge)
	}
	if len(merge.Candidates) != 1 || merge.Candidates[0].Distance != 0.4 {
		t.Errorf("merge candidates: %+v", merge.Candidates)
	}
}

func TestTracePrefilterCounts(t *testing.T) {
	repo := flatRepo(t, 26, 1)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{
		Alpha:   0.3,
		MinHash: &MinHashConfig{K: 64, Seed: 1, Margin: 0.1},
		Tracer:  tr,
	})
	// Two distant images, then a request close to neither: the
	// prefilter should reject at least one distant image outright.
	request(t, m, sp(0, 1, 2, 3, 4, 5, 6, 7))
	request(t, m, sp(16, 17, 18, 19, 20, 21, 22, 23))
	request(t, m, sp(8, 9, 10, 11, 12, 13, 14, 15))

	last := tr.events[len(tr.events)-1]
	if last.Op != "insert" {
		t.Fatalf("expected disjoint request to insert, got %q", last.Op)
	}
	if last.PrefilterAccepted+last.PrefilterRejected != 2 {
		t.Fatalf("prefilter examined %d+%d images, want 2",
			last.PrefilterAccepted, last.PrefilterRejected)
	}
	if last.PrefilterRejected == 0 {
		t.Fatalf("prefilter rejected nothing for disjoint sets: %+v", last)
	}
}

func TestTraceEvictionAccounting(t *testing.T) {
	repo := flatRepo(t, 12, 10)
	tr := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.1, Capacity: 60, Tracer: tr})

	request(t, m, sp(0, 1, 2)) // 30 bytes
	request(t, m, sp(3, 4, 5)) // 60 bytes total
	request(t, m, sp(6, 7, 8)) // 90 -> evicts the LRU image
	ev := tr.events[2]
	if ev.Evicted != 1 || ev.EvictedBytes != 30 {
		t.Fatalf("eviction event: %+v", ev)
	}
	if ev.CachedBytes != 60 || ev.Images != 2 {
		t.Fatalf("post-eviction snapshot: %+v", ev)
	}
}

func TestSetTracerStacksCollectors(t *testing.T) {
	repo := flatRepo(t, 6, 1)
	first := &collectTracer{}
	m := mgr(t, repo, Config{Alpha: 0.5, Tracer: first})
	second := &collectTracer{}
	m.SetTracer(telemetry.Multi(m.Tracer(), second))

	request(t, m, sp(0, 1))
	if len(first.events) != 1 || len(second.events) != 1 {
		t.Fatalf("stacked tracers got %d/%d events", len(first.events), len(second.events))
	}
}
