package core

import (
	"math/rand"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestSoakInvariants drives a Manager through a long mixed sequence of
// requests, prunes, and snapshot/restore cycles, checking internal
// invariants after every operation. Configurations cover exact and
// MinHash candidate search, bounded and unbounded caches.
func TestSoakInvariants(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo := pkggraph.MustGenerate(cfg, 55)

	configs := []Config{
		{Alpha: 0.75},
		{Alpha: 0.75, MinHash: DefaultMinHash()},
		{Alpha: 0.9, Capacity: repo.TotalSize() / 2, MinHash: DefaultMinHash()},
		{Alpha: 0.5, Capacity: repo.TotalSize() / 4},
	}
	for ci, cfg := range configs {
		m := mgr(t, repo, cfg)
		gen := workload.NewDepClosure(repo, int64(ci))
		gen.MaxInitial = 6
		rng := rand.New(rand.NewSource(int64(ci) + 100))
		var history []spec.Spec

		for step := 0; step < 400; step++ {
			switch {
			case step%97 == 96:
				// Periodic split pass.
				if _, err := m.Prune(0.7, 2); err != nil {
					t.Fatalf("config %d step %d: Prune: %v", ci, step, err)
				}
			case step%151 == 150:
				// Snapshot/restore round trip mid-run.
				snaps := m.Snapshot()
				m2 := mgr(t, repo, cfg)
				if err := m2.Restore(snaps); err != nil {
					t.Fatalf("config %d step %d: Restore: %v", ci, step, err)
				}
				if err := m2.checkInvariants(); err != nil {
					t.Fatalf("config %d step %d: restored manager: %v", ci, step, err)
				}
				if m2.TotalData() != m.TotalData() || m2.Len() != m.Len() {
					t.Fatalf("config %d step %d: restore changed state", ci, step)
				}
			default:
				var s spec.Spec
				if len(history) > 0 && rng.Float64() < 0.35 {
					s = history[rng.Intn(len(history))]
				} else {
					s = gen.Next()
					history = append(history, s)
				}
				if _, err := m.Request(s); err != nil {
					t.Fatalf("config %d step %d: Request: %v", ci, step, err)
				}
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("config %d step %d: %v", ci, step, err)
			}
		}
		// Capacity respected (modulo the single in-use overflow).
		if cfg.Capacity > 0 && m.Len() > 1 && m.TotalData() > cfg.Capacity {
			t.Errorf("config %d: %d images exceed capacity %d (total %d)",
				ci, m.Len(), cfg.Capacity, m.TotalData())
		}
	}
}
