package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

// TestSoakInvariants drives a Manager through a long mixed sequence of
// requests, prunes, and snapshot/restore cycles, checking internal
// invariants after every operation. Configurations cover exact and
// MinHash candidate search, bounded and unbounded caches.
func TestSoakInvariants(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo := pkggraph.MustGenerate(cfg, 55)

	configs := []Config{
		{Alpha: 0.75},
		{Alpha: 0.75, MinHash: DefaultMinHash()},
		{Alpha: 0.9, Capacity: repo.TotalSize() / 2, MinHash: DefaultMinHash()},
		{Alpha: 0.5, Capacity: repo.TotalSize() / 4},
	}
	for ci, cfg := range configs {
		m := mgr(t, repo, cfg)
		gen := workload.NewDepClosure(repo, int64(ci))
		gen.MaxInitial = 6
		rng := rand.New(rand.NewSource(int64(ci) + 100))
		var history []spec.Spec

		for step := 0; step < 400; step++ {
			switch {
			case step%97 == 96:
				// Periodic split pass.
				if _, err := m.Prune(0.7, 2); err != nil {
					t.Fatalf("config %d step %d: Prune: %v", ci, step, err)
				}
			case step%151 == 150:
				// Snapshot/restore round trip mid-run.
				snaps := m.Snapshot()
				m2 := mgr(t, repo, cfg)
				if err := m2.Restore(snaps); err != nil {
					t.Fatalf("config %d step %d: Restore: %v", ci, step, err)
				}
				if err := m2.CheckIntegrity(); err != nil {
					t.Fatalf("config %d step %d: restored manager: %v", ci, step, err)
				}
				if m2.TotalData() != m.TotalData() || m2.Len() != m.Len() {
					t.Fatalf("config %d step %d: restore changed state", ci, step)
				}
			default:
				var s spec.Spec
				if len(history) > 0 && rng.Float64() < 0.35 {
					s = history[rng.Intn(len(history))]
				} else {
					s = gen.Next()
					history = append(history, s)
				}
				if _, err := m.Request(s); err != nil {
					t.Fatalf("config %d step %d: Request: %v", ci, step, err)
				}
			}
			if err := m.CheckIntegrity(); err != nil {
				t.Fatalf("config %d step %d: %v", ci, step, err)
			}
		}
		// Capacity respected (modulo the single in-use overflow).
		if cfg.Capacity > 0 && m.Len() > 1 && m.TotalData() > cfg.Capacity {
			t.Errorf("config %d: %d images exceed capacity %d (total %d)",
				ci, m.Len(), cfg.Capacity, m.TotalData())
		}
	}
}

// pruneEvent records one split pass taken during the concurrent soak:
// the clock value observed under the write lock locates the pass in
// the linearization order (after the request stamped with that clock).
type pruneEvent struct {
	afterClock uint64
	maxUtil    float64
	minServed  int
}

// TestSoakConcurrent is the multi-goroutine soak: 8 workers hammer one
// ConcurrentManager with a seeded mixed workload — requests plus
// periodic split passes — with full invariant checks at every
// quiescent point, and the final stats and state cross-checked against
// the sequential oracle (the same requests and prunes replayed in
// linearization order through a single-threaded Manager).
func TestSoakConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak; skipped in -short")
	}
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo := pkggraph.MustGenerate(cfg, 56)

	const workers = 8
	const rounds = 4
	const perRound = 350

	configs := []Config{
		{Alpha: 0.75, MinHash: DefaultMinHash()},
		{Alpha: 0.9, Capacity: repo.TotalSize() / 2},
	}
	for ci, cfg := range configs {
		cm, err := NewConcurrent(repo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool := specPool(repo, 300, int64(ci)+500)
		records := make([][]reqRec, workers)
		var pruneLog []pruneEvent // appends ride the write lock: totally ordered

		for round := 0; round < rounds; round++ {
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perRound; i++ {
						step := round*perRound + i
						if g == 0 && i > 0 && i%150 == 0 {
							// Worker 0 doubles as the maintenance loop.
							cm.WithExclusive(func(m *Manager) {
								ev := pruneEvent{afterClock: m.clock, maxUtil: 0.7, minServed: 2}
								if _, err := m.Prune(ev.maxUtil, ev.minServed); err != nil {
									t.Errorf("prune: %v", err)
									return
								}
								pruneLog = append(pruneLog, ev)
							})
							continue
						}
						k := (g*104729 + step*31277) % len(pool)
						if k < 0 {
							k += len(pool)
						}
						res, err := cm.Request(pool[k])
						if err != nil {
							t.Errorf("worker %d step %d: %v", g, step, err)
							return
						}
						records[g] = append(records[g], reqRec{pool[k], res})
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				t.Fatalf("config %d round %d aborted", ci, round)
			}
			cm.WithExclusive(func(m *Manager) {
				if err := m.CheckIntegrity(); err != nil {
					t.Fatalf("config %d round %d: %v", ci, round, err)
				}
			})
		}

		// Sequential oracle: replay requests in Seq order, interleaving
		// each recorded prune after the request whose clock it observed.
		var all []reqRec
		for _, rs := range records {
			all = append(all, rs...)
		}
		bySeq := make([]reqRec, len(all))
		for _, r := range all {
			bySeq[r.res.Seq-1] = r
		}
		oracleCfg := cfg
		oracle := mgr(t, repo, oracleCfg)
		pi := 0
		replayPrunes := func(clock uint64) {
			for pi < len(pruneLog) && pruneLog[pi].afterClock <= clock {
				if _, err := oracle.Prune(pruneLog[pi].maxUtil, pruneLog[pi].minServed); err != nil {
					t.Fatalf("oracle prune %d: %v", pi, err)
				}
				pi++
			}
		}
		replayPrunes(0)
		for i, rec := range bySeq {
			got, err := oracle.Request(rec.s)
			if err != nil {
				t.Fatalf("config %d oracle request %d: %v", ci, i, err)
			}
			if got != rec.res {
				t.Fatalf("config %d request %d diverges:\nconcurrent %+v\n    oracle %+v", ci, i, rec.res, got)
			}
			replayPrunes(rec.res.Seq)
		}
		if gotSt, wantSt := cm.Stats(), oracle.Stats(); gotSt != wantSt {
			t.Errorf("config %d final stats diverge:\nconcurrent %+v\n    oracle %+v", ci, gotSt, wantSt)
		}
		if got, want := stateJSON(t, cm.ExportState()), stateJSON(t, oracle.ExportState()); got != want {
			t.Errorf("config %d final state diverges:\nconcurrent %s\n    oracle %s", ci, got, want)
		}
	}
}
