package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pkggraph"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// ConcurrentManager is the multi-core front of the cache: a Manager
// made safe for concurrent use by many goroutines, with *hits* — the
// overwhelmingly common case in the paper's operational zone — served
// under a shared read lock so they scale across cores, and only
// merge/insert/evict/prune falling back to the exclusive write lock.
//
// Lock hierarchy (acquire strictly in this order, release in reverse):
//
//  1. mu (RWMutex): guards the cache *structure* — the image set,
//     image specs/sizes/signatures, the byte total. Readers may scan;
//     only writers add, remove, or resize images.
//  2. hitMu: serializes the tiny mutable remainder of a hit — the
//     logical clock, the stats counters, the image's LRU stamp and
//     hot-set window, and the commit-hook call — among concurrent
//     read-lock holders. Write-lock holders never take hitMu: the
//     write lock already excludes every reader.
//  3. Whatever lock the CommitHook takes internally (the persist
//     store's own mutex).
//
// Linearization-order guarantee: every request is stamped with a
// unique logical clock value while holding either hitMu (hits) or the
// write lock (merges/inserts), and the commit hook is invoked before
// that lock is released. Hook invocations are therefore totally
// ordered and the WAL observes mutations in exactly clock order, so
// single-threaded replay of the log (internal/persist recovery)
// reconstructs the concurrent execution byte for byte — including the
// order-sensitive float accumulation in Stats.ContainerEffSum. The
// oracle-equivalence harness (concurrent_test.go) asserts this.
//
// Tracers configured on a ConcurrentManager must be safe for
// concurrent use (telemetry.Ring, JSONLSink, and registry-backed
// tracers all are). Trace events are emitted outside hitMu and may
// arrive at the sink slightly out of Seq order.
type ConcurrentManager struct {
	mu    sync.RWMutex
	hitMu sync.Mutex
	m     *Manager

	// Contention accounting, always on (atomics are ~free next to a
	// cache scan): fast-path hits served under the read lock, and
	// write-lock acquisitions (slow-path requests plus maintenance).
	readHits  atomic.Int64
	writeAcqs atomic.Int64

	// Optional lock-wait histograms (seconds), set via
	// SetLockWaitMetrics; nil skips the clock reads.
	readWait  *telemetry.Histogram
	writeWait *telemetry.Histogram
}

// NewConcurrent validates cfg and creates an empty concurrent manager
// over repo.
func NewConcurrent(repo *pkggraph.Repo, cfg Config) (*ConcurrentManager, error) {
	m, err := NewManager(repo, cfg)
	if err != nil {
		return nil, err
	}
	return &ConcurrentManager{m: m}, nil
}

// Concurrent wraps an existing single-threaded Manager (typically one
// just rebuilt by crash recovery, before any goroutine touches it).
// The Manager must not be used directly afterwards except through
// WithExclusive.
func Concurrent(m *Manager) *ConcurrentManager {
	return &ConcurrentManager{m: m}
}

// SetLockWaitMetrics installs histograms observing the time spent
// waiting to acquire the read lock (fast path) and the write lock
// (slow path and maintenance). Call before serving; not safe to call
// concurrently with requests.
func (c *ConcurrentManager) SetLockWaitMetrics(read, write *telemetry.Histogram) {
	c.readWait = read
	c.writeWait = write
}

// ReadHits returns how many requests were served entirely under the
// read lock.
func (c *ConcurrentManager) ReadHits() int64 { return c.readHits.Load() }

// WriteLockAcquisitions returns how many times the exclusive write
// lock has been taken (slow-path requests, prunes, checkpoints,
// restores). Read-only endpoints riding the read path leave it
// untouched — the regression tests assert exactly that.
func (c *ConcurrentManager) WriteLockAcquisitions() int64 { return c.writeAcqs.Load() }

// rlock acquires the read lock, timing the wait when metrics are on.
func (c *ConcurrentManager) rlock() {
	if c.readWait != nil {
		start := time.Now()
		c.mu.RLock()
		c.readWait.Observe(time.Since(start).Seconds())
		return
	}
	c.mu.RLock()
}

// lock acquires the write lock, timing the wait when metrics are on.
func (c *ConcurrentManager) lock() {
	if c.writeWait != nil {
		start := time.Now()
		c.mu.Lock()
		c.writeWait.Observe(time.Since(start).Seconds())
	} else {
		c.mu.Lock()
	}
	c.writeAcqs.Add(1)
}

// Request runs Algorithm 1 for specification s, concurrently safe.
//
// Fast path: under the read lock, scan for an image with s ⊆ i. A hit
// only refreshes LRU/stats/hot-set state, so it commits under hitMu
// without ever taking the write lock — concurrent hits on a multi-core
// head node proceed in parallel through the scan, which dominates the
// cost. Miss: fall back to the write lock and re-run the full
// algorithm (the superset check must be re-decided under exclusion —
// another writer may have inserted a satisfying image in the window
// between the two locks).
func (c *ConcurrentManager) Request(s spec.Spec) (Result, error) {
	return c.RequestCtx(context.Background(), s)
}

// RequestCtx is Request with deadline/cancellation awareness: the
// context is checked before the fast path, before queueing on the
// write lock, and again immediately after acquiring it — an expired
// request aborts *before* mutating anything, never mid-merge. Once the
// slow-path algorithm starts, it runs to completion (a half-applied
// merge is worse than a late one); expiry between the WAL append and
// the response is the client's problem, which is exactly why the
// durability audit counts only acked responses.
func (c *ConcurrentManager) RequestCtx(ctx context.Context, s spec.Spec) (Result, error) {
	if s.Empty() {
		return Result{}, errEmptySpec()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m := c.m
	// Span tracing rides the context: the server attaches the request's
	// ActiveTrace and every layer below records into it. A nil trace
	// (untraced callers, benchmarks) costs one branch per span site.
	at := telemetry.TraceFromContext(ctx)
	// Pure pre-computation: no locks needed, Repo and Spec are
	// immutable. The fast path defers signing entirely — a hit never
	// needs it, and the slow path (RequestTraced) signs with its own
	// scratch. Scratch is drawn per request: concurrent read-lock
	// holders scan simultaneously and must not share buffers.
	var sig similarity.Signature
	var sc *scratch
	if m.fast != nil {
		sc = m.fast.get(s)
		defer m.fast.put(sc)
	} else {
		sig = m.sign(s)
	}
	reqBytes := s.Size(m.repo)

	var start time.Time
	var ev *telemetry.Event
	if m.cfg.Tracer != nil {
		start = time.Now()
		ev = &telemetry.Event{SpecPackages: s.Len(), RequestBytes: reqBytes, TraceID: at.TraceID()}
	}

	rlSpan := at.Begin(telemetry.StageLockWaitRead, at.Root())
	c.rlock()
	at.End(rlSpan)
	scanSpan := at.Begin(telemetry.StageSupersetScan, at.Root())
	var img *Image
	if sc != nil {
		img = m.findSupersetFast(s, sc, ev)
	} else {
		img = m.findSuperset(s, sig, ev)
	}
	if ev != nil {
		at.AttrInt(scanSpan, "scanned", int64(ev.SupersetScanned))
	}
	at.End(scanSpan)
	if img != nil {
		hitSpan := at.Begin(telemetry.StageHit, at.Root())
		c.hitMu.Lock()
		clock := m.tick()
		img.lastUse = clock
		img.served(s)
		m.stats.Requests++
		m.stats.Hits++
		m.stats.RequestedBytes += reqBytes
		res := Result{
			Seq:          clock,
			Op:           OpHit,
			ImageID:      img.ID,
			ImageVersion: img.Version,
			ImageSize:    img.Size,
			RequestBytes: reqBytes,
		}
		m.stats.ContainerEffSum += res.ContainerEfficiency()
		// The hook must run before hitMu is released so the WAL sees
		// touches in clock order (see the linearization guarantee above).
		ws := at.Begin(telemetry.StageWALAppend, hitSpan)
		m.commit(Mutation{Kind: MutTouch, ImageID: img.ID, LastUse: clock, RequestBytes: reqBytes})
		at.End(ws)
		c.hitMu.Unlock()
		at.EndInt(hitSpan, "image_id", int64(img.ID))
		c.readHits.Add(1)
		if ev != nil {
			ev.Seq = res.Seq
			m.trace(ev, res, start)
		}
		c.mu.RUnlock()
		return res, nil
	}
	c.mu.RUnlock()

	// Slow path: the full algorithm under exclusion. Reuses the
	// single-threaded Request verbatim — including its own phase-1
	// rescan — so the decision procedure has exactly one
	// implementation. The second ctx check catches deadlines that
	// expired while this request queued behind the write lock — the
	// common shape under overload, and the window where aborting still
	// costs nothing.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	wlSpan := at.Begin(telemetry.StageLockWaitWrite, at.Root())
	c.lock()
	at.End(wlSpan)
	if err := ctx.Err(); err != nil {
		c.mu.Unlock()
		return Result{}, err
	}
	res, err := m.RequestTraced(s, at)
	c.mu.Unlock()
	return res, err
}

// PeekHit answers "would this spec hit?" with zero mutation: no clock
// bump, no stats, no LRU touch, no commit-hook call. It exists for
// degraded-mode serving — when the WAL is broken the server may still
// answer superset hits from memory, but it must not generate mutations
// it cannot make durable. The returned Result carries Seq 0 since the
// request was never linearized into the mutation order.
func (c *ConcurrentManager) PeekHit(s spec.Spec) (Result, bool) {
	if s.Empty() {
		return Result{}, false
	}
	m := c.m
	reqBytes := s.Size(m.repo)
	var img *Image
	c.rlock()
	defer c.mu.RUnlock()
	if m.fast != nil {
		sc := m.fast.get(s)
		img = m.findSupersetFast(s, sc, nil)
		m.fast.put(sc)
	} else {
		img = m.findSuperset(s, m.sign(s), nil)
	}
	if img == nil {
		return Result{}, false
	}
	return Result{
		Op:           OpHit,
		ImageID:      img.ID,
		ImageVersion: img.Version,
		ImageSize:    img.Size,
		RequestBytes: reqBytes,
	}, true
}

// WithShared runs fn with the cache quiescent for reading: the read
// lock plus hitMu, so the image set, stats, clock, and LRU stamps are
// all stable for the duration. Concurrent hits wait (briefly — keep fn
// short); merges and inserts wait on the read lock.
func (c *ConcurrentManager) WithShared(fn func(m *Manager)) {
	c.rlock()
	c.hitMu.Lock()
	defer func() {
		c.hitMu.Unlock()
		c.mu.RUnlock()
	}()
	fn(c.m)
}

// WithExclusive runs fn as the sole user of the underlying Manager —
// the escape hatch for maintenance that must see and mutate a frozen
// cache: prune passes, checkpoints (export state + WAL rotation with
// no mutation in between), restores. fn must not retain m.
func (c *ConcurrentManager) WithExclusive(fn func(m *Manager)) {
	c.lock()
	defer c.mu.Unlock()
	fn(c.m)
}

// Stats returns a copy of the accumulated counters.
func (c *ConcurrentManager) Stats() Stats {
	c.rlock()
	c.hitMu.Lock()
	st := c.m.stats
	c.hitMu.Unlock()
	c.mu.RUnlock()
	return st
}

// Len returns the number of cached images.
func (c *ConcurrentManager) Len() int {
	c.rlock()
	defer c.mu.RUnlock()
	return c.m.Len()
}

// TotalData returns the summed size of all cached images.
func (c *ConcurrentManager) TotalData() int64 {
	c.rlock()
	defer c.mu.RUnlock()
	return c.m.TotalData()
}

// UniqueData returns the size of the union of all cached images'
// package sets.
func (c *ConcurrentManager) UniqueData() int64 {
	c.rlock()
	defer c.mu.RUnlock()
	return c.m.UniqueData()
}

// CacheEfficiency returns UniqueData/TotalData.
func (c *ConcurrentManager) CacheEfficiency() float64 {
	c.rlock()
	defer c.mu.RUnlock()
	return c.m.CacheEfficiency()
}

// Alpha returns the configured merge threshold.
func (c *ConcurrentManager) Alpha() float64 { return c.m.Alpha() }

// Capacity returns the current byte budget (zero or negative means
// unlimited). Under a ShardedManager the balancer moves it between
// maintenance passes, so successive reads may differ.
func (c *ConcurrentManager) Capacity() int64 {
	c.rlock()
	defer c.mu.RUnlock()
	return c.m.Capacity()
}

// Snapshot captures every cached image (see Manager.Snapshot).
func (c *ConcurrentManager) Snapshot() []ImageSnapshot {
	var snaps []ImageSnapshot
	c.WithShared(func(m *Manager) { snaps = m.Snapshot() })
	return snaps
}

// ExportState captures the full manager state for checkpointing. For a
// checkpoint that must stay consistent with the WAL, use WithExclusive
// and run the export and the log rotation under the same critical
// section.
func (c *ConcurrentManager) ExportState() ManagerState {
	var st ManagerState
	c.WithShared(func(m *Manager) { st = m.ExportState() })
	return st
}

// Images returns image rows for read-only listings. Unlike
// Manager.Images, the returned values are copies: live *Image fields
// mutate under locks the caller does not hold.
func (c *ConcurrentManager) Images() []Image {
	c.rlock()
	c.hitMu.Lock()
	defer func() {
		c.hitMu.Unlock()
		c.mu.RUnlock()
	}()
	out := make([]Image, 0, len(c.m.byID))
	for _, img := range c.m.images {
		if img != nil {
			out = append(out, *img)
		}
	}
	return out
}

// Prune runs a split pass under the write lock (see Manager.Prune).
func (c *ConcurrentManager) Prune(maxUtilization float64, minServed int) ([]SplitResult, error) {
	var out []SplitResult
	var err error
	c.WithExclusive(func(m *Manager) { out, err = m.Prune(maxUtilization, minServed) })
	return out, err
}

// Restore loads a snapshot into an empty cache (see Manager.Restore).
func (c *ConcurrentManager) Restore(snaps []ImageSnapshot) error {
	var err error
	c.WithExclusive(func(m *Manager) { err = m.Restore(snaps) })
	return err
}

// Tracer returns the configured request tracer (nil when disabled).
func (c *ConcurrentManager) Tracer() telemetry.Tracer { return c.m.Tracer() }
