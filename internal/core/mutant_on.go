//go:build landlord_mutants

package core

import (
	"os"
	"sync"
)

// Mutants compiled in under the landlord_mutants tag, selected by the
// LANDLORD_MUTANT environment variable. Each one breaks exactly one
// invariant of Algorithm 1 so internal/check can prove its detectors
// fire:
//
//	superset  — hits accept images missing one requested package
//	threshold — merges accept distances up to α+0.2
//	conflict  — merges skip the conflict-policy check
//	lru       — eviction removes the most recently used image
//	capacity  — eviction tolerates 25% overflow
//	touch     — hits do not refresh the image's LRU stamp
//	route     — the shard router sends some specs to the wrong shard
//	balance   — the balancer double-counts bytes freed by its previous
//	            shrink pass, inflating the budget pool past capacity
//	intern    — the package interner aliases two packages to one bit
//	            position (an intern collision): fast-path bitsets see
//	            them as the same package
//	popcount  — the fast path's intersection popcount undercounts by
//	            one, skewing every interned Jaccard distance
//	lshmiss   — the band index drops its first candidate, so the
//	            fast-path merge scan can miss the true closest target
var (
	mutantOnce sync.Once
	mutantName string
)

// mutantEnabled reports whether the named mutant was selected via
// LANDLORD_MUTANT. An empty or unset variable disables all mutants, so
// a -tags landlord_mutants binary behaves identically to a normal one
// until a mutant is requested.
func mutantEnabled(name string) bool {
	mutantOnce.Do(func() { mutantName = os.Getenv("LANDLORD_MUTANT") })
	return mutantName == name
}
