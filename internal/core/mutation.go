package core

import (
	"fmt"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Durable mutation log support.
//
// Algorithm 1 mutates the cache in exactly five ways: a hit refreshes
// an image's LRU position, a merge rewrites an image, an insert
// creates one, eviction deletes one, and a prune pass splits one. The
// CommitHook receives a Mutation describing each of these as it is
// applied, in application order, which is exactly what a write-ahead
// log needs to reconstruct the manager after a crash
// (internal/persist). ApplyMutation is the replay side: it re-applies
// a logged Mutation without re-running Algorithm 1's decisions, so
// recovery reproduces the logged outcomes byte for byte regardless of
// tie-breaking order.

// MutationKind identifies one of the five state-changing operations.
type MutationKind string

// The mutation kinds, named after the cache operations that emit them.
const (
	MutInsert MutationKind = "insert"
	MutMerge  MutationKind = "merge"
	MutTouch  MutationKind = "touch" // a hit: LRU refresh only
	MutDelete MutationKind = "delete"
	MutSplit  MutationKind = "split"
)

// Mutation is one durable state change. Fields record the image's
// state *after* the operation (absolute values, not deltas), so replay
// is insensitive to how the live manager arrived at them.
type Mutation struct {
	Kind    MutationKind `json:"kind"`
	ImageID uint64       `json:"image_id"`
	// LastUse is the logical clock stamped on the image (touch, merge,
	// insert). Replay advances the manager clock to at least this value.
	LastUse uint64 `json:"last_use,omitempty"`
	// Version and Merges are the image's counters after the operation.
	Version uint64 `json:"version,omitempty"`
	Merges  int    `json:"merges,omitempty"`
	// RequestBytes is the size of the request that caused the mutation
	// (touch, merge, insert); replay uses it to rebuild the I/O
	// accounting exactly.
	RequestBytes int64 `json:"request_bytes,omitempty"`
	// Packages are the image's package keys after the operation
	// (insert, merge, split). Keys, not IDs, so logs survive repository
	// reloads.
	Packages []string `json:"packages,omitempty"`
}

// CommitHook receives each Mutation immediately after it is applied
// in memory, from the goroutine driving the Manager. A nil hook costs
// one branch per mutation. Implementations must not retain the
// Packages slice beyond the call if they mutate it.
type CommitHook interface {
	Commit(mut Mutation)
}

// commit delivers mut to the configured hook, if any.
func (m *Manager) commit(mut Mutation) {
	if m.cfg.Commit != nil {
		m.cfg.Commit.Commit(mut)
	}
}

// keysOf renders a specification as portable package keys.
func (m *Manager) keysOf(s spec.Spec) []string {
	keys := make([]string, 0, s.Len())
	for _, id := range s.IDs() {
		keys = append(keys, m.repo.Package(id).Key())
	}
	return keys
}

// specFromKeys resolves package keys against the repository.
func (m *Manager) specFromKeys(keys []string) (spec.Spec, error) {
	ids := make([]pkggraph.PkgID, 0, len(keys))
	for _, key := range keys {
		id, ok := m.repo.Lookup(key)
		if !ok {
			return spec.Spec{}, fmt.Errorf("core: unknown package %q", key)
		}
		ids = append(ids, id)
	}
	return spec.New(ids), nil
}

// ApplyMutation re-applies one logged mutation during recovery. It
// never invokes the commit hook, never evicts (deletions are replayed
// explicitly), and does not rebuild hot-set windows (split tracking
// restarts fresh after recovery). The stats it accumulates match what
// the live manager recorded for the same operations.
func (m *Manager) ApplyMutation(mut Mutation) error {
	switch mut.Kind {
	case MutTouch:
		img, ok := m.byID[mut.ImageID]
		if !ok {
			return fmt.Errorf("core: touch of unknown image %d", mut.ImageID)
		}
		img.lastUse = mut.LastUse
		m.bumpClock(mut.LastUse)
		m.stats.Requests++
		m.stats.Hits++
		m.stats.RequestedBytes += mut.RequestBytes
		m.stats.ContainerEffSum += Result{ImageSize: img.Size, RequestBytes: mut.RequestBytes}.ContainerEfficiency()
		return nil

	case MutInsert:
		if _, ok := m.byID[mut.ImageID]; ok {
			return fmt.Errorf("core: insert of already-live image %d", mut.ImageID)
		}
		s, err := m.specFromKeys(mut.Packages)
		if err != nil {
			return fmt.Errorf("core: replaying insert of image %d: %w", mut.ImageID, err)
		}
		if s.Empty() {
			return fmt.Errorf("core: replaying insert of image %d: empty spec", mut.ImageID)
		}
		img := &Image{
			ID:      mut.ImageID,
			Spec:    s,
			Size:    s.Size(m.repo),
			Version: mut.Version,
			Merges:  mut.Merges,
			lastUse: mut.LastUse,
			sig:     m.sign(s),
			hot:     s,
		}
		m.appendImage(img)
		m.indexInsert(img)
		m.total += img.Size
		if mut.ImageID >= m.nextID {
			m.nextID = mut.ImageID + m.stride()
			m.alignNextID()
		}
		m.bumpClock(mut.LastUse)
		m.stats.Requests++
		m.stats.Inserts++
		m.stats.BytesWritten += img.Size
		m.stats.RequestedBytes += mut.RequestBytes
		m.stats.ContainerEffSum += Result{ImageSize: img.Size, RequestBytes: mut.RequestBytes}.ContainerEfficiency()
		return nil

	case MutMerge:
		img, ok := m.byID[mut.ImageID]
		if !ok {
			return fmt.Errorf("core: merge into unknown image %d", mut.ImageID)
		}
		s, err := m.specFromKeys(mut.Packages)
		if err != nil {
			return fmt.Errorf("core: replaying merge into image %d: %w", mut.ImageID, err)
		}
		m.total -= img.Size
		img.Spec = s
		img.Size = s.Size(m.repo)
		img.Version = mut.Version
		img.Merges = mut.Merges
		img.lastUse = mut.LastUse
		img.sig = m.sign(s)
		m.indexUpdate(img)
		m.refreshBits(img)
		m.total += img.Size
		m.bumpClock(mut.LastUse)
		m.stats.Requests++
		m.stats.Merges++
		m.stats.BytesWritten += img.Size
		m.stats.RequestedBytes += mut.RequestBytes
		m.stats.ContainerEffSum += Result{ImageSize: img.Size, RequestBytes: mut.RequestBytes}.ContainerEfficiency()
		return nil

	case MutDelete:
		img, ok := m.byID[mut.ImageID]
		if !ok {
			return fmt.Errorf("core: delete of unknown image %d", mut.ImageID)
		}
		for i, cur := range m.images {
			if cur == img {
				m.images[i] = nil
				break
			}
		}
		delete(m.byID, img.ID)
		m.indexRemove(img.ID)
		m.total -= img.Size
		m.stats.Deletes++
		m.compact()
		return nil

	case MutSplit:
		img, ok := m.byID[mut.ImageID]
		if !ok {
			return fmt.Errorf("core: split of unknown image %d", mut.ImageID)
		}
		s, err := m.specFromKeys(mut.Packages)
		if err != nil {
			return fmt.Errorf("core: replaying split of image %d: %w", mut.ImageID, err)
		}
		m.total -= img.Size
		img.Spec = s
		img.Size = s.Size(m.repo)
		img.Version = mut.Version
		img.sig = m.sign(s)
		m.indexUpdate(img)
		m.refreshBits(img)
		img.resetHot()
		m.total += img.Size
		m.stats.Splits++
		m.stats.BytesWritten += img.Size
		return nil

	default:
		return fmt.Errorf("core: unknown mutation kind %q", mut.Kind)
	}
}

// bumpClock advances the logical clock to at least t.
func (m *Manager) bumpClock(t uint64) {
	if t > m.clock {
		m.clock = t
	}
}
