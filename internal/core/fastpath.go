package core

import (
	"slices"
	"sync"

	"repro/internal/pkggraph"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// The interned hot path.
//
// Algorithm 1's decision procedure is two scans: the hit path tests
// s ⊆ image per candidate image, and the miss path computes Jaccard
// distances to every surviving candidate. The reference pipeline walks
// sorted []PkgID slices for both. The fast path (default on; Config.
// NoFastPath selects the reference) keeps an interned bitset per image
// so containment is a word-wise AND-NOT loop, intersection cardinality
// is popcount over AND, and the per-request state (dense query words,
// MinHash signature, candidate buffers) lives in a sync.Pool so the
// steady-state hit path performs zero heap allocations.
//
// The miss path also flips the LSH band index from prefilter to
// primary candidate source: instead of walking every image and asking
// "is it banded?", the band buckets are enumerated directly and
// resolved through byID, so a merge scan touches only images sharing
// at least one MinHash position. Candidates are then ordered by each
// image's insertion ordinal (Image.ord), which reproduces the
// reference scan's iteration order exactly — including after
// ImportState/Restore re-sort the image slice by last use — so the
// stable distance sort breaks ties identically and the two pipelines
// pick the same target on every request. The differential rig
// (internal/check.RunDifferential) replays every seeded stream through
// both pipelines and asserts byte-identical ExportState; CheckIntegrity
// audits bitset/spec round-trips and ordinal monotonicity continuously.

// fastPath is the per-manager state of the interned pipeline.
type fastPath struct {
	intern *spec.Interner
	pool   sync.Pool // *scratch
}

// scratch is the pooled per-request working set. Requests under
// ConcurrentManager's shared read lock scan concurrently, so scratch
// must be drawn per request, never stored per manager.
type scratch struct {
	words []uint64             // dense form of the request spec
	sig   similarity.Signature // pooled signature storage (miss path)
	band  []uint64             // band-candidate IDs (miss path)
	imgs  []*Image             // resolved band candidates (miss path)
	cands []candidate          // surviving merge candidates (miss path)
}

// newFastPath builds the interner for repo. The "intern" mutant
// aliases two packages at construction — the intern-collision seed bug
// CheckIntegrity's round-trip audit and the differential oracle must
// catch.
func newFastPath(repo *pkggraph.Repo) *fastPath {
	f := &fastPath{intern: spec.NewInterner(repo)}
	if mutantEnabled("intern") && repo.Len() >= 2 {
		f.intern.Alias(1, 0)
	}
	f.pool.New = func() any { return &scratch{} }
	return f
}

// get draws a scratch from the pool with the request's dense words
// filled in. Callers must put it back on every return path.
func (f *fastPath) get(s spec.Spec) *scratch {
	sc := f.pool.Get().(*scratch)
	sc.words = f.intern.DenseInto(sc.words, s)
	return sc
}

// put returns a scratch to the pool. The buffers keep their capacity,
// which is what makes the steady state allocation-free.
func (f *fastPath) put(sc *scratch) { f.pool.Put(sc) }

// signScratch computes the request signature into pooled storage, or
// returns nil when MinHash is disabled. The returned signature is only
// valid until the scratch is put back; anything that outlives the
// request (an inserted image's sig) must copy it.
func (m *Manager) signScratch(sc *scratch, s spec.Spec) similarity.Signature {
	if m.hasher == nil {
		return nil
	}
	if len(sc.sig) != m.hasher.K() {
		sc.sig = make(similarity.Signature, m.hasher.K())
	}
	return m.hasher.SignInto(sc.sig, s)
}

// refreshBits re-interns an image's spec after any content change
// (insert, merge, split, replay, import). A no-op in reference mode.
func (m *Manager) refreshBits(img *Image) {
	if m.fast != nil {
		img.bits = m.fast.intern.BitsetOf(img.Spec)
	}
}

// appendImage adds img to the live set, stamping the insertion ordinal
// that keeps band-candidate enumeration in scan order, and interning
// its spec. Every append goes through here.
func (m *Manager) appendImage(img *Image) {
	img.ord = m.ordSrc
	m.ordSrc++
	m.refreshBits(img)
	m.images = append(m.images, img)
	m.byID[img.ID] = img
}

// reorderOrds reassigns insertion ordinals to match the current image
// slice order. ImportState and Restore call it after re-sorting the
// slice by last use: scan order changed, so the ordinals must follow.
func (m *Manager) reorderOrds() {
	for i, img := range m.images {
		img.ord = uint64(i)
	}
	m.ordSrc = uint64(len(m.images))
}

// findSupersetFast is findSuperset over interned bitsets: the same
// scan order, size gating, and scan accounting, with the subset test a
// word-wise AND-NOT against the pooled query words. No signature
// prefilter is needed — the bitset test is exact and cheaper than the
// sketch comparison it replaced.
func (m *Manager) findSupersetFast(s spec.Spec, sc *scratch, ev *telemetry.Event) *Image {
	var best *Image
	scanned := 0
	reqLen := s.Len()
	for _, img := range m.images {
		if img == nil || img.Spec.Len() < reqLen {
			continue
		}
		if best != nil && img.Size >= best.Size {
			continue
		}
		scanned++
		if img.bits.SupersetOfWords(sc.words, reqLen) {
			best = img
		} else if mutantEnabled("superset") && img.bits.IntersectWords(sc.words) >= reqLen-1 {
			best = img
		}
	}
	if ev != nil {
		ev.SupersetScanned = scanned
	}
	return best
}

// distFast is similarity.JaccardDistance computed from the interned
// representation: popcount intersection, identical integers, identical
// float expression — bit-for-bit the reference distance. Both sets are
// non-empty here (requests and image specs are validated non-empty).
func (m *Manager) distFast(s spec.Spec, img *Image, sc *scratch) float64 {
	inter := img.bits.IntersectWords(sc.words)
	if mutantEnabled("popcount") && inter > 0 {
		inter-- // seeded popcount-off-by-one bug
	}
	union := s.Len() + img.Spec.Len() - inter
	return 1 - float64(inter)/float64(union)
}

// findMergeTargetFast is findMergeTarget with the band index promoted
// from prefilter to primary candidate source. When the index applies
// (MinHash on, alpha+margin ≤ 1), candidates come straight out of the
// band buckets — an image sharing no signature position has estimated
// distance exactly 1 and would be margin-rejected anyway — so the scan
// touches only banded images and there is no fallback rescan of the
// full image slice when the buckets come up empty (the reference
// pipeline's redundant O(images) walk in that case; pinned equivalent
// by TestMergeFallbackEmptyBands). Candidates are ordered by insertion
// ordinal so the stable sort ties break exactly as the linear scan's
// would. When the index does not apply the linear scan runs with
// interned distances.
func (m *Manager) findMergeTargetFast(s spec.Spec, sig similarity.Signature, sc *scratch, ev *telemetry.Event) *Image {
	alpha := m.cfg.Alpha
	if mutantEnabled("threshold") {
		alpha += 0.2
	}
	sc.cands = sc.cands[:0]
	banded := false
	if sig != nil && m.bandIndex != nil && m.cfg.Alpha+m.cfg.MinHash.Margin <= 1 {
		ids, err := m.bandIndex.CandidatesAppend(sig, sc.band[:0])
		if cap(ids) > cap(sc.band) {
			sc.band = ids
		}
		if err == nil {
			banded = true
			if mutantEnabled("lshmiss") && len(ids) > 0 {
				ids = ids[1:] // seeded LSH-candidate-miss bug
			}
			sc.imgs = sc.imgs[:0]
			for _, id := range ids {
				if img := m.byID[id]; img != nil {
					sc.imgs = append(sc.imgs, img)
				}
			}
			slices.SortFunc(sc.imgs, func(a, b *Image) int {
				switch {
				case a.ord < b.ord:
					return -1
				case a.ord > b.ord:
					return 1
				}
				return 0
			})
			if ev != nil {
				// Non-banded live images are exactly what the reference
				// pipeline counts as prefilter rejections.
				ev.PrefilterRejected += len(m.byID) - len(sc.imgs)
			}
			for _, img := range sc.imgs {
				est := similarity.EstimateDistance(sig, img.sig)
				if est >= m.cfg.Alpha+m.cfg.MinHash.Margin {
					if ev != nil {
						ev.PrefilterRejected++
					}
					continue
				}
				if ev != nil {
					ev.PrefilterAccepted++
				}
				if d := m.distFast(s, img, sc); d < alpha {
					sc.cands = append(sc.cands, candidate{img, d})
				}
			}
		}
	}
	if !banded {
		for _, img := range m.images {
			if img == nil {
				continue
			}
			if sig != nil {
				est := similarity.EstimateDistance(sig, img.sig)
				if est >= m.cfg.Alpha+m.cfg.MinHash.Margin {
					if ev != nil {
						ev.PrefilterRejected++
					}
					continue
				}
				if ev != nil {
					ev.PrefilterAccepted++
				}
			}
			if d := m.distFast(s, img, sc); d < alpha {
				sc.cands = append(sc.cands, candidate{img, d})
			}
		}
	}
	return m.pickMergeTarget(s, sc.cands, ev)
}
