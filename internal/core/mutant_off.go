//go:build !landlord_mutants

package core

// mutantEnabled reports whether a named invariant mutant is active.
// In normal builds it is a constant false the compiler erases, so the
// mutant hooks in core.go cost nothing. Build with -tags
// landlord_mutants (see mutant_on.go) to select a mutant at run time;
// internal/check's self-test does exactly that to prove the harness
// detects each class of violation.
func mutantEnabled(string) bool { return false }
