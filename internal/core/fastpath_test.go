package core

import (
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/workload"
)

// refConfig strips cfg down to the string-set reference pipeline: no
// interned fast path, no band index. Everything else is shared, so any
// observable difference between the two managers is the fast path's.
func refConfig(cfg Config) Config {
	cfg.NoFastPath = true
	cfg.NoBandIndex = true
	return cfg
}

// TestFastPathMatchesReference is the in-package smoke version of the
// full differential rig (internal/check): a few hundred dep-closure
// requests through the fast and reference pipelines must agree on
// every Result and on the final exported state. The heavier rig covers
// sharding, conflicts, pruning, and adversarial streams.
func TestFastPathMatchesReference(t *testing.T) {
	repo := concRepo(t)
	for _, mh := range []*MinHashConfig{nil, DefaultMinHash()} {
		cfg := Config{Alpha: 0.6, Capacity: repo.TotalSize() / 3, MinHash: mh}
		fast := mgr(t, repo, cfg)
		ref := mgr(t, repo, refConfig(cfg))
		if fast.fast == nil {
			t.Fatal("fast path not enabled by default")
		}
		if ref.fast != nil {
			t.Fatal("NoFastPath did not disable the fast path")
		}
		gen := workload.NewDepClosure(repo, 42)
		for i := 0; i < 300; i++ {
			s := gen.Next()
			fr := request(t, fast, s)
			rr := request(t, ref, s)
			if fr != rr {
				t.Fatalf("minhash=%v request %d: fast %+v, reference %+v", mh != nil, i, fr, rr)
			}
		}
		if err := fast.CheckIntegrity(); err != nil {
			t.Fatalf("minhash=%v: %v", mh != nil, err)
		}
		if !reflect.DeepEqual(fast.ExportState(), ref.ExportState()) {
			t.Fatalf("minhash=%v: final states diverge", mh != nil)
		}
	}
}

// TestMergeFallbackEmptyBands pins the empty-bands merge behaviour the
// fast path fixed: when the band index yields no candidate for a
// request (here: totally disjoint from every cached image), the merge
// phase concludes with an insert directly — no redundant full rescan —
// and its trace is indistinguishable from the reference linear scan's:
// same outcome, same prefilter counts, zero candidates.
func TestMergeFallbackEmptyBands(t *testing.T) {
	repo := flatRepo(t, 128, 1)
	ft, rt := &collectTracer{}, &collectTracer{}
	cfg := Config{Alpha: 0.4, MinHash: DefaultMinHash()}
	cfg.Tracer = ft
	fast := mgr(t, repo, cfg)
	cfg.Tracer = rt
	ref := mgr(t, repo, refConfig(cfg))

	reqs := []spec.Spec{
		sp(0, 1, 2, 3, 4, 5, 6, 7),         // insert: cache empty, bands empty
		sp(20, 21, 22, 23, 24, 25, 26, 27), // insert: disjoint, zero band candidates
		sp(40, 41, 42, 43, 44, 45, 46, 47), // insert: still no shared bands
		sp(20, 21, 22, 23, 24, 25, 26, 28), // merge: 7 of 8 shared with image 1 (d=2/9 < α)
	}
	wantOps := []Op{OpInsert, OpInsert, OpInsert, OpMerge}
	for i, s := range reqs {
		fr := request(t, fast, s)
		rr := request(t, ref, s)
		if fr != rr {
			t.Fatalf("request %d: fast %+v, reference %+v", i, fr, rr)
		}
		if fr.Op != wantOps[i] {
			t.Fatalf("request %d: op %s, want %s", i, fr.Op, wantOps[i])
		}
	}
	if len(ft.events) != len(rt.events) {
		t.Fatalf("event counts: fast %d, reference %d", len(ft.events), len(rt.events))
	}
	for i := range ft.events {
		fe, re := ft.events[i], rt.events[i]
		if fe.Op != re.Op || fe.SupersetScanned != re.SupersetScanned ||
			fe.PrefilterAccepted != re.PrefilterAccepted || fe.PrefilterRejected != re.PrefilterRejected ||
			len(fe.Candidates) != len(re.Candidates) {
			t.Fatalf("event %d diverges:\n  fast: %+v\n   ref: %+v", i, fe, re)
		}
	}
	// The empty-bands inserts must not have manufactured candidates.
	for i := 1; i <= 2; i++ {
		if n := len(ft.events[i].Candidates); n != 0 {
			t.Fatalf("disjoint request %d produced %d merge candidates", i, n)
		}
	}
}

// TestOrdSurvivesSnapshotRoundTrip pins the insertion-ordinal
// bookkeeping the fast path's band enumeration depends on for
// stable-sort tie-breaking: after ImportState (and Restore), the
// ordinals must be strictly increasing in image order — CheckIntegrity
// enforces this — and the imported manager must keep answering
// identically to the donor.
func TestOrdSurvivesSnapshotRoundTrip(t *testing.T) {
	repo := concRepo(t)
	cfg := Config{Alpha: 0.6, Capacity: repo.TotalSize() / 3, MinHash: DefaultMinHash()}
	m := mgr(t, repo, cfg)
	gen := workload.NewDepClosure(repo, 7)
	for i := 0; i < 200; i++ {
		request(t, m, gen.Next())
	}

	imported := mgr(t, repo, cfg)
	if err := imported.ImportState(m.ExportState()); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if err := imported.CheckIntegrity(); err != nil {
		t.Fatalf("after ImportState: %v", err)
	}
	restored := mgr(t, repo, cfg)
	if err := restored.Restore(m.Snapshot()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := restored.CheckIntegrity(); err != nil {
		t.Fatalf("after Restore: %v", err)
	}

	// The donor and the imported copy must stay in lockstep on fresh
	// traffic — ordinals reorder deterministically on import, so band
	// tie-breaking must still agree.
	for i := 0; i < 100; i++ {
		s := gen.Next()
		a := request(t, m, s)
		b := request(t, imported, s)
		if a != b {
			t.Fatalf("request %d after import: donor %+v, imported %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(m.ExportState(), imported.ExportState()) {
		t.Fatal("donor and imported states diverge after further traffic")
	}
}

