package core

import (
	"fmt"
	"sort"
)

// checkInvariants validates the Manager's internal consistency; it is
// compiled only into tests. Any violation is a bug regardless of the
// workload that produced it.
func (m *Manager) checkInvariants() error {
	var total int64
	live := 0
	seen := make(map[uint64]bool)
	for _, img := range m.images {
		if img == nil {
			continue
		}
		live++
		if seen[img.ID] {
			return fmt.Errorf("duplicate image ID %d in slice", img.ID)
		}
		seen[img.ID] = true
		if m.byID[img.ID] != img {
			return fmt.Errorf("byID[%d] does not point at the slice entry", img.ID)
		}
		if img.Spec.Empty() {
			return fmt.Errorf("image %d has an empty spec", img.ID)
		}
		if got := img.Spec.Size(m.repo); got != img.Size {
			return fmt.Errorf("image %d cached size %d != recomputed %d", img.ID, img.Size, got)
		}
		ids := img.Spec.IDs()
		if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
			return fmt.Errorf("image %d spec not sorted", img.ID)
		}
		if img.lastUse > m.clock {
			return fmt.Errorf("image %d lastUse %d beyond clock %d", img.ID, img.lastUse, m.clock)
		}
		if m.hasher != nil {
			want := m.hasher.Sign(img.Spec)
			for i := range want {
				if img.sig[i] != want[i] {
					return fmt.Errorf("image %d signature stale at position %d", img.ID, i)
				}
			}
		}
		total += img.Size
	}
	if live != len(m.byID) {
		return fmt.Errorf("live images %d != byID size %d", live, len(m.byID))
	}
	if total != m.total {
		return fmt.Errorf("cached total %d != recomputed %d", m.total, total)
	}
	st := m.stats
	if st.Hits+st.Inserts+st.Merges != st.Requests {
		return fmt.Errorf("ops %d+%d+%d do not partition %d requests", st.Hits, st.Inserts, st.Merges, st.Requests)
	}
	return nil
}
