package core

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// CheckIntegrity validates the Manager's internal consistency: the
// image slice and byID index agree, cached sizes and the byte total
// match a recomputation from the repository, specs are canonical,
// LRU stamps never run ahead of the clock, MinHash signatures are
// fresh, and the operation counters partition the request count. Any
// violation is a bug regardless of the workload that produced it.
//
// The simulation harness (internal/check) calls this after every
// mutation it drives; it is cheap enough (one pass over the cache) to
// run continuously in tests but is not intended for the serving path.
//
// Callers holding a ConcurrentManager must go through
// ConcurrentManager.CheckIntegrity, which quiesces the cache first.
func (m *Manager) CheckIntegrity() error {
	var total int64
	live := 0
	seen := make(map[uint64]bool)
	var prevOrd uint64
	ordSeen := false
	for _, img := range m.images {
		if img == nil {
			continue
		}
		live++
		if seen[img.ID] {
			return fmt.Errorf("duplicate image ID %d in slice", img.ID)
		}
		seen[img.ID] = true
		if m.byID[img.ID] != img {
			return fmt.Errorf("byID[%d] does not point at the slice entry", img.ID)
		}
		if img.Spec.Empty() {
			return fmt.Errorf("image %d has an empty spec", img.ID)
		}
		if got := img.Spec.Size(m.repo); got != img.Size {
			return fmt.Errorf("image %d cached size %d != recomputed %d", img.ID, img.Size, got)
		}
		ids := img.Spec.IDs()
		if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
			return fmt.Errorf("image %d spec not sorted", img.ID)
		}
		if img.lastUse > m.clock {
			return fmt.Errorf("image %d lastUse %d beyond clock %d", img.ID, img.lastUse, m.clock)
		}
		if m.hasher != nil {
			want := m.hasher.Sign(img.Spec)
			for i := range want {
				if img.sig[i] != want[i] {
					return fmt.Errorf("image %d signature stale at position %d", img.ID, i)
				}
			}
		}
		if m.fast != nil {
			// The interned bitset must round-trip to exactly the spec it
			// was built from — an intern collision or stale bits after a
			// merge/split would silently corrupt every fast-path decision.
			if img.bits.Card() != img.Spec.Len() {
				return fmt.Errorf("image %d interned cardinality %d != spec length %d (intern collision or stale bits)", img.ID, img.bits.Card(), img.Spec.Len())
			}
			if !m.fast.intern.SpecOf(img.bits).Equal(img.Spec) {
				return fmt.Errorf("image %d interned bitset does not round-trip to its spec", img.ID)
			}
			// Insertion ordinals must strictly increase in slice order:
			// band-candidate enumeration sorts by ord to reproduce the
			// reference scan's tie-breaking.
			if ordSeen && img.ord <= prevOrd {
				return fmt.Errorf("image %d ordinal %d not above predecessor's %d", img.ID, img.ord, prevOrd)
			}
			prevOrd, ordSeen = img.ord, true
		}
		total += img.Size
	}
	if live != len(m.byID) {
		return fmt.Errorf("live images %d != byID size %d", live, len(m.byID))
	}
	if total != m.total {
		return fmt.Errorf("cached total %d != recomputed %d", m.total, total)
	}
	st := m.stats
	if st.Hits+st.Inserts+st.Merges != st.Requests {
		return fmt.Errorf("ops %d+%d+%d do not partition %d requests", st.Hits, st.Inserts, st.Merges, st.Requests)
	}
	return nil
}

// CheckIntegrity runs Manager.CheckIntegrity with the cache quiescent
// (read lock plus hitMu), so concurrent traffic cannot produce
// torn reads of the structures being validated.
func (c *ConcurrentManager) CheckIntegrity() error {
	var err error
	c.WithShared(func(m *Manager) { err = m.CheckIntegrity() })
	return err
}

// Capacity returns the configured byte capacity (zero or negative
// means unlimited).
func (m *Manager) Capacity() int64 { return m.cfg.Capacity }

// Conflicts returns the configured conflict policy (never nil after
// NewManager).
func (m *Manager) Conflicts() spec.ConflictPolicy { return m.cfg.Conflicts }

// Clock returns the manager's logical clock: the Seq that the next
// request's stamp will follow. For a shard drawing stamps from a
// shared source this is the *global* clock — the value the next stamp
// anywhere in the sharded cache increments — which is what the oracle's
// Seq == Clock()+1 check needs when it drives one shard at a time.
func (m *Manager) Clock() uint64 {
	if m.clockSrc != nil {
		return m.clockSrc.Load()
	}
	return m.clock
}

// MinHashEnabled reports whether the approximate candidate prefilter
// is active. The invariant oracle (internal/check) refuses such
// managers: the prefilter may legitimately drop merge candidates the
// exact algorithm would take, so exact re-derivation only applies to
// exact-mode managers.
func (m *Manager) MinHashEnabled() bool { return m.hasher != nil }

// LastUse returns the logical-clock timestamp of the image's last
// hit, merge, or insert — its LRU position.
func (img *Image) LastUse() uint64 { return img.lastUse }

// SetCommitHook replaces the commit hook. Harnesses use it to stack a
// validating hook (internal/check's shadow checker) in front of an
// already-installed durability hook; like SetTracer it must be called
// before the manager serves traffic (or under WithExclusive on a
// ConcurrentManager).
func (m *Manager) SetCommitHook(h CommitHook) { m.cfg.Commit = h }

// CommitHook returns the installed commit hook (nil when disabled).
func (m *Manager) CommitHook() CommitHook { return m.cfg.Commit }
