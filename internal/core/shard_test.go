package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

// Shard-aware oracle equivalence.
//
// The sharded cache's correctness claim is: the concurrent sharded
// execution equals SOME serial execution of the same requests through
// the same router — per-shard total orders merged by the globally
// dense Seq. The harness proves it the same three ways as the
// unsharded one (concurrent_test.go), shard-aware:
//
//  1. Per-request results: sorting all results by Seq (dense across
//     shards — one shared clock) and replaying the specs serially
//     through a fresh ShardedManager must reproduce every Result.
//  2. Final state: the merged ExportState must be byte-identical to
//     the serial reference's. With shards=1 it must also be
//     byte-identical to a plain single-threaded Manager's — the
//     degeneration the config default relies on.
//  3. Mutation log: the per-shard commit streams, merged by stamp,
//     must replay through ShardedManager.ApplyMutation (the crash-
//     recovery path) to the identical merged state.

// shardHook records each shard's commit stream separately, routed by
// the ImageID residue. Like recordingHook it is deliberately
// unsynchronized per shard: a shard's hook invocations are totally
// ordered by its stamping locks, so a data race on a per-shard slice
// IS a linearization violation, surfaced by -race.
type shardHook struct {
	n       int
	streams [][]Mutation
}

func newShardHook(n int) *shardHook {
	return &shardHook{n: n, streams: make([][]Mutation, n)}
}

func (h *shardHook) Commit(mut Mutation) {
	i := int(mut.ImageID % uint64(h.n))
	mut.Packages = append([]string(nil), mut.Packages...)
	h.streams[i] = append(h.streams[i], mut)
}

// mergeShardStreams interleaves per-shard commit streams into the
// global linearization order: chunks of [stamped mutation + its
// trailing unstamped deletes/splits] taken in stamp order. It fails
// the test if any shard stream violates its own ordering contract
// (stamps not strictly increasing, or a chunk not led by a stamped
// mutation).
func mergeShardStreams(t *testing.T, streams [][]Mutation) []Mutation {
	t.Helper()
	total := 0
	for i, s := range streams {
		total += len(s)
		last := uint64(0)
		for j, mut := range s {
			switch mut.Kind {
			case MutTouch, MutMerge, MutInsert:
				if mut.LastUse <= last {
					t.Fatalf("shard %d mutation %d: stamp %d not above predecessor %d", i, j, mut.LastUse, last)
				}
				last = mut.LastUse
			}
		}
	}
	idx := make([]int, len(streams))
	out := make([]Mutation, 0, total)
	for len(out) < total {
		best := -1
		var bestStamp uint64
		for i, s := range streams {
			if idx[i] >= len(s) {
				continue
			}
			mut := s[idx[i]]
			switch mut.Kind {
			case MutTouch, MutMerge, MutInsert:
			default:
				t.Fatalf("shard %d: chunk led by unstamped %s (deletes/splits must trail their request)", i, mut.Kind)
			}
			if best == -1 || mut.LastUse < bestStamp {
				best, bestStamp = i, mut.LastUse
			}
		}
		s := streams[best]
		out = append(out, s[idx[best]])
		idx[best]++
		for idx[best] < len(s) {
			if k := s[idx[best]].Kind; k != MutDelete && k != MutSplit {
				break
			}
			out = append(out, s[idx[best]])
			idx[best]++
		}
	}
	return out
}

func TestShardedOracleEquivalence(t *testing.T) {
	repo := concRepo(t)
	const workers = 8
	perWorker := 5000
	if testing.Short() {
		perWorker = 500
	}

	base := Config{Alpha: 0.75, Capacity: repo.TotalSize() / 4}
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cfg := base
			cfg.Shards = shards
			hook := newShardHook(shards)
			cfg.Commit = hook
			sm, err := NewSharded(repo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := specPool(repo, 400, int64(shards))

			records := make([][]reqRec, workers)
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						k := (g*2654435761 + i*40503) % len(pool)
						if k < 0 {
							k += len(pool)
						}
						s := pool[k]
						res, err := sm.Request(s)
						if err != nil {
							t.Errorf("worker %d: Request: %v", g, err)
							return
						}
						records[g] = append(records[g], reqRec{s, res})
					}
				}(g)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			if err := sm.CheckIntegrity(); err != nil {
				t.Fatalf("integrity: %v", err)
			}

			// Seq is dense across shards: one shared clock.
			total := workers * perWorker
			bySeq := make([]reqRec, total)
			for _, rs := range records {
				for _, r := range rs {
					if r.res.Seq < 1 || r.res.Seq > uint64(total) {
						t.Fatalf("Seq %d outside 1..%d", r.res.Seq, total)
					}
					slot := &bySeq[r.res.Seq-1]
					if slot.res.Seq != 0 {
						t.Fatalf("duplicate Seq %d", r.res.Seq)
					}
					*slot = r
				}
			}

			// Check 1+2: serial replay through a fresh sharded manager.
			refCfg := cfg
			refCfg.Commit = nil
			ref, err := NewSharded(repo, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, rec := range bySeq {
				want, err := ref.Request(rec.s)
				if err != nil {
					t.Fatalf("reference request %d: %v", i, err)
				}
				if want != rec.res {
					t.Fatalf("request %d diverges from the serial reference:\nconcurrent %+v\n reference %+v", i, rec.res, want)
				}
			}
			live := stateJSON(t, sm.ExportState())
			if want := stateJSON(t, ref.ExportState()); live != want {
				t.Errorf("merged state differs from the serial reference:\n live %s\nwant %s", live, want)
			}

			// With one shard the sharded cache must degenerate byte-
			// identically to the plain single-threaded Manager.
			if shards == 1 {
				oracleCfg := cfg
				oracleCfg.Commit = nil
				oracleCfg.Shards = 0
				oracle := mgr(t, repo, oracleCfg)
				for i, rec := range bySeq {
					want, err := oracle.Request(rec.s)
					if err != nil {
						t.Fatalf("oracle request %d: %v", i, err)
					}
					if want != rec.res {
						t.Fatalf("request %d diverges from the unsharded oracle:\nsharded %+v\n oracle %+v", i, rec.res, want)
					}
				}
				if want := stateJSON(t, oracle.ExportState()); live != want {
					t.Errorf("shards=1 state differs from the unsharded Manager:\n live %s\nwant %s", live, want)
				}
			}

			// Check 3: the merged mutation streams replay through the
			// recovery path to the identical merged state.
			merged := mergeShardStreams(t, hook.streams)
			replay, err := NewSharded(repo, refCfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, mut := range merged {
				if err := replay.ApplyMutation(mut); err != nil {
					t.Fatalf("mutation %d (%s image %d): %v", i, mut.Kind, mut.ImageID, err)
				}
			}
			if got := stateJSON(t, replay.ExportState()); got != live {
				t.Errorf("merged mutation-log replay differs from the live state:\nreplay %s\n  live %s", got, live)
			}

			if st := sm.Stats(); st.Requests != int64(total) {
				t.Errorf("stats.Requests = %d, want %d", st.Requests, total)
			}
		})
	}
}

// TestShardedPruneVsHitOrdering is TestPruneVsHitOrdering run against
// the sharded cache: global Seq stays a dense permutation under
// concurrent per-shard prune passes, every shard's commit stream keeps
// its stamps strictly increasing with deletes/splits glued to request
// boundaries, and the merged stream replays to the live merged state.
func TestShardedPruneVsHitOrdering(t *testing.T) {
	repo := concRepo(t)
	const shards = 4
	cfg := Config{Alpha: 0.8, Shards: shards} // unlimited: images bloat, so splits fire
	sm, err := NewSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := newShardHook(shards)
	sm.SetCommitHook(hook)

	pool := specPool(repo, 40, 91)
	hot := pool[:4]
	for _, s := range pool {
		if _, err := sm.Request(s); err != nil {
			t.Fatal(err)
		}
	}
	warm := len(pool)

	const workers = 8
	perWorker := 2000
	if testing.Short() {
		perWorker = 400
	}
	var running atomic.Int64
	running.Store(workers - 1)
	seqs := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				last := sm.Stats().Requests
				for running.Load() > 0 {
					if now := sm.Stats().Requests; now-last >= 300 {
						if _, err := sm.Prune(0.7, 1); err != nil {
							t.Errorf("prune: %v", err)
							return
						}
						last = now
					} else {
						runtime.Gosched()
					}
				}
				return
			}
			defer running.Add(-1)
			for i := 0; i < perWorker; i++ {
				res, err := sm.Request(hot[(g*7+i)%len(hot)])
				if err != nil {
					t.Errorf("worker %d request %d: %v", g, i, err)
					return
				}
				seqs[g] = append(seqs[g], res.Seq)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	extra := 0
	if sm.Stats().Splits == 0 {
		if _, err := sm.Prune(0.7, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			res, err := sm.Request(hot[i%len(hot)])
			if err != nil {
				t.Fatal(err)
			}
			seqs[1] = append(seqs[1], res.Seq)
			extra++
		}
		if _, err := sm.Prune(0.7, 1); err != nil {
			t.Fatal(err)
		}
	}

	// Global dense Seq across all shards.
	total := warm + (workers-1)*perWorker + extra
	seen := make([]bool, total+1)
	count := warm
	for s := 1; s <= warm; s++ {
		seen[s] = true
	}
	for _, ss := range seqs {
		for _, s := range ss {
			if s == 0 || s > uint64(total) || seen[s] {
				t.Fatalf("Seq %d out of range or duplicated (want a dense permutation of 1..%d)", s, total)
			}
			seen[s] = true
			count++
		}
	}
	if count != total {
		t.Fatalf("recorded %d Seq values, want %d", count, total)
	}

	// Per-shard stream contracts plus global replay. mergeShardStreams
	// itself asserts strictly-increasing stamps and chunk boundaries.
	merged := mergeShardStreams(t, hook.streams)
	stamped, splits := 0, 0
	for _, mut := range merged {
		switch mut.Kind {
		case MutTouch, MutMerge, MutInsert:
			stamped++
		case MutSplit:
			splits++
		}
	}
	if stamped != total {
		t.Fatalf("hooks saw %d stamped mutations, want %d", stamped, total)
	}
	if splits == 0 {
		t.Fatal("no split mutations recorded; the pruner never raced the hit traffic")
	}

	replay, err := NewSharded(repo, Config{Alpha: 0.8, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i, mut := range merged {
		if err := replay.ApplyMutation(mut); err != nil {
			t.Fatalf("replaying mutation %d (%s): %v", i, mut.Kind, err)
		}
	}
	if got, want := stateJSON(t, replay.ExportState()), stateJSON(t, sm.ExportState()); got != want {
		t.Fatalf("replayed state diverges from live state:\n got %s\nwant %s", got, want)
	}
}

// TestBalancerStarvation drives all traffic at one shard of eight and
// pins the balancer's contract: budgets always sum exactly to the
// global capacity (the identity the global byte bound rests on), cold
// shards never drop below the capacity/(4·shards) floor, the hot
// shard's budget grows past its even share, and the resident bytes
// never exceed the global budget at rebalance points.
func TestBalancerStarvation(t *testing.T) {
	repo := concRepo(t)
	const shards = 8
	capacity := repo.TotalSize() / 5
	cfg := Config{Alpha: 0.6, Capacity: capacity, Shards: shards}
	sm, err := NewSharded(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}

	pool := specPool(repo, 600, 7)
	target := sm.ShardFor(pool[0])
	var hot []reqRec
	for _, s := range pool {
		if sm.ShardFor(s) == target {
			hot = append(hot, reqRec{s: s})
		}
	}
	if len(hot) < 10 {
		t.Fatalf("only %d specs route to shard %d; need more diversity", len(hot), target)
	}

	floor := capacity / (4 * shards)
	even := capacity / shards
	audit := func(step int) {
		t.Helper()
		budgets := sm.Budgets()
		var sum int64
		for i, b := range budgets {
			sum += b
			if b < floor {
				t.Fatalf("step %d: shard %d budget %d below floor %d (starved)", step, i, b, floor)
			}
		}
		if sum != capacity {
			t.Fatalf("step %d: budgets sum to %d, want exactly %d", step, sum, capacity)
		}
		sm.WithSharedAll(func(ms []*Manager) {
			var resident int64
			for i, m := range ms {
				if m.TotalData() > m.Capacity() && m.Len() > 1 {
					t.Fatalf("step %d: shard %d holds %d bytes over its %d budget with %d images",
						step, i, m.TotalData(), m.Capacity(), m.Len())
				}
				if m.Len() > 1 {
					resident += m.TotalData()
				}
			}
			// Multi-image shards respect their budgets, and budgets sum
			// to capacity, so multi-image residency is globally bounded.
			if resident > capacity {
				t.Fatalf("step %d: %d resident bytes exceed the %d global budget", step, resident, capacity)
			}
		})
	}

	for i := 0; i < 40*len(hot); i++ {
		if _, err := sm.Request(hot[i%len(hot)].s); err != nil {
			t.Fatal(err)
		}
		if i%97 == 0 {
			sm.Rebalance()
			audit(i)
		}
	}
	sm.Rebalance()
	audit(-1)

	budgets := sm.Budgets()
	if budgets[target] <= even {
		t.Errorf("hot shard %d budget %d never grew past its even share %d", target, budgets[target], even)
	}
	bal := sm.BalancerStats()
	if bal.Rebalances == 0 || bal.BudgetMoved == 0 {
		t.Errorf("balancer idle: %+v", bal)
	}
	if err := sm.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestSplitBudget pins the even split's exactness.
func TestSplitBudget(t *testing.T) {
	for _, tc := range []struct {
		c int64
		n int
	}{{100, 3}, {7, 4}, {0, 5}, {-3, 2}, {1, 1}, {1 << 40, 16}} {
		got := SplitBudget(tc.c, tc.n)
		if len(got) != tc.n {
			t.Fatalf("SplitBudget(%d,%d) returned %d budgets", tc.c, tc.n, len(got))
		}
		var sum int64
		for i, b := range got {
			sum += b
			if tc.c > 0 && i > 0 && b > got[i-1] {
				t.Errorf("SplitBudget(%d,%d): remainder not front-loaded: %v", tc.c, tc.n, got)
			}
		}
		want := tc.c
		if want < 0 {
			want = 0
		}
		if sum != want {
			t.Errorf("SplitBudget(%d,%d) sums to %d", tc.c, tc.n, sum)
		}
	}
}

// TestShardRouteDegenerate pins the unsharded degeneration: any shard
// count below 2 routes everything to shard 0.
// TestShardForMatchesShardRoute pins the dispatch fast path to the
// public route definition: ShardFor streams package fields straight
// into the hash state instead of materializing key strings, and the
// two must agree on every spec — the shadow checker recomputes routes
// from mutation key slices via ShardRoute, so any drift between the
// paths would misattribute inserts to the wrong shard.
func TestShardForMatchesShardRoute(t *testing.T) {
	repo := concRepo(t)
	for _, n := range []int{1, 2, 3, 4, 16} {
		cfg := Config{Alpha: 0.75, Shards: n}
		sm, err := NewSharded(repo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gen := workload.NewDepClosure(repo, int64(900+n))
		for i := 0; i < 200; i++ {
			s := gen.Next()
			want := ShardRoute(sm.shards[0].m.keysOf(s), n)
			if got := sm.ShardFor(s); got != want {
				t.Fatalf("shards=%d spec %d: ShardFor = %d, ShardRoute over keys = %d", n, i, got, want)
			}
		}
	}
}

func TestShardRouteDegenerate(t *testing.T) {
	keys := []string{"b/1/p", "a/2/p", "c/3/p"}
	for _, n := range []int{1, 0, -4} {
		if got := ShardRoute(keys, n); got != 0 {
			t.Errorf("ShardRoute(keys, %d) = %d, want 0", n, got)
		}
	}
	if got, want := ShardRoute(keys, 7), ShardRoute([]string{"c/3/p", "b/1/p", "a/2/p"}, 7); got != want {
		t.Errorf("route depends on key order: %d vs %d", got, want)
	}
}

// FuzzShardRoute fuzzes the shard router: for every key set and shard
// count the route must be deterministic, land in [0, shards), ignore
// key order, and degenerate to shard 0 for shard counts below 2. It
// also pins the interned fast path: mapping the blob's bytes onto a
// fixed repository's packages, the precomputed RouteTable must route
// every spec exactly where streaming its package keys would.
func FuzzShardRoute(f *testing.F) {
	repo := concRepo(f)
	rt := NewRouteTable(repo)
	f.Add("base/1.0/p\nlib/2.0/p", 4)
	f.Add("", 1)
	f.Add("core-000/1.7.0/x86_64\napp/3/p\napp/3/p", 16)
	f.Add("x", 0)
	f.Add("\x00\xff\ny", -7)
	f.Fuzz(func(t *testing.T, blob string, shards int) {
		keys := strings.Split(blob, "\n")
		ids := make([]pkggraph.PkgID, 0, len(blob))
		for i := 0; i < len(blob); i++ {
			ids = append(ids, pkggraph.PkgID(int(blob[i])%repo.Len()))
		}
		s := spec.New(ids)
		specKeys := make([]string, 0, s.Len())
		for _, id := range s.IDs() {
			specKeys = append(specKeys, repo.Package(id).Key())
		}
		for _, n := range []int{-1, 0, 1, 2, 3, 4, 16, shards} {
			if got, want := rt.Route(s, n), ShardRoute(specKeys, n); got != want {
				t.Fatalf("RouteTable.Route(%v, %d) = %d, streamed ShardRoute = %d", s.IDs(), n, got, want)
			}
		}
		route := ShardRoute(keys, shards)
		if shards < 2 {
			if route != 0 {
				t.Fatalf("ShardRoute(%q, %d) = %d, want 0", keys, shards, route)
			}
		} else if route < 0 || route >= shards {
			t.Fatalf("ShardRoute(%q, %d) = %d outside [0,%d)", keys, shards, route, shards)
		}
		if again := ShardRoute(keys, shards); again != route {
			t.Fatalf("route not deterministic: %d then %d", route, again)
		}
		rev := make([]string, len(keys))
		for i, k := range keys {
			rev[len(keys)-1-i] = k
		}
		if got := ShardRoute(rev, shards); got != route {
			t.Fatalf("route depends on key order: %d vs %d", route, got)
		}
		for _, n := range []int{1, 2, 3, 4, 16, 64} {
			if r := ShardRoute(keys, n); r < 0 || r >= n {
				t.Fatalf("ShardRoute(%q, %d) = %d outside [0,%d)", keys, n, r, n)
			}
		}
	})
}
