package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// recorder is a CommitHook that keeps every mutation.
type recorder struct {
	muts []Mutation
}

func (r *recorder) Commit(mut Mutation) {
	mut.Packages = append([]string(nil), mut.Packages...)
	r.muts = append(r.muts, mut)
}

// TestCommitHookEmitsOutcomes pins the hook protocol on a hand-built
// scenario: insert, hit, merge, then an insert that evicts.
func TestCommitHookEmitsOutcomes(t *testing.T) {
	repo := flatRepo(t, 8, 10)
	rec := &recorder{}
	m := mgr(t, repo, Config{Alpha: 0.5, Capacity: 40, Commit: rec})

	request(t, m, sp(0, 1))    // insert image 0
	request(t, m, sp(0, 1))    // hit -> touch
	request(t, m, sp(0, 1, 2)) // d({0,1},{0,1,2}) = 1/3 <= alpha -> merge
	request(t, m, sp(3, 4))    // insert; 30+20 > 40 -> evicts image 0

	var kinds []MutationKind
	for _, mut := range rec.muts {
		kinds = append(kinds, mut.Kind)
	}
	want := []MutationKind{MutInsert, MutTouch, MutMerge, MutInsert, MutDelete}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("mutation kinds = %v, want %v", kinds, want)
	}
	merge := rec.muts[2]
	if merge.ImageID != 0 || merge.Version != 1 || merge.Merges != 1 {
		t.Errorf("merge mutation carries wrong counters: %+v", merge)
	}
	if len(merge.Packages) != 3 {
		t.Errorf("merge mutation packages = %v, want the merged union", merge.Packages)
	}
	if del := rec.muts[4]; del.ImageID != 0 {
		t.Errorf("delete mutation targets image %d, want 0", del.ImageID)
	}
}

// TestReplayEquivalence is the property the WAL rests on: applying the
// hook's mutation stream to a fresh manager reproduces the live
// manager's exported state exactly — images, IDs, versions, LRU
// clocks, and stats — across a randomized workload with merges,
// evictions, and prune splits.
func TestReplayEquivalence(t *testing.T) {
	repo := flatRepo(t, 24, 10)
	rec := &recorder{}
	live := mgr(t, repo, Config{Alpha: 0.5, Capacity: 160, Commit: rec})

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		k := 1 + rng.Intn(3)
		ids := make([]pkggraph.PkgID, k)
		for j := range ids {
			ids[j] = pkggraph.PkgID(rng.Intn(repo.Len()))
		}
		request(t, live, spec.New(ids))
		if (i+1)%25 == 0 {
			if _, err := live.Prune(0.5, 1); err != nil {
				t.Fatalf("prune: %v", err)
			}
		}
	}
	if err := live.CheckIntegrity(); err != nil {
		t.Fatalf("live manager invariants: %v", err)
	}

	replayed := mgr(t, repo, Config{Alpha: 0.5, Capacity: 160})
	for i, mut := range rec.muts {
		if err := replayed.ApplyMutation(mut); err != nil {
			t.Fatalf("replaying mutation %d (%+v): %v", i, mut, err)
		}
	}
	if err := replayed.CheckIntegrity(); err != nil {
		t.Fatalf("replayed manager invariants: %v", err)
	}
	got, want := replayed.ExportState(), live.ExportState()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state differs from live state:\n got %+v\nwant %+v", got, want)
	}
}

// TestApplyMutationNeverEvicts: replay applies logged outcomes only;
// an over-capacity state is legal until the next live request, whose
// LRU pass brings the cache back under budget.
func TestApplyMutationNeverEvicts(t *testing.T) {
	repo := flatRepo(t, 8, 10)
	m := mgr(t, repo, Config{Capacity: 30})
	for i := 0; i < 3; i++ {
		mut := Mutation{
			Kind: MutInsert, ImageID: uint64(i), LastUse: uint64(i + 1),
			RequestBytes: 20, Packages: []string{key(repo, 2*i), key(repo, 2*i+1)},
		}
		if err := m.ApplyMutation(mut); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if m.Len() != 3 || m.TotalData() != 60 {
		t.Fatalf("replay evicted: %d images, %d bytes (want 3, 60)", m.Len(), m.TotalData())
	}
	request(t, m, sp(6, 7))
	if m.TotalData() > 30 {
		t.Fatalf("live request left cache over capacity: %d bytes", m.TotalData())
	}
}

func key(repo *pkggraph.Repo, i int) string {
	return repo.Package(pkggraph.PkgID(i)).Key()
}

func TestApplyMutationErrors(t *testing.T) {
	repo := flatRepo(t, 8, 10)
	m := mgr(t, repo, Config{})
	if err := m.ApplyMutation(Mutation{Kind: MutInsert, ImageID: 1, LastUse: 1, Packages: []string{key(repo, 0)}}); err != nil {
		t.Fatalf("seed insert: %v", err)
	}

	cases := []struct {
		name string
		mut  Mutation
	}{
		{"touch unknown", Mutation{Kind: MutTouch, ImageID: 9}},
		{"insert duplicate", Mutation{Kind: MutInsert, ImageID: 1, Packages: []string{key(repo, 1)}}},
		{"insert unknown package", Mutation{Kind: MutInsert, ImageID: 2, Packages: []string{"no/such/pkg"}}},
		{"insert empty", Mutation{Kind: MutInsert, ImageID: 2}},
		{"merge unknown image", Mutation{Kind: MutMerge, ImageID: 9, Packages: []string{key(repo, 1)}}},
		{"merge unknown package", Mutation{Kind: MutMerge, ImageID: 1, Packages: []string{"no/such/pkg"}}},
		{"delete unknown", Mutation{Kind: MutDelete, ImageID: 9}},
		{"split unknown image", Mutation{Kind: MutSplit, ImageID: 9, Packages: []string{key(repo, 0)}}},
		{"split unknown package", Mutation{Kind: MutSplit, ImageID: 1, Packages: []string{"no/such/pkg"}}},
		{"unknown kind", Mutation{Kind: "frobnicate", ImageID: 1}},
	}
	for _, tc := range cases {
		if err := m.ApplyMutation(tc.mut); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
	// Failed applications must not have corrupted anything.
	if err := m.CheckIntegrity(); err != nil {
		t.Fatalf("invariants after rejected mutations: %v", err)
	}
	if m.Len() != 1 {
		t.Fatalf("rejected mutations changed the cache: %d images", m.Len())
	}
}
