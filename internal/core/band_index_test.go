package core

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// TestBandIndexIdenticalSelection pins that consulting the LSH band
// index in findMergeTarget changes no decision: with rows=1 the banded
// candidate set is exactly the set of images sharing at least one
// MinHash position, a superset of everything the margin prefilter
// accepts whenever alpha+margin ≤ 1 — so the indexed and scanned
// paths must pick the identical merge target on every request, and two
// managers differing only in NoBandIndex must stay byte-identical
// through a workload of merges, evictions, and splits.
func TestBandIndexIdenticalSelection(t *testing.T) {
	repo := concRepo(t)
	configs := []Config{
		// alpha+margin = 0.85 ≤ 1: the banded fast path is active.
		{Alpha: 0.6, MinHash: DefaultMinHash(), Capacity: repo.TotalSize() / 4},
		// alpha+margin = 1.15 > 1: disjoint images pass the margin
		// prefilter, so the code must fall back to the full scan.
		{Alpha: 0.9, MinHash: DefaultMinHash()},
	}
	steps := 4000
	if testing.Short() {
		steps = 600
	}
	for ci, cfg := range configs {
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			indexed := mgr(t, repo, cfg)
			scanCfg := cfg
			scanCfg.NoBandIndex = true
			scanned := mgr(t, repo, scanCfg)
			if indexed.bandIndex == nil {
				t.Fatal("band index not built with MinHash enabled")
			}
			if scanned.bandIndex != nil {
				t.Fatal("NoBandIndex did not disable the band index")
			}

			gen := workload.NewDepClosure(repo, int64(200+ci))
			for i := 0; i < steps; i++ {
				s := gen.Next()
				got, err := indexed.Request(s)
				if err != nil {
					t.Fatalf("indexed request %d: %v", i, err)
				}
				want, err := scanned.Request(s)
				if err != nil {
					t.Fatalf("scanned request %d: %v", i, err)
				}
				if got != want {
					t.Fatalf("request %d: banded target selection diverges from the scan:\nindexed %+v\nscanned %+v", i, got, want)
				}
				if i%250 == 249 {
					// Splits rewrite specs and signatures; the index
					// must track them.
					if _, err := indexed.Prune(0.8, 1); err != nil {
						t.Fatal(err)
					}
					if _, err := scanned.Prune(0.8, 1); err != nil {
						t.Fatal(err)
					}
					if err := indexed.CheckIntegrity(); err != nil {
						t.Fatalf("indexed integrity after prune %d: %v", i, err)
					}
				}
			}
			got := stateJSON(t, indexed.ExportState())
			if want := stateJSON(t, scanned.ExportState()); got != want {
				t.Errorf("final states diverge:\nindexed %s\nscanned %s", got, want)
			}
		})
	}
}

// TestBandIndexSurvivesImportRestore pins index maintenance on the
// bulk-load paths: a manager rebuilt via ImportState (and one via
// Restore) must keep making scan-identical decisions afterwards.
func TestBandIndexSurvivesImportRestore(t *testing.T) {
	repo := concRepo(t)
	cfg := Config{Alpha: 0.6, MinHash: DefaultMinHash(), Capacity: repo.TotalSize() / 4}
	seedMgr := mgr(t, repo, cfg)
	gen := workload.NewDepClosure(repo, 333)
	for i := 0; i < 400; i++ {
		if _, err := seedMgr.Request(gen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	st := seedMgr.ExportState()

	indexed := mgr(t, repo, cfg)
	if err := indexed.ImportState(st); err != nil {
		t.Fatal(err)
	}
	scanCfg := cfg
	scanCfg.NoBandIndex = true
	scanned := mgr(t, repo, scanCfg)
	if err := scanned.ImportState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		s := gen.Next()
		got, err := indexed.Request(s)
		if err != nil {
			t.Fatal(err)
		}
		want, err := scanned.Request(s)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-import request %d diverges:\nindexed %+v\nscanned %+v", i, got, want)
		}
	}
	if got, want := stateJSON(t, indexed.ExportState()), stateJSON(t, scanned.ExportState()); got != want {
		t.Errorf("post-import states diverge:\nindexed %s\nscanned %s", got, want)
	}

	restored := mgr(t, repo, cfg)
	if err := restored.Restore(st.Images); err != nil {
		t.Fatal(err)
	}
	if err := restored.CheckIntegrity(); err != nil {
		t.Fatalf("restored integrity: %v", err)
	}
	if _, err := restored.Request(gen.Next()); err != nil {
		t.Fatal(err)
	}
}
