package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The oracle-equivalence harness: drive a ConcurrentManager with N
// goroutines over a seeded workload, then prove the concurrent
// execution equals SOME sequential execution of the same requests.
//
// Three independent checks, strongest first:
//
//  1. Per-request results: sorting the concurrent results by their
//     linearization stamp (Result.Seq) and replaying the specs in that
//     order through a fresh single-threaded Manager must reproduce
//     every Result exactly — same op, same image, same bytes, same
//     evictions.
//  2. Final state: the live concurrent manager's ExportState must be
//     byte-identical (JSON) to the oracle's.
//  3. Mutation log: replaying the commit-hook stream through
//     ApplyMutation (the crash-recovery path) must also rebuild the
//     identical state, proving the WAL observes mutations in a replay-
//     exact order.

// reqRec pairs a submitted spec with the result the concurrent manager
// returned for it.
type reqRec struct {
	s   spec.Spec
	res Result
}

// recordingHook captures the mutation stream in commit order. It is
// deliberately unsynchronized: the ConcurrentManager's linearization
// guarantee says hook invocations are totally ordered (hitMu for hits,
// the write lock for the rest), so a data race here IS a violation of
// that guarantee — and `go test -race` turns it into a failure.
type recordingHook struct{ muts []Mutation }

func (h *recordingHook) Commit(mut Mutation) {
	mut.Packages = append([]string(nil), mut.Packages...)
	h.muts = append(h.muts, mut)
}

// concRepo is a mid-sized generated repository shared by the
// concurrency tests.
func concRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 30
	cfg.ApplicationFamilies = 60
	return pkggraph.MustGenerate(cfg, 77)
}

// specPool generates n seeded dependency-closure specs; workers index
// into the pool deterministically, so the request multiset is fixed
// even though the interleaving is not.
func specPool(repo *pkggraph.Repo, n int, seed int64) []spec.Spec {
	gen := workload.NewDepClosure(repo, seed)
	gen.MaxInitial = 5
	pool := make([]spec.Spec, n)
	for i := range pool {
		pool[i] = gen.Next()
	}
	return pool
}

func stateJSON(t *testing.T, st ManagerState) string {
	t.Helper()
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	return string(data)
}

func TestConcurrentOracleEquivalence(t *testing.T) {
	repo := concRepo(t)
	const workers = 8
	const rounds = 5
	perRound := 1000 // 8 goroutines x 5000 requests per config
	if testing.Short() {
		perRound = 100
	}

	configs := []Config{
		{Alpha: 0.75},
		{Alpha: 0.9, Capacity: repo.TotalSize() / 3, MinHash: DefaultMinHash()},
		{Alpha: 0.5, Capacity: repo.TotalSize() / 6},
	}
	for ci, cfg := range configs {
		t.Run(fmt.Sprintf("config%d", ci), func(t *testing.T) {
			hook := &recordingHook{}
			cfg.Commit = hook
			cm, err := NewConcurrent(repo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := specPool(repo, 400, int64(ci)+1)

			records := make([][]reqRec, workers)
			for g := range records {
				records[g] = make([]reqRec, 0, rounds*perRound)
			}
			for round := 0; round < rounds; round++ {
				var wg sync.WaitGroup
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func(g, round int) {
						defer wg.Done()
						for i := 0; i < perRound; i++ {
							// Deterministic per-worker index stream; the odd
							// strides make workers collide on the same specs
							// often (hits) without marching in lockstep.
							k := (g*2654435761 + (round*perRound+i)*40503) % len(pool)
							if k < 0 {
								k += len(pool)
							}
							s := pool[k]
							res, err := cm.Request(s)
							if err != nil {
								t.Errorf("worker %d: Request: %v", g, err)
								return
							}
							records[g] = append(records[g], reqRec{s, res})
						}
					}(g, round)
				}
				wg.Wait()
				if t.Failed() {
					t.Fatalf("round %d aborted", round)
				}
				// Quiescent point: full structural invariants, byte
				// accounting, and counter partition.
				cm.WithExclusive(func(m *Manager) {
					if err := m.CheckIntegrity(); err != nil {
						t.Fatalf("round %d invariants: %v", round, err)
					}
				})
			}

			// Order the concurrent execution by its linearization stamps.
			all := make([]reqRec, 0, workers*rounds*perRound)
			for _, rs := range records {
				all = append(all, rs...)
			}
			bySeq := make([]reqRec, len(all))
			for _, r := range all {
				if r.res.Seq < 1 || r.res.Seq > uint64(len(all)) {
					t.Fatalf("Seq %d outside 1..%d", r.res.Seq, len(all))
				}
				slot := &bySeq[r.res.Seq-1]
				if slot.res.Seq != 0 {
					t.Fatalf("duplicate Seq %d", r.res.Seq)
				}
				*slot = r
			}

			// Check 1+2: replay the specs in linearized order through the
			// single-threaded oracle; every Result and the final exported
			// state must match exactly.
			oracleCfg := cfg
			oracleCfg.Commit = nil
			oracle := mgr(t, repo, oracleCfg)
			for i, rec := range bySeq {
				want, err := oracle.Request(rec.s)
				if err != nil {
					t.Fatalf("oracle request %d: %v", i, err)
				}
				if want != rec.res {
					t.Fatalf("request %d diverges from the sequential oracle:\nconcurrent %+v\n    oracle %+v", i, rec.res, want)
				}
			}
			live := stateJSON(t, cm.ExportState())
			if want := stateJSON(t, oracle.ExportState()); live != want {
				t.Errorf("final state differs from the sequential oracle:\n live %s\nwant %s", live, want)
			}

			// Check 3: the mutation stream replays (the crash-recovery
			// path) to the identical state.
			replayCfg := cfg
			replayCfg.Commit = nil
			replay := mgr(t, repo, replayCfg)
			for i, mut := range hook.muts {
				if err := replay.ApplyMutation(mut); err != nil {
					t.Fatalf("mutation %d (%s image %d): %v", i, mut.Kind, mut.ImageID, err)
				}
			}
			if got := stateJSON(t, replay.ExportState()); got != live {
				t.Errorf("mutation-log replay differs from the live state:\nreplay %s\n  live %s", got, live)
			}

			// The harness is only meaningful if the read fast path carried
			// real traffic.
			if cm.ReadHits() == 0 {
				t.Error("no requests took the read-lock fast path")
			}
			if st := cm.Stats(); st.Requests != int64(len(all)) {
				t.Errorf("stats.Requests = %d, want %d", st.Requests, len(all))
			}
		})
	}
}

// TestConcurrentReadOnlyTakesNoWriteLock pins the contract the server's
// read-only endpoints rely on: accessors and hits never touch the
// write lock.
func TestConcurrentReadOnlyTakesNoWriteLock(t *testing.T) {
	repo := concRepo(t)
	cm, err := NewConcurrent(repo, Config{Alpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	pool := specPool(repo, 8, 3)
	for _, s := range pool {
		if _, err := cm.Request(s); err != nil {
			t.Fatal(err)
		}
	}
	before := cm.WriteLockAcquisitions()
	if before == 0 {
		t.Fatal("inserts did not take the write lock")
	}

	cm.Stats()
	cm.Len()
	cm.TotalData()
	cm.UniqueData()
	cm.CacheEfficiency()
	cm.Images()
	cm.Snapshot()
	if _, err := cm.Request(pool[0]); err != nil { // cached: a hit
		t.Fatal(err)
	}
	if got := cm.WriteLockAcquisitions(); got != before {
		t.Errorf("read-only traffic took the write lock %d time(s)", got-before)
	}
	if cm.ReadHits() == 0 {
		t.Error("repeat request did not ride the read path")
	}
}

// TestConcurrentTracerSeesHits verifies the fast path still emits
// telemetry events, since the server's /v1/events ring and latency
// histograms are fed through the tracer.
func TestConcurrentTracerSeesHits(t *testing.T) {
	repo := concRepo(t)
	ring := telemetry.NewRing(64)
	cm, err := NewConcurrent(repo, Config{Alpha: 0.8, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	s := specPool(repo, 1, 9)[0]
	if _, err := cm.Request(s); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Request(s); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events(0)
	if len(evs) != 2 {
		t.Fatalf("traced %d events, want 2", len(evs))
	}
	if evs[1].Op != "hit" {
		t.Errorf("second event op = %q, want hit", evs[1].Op)
	}
	if evs[1].Seq == 0 {
		t.Error("hit event missing its linearization Seq")
	}
}

// TestConcurrentRejectsEmptySpec mirrors the sequential contract.
func TestConcurrentRejectsEmptySpec(t *testing.T) {
	repo := flatRepo(t, 4, 1)
	cm, err := NewConcurrent(repo, Config{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := NewConcurrent(repo, Config{Alpha: 2}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
