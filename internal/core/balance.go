package core

// Eviction balancer.
//
// Each shard evicts against its own byte budget, and the budgets sum
// exactly to the configured global capacity — that identity is what
// makes the global byte bound the sum of per-shard bounds, and it is
// audited by the check harness after every rebalance. Rebalance
// reshapes the split at maintenance points: every shard keeps a floor
// of capacity/(4·shards) so cold shards cannot be starved below a
// quarter of their even share, and the rest of the capacity is
// distributed proportionally to each shard's resident bytes, moving
// headroom toward hot shards. Shards left over their new budget are
// shrunk immediately (LRU eviction sparing the most recently used
// image), under full exclusion, so the commit-hook streams observe the
// shrink deletes at a quiescent point.

// BalancerStats counts the eviction balancer's work.
type BalancerStats struct {
	// Rebalances is the number of completed Rebalance passes.
	Rebalances int64
	// BudgetMoved is the total bytes of budget reassigned between
	// shards (sum over passes of half the absolute budget deltas).
	BudgetMoved int64
	// Evicted and EvictedBytes count images removed by post-rebalance
	// shrink passes.
	Evicted      int64
	EvictedBytes int64
	// LastFreed is the bytes freed by the most recent shrink pass.
	LastFreed int64
}

// SplitBudget divides capacity into n budgets summing exactly to
// capacity: an even split with the remainder bytes going to the lowest
// indices. A non-positive capacity (unlimited) yields all-zero budgets
// (each shard unlimited).
func SplitBudget(capacity int64, n int) []int64 {
	out := make([]int64, n)
	if capacity <= 0 {
		return out
	}
	base := capacity / int64(n)
	rem := capacity % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// Budgets returns each shard's current byte budget.
func (sm *ShardedManager) Budgets() []int64 {
	out := make([]int64, len(sm.shards))
	sm.WithSharedAll(func(ms []*Manager) {
		for i, m := range ms {
			out[i] = m.Capacity()
		}
	})
	return out
}

// BalancerStats returns a copy of the balancer counters.
func (sm *ShardedManager) BalancerStats() BalancerStats {
	sm.balMu.Lock()
	defer sm.balMu.Unlock()
	return sm.bal
}

// Rebalance reshapes the per-shard byte budgets toward the current
// load distribution and shrinks any shard left over its new budget.
// It runs under exclusive access to every shard and is deterministic
// given the shard states. No-op for unlimited or single-shard caches.
func (sm *ShardedManager) Rebalance() BalancerStats {
	n := len(sm.shards)
	if sm.capacity <= 0 || n < 2 {
		return sm.BalancerStats()
	}
	capacity := sm.capacity
	var moved, freedBytes, freedImages int64
	sm.balMu.Lock()
	lastFreed := sm.bal.LastFreed
	sm.balMu.Unlock()
	sm.WithExclusiveAll(func(ms []*Manager) {
		floor := capacity / int64(4*n)
		pool := capacity - int64(n)*floor
		if mutantEnabled("balance") {
			// Double-count the bytes the previous shrink pass freed:
			// the pool (and therefore the budget sum) exceeds the
			// global capacity whenever the balancer has evicted.
			pool += lastFreed
		}
		var sumTotals int64
		totals := make([]int64, n)
		for i, m := range ms {
			totals[i] = m.TotalData()
			sumTotals += totals[i]
		}
		// Hand out the pool proportionally to resident bytes; the last
		// shard takes the exact remainder so the budgets sum precisely
		// to floor·n + pool.
		remaining := pool
		for i, m := range ms {
			var share int64
			if i == n-1 {
				share = remaining
			} else if sumTotals == 0 {
				share = pool / int64(n)
			} else {
				share = int64(float64(pool) * (float64(totals[i]) / float64(sumTotals)))
			}
			if share > remaining {
				share = remaining
			}
			remaining -= share
			budget := floor + share
			if d := budget - m.Capacity(); d > 0 {
				moved += d
			} else {
				moved -= d
			}
			m.SetCapacity(budget)
		}
		for _, m := range ms {
			evicted, bytes := m.ShrinkToCapacity()
			freedImages += int64(evicted)
			freedBytes += bytes
		}
	})
	sm.balMu.Lock()
	defer sm.balMu.Unlock()
	sm.bal.Rebalances++
	sm.bal.BudgetMoved += moved / 2
	sm.bal.Evicted += freedImages
	sm.bal.EvictedBytes += freedBytes
	sm.bal.LastFreed = freedBytes
	return sm.bal
}
