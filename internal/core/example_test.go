package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Example walks the full Algorithm 1 lifecycle: a job inserts an
// image, an overlapping job merges into it, and a repeat run hits.
func Example() {
	// A minimal repository: two applications sharing a base.
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "x86", Tier: pkggraph.TierCore, Size: 100, FileCount: 1},
		{ID: 1, Name: "gen", Version: "1.0", Platform: "x86", Tier: pkggraph.TierApplication, Size: 10, FileCount: 1, Deps: []pkggraph.PkgID{0}},
		{ID: 2, Name: "sim", Version: "1.0", Platform: "x86", Tier: pkggraph.TierApplication, Size: 20, FileCount: 1, Deps: []pkggraph.PkgID{0}},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		log.Fatal(err)
	}

	mgr, err := core.NewManager(repo, core.Config{Alpha: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	jobs := []spec.Spec{
		spec.WithClosure(repo, []pkggraph.PkgID{1}), // gen: {base, gen}
		spec.WithClosure(repo, []pkggraph.PkgID{2}), // sim: {base, sim} -> merge (d=0.5)
		spec.WithClosure(repo, []pkggraph.PkgID{1}), // gen again -> hit
	}
	for _, job := range jobs {
		res, err := mgr.Request(job)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s image=%d size=%d\n", res.Op, res.ImageID, res.ImageSize)
	}
	fmt.Printf("images=%d cache-efficiency=%.0f%%\n", mgr.Len(), mgr.CacheEfficiency()*100)

	// Output:
	// insert image=0 size=110
	// merge image=0 size=130
	// hit image=0 size=130
	// images=1 cache-efficiency=100%
}
