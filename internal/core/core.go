// Package core implements LANDLORD's online container cache manager —
// the paper's primary contribution (Section V, Algorithm 1).
//
// For each submitted job specification s, the Manager:
//
//  1. returns any cached image i with s ⊆ i (a hit: the concrete image
//     meets the specified requirements);
//  2. otherwise scans cached images j with Jaccard distance
//     d_j(s, j) < α in order of increasing distance, and replaces the
//     first non-conflicting j with merge(s, j) (a merge);
//  3. otherwise inserts a new image for s (an insert);
//
// and finally evicts least-recently-used images while the cache
// exceeds its byte capacity (deletes).
//
// α ∈ [0, 1] is the "globbiness": at 0 the manager degenerates to an
// LRU cache of single-purpose images, at 1 to a single all-purpose
// image. Every operation is fully accounted (bytes written, requested
// bytes, unique versus total cached data) so the simulation harness can
// regenerate the paper's figures.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/pkggraph"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// Op identifies how a request was satisfied.
type Op uint8

// Request outcomes, in the order Algorithm 1 considers them.
const (
	OpHit Op = iota
	OpMerge
	OpInsert
)

// String returns the lower-case operation name.
func (o Op) String() string {
	switch o {
	case OpHit:
		return "hit"
	case OpMerge:
		return "merge"
	case OpInsert:
		return "insert"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// MinHashConfig enables the MinHash candidate prefilter. The paper
// singles this out as important in practice: metadata listings for
// full-repository images are gigabytes, so an O(k) first pass at
// selecting similar images matters.
type MinHashConfig struct {
	// K is the signature size (hash functions). Estimator standard
	// error is about 1/sqrt(K).
	K int
	// Seed derives the hash functions.
	Seed int64
	// Margin widens the candidate net: images whose estimated distance
	// is below Alpha+Margin get an exact distance check. Larger margins
	// trade speed for fidelity to the exact algorithm.
	Margin float64
}

// DefaultMinHash returns the prefilter configuration used by the
// simulation harness: 64 hashes and a 2σ margin.
func DefaultMinHash() *MinHashConfig {
	return &MinHashConfig{K: 64, Seed: 0x1a2b3c, Margin: 0.25}
}

// Config parameterizes a Manager.
type Config struct {
	// Alpha is the maximal Jaccard distance at which two
	// specifications are "close enough" to merge. Must be in [0, 1].
	Alpha float64
	// Capacity is the cache limit in bytes. Zero or negative means
	// unlimited.
	Capacity int64
	// Conflicts decides whether two specs may merge. Nil means
	// spec.NoConflicts (the CVMFS case).
	Conflicts spec.ConflictPolicy
	// MinHash, when non-nil, enables approximate candidate selection.
	// When nil every distance is computed exactly.
	MinHash *MinHashConfig
	// NoCandidateSort disables sorting merge candidates by distance
	// (ablation A2 in DESIGN.md). Candidates are then considered in
	// image insertion order, which Algorithm 1's comment ("Selection
	// can be sorted by dj()") marks as optional.
	NoCandidateSort bool
	// NoBandIndex disables the LSH band index that accelerates the
	// merge scan when MinHash is enabled (see findMergeTarget). The
	// index changes no decision — it is a complete prefilter for the
	// MinHash margin — so this knob exists for the identical-selection
	// regression test and for ablation.
	NoBandIndex bool
	// NoFastPath disables the interned-bitset hot path (see fastpath.go)
	// and runs every request through the string-set reference pipeline.
	// The two pipelines make byte-identical decisions — the differential
	// rig in internal/check replays seeded streams through both and
	// compares exported state — so this knob exists for that rig and for
	// ablation, not for correctness.
	NoFastPath bool
	// Shards is the shard count used by NewSharded and the server
	// (default 1). NewManager itself ignores it: a Manager is always a
	// single partition.
	Shards int
	// Tracer, when non-nil, receives one telemetry.Event per request:
	// the operation taken, scan/prefilter work, merge candidates with
	// their distances, eviction churn, and wall-clock duration. A nil
	// Tracer costs one branch per request.
	Tracer telemetry.Tracer
	// Commit, when non-nil, receives one Mutation per state change
	// (touch/merge/insert/delete/split) as it is applied — the hook the
	// durability layer (internal/persist) logs through. A nil hook
	// costs one branch per mutation.
	Commit CommitHook
}

// Image is a cached container image: the union of every specification
// merged into it.
type Image struct {
	ID   uint64
	Spec spec.Spec
	Size int64
	// Version increments whenever the image's contents change (merge
	// or split); distribution layers use it to detect that a worker's
	// local copy went stale.
	Version uint64
	Merges  int    // how many specs have been merged in
	lastUse uint64 // logical clock of last hit/merge/insert
	sig     similarity.Signature

	// bits is the interned form of Spec (see fastpath.go), refreshed on
	// every content change; ord is the insertion ordinal that keeps
	// band-candidate enumeration in scan order. Both are maintained only
	// when the fast path is enabled.
	bits spec.Bitset
	ord  uint64

	// hot tracks the union of specifications this image served since
	// the last Prune pass, and hotCount how many; see split.go.
	hot      spec.Spec
	hotCount int
}

// Result reports how one request was satisfied.
type Result struct {
	// Seq is the request's logical timestamp (the manager clock value
	// stamped on it): the position of this request in the cache's
	// linearization order. Concurrent callers (ConcurrentManager) can
	// sort results by Seq to reconstruct the equivalent sequential
	// execution.
	Seq     uint64
	Op      Op
	ImageID uint64
	// ImageVersion is the content version of the image served; a
	// worker holding (ImageID, ImageVersion) can reuse its local copy.
	ImageVersion uint64
	ImageSize    int64 // size of the image the job runs in
	RequestBytes int64 // size of the requested specification
	BytesWritten int64 // image bytes written by this request
	Evicted      int   // images deleted to make room
	EvictedBytes int64
}

// ContainerEfficiency is the per-request efficiency: requested bytes
// over the size of the container actually used (Section VI).
func (r Result) ContainerEfficiency() float64 {
	if r.ImageSize == 0 {
		return 1
	}
	return float64(r.RequestBytes) / float64(r.ImageSize)
}

// Stats accumulates operation counts and I/O totals over a Manager's
// lifetime. The JSON tags define the serialized form used by
// checkpoints (core.ManagerState / internal/persist).
type Stats struct {
	Requests int64 `json:"requests"`
	Hits     int64 `json:"hits"`
	Inserts  int64 `json:"inserts"`
	Merges   int64 `json:"merges"`
	Deletes  int64 `json:"deletes"`
	// Splits counts images trimmed by Prune (see split.go).
	Splits int64 `json:"splits"`

	// BytesWritten is the cumulative data written into the cache
	// ("Actual Writes" in Figure 4c): each insert writes the new image,
	// each merge rewrites the merged image in its entirety.
	BytesWritten int64 `json:"bytes_written"`
	// RequestedBytes is the cumulative size of every requested
	// specification ("Requested Writes"): what a system creating each
	// requested image directly would write.
	RequestedBytes int64 `json:"requested_bytes"`
	// ContainerEffSum accumulates per-request container efficiency;
	// divide by Requests for the mean.
	ContainerEffSum float64 `json:"container_eff_sum"`
}

// MeanContainerEfficiency returns the mean per-request container
// efficiency, or 1 when no requests have been made.
func (s Stats) MeanContainerEfficiency() float64 {
	if s.Requests == 0 {
		return 1
	}
	return s.ContainerEffSum / float64(s.Requests)
}

// Manager is the LANDLORD cache manager. It is not safe for concurrent
// use: the simulator runs one Manager per goroutine, and the site
// service wraps one in a ConcurrentManager, which serves hits under a
// shared read lock and everything else under a write lock.
type Manager struct {
	repo   *pkggraph.Repo
	cfg    Config
	hasher *similarity.Hasher

	images []*Image // insertion order; nil entries are compacted lazily
	byID   map[uint64]*Image
	total  int64 // sum of image sizes
	clock  uint64
	nextID uint64
	stats  Stats

	// bandIndex, when non-nil, maps MinHash signatures to image IDs for
	// the merge scan's candidate retrieval (see findMergeTarget). It is
	// maintained alongside byID under the same locks.
	bandIndex *similarity.LSHIndex

	// fast, when non-nil, holds the interned-bitset hot path: the
	// package interner and the pooled per-request scratch (fastpath.go).
	// ordSrc issues Image.ord insertion ordinals.
	fast   *fastPath
	ordSrc uint64

	// clockSrc, when non-nil, replaces the manager-local logical clock
	// with a shared atomic counter: every shard of a ShardedManager
	// draws stamps from one source, so Seq stays globally dense across
	// shards. m.clock then tracks the last stamp THIS manager drew
	// (which keeps CheckIntegrity's lastUse ≤ clock bound local).
	clockSrc *atomic.Uint64

	// idOffset/idStride partition the image-ID space across shards:
	// shard i of N allocates IDs ≡ i (mod N), so ImageID mod N names
	// the owning shard in every mutation and checkpoint without any
	// format change. Stride 0 or 1 is the single-manager legacy.
	idOffset uint64
	idStride uint64
}

// stride returns the ID-allocation stride (1 for unsharded managers).
func (m *Manager) stride() uint64 {
	if m.idStride > 1 {
		return m.idStride
	}
	return 1
}

// alignNextID rounds nextID up into the manager's ID residue class
// after replay or import moved it arbitrarily. No-op when unsharded.
func (m *Manager) alignNextID() {
	st := m.stride()
	if st == 1 {
		return
	}
	if rem := m.nextID % st; rem != m.idOffset {
		m.nextID += (m.idOffset + st - rem) % st
	}
}

// tick draws the next logical-clock stamp: the shared atomic source
// when this manager is a shard, the local counter otherwise. Callers
// hold the lock that orders this manager's commits (the write lock or
// hitMu), so m.clock is safely published.
func (m *Manager) tick() uint64 {
	if m.clockSrc != nil {
		c := m.clockSrc.Add(1)
		m.clock = c
		return c
	}
	m.clock++
	return m.clock
}

// NewManager validates cfg and creates an empty Manager over repo.
func NewManager(repo *pkggraph.Repo, cfg Config) (*Manager, error) {
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("core: alpha %v out of range [0,1]", cfg.Alpha)
	}
	if cfg.Conflicts == nil {
		cfg.Conflicts = spec.NoConflicts{}
	}
	m := &Manager{
		repo: repo,
		cfg:  cfg,
		byID: make(map[uint64]*Image),
	}
	if cfg.MinHash != nil {
		h, err := similarity.NewHasher(cfg.MinHash.K, cfg.MinHash.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.MinHash.Margin < 0 {
			return nil, fmt.Errorf("core: MinHash margin %v must be non-negative", cfg.MinHash.Margin)
		}
		m.hasher = h
		if !cfg.NoBandIndex {
			// One band per signature position (rows=1): an image is a
			// band candidate iff it shares at least one MinHash value
			// with the query. Any image the margin prefilter would
			// accept (est < alpha+margin < 1) shares a position, so the
			// candidate set is a strict superset of the prefilter's
			// accept set and consulting it first changes no decision.
			idx, err := similarity.NewLSHIndex(cfg.MinHash.K, 1)
			if err != nil {
				return nil, err
			}
			m.bandIndex = idx
		}
	}
	if !cfg.NoFastPath {
		m.fast = newFastPath(repo)
	}
	return m, nil
}

// indexInsert/indexUpdate/indexRemove maintain the merge-scan band
// index alongside byID. Index failures (impossible unless signatures
// change length) degrade to the full scan rather than corrupting
// lookups.
func (m *Manager) indexInsert(img *Image) {
	if m.bandIndex == nil {
		return
	}
	if err := m.bandIndex.Insert(img.ID, img.sig); err != nil {
		m.bandIndex = nil
	}
}

func (m *Manager) indexUpdate(img *Image) {
	if m.bandIndex == nil {
		return
	}
	if err := m.bandIndex.Update(img.ID, img.sig); err != nil {
		m.bandIndex = nil
	}
}

func (m *Manager) indexRemove(id uint64) {
	if m.bandIndex == nil {
		return
	}
	m.bandIndex.Remove(id)
}

// MustNewManager is NewManager that panics on error.
func MustNewManager(repo *pkggraph.Repo, cfg Config) *Manager {
	m, err := NewManager(repo, cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Len returns the number of cached images.
func (m *Manager) Len() int { return len(m.byID) }

// TotalData returns the summed size of all cached images ("Total Data"
// in Figure 4b).
func (m *Manager) TotalData() int64 { return m.total }

// UniqueData returns the size of the union of all cached images'
// package sets ("Unique Data" in Figure 4b): what a perfectly
// deduplicated cache would store.
func (m *Manager) UniqueData() int64 {
	var u spec.Spec
	for _, img := range m.images {
		if img != nil {
			u = u.Union(img.Spec)
		}
	}
	return u.Size(m.repo)
}

// CacheEfficiency returns UniqueData/TotalData, the paper's cache
// efficiency metric. An empty cache is perfectly efficient (1).
func (m *Manager) CacheEfficiency() float64 {
	if m.total == 0 {
		return 1
	}
	return float64(m.UniqueData()) / float64(m.total)
}

// Stats returns a copy of the accumulated counters.
func (m *Manager) Stats() Stats { return m.stats }

// Images returns the cached images in insertion order. The returned
// slice is fresh; the *Image values are live and must not be modified.
func (m *Manager) Images() []*Image {
	out := make([]*Image, 0, len(m.byID))
	for _, img := range m.images {
		if img != nil {
			out = append(out, img)
		}
	}
	return out
}

// Alpha returns the configured merge threshold.
func (m *Manager) Alpha() float64 { return m.cfg.Alpha }

// Tracer returns the configured request tracer (nil when disabled).
func (m *Manager) Tracer() telemetry.Tracer { return m.cfg.Tracer }

// SetTracer replaces the request tracer. Harnesses use it to stack a
// collector (telemetry.Multi) onto an already-built Manager.
func (m *Manager) SetTracer(t telemetry.Tracer) { m.cfg.Tracer = t }

// sign computes the MinHash signature of s, or nil when the prefilter
// is disabled.
func (m *Manager) sign(s spec.Spec) similarity.Signature {
	if m.hasher == nil {
		return nil
	}
	return m.hasher.Sign(s)
}

// Request runs Algorithm 1 for specification s and returns how it was
// satisfied. Empty specifications are rejected: they indicate an
// unresolved job and must not silently hit every image.
//
// When a Tracer is configured, one telemetry.Event describing the
// request's whole lifecycle is emitted before returning; with a nil
// Tracer no per-request instrumentation state is allocated or updated.
func (m *Manager) Request(s spec.Spec) (Result, error) {
	return m.RequestTraced(s, nil)
}

// RequestTraced is Request with span-level latency attribution: each
// phase of Algorithm 1 (superset scan, merge scan, hit/merge/insert
// bookkeeping, WAL append, eviction) is recorded as a child span of at.
// A nil at costs one branch per span site — the uninstrumented fast
// path stays allocation-free.
func (m *Manager) RequestTraced(s spec.Spec, at *telemetry.ActiveTrace) (Result, error) {
	if s.Empty() {
		return Result{}, errEmptySpec()
	}
	m.tick()
	m.stats.Requests++
	reqBytes := s.Size(m.repo)
	m.stats.RequestedBytes += reqBytes

	var ev *telemetry.Event
	var start time.Time
	if m.cfg.Tracer != nil {
		start = time.Now()
		ev = &telemetry.Event{
			Seq:          m.clock,
			SpecPackages: s.Len(),
			RequestBytes: reqBytes,
			TraceID:      at.TraceID(),
		}
	}

	// Fast path: dense query words from the pooled scratch; signing is
	// deferred to the miss path (hits never need a signature). Reference
	// path: eager signature, string-set scans.
	var sig similarity.Signature
	var sc *scratch
	if m.fast != nil {
		sc = m.fast.get(s)
		defer m.fast.put(sc)
	} else {
		sig = m.sign(s)
	}

	// Phase 1: an existing image satisfies s.
	scanSpan := at.Begin(telemetry.StageSupersetScan, at.Root())
	var img *Image
	if sc != nil {
		img = m.findSupersetFast(s, sc, ev)
	} else {
		img = m.findSuperset(s, sig, ev)
	}
	if ev != nil {
		at.AttrInt(scanSpan, "scanned", int64(ev.SupersetScanned))
	}
	at.End(scanSpan)
	if img != nil {
		hitSpan := at.Begin(telemetry.StageHit, at.Root())
		if !mutantEnabled("touch") {
			img.lastUse = m.clock
		}
		img.served(s)
		m.stats.Hits++
		m.commitSpan(at, hitSpan, Mutation{Kind: MutTouch, ImageID: img.ID, LastUse: img.lastUse, RequestBytes: reqBytes})
		res := Result{Seq: m.clock, Op: OpHit, ImageID: img.ID, ImageVersion: img.Version, ImageSize: img.Size, RequestBytes: reqBytes}
		m.stats.ContainerEffSum += res.ContainerEfficiency()
		at.EndInt(hitSpan, "image_id", int64(img.ID))
		m.trace(ev, res, start)
		return res, nil
	}

	// Phase 2: merge into a close-enough image.
	mergeScan := at.Begin(telemetry.StageMergeScan, at.Root())
	if sc != nil {
		sig = m.signScratch(sc, s)
		img = m.findMergeTargetFast(s, sig, sc, ev)
	} else {
		img = m.findMergeTarget(s, sig, ev)
	}
	if ev != nil {
		at.AttrInt(mergeScan, "candidates", int64(len(ev.Candidates)))
	}
	at.End(mergeScan)
	if img != nil {
		mergeSpan := at.Begin(telemetry.StageMerge, at.Root())
		merged := img.Spec.Union(s)
		m.total -= img.Size
		img.Spec = merged
		img.Size = merged.Size(m.repo)
		img.Merges++
		img.Version++
		img.lastUse = m.clock
		img.served(s)
		if m.hasher != nil {
			if sc != nil {
				// img.sig is image-owned (cloned at insert), so the
				// pooled request signature can be folded in place.
				similarity.MergeSignaturesInto(img.sig, sig)
			} else {
				img.sig = similarity.MergeSignatures(img.sig, sig)
			}
			m.indexUpdate(img)
		}
		m.refreshBits(img)
		m.total += img.Size
		m.stats.Merges++
		m.stats.BytesWritten += img.Size // the merged image is rewritten whole
		if m.cfg.Commit != nil {
			m.commitSpan(at, mergeSpan, Mutation{
				Kind: MutMerge, ImageID: img.ID, LastUse: img.lastUse,
				Version: img.Version, Merges: img.Merges,
				RequestBytes: reqBytes, Packages: m.keysOf(img.Spec),
			})
		}
		res := Result{
			Seq:          m.clock,
			Op:           OpMerge,
			ImageID:      img.ID,
			ImageVersion: img.Version,
			ImageSize:    img.Size,
			RequestBytes: reqBytes,
			BytesWritten: img.Size,
		}
		at.EndInt(mergeSpan, "bytes_written", img.Size)
		res.Evicted, res.EvictedBytes = m.evictTraced(at, img.ID)
		m.stats.ContainerEffSum += res.ContainerEfficiency()
		m.trace(ev, res, start)
		return res, nil
	}

	// Phase 3: insert a new image.
	insSpan := at.Begin(telemetry.StageInsert, at.Root())
	sigStore := sig
	if sc != nil && sig != nil {
		// The pooled signature is recycled on return; the image keeps
		// its own copy.
		sigStore = append(similarity.Signature(nil), sig...)
	}
	img = &Image{
		ID:      m.nextID,
		Spec:    s,
		Size:    reqBytes,
		lastUse: m.clock,
		sig:     sigStore,
		hot:     s,
	}
	m.nextID += m.stride()
	m.appendImage(img)
	m.indexInsert(img)
	m.total += img.Size
	m.stats.Inserts++
	m.stats.BytesWritten += img.Size
	if m.cfg.Commit != nil {
		m.commitSpan(at, insSpan, Mutation{
			Kind: MutInsert, ImageID: img.ID, LastUse: img.lastUse,
			RequestBytes: reqBytes, Packages: m.keysOf(img.Spec),
		})
	}
	res := Result{
		Seq:          m.clock,
		Op:           OpInsert,
		ImageID:      img.ID,
		ImageVersion: img.Version,
		ImageSize:    img.Size,
		RequestBytes: reqBytes,
		BytesWritten: img.Size,
	}
	at.EndInt(insSpan, "bytes_written", img.Size)
	res.Evicted, res.EvictedBytes = m.evictTraced(at, img.ID)
	m.stats.ContainerEffSum += res.ContainerEfficiency()
	m.trace(ev, res, start)
	return res, nil
}

// commitSpan is commit wrapped in a wal_append child span: the commit
// hook is where the durability layer appends to its WAL, so its cost is
// attributed separately from the in-memory bookkeeping around it.
func (m *Manager) commitSpan(at *telemetry.ActiveTrace, parent telemetry.SpanRef, mut Mutation) {
	if m.cfg.Commit == nil {
		return
	}
	ws := at.Begin(telemetry.StageWALAppend, parent)
	m.cfg.Commit.Commit(mut)
	at.End(ws)
}

// evictTraced wraps evict in an evict span when a capacity limit makes
// eviction possible at all.
func (m *Manager) evictTraced(at *telemetry.ActiveTrace, keep uint64) (int, int64) {
	if m.cfg.Capacity <= 0 {
		return 0, 0
	}
	es := at.Begin(telemetry.StageEvict, at.Root())
	n, bytes := m.evict(keep)
	at.EndInt(es, "evicted_bytes", bytes)
	return n, bytes
}

// errEmptySpec is the rejection both request paths share.
func errEmptySpec() error { return fmt.Errorf("core: empty specification") }

// trace completes ev from the request's Result and cache state and
// emits it. ev is nil when tracing is disabled.
func (m *Manager) trace(ev *telemetry.Event, res Result, start time.Time) {
	if ev == nil {
		return
	}
	ev.Op = res.Op.String()
	ev.ImageID = res.ImageID
	ev.ImageVersion = res.ImageVersion
	ev.ImageSize = res.ImageSize
	ev.BytesWritten = res.BytesWritten
	ev.Evicted = res.Evicted
	ev.EvictedBytes = res.EvictedBytes
	ev.CachedBytes = m.total
	ev.Images = len(m.byID)
	ev.DurationNanos = time.Since(start).Nanoseconds()
	m.cfg.Tracer.Trace(ev)
}

// findSuperset returns the image with s ⊆ i, preferring the smallest
// satisfying image (least bloat for the job), or nil. When ev is
// non-nil it records the number of images the scan examined.
func (m *Manager) findSuperset(s spec.Spec, sig similarity.Signature, ev *telemetry.Event) *Image {
	var best *Image
	scanned := 0
	for _, img := range m.images {
		if img == nil || img.Spec.Len() < s.Len() {
			continue
		}
		if best != nil && img.Size >= best.Size {
			continue
		}
		scanned++
		if sig != nil && !signatureSubset(sig, img.sig) {
			continue
		}
		if s.SubsetOf(img.Spec) {
			best = img
		} else if mutantEnabled("superset") && s.Intersect(img.Spec).Len() >= s.Len()-1 {
			best = img
		}
	}
	if ev != nil {
		ev.SupersetScanned = scanned
	}
	return best
}

// signatureSubset is a necessary condition for subset containment: if
// A ⊆ B then min-hash(A ∪ B) = min-hash(B) positionwise. It never
// rejects a true superset, so using it as a prefilter preserves
// Algorithm 1's hits exactly.
func signatureSubset(sub, super similarity.Signature) bool {
	for i := range sub {
		if sub[i] < super[i] {
			return false
		}
	}
	return true
}

// candidate pairs an image with its (exact) distance from the request.
type candidate struct {
	img *Image
	d   float64
}

// findMergeTarget returns the closest non-conflicting image with
// d_j(s, j) < alpha, or nil. With MinHash enabled, exact distances are
// only computed for images whose estimated distance is below
// alpha+margin.
//
// When the band index is available it is consulted first: images that
// share no signature position with the request have estimated distance
// exactly 1, so whenever alpha+margin ≤ 1 the margin prefilter would
// reject them anyway and they can be skipped without estimating — the
// banded and scanned paths select the identical target (pinned by
// TestBandIndexIdenticalSelection). When the index is unavailable, or
// alpha+margin > 1 would admit disjoint images, the code falls back to
// the full linear scan.
//
// When ev is non-nil it records the prefilter's accept/reject counts
// and every candidate under α with its exact distance; skipped band
// non-candidates are counted as prefilter rejections so traces are
// identical with and without the index.
func (m *Manager) findMergeTarget(s spec.Spec, sig similarity.Signature, ev *telemetry.Event) *Image {
	alpha := m.cfg.Alpha
	if mutantEnabled("threshold") {
		alpha += 0.2
	}
	var banded map[uint64]struct{}
	if sig != nil && m.bandIndex != nil && m.cfg.Alpha+m.cfg.MinHash.Margin <= 1 {
		if ids, err := m.bandIndex.Candidates(sig); err == nil {
			banded = make(map[uint64]struct{}, len(ids))
			for _, id := range ids {
				banded[id] = struct{}{}
			}
		}
	}
	var cands []candidate
	for _, img := range m.images {
		if img == nil {
			continue
		}
		if sig != nil {
			if banded != nil {
				if _, ok := banded[img.ID]; !ok {
					if ev != nil {
						ev.PrefilterRejected++
					}
					continue
				}
			}
			est := similarity.EstimateDistance(sig, img.sig)
			if est >= m.cfg.Alpha+m.cfg.MinHash.Margin {
				if ev != nil {
					ev.PrefilterRejected++
				}
				continue
			}
			if ev != nil {
				ev.PrefilterAccepted++
			}
		}
		d := similarity.JaccardDistance(s, img.Spec)
		if d < alpha {
			cands = append(cands, candidate{img, d})
		}
	}
	return m.pickMergeTarget(s, cands, ev)
}

// pickMergeTarget is the tail both merge scans share: the stable
// distance sort, candidate telemetry, and the conflict walk that
// returns the closest non-conflicting candidate. Candidates must
// arrive in scan order so the stable sort breaks distance ties
// identically for the reference and fast pipelines.
func (m *Manager) pickMergeTarget(s spec.Spec, cands []candidate, ev *telemetry.Event) *Image {
	if !m.cfg.NoCandidateSort {
		sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	}
	if ev != nil && len(cands) > 0 {
		ev.Candidates = make([]telemetry.Candidate, len(cands))
		for i, c := range cands {
			ev.Candidates[i] = telemetry.Candidate{ImageID: c.img.ID, Distance: c.d}
		}
	}
	for _, c := range cands {
		if mutantEnabled("conflict") || !m.cfg.Conflicts.Conflicts(s, c.img.Spec) {
			return c.img
		}
	}
	return nil
}

// evict removes least-recently-used images until the cache fits its
// capacity, never evicting the image just used (keep). It returns the
// number of images and bytes evicted.
func (m *Manager) evict(keep uint64) (int, int64) {
	if m.cfg.Capacity <= 0 {
		return 0, 0
	}
	limit := m.cfg.Capacity
	if mutantEnabled("capacity") {
		limit += limit / 4
	}
	var n int
	var bytes int64
	for m.total > limit {
		var victim *Image
		vi := -1
		for i, img := range m.images {
			if img == nil || img.ID == keep {
				continue
			}
			older := victim == nil || img.lastUse < victim.lastUse
			if victim != nil && mutantEnabled("lru") {
				older = img.lastUse > victim.lastUse
			}
			if older {
				victim = img
				vi = i
			}
		}
		if victim == nil {
			break // only the in-use image remains; allow overflow
		}
		m.images[vi] = nil
		delete(m.byID, victim.ID)
		m.indexRemove(victim.ID)
		m.total -= victim.Size
		m.stats.Deletes++
		m.commit(Mutation{Kind: MutDelete, ImageID: victim.ID})
		n++
		bytes += victim.Size
	}
	if n > 0 {
		m.compact()
	}
	return n, bytes
}

// SetCapacity replaces the byte capacity (the shard's budget when this
// manager is one shard of a ShardedManager). Zero or negative means
// unlimited. It does not evict; callers shrink explicitly if needed.
func (m *Manager) SetCapacity(c int64) { m.cfg.Capacity = c }

// ShrinkToCapacity evicts least-recently-used images until the cache
// fits its capacity, sparing the most-recently-used image (the same
// image Request's eviction pass would spare, keeping the LRU-victim
// invariant uniform for the check harness). The balancer calls this
// after lowering a shard's budget. Evictions commit as ordinary
// MutDelete records.
func (m *Manager) ShrinkToCapacity() (int, int64) {
	if m.cfg.Capacity <= 0 {
		return 0, 0
	}
	var mru *Image
	for _, img := range m.images {
		if img == nil {
			continue
		}
		if mru == nil || img.lastUse > mru.lastUse {
			mru = img
		}
	}
	if mru == nil {
		return 0, 0
	}
	return m.evict(mru.ID)
}

// compact removes nil entries from the insertion-ordered slice once
// they outnumber the live images.
func (m *Manager) compact() {
	if len(m.images) < 2*len(m.byID)+8 {
		return
	}
	live := m.images[:0]
	for _, img := range m.images {
		if img != nil {
			live = append(live, img)
		}
	}
	m.images = live
}

// ImageByID returns the live cached image with the given ID, or false
// if it has been evicted. The returned Image must not be modified.
func (m *Manager) ImageByID(id uint64) (*Image, bool) {
	img, ok := m.byID[id]
	return img, ok
}
