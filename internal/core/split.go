package core

import (
	"fmt"

	"repro/internal/spec"
)

// Image splitting.
//
// The paper's abstract lists four image operations — LANDLORD
// "creates, merges, splits, or deletes container images" — and Section
// V describes the bloat mechanism splitting addresses: repeated merges
// accumulate infrequently used dependencies, and while eviction
// eventually removes a bloated image entirely, an image that is still
// *partially* hot never becomes idle enough to evict. Splitting trims
// such an image down to the union of the requests it has recently
// served, shedding the cold remainder (which can always be regenerated
// from the repository on demand).
//
// The manager tracks, per image, the union of specifications served
// since the image's last split check. Prune replaces any image whose
// hot subset is sufficiently smaller than the image itself.

// SplitResult reports one image split performed by Prune.
type SplitResult struct {
	ImageID      uint64
	OldSize      int64
	NewSize      int64
	BytesWritten int64 // the trimmed image is rewritten in full
}

// served records a request against an image's hot set. The union is
// skipped when s adds nothing — on the steady-state hit path the hot
// set has usually absorbed the request already, and Union would
// allocate a fresh copy per hit.
func (img *Image) served(s spec.Spec) {
	if !s.SubsetOf(img.hot) {
		img.hot = img.hot.Union(s)
	}
	img.hotCount++
}

// resetHot clears the image's hot-set tracking window.
func (img *Image) resetHot() {
	img.hot = spec.Spec{}
	img.hotCount = 0
}

// Prune performs the split pass: every image that has served at least
// minServed requests since its last check and whose hot set occupies
// at most maxUtilization of its bytes is replaced by its hot set. The
// pass then resets all hot-set windows. It returns the splits
// performed.
//
// maxUtilization must be in (0, 1): at 0.5, an image is split when
// less than half of it was recently useful. minServed guards freshly
// created or rarely used images, whose hot window is not yet
// informative (rarely used images are the LRU evictor's job, not the
// splitter's).
func (m *Manager) Prune(maxUtilization float64, minServed int) ([]SplitResult, error) {
	if maxUtilization <= 0 || maxUtilization >= 1 {
		return nil, fmt.Errorf("core: maxUtilization %v out of range (0,1)", maxUtilization)
	}
	if minServed < 1 {
		minServed = 1
	}
	var out []SplitResult
	for _, img := range m.images {
		if img == nil {
			continue
		}
		if img.hotCount >= minServed && !img.hot.Empty() {
			hotSize := img.hot.Size(m.repo)
			if float64(hotSize) <= maxUtilization*float64(img.Size) {
				res := SplitResult{
					ImageID:      img.ID,
					OldSize:      img.Size,
					NewSize:      hotSize,
					BytesWritten: hotSize,
				}
				m.total -= img.Size
				img.Spec = img.hot
				img.Size = hotSize
				img.Version++
				img.sig = m.sign(img.Spec)
				m.indexUpdate(img)
				m.refreshBits(img)
				m.total += img.Size
				m.stats.Splits++
				m.stats.BytesWritten += hotSize
				if m.cfg.Commit != nil {
					m.commit(Mutation{
						Kind: MutSplit, ImageID: img.ID,
						Version: img.Version, Packages: m.keysOf(img.Spec),
					})
				}
				out = append(out, res)
			}
		}
		img.resetHot()
	}
	return out, nil
}
