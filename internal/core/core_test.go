package core

import (
	"math/rand"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// flatRepo builds n independent packages of the given size each, so
// set sizes are exactly count*size and Jaccard arithmetic is easy to
// verify by hand.
func flatRepo(t *testing.T, n int, size int64) *pkggraph.Repo {
	t.Helper()
	pkgs := make([]pkggraph.Package, n)
	for i := range pkgs {
		pkgs[i] = pkggraph.Package{
			ID: pkggraph.PkgID(i), Name: "pkg", Version: versionOf(i), Platform: "p",
			Tier: pkggraph.TierLibrary, Size: size, FileCount: 1,
		}
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func versionOf(i int) string {
	return string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func sp(vs ...pkggraph.PkgID) spec.Spec { return spec.New(vs) }

func mgr(t *testing.T, repo *pkggraph.Repo, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(repo, cfg)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func request(t *testing.T, m *Manager, s spec.Spec) Result {
	t.Helper()
	r, err := m.Request(s)
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	return r
}

func TestNewManagerValidation(t *testing.T) {
	repo := flatRepo(t, 4, 1)
	if _, err := NewManager(repo, Config{Alpha: -0.1}); err == nil {
		t.Error("alpha < 0 accepted")
	}
	if _, err := NewManager(repo, Config{Alpha: 1.1}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewManager(repo, Config{Alpha: 0.5, MinHash: &MinHashConfig{K: 0}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewManager(repo, Config{Alpha: 0.5, MinHash: &MinHashConfig{K: 4, Margin: -1}}); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestMustNewManagerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewManager(flatRepo(t, 1, 1), Config{Alpha: 2})
}

func TestEmptyRequestRejected(t *testing.T) {
	m := mgr(t, flatRepo(t, 4, 1), Config{Alpha: 0.5})
	if _, err := m.Request(spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestInsertThenExactHit(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	m := mgr(t, repo, Config{Alpha: 0})
	s := sp(1, 2, 3)
	r1 := request(t, m, s)
	if r1.Op != OpInsert {
		t.Fatalf("first request op = %v, want insert", r1.Op)
	}
	if r1.BytesWritten != 300 || r1.ImageSize != 300 {
		t.Fatalf("insert accounting: %+v", r1)
	}
	r2 := request(t, m, s)
	if r2.Op != OpHit {
		t.Fatalf("second request op = %v, want hit", r2.Op)
	}
	if r2.BytesWritten != 0 {
		t.Fatalf("hit wrote %d bytes", r2.BytesWritten)
	}
	if r2.ImageID != r1.ImageID {
		t.Fatal("hit returned a different image")
	}
}

func TestSubsetHit(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1, 2, 3, 4))
	r := request(t, m, sp(2, 3))
	if r.Op != OpHit {
		t.Fatalf("subset request op = %v, want hit", r.Op)
	}
	if eff := r.ContainerEfficiency(); eff != 0.5 {
		t.Fatalf("container efficiency = %v, want 0.5", eff)
	}
}

func TestSupersetPrefersSmallestImage(t *testing.T) {
	repo := flatRepo(t, 20, 10)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1, 2, 3))                // small image first (else it would hit the large one)
	request(t, m, sp(1, 2, 3, 4, 5, 6, 7, 8)) // large image
	r := request(t, m, sp(1, 2))
	if r.Op != OpHit {
		t.Fatalf("op = %v, want hit", r.Op)
	}
	if r.ImageSize != 30 {
		t.Fatalf("hit image size = %d, want the smaller image (30)", r.ImageSize)
	}
}

func TestAlphaZeroNeverMerges(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1, 2, 3))
	r := request(t, m, sp(1, 2, 4)) // d = 0.5
	if r.Op != OpInsert {
		t.Fatalf("op = %v, want insert at alpha 0", r.Op)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMergeWithinAlpha(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	m := mgr(t, repo, Config{Alpha: 0.6})
	request(t, m, sp(1, 2, 3))
	r := request(t, m, sp(1, 2, 4)) // d = 2/4 = 0.5 < 0.6
	if r.Op != OpMerge {
		t.Fatalf("op = %v, want merge", r.Op)
	}
	if r.ImageSize != 400 {
		t.Fatalf("merged size = %d, want 400", r.ImageSize)
	}
	if r.BytesWritten != 400 {
		t.Fatalf("merge should rewrite the whole image: wrote %d", r.BytesWritten)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after merge", m.Len())
	}
	// The merged image now satisfies both originals.
	if r := request(t, m, sp(1, 2, 3)); r.Op != OpHit {
		t.Fatalf("original spec not satisfied after merge: %v", r.Op)
	}
}

func TestMergeBeyondAlphaInserts(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	m := mgr(t, repo, Config{Alpha: 0.4})
	request(t, m, sp(1, 2, 3))
	r := request(t, m, sp(1, 2, 4)) // d = 0.5 >= 0.4
	if r.Op != OpInsert {
		t.Fatalf("op = %v, want insert", r.Op)
	}
}

// mergeOrderSetup inserts two disjoint images (so the second cannot
// merge into the first) and issues a request overlapping both:
// d vs image1 = 1-4/11 ≈ 0.636, d vs image2 = 1-4/10 = 0.600, both
// below alpha 0.7. The closest candidate is image2.
func mergeOrderSetup(t *testing.T, noSort bool) Result {
	t.Helper()
	repo := flatRepo(t, 30, 1)
	m := mgr(t, repo, Config{Alpha: 0.7, NoCandidateSort: noSort})
	request(t, m, sp(1, 2, 3, 4, 5, 6))   // image1
	request(t, m, sp(10, 11, 12, 13, 20)) // image2 (disjoint: d=1 vs image1)
	return request(t, m, sp(1, 2, 3, 4, 10, 11, 12, 13, 21))
}

func TestMergePicksClosest(t *testing.T) {
	r := mergeOrderSetup(t, false)
	if r.Op != OpMerge {
		t.Fatalf("op = %v, want merge", r.Op)
	}
	if r.ImageSize != 10 { // image2 ∪ request = {1,2,3,4,10,11,12,13,20,21}
		t.Fatalf("merged into wrong image: size %d, want 10", r.ImageSize)
	}
}

func TestNoCandidateSortUsesInsertionOrder(t *testing.T) {
	r := mergeOrderSetup(t, true)
	if r.Op != OpMerge {
		t.Fatalf("op = %v, want merge", r.Op)
	}
	if r.ImageSize != 11 { // image1 ∪ request = {1..6,10..13,21}
		t.Fatalf("unsorted merge should take first candidate: size %d, want 11", r.ImageSize)
	}
}

func TestConflictPreventsMerge(t *testing.T) {
	// Two versions of the same family conflict under
	// SingleVersionPolicy.
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "py", Version: "2", Platform: "p", Tier: pkggraph.TierCore, Size: 10, FileCount: 1},
		{ID: 1, Name: "py", Version: "3", Platform: "p", Tier: pkggraph.TierCore, Size: 10, FileCount: 1},
		{ID: 2, Name: "a", Version: "1", Platform: "p", Tier: pkggraph.TierLibrary, Size: 10, FileCount: 1},
		{ID: 3, Name: "b", Version: "1", Platform: "p", Tier: pkggraph.TierLibrary, Size: 10, FileCount: 1},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	m := mgr(t, repo, Config{Alpha: 0.9, Conflicts: spec.NewSingleVersionPolicy(repo, "py")})
	request(t, m, sp(0, 2, 3))
	r := request(t, m, sp(1, 2, 3)) // close (d=0.5) but py2 vs py3 conflict
	if r.Op != OpInsert {
		t.Fatalf("op = %v, want insert due to conflict", r.Op)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	m := mgr(t, repo, Config{Alpha: 0, Capacity: 250})
	request(t, m, sp(1))      // image A, 100
	request(t, m, sp(2))      // image B, 100
	request(t, m, sp(1))      // touch A: B is now LRU
	r := request(t, m, sp(3)) // image C: 300 > 250, evict B
	if r.Evicted != 1 || r.EvictedBytes != 100 {
		t.Fatalf("evicted %d/%d, want 1/100", r.Evicted, r.EvictedBytes)
	}
	if m.TotalData() != 200 {
		t.Fatalf("TotalData = %d, want 200", m.TotalData())
	}
	// A must still be cached, B gone.
	if r := request(t, m, sp(1)); r.Op != OpHit {
		t.Fatal("recently used image was evicted")
	}
	if r := request(t, m, sp(2)); r.Op != OpInsert {
		t.Fatal("LRU image should have been evicted")
	}
}

func TestEvictionNeverRemovesInUseImage(t *testing.T) {
	repo := flatRepo(t, 10, 100)
	m := mgr(t, repo, Config{Alpha: 0, Capacity: 150})
	r := request(t, m, sp(1, 2)) // 200 bytes > capacity
	if r.Op != OpInsert {
		t.Fatal("expected insert")
	}
	if m.Len() != 1 {
		t.Fatal("oversized image must be kept while in use")
	}
	if m.TotalData() != 200 {
		t.Fatalf("TotalData = %d", m.TotalData())
	}
}

func TestStatsAccounting(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	m := mgr(t, repo, Config{Alpha: 0.6})
	request(t, m, sp(1, 2, 3)) // insert, 30 written
	request(t, m, sp(1, 2, 3)) // hit, 0
	request(t, m, sp(1, 2, 4)) // merge -> {1,2,3,4}, 40 written
	st := m.Stats()
	if st.Requests != 3 || st.Inserts != 1 || st.Hits != 1 || st.Merges != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if st.BytesWritten != 70 {
		t.Fatalf("BytesWritten = %d, want 70", st.BytesWritten)
	}
	if st.RequestedBytes != 90 {
		t.Fatalf("RequestedBytes = %d, want 90", st.RequestedBytes)
	}
	// Efficiencies: 1 (insert) + 1 (hit) + 30/40 (merge) = 2.75/3.
	if got := st.MeanContainerEfficiency(); got < 0.916 || got > 0.917 {
		t.Fatalf("MeanContainerEfficiency = %v", got)
	}
}

func TestUniqueVsTotalData(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1, 2, 3))
	request(t, m, sp(2, 3, 4))
	if m.TotalData() != 60 {
		t.Fatalf("TotalData = %d, want 60", m.TotalData())
	}
	if m.UniqueData() != 40 {
		t.Fatalf("UniqueData = %d, want 40 ({1,2,3,4})", m.UniqueData())
	}
	if eff := m.CacheEfficiency(); eff < 0.66 || eff > 0.67 {
		t.Fatalf("CacheEfficiency = %v, want 2/3", eff)
	}
}

func TestCacheEfficiencyEmpty(t *testing.T) {
	m := mgr(t, flatRepo(t, 4, 1), Config{Alpha: 0})
	if m.CacheEfficiency() != 1 {
		t.Fatal("empty cache efficiency should be 1")
	}
}

func TestImagesSnapshot(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	m := mgr(t, repo, Config{Alpha: 0})
	request(t, m, sp(1))
	request(t, m, sp(2))
	imgs := m.Images()
	if len(imgs) != 2 {
		t.Fatalf("Images len = %d", len(imgs))
	}
	if imgs[0].ID >= imgs[1].ID {
		t.Fatal("Images not in insertion order")
	}
}

func TestOpString(t *testing.T) {
	if OpHit.String() != "hit" || OpMerge.String() != "merge" || OpInsert.String() != "insert" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() == "" {
		t.Fatal("unknown op should render")
	}
}

func TestMergeCounterOnImage(t *testing.T) {
	repo := flatRepo(t, 10, 1)
	m := mgr(t, repo, Config{Alpha: 0.9})
	request(t, m, sp(1, 2, 3))
	request(t, m, sp(1, 2, 4))
	request(t, m, sp(1, 2, 5))
	imgs := m.Images()
	if len(imgs) != 1 || imgs[0].Merges != 2 {
		t.Fatalf("images = %d, merges = %d", len(imgs), imgs[0].Merges)
	}
}

// TestMinHashAgreesWithExact replays the same request stream through an
// exact manager and a MinHash-prefiltered manager and requires
// identical operation sequences: the prefilter is a superset-safe
// candidate cut, and with a generous margin the merge decisions should
// coincide on realistic workloads.
func TestMinHashAgreesWithExact(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 10
	cfg.LibraryFamilies = 40
	cfg.ApplicationFamilies = 70
	repo := pkggraph.MustGenerate(cfg, 17)
	rng := rand.New(rand.NewSource(3))

	exact := mgr(t, repo, Config{Alpha: 0.75})
	approx := mgr(t, repo, Config{Alpha: 0.75, MinHash: &MinHashConfig{K: 128, Seed: 1, Margin: 0.3}})

	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(5)
		ids := make([]pkggraph.PkgID, n)
		for j := range ids {
			ids[j] = pkggraph.PkgID(rng.Intn(repo.Len()))
		}
		s := spec.WithClosure(repo, ids)
		re, err := exact.Request(s)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := approx.Request(s)
		if err != nil {
			t.Fatal(err)
		}
		if re.Op != ra.Op {
			t.Fatalf("request %d: exact %v vs minhash %v", i, re.Op, ra.Op)
		}
	}
}

func TestAlphaOneGlobsEverythingWithSharedCore(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 6
	cfg.LibraryFamilies = 24
	cfg.ApplicationFamilies = 40
	repo := pkggraph.MustGenerate(cfg, 23)
	m := mgr(t, repo, Config{Alpha: 1})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		id := pkggraph.PkgID(rng.Intn(repo.Len()))
		request(t, m, spec.WithClosure(repo, []pkggraph.PkgID{id}))
	}
	// Closures share core packages, so d < 1 for every pair: a single
	// ever-growing image.
	if m.Len() != 1 {
		t.Fatalf("alpha=1 kept %d images, want 1", m.Len())
	}
	if m.CacheEfficiency() != 1 {
		t.Fatalf("single image cache efficiency = %v, want 1", m.CacheEfficiency())
	}
}

func TestImageByID(t *testing.T) {
	repo := flatRepo(t, 10, 10)
	m := mgr(t, repo, Config{Alpha: 0, Capacity: 15})
	r1 := request(t, m, sp(1))
	if img, ok := m.ImageByID(r1.ImageID); !ok || img.Size != 10 {
		t.Fatalf("ImageByID: %v %v", img, ok)
	}
	request(t, m, sp(2)) // evicts image 1 (capacity 15)
	if _, ok := m.ImageByID(r1.ImageID); ok {
		t.Fatal("evicted image still resolvable")
	}
	if _, ok := m.ImageByID(999); ok {
		t.Fatal("bogus id resolvable")
	}
}
