package core

import "testing"

func TestPruneValidation(t *testing.T) {
	m := mgr(t, flatRepo(t, 10, 1), Config{Alpha: 0.9})
	if _, err := m.Prune(0, 1); err == nil {
		t.Error("utilization 0 accepted")
	}
	if _, err := m.Prune(1, 1); err == nil {
		t.Error("utilization 1 accepted")
	}
	if _, err := m.Prune(1.5, 1); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

func TestPruneSplitsBloatedImage(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.9})
	// Build a bloated image: merge several overlapping specs.
	request(t, m, sp(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	request(t, m, sp(1, 2, 11, 12, 13, 14, 15, 16, 17, 18)) // merge -> 18 pkgs
	if m.Len() != 1 {
		t.Fatalf("setup: want one merged image, got %d", m.Len())
	}
	// Start a fresh hot window, then serve only a small corner.
	if _, err := m.Prune(0.5, 100); err != nil { // high minServed: no split, just reset
		t.Fatal(err)
	}
	request(t, m, sp(1, 2))
	request(t, m, sp(1, 3))
	// Hot set {1,2,3} = 30 bytes of a 180-byte image: well under 50%.
	splits, err := m.Prune(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 {
		t.Fatalf("splits = %d, want 1", len(splits))
	}
	s := splits[0]
	if s.OldSize != 180 || s.NewSize != 30 || s.BytesWritten != 30 {
		t.Fatalf("split accounting: %+v", s)
	}
	if m.TotalData() != 30 {
		t.Fatalf("TotalData = %d, want 30", m.TotalData())
	}
	if m.Stats().Splits != 1 {
		t.Fatalf("Splits counter = %d", m.Stats().Splits)
	}
	// The trimmed image still serves its hot subset...
	if r := request(t, m, sp(1, 2, 3)); r.Op != OpHit {
		t.Fatalf("hot subset no longer served: %v", r.Op)
	}
	// ...while the shed packages are gone (insert or merge, not hit).
	if r := request(t, m, sp(9, 10)); r.Op == OpHit {
		t.Fatal("shed packages still hit")
	}
}

func TestPruneRespectsMinServed(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.9})
	request(t, m, sp(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	m.Prune(0.5, 100) // reset window
	request(t, m, sp(1, 2))
	splits, err := m.Prune(0.5, 2) // only one request served
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Fatalf("split despite minServed: %+v", splits)
	}
}

func TestPruneKeepsWellUtilizedImage(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.9})
	request(t, m, sp(1, 2, 3, 4))
	m.Prune(0.5, 100)          // reset
	request(t, m, sp(1, 2, 3)) // 75% utilized
	request(t, m, sp(2, 3, 4))
	splits, err := m.Prune(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Fatalf("well-utilized image split: %+v", splits)
	}
	if m.TotalData() != 40 {
		t.Fatalf("TotalData changed: %d", m.TotalData())
	}
}

func TestPruneResetsWindow(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.9})
	request(t, m, sp(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	m.Prune(0.5, 100)
	request(t, m, sp(1, 2))
	request(t, m, sp(1, 2))
	if _, err := m.Prune(0.5, 5); err != nil { // below minServed: reset only
		t.Fatal(err)
	}
	// Window was reset: two more requests are again below minServed 5.
	request(t, m, sp(1, 2))
	request(t, m, sp(1, 2))
	splits, _ := m.Prune(0.5, 3)
	if len(splits) != 0 {
		t.Fatal("window not reset by previous Prune")
	}
}

func TestPruneWithMinHashKeepsSignaturesConsistent(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.6, MinHash: DefaultMinHash()})
	request(t, m, sp(1, 2, 3, 4, 5, 6, 7, 8, 9, 10))
	m.Prune(0.5, 100)
	request(t, m, sp(1, 2))
	request(t, m, sp(2, 3))
	if splits, _ := m.Prune(0.5, 2); len(splits) != 1 {
		t.Fatal("expected a split")
	}
	// Post-split, signature-based paths must agree with the new spec:
	// {1,2,3} is a subset (hit); {1,2,4} merges (d=0.5 < 0.6).
	if r := request(t, m, sp(1, 2, 3)); r.Op != OpHit {
		t.Fatalf("subset after split: %v", r.Op)
	}
	if r := request(t, m, sp(1, 2, 4)); r.Op != OpMerge {
		t.Fatalf("merge after split: %v", r.Op)
	}
}

func TestInsertSeedsHotWindow(t *testing.T) {
	repo := flatRepo(t, 30, 10)
	m := mgr(t, repo, Config{Alpha: 0.9})
	request(t, m, sp(1, 2, 3))
	// A fresh image's hot set is its own spec: fully utilized, so a
	// prune pass must not split it even with minServed 1.
	splits, err := m.Prune(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 0 {
		t.Fatalf("fresh image split: %+v", splits)
	}
}
