package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/similarity"
	"repro/internal/spec"
	"repro/internal/workload"
)

// refManager is a deliberately naive reimplementation of Algorithm 1
// used as a test oracle: straight scans, no signatures, no candidate
// caching, no lazy compaction. Any divergence between it and Manager
// on the same request stream is a bug in one of them.
type refManager struct {
	repo     *pkggraph.Repo
	alpha    float64
	capacity int64

	images  []refImage
	clock   uint64
	nextID  uint64
	total   int64
	deletes int
}

type refImage struct {
	id      uint64
	spec    spec.Spec
	size    int64
	lastUse uint64
	order   int // insertion order for stable candidate ties
}

type refOutcome struct {
	op      Op
	imageID uint64
	size    int64
	evicted int
}

func (r *refManager) request(s spec.Spec) refOutcome {
	r.clock++
	// Phase 1: smallest superset.
	best := -1
	for i := range r.images {
		if s.SubsetOf(r.images[i].spec) {
			if best < 0 || r.images[i].size < r.images[best].size {
				best = i
			}
		}
	}
	if best >= 0 {
		r.images[best].lastUse = r.clock
		return refOutcome{op: OpHit, imageID: r.images[best].id, size: r.images[best].size}
	}
	// Phase 2: closest candidate under alpha (stable by insertion).
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i := range r.images {
		d := similarity.JaccardDistance(s, r.images[i].spec)
		if d < r.alpha {
			cands = append(cands, cand{i, d})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	if len(cands) > 0 {
		i := cands[0].idx
		r.total -= r.images[i].size
		r.images[i].spec = r.images[i].spec.Union(s)
		r.images[i].size = r.images[i].spec.Size(r.repo)
		r.images[i].lastUse = r.clock
		r.total += r.images[i].size
		out := refOutcome{op: OpMerge, imageID: r.images[i].id, size: r.images[i].size}
		out.evicted = r.evict(r.images[i].id)
		return out
	}
	// Phase 3: insert.
	img := refImage{
		id: r.nextID, spec: s, size: s.Size(r.repo),
		lastUse: r.clock, order: int(r.nextID),
	}
	r.nextID++
	r.images = append(r.images, img)
	r.total += img.size
	out := refOutcome{op: OpInsert, imageID: img.id, size: img.size}
	out.evicted = r.evict(img.id)
	return out
}

func (r *refManager) evict(keep uint64) int {
	if r.capacity <= 0 {
		return 0
	}
	n := 0
	for r.total > r.capacity {
		victim := -1
		for i := range r.images {
			if r.images[i].id == keep {
				continue
			}
			if victim < 0 || r.images[i].lastUse < r.images[victim].lastUse {
				victim = i
			}
		}
		if victim < 0 {
			break
		}
		r.total -= r.images[victim].size
		r.images = append(r.images[:victim], r.images[victim+1:]...)
		r.deletes++
		n++
	}
	return n
}

// TestManagerMatchesReference replays random dependency-closed streams
// through the optimized Manager (exact mode) and the oracle, requiring
// identical operations, image identities, sizes, and eviction counts
// at every step, across several alphas and capacities.
func TestManagerMatchesReference(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo := pkggraph.MustGenerate(cfg, 77)

	for _, alpha := range []float64{0, 0.4, 0.75, 0.95, 1.0} {
		for _, capMult := range []int64{0, 2, 8} {
			capacity := int64(0)
			if capMult > 0 {
				capacity = repo.TotalSize() / capMult
			}
			m := mgr(t, repo, Config{Alpha: alpha, Capacity: capacity})
			ref := &refManager{repo: repo, alpha: alpha, capacity: capacity}

			gen := workload.NewDepClosure(repo, int64(alpha*100)+capMult)
			gen.MaxInitial = 6
			rng := rand.New(rand.NewSource(5))
			var history []spec.Spec
			for i := 0; i < 250; i++ {
				var s spec.Spec
				if len(history) > 0 && rng.Float64() < 0.4 {
					s = history[rng.Intn(len(history))] // repeats drive hits
				} else {
					s = gen.Next()
					history = append(history, s)
				}
				got, err := m.Request(s)
				if err != nil {
					t.Fatalf("alpha=%v cap=%d step %d: %v", alpha, capacity, i, err)
				}
				want := ref.request(s)
				if got.Op != want.op || got.ImageID != want.imageID ||
					got.ImageSize != want.size || got.Evicted != want.evicted {
					t.Fatalf("alpha=%v cap=%d step %d diverged:\n manager: op=%v id=%d size=%d evicted=%d\n oracle:  op=%v id=%d size=%d evicted=%d",
						alpha, capacity, i,
						got.Op, got.ImageID, got.ImageSize, got.Evicted,
						want.op, want.imageID, want.size, want.evicted)
				}
				if m.TotalData() != ref.total || m.Len() != len(ref.images) {
					t.Fatalf("alpha=%v cap=%d step %d state diverged: total %d vs %d, images %d vs %d",
						alpha, capacity, i, m.TotalData(), ref.total, m.Len(), len(ref.images))
				}
			}
			if int(m.Stats().Deletes) != ref.deletes {
				t.Fatalf("alpha=%v cap=%d delete totals diverged: %d vs %d",
					alpha, capacity, m.Stats().Deletes, ref.deletes)
			}
		}
	}
}

// TestManagerMinHashNearReference replays a stream through the MinHash
// manager and the oracle, tolerating no divergence: the subset
// prefilter is exact-safe and the generous margin keeps candidate sets
// identical on this workload. A systematic mismatch would indicate the
// prefilter cutting true candidates.
func TestManagerMinHashNearReference(t *testing.T) {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo := pkggraph.MustGenerate(cfg, 78)

	m := mgr(t, repo, Config{
		Alpha:   0.75,
		MinHash: &MinHashConfig{K: 128, Seed: 3, Margin: 0.3},
	})
	ref := &refManager{repo: repo, alpha: 0.75}
	gen := workload.NewDepClosure(repo, 9)
	gen.MaxInitial = 6
	for i := 0; i < 200; i++ {
		s := gen.Next()
		got, err := m.Request(s)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.request(s)
		if got.Op != want.op || got.ImageID != want.imageID {
			t.Fatalf("step %d diverged: manager %v/%d vs oracle %v/%d",
				i, got.Op, got.ImageID, want.op, want.imageID)
		}
	}
}
