package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/spec"
)

func TestRequestCtxExpiredAbortsBeforeMutation(t *testing.T) {
	repo := concRepo(t)
	hook := &recordingHook{}
	cm, err := NewConcurrent(repo, Config{Alpha: 0.75, Commit: hook})
	if err != nil {
		t.Fatal(err)
	}
	pool := specPool(repo, 10, 1)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cm.RequestCtx(ctx, pool[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RequestCtx(cancelled) = %v, want context.Canceled", err)
	}
	if got := cm.Stats().Requests; got != 0 {
		t.Fatalf("cancelled request mutated stats: Requests=%d", got)
	}
	if len(hook.muts) != 0 {
		t.Fatalf("cancelled request committed %d mutations", len(hook.muts))
	}

	// A live context behaves exactly like Request.
	res, err := cm.RequestCtx(context.Background(), pool[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != OpInsert && res.Op != OpMerge {
		t.Fatalf("first request op = %v, want insert/merge", res.Op)
	}
	if len(hook.muts) == 0 {
		t.Fatal("live request committed no mutations")
	}
}

func TestPeekHitMutatesNothing(t *testing.T) {
	repo := concRepo(t)
	hook := &recordingHook{}
	cm, err := NewConcurrent(repo, Config{Alpha: 0.75, Commit: hook})
	if err != nil {
		t.Fatal(err)
	}
	pool := specPool(repo, 5, 2)

	// Empty cache: nothing to peek.
	if _, ok := cm.PeekHit(pool[0]); ok {
		t.Fatal("PeekHit on empty cache reported a hit")
	}

	ins, err := cm.Request(pool[0])
	if err != nil {
		t.Fatal(err)
	}
	statsBefore := cm.Stats()
	mutsBefore := len(hook.muts)
	writeAcqs := cm.WriteLockAcquisitions()

	res, ok := cm.PeekHit(pool[0])
	if !ok {
		t.Fatal("PeekHit missed a spec the cache covers")
	}
	if res.Op != OpHit || res.ImageID != ins.ImageID {
		t.Fatalf("PeekHit = %+v, want hit on image %d", res, ins.ImageID)
	}
	if res.Seq != 0 {
		t.Fatalf("PeekHit Seq = %d, want 0 (never linearized)", res.Seq)
	}

	if got := cm.Stats(); got != statsBefore {
		t.Fatalf("PeekHit mutated stats: %+v -> %+v", statsBefore, got)
	}
	if len(hook.muts) != mutsBefore {
		t.Fatalf("PeekHit committed %d mutations", len(hook.muts)-mutsBefore)
	}
	if got := cm.WriteLockAcquisitions(); got != writeAcqs {
		t.Fatal("PeekHit took the write lock")
	}

	// And the LRU stamp is untouched: a real Request after the peek
	// still sees the image at its pre-peek lastUse (the peek did not
	// refresh it), which we observe via the mutation the hit commits.
	hit, err := cm.Request(pool[0])
	if err != nil {
		t.Fatal(err)
	}
	if hit.Op != OpHit || hit.Seq != ins.Seq+1 {
		t.Fatalf("post-peek request = %+v, want hit at seq %d", hit, ins.Seq+1)
	}

	var empty spec.Spec
	if _, ok := cm.PeekHit(empty); ok {
		t.Fatal("PeekHit(empty spec) reported a hit")
	}
}
