package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPruneVsHitOrdering pins the ordering contract between the
// read-path hit commit (under hitMu, no write lock) and concurrent
// split passes (under the write lock):
//
//  1. Result.Seq stays a dense permutation of 1..requests — a prune
//     pass never consumes or duplicates a clock value;
//  2. stamped mutations reach the commit hook in exactly Seq order
//     with splits only at request boundaries, never inside a
//     request's mutation group (a merge/insert and its evictions
//     commit in one critical section that prune cannot enter);
//  3. the commit stream replays to the live state, splits included.
//
// This is the regression test for the prune-vs-hit window: a prune
// that sneaked in between a hit's clock stamp and its hook emission
// would break (2), and one racing the clock itself would break (1).
func TestPruneVsHitOrdering(t *testing.T) {
	repo := concRepo(t)
	cfg := Config{Alpha: 0.8} // unlimited: images bloat, so splits actually fire
	cm, err := NewConcurrent(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hook := &recordingHook{}
	cm.WithExclusive(func(m *Manager) { m.cfg.Commit = hook })

	// Pre-warm with the full pool: at α=0.8 the closures merge into a
	// few bloated images. The workers then hit only a narrow subset, so
	// images stay partially hot — exactly the state Prune splits.
	pool := specPool(repo, 40, 91)
	hot := pool[:3]
	for _, s := range pool {
		if _, err := cm.Request(s); err != nil {
			t.Fatal(err)
		}
	}
	warm := len(pool)

	const workers = 8
	perWorker := 2000
	if testing.Short() {
		perWorker = 400
	}
	var running atomic.Int64
	running.Store(workers - 1)
	seqs := make([][]uint64, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == 0 {
				// The pruner: a split pass whenever enough hit traffic
				// has accumulated to make the pass non-trivial (the hot
				// windows reset on every pass, so back-to-back passes
				// would race an empty window and split nothing).
				last := cm.Stats().Requests
				for running.Load() > 0 {
					if now := cm.Stats().Requests; now-last >= 300 {
						if _, err := cm.Prune(0.7, 1); err != nil {
							t.Errorf("prune: %v", err)
							return
						}
						last = now
					} else {
						runtime.Gosched()
					}
				}
				return
			}
			defer running.Add(-1)
			for i := 0; i < perWorker; i++ {
				res, err := cm.Request(hot[(g*7+i)%len(hot)])
				if err != nil {
					t.Errorf("worker %d request %d: %v", g, i, err)
					return
				}
				seqs[g] = append(seqs[g], res.Seq)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// If scheduling never gave the pruner a non-trivial window (fast
	// machines can drain the workers in milliseconds), force one split
	// epoch deterministically: reset the hot windows, focus traffic on
	// the hot subset, and prune the now-partially-hot images.
	extra := 0
	if cm.Stats().Splits == 0 {
		if _, err := cm.Prune(0.7, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			res, err := cm.Request(hot[i%len(hot)])
			if err != nil {
				t.Fatal(err)
			}
			seqs[1] = append(seqs[1], res.Seq)
			extra++
		}
		if _, err := cm.Prune(0.7, 1); err != nil {
			t.Fatal(err)
		}
	}

	// (1) Dense Seq: warm-up plus every worker request, each seq once.
	total := warm + (workers-1)*perWorker + extra
	seen := make([]bool, total+1)
	count := warm
	for s := 1; s <= warm; s++ {
		seen[s] = true
	}
	for _, ss := range seqs {
		for _, s := range ss {
			if s == 0 || s > uint64(total) || seen[s] {
				t.Fatalf("Seq %d out of range or duplicated (want a dense permutation of 1..%d)", s, total)
			}
			seen[s] = true
			count++
		}
	}
	if count != total {
		t.Fatalf("recorded %d Seq values, want %d", count, total)
	}

	// (2) Hook order: stamped mutations in exactly Seq order; a delete
	// group is glued to its stamped mutation with no split inside.
	wantStamp := uint64(0)
	splits := 0
	for i, mut := range hook.muts {
		switch mut.Kind {
		case MutTouch, MutMerge, MutInsert:
			wantStamp++
			if mut.LastUse != wantStamp {
				t.Fatalf("mutation %d: %s stamped %d, want %d (prune interleaved with a request's commit)",
					i, mut.Kind, mut.LastUse, wantStamp)
			}
		case MutDelete:
			switch hook.muts[i-1].Kind {
			case MutMerge, MutInsert, MutDelete:
			default:
				t.Fatalf("mutation %d: delete follows %s; evictions must be contiguous with their merge/insert",
					i, hook.muts[i-1].Kind)
			}
		case MutSplit:
			splits++
		}
	}
	if wantStamp != uint64(total) {
		t.Fatalf("hook saw %d stamped mutations, want %d", wantStamp, total)
	}
	if splits == 0 {
		t.Fatal("no split mutations recorded; the pruner never raced the hit traffic")
	}

	// (3) The stream replays to the live state.
	oracle := mgr(t, repo, Config{Alpha: 0.8})
	for i, mut := range hook.muts {
		if err := oracle.ApplyMutation(mut); err != nil {
			t.Fatalf("replaying mutation %d (%s): %v", i, mut.Kind, err)
		}
	}
	if got, want := stateJSON(t, oracle.ExportState()), stateJSON(t, cm.ExportState()); got != want {
		t.Fatalf("replayed state diverges from live state:\n got %s\nwant %s", got, want)
	}
}
