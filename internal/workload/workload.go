// Package workload generates simulated HTC job request streams, the
// two schemes of Section VI:
//
//   - the dependency scheme: "for each simulated request, we chose a
//     random selection of packages and then added the closure of the
//     package dependencies", with the initial selection capped at 100
//     packages;
//   - the uniform random scheme of Figure 7: images with the same
//     cardinality as dependency-scheme images but contents chosen
//     uniformly at random from the whole repository, "ignoring usage
//     information and package dependencies".
//
// Streams are built from a pool of unique specifications, each repeated
// a configurable number of times in a shuffled order (Figure 5 uses 500
// unique jobs repeated five times). All randomness is seeded and
// deterministic.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Generator produces one job specification per call.
type Generator interface {
	// Next returns the next specification in the stream.
	Next() spec.Spec
}

// DepClosure implements the paper's dependency scheme.
type DepClosure struct {
	repo *pkggraph.Repo
	rng  *rand.Rand
	// MinInitial and MaxInitial bound the uniform random size of the
	// initial package selection (before closure). The paper uses "up
	// to 100 packages".
	MinInitial, MaxInitial int
}

// NewDepClosure creates a dependency-scheme generator with the paper's
// defaults (initial selections of 1..100 packages).
func NewDepClosure(repo *pkggraph.Repo, seed int64) *DepClosure {
	return &DepClosure{
		repo:       repo,
		rng:        rand.New(rand.NewSource(seed)),
		MinInitial: 1,
		MaxInitial: 100,
	}
}

// Next picks a uniform random initial selection and closes it over the
// dependency graph.
func (g *DepClosure) Next() spec.Spec {
	n := g.MinInitial
	if g.MaxInitial > g.MinInitial {
		n += g.rng.Intn(g.MaxInitial - g.MinInitial + 1)
	}
	if n > g.repo.Len() {
		n = g.repo.Len()
	}
	seen := make(map[pkggraph.PkgID]bool, n)
	initial := make([]pkggraph.PkgID, 0, n)
	for len(initial) < n {
		id := pkggraph.PkgID(g.rng.Intn(g.repo.Len()))
		if !seen[id] {
			seen[id] = true
			initial = append(initial, id)
		}
	}
	return spec.WithClosure(g.repo, initial)
}

// UniformRandom implements the Figure 7 scheme: each image matches the
// cardinality of a dependency-scheme image but its packages are chosen
// uniformly at random with no structure.
type UniformRandom struct {
	repo  *pkggraph.Repo
	rng   *rand.Rand
	inner *DepClosure
}

// NewUniformRandom creates the random-scheme generator. It draws
// cardinalities from an embedded dependency-scheme generator so the two
// schemes produce size-comparable images, exactly as the paper does.
func NewUniformRandom(repo *pkggraph.Repo, seed int64) *UniformRandom {
	return &UniformRandom{
		repo:  repo,
		rng:   rand.New(rand.NewSource(seed + 1)),
		inner: NewDepClosure(repo, seed),
	}
}

// SetCardinality bounds the initial selection size of the embedded
// dependency-scheme generator (whose closure length sets this
// generator's cardinalities). Harnesses over small repositories use it
// to keep specs proportionate.
func (g *UniformRandom) SetCardinality(min, max int) {
	g.inner.MinInitial, g.inner.MaxInitial = min, max
}

// Next returns a structureless image with dependency-scheme cardinality.
func (g *UniformRandom) Next() spec.Spec {
	n := g.inner.Next().Len()
	if n > g.repo.Len() {
		n = g.repo.Len()
	}
	seen := make(map[pkggraph.PkgID]bool, n)
	ids := make([]pkggraph.PkgID, 0, n)
	for len(ids) < n {
		id := pkggraph.PkgID(g.rng.Intn(g.repo.Len()))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return spec.New(ids)
}

// UniqueSpecs draws from gen until n distinct specifications (by
// content) have been collected. It errors out if the generator fails to
// produce a fresh spec after a large number of attempts, which
// indicates the repository is too small for the requested pool.
func UniqueSpecs(gen Generator, n int) ([]spec.Spec, error) {
	specs := make([]spec.Spec, 0, n)
	byHash := make(map[uint64][]spec.Spec, n)
	attempts := 0
	for len(specs) < n {
		attempts++
		if attempts > 100*n+1000 {
			return nil, fmt.Errorf("workload: could not find %d unique specs after %d attempts", n, attempts)
		}
		s := gen.Next()
		dup := false
		for _, prev := range byHash[s.Hash()] {
			if prev.Equal(s) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		byHash[s.Hash()] = append(byHash[s.Hash()], s)
		specs = append(specs, s)
	}
	return specs, nil
}

// RepeatShuffled builds the request stream: every spec appears exactly
// repeats times, in an order shuffled deterministically by seed. This
// models concurrent submission of jobs "from many different versions of
// an application".
func RepeatShuffled(specs []spec.Spec, repeats int, seed int64) []spec.Spec {
	if repeats < 1 {
		repeats = 1
	}
	stream := make([]spec.Spec, 0, len(specs)*repeats)
	for r := 0; r < repeats; r++ {
		stream = append(stream, specs...)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(stream), func(i, j int) {
		stream[i], stream[j] = stream[j], stream[i]
	})
	return stream
}

// Stream is a convenience: draw n unique specs from gen and repeat each
// `repeats` times in shuffled order.
func Stream(gen Generator, n, repeats int, seed int64) ([]spec.Spec, error) {
	specs, err := UniqueSpecs(gen, n)
	if err != nil {
		return nil, err
	}
	return RepeatShuffled(specs, repeats, seed), nil
}
