package workload

import (
	"testing"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	return pkggraph.MustGenerate(cfg, 42)
}

func TestDepClosureDeterministic(t *testing.T) {
	repo := testRepo(t)
	a := NewDepClosure(repo, 7)
	b := NewDepClosure(repo, 7)
	for i := 0; i < 10; i++ {
		if !a.Next().Equal(b.Next()) {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDepClosureIsClosed(t *testing.T) {
	repo := testRepo(t)
	g := NewDepClosure(repo, 1)
	for i := 0; i < 20; i++ {
		s := g.Next()
		closed := spec.New(repo.Closure(s.IDs()))
		if !s.Equal(closed) {
			t.Fatalf("spec %d not dependency-closed", i)
		}
	}
}

func TestDepClosureRespectsBounds(t *testing.T) {
	repo := testRepo(t)
	g := NewDepClosure(repo, 2)
	g.MinInitial, g.MaxInitial = 5, 5
	for i := 0; i < 10; i++ {
		s := g.Next()
		// Closure of exactly 5 packages: at least 5 in the image.
		if s.Len() < 5 {
			t.Fatalf("spec %d has %d packages, want >= 5", i, s.Len())
		}
	}
}

func TestDepClosureInitialLargerThanRepo(t *testing.T) {
	repo := testRepo(t)
	g := NewDepClosure(repo, 3)
	g.MinInitial, g.MaxInitial = repo.Len()+50, repo.Len()+50
	s := g.Next()
	if s.Len() != repo.Len() {
		t.Fatalf("full selection should close to whole repo: %d vs %d", s.Len(), repo.Len())
	}
}

func TestUniformRandomMatchesCardinality(t *testing.T) {
	repo := testRepo(t)
	dep := NewDepClosure(repo, 5)
	rnd := NewUniformRandom(repo, 5)
	// Same seed: the random generator draws its cardinality from an
	// identical embedded dep generator, so lengths must match pairwise.
	for i := 0; i < 10; i++ {
		want := dep.Next().Len()
		got := rnd.Next().Len()
		if got != want {
			t.Fatalf("step %d: random len %d, dep len %d", i, got, want)
		}
	}
}

func TestUniformRandomIsUnstructured(t *testing.T) {
	repo := testRepo(t)
	g := NewUniformRandom(repo, 9)
	closedCount := 0
	for i := 0; i < 10; i++ {
		s := g.Next()
		closed := spec.New(repo.Closure(s.IDs()))
		if s.Equal(closed) {
			closedCount++
		}
	}
	if closedCount == 10 {
		t.Fatal("every random spec was dependency-closed; generator is structured")
	}
}

func TestUniqueSpecs(t *testing.T) {
	repo := testRepo(t)
	specs, err := UniqueSpecs(NewDepClosure(repo, 11), 50)
	if err != nil {
		t.Fatalf("UniqueSpecs: %v", err)
	}
	if len(specs) != 50 {
		t.Fatalf("got %d specs", len(specs))
	}
	for i := 0; i < len(specs); i++ {
		for j := i + 1; j < len(specs); j++ {
			if specs[i].Equal(specs[j]) {
				t.Fatalf("specs %d and %d identical", i, j)
			}
		}
	}
}

// fixedGen always returns the same spec, to exercise the duplicate
// give-up path.
type fixedGen struct{ s spec.Spec }

func (g fixedGen) Next() spec.Spec { return g.s }

func TestUniqueSpecsGivesUp(t *testing.T) {
	s := spec.New([]pkggraph.PkgID{1, 2})
	if _, err := UniqueSpecs(fixedGen{s}, 2); err == nil {
		t.Fatal("expected error when generator cannot produce unique specs")
	}
}

func TestRepeatShuffled(t *testing.T) {
	repo := testRepo(t)
	specs, err := UniqueSpecs(NewDepClosure(repo, 13), 10)
	if err != nil {
		t.Fatal(err)
	}
	stream := RepeatShuffled(specs, 3, 99)
	if len(stream) != 30 {
		t.Fatalf("stream len = %d, want 30", len(stream))
	}
	counts := make(map[uint64]int)
	for _, s := range stream {
		counts[s.Hash()]++
	}
	for h, c := range counts {
		if c != 3 {
			t.Fatalf("spec %x appears %d times, want 3", h, c)
		}
	}
	// Deterministic under the same seed.
	again := RepeatShuffled(specs, 3, 99)
	for i := range stream {
		if !stream[i].Equal(again[i]) {
			t.Fatal("shuffle not deterministic")
		}
	}
	// Different seed should (almost surely) change the order.
	other := RepeatShuffled(specs, 3, 100)
	same := true
	for i := range stream {
		if !stream[i].Equal(other[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical order")
	}
}

func TestRepeatShuffledClampsRepeats(t *testing.T) {
	repo := testRepo(t)
	specs, _ := UniqueSpecs(NewDepClosure(repo, 13), 3)
	if got := RepeatShuffled(specs, 0, 1); len(got) != 3 {
		t.Fatalf("repeats=0 stream len = %d, want 3", len(got))
	}
}

func TestStream(t *testing.T) {
	repo := testRepo(t)
	stream, err := Stream(NewDepClosure(repo, 17), 20, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 100 {
		t.Fatalf("stream len = %d, want 100", len(stream))
	}
}
