package workload

import (
	"testing"

	"repro/internal/spec"
)

func TestNewEvolvingValidation(t *testing.T) {
	repo := testRepo(t)
	if _, err := NewEvolving(repo, 0, 5, 1); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := NewEvolving(repo, 3, 0, 1); err == nil {
		t.Error("zero maxInitial accepted")
	}
}

func TestEvolvingDeterministic(t *testing.T) {
	repo := testRepo(t)
	a, err := NewEvolving(repo, 5, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewEvolving(repo, 5, 8, 7)
	for i := 0; i < 20; i++ {
		if !a.Next().Equal(b.Next()) {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestEvolvingSpecsAreClosed(t *testing.T) {
	repo := testRepo(t)
	e, _ := NewEvolving(repo, 4, 6, 3)
	for i := 0; i < 20; i++ {
		s := e.Next()
		if !s.Equal(spec.New(repo.Closure(s.IDs()))) {
			t.Fatalf("spec %d not dependency-closed", i)
		}
	}
}

func TestEvolvingDrifts(t *testing.T) {
	repo := testRepo(t)
	e, _ := NewEvolving(repo, 1, 6, 5) // single user: all drift is visible
	e.MutateProb = 1                   // force drift every submission
	first := e.Next()
	changed := false
	for i := 0; i < 10; i++ {
		if !e.Next().Equal(first) {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("forced mutation never changed the spec")
	}
}

func TestEvolvingStableWithoutMutation(t *testing.T) {
	repo := testRepo(t)
	e, _ := NewEvolving(repo, 1, 6, 5)
	e.MutateProb = 0
	first := e.Next()
	for i := 0; i < 10; i++ {
		if !e.Next().Equal(first) {
			t.Fatal("spec changed despite MutateProb=0")
		}
	}
}

func TestEvolvingRepeatsProduceOverlap(t *testing.T) {
	repo := testRepo(t)
	e, _ := NewEvolving(repo, 3, 8, 9)
	// Modest drift: successive specs from the same population should
	// frequently repeat or overlap heavily, which is what gives the
	// cache manager something to reuse.
	seen := make(map[uint64]int)
	for i := 0; i < 60; i++ {
		seen[e.Next().Hash()]++
	}
	repeats := 0
	for _, c := range seen {
		if c > 1 {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("no repeated specs in a drifting population of 3 users")
	}
	if e.Users() != 3 {
		t.Fatalf("Users = %d", e.Users())
	}
}

func TestEvolvingUpgradeKeepsFamily(t *testing.T) {
	repo := testRepo(t)
	e, _ := NewEvolving(repo, 1, 4, 11)
	e.MutateProb = 1
	e.UpgradeProb = 1 // only version upgrades
	// Record the initial family multiset; upgrades must preserve it.
	families := func(sel spec.Spec) map[string]int {
		out := make(map[string]int)
		for _, id := range sel.IDs() {
			out[repo.Package(id).Name]++
		}
		return out
	}
	_ = families
	// Upgrades swap versions within a family, so the set of *family
	// names* in the user's initial selection never changes. We can't
	// see the raw selection from outside, but with UpgradeProb=1 and a
	// multi-version repo the closure's family set stays stable for the
	// requested leaves. Weak but meaningful check: submissions keep a
	// nonzero intersection over 10 rounds.
	prev := e.Next()
	for i := 0; i < 10; i++ {
		cur := e.Next()
		if prev.IntersectionLen(cur) == 0 {
			t.Fatal("upgrade-only drift produced disjoint specs")
		}
		prev = cur
	}
}
