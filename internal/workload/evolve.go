package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Evolving models the workload drift the paper's introduction
// describes: "as a user's work evolves, different jobs need different
// software, and new containers are generated". A fixed population of
// users each maintains a current specification; every submission comes
// from a random user, who with some probability first mutates their
// spec — swapping a package for a different version ("version
// upgrade") or replacing part of their selection ("new analysis").
//
// Under drift, merged images steadily accumulate packages no current
// job needs — precisely the bloat that image splitting (core.Prune)
// and LRU eviction exist to shed.
type Evolving struct {
	repo *pkggraph.Repo
	rng  *rand.Rand

	// MutateProb is the chance a user's spec drifts before submitting.
	MutateProb float64
	// UpgradeProb is the chance a mutation is a version upgrade of one
	// package family; otherwise one initial package is replaced by a
	// fresh uniform pick.
	UpgradeProb float64

	users [][]pkggraph.PkgID // each user's current initial selection
}

// NewEvolving creates a drifting population. Each user starts with an
// initial selection of up to maxInitial packages (like the dependency
// scheme); defaults: 30% mutation chance per submission, 50% of
// mutations are version upgrades.
func NewEvolving(repo *pkggraph.Repo, users, maxInitial int, seed int64) (*Evolving, error) {
	if users < 1 {
		return nil, fmt.Errorf("workload: need at least one user, got %d", users)
	}
	if maxInitial < 1 {
		return nil, fmt.Errorf("workload: maxInitial must be >= 1, got %d", maxInitial)
	}
	e := &Evolving{
		repo:        repo,
		rng:         rand.New(rand.NewSource(seed)),
		MutateProb:  0.3,
		UpgradeProb: 0.5,
	}
	for u := 0; u < users; u++ {
		n := 1 + e.rng.Intn(maxInitial)
		if n > repo.Len() {
			n = repo.Len()
		}
		seen := make(map[pkggraph.PkgID]bool, n)
		sel := make([]pkggraph.PkgID, 0, n)
		for len(sel) < n {
			id := pkggraph.PkgID(e.rng.Intn(repo.Len()))
			if !seen[id] {
				seen[id] = true
				sel = append(sel, id)
			}
		}
		e.users = append(e.users, sel)
	}
	return e, nil
}

// Users returns the population size.
func (e *Evolving) Users() int { return len(e.users) }

// Next picks a user, possibly mutates their selection, and returns its
// dependency closure.
func (e *Evolving) Next() spec.Spec {
	u := e.rng.Intn(len(e.users))
	if e.rng.Float64() < e.MutateProb {
		e.mutate(u)
	}
	return spec.WithClosure(e.repo, e.users[u])
}

// mutate drifts one user's selection in place.
func (e *Evolving) mutate(u int) {
	sel := e.users[u]
	i := e.rng.Intn(len(sel))
	if e.rng.Float64() < e.UpgradeProb {
		// Version upgrade: swap the package for a sibling version of
		// the same family.
		fam := e.repo.FamilyVersions(e.repo.Package(sel[i]).Name)
		if len(fam) > 1 {
			sel[i] = fam[e.rng.Intn(len(fam))]
			return
		}
		// Single-version family: fall through to replacement.
	}
	// Replacement: a fresh uniform pick not already selected.
	for tries := 0; tries < 16; tries++ {
		id := pkggraph.PkgID(e.rng.Intn(e.repo.Len()))
		dup := false
		for _, s := range sel {
			if s == id {
				dup = true
				break
			}
		}
		if !dup {
			sel[i] = id
			return
		}
	}
}
