package workload_test

import (
	"fmt"
	"log"

	"repro/internal/pkggraph"
	"repro/internal/workload"
)

// Example builds the paper's standard request stream: unique
// dependency-closed jobs, each repeated, shuffled.
func Example() {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 3
	cfg.FrameworkFamilies = 8
	cfg.LibraryFamilies = 37
	cfg.ApplicationFamilies = 72
	repo, err := pkggraph.Generate(cfg, 1)
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewDepClosure(repo, 7)
	gen.MaxInitial = 5 // paper default is 100; small for the example

	stream, err := workload.Stream(gen, 10, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("requests: %d\n", len(stream))

	// Every spec is dependency-closed: closing it again is a no-op.
	closed := 0
	for _, s := range stream {
		if len(repo.Closure(s.IDs())) == s.Len() {
			closed++
		}
	}
	fmt.Printf("dependency-closed: %d\n", closed)

	// Output:
	// requests: 30
	// dependency-closed: 30
}
