package resilience

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ChaosPlan parameterizes seeded network fault injection. Each
// probability is evaluated independently per attempt in a fixed order
// (reset-before, blackhole, latency, reset-after, truncate) from one
// seeded RNG, so a given seed yields the same fault schedule on every
// run.
type ChaosPlan struct {
	Seed int64

	// ResetBeforeP drops the connection before the request reaches the
	// server: the classic "connection reset by peer". The server never
	// sees the request.
	ResetBeforeP float64
	// ResetAfterP forwards the request, then drops the response: the
	// server did the work, the client cannot know. This is the fault
	// that makes non-idempotent retries dangerous and acked-only
	// durability audits necessary.
	ResetAfterP float64
	// BlackholeP swallows the request without ever answering; the
	// attempt fails only when the request's context deadline expires
	// (or immediately, with a timeout error, when it has no deadline —
	// a transport cannot block forever).
	BlackholeP float64
	// TruncateP forwards the exchange but cuts the response body in
	// half mid-stream, ending it with io.ErrUnexpectedEOF.
	TruncateP float64
	// LatencyP delays the attempt by up to MaxLatency before
	// forwarding.
	LatencyP   float64
	MaxLatency time.Duration
}

// ChaosError is the error ChaosTransport fabricates, so tests can
// tell injected network faults from real ones. Timeout() reports true
// for blackholes, matching net.Error conventions.
type ChaosError struct {
	Kind    string // "reset-before", "reset-after", "blackhole", "truncate"
	Attempt int64
	timeout bool
}

// Error implements error.
func (e *ChaosError) Error() string {
	return fmt.Sprintf("resilience: injected %s fault (attempt %d)", e.Kind, e.Attempt)
}

// Timeout reports whether the fault presents as a timeout.
func (e *ChaosError) Timeout() bool { return e.timeout }

// Temporary implements the legacy net.Error surface.
func (e *ChaosError) Temporary() bool { return true }

// ChaosTransport is an http.RoundTripper injecting seeded network
// faults in front of an inner transport — connection resets (before
// or after the server processes the request), blackholes, truncated
// response bodies, and latency. Safe for concurrent use; concurrent
// attempts serialize on the seeded RNG so the fault *sequence* is
// deterministic even when the attempt interleaving is not.
type ChaosTransport struct {
	inner http.RoundTripper
	plan  ChaosPlan

	mu       sync.Mutex
	rng      *rand.Rand
	attempts int64
	injected int64
}

// NewChaosTransport wraps inner (nil = http.DefaultTransport) with the
// plan's seeded fault schedule.
func NewChaosTransport(inner http.RoundTripper, plan ChaosPlan) *ChaosTransport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &ChaosTransport{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// SetPlan swaps the transport's fault probabilities at runtime,
// keeping the RNG stream (the schedule stays a deterministic function
// of the original seed and the attempt sequence). Chaos harnesses use
// it to model partitions: flip an agent's transport to BlackholeP=1
// for the partition window, then back.
func (t *ChaosTransport) SetPlan(plan ChaosPlan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	plan.Seed = t.plan.Seed
	t.plan = plan
}

// Attempts returns how many round trips have been attempted (including
// ones that faulted before reaching the server).
func (t *ChaosTransport) Attempts() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.attempts
}

// Injected returns how many faults have been injected.
func (t *ChaosTransport) Injected() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected
}

// decision is one attempt's drawn fault schedule.
type decision struct {
	attempt     int64
	resetBefore bool
	blackhole   bool
	latency     time.Duration
	resetAfter  bool
	truncate    bool
}

// draw rolls the plan's dice in fixed order under the lock.
func (t *ChaosTransport) draw() decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.attempts++
	d := decision{attempt: t.attempts}
	p := t.plan
	d.resetBefore = p.ResetBeforeP > 0 && t.rng.Float64() < p.ResetBeforeP
	d.blackhole = p.BlackholeP > 0 && t.rng.Float64() < p.BlackholeP
	if p.LatencyP > 0 && t.rng.Float64() < p.LatencyP && p.MaxLatency > 0 {
		d.latency = time.Duration(t.rng.Int63n(int64(p.MaxLatency)))
	}
	d.resetAfter = p.ResetAfterP > 0 && t.rng.Float64() < p.ResetAfterP
	d.truncate = p.TruncateP > 0 && t.rng.Float64() < p.TruncateP
	if d.resetBefore || d.blackhole || d.latency > 0 || d.resetAfter || d.truncate {
		t.injected++
	}
	return d
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.draw()
	if d.resetBefore {
		return nil, &ChaosError{Kind: "reset-before", Attempt: d.attempt}
	}
	if d.blackhole {
		ctx := req.Context()
		if _, ok := ctx.Deadline(); ok {
			<-ctx.Done()
			return nil, &ChaosError{Kind: "blackhole", Attempt: d.attempt, timeout: true}
		}
		return nil, &ChaosError{Kind: "blackhole", Attempt: d.attempt, timeout: true}
	}
	if d.latency > 0 {
		select {
		case <-time.After(d.latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.resetAfter {
		// The server processed the request; the client sees a dead
		// connection. Drain and drop the response.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &ChaosError{Kind: "reset-after", Attempt: d.attempt}
	}
	if d.truncate {
		resp.Body = &truncatedBody{inner: resp.Body, remain: resp.ContentLength / 2}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody serves half the response then fails, modeling a
// connection cut mid-body.
type truncatedBody struct {
	inner  io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= int64(n)
	if err == io.EOF {
		// Shorter than expected already; keep the truncation signature.
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
