package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func chaosBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestChaosTransportCleanPassThrough(t *testing.T) {
	srv := chaosBackend(t)
	ct := NewChaosTransport(nil, ChaosPlan{Seed: 1})
	hc := &http.Client{Transport: ct}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("clean plan errored: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 1024 {
		t.Fatalf("body read = %d bytes, err=%v", len(body), err)
	}
	if ct.Attempts() != 1 || ct.Injected() != 0 {
		t.Fatalf("attempts/injected = %d/%d, want 1/0", ct.Attempts(), ct.Injected())
	}
}

func TestChaosTransportResetBefore(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()
	ct := NewChaosTransport(nil, ChaosPlan{Seed: 1, ResetBeforeP: 1})
	hc := &http.Client{Transport: ct}
	_, err := hc.Get(srv.URL)
	var ce *ChaosError
	if !errors.As(err, &ce) || ce.Kind != "reset-before" {
		t.Fatalf("err = %v, want reset-before ChaosError", err)
	}
	if served != 0 {
		t.Fatal("reset-before must not reach the server")
	}
}

func TestChaosTransportResetAfterReachesServer(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()
	ct := NewChaosTransport(nil, ChaosPlan{Seed: 1, ResetAfterP: 1})
	hc := &http.Client{Transport: ct}
	_, err := hc.Get(srv.URL)
	var ce *ChaosError
	if !errors.As(err, &ce) || ce.Kind != "reset-after" {
		t.Fatalf("err = %v, want reset-after ChaosError", err)
	}
	if served != 1 {
		t.Fatalf("served = %d; reset-after must reach the server exactly once", served)
	}
}

func TestChaosTransportBlackholeHonorsDeadline(t *testing.T) {
	srv := chaosBackend(t)
	ct := NewChaosTransport(nil, ChaosPlan{Seed: 1, BlackholeP: 1})
	hc := &http.Client{Transport: ct}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := hc.Do(req)
	if err == nil {
		t.Fatal("blackhole returned a response")
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("blackhole returned after %v, want to block until the deadline", elapsed)
	}
}

func TestChaosTransportTruncate(t *testing.T) {
	srv := chaosBackend(t)
	ct := NewChaosTransport(nil, ChaosPlan{Seed: 1, TruncateP: 1})
	hc := &http.Client{Transport: ct}
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncate should fail mid-body, not up front: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("body read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(body) >= 1024 {
		t.Fatalf("read %d bytes, want a truncated body", len(body))
	}
}

func TestChaosTransportDeterministicSchedule(t *testing.T) {
	plan := ChaosPlan{Seed: 42, ResetBeforeP: 0.3, ResetAfterP: 0.3, TruncateP: 0.3}
	run := func() []string {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, strings.Repeat("y", 256))
		}))
		defer srv.Close()
		ct := NewChaosTransport(nil, plan)
		hc := &http.Client{Transport: ct}
		var kinds []string
		for i := 0; i < 50; i++ {
			resp, err := hc.Get(srv.URL)
			if err != nil {
				var ce *ChaosError
				if errors.As(err, &ce) {
					kinds = append(kinds, ce.Kind)
				} else {
					kinds = append(kinds, "other")
				}
				continue
			}
			_, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if errors.Is(rerr, io.ErrUnexpectedEOF) {
				kinds = append(kinds, "truncate")
			} else {
				kinds = append(kinds, "ok")
			}
		}
		return kinds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at attempt %d: %q vs %q\na=%v\nb=%v", i, a[i], b[i], a, b)
		}
	}
}

func TestChaosProxyCleanForwarding(t *testing.T) {
	srv := chaosBackend(t)
	px, err := NewChaosProxy(strings.TrimPrefix(srv.URL, "http://"), ProxyPlan{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	resp, err := http.Get("http://" + px.Addr())
	if err != nil {
		t.Fatalf("clean proxy errored: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 1024 {
		t.Fatalf("body = %d bytes, err=%v", len(body), err)
	}
	if px.Conns() == 0 || px.Injected() != 0 {
		t.Fatalf("conns/injected = %d/%d, want >0/0", px.Conns(), px.Injected())
	}
}

func TestChaosProxyRefusesConnections(t *testing.T) {
	srv := chaosBackend(t)
	px, err := NewChaosProxy(strings.TrimPrefix(srv.URL, "http://"), ProxyPlan{Seed: 1, RefuseP: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := hc.Get("http://" + px.Addr()); err == nil {
		t.Fatal("refused connection returned a response")
	}
	if px.Injected() == 0 {
		t.Fatal("no injected faults recorded")
	}
}

func TestChaosProxyCutsMidStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("z", 1<<20))
	}))
	defer srv.Close()
	px, err := NewChaosProxy(strings.TrimPrefix(srv.URL, "http://"),
		ProxyPlan{Seed: 1, CutAfterP: 1, CutAfterBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := hc.Get("http://" + px.Addr())
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("1MiB body survived a 2KiB cut budget")
	}
}
