package resilience

import (
	"math"
	"sync"
	"time"
)

// ShedReason says why the shedder refused a request, or ShedNone when
// it was admitted.
type ShedReason int

const (
	// ShedNone: the request was admitted.
	ShedNone ShedReason = iota
	// ShedRate: the token bucket is empty — the arrival rate exceeds
	// the configured sustained rate.
	ShedRate
	// ShedQueue: too many admitted requests are already queued or in
	// flight.
	ShedQueue
)

// String renders the reason as a metric label value.
func (r ShedReason) String() string {
	switch r {
	case ShedRate:
		return "rate"
	case ShedQueue:
		return "queue"
	default:
		return "none"
	}
}

// ShedderConfig parameterizes admission control.
type ShedderConfig struct {
	// Rate is the sustained admission rate in requests per second;
	// <= 0 disables rate limiting.
	Rate float64
	// Burst is the token-bucket capacity — how far above Rate a short
	// spike may go. Defaults to max(1, Rate) when zero.
	Burst int
	// QueueDepth bounds admitted-but-unfinished requests (queued on
	// the inflight semaphore plus processing); <= 0 disables the bound.
	QueueDepth int
	// Now is the clock (nil = time.Now); injectable so admission
	// decisions are deterministic under the seeded chaos harness.
	Now func() time.Time
}

// Shedder is server-side admission control: a token bucket bounding
// sustained arrival rate plus a queue-depth bound on concurrently
// admitted requests. It sits in front of the serving path and refuses
// work *before* it queues — the shed response (429 Retry-After) costs
// microseconds, while an admitted request holds a connection, a
// semaphore slot, and eventually the cache lock. Safe for concurrent
// use.
type Shedder struct {
	cfg ShedderConfig
	now func() time.Time

	mu       sync.Mutex
	tokens   float64
	last     time.Time
	inflight int

	shedRate  int64
	shedQueue int64
	admitted  int64
}

// NewShedder builds a shedder; a zero config admits everything.
func NewShedder(cfg ShedderConfig) *Shedder {
	if cfg.Rate > 0 && cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, cfg.Rate))
	}
	s := &Shedder{cfg: cfg, now: nowFunc(cfg.Now)}
	s.tokens = float64(cfg.Burst)
	s.last = s.now()
	return s
}

// Admit decides one request. Admitted requests get a non-nil release
// function that MUST be called exactly once when the request finishes
// (it frees the queue-depth slot); refused requests get a nil release
// and the reason.
func (s *Shedder) Admit() (release func(), reason ShedReason) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.QueueDepth > 0 && s.inflight >= s.cfg.QueueDepth {
		s.shedQueue++
		return nil, ShedQueue
	}
	if s.cfg.Rate > 0 {
		now := s.now()
		s.tokens = math.Min(float64(s.cfg.Burst),
			s.tokens+now.Sub(s.last).Seconds()*s.cfg.Rate)
		s.last = now
		if s.tokens < 1 {
			s.shedRate++
			return nil, ShedRate
		}
		s.tokens--
	}
	s.inflight++
	s.admitted++
	return s.release, ShedNone
}

func (s *Shedder) release() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// RetryAfter suggests how long a shed client should wait before
// retrying: long enough for one token to accrue (rate sheds) or one
// second (queue sheds — the server cannot predict drain time). Always
// at least one second, since the value is served in a Retry-After
// header with second granularity.
func (s *Shedder) RetryAfter(reason ShedReason) time.Duration {
	if reason == ShedRate && s.cfg.Rate > 0 {
		d := time.Duration(float64(time.Second) / s.cfg.Rate)
		if d > time.Second {
			return d.Round(time.Second)
		}
	}
	return time.Second
}

// Inflight returns the number of currently admitted, unfinished
// requests.
func (s *Shedder) Inflight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Counters returns (admitted, shed-by-rate, shed-by-queue) totals.
func (s *Shedder) Counters() (admitted, rate, queue int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted, s.shedRate, s.shedQueue
}
