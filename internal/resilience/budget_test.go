package resilience

import "testing"

func TestRetryBudgetStartsFullThenExhausts(t *testing.T) {
	b := NewRetryBudget(0.1, 3)
	for i := 0; i < 3; i++ {
		if !b.Withdraw() {
			t.Fatalf("withdraw %d refused from a full budget", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdraw from empty budget granted")
	}
	spent, denied := b.Counters()
	if spent != 3 || denied != 1 {
		t.Fatalf("counters = %d/%d, want 3/1", spent, denied)
	}
}

func TestRetryBudgetDepositsPerAttempt(t *testing.T) {
	b := NewRetryBudget(0.5, 2)
	b.Withdraw()
	b.Withdraw() // empty
	if b.Withdraw() {
		t.Fatal("empty budget granted a retry")
	}
	// Two initial attempts deposit 0.5 each → one retry's worth.
	b.OnAttempt()
	if b.Withdraw() {
		t.Fatal("0.5 tokens should not grant a retry")
	}
	b.OnAttempt()
	if !b.Withdraw() {
		t.Fatal("1.0 tokens should grant a retry")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	b := NewRetryBudget(1.0, 2)
	for i := 0; i < 100; i++ {
		b.OnAttempt()
	}
	grants := 0
	for b.Withdraw() {
		grants++
	}
	if grants != 2 {
		t.Fatalf("granted %d retries, want burst cap 2", grants)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := NewRetryBudget(0, 0)
	if b.ratio != 0.2 || b.burst != 10 {
		t.Fatalf("defaults = %v/%v, want 0.2/10", b.ratio, b.burst)
	}
}
