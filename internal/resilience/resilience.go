// Package resilience is the overload-protection toolkit for the
// LANDLORD serving path: server-side admission control (a token-bucket
// + queue-depth load shedder), a client-side three-state circuit
// breaker, a windowed retry budget, and seeded network fault injection
// (an http.RoundTripper and an in-process TCP chaos proxy).
//
// The paper's site service only earns its keep if it stays up under
// the traffic it is built for: sustained HTC job streams, slow or
// stampeding clients, flaky networks, and disks that fail mid-write.
// The pieces here follow the standard cloud-native shapes —
// shed-before-queue, fail-fast-when-open, budgeted retries with full
// jitter — but are built stdlib-only and fully deterministic under
// test: every component takes an injectable clock and every random
// choice flows from a caller-provided source, so the chaos harness in
// internal/check can replay a failing schedule from a single seed.
//
// Nothing in this package knows about the cache; internal/server
// threads the shedder and breaker through its request path, and
// internal/check drives the chaos transport against a live daemon.
package resilience

import "time"

// nowFunc defaults a nil clock to the real one.
func nowFunc(now func() time.Time) func() time.Time {
	if now == nil {
		return time.Now
	}
	return now
}
