package resilience

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ProxyPlan parameterizes the in-process chaos proxy's per-connection
// fault schedule, drawn from one seeded RNG in accept order.
type ProxyPlan struct {
	Seed int64
	// RefuseP closes an accepted connection immediately (connection
	// refused/reset as the client sees it).
	RefuseP float64
	// CutAfterP forwards the connection but cuts it after a seeded
	// number of bytes in [1, CutAfterBytes] in either direction —
	// truncated requests and truncated responses both.
	CutAfterP     float64
	CutAfterBytes int64
	// DelayP stalls the connection for up to MaxDelay before the first
	// byte is forwarded.
	DelayP   float64
	MaxDelay time.Duration
}

// ChaosProxy is a TCP-level fault injector between a client and a
// backend: it listens on a local port, forwards bytes to the backend
// address, and — per its seeded plan — refuses, delays, or cuts
// connections mid-stream. Unlike ChaosTransport (which fabricates
// faults inside the client process) the proxy breaks real sockets, so
// the server-side half of every failure mode is exercised too: the
// daemon sees aborted reads, half-written responses, and clients that
// vanish mid-request.
type ChaosProxy struct {
	ln      net.Listener
	backend string
	plan    ProxyPlan

	mu       sync.Mutex
	rng      *rand.Rand
	conns    int64
	injected int64
	active   map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// NewChaosProxy starts a proxy on a fresh loopback port forwarding to
// backend ("host:port"). Close releases the port.
func NewChaosProxy(backend string, plan ProxyPlan) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &ChaosProxy{
		ln: ln, backend: backend, plan: plan,
		rng:    rand.New(rand.NewSource(plan.Seed)),
		active: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// Conns returns how many connections have been accepted.
func (p *ChaosProxy) Conns() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conns
}

// Injected returns how many connections had a fault injected.
func (p *ChaosProxy) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// Close stops accepting, force-closes in-flight connections (idle
// keep-alive clients would otherwise pin the proxy open), and waits
// for the forwarding goroutines to drain.
func (p *ChaosProxy) Close() error {
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.active {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *ChaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.active[c] = struct{}{}
	p.mu.Unlock()
}

func (p *ChaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.active, c)
	p.mu.Unlock()
}

// connPlan is one connection's drawn schedule.
type connPlan struct {
	refuse bool
	cutAt  int64 // bytes after which the connection dies (0 = never)
	delay  time.Duration
}

func (p *ChaosProxy) drawConn() connPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns++
	var c connPlan
	c.refuse = p.plan.RefuseP > 0 && p.rng.Float64() < p.plan.RefuseP
	if p.plan.CutAfterP > 0 && p.rng.Float64() < p.plan.CutAfterP {
		max := p.plan.CutAfterBytes
		if max <= 0 {
			max = 4096
		}
		c.cutAt = 1 + p.rng.Int63n(max)
	}
	if p.plan.DelayP > 0 && p.rng.Float64() < p.plan.DelayP && p.plan.MaxDelay > 0 {
		c.delay = time.Duration(p.rng.Int63n(int64(p.plan.MaxDelay)))
	}
	if c.refuse || c.cutAt > 0 || c.delay > 0 {
		p.injected++
	}
	return c
}

func (p *ChaosProxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cp := p.drawConn()
		p.wg.Add(1)
		go p.serve(conn, cp)
	}
}

// serve forwards one connection under its fault schedule.
func (p *ChaosProxy) serve(client net.Conn, cp connPlan) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	defer client.Close()
	if cp.refuse {
		return // immediate close: reset as the client sees it
	}
	if cp.delay > 0 {
		time.Sleep(cp.delay)
	}
	backend, err := net.DialTimeout("tcp", p.backend, 5*time.Second)
	if err != nil {
		return
	}
	p.track(backend)
	defer p.untrack(backend)
	defer backend.Close()

	// budget is the shared byte allowance across both directions; when
	// it reaches zero both sockets are torn down mid-stream.
	var budget *cutBudget
	if cp.cutAt > 0 {
		budget = &cutBudget{remain: cp.cutAt, kill: func() {
			client.Close()
			backend.Close()
		}}
	}
	done := make(chan struct{}, 2)
	pipe := func(dst, src net.Conn) {
		var r io.Reader = src
		if budget != nil {
			r = &cutReader{inner: src, budget: budget}
		}
		io.Copy(dst, r)
		// Half-close so the peer sees EOF for this direction.
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}
	go pipe(backend, client)
	pipe(client, backend)
	<-done
}

// cutBudget coordinates the shared byte allowance of one connection.
type cutBudget struct {
	mu     sync.Mutex
	remain int64
	kill   func()
	dead   bool
}

// take consumes up to n bytes, returning how many are allowed; the
// first exhaustion kills the connection.
func (b *cutBudget) take(n int64) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return 0
	}
	if n >= b.remain {
		n = b.remain
		b.dead = true
		defer b.kill()
	}
	b.remain -= n
	return n
}

// cutReader forwards bytes until the budget dies.
type cutReader struct {
	inner  io.Reader
	budget *cutBudget
}

func (r *cutReader) Read(p []byte) (int, error) {
	n, err := r.inner.Read(p)
	if n > 0 {
		allowed := r.budget.take(int64(n))
		if allowed < int64(n) {
			return int(allowed), io.ErrUnexpectedEOF
		}
	}
	return n, err
}
