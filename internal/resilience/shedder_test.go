package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic tests.
type fakeClock struct {
	t time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

func TestShedderZeroConfigAdmitsEverything(t *testing.T) {
	s := NewShedder(ShedderConfig{})
	for i := 0; i < 1000; i++ {
		release, reason := s.Admit()
		if reason != ShedNone || release == nil {
			t.Fatalf("admit %d: reason=%v release nil=%v", i, reason, release == nil)
		}
		release()
	}
	admitted, rate, queue := s.Counters()
	if admitted != 1000 || rate != 0 || queue != 0 {
		t.Fatalf("counters = %d/%d/%d, want 1000/0/0", admitted, rate, queue)
	}
}

func TestShedderRateLimit(t *testing.T) {
	clk := newFakeClock()
	s := NewShedder(ShedderConfig{Rate: 10, Burst: 5, Now: clk.Now})

	// Burst drains after 5 immediate admissions.
	for i := 0; i < 5; i++ {
		release, reason := s.Admit()
		if reason != ShedNone {
			t.Fatalf("burst admit %d shed: %v", i, reason)
		}
		release()
	}
	if _, reason := s.Admit(); reason != ShedRate {
		t.Fatalf("6th immediate admit: reason=%v, want ShedRate", reason)
	}

	// 100ms at 10 rps accrues exactly one token.
	clk.Advance(100 * time.Millisecond)
	release, reason := s.Admit()
	if reason != ShedNone {
		t.Fatalf("post-refill admit shed: %v", reason)
	}
	release()
	if _, reason := s.Admit(); reason != ShedRate {
		t.Fatalf("second post-refill admit: reason=%v, want ShedRate", reason)
	}

	// Refill never exceeds Burst.
	clk.Advance(time.Hour)
	admitted := 0
	for {
		release, reason := s.Admit()
		if reason != ShedNone {
			break
		}
		admitted++
		release()
	}
	if admitted != 5 {
		t.Fatalf("after long idle admitted %d, want Burst=5", admitted)
	}
}

func TestShedderQueueDepth(t *testing.T) {
	s := NewShedder(ShedderConfig{QueueDepth: 3})
	var releases []func()
	for i := 0; i < 3; i++ {
		release, reason := s.Admit()
		if reason != ShedNone {
			t.Fatalf("admit %d shed: %v", i, reason)
		}
		releases = append(releases, release)
	}
	if _, reason := s.Admit(); reason != ShedQueue {
		t.Fatalf("4th admit: reason=%v, want ShedQueue", reason)
	}
	if got := s.Inflight(); got != 3 {
		t.Fatalf("Inflight = %d, want 3", got)
	}

	// Releasing one slot re-opens admission.
	releases[0]()
	release, reason := s.Admit()
	if reason != ShedNone {
		t.Fatalf("post-release admit shed: %v", reason)
	}
	release()
	for _, r := range releases[1:] {
		r()
	}
	if got := s.Inflight(); got != 0 {
		t.Fatalf("Inflight after drain = %d, want 0", got)
	}
}

func TestShedderRetryAfter(t *testing.T) {
	// Fast rate: floor of one second (header granularity).
	s := NewShedder(ShedderConfig{Rate: 100})
	if d := s.RetryAfter(ShedRate); d != time.Second {
		t.Fatalf("RetryAfter(rate, fast) = %v, want 1s", d)
	}
	// Slow rate: one token period.
	slow := NewShedder(ShedderConfig{Rate: 0.25})
	if d := slow.RetryAfter(ShedRate); d != 4*time.Second {
		t.Fatalf("RetryAfter(rate, slow) = %v, want 4s", d)
	}
	if d := s.RetryAfter(ShedQueue); d != time.Second {
		t.Fatalf("RetryAfter(queue) = %v, want 1s", d)
	}
}
