package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Breaker.Allow while the circuit is
// open (or half-open with all probe slots taken): the caller should
// fail fast without attempting the operation.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// BreakerState is the circuit's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally; consecutive failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests fail fast until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests test whether
	// the dependency recovered.
	BreakerHalfOpen
)

// String renders the state as a metric label value.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig parameterizes a circuit breaker.
type BreakerConfig struct {
	// Failures is how many consecutive failures trip the circuit
	// (default 5).
	Failures int
	// OpenFor is the cool-down before an open circuit lets probes
	// through (default 1s).
	OpenFor time.Duration
	// Probes bounds concurrent half-open probes (default 1).
	Probes int
	// Now is the clock (nil = time.Now); injectable for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

// Breaker is a three-state circuit breaker protecting a dependency:
// closed (normal traffic, counting consecutive failures), open (fail
// fast for OpenFor after Failures consecutive failures), half-open
// (after the cool-down, up to Probes concurrent probes test the
// dependency; one success closes the circuit, one failure re-opens
// it). Safe for concurrent use.
//
// Replacing retry loops with a breaker converts a dead dependency from
// "every caller burns its full retry schedule" into "one probe per
// cool-down"; the retry budget (budget.go) bounds the cost of the
// flapping middle ground.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probes   int       // in-flight half-open probes
	opens    int64     // times the circuit has opened (metrics)
}

// NewBreaker builds a breaker with defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	b := &Breaker{cfg: cfg.withDefaults()}
	b.now = nowFunc(b.cfg.Now)
	return b
}

// Allow asks whether an attempt may proceed. On success it returns a
// non-nil done callback that MUST be called exactly once with the
// attempt's outcome; on ErrCircuitOpen the attempt must not be made.
func (b *Breaker) Allow() (done func(success bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.OpenFor {
			return nil, ErrCircuitOpen
		}
		// Cool-down elapsed: this caller becomes the first half-open
		// probe.
		b.state = BreakerHalfOpen
		b.probes = 1
		return b.probeDone, nil
	case BreakerHalfOpen:
		if b.probes >= b.cfg.Probes {
			return nil, ErrCircuitOpen
		}
		b.probes++
		return b.probeDone, nil
	default:
		return b.closedDone, nil
	}
}

// closedDone records a closed-state attempt's outcome.
func (b *Breaker) closedDone(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		// The circuit moved while this attempt was in flight (another
		// attempt tripped it); its outcome no longer matters.
		return
	}
	if success {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.cfg.Failures {
		b.trip()
	}
}

// probeDone records a half-open probe's outcome: any success closes
// the circuit, any failure re-opens it.
func (b *Breaker) probeDone(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	b.probes--
	if success {
		b.state = BreakerClosed
		b.fails = 0
		return
	}
	b.trip()
}

// trip opens the circuit; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probes = 0
	b.opens++
}

// State returns the circuit's current position, promoting open to
// half-open when the cool-down has elapsed (so observers see the
// same state the next Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Opens returns how many times the circuit has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
