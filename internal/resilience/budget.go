package resilience

import "sync"

// RetryBudget bounds aggregate retry volume: each initial attempt
// deposits Ratio tokens (capped at Burst), each retry withdraws one.
// A healthy service sees almost no withdrawals and the budget stays
// full; a degraded service sees retries capped at ~Ratio of the
// request rate instead of MaxRetries× — the difference between a
// recoverable brownout and a retry storm. Safe for concurrent use.
//
// This is the windowless form of the classic retry-budget pattern:
// the token bucket *is* the sliding window, sized by Burst.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	burst  float64

	spent  int64 // retries granted
	denied int64 // retries refused
}

// NewRetryBudget builds a budget granting ratio retries per request
// with at most burst banked. ratio <= 0 defaults to 0.2 (one retry
// per five requests); burst <= 0 defaults to 10. The budget starts
// full so a cold client can still retry its first failures.
func NewRetryBudget(ratio float64, burst int) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.2
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{tokens: float64(burst), ratio: ratio, burst: float64(burst)}
}

// OnAttempt credits the budget for one initial (non-retry) attempt.
func (b *RetryBudget) OnAttempt() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Withdraw asks permission for one retry; false means the budget is
// exhausted and the caller should give up instead of retrying.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Counters returns (retries granted, retries denied).
func (b *RetryBudget) Counters() (spent, denied int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.spent, b.denied
}
