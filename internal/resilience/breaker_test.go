package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 3, OpenFor: time.Second, Now: clk.Now})

	// Interleaved successes reset the consecutive-failure count.
	for i := 0; i < 10; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		done(i%3 == 0) // every third attempt succeeds, ending on one
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after interleaved failures = %v, want closed", got)
	}

	// Three consecutive failures trip it.
	for i := 0; i < 3; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("failing attempt %d: %v", i, err)
		}
		done(false)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow while open = %v, want ErrCircuitOpen", err)
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1", got)
	}
}

func TestBreakerHalfOpenProbeOrdering(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second, Probes: 1, Now: clk.Now})

	done, _ := b.Allow()
	done(false) // trip
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("expected fail-fast during cool-down")
	}

	clk.Advance(time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cool-down = %v, want half-open", got)
	}

	// First caller past the cool-down becomes the probe; concurrent
	// callers fail fast while the probe is in flight.
	probeDone, err := b.Allow()
	if err != nil {
		t.Fatalf("probe Allow: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("second caller should fail fast while probe in flight")
	}

	// Probe failure re-opens for a fresh cool-down.
	probeDone(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("expected fail-fast after failed probe")
	}

	// Next cool-down: a successful probe closes the circuit.
	clk.Advance(time.Second)
	probeDone, err = b.Allow()
	if err != nil {
		t.Fatalf("second probe Allow: %v", err)
	}
	probeDone(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	done, err = b.Allow()
	if err != nil {
		t.Fatalf("Allow after close: %v", err)
	}
	done(true)
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens = %d, want 2", got)
	}
}

func TestBreakerBoundedConcurrentProbes(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second, Probes: 2, Now: clk.Now})
	done, _ := b.Allow()
	done(false)
	clk.Advance(time.Second)

	p1, err1 := b.Allow()
	p2, err2 := b.Allow()
	if err1 != nil || err2 != nil {
		t.Fatalf("two probes should be allowed: %v, %v", err1, err2)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("third probe should fail fast")
	}
	// One success closes even with the other probe still in flight.
	p1(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
	// The straggler's outcome is ignored after the transition.
	p2(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after stale probe result = %v, want closed", got)
	}
}

func TestBreakerStaleClosedOutcomeIgnored(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Failures: 1, OpenFor: time.Second, Now: clk.Now})
	inflight, _ := b.Allow()
	trip, _ := b.Allow()
	trip(false) // circuit opens while `inflight` is still out
	inflight(false)
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens = %d, want 1 (stale outcome must not double-trip)", got)
	}
}
