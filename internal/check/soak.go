package check

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/spec"
)

// SoakConfig parameterizes a concurrent soak: many goroutines
// hammering one cache, with a shadow validating the mutation stream
// and, optionally, a persistent store absorbing it through injected
// filesystem faults. Unlike RunSim, a soak is not bit-reproducible —
// goroutine interleaving is the point — so its detectors are the race
// detector, the shadow's ordering checks, the dense-Seq audit, and the
// final replay equivalence.
type SoakConfig struct {
	Seed         int64
	Requests     int // total, divided among workers
	Workers      int
	Alpha        float64
	CapacityFrac float64
	Conflicts    bool
	// Shards > 1 soaks a ShardedManager instead of a single
	// ConcurrentManager: the ShardShadow demultiplexes the merged
	// commit stream by owning shard, and maintenance adds audited
	// Rebalance passes.
	Shards int
	// Dir, when non-empty, wires a persistent store (fsync=always)
	// into the hook chain; Faults arms injected write/sync failures
	// partway through, which the store must absorb as a sticky error
	// while the cache keeps serving.
	Dir    string
	Faults bool
	// MaintainEvery makes worker 0 run a checkpoint and a prune pass
	// (plus a rebalance, when sharded) every that many of its own
	// requests (0 disables).
	MaintainEvery int
}

// SoakReport summarizes a clean soak.
type SoakReport struct {
	Stats    core.Stats
	Images   int
	Injected int
}

// soakCache is the surface the soak drives, satisfied by both
// *core.ConcurrentManager and *core.ShardedManager.
type soakCache interface {
	Request(spec.Spec) (core.Result, error)
	Prune(maxUtilization float64, minServed int) ([]core.SplitResult, error)
	Stats() core.Stats
	Len() int
	CheckIntegrity() error
	ExportState() core.ManagerState
}

// RunSoak executes the soak and returns an error describing the first
// violation, if any. Run it under -race: the unsynchronized accesses
// it is designed to expose surface there, not as return values.
func RunSoak(cfg SoakConfig) (SoakReport, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	repo := SmallRepo(cfg.Seed)
	capacity := simCapacity(repo, cfg.CapacityFrac)
	mcfg := core.Config{Alpha: cfg.Alpha, Capacity: capacity}
	if cfg.Conflicts {
		mcfg.Conflicts = spec.NewSingleVersionPolicy(repo)
	}
	sharded := cfg.Shards > 1
	if sharded {
		mcfg.Shards = cfg.Shards
	}

	var (
		rep   SoakReport
		store *persist.Store
		ffs   *FaultFS
	)
	if cfg.Dir != "" {
		var plan FaultPlan
		if cfg.Faults {
			// Arm faults deep enough into the run that traffic is in
			// full flight when they land.
			plan = FaultPlan{FailSyncAt: 2000, ShortWriteAt: 3000}
		}
		ffs = NewFaultFS(plan)
		var err error
		store, err = persist.Open(cfg.Dir, persist.Options{
			FS:           ffs,
			SyncPolicy:   persist.FsyncAlways,
			SegmentBytes: 64 << 10,
		})
		if err != nil {
			return rep, err
		}
	}

	// Build the cache with its validating hook chain (shadow first,
	// store chained behind it), and the maintenance/final closures that
	// differ between the two cache flavors.
	var (
		cache      soakCache
		checkpoint func()       // nil without a store
		rebalance  func() error // nil unless sharded
		finalCheck func() *Failure
		verify     func(live core.ManagerState) error
	)
	var next core.CommitHook
	if store != nil {
		next = store
	}
	if sharded {
		var (
			sm  *core.ShardedManager
			err error
		)
		if store != nil {
			sm, _, err = store.RecoverSharded(repo, mcfg)
		} else {
			sm, err = core.NewSharded(repo, mcfg)
		}
		if err != nil {
			return rep, err
		}
		shadow := NewShardShadow(repo, cfg.Shards, cfg.Seed, next)
		if capacity > 0 {
			shadow.SetBudgets(sm.Budgets())
		}
		sm.SetCommitHook(shadow)
		cache = sm
		if store != nil {
			checkpoint = func() {
				sm.WithExclusiveAll(func(ms []*core.Manager) {
					store.Checkpoint(core.MergedState(ms)) // errors expected under faults
				})
			}
		}
		rebalance = func() error {
			sm.Rebalance()
			if capacity <= 0 {
				return nil
			}
			budgets := sm.Budgets()
			var sum int64
			for _, b := range budgets {
				sum += b
			}
			if sum != capacity {
				return fmt.Errorf("check: shard budgets %v sum to %d, want the global capacity %d", budgets, sum, capacity)
			}
			shadow.SetBudgets(budgets)
			return nil
		}
		finalCheck = shadow.Final
		verify = func(live core.ManagerState) error { return shadow.VerifyState(mcfg, live) }
	} else {
		var (
			cmgr *core.ConcurrentManager
			err  error
		)
		if store != nil {
			var mgr *core.Manager
			mgr, _, err = store.Recover(repo, mcfg)
			if err != nil {
				return rep, err
			}
			cmgr = core.Concurrent(mgr)
		} else {
			cmgr, err = core.NewConcurrent(repo, mcfg)
			if err != nil {
				return rep, err
			}
		}
		shadow := NewShadow(repo, capacity, cfg.Seed, next)
		cmgr.WithExclusive(func(m *core.Manager) { m.SetCommitHook(shadow) })
		cache = cmgr
		if store != nil {
			checkpoint = func() {
				cmgr.WithExclusive(func(m *core.Manager) {
					store.Checkpoint(m.ExportState()) // errors expected under faults
				})
			}
		}
		finalCheck = shadow.Final
		verify = func(live core.ManagerState) error { return shadow.VerifyState(mcfg, core.ManagerState{}, live) }
	}

	perWorker := cfg.Requests / cfg.Workers
	total := perWorker * cfg.Workers
	seqs := make([][]uint64, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := NewStream(repo, cfg.Seed+1000*int64(w))
			mine := make([]uint64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				res, err := cache.Request(stream.Next())
				if err != nil {
					errs[w] = fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
				mine = append(mine, res.Seq)
				if store != nil {
					store.WaitDurable() // sticky errors expected once faults fire
				}
				switch {
				case w == 0 && cfg.MaintainEvery > 0 && i%cfg.MaintainEvery == cfg.MaintainEvery-1:
					if checkpoint != nil {
						checkpoint()
					}
					if rebalance != nil {
						if err := rebalance(); err != nil {
							errs[w] = err
							return
						}
					}
					if _, err := cache.Prune(0.5, 2); err != nil {
						errs[w] = fmt.Errorf("worker %d prune: %w", w, err)
						return
					}
				case i%64 == 63:
					// Exercise the read path under load.
					cache.Stats()
					cache.Len()
				}
			}
			seqs[w] = mine
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}

	// Every request got a unique, dense logical timestamp: Seqs are
	// exactly 1..total (nothing else advances the clock — under
	// sharding, every shard draws from the same source).
	var all []uint64
	for _, s := range seqs {
		all = append(all, s...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	if len(all) != total {
		return rep, fmt.Errorf("check: %d results for %d requests", len(all), total)
	}
	for i, seq := range all {
		if seq != uint64(i+1) {
			return rep, fmt.Errorf("check: Seq sequence has %d at position %d (want dense 1..%d)", seq, i, total)
		}
	}

	if f := finalCheck(); f != nil {
		return rep, f
	}
	if err := cache.CheckIntegrity(); err != nil {
		return rep, fmt.Errorf("check: integrity after soak: %w", err)
	}
	if err := verify(cache.ExportState()); err != nil {
		return rep, err
	}

	rep.Stats = cache.Stats()
	rep.Images = cache.Len()
	if ffs != nil {
		rep.Injected = ffs.Injected()
		if cfg.Faults && rep.Injected == 0 {
			return rep, fmt.Errorf("check: fault plan armed but no fault fired (run too short?)")
		}
	}
	return rep, nil
}
