package check

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/spec"
)

// SoakConfig parameterizes a concurrent soak: many goroutines
// hammering one ConcurrentManager, with the Shadow validating the
// mutation stream and, optionally, a persistent store absorbing it
// through injected filesystem faults. Unlike RunSim, a soak is not
// bit-reproducible — goroutine interleaving is the point — so its
// detectors are the race detector, the Shadow's ordering checks, the
// dense-Seq audit, and the final replay equivalence.
type SoakConfig struct {
	Seed         int64
	Requests     int // total, divided among workers
	Workers      int
	Alpha        float64
	CapacityFrac float64
	Conflicts    bool
	// Dir, when non-empty, wires a persistent store (fsync=always)
	// into the hook chain; Faults arms injected write/sync failures
	// partway through, which the store must absorb as a sticky error
	// while the cache keeps serving.
	Dir    string
	Faults bool
	// MaintainEvery makes worker 0 run a checkpoint and a prune pass
	// every that many of its own requests (0 disables).
	MaintainEvery int
}

// SoakReport summarizes a clean soak.
type SoakReport struct {
	Stats    core.Stats
	Images   int
	Injected int
}

// RunSoak executes the soak and returns an error describing the first
// violation, if any. Run it under -race: the unsynchronized accesses
// it is designed to expose surface there, not as return values.
func RunSoak(cfg SoakConfig) (SoakReport, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	repo := SmallRepo(cfg.Seed)
	capacity := simCapacity(repo, cfg.CapacityFrac)
	mcfg := core.Config{Alpha: cfg.Alpha, Capacity: capacity}
	if cfg.Conflicts {
		mcfg.Conflicts = spec.NewSingleVersionPolicy(repo)
	}

	var (
		rep    SoakReport
		cmgr   *core.ConcurrentManager
		store  *persist.Store
		ffs    *FaultFS
		shadow *Shadow
	)
	if cfg.Dir != "" {
		var plan FaultPlan
		if cfg.Faults {
			// Arm faults deep enough into the run that traffic is in
			// full flight when they land.
			plan = FaultPlan{FailSyncAt: 2000, ShortWriteAt: 3000}
		}
		ffs = NewFaultFS(plan)
		var err error
		store, err = persist.Open(cfg.Dir, persist.Options{
			FS:           ffs,
			SyncPolicy:   persist.FsyncAlways,
			SegmentBytes: 64 << 10,
		})
		if err != nil {
			return rep, err
		}
		mgr, _, err := store.Recover(repo, mcfg)
		if err != nil {
			return rep, err
		}
		shadow = NewShadow(repo, capacity, cfg.Seed, mgr.CommitHook())
		mgr.SetCommitHook(shadow)
		cmgr = core.Concurrent(mgr)
	} else {
		var err error
		cmgr, err = core.NewConcurrent(repo, mcfg)
		if err != nil {
			return rep, err
		}
		shadow = NewShadow(repo, capacity, cfg.Seed, nil)
		cmgr.WithExclusive(func(m *core.Manager) { m.SetCommitHook(shadow) })
	}

	perWorker := cfg.Requests / cfg.Workers
	total := perWorker * cfg.Workers
	seqs := make([][]uint64, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := NewStream(repo, cfg.Seed+1000*int64(w))
			mine := make([]uint64, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				res, err := cmgr.Request(stream.Next())
				if err != nil {
					errs[w] = fmt.Errorf("worker %d request %d: %w", w, i, err)
					return
				}
				mine = append(mine, res.Seq)
				if store != nil {
					store.WaitDurable() // sticky errors expected once faults fire
				}
				switch {
				case w == 0 && cfg.MaintainEvery > 0 && i%cfg.MaintainEvery == cfg.MaintainEvery-1:
					if store != nil {
						cmgr.WithExclusive(func(m *core.Manager) {
							store.Checkpoint(m.ExportState()) // errors expected under faults
						})
					}
					if _, err := cmgr.Prune(0.5, 2); err != nil {
						errs[w] = fmt.Errorf("worker %d prune: %w", w, err)
						return
					}
				case i%64 == 63:
					// Exercise the read path under load.
					cmgr.Stats()
					cmgr.Len()
				}
			}
			seqs[w] = mine
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}

	// Every request got a unique, dense logical timestamp: Seqs are
	// exactly 1..total (nothing else advances the clock).
	var all []uint64
	for _, s := range seqs {
		all = append(all, s...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	if len(all) != total {
		return rep, fmt.Errorf("check: %d results for %d requests", len(all), total)
	}
	for i, seq := range all {
		if seq != uint64(i+1) {
			return rep, fmt.Errorf("check: Seq sequence has %d at position %d (want dense 1..%d)", seq, i, total)
		}
	}

	if f := shadow.Final(); f != nil {
		return rep, f
	}
	if err := cmgr.CheckIntegrity(); err != nil {
		return rep, fmt.Errorf("check: integrity after soak: %w", err)
	}
	if err := shadow.VerifyState(mcfg, core.ManagerState{}, cmgr.ExportState()); err != nil {
		return rep, err
	}

	rep.Stats = cmgr.Stats()
	rep.Images = cmgr.Len()
	if ffs != nil {
		rep.Injected = ffs.Injected()
		if cfg.Faults && rep.Injected == 0 {
			return rep, fmt.Errorf("check: fault plan armed but no fault fired (run too short?)")
		}
	}
	return rep, nil
}
