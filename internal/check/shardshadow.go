package check

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// ShardShadow validates a sharded cache through its commit hook. The
// sharded linearization claim is weaker than the single-manager one —
// there is no global total order of mutations, only N per-shard total
// orders stitched together by globally unique Seq stamps — so the
// shadow demultiplexes the stream by owning shard (ImageID mod N, the
// strided-allocation invariant) and checks, per shard, exactly what
// Shadow checks per manager:
//
//   - per-shard stamps are strictly increasing (each shard's hook
//     fires under that shard's stamping lock, so its subsequence is
//     monotone even though cross-shard interleaving is arbitrary);
//   - stamps are globally unique and, at Final, dense — the merged
//     order the WAL replay and the equivalence proofs sort by;
//   - every insert's packages route back to the shard that allocated
//     the ID: core.ShardRoute(packages, N) must equal ImageID mod N.
//     This is the only detector that can see a misrouting bug — each
//     shard is self-consistent no matter which specs it is fed, so a
//     per-shard oracle never notices a spec that landed on the wrong
//     shard;
//   - deletes pick the per-shard LRU victim, sparing the image the
//     shard's in-flight request just used;
//   - each shard's bytes respect its balancer-assigned budget (via
//     SetBudgets; the budgets themselves summing to the global
//     capacity is the driver's audit), so the global byte bound is the
//     sum of the per-shard bounds.
//
// All methods are safe for concurrent use.
type ShardShadow struct {
	repo   *pkggraph.Repo
	n      int
	seed   int64
	next   core.CommitHook // chained hook, may be nil
	routes *core.RouteTable

	mu      sync.Mutex
	shards  []*shardShadowState
	budgets []int64 // per-shard byte budgets; nil disables the audit
	muts    []core.Mutation
	stamps  map[uint64]struct{} // global stamp uniqueness
	base    uint64              // clock the stream started from
	failure *Failure
}

// shardShadowState is one shard's copy of the checkable cache state.
type shardShadowState struct {
	images    map[uint64]*shadowImg
	total     int64
	lastStamp uint64
	lastImage uint64
	lastKind  core.MutationKind
}

// NewShardShadow creates a shadow for a ShardedManager with shards
// shards over repo. next, if non-nil, receives every mutation after
// validation (chain the persist store here).
func NewShardShadow(repo *pkggraph.Repo, shards int, seed int64, next core.CommitHook) *ShardShadow {
	if shards < 1 {
		shards = 1
	}
	sh := &ShardShadow{
		repo:   repo,
		n:      shards,
		seed:   seed,
		next:   next,
		routes: core.NewRouteTable(repo),
		shards: make([]*shardShadowState, shards),
		stamps: make(map[uint64]struct{}),
	}
	for i := range sh.shards {
		sh.shards[i] = &shardShadowState{images: make(map[uint64]*shadowImg), lastImage: ^uint64(0)}
	}
	return sh
}

// SetBudgets installs the current per-shard byte budgets (a copy is
// taken). The driver calls this after every Rebalance; nil or an
// all-zero slice disables the per-shard capacity audit (unlimited).
func (sh *ShardShadow) SetBudgets(budgets []int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if budgets == nil {
		sh.budgets = nil
		return
	}
	sh.budgets = append(sh.budgets[:0], budgets...)
}

// Err returns the first recorded violation, or nil.
func (sh *ShardShadow) Err() *Failure {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.failure
}

// Mutations returns the validated stream in arrival order. The
// returned slice must not be mutated.
func (sh *ShardShadow) Mutations() []core.Mutation {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.muts
}

// Len returns the number of mutations observed.
func (sh *ShardShadow) Len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.muts)
}

func (sh *ShardShadow) failf(format string, args ...any) {
	if sh.failure == nil {
		sh.failure = failf(sh.seed, len(sh.muts), format, args...)
	}
}

func (sh *ShardShadow) budgetOf(shard int) int64 {
	if sh.budgets == nil || shard >= len(sh.budgets) {
		return 0
	}
	return sh.budgets[shard]
}

// Commit implements core.CommitHook.
func (sh *ShardShadow) Commit(mut core.Mutation) {
	sh.mu.Lock()
	shard := int(mut.ImageID % uint64(sh.n))
	sh.check(shard, mut)
	sh.apply(shard, mut)
	sh.muts = append(sh.muts, mut)
	sh.mu.Unlock()
	if sh.next != nil {
		sh.next.Commit(mut)
	}
}

// check validates mut against shard's shadow state (sh.mu held).
func (sh *ShardShadow) check(shard int, mut core.Mutation) {
	ss := sh.shards[shard]
	if stamped(mut.Kind) {
		// Per-shard total order: this shard's hook fires under its own
		// stamping lock, so its stamps must be strictly increasing.
		if mut.LastUse <= ss.lastStamp {
			sh.failf("shard %d: %s of image %d stamped %d after stamp %d (per-shard commit ordering violated)",
				shard, mut.Kind, mut.ImageID, mut.LastUse, ss.lastStamp)
		}
		// Global uniqueness: every stamp is drawn once from the shared
		// clock. A duplicate means two shards raced the clock source.
		if _, dup := sh.stamps[mut.LastUse]; dup {
			sh.failf("shard %d: %s of image %d reuses stamp %d (shared clock not unique)",
				shard, mut.Kind, mut.ImageID, mut.LastUse)
		}
		// The shard's previous request finished its eviction pass before
		// this one stamped (same lock), so the shard's budget must hold.
		if b := sh.budgetOf(shard); b > 0 && evicts(ss.lastKind) && ss.total > b && len(ss.images) > 1 {
			sh.failf("shard %d at %d bytes exceeds its budget %d with %d images at the next request",
				shard, ss.total, b, len(ss.images))
		}
	}
	img := ss.images[mut.ImageID]
	switch mut.Kind {
	case core.MutTouch:
		if img == nil {
			sh.failf("shard %d: touch of unknown image %d", shard, mut.ImageID)
		}
	case core.MutInsert:
		if img != nil {
			sh.failf("shard %d: insert of already-live image %d", shard, mut.ImageID)
		}
		if len(mut.Packages) == 0 {
			sh.failf("shard %d: insert of image %d with no packages", shard, mut.ImageID)
		}
		// Route audit: the inserted spec must route to the shard whose
		// residue class allocated the ID. Per-shard checks cannot see a
		// misrouted spec (each shard is self-consistent), so this is the
		// detector for router bugs.
		if want := core.ShardRoute(mut.Packages, sh.n); want != shard {
			sh.failf("shard %d: insert of image %d whose packages route to shard %d (request misrouted)",
				shard, mut.ImageID, want)
		} else if got := sh.routes.Route(sh.specOf(mut.Packages), sh.n); got != want {
			// The interned route table (per-PkgID terms summed) must
			// agree with the streamed string hash on every inserted spec
			// — the pure-function identity the fast routing path rides.
			sh.failf("shard %d: insert of image %d routes to %d interned but %d streamed (route table diverged)",
				shard, mut.ImageID, got, want)
		}
	case core.MutMerge:
		if img == nil {
			sh.failf("shard %d: merge into unknown image %d", shard, mut.ImageID)
			return
		}
		merged := sh.specOf(mut.Packages)
		if !img.spec.SubsetOf(merged) {
			sh.failf("shard %d: merge shrank image %d (new spec is not a superset of the old)", shard, mut.ImageID)
		}
		if mut.Version != img.version+1 {
			sh.failf("shard %d: merge left image %d at version %d, want %d", shard, mut.ImageID, mut.Version, img.version+1)
		}
	case core.MutDelete:
		if img == nil {
			sh.failf("shard %d: delete of unknown image %d", shard, mut.ImageID)
			return
		}
		if mut.ImageID == ss.lastImage {
			sh.failf("shard %d: evicted image %d, the image the shard's in-flight request just used", shard, mut.ImageID)
		}
		oldest, oldestID := img.lastUse, mut.ImageID
		for id, other := range ss.images {
			if id == mut.ImageID || id == ss.lastImage {
				continue
			}
			if other.lastUse < oldest || (other.lastUse == oldest && id < oldestID) {
				oldest, oldestID = other.lastUse, id
			}
		}
		if oldestID != mut.ImageID {
			sh.failf("shard %d: evicted image %d (lastUse %d) while image %d (lastUse %d) is older — not the shard's LRU victim",
				shard, mut.ImageID, img.lastUse, oldestID, oldest)
		}
	case core.MutSplit:
		if img == nil {
			sh.failf("shard %d: split of unknown image %d", shard, mut.ImageID)
		}
	default:
		sh.failf("unknown mutation kind %q", mut.Kind)
	}
}

// apply folds mut into shard's shadow state (sh.mu held).
func (sh *ShardShadow) apply(shard int, mut core.Mutation) {
	ss := sh.shards[shard]
	if stamped(mut.Kind) {
		if mut.LastUse > ss.lastStamp {
			ss.lastStamp = mut.LastUse
		}
		ss.lastImage = mut.ImageID
		ss.lastKind = mut.Kind
		sh.stamps[mut.LastUse] = struct{}{}
	}
	switch mut.Kind {
	case core.MutTouch:
		if img := ss.images[mut.ImageID]; img != nil {
			img.lastUse = mut.LastUse
		}
	case core.MutInsert:
		s := sh.specOf(mut.Packages)
		ss.images[mut.ImageID] = &shadowImg{spec: s, size: s.Size(sh.repo), lastUse: mut.LastUse, version: mut.Version}
		ss.total += s.Size(sh.repo)
	case core.MutMerge, core.MutSplit:
		if img := ss.images[mut.ImageID]; img != nil {
			s := sh.specOf(mut.Packages)
			ss.total += s.Size(sh.repo) - img.size
			img.spec = s
			img.size = s.Size(sh.repo)
			img.version = mut.Version
			if mut.Kind == core.MutMerge {
				img.lastUse = mut.LastUse
			}
		}
	case core.MutDelete:
		if img := ss.images[mut.ImageID]; img != nil {
			ss.total -= img.size
			delete(ss.images, mut.ImageID)
		}
	}
}

// specOf resolves package keys; unknown keys are themselves a
// violation (the stream must be self-describing).
func (sh *ShardShadow) specOf(keys []string) spec.Spec {
	ids := make([]pkggraph.PkgID, 0, len(keys))
	for _, key := range keys {
		id, ok := sh.repo.Lookup(key)
		if !ok {
			sh.failf("mutation names unknown package %q", key)
			continue
		}
		ids = append(ids, id)
	}
	return spec.New(ids)
}

// Final runs the end-of-run checks: per-shard budget bounds with no
// in-flight request to excuse an overflow, and stamp density — the N
// per-shard total orders, merged by Seq, must form exactly the dense
// sequence base+1..base+K with no gap and no duplicate, which is what
// makes "sort by Seq" a linearization of the whole run.
func (sh *ShardShadow) Final() *Failure {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failure != nil {
		return sh.failure
	}
	for i, ss := range sh.shards {
		if b := sh.budgetOf(i); b > 0 && evicts(ss.lastKind) && ss.total > b && len(ss.images) > 1 {
			sh.failure = failf(sh.seed, len(sh.muts), "shard %d at %d bytes exceeds its budget %d with %d images after the run",
				i, ss.total, b, len(ss.images))
			return sh.failure
		}
	}
	for k := uint64(1); k <= uint64(len(sh.stamps)); k++ {
		if _, ok := sh.stamps[sh.base+k]; !ok {
			sh.failure = failf(sh.seed, len(sh.muts), "stamp %d missing: %d stamped mutations do not form the dense range %d..%d",
				sh.base+k, len(sh.stamps), sh.base+1, sh.base+uint64(len(sh.stamps)))
			return sh.failure
		}
	}
	return sh.failure
}

// VerifyState replays the observed mutation stream, in arrival order,
// into a fresh sharded cache and compares the merged export against
// the live one — the crash-recovery equivalence (cross-shard records
// commute; per-shard subsequences are monotone) checked without a
// crash.
func (sh *ShardShadow) VerifyState(mcfg core.Config, live core.ManagerState) error {
	sh.mu.Lock()
	muts := make([]core.Mutation, len(sh.muts))
	copy(muts, sh.muts)
	sh.mu.Unlock()

	mcfg.Commit = nil
	mcfg.Tracer = nil
	mcfg.Shards = sh.n
	replayer, err := core.NewSharded(sh.repo, mcfg)
	if err != nil {
		return err
	}
	for i, mut := range muts {
		if err := replayer.ApplyMutation(mut); err != nil {
			return fmt.Errorf("check: replaying mutation %d (%s of image %d): %w", i, mut.Kind, mut.ImageID, err)
		}
	}
	if err := statesEqual(replayer.ExportState(), live); err != nil {
		return fmt.Errorf("check: replayed sharded state diverges from live state: %w", err)
	}
	return nil
}
