package check

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/server"
)

// RunHAChaos audits the fleet's high-availability layer end to end: a
// real primary + standby master pair (each on its own rebindable
// listener, lease-linked over HTTP) fronting N agents that heartbeat
// both masters through their epoch-gated handlers, with a WAL-streaming
// read replica following the persistent agent. The schedule kills the
// primary and isolates the lease holder at deterministic steps, and the
// run drives every lease tick, heartbeat, and replica pull itself so
// failover timing is exact, not wall-clocked.
//
// The invariants:
//
//   - zero lost acks: every request acknowledged through the fleet is
//     still served afterwards — as a hit on the agent that acked it,
//     and through whichever master holds the lease;
//   - promotion in two: a standby becomes primary after exactly two
//     driven lease ticks of primary silence, never after one;
//   - single primary per epoch: no request round is ever acknowledged
//     by two masters, no agent's epoch gate ever records a same-epoch
//     holder conflict, and no 200 ever arrives stamped with an epoch
//     older than one the client has already seen (the audit that
//     catches the staleepoch mutant);
//   - recovered state byte-identity: a promoted master's inherited
//     mirror equals the dead primary's last durable ha-state.json,
//     byte for byte;
//   - replica byte-identity: the WAL follower's cache state equals the
//     persistent agent's ExportState once the stream is drained;
//   - warm handoff: a drained agent's acked specs are still hits
//     through the fleet, served by the rendezvous successors its drain
//     warmed.
type HAChaosConfig struct {
	Seed  int64
	Steps int
	// Agents is the fleet size (>= 2; agent 0 is the persistent one the
	// replica follows).
	Agents int
	Alpha  float64
	// Kills is how many scheduled primary kill/restart cycles run; a
	// final kill always runs after the drain audit.
	Kills int
	// Isolations is how many lease-isolation partitions run: the
	// standby loses its path to the lease holder, promotes, and the old
	// primary must demote off the agents' epoch rejections.
	Isolations int
	// KillPhase shifts every scheduled event by this many steps — the
	// nightly soak rotates it so the kill schedule varies across runs
	// while each run stays reproducible from its seed + phase.
	KillPhase int
}

// HAChaosDefault is the canonical HA chaos configuration for a seed.
func HAChaosDefault(seed int64) HAChaosConfig {
	return HAChaosConfig{
		Seed: seed, Steps: 200, Agents: 3, Alpha: 0.6,
		Kills: 3, Isolations: 2,
	}
}

// HAChaosReport summarizes one run.
type HAChaosReport struct {
	Steps       int
	Acked       int // rounds with exactly one master acking
	Unavailable int // rounds with no ack (failover being learned)
	Sheds       int
	Errors      int
	Kills       int // primary kills (scheduled + final)
	Isolations  int // lease-holder partitions
	Promotions  int // audited standby promotions
	Demotions   int // audited old-primary demotions
	MaxEpoch    uint64
	// ReplicaRecords is how many WAL records the read replica applied.
	ReplicaRecords uint64
	// StaleRejects sums the agents' epoch-gate rejections — nonzero in
	// any run where a superseded primary tried to keep forwarding.
	StaleRejects uint64
	// HandoffSpecs is how many acked specs the drain audit re-verified.
	HandoffSpecs int
}

// haMasterSlot is one master's moving parts: identity, stable address,
// durable state dir, and the live process (master + http server).
type haMasterSlot struct {
	id       string
	addr     string
	url      string
	stateDir string
	hs       *http.Server
	m        *fleet.Master
	// peerChaos sits on this master's lease path to its peer;
	// isolating the lease holder = blackholing the standby's plan.
	peerChaos *resilience.ChaosTransport
	alive     bool
}

// haEvent is one scheduled fault.
type haEvent struct {
	step int
	kind string // "kill", "isolate", "heal"
}

// RunHAChaos executes the HA chaos schedule and audits the invariants.
// It returns a nil Failure on a clean run; a failure carries the
// persistent agent's span-trace ring for latency context.
func RunHAChaos(cfg HAChaosConfig) (rep HAChaosReport, fail *Failure) {
	if cfg.Agents < 2 {
		return rep, failf(cfg.Seed, 0, "hachaos: Agents must be >= 2")
	}
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	ctx := context.Background()

	scratch, err := os.MkdirTemp("", "hachaos-*")
	if err != nil {
		return rep, failf(cfg.Seed, 0, "hachaos: scratch dir: %v", err)
	}
	defer os.RemoveAll(scratch)

	// ---- agents ----
	// Agent 0 is persistent with replication enabled; the read replica
	// follows its WAL stream. The rest are in-memory. All have
	// unlimited capacity, so an acked spec can never be evicted — any
	// post-fault miss is a real loss.
	type haAgent struct {
		id  string
		srv *server.Server
		ts  *httptest.Server
		ag  *fleet.Agent
	}
	agents := make([]*haAgent, cfg.Agents)
	for i := range agents {
		a := &haAgent{id: fmt.Sprintf("agent-%d", i)}
		if i == 0 {
			store, err := persist.Open(filepath.Join(scratch, "agent-0"), persist.Options{})
			if err != nil {
				return rep, failf(cfg.Seed, 0, "hachaos: opening store: %v", err)
			}
			srv, _, err := server.NewPersistent(repo, core.Config{Alpha: cfg.Alpha}, store, 0)
			if err != nil {
				return rep, failf(cfg.Seed, 0, "hachaos: persistent agent: %v", err)
			}
			if err := srv.EnableReplication(1); err != nil {
				return rep, failf(cfg.Seed, 0, "hachaos: enabling replication: %v", err)
			}
			a.srv = srv
		} else {
			srv, err := server.New(repo, core.Config{Alpha: cfg.Alpha})
			if err != nil {
				return rep, failf(cfg.Seed, 0, "hachaos: agent server: %v", err)
			}
			a.srv = srv
		}
		agents[i] = a
	}
	defer func() {
		if fail != nil && agents[0] != nil && agents[0].srv != nil {
			fail.TraceDump = agents[0].srv.TraceRing().Dump(0)
		}
		for _, a := range agents {
			if a.ts != nil {
				a.ts.Close()
			}
		}
	}()

	// ---- masters ----
	slots := []*haMasterSlot{
		{id: "master-a", stateDir: filepath.Join(scratch, "master-a")},
		{id: "master-b", stateDir: filepath.Join(scratch, "master-b")},
	}
	listeners := make([]net.Listener, 2)
	for i, s := range slots {
		if err := os.MkdirAll(s.stateDir, 0o755); err != nil {
			return rep, failf(cfg.Seed, 0, "hachaos: state dir: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return rep, failf(cfg.Seed, 0, "hachaos: listen: %v", err)
		}
		listeners[i] = ln
		s.addr = ln.Addr().String()
		s.url = "http://" + s.addr
		s.peerChaos = resilience.NewChaosTransport(
			&http.Transport{DisableKeepAlives: true},
			resilience.ChaosPlan{Seed: cfg.Seed + 20 + int64(i)})
	}
	boot := func(i int, startPrimary bool, ln net.Listener) {
		s, peer := slots[i], slots[1-i]
		s.m = fleet.NewMaster(fleet.MasterConfig{
			Quorum:         1,
			SuspectAfter:   40 * time.Millisecond,
			DeadAfter:      0,
			ForwardTimeout: 500 * time.Millisecond,
			MaxAttempts:    cfg.Agents,
			Breaker:        resilience.BreakerConfig{Failures: 3, OpenFor: 10 * time.Millisecond},
			HA: fleet.HAConfig{
				ID: s.id, PeerURL: peer.url, StartPrimary: startPrimary,
				StateDir:   s.stateDir,
				HTTPClient: &http.Client{Transport: s.peerChaos},
			},
		})
		s.hs = &http.Server{Handler: s.m.Handler()}
		go s.hs.Serve(ln)
		s.alive = true
	}
	boot(0, true, listeners[0])
	boot(1, false, listeners[1])
	defer func() {
		for _, s := range slots {
			if s.alive {
				s.hs.Close()
			}
		}
	}()

	primarySlot := func() *haMasterSlot {
		var best *haMasterSlot
		for _, s := range slots {
			if !s.alive {
				continue
			}
			st := s.m.HAStatusNow()
			if st.Role == "primary" && (best == nil || st.Epoch > best.m.HAStatusNow().Epoch) {
				best = s
			}
		}
		return best
	}

	// ---- agents join the fleet (both masters) ----
	// The listener must exist before the agent (the advertise URL), and
	// the agent must exist before requests flow (its epoch gate), so the
	// test server dispatches through a late-bound handler.
	masterURLs := []string{slots[0].url, slots[1].url}
	for _, a := range agents {
		a := a
		a.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			a.ag.Handler().ServeHTTP(w, r)
		}))
		a.ag = fleet.NewAgent(fleet.AgentConfig{
			ID:           a.id,
			AdvertiseURL: a.ts.URL,
			MasterURLs:   masterURLs,
			Interval:     time.Hour, // beats are driven by the schedule
			BeatTimeout:  time.Second,
			HTTPClient:   &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		}, a.srv)
	}
	drained := map[string]bool{}
	beatAll := func() {
		for _, a := range agents {
			if drained[a.id] {
				continue
			}
			a.ag.BeatNow(ctx) // a dead master's link fails; the survivor acks
		}
	}
	beatAll()

	// ---- read replica over agent-0's WAL stream ----
	newReplicaMgr := func() (*core.ShardedManager, error) {
		return core.NewSharded(repo, core.Config{Alpha: cfg.Alpha})
	}
	replicaMgr, err := newReplicaMgr()
	if err != nil {
		return rep, failf(cfg.Seed, 0, "hachaos: replica manager: %v", err)
	}
	replica := persist.NewFollower(
		func(payload []byte) error {
			var mut core.Mutation
			if err := json.Unmarshal(payload, &mut); err != nil {
				return err
			}
			return replicaMgr.ApplyMutation(mut)
		},
		func(payload []byte) error {
			var ck persist.StreamCheckpoint
			if err := json.Unmarshal(payload, &ck); err != nil {
				return err
			}
			fresh, err := newReplicaMgr()
			if err != nil {
				return err
			}
			if err := fresh.ImportState(ck.State); err != nil {
				return err
			}
			replicaMgr = fresh
			return nil
		})
	replicaHTTP := agents[0].ts.Client()
	pullReplica := func() {
		pctx, cancel := context.WithTimeout(ctx, time.Second)
		defer cancel()
		replica.Pull(pctx, replicaHTTP, agents[0].ts.URL+"/ha/v1") // lag is fine; the next pull catches up
	}
	auditReplica := func(step int) *Failure {
		want := agents[0].srv.Streamer().Next()
		if !Poll(3*time.Second, func() bool {
			pullReplica()
			return replica.Next() >= want
		}) {
			return failf(cfg.Seed, step, "hachaos: replica never drained to %d (at %d)", want, replica.Next())
		}
		got, err := json.Marshal(replicaMgr.ExportState())
		if err != nil {
			return failf(cfg.Seed, step, "hachaos: marshal replica state: %v", err)
		}
		live, err := json.Marshal(agents[0].srv.ExportState())
		if err != nil {
			return failf(cfg.Seed, step, "hachaos: marshal primary state: %v", err)
		}
		if string(got) != string(live) {
			return failf(cfg.Seed, step, "hachaos: replica state diverged from agent-0 after %d records", replica.Applied())
		}
		return nil
	}

	// ---- fleet client: raw HTTP so 200s expose their epoch stamp ----
	fleetHTTP := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	type haAck struct {
		status int
		epoch  uint64
		res    fleet.RouteResponse
		retry  string
	}
	post := func(url string, keys []string) haAck {
		body, _ := json.Marshal(server.RequestBody{Packages: keys, Close: false})
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		defer cancel()
		req, _ := http.NewRequestWithContext(pctx, http.MethodPost, url+"/v1/request", strings.NewReader(string(body)))
		req.Header.Set("Content-Type", "application/json")
		resp, err := fleetHTTP.Do(req)
		if err != nil {
			return haAck{status: 0}
		}
		defer resp.Body.Close()
		a := haAck{status: resp.StatusCode, retry: resp.Header.Get("Retry-After")}
		a.epoch, _ = strconv.ParseUint(resp.Header.Get(server.EpochHeader), 10, 64)
		if resp.StatusCode == http.StatusOK {
			json.NewDecoder(resp.Body).Decode(&a.res)
		}
		return a
	}

	type ackedReq struct {
		keys  []string
		step  int
		agent string
	}
	acked := make(map[string]ackedReq)
	var maxEpochSeen uint64

	// sendRound offers one spec to every live master and audits the
	// single-primary contract on the acks.
	sendRound := func(step int, keys []string, record bool) *Failure {
		type ackFrom struct {
			slot *haMasterSlot
			ack  haAck
		}
		var oks []ackFrom
		saw429, saw503 := false, false
		for _, s := range slots {
			if !s.alive {
				continue
			}
			a := post(s.url, keys)
			switch {
			case a.status == http.StatusOK:
				oks = append(oks, ackFrom{s, a})
			case a.status == http.StatusTooManyRequests:
				saw429 = true
			case a.status == http.StatusServiceUnavailable:
				saw503 = true
				if a.epoch > 0 && a.retry == "" {
					return failf(cfg.Seed, step, "hachaos: 503 stamped epoch %d without Retry-After", a.epoch)
				}
			}
		}
		if len(oks) > 1 {
			return failf(cfg.Seed, step,
				"hachaos: dual primary: %s served epoch %d and %s served epoch %d in one round",
				oks[0].slot.id, oks[0].ack.epoch, oks[1].slot.id, oks[1].ack.epoch)
		}
		if len(oks) == 1 {
			a := oks[0].ack
			if a.epoch < maxEpochSeen {
				return failf(cfg.Seed, step,
					"hachaos: %s acked at epoch %d after epoch %d was already active",
					oks[0].slot.id, a.epoch, maxEpochSeen)
			}
			if a.epoch > maxEpochSeen {
				maxEpochSeen = a.epoch
			}
			if record {
				rep.Acked++
				acked[strings.Join(keys, ",")] = ackedReq{keys: keys, step: step, agent: a.res.Agent}
			}
		} else if record {
			switch {
			case saw429:
				rep.Sheds++
			case saw503:
				rep.Unavailable++
			default:
				rep.Errors++
			}
		}
		return nil
	}

	// fleetServe absorbs the transient 503s while a failover or suspect
	// transition is still being learned.
	fleetServe := func(keys []string) (fleet.RouteResponse, bool) {
		for i := 0; i < 40; i++ {
			for _, s := range slots {
				if !s.alive {
					continue
				}
				if a := post(s.url, keys); a.status == http.StatusOK {
					return a.res, true
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fleet.RouteResponse{}, false
	}

	// auditAcked is the zero-lost-acks contract.
	auditAcked := func(step int) *Failure {
		for _, a := range agents {
			if drained[a.id] {
				continue
			}
			direct := server.NewClient(a.ts.URL, a.ts.Client())
			for key, ar := range acked {
				if ar.agent != a.id {
					continue
				}
				res, err := requestNoShed(direct, ar.keys)
				if err != nil {
					return failf(cfg.Seed, step, "hachaos: acked spec from step %d unservable on %s: %v", ar.step, a.id, err)
				}
				if res.Op != "hit" {
					return failf(cfg.Seed, step, "hachaos: acked spec from step %d lost on %s: op %q (spec %s)", ar.step, a.id, res.Op, key)
				}
			}
		}
		for _, ar := range acked {
			if _, ok := fleetServe(ar.keys); !ok {
				return failf(cfg.Seed, step, "hachaos: acked spec from step %d unservable through the fleet", ar.step)
			}
		}
		return nil
	}

	// promoteStandby drives the standby through exactly two lease ticks
	// of primary silence and asserts the lease state machine: suspicion
	// after one, promotion after two, recovered state byte-identical to
	// the dead/isolated primary's last durable ha-state.json.
	promoteStandby := func(step int, standby *haMasterSlot, primaryStateDir string, wantEpoch uint64) *Failure {
		tctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
		st := standby.m.LeaseTick(tctx)
		cancel()
		if st.Role != "standby" {
			return failf(cfg.Seed, step, "hachaos: standby %s promoted after ONE missed lease tick", standby.id)
		}
		tctx, cancel = context.WithTimeout(ctx, 300*time.Millisecond)
		st = standby.m.LeaseTick(tctx)
		cancel()
		if st.Role != "primary" || st.Epoch != wantEpoch {
			return failf(cfg.Seed, step,
				"hachaos: standby %s not primary at epoch %d after two missed ticks (role %s epoch %d)",
				standby.id, wantEpoch, st.Role, st.Epoch)
		}
		rep.Promotions++
		durable, err := fleet.ReadHAState(filepath.Join(primaryStateDir, "ha-state.json"))
		if err != nil {
			return failf(cfg.Seed, step, "hachaos: reading dead primary's ha-state.json: %v", err)
		}
		if !fleet.HAStateEqual(st.RecoveredState, durable) {
			return failf(cfg.Seed, step,
				"hachaos: promoted %s recovered state differs from dead primary's durable state:\n recovered %s\n durable   %s",
				standby.id, st.RecoveredState, durable)
		}
		return nil
	}

	// drainLease verifies replication is drained: one granted tick, then
	// mirror watermark == primary log watermark.
	drainLease := func(step int, standby, primary *haMasterSlot) *Failure {
		tctx, cancel := context.WithTimeout(ctx, time.Second)
		st := standby.m.LeaseTick(tctx)
		cancel()
		pst := primary.m.HAStatusNow()
		if st.Role != "standby" || st.MirrorNext != pst.StreamNext {
			return failf(cfg.Seed, step,
				"hachaos: standby %s not drained before kill: mirror %d, primary log %d", standby.id, st.MirrorNext, pst.StreamNext)
		}
		return nil
	}

	killPrimary := func(step int) *Failure {
		p := primarySlot()
		if p == nil {
			return failf(cfg.Seed, step, "hachaos: no primary to kill")
		}
		s := slots[0]
		if s == p {
			s = slots[1]
		}
		if f := drainLease(step, s, p); f != nil {
			return f
		}
		epoch := p.m.HAStatusNow().Epoch
		p.hs.Close()
		p.alive = false
		rep.Kills++
		if f := promoteStandby(step, s, p.stateDir, epoch+1); f != nil {
			return f
		}
		// Restart the dead master as a standby of the new primary: same
		// identity and state dir, fresh soft state.
		var nl net.Listener
		if !Poll(2*time.Second, func() bool {
			var err error
			nl, err = net.Listen("tcp", p.addr)
			return err == nil
		}) {
			return failf(cfg.Seed, step, "hachaos: could not rebind master address %s", p.addr)
		}
		idx := 0
		if slots[1] == p {
			idx = 1
		}
		boot(idx, false, nl)
		if !Poll(2*time.Second, func() bool {
			beatAll()
			pctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
			defer cancel()
			req, _ := http.NewRequestWithContext(pctx, http.MethodGet, p.url+"/v1/readyz", nil)
			resp, err := fleetHTTP.Do(req)
			if err != nil {
				return false
			}
			resp.Body.Close()
			return resp.StatusCode == http.StatusOK
		}) {
			return failf(cfg.Seed, step, "hachaos: restarted master %s never became ready", p.id)
		}
		if f := auditAcked(step); f != nil {
			return f
		}
		return auditReplica(step)
	}

	isolated := (*haMasterSlot)(nil) // old primary awaiting demotion audit
	isolate := func(step int) *Failure {
		p := primarySlot()
		if p == nil {
			return failf(cfg.Seed, step, "hachaos: no primary to isolate")
		}
		s := slots[0]
		if s == p {
			s = slots[1]
		}
		if f := drainLease(step, s, p); f != nil {
			return f
		}
		epoch := p.m.HAStatusNow().Epoch
		// Sever the standby's lease path to the holder. The holder still
		// reaches the agents — the case where only agent-side epoch
		// fencing keeps the old primary from mutating the fleet.
		s.peerChaos.SetPlan(resilience.ChaosPlan{BlackholeP: 1})
		rep.Isolations++
		if f := promoteStandby(step, s, p.stateDir, epoch+1); f != nil {
			return f
		}
		isolated = p
		return nil
	}
	heal := func(step int) *Failure {
		for _, s := range slots {
			s.peerChaos.SetPlan(resilience.ChaosPlan{})
		}
		if isolated == nil {
			return nil
		}
		// By now the old primary has tried to forward at least once,
		// been refused by an epoch-gated agent, and demoted itself.
		st := isolated.m.HAStatusNow()
		if st.Role != "standby" || st.Demotions == 0 {
			return failf(cfg.Seed, step,
				"hachaos: isolated primary %s never demoted off the agents' epoch rejections (role %s, %d demotions)",
				isolated.id, st.Role, st.Demotions)
		}
		rep.Demotions++
		isolated = nil
		return nil
	}

	// ---- deterministic fault schedule ----
	// Kills and isolations alternate across evenly spaced slots;
	// KillPhase shifts the whole schedule (the nightly soak's rotation).
	var events []haEvent
	total := cfg.Kills + cfg.Isolations
	isoLeft := cfg.Isolations
	isoLen := 6
	for k := 0; k < total; k++ {
		step := cfg.Steps * (k + 1) / (total + 1)
		if cfg.Steps > 0 {
			step = (step + cfg.KillPhase) % cfg.Steps
		}
		if step < 5 {
			step = 5
		}
		if step > cfg.Steps-10 {
			step = cfg.Steps - 10
		}
		if k%2 == 0 && isoLeft > 0 {
			isoLeft--
			events = append(events, haEvent{step, "isolate"}, haEvent{step + isoLen, "heal"})
		} else {
			events = append(events, haEvent{step, "kill"})
		}
	}
	eventsAt := map[int][]string{}
	for _, e := range events {
		eventsAt[e.step] = append(eventsAt[e.step], e.kind)
	}

	// ---- main loop ----
	for step := 0; step < cfg.Steps; step++ {
		for _, kind := range eventsAt[step] {
			var f *Failure
			switch kind {
			case "kill":
				f = killPrimary(step)
			case "isolate":
				f = isolate(step)
			case "heal":
				f = heal(step)
			}
			if f != nil {
				return rep, f
			}
		}
		for _, s := range slots {
			if s.alive {
				tctx, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
				s.m.LeaseTick(tctx)
				cancel()
			}
		}
		beatAll()
		if step%5 == 0 {
			pullReplica()
		}
		keys := keysOf(repo, stream.Next())
		rep.Steps++
		if f := sendRound(step, keys, true); f != nil {
			return rep, f
		}
	}

	// ---- warm handoff audit ----
	// Drain agent 1 (an in-memory agent holding real acked state): its
	// rendezvous successors are warmed, and every spec it acked must
	// still be a hit through the fleet.
	if f := heal(cfg.Steps); f != nil {
		return rep, f
	}
	drainTarget := agents[1]
	var drainSpecs []ackedReq
	for _, ar := range acked {
		if ar.agent == drainTarget.id {
			drainSpecs = append(drainSpecs, ar)
		}
	}
	if err := drainTarget.ag.Drain(ctx); err != nil {
		return rep, failf(cfg.Seed, cfg.Steps, "hachaos: drain: %v", err)
	}
	drained[drainTarget.id] = true
	// The successors must gossip their warmed images before the audit:
	// affinity routing can only steer a drained spec to its new holder
	// once the master's directory mirror has seen it.
	beatAll()
	for _, ar := range drainSpecs {
		res, ok := fleetServe(ar.keys)
		if !ok {
			return rep, failf(cfg.Seed, cfg.Steps, "hachaos: drained spec from step %d unservable through the fleet", ar.step)
		}
		if res.Op != "hit" {
			return rep, failf(cfg.Seed, cfg.Steps,
				"hachaos: handoff lost warm spec from step %d: op %q on %s", ar.step, res.Op, res.Agent)
		}
		if res.Agent == drainTarget.id {
			return rep, failf(cfg.Seed, cfg.Steps, "hachaos: drained agent %s still serving", drainTarget.id)
		}
	}
	rep.HandoffSpecs = len(drainSpecs)

	// ---- final kill: the run always ends with a full recovery audit ----
	if f := killPrimary(cfg.Steps); f != nil {
		return rep, f
	}

	// ---- closing audits ----
	finalEpoch := primarySlot().m.HAStatusNow().Epoch
	rep.MaxEpoch = finalEpoch
	for _, a := range agents {
		st := a.ag.Gate().Snapshot()
		rep.StaleRejects += st.StaleRejects
		if st.Conflicts != 0 {
			return rep, failf(cfg.Seed, cfg.Steps,
				"hachaos: agent %s observed %d same-epoch holder conflicts", a.id, st.Conflicts)
		}
		if drained[a.id] {
			continue
		}
		if st.Epoch != finalEpoch {
			return rep, failf(cfg.Seed, cfg.Steps,
				"hachaos: agent %s gate at epoch %d, fleet at %d", a.id, st.Epoch, finalEpoch)
		}
	}
	rep.ReplicaRecords = replica.Applied()
	if rep.Acked == 0 {
		return rep, failf(cfg.Seed, cfg.Steps, "hachaos: no request was ever acknowledged")
	}
	return rep, nil
}
