package check

import (
	"sort"

	"repro/internal/core"
	"repro/internal/similarity"
	"repro/internal/spec"
)

// Oracle validates a single-threaded Manager one request at a time: it
// captures the cache before each request, independently re-derives the
// decision Algorithm 1 must make (hit / merge / insert, on which
// image, evicting which victims), and compares the manager's actual
// transition against that derivation. It is a second, deliberately
// naive implementation of the algorithm — O(images) per phase, no
// prefilters, no caching — so a bug must be present in both the
// production code and the oracle, in compatible ways, to go unseen.
//
// The manager must run in exact mode (Config.MinHash nil, candidate
// sorting on): the MinHash margin prefilter may drop merge candidates
// the exact algorithm takes, which is a documented approximation, not
// a bug the oracle should report.
type Oracle struct {
	m    *core.Manager
	seed int64
	step int
}

// oimg is the oracle's copy of one image's checkable state.
type oimg struct {
	id      uint64
	spec    spec.Spec
	size    int64
	lastUse uint64
	version uint64
}

// NewOracle wraps m for validation. The seed labels failures for
// reproduction; step counting starts at 0.
func NewOracle(m *core.Manager, seed int64) *Oracle {
	if m.MinHashEnabled() {
		panic("check: oracle requires an exact-mode manager (Config.MinHash must be nil)")
	}
	return &Oracle{m: m, seed: seed}
}

// Steps returns how many requests the oracle has validated.
func (o *Oracle) Steps() int { return o.step }

// StartAt sets the step counter. The chaos driver re-creates the
// oracle after each simulated crash and continues the global request
// index here, so a failure names the same step no matter how many
// recoveries preceded it.
func (o *Oracle) StartAt(step int) { o.step = step }

// capture copies the checkable state of every image, in insertion
// order (the order Algorithm 1's scans and tie-breaks follow).
func (o *Oracle) capture() []oimg {
	imgs := o.m.Images()
	out := make([]oimg, len(imgs))
	for i, img := range imgs {
		out[i] = oimg{id: img.ID, spec: img.Spec, size: img.Size, lastUse: img.LastUse(), version: img.Version}
	}
	return out
}

// Step issues one request through the manager and validates the
// transition. A nil Failure means the step upheld every invariant.
func (o *Oracle) Step(s spec.Spec) (core.Result, *Failure) {
	pre := o.capture()
	preClock := o.m.Clock()

	res, err := o.m.Request(s)
	step := o.step
	o.step++
	if err != nil {
		return res, failf(o.seed, step, "request error: %v", err)
	}
	if res.Seq != preClock+1 {
		return res, failf(o.seed, step, "Seq %d, want clock %d+1", res.Seq, preClock)
	}

	post := o.capture()
	postByID := make(map[uint64]oimg, len(post))
	for _, img := range post {
		postByID[img.id] = img
	}

	// Independently derive what Algorithm 1 must do.
	wantOp, wantID := o.derive(pre, s)
	if res.Op != wantOp {
		return res, failf(o.seed, step, "op %v on image %d, oracle derives %v on image %d",
			res.Op, res.ImageID, wantOp, wantID)
	}
	if wantOp != core.OpInsert && res.ImageID != wantID {
		return res, failf(o.seed, step, "%v targeted image %d, oracle derives image %d", res.Op, res.ImageID, wantID)
	}
	if o.m.Alpha() == 0 && res.Op == core.OpMerge {
		return res, failf(o.seed, step, "merge at alpha=0 (must degenerate to pure LRU)")
	}

	// Per-op post-state: the served image and only the served image
	// changed (modulo eviction, simulated below).
	served, ok := postByID[res.ImageID]
	if !ok {
		return res, failf(o.seed, step, "served image %d not live after %v", res.ImageID, res.Op)
	}
	if served.lastUse != res.Seq {
		return res, failf(o.seed, step, "served image %d lastUse %d, want Seq %d (LRU stamp not refreshed)",
			res.ImageID, served.lastUse, res.Seq)
	}
	preByID := make(map[uint64]oimg, len(pre))
	for _, img := range pre {
		preByID[img.id] = img
	}
	switch res.Op {
	case core.OpHit:
		was := preByID[res.ImageID]
		if !s.SubsetOf(served.spec) {
			return res, failf(o.seed, step, "hit on image %d which does not contain the request (superset rule violated)", res.ImageID)
		}
		if !served.spec.Equal(was.spec) || served.version != was.version {
			return res, failf(o.seed, step, "hit mutated image %d contents", res.ImageID)
		}
		if res.Evicted != 0 || len(post) != len(pre) {
			return res, failf(o.seed, step, "hit evicted %d image(s); hits must not evict", res.Evicted)
		}
	case core.OpMerge:
		was := preByID[res.ImageID]
		want := was.spec.Union(s)
		if !served.spec.Equal(want) {
			return res, failf(o.seed, step, "merged image %d spec is not old∪request", res.ImageID)
		}
		if served.version != was.version+1 {
			return res, failf(o.seed, step, "merge left image %d at version %d, want %d", res.ImageID, served.version, was.version+1)
		}
	case core.OpInsert:
		if _, existed := preByID[res.ImageID]; existed {
			return res, failf(o.seed, step, "insert reused live image ID %d", res.ImageID)
		}
		if !served.spec.Equal(s) {
			return res, failf(o.seed, step, "inserted image %d spec differs from the request", res.ImageID)
		}
	}

	// Unrelated images must be untouched (evicted ones handled below).
	for _, was := range pre {
		if was.id == res.ImageID {
			continue
		}
		now, live := postByID[was.id]
		if !live {
			continue
		}
		if !now.spec.Equal(was.spec) || now.version != was.version || now.lastUse != was.lastUse {
			return res, failf(o.seed, step, "%v of image %d mutated unrelated image %d", res.Op, res.ImageID, was.id)
		}
	}

	// Hits never run the eviction pass (asserted above), so the
	// capacity bound is only checked after merges and inserts; a
	// recovered over-capacity cache legitimately stays oversized while
	// it serves only hits.
	if res.Op != core.OpHit {
		if f := o.checkEviction(step, pre, res); f != nil {
			return res, f
		}
	}
	if err := o.m.CheckIntegrity(); err != nil {
		return res, failf(o.seed, step, "integrity: %v", err)
	}
	return res, nil
}

// derive re-runs Algorithm 1's decision procedure over the captured
// pre-state: smallest superset in insertion order, else closest
// non-conflicting candidate under α (stable by distance, then
// insertion order), else insert.
func (o *Oracle) derive(pre []oimg, s spec.Spec) (core.Op, uint64) {
	best := -1
	for i, img := range pre {
		if img.spec.Len() < s.Len() {
			continue
		}
		if best >= 0 && img.size >= pre[best].size {
			continue
		}
		if s.SubsetOf(img.spec) {
			best = i
		}
	}
	if best >= 0 {
		return core.OpHit, pre[best].id
	}

	alpha := o.m.Alpha()
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i, img := range pre {
		if d := similarity.JaccardDistance(s, img.spec); d < alpha {
			cands = append(cands, cand{i, d})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	policy := o.m.Conflicts()
	for _, c := range cands {
		if !policy.Conflicts(s, pre[c.idx].spec) {
			return core.OpMerge, pre[c.idx].id
		}
	}
	return core.OpInsert, 0
}

// checkEviction simulates the LRU pass Algorithm 1 must run after the
// request's op and compares the victims (identity, count, bytes) and
// the surviving set against what actually happened.
func (o *Oracle) checkEviction(step int, pre []oimg, res core.Result) *Failure {
	cap := o.m.Capacity()
	if cap <= 0 {
		if res.Evicted != 0 {
			return failf(o.seed, step, "evicted %d image(s) with unlimited capacity", res.Evicted)
		}
		return nil
	}

	// Rebuild the momentary state after the op but before eviction.
	sim := make([]oimg, 0, len(pre)+1)
	var total int64
	found := false
	for _, img := range pre {
		if img.id == res.ImageID {
			img.size = res.ImageSize
			img.lastUse = res.Seq
			found = true
		}
		sim = append(sim, img)
		total += img.size
	}
	if !found { // insert
		sim = append(sim, oimg{id: res.ImageID, size: res.ImageSize, lastUse: res.Seq})
		total += res.ImageSize
	}

	wantEvicted := make(map[uint64]bool)
	var wantBytes int64
	for total > cap {
		vi := -1
		for i, img := range sim {
			if img.id == res.ImageID || wantEvicted[img.id] {
				continue
			}
			if vi < 0 || img.lastUse < sim[vi].lastUse {
				vi = i
			}
		}
		if vi < 0 {
			break // only the served image remains; overflow is allowed
		}
		wantEvicted[sim[vi].id] = true
		wantBytes += sim[vi].size
		total -= sim[vi].size
	}

	if res.Evicted != len(wantEvicted) || res.EvictedBytes != wantBytes {
		return failf(o.seed, step, "evicted %d image(s)/%d byte(s), oracle derives %d/%d (LRU order or capacity bound violated)",
			res.Evicted, res.EvictedBytes, len(wantEvicted), wantBytes)
	}
	liveWant := make(map[uint64]bool, len(sim))
	for _, img := range sim {
		if !wantEvicted[img.id] {
			liveWant[img.id] = true
		}
	}
	for _, img := range o.m.Images() {
		if !liveWant[img.ID] {
			return failf(o.seed, step, "image %d survived but the oracle derives it as the LRU victim", img.ID)
		}
		delete(liveWant, img.ID)
	}
	if len(liveWant) > 0 {
		low, first := uint64(0), true
		for id := range liveWant {
			if first || id < low {
				low, first = id, false
			}
		}
		return failf(o.seed, step, "image %d was evicted but is not the LRU victim", low)
	}
	return nil
}
