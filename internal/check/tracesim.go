package check

import (
	"context"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// TraceSimConfig parameterizes one deterministic trace-coverage run: a
// real HTTP server over a persistent store, driven serially by a
// traced client, with the span tracer's clock replaced by a logical
// counter and its ID generator by a seeded sequence. Two runs of the
// same config produce byte-identical trace-ring dumps — the replay
// contract ROADMAP's observability item requires.
type TraceSimConfig struct {
	Seed  int64
	Steps int // client requests through the HTTP path
	Alpha float64
	// CapacityFrac sets the head cache to this fraction of the
	// repository's total bytes so evictions occur (0 = unlimited,
	// which leaves the evict stage uncovered).
	CapacityFrac float64
	// ClusterJobs is the number of jobs dispatched through a
	// span-sharing cluster site after the HTTP phase, covering the
	// cluster_dispatch stage and the wire-format hop.
	ClusterJobs int
	// Dir roots the persistent store (required).
	Dir string
}

// TraceSimDefault is the canonical trace-sim configuration for a seed.
// Steps + ClusterJobs + the guaranteed-hit tail stays under the
// server's slowest-N ring capacity so every started trace is retained
// and the dump is a complete, replayable record of the run.
func TraceSimDefault(seed int64, dir string) TraceSimConfig {
	return TraceSimConfig{
		Seed:         seed,
		Steps:        48,
		Alpha:        0.6,
		CapacityFrac: 0.3,
		ClusterJobs:  8,
		Dir:          dir,
	}
}

// TraceSimReport summarizes one run. Every field is derived from the
// seeded schedule and the logical clock, so two runs of the same
// config must compare equal — including the embedded trace dump.
type TraceSimReport struct {
	Steps       int
	Acked       int
	Errors      int // deliberate bad requests (interesting-ring bait)
	ClusterJobs int
	// Started counts traces minted by the server tracer; Kept is the
	// tail-sampling ring's census at the end of the run.
	Started uint64
	Kept    int
	// Propagated counts kept traces whose RemoteParent is nonzero:
	// they continued an X-Landlord-Trace header from the harness hop.
	Propagated int
	// StagesCovered is the sorted set of stage names appearing in the
	// dump; MissingStages is CanonicalStages minus that set.
	StagesCovered []string
	MissingStages []string
	// Dump is the full trace ring in deterministic order.
	Dump []telemetry.Trace
}

// traceSimIDGen returns a seeded, never-zero trace ID sequence (a
// 64-bit LCG). Each tracer gets its own generator so the harness and
// server sequences stay independent of interleaving.
func traceSimIDGen(seed int64) func() uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
	return func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		if x == 0 {
			x = 1
		}
		return x
	}
}

// RunTraceSim executes the schedule and audits stage coverage: the
// retained dump must contain every canonical stage, and at least one
// trace must have continued a propagated header. It returns a nil
// Failure on a clean run.
func RunTraceSim(cfg TraceSimConfig) (TraceSimReport, *Failure) {
	if cfg.Dir == "" {
		return TraceSimReport{}, failf(cfg.Seed, 0, "tracesim: Dir is required")
	}
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	var rep TraceSimReport

	store, err := persist.Open(cfg.Dir, persist.Options{
		SyncPolicy:   persist.FsyncAlways,
		SegmentBytes: 16 << 10,
	})
	if err != nil {
		return rep, failf(cfg.Seed, 0, "tracesim: opening store: %v", err)
	}
	defer store.Close()
	mcfg := core.Config{Alpha: cfg.Alpha, Capacity: simCapacity(repo, cfg.CapacityFrac)}
	srv, _, err := server.NewPersistent(repo, mcfg, store, 0)
	if err != nil {
		return rep, failf(cfg.Seed, 0, "tracesim: booting server: %v", err)
	}
	// Admission generous enough that nothing sheds (serial traffic),
	// but armed, so every trace carries an admission span.
	srv.SetAdmission(resilience.ShedderConfig{Rate: 1 << 20, Burst: 1 << 20})

	// The logical clock: every tracer timestamp is the next tick of a
	// shared counter. Requests are strictly serial, so the sequence of
	// clock calls — and therefore every span's start, end, and
	// duration — is a pure function of the schedule.
	var clk atomic.Int64
	tick := func() int64 { return clk.Add(1000) }
	srv.SpanTracer().SetClock(tick)
	srv.SpanTracer().SetIDGen(traceSimIDGen(cfg.Seed + 2))

	// The harness-side tracer mints the upstream hop: its ActiveTrace
	// rides the request context, the client serializes it into
	// X-Landlord-Trace, and the server's trace records the link as
	// RemoteParent. The harness traces themselves are discarded — the
	// server ring is the artifact under test.
	ht := telemetry.NewSpanTracer(telemetry.DiscardSink())
	ht.SetClock(tick)
	ht.SetIDGen(traceSimIDGen(cfg.Seed + 3))

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := server.NewClient(ts.URL, ts.Client())
	client.MaxRetries = 0

	// traced issues one request with a propagated harness trace and a
	// far-future deadline (so the deadline span records present=1; the
	// wall value never enters the trace).
	traced := func(keys []string) (server.RequestResponse, error) {
		at := ht.Start(0, 0)
		ctx := telemetry.ContextWithTrace(context.Background(), at)
		ctx, cancel := context.WithDeadline(ctx, time.Now().Add(time.Hour))
		res, err := client.RequestCtx(ctx, keys, false)
		cancel()
		if err != nil {
			at.Finish("error", err.Error(), 0)
			return res, err
		}
		at.Finish(res.Op, "", 0)
		return res, nil
	}

	for step := 0; step < cfg.Steps; step++ {
		keys := keysOf(repo, stream.Next())
		rep.Steps++
		if _, err := traced(keys); err != nil {
			return rep, failf(cfg.Seed, step, "tracesim: request failed: %v", err)
		}
		rep.Acked++
	}

	// Guaranteed hit tail: the same spec twice, back to back. The
	// first lands it in the cache (or touches it); the second is served
	// from the concurrent manager's read-locked fast path, covering
	// lock_wait_read + hit even if every streamed repeat was evicted.
	tail := keysOf(repo, stream.Next())
	for i := 0; i < 2; i++ {
		if _, err := traced(tail); err != nil {
			return rep, failf(cfg.Seed, cfg.Steps, "tracesim: hit tail failed: %v", err)
		}
		rep.Steps++
		rep.Acked++
	}

	// One deliberate unknown-package request: the 400 finishes its
	// trace with outcome "error", exercising the interesting-ring
	// retention class.
	if _, err := traced([]string{"tracesim-no-such-package"}); err == nil {
		return rep, failf(cfg.Seed, cfg.Steps, "tracesim: bad request unexpectedly succeeded")
	}
	rep.Errors++

	// Cluster hop: a site sharing the server's tracer, fed jobs whose
	// wire header continues a harness trace — the in-process shape of
	// the networked dispatch hop. Covers cluster_dispatch.
	if cfg.ClusterJobs > 0 {
		site, err := cluster.NewSite(repo, cluster.SiteConfig{
			Name:    "tracesim",
			Core:    core.Config{Alpha: cfg.Alpha},
			Workers: 2,
		})
		if err != nil {
			return rep, failf(cfg.Seed, cfg.Steps, "tracesim: building site: %v", err)
		}
		site.SetSpanTracer(srv.SpanTracer())
		for i := 0; i < cfg.ClusterJobs; i++ {
			hat := ht.Start(0, 0)
			wire := telemetry.FormatTraceHeader(hat.TraceID(), hat.Root())
			_, err := site.SubmitTrace(wire, stream.Next())
			hat.Finish("dispatch", "", 0)
			if err != nil {
				return rep, failf(cfg.Seed, cfg.Steps, "tracesim: cluster job %d: %v", i, err)
			}
			rep.ClusterJobs++
		}
	}

	rep.Started = srv.SpanTracer().Started()
	rep.Dump = srv.TraceRing().Dump(0)
	rep.Kept = len(rep.Dump)

	seen := make(map[string]bool)
	for i := range rep.Dump {
		if rep.Dump[i].RemoteParent != 0 {
			rep.Propagated++
		}
		for _, sp := range rep.Dump[i].Spans {
			seen[sp.Stage] = true
		}
	}
	for stage := range seen {
		rep.StagesCovered = append(rep.StagesCovered, stage)
	}
	sort.Strings(rep.StagesCovered)
	for _, stage := range telemetry.CanonicalStages() {
		if !seen[stage] {
			rep.MissingStages = append(rep.MissingStages, stage)
		}
	}
	if len(rep.MissingStages) > 0 {
		return rep, failf(cfg.Seed, cfg.Steps,
			"tracesim: dump missing stages %v (covered %v)", rep.MissingStages, rep.StagesCovered)
	}
	if rep.Propagated == 0 {
		return rep, failf(cfg.Seed, cfg.Steps, "tracesim: no kept trace continued a propagated header")
	}
	return rep, nil
}
