package check

import (
	"flag"
	"reflect"
	"testing"
)

// seedFlag reproduces a reported failure: every Failure's Error()
// names the exact command. The default matches the CI run.
var seedFlag = flag.Int64("seed", 1, "simulation seed (failures print the seed that reproduces them)")

// shardsFlag sets the shard count for the sharded soak. The nightly
// workflow randomizes it and echoes the chosen value in the repro
// command; the default matches the per-commit CI run.
var shardsFlag = flag.Int("shards", 4, "shard count for TestShardSoak (nightly randomizes this)")

// TestCheckReplay is the reproduction entry point: a failure anywhere
// in the harness prints `go test ./internal/check -run TestCheckReplay
// -seed=N`, and this test re-runs the full schedule — in-memory suite,
// the sharded-cache suite, the persistent disk-fault chaos run, and
// the network-fault chaos run — under that seed.
func TestCheckReplay(t *testing.T) {
	seed := *seedFlag
	for _, cfg := range Suite(seed) {
		if _, f := RunSim(cfg); f != nil {
			t.Fatal(f)
		}
	}
	for _, cfg := range ShardSuite(seed) {
		if _, f := RunShardSim(cfg); f != nil {
			t.Fatal(f)
		}
	}
	if _, f := RunSim(ChaosConfig(seed, t.TempDir())); f != nil {
		t.Fatal(f)
	}
	if _, f := RunNetChaos(NetChaosDefault(seed, t.TempDir())); f != nil {
		t.Fatal(f)
	}
	if _, f := RunFleetChaos(FleetChaosDefault(seed)); f != nil {
		t.Fatal(f)
	}
}

// TestNetChaos is the end-to-end network chaos run on its own: a real
// HTTP server over a persistent store, a client injecting seeded
// resets/truncations/latency/blackholes, disk faults and crash cycles
// underneath. The audit inside RunNetChaos proves every acked request
// is served as a hit after every recovery, sheds never mutate, and a
// degraded server refuses non-durable acks.
func TestNetChaos(t *testing.T) {
	rep, f := RunNetChaos(NetChaosDefault(*seedFlag, t.TempDir()))
	if f != nil {
		t.Fatal(f)
	}
	if rep.Acked == 0 {
		t.Fatal("netchaos run acked nothing; the harness is not exercising the serving path")
	}
	if rep.Crashes == 0 {
		t.Fatal("netchaos run never crashed; the audit never ran")
	}
	t.Logf("netchaos: %d steps, %d acked, %d sheds, %d degraded, %d circuit-fast, %d net errors (%d injected), %d disk faults, %d crashes, %d heals",
		rep.Steps, rep.Acked, rep.Sheds, rep.Degraded, rep.CircuitFast,
		rep.NetErrors, rep.NetInjected, rep.DiskInjected, rep.Crashes, rep.Heals)
}

// TestSimDeterministic pins the bit-for-bit reproducibility contract:
// two runs of the same config — including injected faults, crashes and
// recoveries — produce identical reports, down to the state hash.
func TestSimDeterministic(t *testing.T) {
	for _, cfg := range []SimConfig{
		{Seed: *seedFlag, Steps: 400, Alpha: 0.6, CapacityFrac: 0.3, PruneEvery: 90},
		{Seed: *seedFlag, Steps: 400, Alpha: 0.6, CapacityFrac: 0.3,
			CheckpointEvery: 50, PruneEvery: 90, CrashEvery: 100, Faults: true},
	} {
		run := func(c SimConfig) SimReport {
			if c.CrashEvery > 0 {
				c.Dir = t.TempDir() // fresh dir per run: state must come from the seed, not the disk
			}
			rep, f := RunSim(c)
			if f != nil {
				t.Fatal(f)
			}
			return rep
		}
		first, second := run(cfg), run(cfg)
		if !reflect.DeepEqual(first, second) {
			t.Errorf("two runs of seed %d diverge:\n first: %+v\nsecond: %+v", cfg.Seed, first, second)
		}
	}
}

// TestShardSimDeterministic pins the sharded driver the same way: two
// runs of each canonical sharded config must report identically, and
// the configs must actually exercise the balancer (a suite that never
// rebalances would let the balance mutant survive).
func TestShardSimDeterministic(t *testing.T) {
	for _, cfg := range ShardSuite(*seedFlag) {
		first, f := RunShardSim(cfg)
		if f != nil {
			t.Fatal(f)
		}
		second, f := RunShardSim(cfg)
		if f != nil {
			t.Fatal(f)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("two sharded runs of seed %d shards %d diverge:\n first: %+v\nsecond: %+v",
				cfg.Seed, cfg.Shards, first, second)
		}
		if cfg.RebalanceEvery > 0 && first.Rebalances == 0 {
			t.Errorf("shards=%d config never rebalanced; the balancer audit is dead weight", cfg.Shards)
		}
	}
}

// TestStreamDeterministic pins the generators: the same seed yields
// the same repository and the same request sequence.
func TestStreamDeterministic(t *testing.T) {
	repo1, repo2 := SmallRepo(*seedFlag), SmallRepo(*seedFlag)
	if repo1.Len() != repo2.Len() {
		t.Fatalf("repos differ: %d vs %d packages", repo1.Len(), repo2.Len())
	}
	s1, s2 := NewStream(repo1, *seedFlag), NewStream(repo2, *seedFlag)
	for i := 0; i < 2000; i++ {
		a, b := s1.Next(), s2.Next()
		if !a.Equal(b) {
			t.Fatalf("streams diverge at request %d", i)
		}
	}
}

// TestStreamMixesSchemes checks the generator produces all three
// request classes — without them the harness would silently stop
// exercising the hit path or the adversarial uniform scheme.
func TestStreamMixesSchemes(t *testing.T) {
	repo := SmallRepo(*seedFlag)
	s := NewStream(repo, *seedFlag)
	seen := make(map[string]int)
	for i := 0; i < 1000; i++ {
		seen[s.Next().String()]++
	}
	repeats := 0
	for _, n := range seen {
		if n > 1 {
			repeats += n - 1
		}
	}
	if repeats < 100 {
		t.Errorf("only %d repeated requests in 1000; the repeat scheme is not driving the hit path", repeats)
	}
	if len(seen) < 100 {
		t.Errorf("only %d distinct specs in 1000 requests", len(seen))
	}
}

// Metamorphic relations (see metamorphic.go for the arguments why
// each holds only under unlimited capacity).

func TestAlphaMonotonicity(t *testing.T) {
	if f := AlphaMonotonicity(*seedFlag, 500, []float64{0, 0.2, 0.4, 0.6, 0.8, 1}); f != nil {
		t.Fatal(f)
	}
}

func TestHitPermutationInvariance(t *testing.T) {
	if f := HitPermutationInvariance(*seedFlag, 500, 0.6); f != nil {
		t.Fatal(f)
	}
}

func TestDegenerateLRU(t *testing.T) {
	if f := DegenerateLRU(*seedFlag, 500, 0.3); f != nil {
		t.Fatal(f)
	}
}

func TestDegenerateGlob(t *testing.T) {
	if f := DegenerateGlob(*seedFlag, 500); f != nil {
		t.Fatal(f)
	}
}

// TestCheckSoak is the acceptance soak: 50k requests across 8
// goroutines against a persistent store with injected faults, run
// under -race in CI. -short scales it down for the inner loop.
func TestCheckSoak(t *testing.T) {
	cfg := SoakConfig{
		Seed: *seedFlag, Requests: 50000, Workers: 8,
		Alpha: 0.6, CapacityFrac: 0.3, Conflicts: false,
		Dir: t.TempDir(), Faults: true, MaintainEvery: 200,
	}
	if testing.Short() {
		cfg.Requests = 8000
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d requests, %d hits, %d merges, %d images, %d faults injected",
		rep.Stats.Requests, rep.Stats.Hits, rep.Stats.Merges, rep.Images, rep.Injected)
}

// TestShardSoak soaks the sharded cache: 8 goroutines against a
// ShardedManager over a persistent store, with worker 0 interleaving
// checkpoints, audited rebalances, and prune passes. The shard count
// comes from -shards so the nightly can randomize it; a failure names
// the exact count to rerun with.
func TestShardSoak(t *testing.T) {
	shards := *shardsFlag
	cfg := SoakConfig{
		Seed: *seedFlag + 13, Requests: 20000, Workers: 8,
		Alpha: 0.6, CapacityFrac: 0.3, Shards: shards,
		Dir: t.TempDir(), Faults: true, MaintainEvery: 250,
	}
	if testing.Short() {
		cfg.Requests = 4000
	}
	rep, err := RunSoak(cfg)
	if err != nil {
		t.Fatalf("%v\nreproduce: go test ./internal/check -run TestShardSoak -seed=%d -shards=%d", err, *seedFlag, shards)
	}
	t.Logf("shard soak (shards=%d): %d requests, %d hits, %d merges, %d images, %d faults injected",
		shards, rep.Stats.Requests, rep.Stats.Hits, rep.Stats.Merges, rep.Images, rep.Injected)
}

// TestSoakMemoryOnly soaks the pure in-memory concurrent path (no
// store in the hook chain), where read-path hits take the shared lock.
func TestSoakMemoryOnly(t *testing.T) {
	cfg := SoakConfig{
		Seed: *seedFlag + 7, Requests: 20000, Workers: 8,
		Alpha: 0.8, CapacityFrac: 0.5, MaintainEvery: 300,
	}
	if testing.Short() {
		cfg.Requests = 4000
	}
	if _, err := RunSoak(cfg); err != nil {
		t.Fatal(err)
	}
}
