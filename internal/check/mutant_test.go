//go:build !landlord_mutants

package check

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// mutants lists the seeded bugs compiled in by -tags landlord_mutants
// (internal/core/mutant_on.go and internal/fleet/mutant_on.go); each
// breaks exactly one clause of Algorithm 1 or one rule of the HA
// protocol.
var mutants = []string{
	"superset", "threshold", "conflict", "lru", "capacity", "touch", "route", "balance",
	"intern", "popcount", "lshmiss",
	"staleepoch",
}

// buildMutantBinary compiles this package's tests with the mutant tag
// once; the per-mutant runs then just set LANDLORD_MUTANT.
func buildMutantBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	bin := filepath.Join(t.TempDir(), "mutant.test")
	cmd := exec.Command("go", "test", "-c", "-tags", "landlord_mutants", "-o", bin, "repro/internal/check")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building mutant test binary: %v\n%s", err, out)
	}
	return bin
}

func runMutant(t *testing.T, bin, mutant string, seed int64) string {
	t.Helper()
	cmd := exec.Command(bin, "-test.run", "^TestMutantSim$", "-test.count=1", fmt.Sprintf("-seed=%d", seed))
	cmd.Env = append(cmd.Environ(), "LANDLORD_MUTANT="+mutant)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mutant %q was NOT detected by the harness:\n%s", mutant, out)
	}
	return string(out)
}

// mutantFailureLine extracts the machine-readable failure the inner
// test prints on detection.
func mutantFailureLine(t *testing.T, mutant, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "MUTANT_FAILURE "+mutant+":") {
			return line
		}
	}
	t.Fatalf("mutant %q run passed but printed no MUTANT_FAILURE line:\n%s", mutant, out)
	return ""
}

// TestMutantsAreDetected is the harness's self-test: for each seeded
// bug, the simulation suite must report a violation within its 1000
// requests. A mutant that survives means a whole class of real bug
// would survive too.
func TestMutantsAreDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the package per mutant tag; skipped in -short")
	}
	bin := buildMutantBinary(t)
	for _, mutant := range mutants {
		mutant := mutant
		t.Run(mutant, func(t *testing.T) {
			out := runMutant(t, bin, mutant, *seedFlag)
			t.Log(mutantFailureLine(t, mutant, out))
		})
	}
}

// TestMutantFailureIsReproducible re-runs one known-bad mutant twice
// from the printed seed alone and requires the two diagnostics to be
// byte-identical — the contract that a reported seed is sufficient to
// reproduce a failure, with the same failing request index and the
// same message.
func TestMutantFailureIsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the package per mutant tag; skipped in -short")
	}
	bin := buildMutantBinary(t)
	const mutant = "conflict"
	first := mutantFailureLine(t, mutant, runMutant(t, bin, mutant, *seedFlag))
	second := mutantFailureLine(t, mutant, runMutant(t, bin, mutant, *seedFlag))
	if first != second {
		t.Fatalf("same seed, different diagnostics:\n first: %s\nsecond: %s", first, second)
	}
}
