package check

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFaultFSWriteFail(t *testing.T) {
	ffs := NewFaultFS(FaultPlan{FailWriteAt: 2})
	f, err := ffs.OpenFile(filepath.Join(t.TempDir(), "w"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: got %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("cccc")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	f.Close()
	if got := string(readAll(t, f.Name())); got != "aaaacccc" {
		t.Fatalf("file contents %q; the failed write must leave no bytes", got)
	}
	if n := ffs.Injected(); n != 1 {
		t.Fatalf("Injected() = %d, want 1", n)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	ffs := NewFaultFS(FaultPlan{ShortWriteAt: 1})
	f, err := ffs.OpenFile(filepath.Join(t.TempDir(), "s"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if n != 5 {
		t.Fatalf("short write reported %d bytes, want 5", n)
	}
	f.Close()
	if got := string(readAll(t, f.Name())); got != "01234" {
		t.Fatalf("file contents %q, want the torn half", got)
	}
}

func TestFaultFSSyncFail(t *testing.T) {
	ffs := NewFaultFS(FaultPlan{FailSyncAt: 2})
	f, err := ffs.OpenFile(filepath.Join(t.TempDir(), "y"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("data")) // op 1
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: got %v, want ErrInjected", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("next sync must succeed: %v", err)
	}
}

// TestFaultFSCrash pins the two crash models: kill keeps every written
// byte; power loss keeps synced bytes plus a bounded torn tail — and
// either way the dead process's filesystem refuses further work.
func TestFaultFSCrash(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode CrashMode
		torn int64
		want int
	}{
		{"kill-keeps-all", CrashKill, 0, 16},
		{"power-synced-only", CrashPower, 0, 8},
		{"power-torn-tail", CrashPower, 3, 11},
		{"power-torn-capped", CrashPower, 99, 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ffs := NewFaultFS(FaultPlan{})
			path := filepath.Join(t.TempDir(), "c")
			f, err := ffs.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("synced__"))
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("unsynced"))
			if err := ffs.Crash(tc.mode, tc.torn); err != nil {
				t.Fatal(err)
			}
			if got := len(readAll(t, path)); got != tc.want {
				t.Fatalf("%d bytes survived the crash, want %d", got, tc.want)
			}
			if _, err := ffs.Open(path); err == nil {
				t.Fatal("post-crash operation succeeded; the dead filesystem must refuse work")
			}
			if _, err := f.Write([]byte("x")); err == nil {
				t.Fatal("write on a pre-crash handle succeeded after the crash")
			}
		})
	}
}

func TestEventuallyPolls(t *testing.T) {
	n := 0
	if !Poll(testTimeout, func() bool { n++; return n >= 3 }) {
		t.Fatal("Poll gave up before the condition held")
	}
	if Poll(1, func() bool { return false }) {
		t.Fatal("Poll reported success for a condition that never holds")
	}
}

const testTimeout = 2e9 // 2s in nanoseconds, avoids importing time
