package check

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/core"
)

// stateJSON renders a manager state canonically: ManagerState keeps
// images in last-use order (each request stamps a unique clock), so
// equal caches marshal to identical bytes.
func stateJSON(st core.ManagerState) []byte {
	b, err := json.Marshal(st)
	if err != nil {
		panic(fmt.Sprintf("check: marshaling manager state: %v", err))
	}
	return b
}

// StateHash fingerprints a manager state. Two runs of the same seed
// must produce the same hash — the determinism tests compare exactly
// this.
func StateHash(st core.ManagerState) string {
	sum := sha256.Sum256(stateJSON(st))
	return hex.EncodeToString(sum[:])
}

// statesEqual compares two manager states byte for byte, returning a
// bounded diff on mismatch.
func statesEqual(want, got core.ManagerState) error {
	wb, gb := stateJSON(want), stateJSON(got)
	if bytes.Equal(wb, gb) {
		return nil
	}
	if len(want.Images) != len(got.Images) {
		return fmt.Errorf("%d images, want %d", len(got.Images), len(want.Images))
	}
	for i := range want.Images {
		if fmt.Sprintf("%+v", want.Images[i]) != fmt.Sprintf("%+v", got.Images[i]) {
			return fmt.Errorf("image[%d] = %+v, want %+v", i, got.Images[i], want.Images[i])
		}
	}
	return fmt.Errorf("counters differ: got clock=%d next_id=%d stats=%+v, want clock=%d next_id=%d stats=%+v",
		got.Clock, got.NextID, got.Stats, want.Clock, want.NextID, want.Stats)
}
