package check

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"

	"repro/internal/persist"
)

// ErrInjected marks every error FaultFS fabricates, so tests can
// distinguish injected faults from real ones.
var ErrInjected = errors.New("check: injected fault")

// errCrashed is returned for every operation after Crash: the old
// process is dead, its handles are gone.
var errCrashed = errors.New("check: filesystem crashed (stale pre-crash handle)")

// FaultPlan schedules injected faults by operation count: the first
// write or sync on a tracked (write-opened) file at or after the Nth
// operation misbehaves, once. Zero disables a fault. Operation counts
// — not wall-clock — make the plan deterministic under a seeded
// schedule, and the at-or-after trigger makes it insensitive to the
// exact write/sync interleaving (op N itself may be either kind).
type FaultPlan struct {
	// FailWriteAt makes the first write at or after that operation fail
	// outright (nothing written).
	FailWriteAt int64
	// ShortWriteAt makes the first write at or after that operation
	// tear: half the bytes reach the file, then an error — the
	// torn-record crash signature.
	ShortWriteAt int64
	// FailSyncAt makes the first fsync at or after that operation fail
	// (data stays unsynced).
	FailSyncAt int64
}

// CrashMode selects what survives a Crash.
type CrashMode int

const (
	// CrashKill models kill -9: the process dies but the kernel keeps
	// every byte it accepted — all written data survives.
	CrashKill CrashMode = iota
	// CrashPower models power loss: only synced bytes are guaranteed;
	// each file is truncated back to its synced offset plus a torn
	// prefix of whatever was in flight.
	CrashPower
)

// FaultFS implements persist.FS over the real filesystem with seeded
// fault injection and crash simulation. One FaultFS models one process
// life: after Crash every operation fails, and the "restarted process"
// opens a fresh FaultFS over the same directory.
type FaultFS struct {
	inner persist.FS

	mu       sync.Mutex
	plan     FaultPlan
	ops      int64
	injected int
	crashed  bool
	files    map[*faultFile]struct{} // live write handles
}

type faultFile struct {
	ffs     *FaultFS
	f       persist.File
	written int64 // bytes this handle has written
	synced  int64 // portion of written known to be on stable storage
	closed  bool
}

// NewFaultFS wraps the real filesystem with the given plan.
func NewFaultFS(plan FaultPlan) *FaultFS {
	return &FaultFS{inner: persist.OSFS{}, plan: plan, files: make(map[*faultFile]struct{})}
}

// Injected returns how many faults have fired so far.
func (ffs *FaultFS) Injected() int {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	return ffs.injected
}

func (ffs *FaultFS) dead() error {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	if ffs.crashed {
		return errCrashed
	}
	return nil
}

// MkdirAll implements persist.FS.
func (ffs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := ffs.dead(); err != nil {
		return err
	}
	return ffs.inner.MkdirAll(path, perm)
}

// OpenFile implements persist.FS; write handles are tracked for fault
// injection and crash truncation.
func (ffs *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	if err := ffs.dead(); err != nil {
		return nil, err
	}
	f, err := ffs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return ffs.track(f), nil
}

// Open implements persist.FS. Read handles pass through untracked —
// reads neither count as fault ops nor participate in crashes (the
// recovering process does the reading).
func (ffs *FaultFS) Open(name string) (persist.File, error) {
	if err := ffs.dead(); err != nil {
		return nil, err
	}
	return ffs.inner.Open(name)
}

// ReadDir implements persist.FS.
func (ffs *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if err := ffs.dead(); err != nil {
		return nil, err
	}
	return ffs.inner.ReadDir(name)
}

// Remove implements persist.FS.
func (ffs *FaultFS) Remove(name string) error {
	if err := ffs.dead(); err != nil {
		return err
	}
	return ffs.inner.Remove(name)
}

// Rename implements persist.FS.
func (ffs *FaultFS) Rename(oldpath, newpath string) error {
	if err := ffs.dead(); err != nil {
		return err
	}
	return ffs.inner.Rename(oldpath, newpath)
}

// Stat implements persist.FS.
func (ffs *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if err := ffs.dead(); err != nil {
		return nil, err
	}
	return ffs.inner.Stat(name)
}

// CreateTemp implements persist.FS; temp files are tracked like any
// other write handle.
func (ffs *FaultFS) CreateTemp(dir, pattern string) (persist.File, error) {
	if err := ffs.dead(); err != nil {
		return nil, err
	}
	f, err := ffs.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return ffs.track(f), nil
}

func (ffs *FaultFS) track(f persist.File) *faultFile {
	ff := &faultFile{ffs: ffs, f: f}
	ffs.mu.Lock()
	ffs.files[ff] = struct{}{}
	ffs.mu.Unlock()
	return ff
}

// Crash simulates process death. Every live write handle is closed
// and, under CrashPower, its file truncated to the synced offset plus
// up to torn bytes of the unsynced tail (torn models a partially
// persisted in-flight record; pass the schedule's seeded choice).
// All subsequent operations on this FaultFS fail: the next life must
// open a fresh one.
func (ffs *FaultFS) Crash(mode CrashMode, torn int64) error {
	ffs.mu.Lock()
	defer ffs.mu.Unlock()
	if ffs.crashed {
		return errCrashed
	}
	ffs.crashed = true
	for ff := range ffs.files {
		if ff.closed {
			continue
		}
		name := ff.f.Name()
		ff.f.Close()
		ff.closed = true
		if mode != CrashPower {
			continue
		}
		keep := ff.synced
		if extra := ff.written - ff.synced; extra > 0 && torn > 0 {
			if torn < extra {
				keep += torn
			} else {
				keep += extra
			}
		}
		// A handle opened with O_EXCL wrote from offset 0, so the
		// handle's byte counts are file offsets.
		if err := os.Truncate(name, keep); err != nil {
			return fmt.Errorf("check: truncating %s at crash: %w", name, err)
		}
	}
	ffs.files = make(map[*faultFile]struct{})
	return nil
}

// Write implements persist.File with fault injection.
func (ff *faultFile) Write(p []byte) (int, error) {
	ffs := ff.ffs
	ffs.mu.Lock()
	if ffs.crashed || ff.closed {
		ffs.mu.Unlock()
		return 0, errCrashed
	}
	ffs.ops++
	op := ffs.ops
	var mode int
	switch {
	case ffs.plan.FailWriteAt > 0 && op >= ffs.plan.FailWriteAt:
		mode, ffs.injected = 1, ffs.injected+1
		ffs.plan.FailWriteAt = 0
	case ffs.plan.ShortWriteAt > 0 && op >= ffs.plan.ShortWriteAt:
		mode, ffs.injected = 2, ffs.injected+1
		ffs.plan.ShortWriteAt = 0
	}
	ffs.mu.Unlock()

	switch mode {
	case 1:
		return 0, fmt.Errorf("%w: write %d failed", ErrInjected, op)
	case 2:
		n, err := ff.f.Write(p[:len(p)/2])
		ff.addWritten(int64(n))
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("%w: write %d torn after %d of %d bytes", ErrInjected, op, n, len(p))
	}
	n, err := ff.f.Write(p)
	ff.addWritten(int64(n))
	return n, err
}

func (ff *faultFile) addWritten(n int64) {
	ff.ffs.mu.Lock()
	ff.written += n
	ff.ffs.mu.Unlock()
}

// Read implements persist.File.
func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

// Sync implements persist.File with fault injection; a successful sync
// advances the handle's durable offset.
func (ff *faultFile) Sync() error {
	ffs := ff.ffs
	ffs.mu.Lock()
	if ffs.crashed || ff.closed {
		ffs.mu.Unlock()
		return errCrashed
	}
	ffs.ops++
	op := ffs.ops
	inject := ffs.plan.FailSyncAt > 0 && op >= ffs.plan.FailSyncAt
	if inject {
		ffs.injected++
		ffs.plan.FailSyncAt = 0
	}
	ffs.mu.Unlock()
	if inject {
		return fmt.Errorf("%w: sync %d failed", ErrInjected, op)
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ffs.mu.Lock()
	ff.synced = ff.written
	ffs.mu.Unlock()
	return nil
}

// Close implements persist.File.
func (ff *faultFile) Close() error {
	ffs := ff.ffs
	ffs.mu.Lock()
	if ff.closed {
		ffs.mu.Unlock()
		return nil
	}
	ff.closed = true
	delete(ffs.files, ff)
	ffs.mu.Unlock()
	return ff.f.Close()
}

// Name implements persist.File.
func (ff *faultFile) Name() string { return ff.f.Name() }

var _ persist.FS = (*FaultFS)(nil)
