package check

import (
	"encoding/json"
	"testing"

	"repro/internal/telemetry"
)

// TestTraceSimCoverage is the acceptance check for the span-tracing
// stack: one seeded run against a real persistent HTTP server must
// retain a trace dump whose span trees cover every canonical stage,
// and at least one kept trace must have continued a propagated
// X-Landlord-Trace header.
func TestTraceSimCoverage(t *testing.T) {
	rep, f := RunTraceSim(TraceSimDefault(*seedFlag, t.TempDir()))
	if f != nil {
		t.Fatalf("%v", f)
	}
	if rep.Kept == 0 || len(rep.Dump) != rep.Kept {
		t.Fatalf("inconsistent dump: kept=%d len=%d", rep.Kept, len(rep.Dump))
	}
	want := telemetry.CanonicalStages()
	if len(rep.StagesCovered) < len(want) {
		t.Fatalf("covered %d stages, want %d: %v", len(rep.StagesCovered), len(want), rep.StagesCovered)
	}
	if rep.Propagated == 0 {
		t.Fatalf("no kept trace carried a remote parent")
	}
	// Every kept trace has a root request span and a consistent tree:
	// parents precede children and durations are non-negative.
	for _, tr := range rep.Dump {
		if len(tr.Spans) == 0 || tr.Spans[0].Stage != telemetry.StageRequest {
			t.Fatalf("trace %s: missing root request span", tr.ID)
		}
		for i, sp := range tr.Spans {
			if i == 0 {
				continue
			}
			if sp.Parent < 0 || int(sp.Parent) >= i {
				t.Fatalf("trace %s span %d (%s): parent %d out of order", tr.ID, i, sp.Stage, sp.Parent)
			}
			if sp.End < sp.Start {
				t.Fatalf("trace %s span %d (%s): negative duration", tr.ID, i, sp.Stage)
			}
		}
	}
}

// TestTraceSimDeterministic proves the replay contract: two runs of
// the same seed produce byte-identical reports, including the full
// trace-ring dump — every span boundary, attribute, and trace ID.
func TestTraceSimDeterministic(t *testing.T) {
	run := func() []byte {
		rep, f := RunTraceSim(TraceSimDefault(7, t.TempDir()))
		if f != nil {
			t.Fatalf("%v", f)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same-seed trace dumps differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
