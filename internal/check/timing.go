package check

import (
	"testing"
	"time"
)

// Eventually polls cond until it returns true, failing t if timeout
// elapses first. It replaces fixed time.Sleep waits in tests that
// observe asynchronous progress (daemon startup, background load):
// polling converges as fast as the condition allows on fast machines
// and keeps slow CI machines from flaking, where a tuned sleep does
// neither.
//
// The poll interval starts at 1ms and backs off to 50ms so a condition
// that is already true costs almost nothing.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if !Poll(timeout, cond) {
		t.Fatalf("condition not met within "+timeout.String()+": "+format, args...)
	}
}

// Poll is Eventually without the test dependency: it reports whether
// cond became true within timeout.
func Poll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	interval := time.Millisecond
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(interval)
		if interval < 50*time.Millisecond {
			interval *= 2
		}
	}
}
