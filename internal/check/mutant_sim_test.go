//go:build landlord_mutants

package check

import (
	"fmt"
	"os"
	"testing"
)

// TestMutantSim runs under -tags landlord_mutants with LANDLORD_MUTANT
// naming one seeded bug in internal/core (see core/mutant_on.go). It
// asserts the harness DETECTS the mutant: the staged suites —
// differential (900 requests), unsharded simulation, sharded
// simulation — must report a Failure before they run dry. It runs the
// stages twice and requires the two failures to be byte-identical —
// the reproducibility the printed seed promises.
//
// TestMutantsAreDetected drives this from a normal build; the
// MUTANT_FAILURE lines below are its machine-readable channel.
func TestMutantSim(t *testing.T) {
	mutant := os.Getenv("LANDLORD_MUTANT")
	if mutant == "" {
		t.Skip("LANDLORD_MUTANT not set")
	}

	// haStage is the fleet control-plane stage: a short HA chaos run
	// whose first scheduled fault is a lease-holder isolation — the
	// exact scenario the staleepoch mutant breaks. A stale-accepting
	// epoch gate lets the isolated old primary keep acking alongside
	// the newly promoted one, and the round's dual-primary audit fires
	// at the isolation step itself.
	haStage := func() (string, int) {
		cfg := HAChaosDefault(*seedFlag)
		cfg.Steps, cfg.Kills, cfg.Isolations = 120, 1, 1
		rep, f := RunHAChaos(cfg)
		if f != nil {
			return f.Error(), rep.Steps
		}
		return "", rep.Steps
	}

	detect := func() (string, int) {
		requests := 0
		// The fleet mutant (staleepoch) is invisible to every
		// single-process stage — only the HA harness spawns masters —
		// so it runs the HA stage first, keeping detection inside the
		// 1000-request budget. Core mutants run it last (they fall to a
		// cheaper stage long before).
		if mutant == "staleepoch" {
			if msg, n := haStage(); msg != "" {
				return msg, requests + n
			} else {
				requests += n
			}
		}
		// The differential suite runs first: the fast-path mutants
		// (intern, popcount, lshmiss) corrupt only the interned
		// representation, which no single-pipeline oracle can see — they
		// fall to the reference-vs-fast comparison, within its 900
		// requests. The original six mutants fall to the unsharded
		// suite; the sharding mutants (route, balance) are invisible to
		// both earlier stages — no unsharded run consults the router or
		// the balancer — and fall to the sharded suite's route audit and
		// budgets-sum audit.
		for _, cfg := range DifferentialSuite(*seedFlag) {
			rep, f := RunDifferential(cfg)
			requests += rep.Steps
			if f != nil {
				return f.Error(), requests
			}
		}
		for _, cfg := range Suite(*seedFlag) {
			rep, f := RunSim(cfg)
			requests += rep.Steps
			if f != nil {
				return f.Error(), requests
			}
		}
		for _, cfg := range ShardSuite(*seedFlag) {
			rep, f := RunShardSim(cfg)
			requests += rep.Steps
			if f != nil {
				return f.Error(), requests
			}
		}
		if mutant != "staleepoch" {
			if msg, n := haStage(); msg != "" {
				return msg, requests + n
			} else {
				requests += n
			}
		}
		return "", requests
	}

	first, n1 := detect()
	if first == "" {
		t.Fatalf("mutant %q survived %d requests undetected", mutant, n1)
	}
	second, _ := detect()
	if first != second {
		t.Fatalf("mutant %q failure is not reproducible under seed %d:\n first: %s\nsecond: %s",
			mutant, *seedFlag, first, second)
	}
	t.Logf("mutant %q detected within %d requests", mutant, n1)
	fmt.Printf("MUTANT_FAILURE %s: %s\n", mutant, first)
}
