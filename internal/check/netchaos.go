package check

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/spec"
)

// NetChaosConfig parameterizes one network-fault chaos run: a real
// HTTP server over a persistent store, driven through a client whose
// transport injects seeded connection resets, truncated bodies,
// latency, and blackholes — on top of the usual disk faults and
// crash/recovery cycles.
//
// Unlike RunSim, the report is not bit-for-bit reproducible (retry
// counts depend on real scheduling); the contract is the invariants:
// every request the client saw acknowledged is served as a hit after
// every crash and recovery, a shed (429) never moves the request
// counter, and a degraded server refuses what it cannot make durable.
// The fault schedule itself is seeded, so a failure's seed replays the
// same schedule shape.
type NetChaosConfig struct {
	Seed  int64
	Steps int // client requests to issue
	Alpha float64
	// Dir roots the persistent store (required).
	Dir string
	// Net is the transport fault plan; zero probabilities mean a clean
	// network.
	Net resilience.ChaosPlan
	// DiskFaults arms a seeded FaultPlan each process life.
	DiskFaults bool
	// CrashEvery is the mean gap, in requests, between crash/recovery
	// cycles (0 disables; a final crash always runs).
	CrashEvery int
}

// NetChaosReport summarizes one run's observed traffic.
type NetChaosReport struct {
	Steps        int
	Acked        int   // client-visible 200s on /v1/request
	Sheds        int   // 429s observed
	Degraded     int   // 503s observed while the store was failing
	CircuitFast  int   // calls failed fast by the client breaker
	NetErrors    int   // calls lost to injected transport faults
	NetInjected  int64 // faults the transport injected
	DiskInjected int   // faults the filesystem injected
	Crashes      int
	Heals        int
}

// NetChaosDefault is the canonical network-chaos configuration for a
// seed: moderate fault rates on every class, disk faults armed, a
// crash roughly every 60 requests.
func NetChaosDefault(seed int64, dir string) NetChaosConfig {
	return NetChaosConfig{
		Seed: seed, Steps: 240, Alpha: 0.6, Dir: dir,
		Net: resilience.ChaosPlan{
			Seed:         seed + 3,
			ResetBeforeP: 0.05,
			ResetAfterP:  0.03,
			BlackholeP:   0.01,
			TruncateP:    0.03,
			LatencyP:     0.15,
			MaxLatency:   2 * time.Millisecond,
		},
		DiskFaults: true,
		CrashEvery: 60,
	}
}

// ackedReq is one client-acknowledged request: the durability contract
// says its spec must be served as a hit by every future process life.
type ackedReq struct {
	keys []string
	step int
}

// RunNetChaos executes the network chaos schedule and audits the
// acked-request invariant after every crash. It returns a nil Failure
// on a clean run.
func RunNetChaos(cfg NetChaosConfig) (NetChaosReport, *Failure) {
	if cfg.Dir == "" {
		return NetChaosReport{}, failf(cfg.Seed, 0, "netchaos: Dir is required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	mcfg := core.Config{Alpha: cfg.Alpha} // unlimited capacity: acked specs can never be evicted

	var rep NetChaosReport
	var (
		ffs    *FaultFS
		store  *persist.Store
		srv    *server.Server
		ts     *httptest.Server
		client *server.Client // through the chaos transport
		audit  *server.Client // clean path for invariant audits
	)
	acked := make(map[string]ackedReq) // keyed by joined package keys

	// dump attaches the server's trace ring to a failure so CI can
	// upload where-the-time-went context alongside the repro seed.
	dump := func(f *Failure) *Failure {
		if f != nil && srv != nil && srv.TraceRing() != nil {
			f.TraceDump = srv.TraceRing().Dump(0)
		}
		return f
	}

	chaos := resilience.NewChaosTransport(http.DefaultTransport, cfg.Net)

	// bootLife opens the store and recovers the server under one fault
	// plan. An error here can be an injected boot-time fault, which the
	// caller retries with a clean plan.
	bootLife := func(plan FaultPlan) error {
		ffs = NewFaultFS(plan)
		var err error
		store, err = persist.Open(cfg.Dir, persist.Options{
			FS:           ffs,
			SyncPolicy:   persist.FsyncAlways,
			SegmentBytes: 16 << 10,
		})
		if err != nil {
			return err
		}
		srv, _, err = server.NewPersistent(repo, mcfg, store, 25)
		return err
	}

	boot := func(step int) *Failure {
		var plan FaultPlan
		if cfg.DiskFaults {
			plan = simPlan(rng)
		}
		if err := bootLife(plan); err != nil {
			// The armed fault fired during boot (open, replay, or the
			// post-replay checkpoint). A fault-free reboot must succeed:
			// the WAL on disk is still a recoverable history.
			rep.DiskInjected += ffs.Injected()
			if err := bootLife(FaultPlan{}); err != nil {
				return failf(cfg.Seed, step, "netchaos: clean recovery failed: %v", err)
			}
		}
		// Admission control generous enough that steady traffic flows,
		// tight enough that bursts (the audit loop, retry storms) shed.
		srv.SetAdmission(resilience.ShedderConfig{Rate: 2000, Burst: 64})
		ts = httptest.NewServer(srv.Handler())

		client = server.NewClient(ts.URL, &http.Client{Transport: chaos})
		client.MaxRetries = 3
		client.RetryBase = time.Millisecond
		client.RetryCap = 4 * time.Millisecond
		client.SetJitter(rng.Float64)
		client.SetBreaker(resilience.NewBreaker(resilience.BreakerConfig{
			Failures: 5, OpenFor: 5 * time.Millisecond,
		}))
		client.SetRetryBudget(resilience.NewRetryBudget(0.5, 20))

		audit = server.NewClient(ts.URL, ts.Client())
		audit.RetryBase = time.Millisecond
		audit.RetryCap = 4 * time.Millisecond
		return nil
	}

	// auditAcked re-requests every acknowledged spec through the clean
	// client: each must be served as a hit — the image it was acked
	// against (or a superset) survived the crash.
	auditAcked := func(step int) *Failure {
		if err := audit.Ready(); err != nil {
			return failf(cfg.Seed, step, "netchaos: server not ready after recovery: %v", err)
		}
		for _, a := range acked {
			res, err := requestNoShed(audit, a.keys)
			if err != nil {
				return failf(cfg.Seed, step, "netchaos: acked request from step %d unservable after recovery: %v", a.step, err)
			}
			if res.Op != "hit" {
				return failf(cfg.Seed, step,
					"netchaos: acked request from step %d lost: post-recovery op %q (spec %s)",
					a.step, res.Op, strings.Join(a.keys, ","))
			}
		}
		return nil
	}

	crash := func(step int) *Failure {
		mode := CrashKill
		if rng.Float64() < 0.5 {
			mode = CrashPower
		}
		if err := ffs.Crash(mode, rng.Int63n(64)); err != nil {
			return failf(cfg.Seed, step, "netchaos: crashing: %v", err)
		}
		ts.Close()
		rep.Crashes++
		rep.DiskInjected += ffs.Injected()
		if f := boot(step); f != nil {
			return f
		}
		return auditAcked(step)
	}

	if f := boot(0); f != nil {
		return rep, dump(f)
	}
	defer func() {
		ts.Close()
		store.Close()
	}()

	event := func(mean int) bool {
		return mean > 0 && rng.Float64() < 1/float64(mean)
	}

	for step := 0; step < cfg.Steps; step++ {
		if event(cfg.CrashEvery) {
			if f := crash(step); f != nil {
				return rep, dump(f)
			}
		}
		// Self-healing: when the store has gone sticky (injected disk
		// fault), probe. FaultFS faults are one-shot, so a heal usually
		// lands; a heal that hits another armed fault stays degraded and
		// is retried next time.
		if store.Err() != nil {
			if err := srv.ProbeDegradedNow(); err == nil {
				rep.Heals++
				if !srv.Ready() {
					return rep, dump(failf(cfg.Seed, step, "netchaos: healed server not ready"))
				}
			}
		}

		if step%10 == 9 {
			// Exercise the idempotent retry path too.
			if _, err := statsCtx(client); err != nil {
				classify(err, &rep)
			}
			continue
		}

		keys := keysOf(repo, stream.Next())
		before := srv.StatsNow().Requests
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		res, err := client.RequestCtx(ctx, keys, false)
		cancel()
		rep.Steps++
		if err != nil {
			if isStatus(err, http.StatusTooManyRequests) {
				// Shed invariant: a 429 never moves the request counter.
				if after := srv.StatsNow().Requests; after != before {
					return rep, dump(failf(cfg.Seed, step,
						"netchaos: shed request mutated the cache (requests %d -> %d)", before, after))
				}
			}
			classify(err, &rep)
			continue
		}
		if res.Op == "" {
			return rep, dump(failf(cfg.Seed, step, "netchaos: 200 with empty op"))
		}
		rep.Acked++
		acked[strings.Join(keys, ",")] = ackedReq{keys: keys, step: step}
	}

	// Final crash: every run ends with a recovery audit.
	if f := crash(cfg.Steps); f != nil {
		return rep, dump(f)
	}
	rep.NetInjected = chaos.Injected()
	rep.DiskInjected += ffs.Injected()
	return rep, nil
}

// requestNoShed submits through the audit client, absorbing admission
// 429s (the shedder's token bucket refills within milliseconds; a
// bounded number of polite retries always lands).
func requestNoShed(c *server.Client, keys []string) (server.RequestResponse, error) {
	var res server.RequestResponse
	var err error
	for i := 0; i < 50; i++ {
		res, err = c.Request(keys, false)
		if !isStatus(err, http.StatusTooManyRequests) {
			return res, err
		}
		time.Sleep(time.Millisecond)
	}
	return res, err
}

// statsCtx fetches /v1/stats under a bounded deadline.
func statsCtx(c *server.Client) (server.StatsResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	var out server.StatsResponse
	err := c.DoCtx(ctx, http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// classify buckets a failed call for the report.
func classify(err error, rep *NetChaosReport) {
	switch {
	case server.IsCircuitOpen(err):
		rep.CircuitFast++
	case isStatus(err, http.StatusTooManyRequests):
		rep.Sheds++
	case isStatus(err, http.StatusServiceUnavailable):
		rep.Degraded++
	default:
		rep.NetErrors++
	}
}

// isStatus reports whether err is a *server.StatusError with the given
// code.
func isStatus(err error, status int) bool {
	var se *server.StatusError
	return errors.As(err, &se) && se.Status == status
}

// keysOf renders a spec as the package keys the HTTP API accepts.
func keysOf(repo *pkggraph.Repo, s spec.Spec) []string {
	ids := s.IDs()
	keys := make([]string, 0, len(ids))
	for _, id := range ids {
		keys = append(keys, repo.Package(id).Key())
	}
	return keys
}
