package check

import (
	"math/rand"

	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/workload"
)

// SmallRepoConfig is the harness's repository shape: the same
// hierarchical tier structure as the paper's SFT calibration
// (DefaultGenConfig) scaled down to 240 packages, small enough that a
// few hundred requests exercise every code path — hits, merges near
// the α boundary, conflicts, evictions — without making a single
// oracle step expensive.
func SmallRepoConfig() pkggraph.GenConfig {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 6
	cfg.LibraryFamilies = 18
	cfg.ApplicationFamilies = 34
	cfg.VersionsPerFamily = 4
	return cfg
}

// SmallRepo generates the harness repository for a seed.
func SmallRepo(seed int64) *pkggraph.Repo {
	return pkggraph.MustGenerate(SmallRepoConfig(), seed)
}

// Stream generates the harness request stream: a seeded mixture of
//
//   - dependency-closure specs (the paper's primary scheme),
//   - uniform-random specs (the adversarial Figure 7 scheme: contents
//     with no dependency structure, which defeats merging), and
//   - repeats of previously issued specs, so hits occur at a
//     controllable rate.
//
// The same seed always yields the same sequence.
type Stream struct {
	rng *rand.Rand
	dep *workload.DepClosure
	uni *workload.UniformRandom

	// RepeatProb is the probability a request repeats an earlier spec
	// (driving the hit path); UniformProb the probability a fresh spec
	// is drawn from the uniform-random scheme instead of the
	// dependency scheme.
	RepeatProb  float64
	UniformProb float64

	pool []spec.Spec
}

// NewStream creates a Stream over repo with the harness defaults: 45%
// repeats, 25% of fresh specs adversarially structureless, initial
// selections of 1..6 packages before closure (sized to the small
// repository).
func NewStream(repo *pkggraph.Repo, seed int64) *Stream {
	dep := workload.NewDepClosure(repo, seed)
	dep.MinInitial, dep.MaxInitial = 1, 6
	uni := workload.NewUniformRandom(repo, seed)
	uni.SetCardinality(1, 6)
	return &Stream{
		rng:         rand.New(rand.NewSource(seed + 2)),
		dep:         dep,
		uni:         uni,
		RepeatProb:  0.45,
		UniformProb: 0.25,
	}
}

// Next returns the next specification in the stream.
func (g *Stream) Next() spec.Spec {
	if len(g.pool) > 0 && g.rng.Float64() < g.RepeatProb {
		return g.pool[g.rng.Intn(len(g.pool))]
	}
	var s spec.Spec
	if g.rng.Float64() < g.UniformProb {
		s = g.uni.Next()
	} else {
		s = g.dep.Next()
	}
	// Bound the repeat pool so long streams keep revisiting a stable
	// working set instead of diluting the hit rate to zero.
	const poolCap = 256
	if len(g.pool) < poolCap {
		g.pool = append(g.pool, s)
	} else {
		g.pool[g.rng.Intn(poolCap)] = s
	}
	return s
}

// Anchored wraps a Stream so every spec includes anchor — the setup
// for the α = 1 degeneracy check, which needs all specs to pairwise
// intersect so d < 1 always holds.
type Anchored struct {
	Inner  *Stream
	Anchor pkggraph.PkgID
}

// Next returns the inner stream's next spec with the anchor unioned in.
func (g *Anchored) Next() spec.Spec {
	return g.Inner.Next().Union(spec.New([]pkggraph.PkgID{g.Anchor}))
}
