package check

import "testing"

// TestHAChaos runs the high-availability chaos schedule: primary
// kills with two-tick promotion audits, lease-holder isolations with
// epoch-fenced demotion, warm drain handoff, and the WAL read replica
// byte-identity check. The run itself carries the invariants; this
// test asserts the schedule actually exercised them.
func TestHAChaos(t *testing.T) {
	cfg := HAChaosDefault(*seedFlag)
	rep, f := RunHAChaos(cfg)
	if f != nil {
		t.Fatal(f)
	}
	if rep.Kills < 3 {
		t.Fatalf("only %d primary kills, want >= 3", rep.Kills)
	}
	if rep.Isolations < 2 {
		t.Fatalf("only %d lease isolations, want >= 2", rep.Isolations)
	}
	if rep.Promotions < rep.Kills+rep.Isolations {
		t.Fatalf("%d promotions for %d kills + %d isolations", rep.Promotions, rep.Kills, rep.Isolations)
	}
	if rep.Demotions < rep.Isolations {
		t.Fatalf("%d demotions for %d isolations", rep.Demotions, rep.Isolations)
	}
	if rep.Acked == 0 {
		t.Fatal("no request was ever acked")
	}
	if rep.ReplicaRecords == 0 {
		t.Fatal("replica applied no WAL records")
	}
	if rep.MaxEpoch < uint64(rep.Promotions) {
		t.Fatalf("final epoch %d below promotion count %d", rep.MaxEpoch, rep.Promotions)
	}
	t.Logf("hachaos: steps=%d acked=%d unavailable=%d sheds=%d errors=%d kills=%d isolations=%d promotions=%d demotions=%d epoch=%d replica=%d staleRejects=%d handoff=%d",
		rep.Steps, rep.Acked, rep.Unavailable, rep.Sheds, rep.Errors,
		rep.Kills, rep.Isolations, rep.Promotions, rep.Demotions,
		rep.MaxEpoch, rep.ReplicaRecords, rep.StaleRejects, rep.HandoffSpecs)
}
