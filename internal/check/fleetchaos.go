package check

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/resilience"
	"repro/internal/server"
)

// FleetChaosConfig parameterizes one fleet chaos run: a real master
// (on its own listener, so its address survives kill/restart) fronting
// N in-process agents, with seeded partitions on the master→agent
// path and master crashes mid-stream.
//
// Like RunNetChaos, the report is not bit-for-bit reproducible; the
// contract is the invariants:
//
//   - zero lost acks: every request acknowledged through the master is
//     still served afterwards — through the master, and as a hit on
//     the agent that acked it (agents are never killed here; the
//     per-agent cache is the durable thing a partition cannot erase);
//   - route-around: a successful request is never attributed to a
//     currently partitioned agent;
//   - soft-state recovery: a killed and restarted master rebuilds
//     membership from agent re-registration and keeps serving;
//   - bounded key movement: one agent joining moves at most 2/(N+1) of
//     a sampled keyspace (all of it to the joiner), and the agent
//     leaving again restores the original assignment exactly.
type FleetChaosConfig struct {
	Seed  int64
	Steps int // requests through the master
	// Agents is the fleet size (>= 2 for the invariants to bite).
	Agents int
	Alpha  float64
	// PartitionEvery is the mean gap, in steps, between partition
	// toggles (0 disables).
	PartitionEvery int
	// MasterKillEvery is the mean gap, in steps, between master
	// kill/restart cycles (0 disables; a final kill always runs).
	MasterKillEvery int
}

// FleetChaosDefault is the canonical fleet-chaos configuration for a
// seed.
func FleetChaosDefault(seed int64) FleetChaosConfig {
	return FleetChaosConfig{
		Seed: seed, Steps: 240, Agents: 3, Alpha: 0.6,
		PartitionEvery:  40,
		MasterKillEvery: 80,
	}
}

// FleetChaosReport summarizes one run.
type FleetChaosReport struct {
	Steps       int
	Acked       int // 200s through the master
	Unavailable int // 503s (partition being learned, no routable agent)
	Sheds       int // 429s relayed from agents
	Errors      int // transport-level failures reaching the client
	Partitions  int // partition events (cuts, not heals)
	MasterKills int
	// KeyMoveFraction is the sampled keyspace fraction the join audit
	// moved.
	KeyMoveFraction float64
}

// fleetAgent bundles one agent's moving parts.
type fleetAgent struct {
	id          string
	srv         *server.Server
	ts          *httptest.Server
	ag          *fleet.Agent
	chaos       *resilience.ChaosTransport // master→agent path
	partitioned bool
}

// RunFleetChaos executes the fleet chaos schedule and audits the
// invariants. It returns a nil Failure on a clean run.
func RunFleetChaos(cfg FleetChaosConfig) (FleetChaosReport, *Failure) {
	if cfg.Agents < 2 {
		return FleetChaosReport{}, failf(cfg.Seed, 0, "fleetchaos: Agents must be >= 2")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	var rep FleetChaosReport

	// Agents: in-memory servers with unlimited capacity, so an acked
	// spec can never be evicted — any post-fault miss is a real loss.
	agents := make([]*fleetAgent, cfg.Agents)
	transportFor := make(map[string]http.RoundTripper, cfg.Agents)
	for i := range agents {
		srv, err := server.New(repo, core.Config{Alpha: cfg.Alpha})
		if err != nil {
			return rep, failf(cfg.Seed, 0, "fleetchaos: agent server: %v", err)
		}
		ts := httptest.NewServer(srv.Handler())
		a := &fleetAgent{
			id:    fmt.Sprintf("agent-%d", i),
			srv:   srv,
			ts:    ts,
			chaos: resilience.NewChaosTransport(http.DefaultTransport, resilience.ChaosPlan{Seed: cfg.Seed + 10 + int64(i)}),
		}
		transportFor[ts.URL] = a.chaos
		agents[i] = a
	}
	defer func() {
		for _, a := range agents {
			a.ts.Close()
		}
	}()

	mcfg := fleet.MasterConfig{
		Quorum:         1,
		SuspectAfter:   40 * time.Millisecond,
		DeadAfter:      0, // partitions never shrink the ring
		ForwardTimeout: 150 * time.Millisecond,
		MaxAttempts:    cfg.Agents,
		Breaker:        resilience.BreakerConfig{Failures: 3, OpenFor: 10 * time.Millisecond},
		TransportFor:   func(url string) http.RoundTripper { return transportFor[url] },
	}

	// The master listens on its own socket so kill/restart keeps the
	// address the agents and client are configured with.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, failf(cfg.Seed, 0, "fleetchaos: listen: %v", err)
	}
	addr := ln.Addr().String()
	masterURL := "http://" + addr

	var hs *http.Server
	var client *server.Client
	bootMaster := func(l net.Listener) {
		m := fleet.NewMaster(mcfg)
		hs = &http.Server{Handler: m.Handler()}
		go hs.Serve(l)
		// Fresh client per master life: keep-alive connections into the
		// killed process would surface as spurious transport errors.
		client = server.NewClient(masterURL, &http.Client{Transport: &http.Transport{}})
		client.MaxRetries = 0
		// The harness client is the auditor, not a production caller:
		// it must observe every outcome raw, not fail fast behind its
		// own breaker while the fleet is mid-fault.
		client.SetBreaker(nil)
	}
	bootMaster(ln)
	defer func() { hs.Close() }()

	for i := range agents {
		agents[i].ag = fleet.NewAgent(fleet.AgentConfig{
			ID:           agents[i].id,
			AdvertiseURL: agents[i].ts.URL,
			MasterURL:    masterURL,
			Interval:     time.Hour, // beats are driven by the schedule
			BeatTimeout:  time.Second,
		}, agents[i].srv)
	}

	beatAll := func() {
		for _, a := range agents {
			a.ag.BeatNow(context.Background()) // paused/partitioned beats no-op or fail; the next round retries
		}
	}
	beatAll()

	partitionedSet := func() map[string]bool {
		out := map[string]bool{}
		for _, a := range agents {
			if a.partitioned {
				out[a.id] = true
			}
		}
		return out
	}

	// routeVia asks the live master to place one spec.
	routeVia := func(keys []string) (fleet.RouteResponse, error) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		var out fleet.RouteResponse
		err := client.DoCtx(ctx, http.MethodPost, "/v1/request",
			server.RequestBody{Packages: keys, Close: false}, &out)
		return out, err
	}

	type ackedReq struct {
		keys  []string
		step  int
		agent string
	}
	acked := make(map[string]ackedReq)

	// auditAcked checks the zero-lost-acks contract: every acked spec
	// is a hit on its acking agent (reached directly — partitions only
	// cut the master path) and 200 through the master.
	auditAcked := func(step int) *Failure {
		for _, a := range agents {
			direct := server.NewClient(a.ts.URL, a.ts.Client())
			for key, ar := range acked {
				if ar.agent != a.id {
					continue
				}
				res, err := requestNoShed(direct, ar.keys)
				if err != nil {
					return failf(cfg.Seed, step, "fleetchaos: acked spec from step %d unservable on %s: %v", ar.step, a.id, err)
				}
				if res.Op != "hit" {
					return failf(cfg.Seed, step,
						"fleetchaos: acked spec from step %d lost on %s: op %q (spec %s)", ar.step, a.id, res.Op, key)
				}
			}
		}
		for _, ar := range acked {
			if _, err := routeViaRetry(routeVia, ar.keys, 20); err != nil {
				return failf(cfg.Seed, step, "fleetchaos: acked spec from step %d unservable via master: %v", ar.step, err)
			}
		}
		return nil
	}

	killMaster := func(step int) *Failure {
		hs.Close()
		rep.MasterKills++
		var nl net.Listener
		if !Poll(2*time.Second, func() bool {
			var err error
			nl, err = net.Listen("tcp", addr)
			return err == nil
		}) {
			return failf(cfg.Seed, step, "fleetchaos: could not rebind master address %s", addr)
		}
		bootMaster(nl)
		// The new master has no soft state: beats are told Unknown,
		// re-register, and replay full directories. A single round can
		// lose to a stale pooled connection into the killed process, so
		// converge the way real interval-driven agents do — keep
		// beating until the master reports ready.
		if !Poll(2*time.Second, func() bool {
			beatAll()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			return client.DoCtx(ctx, http.MethodGet, "/v1/readyz", nil, nil) == nil
		}) {
			return failf(cfg.Seed, step, "fleetchaos: master not ready after restart (no agent re-registered)")
		}
		return auditAcked(step)
	}

	togglePartition := func() {
		i := rng.Intn(len(agents))
		a := agents[i]
		if a.partitioned {
			a.chaos.SetPlan(resilience.ChaosPlan{})
			a.ag.SetPaused(false)
			a.partitioned = false
			return
		}
		n := 0
		for _, other := range agents {
			if other.partitioned {
				n++
			}
		}
		if n >= len(agents)-1 {
			return // keep at least one agent routable
		}
		a.chaos.SetPlan(resilience.ChaosPlan{BlackholeP: 1})
		a.ag.SetPaused(true)
		a.partitioned = true
		rep.Partitions++
	}

	event := func(mean int) bool {
		return mean > 0 && rng.Float64() < 1/float64(mean)
	}

	for step := 0; step < cfg.Steps; step++ {
		if event(cfg.PartitionEvery) {
			togglePartition()
		}
		if event(cfg.MasterKillEvery) {
			if f := killMaster(step); f != nil {
				return rep, f
			}
		}
		if step == cfg.Steps/2 {
			if f := auditKeyMovement(cfg, &rep, masterURL, client, agents, beatAll, step); f != nil {
				return rep, f
			}
		}
		beatAll()

		keys := keysOf(repo, stream.Next())
		res, err := routeVia(keys)
		rep.Steps++
		if err != nil {
			switch {
			case isStatus(err, http.StatusServiceUnavailable):
				rep.Unavailable++
			case isStatus(err, http.StatusTooManyRequests):
				rep.Sheds++
			default:
				rep.Errors++
			}
			continue
		}
		if res.Agent == "" {
			return rep, failf(cfg.Seed, step, "fleetchaos: 200 with no agent attribution")
		}
		if partitionedSet()[res.Agent] {
			return rep, failf(cfg.Seed, step,
				"fleetchaos: request attributed to partitioned agent %s", res.Agent)
		}
		rep.Acked++
		acked[strings.Join(keys, ",")] = ackedReq{keys: keys, step: step, agent: res.Agent}
	}

	// Heal every partition, then a final master kill: the run always
	// ends with a full soft-state recovery audit.
	for _, a := range agents {
		if a.partitioned {
			a.chaos.SetPlan(resilience.ChaosPlan{})
			a.ag.SetPaused(false)
			a.partitioned = false
		}
	}
	if f := killMaster(cfg.Steps); f != nil {
		return rep, f
	}
	if rep.Acked == 0 {
		return rep, failf(cfg.Seed, cfg.Steps, "fleetchaos: no request was ever acknowledged")
	}
	return rep, nil
}

// routeViaRetry absorbs the transient 503s the master serves while a
// fault is still being learned (suspect marking, breaker cool-down).
func routeViaRetry(routeVia func([]string) (fleet.RouteResponse, error), keys []string, tries int) (fleet.RouteResponse, error) {
	var res fleet.RouteResponse
	var err error
	for i := 0; i < tries; i++ {
		res, err = routeVia(keys)
		if err == nil {
			return res, nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return res, err
}

// auditKeyMovement runs the deterministic churn audit mid-stream: a
// fresh agent joins, at most 2/(N+1) of a sampled keyspace moves (all
// of it to the joiner), and its departure restores the original
// assignment exactly.
func auditKeyMovement(cfg FleetChaosConfig, rep *FleetChaosReport, masterURL string,
	client *server.Client, agents []*fleetAgent, beatAll func(), step int) *Failure {
	const samples = 300
	sample := func() ([]string, *Failure) {
		owners := make([]string, samples)
		for i := 0; i < samples; i++ {
			var info fleet.RouteInfo
			key := uint64(i) * 0x9e3779b97f4a7c15
			path := fmt.Sprintf("/fleet/v1/route?key=%d", key)
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			err := client.DoCtx(ctx, http.MethodGet, path, nil, &info)
			cancel()
			if err != nil {
				return nil, failf(cfg.Seed, step, "fleetchaos: sampling route: %v", err)
			}
			owners[i] = info.Owner
		}
		return owners, nil
	}

	beatAll()
	var members []fleet.MemberInfo
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	err := client.DoCtx(ctx, http.MethodGet, "/fleet/v1/members", nil, &members)
	cancel()
	if err != nil {
		return failf(cfg.Seed, step, "fleetchaos: listing members: %v", err)
	}
	n := len(members)
	if n == 0 {
		return failf(cfg.Seed, step, "fleetchaos: no members at key-movement audit")
	}

	before, f := sample()
	if f != nil {
		return f
	}

	// Join a throwaway agent. It serves nothing; only its ring
	// membership matters, and it deregisters before traffic resumes.
	joiner := agents[0] // reuse agent-0's server as the advertise target; it never receives traffic keyed here
	jag := fleet.NewAgent(fleet.AgentConfig{
		ID: "agent-join-audit", AdvertiseURL: joiner.ts.URL, MasterURL: masterURL,
		Interval: time.Hour, BeatTimeout: time.Second,
	}, joiner.srv)
	if err := jag.BeatNow(context.Background()); err != nil {
		return failf(cfg.Seed, step, "fleetchaos: joiner registration: %v", err)
	}

	during, f := sample()
	if f != nil {
		return f
	}
	moved := 0
	for i := range before {
		if before[i] != during[i] {
			moved++
			if during[i] != "agent-join-audit" {
				return failf(cfg.Seed, step,
					"fleetchaos: key moved %s -> %s without involving the joiner", before[i], during[i])
			}
		}
	}
	rep.KeyMoveFraction = float64(moved) / samples
	if bound := 2 * samples / (n + 1); moved > bound {
		return failf(cfg.Seed, step,
			"fleetchaos: join moved %d/%d sampled keys, bound %d (2/(N+1), N=%d)", moved, samples, bound, n)
	}
	if moved == 0 {
		return failf(cfg.Seed, step, "fleetchaos: join moved no sampled keys; the joiner owns nothing")
	}

	if err := jag.Deregister(); err != nil {
		return failf(cfg.Seed, step, "fleetchaos: joiner deregister: %v", err)
	}
	after, f := sample()
	if f != nil {
		return f
	}
	for i := range before {
		if before[i] != after[i] {
			return failf(cfg.Seed, step,
				"fleetchaos: departure did not restore key %d: %s != %s", i, after[i], before[i])
		}
	}
	return nil
}
