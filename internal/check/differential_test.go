package check

import "testing"

// TestDifferentialEquivalence is the headline proof obligation of the
// interned fast path: on every canonical differential configuration the
// fast pipeline must be byte-identical to the string-set reference —
// every Result equal, every periodic ExportState equal, both caches
// passing integrity audits throughout.
func TestDifferentialEquivalence(t *testing.T) {
	for i, cfg := range DifferentialSuite(*seedFlag) {
		rep, fail := RunDifferential(cfg)
		if fail != nil {
			t.Fatalf("differential config %d (%+v): %v", i, cfg, fail)
		}
		if rep.Steps != cfg.Steps {
			t.Fatalf("differential config %d ran %d of %d steps", i, rep.Steps, cfg.Steps)
		}
		t.Logf("config %d: %d steps, %d images, hits=%d merges=%d inserts=%d, state %s",
			i, rep.Steps, rep.Images, rep.Stats.Hits, rep.Stats.Merges, rep.Stats.Inserts, rep.StateHash[:12])
	}
}

// TestDifferentialDeterministic pins the rig itself: the same config
// must reproduce the same report (steps, stats, final state hash), or
// seed-based failure reproduction is worthless.
func TestDifferentialDeterministic(t *testing.T) {
	cfg := DifferentialSuite(*seedFlag)[1]
	a, failA := RunDifferential(cfg)
	b, failB := RunDifferential(cfg)
	if failA != nil || failB != nil {
		t.Fatalf("clean config failed: %v / %v", failA, failB)
	}
	if a != b {
		t.Fatalf("two runs of the same config diverged:\n  %+v\n  %+v", a, b)
	}
}
