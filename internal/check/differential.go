package check

import (
	"repro/internal/core"
	"repro/internal/spec"
)

// Differential equivalence rig.
//
// The interned-bitset fast path (core/fastpath.go) re-implements
// Algorithm 1's decision procedure — subset containment, Jaccard
// distances, band-candidate retrieval — on a different representation.
// The claim it makes is strong: byte-identical behaviour to the
// string-set reference pipeline on every request, not approximately
// equal. This rig is the proof machinery: it replays one seeded stream
// through two caches built over the same repository — the reference
// (NoFastPath + NoBandIndex) and the fast path (defaults) — and
// asserts, request by request, that the full Result structs agree, and
// periodically that the exported states are byte-identical and both
// caches pass CheckIntegrity.
//
// The rig is also the primary detector for the fast path's seeded
// mutants (intern, popcount, lshmiss): those bugs corrupt only the
// interned representation, so exact-mode oracles never see them — only
// a reference pipeline running beside the corrupted one can.

// DiffConfig parameterizes one differential run. Everything derives
// from Seed; the same config always produces the same DiffReport or
// the same Failure.
type DiffConfig struct {
	Seed  int64
	Steps int
	// Alpha and CapacityFrac as in SimConfig.
	Alpha        float64
	CapacityFrac float64
	// Conflicts enables the single-version conflict policy.
	Conflicts bool
	// MinHash enables the prefilter and band index on both caches (the
	// fast path then uses the index as its primary candidate source).
	MinHash bool
	// Shards > 1 runs the comparison between two ShardedManagers,
	// exercising the interned route table against streamed routing.
	Shards int
	// UniformOnly draws every fresh spec from the adversarial
	// uniform-random scheme (no dependency structure, merging defeated).
	UniformOnly bool
	// PruneEvery runs a split pass on both caches every that-many
	// requests (0 disables).
	PruneEvery int
}

// DiffReport summarizes a clean differential run. Runs of the same
// config must report identically.
type DiffReport struct {
	Steps     int
	Stats     core.Stats
	Images    int
	StateHash string
}

// diffCache is the surface the rig drives — satisfied by both
// *core.Manager and *core.ShardedManager, so one driver compares
// unsharded and sharded caches alike.
type diffCache interface {
	Request(spec.Spec) (core.Result, error)
	ExportState() core.ManagerState
	CheckIntegrity() error
	Prune(maxUtilization float64, minServed int) ([]core.SplitResult, error)
	Stats() core.Stats
}

// DifferentialSuite returns the canonical differential configurations:
// exact unsharded (interned subset/distance arithmetic, no sketches),
// MinHash unsharded (band index as primary candidate source), MinHash
// sharded (interned route table), adversarial uniform-random (dense
// unstructured specs), and a conflict-policy run. Together they issue
// 900 requests — within the 1000-request detection budget the mutant
// self-test enforces for the fast-path mutants.
func DifferentialSuite(seed int64) []DiffConfig {
	return []DiffConfig{
		{Seed: seed, Steps: 200, Alpha: 0.6, CapacityFrac: 0.3, PruneEvery: 90},
		{Seed: seed, Steps: 200, Alpha: 0.6, CapacityFrac: 0.3, MinHash: true, PruneEvery: 90},
		{Seed: seed, Steps: 200, Alpha: 0.6, CapacityFrac: 0.3, MinHash: true, Shards: 4},
		{Seed: seed, Steps: 150, Alpha: 0.75, MinHash: true, UniformOnly: true},
		{Seed: seed, Steps: 150, Alpha: 0.8, CapacityFrac: 0.5, Conflicts: true, MinHash: true, Shards: 1},
	}
}

// RunDifferential executes one differential run: the seeded stream is
// fed to the reference and fast caches in lockstep, Results are
// compared on every request, and exported states plus integrity are
// compared every 64 requests and at the end. It returns a nil Failure
// on a clean run.
func RunDifferential(cfg DiffConfig) (DiffReport, *Failure) {
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	if cfg.UniformOnly {
		stream.UniformProb = 1
	}
	capacity := simCapacity(repo, cfg.CapacityFrac)

	fastCfg := core.Config{Alpha: cfg.Alpha, Capacity: capacity}
	if cfg.Conflicts {
		fastCfg.Conflicts = spec.NewSingleVersionPolicy(repo)
	}
	if cfg.MinHash {
		fastCfg.MinHash = core.DefaultMinHash()
	}
	refCfg := fastCfg
	refCfg.NoFastPath = true
	refCfg.NoBandIndex = true

	var rep DiffReport
	var ref, fast diffCache
	if cfg.Shards > 1 {
		refCfg.Shards = cfg.Shards
		fastCfg.Shards = cfg.Shards
		r, err := core.NewSharded(repo, refCfg)
		if err != nil {
			return rep, failf(cfg.Seed, 0, "reference sharded manager: %v", err)
		}
		f, err := core.NewSharded(repo, fastCfg)
		if err != nil {
			return rep, failf(cfg.Seed, 0, "fast sharded manager: %v", err)
		}
		ref, fast = r, f
	} else {
		r, err := core.NewManager(repo, refCfg)
		if err != nil {
			return rep, failf(cfg.Seed, 0, "reference manager: %v", err)
		}
		f, err := core.NewManager(repo, fastCfg)
		if err != nil {
			return rep, failf(cfg.Seed, 0, "fast manager: %v", err)
		}
		ref, fast = r, f
	}

	audit := func(step int) *Failure {
		if err := ref.CheckIntegrity(); err != nil {
			return failf(cfg.Seed, step, "reference integrity: %v", err)
		}
		if err := fast.CheckIntegrity(); err != nil {
			return failf(cfg.Seed, step, "fast-path integrity: %v", err)
		}
		if err := statesEqual(ref.ExportState(), fast.ExportState()); err != nil {
			return failf(cfg.Seed, step, "fast-path state diverges from reference: %v", err)
		}
		return nil
	}

	for step := 0; step < cfg.Steps; step++ {
		if cfg.PruneEvery > 0 && step > 0 && step%cfg.PruneEvery == 0 {
			rs, err := ref.Prune(0.5, 2)
			if err != nil {
				return rep, failf(cfg.Seed, step, "reference prune: %v", err)
			}
			fs, err := fast.Prune(0.5, 2)
			if err != nil {
				return rep, failf(cfg.Seed, step, "fast prune: %v", err)
			}
			if len(rs) != len(fs) {
				return rep, failf(cfg.Seed, step, "prune split %d images on the fast path, %d on the reference", len(fs), len(rs))
			}
		}
		s := stream.Next()
		rr, err := ref.Request(s)
		if err != nil {
			return rep, failf(cfg.Seed, step, "reference request: %v", err)
		}
		fr, err := fast.Request(s)
		if err != nil {
			return rep, failf(cfg.Seed, step, "fast request: %v", err)
		}
		if rr != fr {
			return rep, failf(cfg.Seed, step, "fast path answered %+v, reference answered %+v (spec of %d packages)", fr, rr, s.Len())
		}
		rep.Steps++
		if (step+1)%64 == 0 {
			if f := audit(step); f != nil {
				return rep, f
			}
		}
	}

	if f := audit(cfg.Steps); f != nil {
		return rep, f
	}
	if rs, fs := ref.Stats(), fast.Stats(); rs != fs {
		return rep, failf(cfg.Seed, cfg.Steps, "fast-path stats %+v diverge from reference %+v", fs, rs)
	}
	st := fast.ExportState()
	rep.Stats = st.Stats
	rep.Images = len(st.Images)
	rep.StateHash = StateHash(st)
	return rep, nil
}
