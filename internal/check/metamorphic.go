package check

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/spec"
)

// This file holds the metamorphic relations: properties that do not
// say what one run must produce, but how two related runs must relate.
// They catch bugs a single-run oracle cannot — an implementation that
// is self-consistently wrong in both runs still has to be wrong in the
// mathematically mandated direction.

// genRequests materializes a fixed request sequence so related runs
// replay the identical workload.
func genRequests(seed int64, n int) []spec.Spec {
	repo := SmallRepo(seed)
	stream := NewStream(repo, seed+1)
	reqs := make([]spec.Spec, n)
	for i := range reqs {
		reqs[i] = stream.Next()
	}
	return reqs
}

// run replays reqs through a fresh manager and returns it.
func run(seed int64, alpha float64, capacity int64, reqs []spec.Spec) (*core.Manager, *Failure) {
	repo := SmallRepo(seed)
	m, err := core.NewManager(repo, core.Config{Alpha: alpha, Capacity: capacity})
	if err != nil {
		return nil, failf(seed, 0, "manager: %v", err)
	}
	for i, s := range reqs {
		if _, err := m.Request(s); err != nil {
			return nil, failf(seed, i, "request: %v", err)
		}
	}
	return m, nil
}

// AlphaMonotonicity checks that raising the merge threshold never
// decreases the hit count on a fixed workload with unlimited capacity:
// a larger α merges at least as aggressively, so every image only
// grows, and a spec contained at low α is contained at high α.
// (Finite capacity voids the relation — bigger merged images evict
// more — which is why the paper's capacity experiments sweep α
// separately.)
func AlphaMonotonicity(seed int64, steps int, alphas []float64) *Failure {
	reqs := genRequests(seed, steps)
	prevHits, prevAlpha := int64(-1), 0.0
	for _, alpha := range alphas {
		m, f := run(seed, alpha, 0, reqs)
		if f != nil {
			return f
		}
		hits := m.Stats().Hits
		if hits < prevHits {
			return failf(seed, steps, "α=%g yields %d hits but α=%g yielded %d (hit rate must be non-decreasing in α under unlimited capacity)",
				alpha, hits, prevAlpha, prevHits)
		}
		prevHits, prevAlpha = hits, alpha
	}
	return nil
}

// HitPermutationInvariance checks that hits are observers: with
// unlimited capacity, deleting the hit requests from the workload and
// replaying their specs afterwards — in any shuffled order — must (a)
// still hit every one of them and (b) leave the exact same image
// contents. A hit that mutated contents, or a decision that depended
// on access recency rather than contents, breaks the relation.
func HitPermutationInvariance(seed int64, steps int, alpha float64) *Failure {
	reqs := genRequests(seed, steps)

	m1, f := run(seed, alpha, 0, nil)
	if f != nil {
		return f
	}
	var misses, hitSpecs []spec.Spec
	for i, s := range reqs {
		res, err := m1.Request(s)
		if err != nil {
			return failf(seed, i, "request: %v", err)
		}
		if res.Op == core.OpHit {
			hitSpecs = append(hitSpecs, s)
		} else {
			misses = append(misses, s)
		}
	}

	m2, f := run(seed, alpha, 0, misses)
	if f != nil {
		return f
	}
	rng := rand.New(rand.NewSource(seed + 3))
	rng.Shuffle(len(hitSpecs), func(i, j int) { hitSpecs[i], hitSpecs[j] = hitSpecs[j], hitSpecs[i] })
	for i, s := range hitSpecs {
		res, err := m2.Request(s)
		if err != nil {
			return failf(seed, i, "replaying hit: %v", err)
		}
		if res.Op != core.OpHit {
			return failf(seed, i, "request that hit in the original order got %v when replayed after all misses (hit outcome depends on interleaving)", res.Op)
		}
	}

	if f := sameContents(seed, steps, m1, m2); f != nil {
		return f
	}
	return nil
}

// sameContents compares the two managers' image specs as multisets.
func sameContents(seed int64, step int, a, b *core.Manager) *Failure {
	if a.Len() != b.Len() {
		return failf(seed, step, "original order holds %d images, permuted order %d (cache contents depend on hit ordering)", a.Len(), b.Len())
	}
	want := make(map[string]int, a.Len())
	for _, img := range a.Images() {
		want[img.Spec.String()]++
	}
	for _, img := range b.Images() {
		if want[img.Spec.String()] == 0 {
			return failf(seed, step, "permuted order produced image %v absent from the original order's cache", img.Spec)
		}
		want[img.Spec.String()]--
	}
	return nil
}

// DegenerateLRU checks the α = 0 degeneracy: with merging disabled the
// manager must behave as a plain LRU of exact request specs — zero
// merges, and every cached image identical to some requested spec.
func DegenerateLRU(seed int64, steps int, capacityFrac float64) *Failure {
	repo := SmallRepo(seed)
	reqs := genRequests(seed, steps)
	m, f := run(seed, 0, simCapacity(repo, capacityFrac), reqs)
	if f != nil {
		return f
	}
	if merges := m.Stats().Merges; merges != 0 {
		return failf(seed, steps, "α=0 performed %d merge(s); must degenerate to pure LRU", merges)
	}
	requested := make(map[string]bool, len(reqs))
	for _, s := range reqs {
		requested[s.String()] = true
	}
	for _, img := range m.Images() {
		if !requested[img.Spec.String()] {
			return failf(seed, steps, "α=0 cached image %d whose spec matches no request (images must be verbatim requests under pure LRU)", img.ID)
		}
	}
	return nil
}

// DegenerateGlob checks the α = 1 degeneracy: when every spec shares
// an anchor package (so all pairwise Jaccard distances are < 1), no
// conflicts apply, and capacity is unlimited, the cache must collapse
// to a single glob image containing every requested package.
func DegenerateGlob(seed int64, steps int) *Failure {
	repo := SmallRepo(seed)
	stream := &Anchored{Inner: NewStream(repo, seed+1), Anchor: 0}
	m, err := core.NewManager(repo, core.Config{Alpha: 1})
	if err != nil {
		return failf(seed, 0, "manager: %v", err)
	}
	union := spec.Spec{}
	for i := 0; i < steps; i++ {
		s := stream.Next()
		if _, err := m.Request(s); err != nil {
			return failf(seed, i, "request: %v", err)
		}
		union = union.Union(s)
	}
	if m.Len() != 1 {
		return failf(seed, steps, "α=1 with anchored specs left %d images; must collapse to a single glob", m.Len())
	}
	glob := m.Images()[0]
	if !union.SubsetOf(glob.Spec) {
		return failf(seed, steps, "α=1 glob image is missing requested packages")
	}
	return nil
}
