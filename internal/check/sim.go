package check

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// SimConfig parameterizes one deterministic chaos run. Everything
// derives from Seed: the repository, the request stream, the schedule
// of checkpoints, prunes and crashes, and the fault plans. The same
// config always produces the same SimReport or the same Failure.
type SimConfig struct {
	Seed  int64
	Steps int // requests to issue
	// Alpha is the merge threshold; CapacityFrac sizes the cache as a
	// fraction of the repository's total bytes (0 = unlimited).
	Alpha        float64
	CapacityFrac float64
	// Conflicts enables the single-version conflict policy (every
	// package family exclusive).
	Conflicts bool
	// Dir, when non-empty, runs the simulation over a persistent store
	// (WAL + checkpoints) rooted there, with fsync=always semantics.
	Dir string
	// CheckpointEvery / PruneEvery / CrashEvery are mean gaps, in
	// requests, between the respective events (0 disables). Crashes
	// and checkpoints require Dir.
	CheckpointEvery int
	PruneEvery      int
	CrashEvery      int
	// Faults arms a seeded FaultPlan each process life: injected write
	// failures, torn writes, and sync failures.
	Faults bool
}

// SimReport summarizes a clean run. Two runs of the same config must
// report identically — TestSimDeterministic compares these wholesale.
type SimReport struct {
	Steps     int
	Stats     core.Stats
	Images    int
	Crashes   int
	Injected  int
	Acked     int // mutations covered by an acknowledged request
	StateHash string
}

// simCapacity derives the byte capacity from the repository.
func simCapacity(repo *pkggraph.Repo, frac float64) int64 {
	if frac <= 0 {
		return 0
	}
	var total int64
	for i := 0; i < repo.Len(); i++ {
		total += repo.Package(pkggraph.PkgID(i)).Size
	}
	return int64(frac * float64(total))
}

// simPlan draws one process life's fault plan: each fault class is
// independently armed at a seeded operation count.
func simPlan(rng *rand.Rand) FaultPlan {
	var plan FaultPlan
	if rng.Float64() < 0.4 {
		plan.FailWriteAt = rng.Int63n(300) + 1
	}
	if rng.Float64() < 0.4 {
		plan.ShortWriteAt = rng.Int63n(300) + 1
	}
	if rng.Float64() < 0.4 {
		plan.FailSyncAt = rng.Int63n(300) + 1
	}
	return plan
}

// Suite returns the canonical in-memory simulation configurations the
// replay and mutant tests run: a merge-heavy run without conflicts
// (exercising the α boundary and eviction under pressure) and a
// conflict-policy run (exercising the conflict scan, where merges are
// rare). Together they cover every operation type within 1000
// requests.
func Suite(seed int64) []SimConfig {
	return []SimConfig{
		{Seed: seed, Steps: 500, Alpha: 0.6, CapacityFrac: 0.3, PruneEvery: 90},
		{Seed: seed, Steps: 500, Alpha: 0.8, CapacityFrac: 0.5, Conflicts: true, PruneEvery: 90},
	}
}

// ChaosConfig returns the canonical persistent chaos configuration
// rooted at dir: checkpoints, prune passes, injected filesystem faults
// and crash/recovery cycles on one deterministic schedule.
func ChaosConfig(seed int64, dir string) SimConfig {
	return SimConfig{
		Seed: seed, Steps: 600, Alpha: 0.6, CapacityFrac: 0.3,
		Dir: dir, CheckpointEvery: 50, PruneEvery: 90, CrashEvery: 120, Faults: true,
	}
}

// RunSim executes the chaos schedule: a single goroutine interleaving
// oracle-validated requests with checkpoints, prune passes, and — when
// persistence is on — injected filesystem faults and simulated
// crashes, each followed by recovery and a durability audit. It
// returns a nil Failure on a clean run.
func RunSim(cfg SimConfig) (SimReport, *Failure) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	capacity := simCapacity(repo, cfg.CapacityFrac)

	mcfg := core.Config{Alpha: cfg.Alpha, Capacity: capacity}
	if cfg.Conflicts {
		mcfg.Conflicts = spec.NewSingleVersionPolicy(repo)
	}

	var rep SimReport
	persistent := cfg.Dir != ""

	// One process life: the manager, its validating hook chain
	// (oracle around, shadow inside, store last), and the durability
	// bookkeeping for the next crash audit.
	var (
		mgr    *core.Manager
		store  *persist.Store
		ffs    *FaultFS
		shadow *Shadow
		oracle *Oracle
		base   core.ManagerState // state this life started from
		acked  int               // shadow mutations covered by acked requests
	)

	// boot starts a life at global request index step: open the store
	// (over a fresh FaultFS with a seeded plan), recover, and install
	// the validation chain.
	boot := func(step int) *Failure {
		if !persistent {
			var err error
			mgr, err = core.NewManager(repo, mcfg)
			if err != nil {
				return failf(cfg.Seed, step, "manager: %v", err)
			}
			shadow = NewShadow(repo, capacity, cfg.Seed, nil)
			mgr.SetCommitHook(shadow)
			oracle = NewOracle(mgr, cfg.Seed)
			oracle.StartAt(step)
			return nil
		}
		var plan FaultPlan
		if cfg.Faults {
			plan = simPlan(rng)
		}
		ffs = NewFaultFS(plan)
		var err error
		store, err = persist.Open(cfg.Dir, persist.Options{
			FS:           ffs,
			SyncPolicy:   persist.FsyncAlways,
			SegmentBytes: 16 << 10, // small segments exercise rotation
		})
		if err != nil {
			return failf(cfg.Seed, step, "opening store: %v", err)
		}
		m, _, err := store.Recover(repo, mcfg)
		if err != nil {
			return failf(cfg.Seed, step, "recovery: %v", err)
		}
		mgr = m
		base = mgr.ExportState()
		shadow = NewShadow(repo, capacity, cfg.Seed, mgr.CommitHook())
		shadow.LoadState(base)
		mgr.SetCommitHook(shadow)
		oracle = NewOracle(mgr, cfg.Seed)
		oracle.StartAt(step)
		acked = 0
		return nil
	}

	// crash kills the current life and audits the recovery: the
	// recovered state must equal the life's base state plus some
	// prefix of its observed mutations covering every acknowledged
	// request.
	crash := func(step int) *Failure {
		if f := shadow.Err(); f != nil {
			return f // don't let the reboot discard a pending violation
		}
		mode := CrashKill
		if rng.Float64() < 0.5 {
			mode = CrashPower
		}
		torn := rng.Int63n(64)
		if err := ffs.Crash(mode, torn); err != nil {
			return failf(cfg.Seed, step, "crashing: %v", err)
		}
		rep.Crashes++
		rep.Injected += ffs.Injected()
		muts := shadow.Mutations()
		prevBase, prevAcked := base, acked
		if f := boot(step); f != nil {
			return f
		}
		if err := verifyPrefix(repo, mcfg, prevBase, muts, prevAcked, base); err != nil {
			return failf(cfg.Seed, step, "recovery audit: %v", err)
		}
		return nil
	}

	if f := boot(0); f != nil {
		return rep, f
	}

	event := func(mean int) bool {
		return mean > 0 && rng.Float64() < 1/float64(mean)
	}

	for step := 0; step < cfg.Steps; step++ {
		if persistent && event(cfg.CrashEvery) {
			if f := crash(step); f != nil {
				return rep, f
			}
		}
		if event(cfg.PruneEvery) {
			if _, err := mgr.Prune(0.5, 2); err != nil {
				return rep, failf(cfg.Seed, step, "prune: %v", err)
			}
			if err := mgr.CheckIntegrity(); err != nil {
				return rep, failf(cfg.Seed, step, "integrity after prune: %v", err)
			}
			if f := shadow.Err(); f != nil {
				return rep, f
			}
		}
		if persistent && event(cfg.CheckpointEvery) {
			if _, err := store.Checkpoint(mgr.ExportState()); err == nil {
				acked = shadow.Len()
			}
			// A failed checkpoint (injected fault) leaves stale files
			// recovery tolerates; nothing to do.
		}

		if _, f := oracle.Step(stream.Next()); f != nil {
			return rep, f
		}
		if f := shadow.Err(); f != nil {
			return rep, f
		}
		if persistent {
			if err := store.WaitDurable(); err == nil {
				acked = shadow.Len()
			}
		}
		rep.Steps++
	}

	if f := shadow.Final(); f != nil {
		return rep, f
	}
	live := mgr.ExportState()
	if err := shadow.VerifyState(mcfg, base, live); err != nil {
		return rep, failf(cfg.Seed, cfg.Steps, "%v", err)
	}
	if persistent {
		// End the run with one final crash + recovery audit so every
		// simulation exercises the durability path at least once.
		if f := crash(cfg.Steps); f != nil {
			return rep, f
		}
		live = mgr.ExportState()
	}

	rep.Stats = mgr.Stats()
	rep.Images = mgr.Len()
	rep.StateHash = StateHash(live)
	if persistent {
		rep.Injected += ffs.Injected()
	}
	return rep, nil
}

// verifyPrefix checks the crash-recovery contract: recovered must
// equal base plus muts[:k] for some k with ackedLen ≤ k ≤ len(muts) —
// no acknowledged request lost, no state invented.
func verifyPrefix(repo *pkggraph.Repo, mcfg core.Config, base core.ManagerState, muts []core.Mutation, ackedLen int, recovered core.ManagerState) error {
	mcfg.Commit = nil
	mcfg.Tracer = nil
	replayer, err := core.NewManager(repo, mcfg)
	if err != nil {
		return err
	}
	if len(base.Images) > 0 || base.Clock > 0 {
		if err := replayer.ImportState(base); err != nil {
			return fmt.Errorf("importing base state: %w", err)
		}
	}
	match := func() bool {
		if replayer.Clock() != recovered.Clock ||
			replayer.Len() != len(recovered.Images) ||
			replayer.Stats().Requests != recovered.Stats.Requests {
			return false
		}
		return statesEqual(replayer.ExportState(), recovered) == nil
	}
	for k := 0; k <= len(muts); k++ {
		if k > 0 {
			if err := replayer.ApplyMutation(muts[k-1]); err != nil {
				return fmt.Errorf("replaying mutation %d (%s of image %d): %w", k-1, muts[k-1].Kind, muts[k-1].ImageID, err)
			}
		}
		if k >= ackedLen && match() {
			return nil
		}
	}
	return fmt.Errorf("recovered state (clock=%d, %d images, %d requests) matches no mutation prefix ≥ the acked boundary %d of %d",
		recovered.Clock, len(recovered.Images), recovered.Stats.Requests, ackedLen, len(muts))
}
