// Package check is the deterministic simulation and invariant-checking
// harness for the LANDLORD cache: seeded generators for package graphs
// and request streams, an oracle that re-derives Algorithm 1's decision
// after every request, a shadow checker that validates the concurrent
// mutation stream through the commit hook, a fault-injecting filesystem
// behind internal/persist, and a chaos driver that interleaves
// requests, checkpoints, prunes, and crashes under a single seed.
//
// Everything is reproducible from one integer: a failing run prints its
// seed, and
//
//	go test ./internal/check -run TestCheckReplay -seed=N
//
// replays the identical schedule, failing at the same step with the
// same diagnostic. To keep that promise, diagnostics never include
// wall-clock times, durations, pointers, or map-iteration artifacts —
// only values derived from the seeded schedule.
//
// The harness is itself tested by mutation: internal/core compiles six
// deliberate invariant breakers under -tags landlord_mutants (selected
// via the LANDLORD_MUTANT environment variable), and the self-test
// proves each one is caught within 1,000 generated requests.
package check

import (
	"fmt"

	"repro/internal/telemetry"
)

// Failure is one invariant violation, carrying everything needed to
// reproduce it: the seed that generated the schedule, the step at
// which the violation surfaced, and a deterministic diagnostic.
type Failure struct {
	// Seed is the schedule's seed; replaying it reproduces the failure
	// bit for bit.
	Seed int64
	// Step is the zero-based request index at which the violation was
	// detected.
	Step int
	// Diagnostic describes the violated invariant in seed-stable terms.
	Diagnostic string
	// TraceDump, when the failing harness ran a span-traced server, is
	// the server's tail-sampling trace ring at the moment of failure —
	// where the latency went in the requests leading up to the
	// violation. CI uploads it as an artifact alongside the repro seed.
	// It is advisory context, not part of the deterministic diagnostic.
	TraceDump []telemetry.Trace
}

// Error renders the failure with its reproduction command.
func (f *Failure) Error() string {
	return fmt.Sprintf("check: seed=%d step=%d: %s\nreproduce: go test ./internal/check -run TestCheckReplay -seed=%d",
		f.Seed, f.Step, f.Diagnostic, f.Seed)
}

// failf builds a Failure at the given seed and step.
func failf(seed int64, step int, format string, args ...any) *Failure {
	return &Failure{Seed: seed, Step: step, Diagnostic: fmt.Sprintf(format, args...)}
}
