package check

import "testing"

// TestFleetChaos is the fleet chaos run on its own: a real master on
// loopback fronting three in-process agents, seeded partitions on the
// master→agent path, master kill/restart cycles, and the mid-stream
// key-movement audit. The invariants live inside RunFleetChaos; this
// test also sanity-checks that the schedule actually exercised them.
func TestFleetChaos(t *testing.T) {
	rep, f := RunFleetChaos(FleetChaosDefault(*seedFlag))
	if f != nil {
		t.Fatal(f)
	}
	if rep.Acked == 0 {
		t.Fatal("fleetchaos run acked nothing; the routing path never worked")
	}
	if rep.MasterKills == 0 {
		t.Fatal("fleetchaos run never killed the master; the soft-state audit never ran")
	}
	if rep.KeyMoveFraction <= 0 {
		t.Fatal("fleetchaos key-movement audit did not run")
	}
	t.Logf("fleetchaos: %d steps, %d acked, %d unavailable, %d sheds, %d errors, %d partitions, %d master kills, key movement %.3f",
		rep.Steps, rep.Acked, rep.Unavailable, rep.Sheds, rep.Errors,
		rep.Partitions, rep.MasterKills, rep.KeyMoveFraction)
}
