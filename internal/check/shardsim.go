package check

import (
	"math/rand"

	"repro/internal/core"
)

// ShardSimConfig parameterizes one deterministic sharded simulation:
// a single goroutine drives seeded requests through a ShardedManager's
// router, with a per-shard Oracle re-deriving Algorithm 1 on the shard
// each request lands on, the ShardShadow validating the demultiplexed
// mutation stream, and periodic Rebalance passes audited for the
// budgets-sum identity.
type ShardSimConfig struct {
	Seed   int64
	Steps  int
	Shards int
	Alpha  float64
	// CapacityFrac sizes the global cache as a fraction of the
	// repository's total bytes (0 = unlimited); the balancer divides it
	// across shards.
	CapacityFrac float64
	// RebalanceEvery / PruneEvery are mean gaps, in requests, between
	// the respective maintenance passes (0 disables).
	RebalanceEvery int
	PruneEvery     int
}

// ShardSimReport summarizes a clean sharded run. Runs of the same
// config must report identically.
type ShardSimReport struct {
	Steps      int
	Stats      core.Stats
	Images     int
	Rebalances int64
	Evicted    int64
	StateHash  string
}

// ShardSuite returns the canonical sharded simulation configurations:
// a merge-heavy run under byte pressure with frequent rebalances (the
// regime where the balancer works and budgets move), and a
// higher-alpha run at a different shard count (coprime with the first,
// so residue-class bugs cannot hide in a common divisor). Together
// they issue 1000 requests — the detection budget for the sharding
// mutants (route, balance).
func ShardSuite(seed int64) []ShardSimConfig {
	return []ShardSimConfig{
		{Seed: seed, Steps: 500, Shards: 4, Alpha: 0.6, CapacityFrac: 0.3, RebalanceEvery: 50, PruneEvery: 90},
		{Seed: seed, Steps: 500, Shards: 3, Alpha: 0.8, CapacityFrac: 0.25, RebalanceEvery: 40},
	}
}

// RunShardSim executes one sharded simulation. Every request is routed
// by the production router (ShardFor) and validated by that shard's
// Oracle against the shard's pre-state; the ShardShadow checks the
// commit stream; every Rebalance is followed by the budgets-sum audit
// (budgets must sum exactly to the global capacity — the identity that
// makes the global byte bound the sum of per-shard bounds). The run
// ends with the shadow's density/budget finals and a full replay of
// the mutation stream into a fresh sharded cache.
func RunShardSim(cfg ShardSimConfig) (ShardSimReport, *Failure) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	repo := SmallRepo(cfg.Seed)
	stream := NewStream(repo, cfg.Seed+1)
	capacity := simCapacity(repo, cfg.CapacityFrac)
	n := cfg.Shards
	if n < 1 {
		n = 1
	}

	mcfg := core.Config{Alpha: cfg.Alpha, Capacity: capacity, Shards: n}
	var rep ShardSimReport

	sm, err := core.NewSharded(repo, mcfg)
	if err != nil {
		return rep, failf(cfg.Seed, 0, "sharded manager: %v", err)
	}
	shadow := NewShardShadow(repo, n, cfg.Seed, nil)
	if capacity > 0 {
		shadow.SetBudgets(sm.Budgets())
	}
	sm.SetCommitHook(shadow)

	// Capture the per-shard managers once; the driver is single-
	// goroutine, so the oracles may drive them directly.
	var managers []*core.Manager
	sm.WithExclusiveAll(func(ms []*core.Manager) {
		managers = append(managers, ms...)
	})
	oracles := make([]*Oracle, n)
	for i := range oracles {
		oracles[i] = NewOracle(managers[i], cfg.Seed)
	}

	auditBudgets := func(step int) *Failure {
		if capacity <= 0 {
			return nil
		}
		budgets := sm.Budgets()
		var sum int64
		for i, b := range budgets {
			if b <= 0 {
				return failf(cfg.Seed, step, "balancer left shard %d with non-positive budget %d", i, b)
			}
			sum += b
		}
		if sum != capacity {
			return failf(cfg.Seed, step, "shard budgets %v sum to %d, want exactly the global capacity %d",
				budgets, sum, capacity)
		}
		shadow.SetBudgets(budgets)
		return nil
	}

	event := func(mean int) bool {
		return mean > 0 && rng.Float64() < 1/float64(mean)
	}

	for step := 0; step < cfg.Steps; step++ {
		if event(cfg.RebalanceEvery) {
			sm.Rebalance()
			if f := auditBudgets(step); f != nil {
				return rep, f
			}
			if err := sm.CheckIntegrity(); err != nil {
				return rep, failf(cfg.Seed, step, "integrity after rebalance: %v", err)
			}
			if f := shadow.Err(); f != nil {
				return rep, f
			}
		}
		if event(cfg.PruneEvery) {
			if _, err := sm.Prune(0.5, 2); err != nil {
				return rep, failf(cfg.Seed, step, "prune: %v", err)
			}
			if err := sm.CheckIntegrity(); err != nil {
				return rep, failf(cfg.Seed, step, "integrity after prune: %v", err)
			}
			if f := shadow.Err(); f != nil {
				return rep, f
			}
		}

		s := stream.Next()
		shard := sm.ShardFor(s)
		if shard < 0 || shard >= n {
			return rep, failf(cfg.Seed, step, "router returned shard %d outside [0,%d)", shard, n)
		}
		oracles[shard].StartAt(step)
		if _, f := oracles[shard].Step(s); f != nil {
			return rep, f
		}
		if f := shadow.Err(); f != nil {
			return rep, f
		}
		rep.Steps++
	}

	if f := shadow.Final(); f != nil {
		return rep, f
	}
	if f := auditBudgets(cfg.Steps); f != nil {
		return rep, f
	}
	live := sm.ExportState()
	if err := shadow.VerifyState(mcfg, live); err != nil {
		return rep, failf(cfg.Seed, cfg.Steps, "%v", err)
	}

	bal := sm.BalancerStats()
	rep.Stats = sm.Stats()
	rep.Images = sm.Len()
	rep.Rebalances = bal.Rebalances
	rep.Evicted = bal.Evicted
	rep.StateHash = StateHash(live)
	return rep, nil
}
