package check

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Shadow validates a ConcurrentManager through its commit hook: it
// maintains its own copy of the cache from the mutation stream alone
// and checks, at each mutation, the properties the concurrent pipeline
// guarantees — mutations arrive in exactly logical-clock order (the
// linearization the WAL depends on), merges only grow images, deletes
// pick the LRU victim, and the capacity bound holds whenever a
// request's eviction pass has completed.
//
// Install it with core.Manager.SetCommitHook (chaining any existing
// hook, e.g. the persist store) before serving traffic. All methods
// are safe for concurrent use; the hook itself runs under the locks
// the ConcurrentManager already holds, so the Shadow's own mutex is
// uncontended in practice.
type Shadow struct {
	repo     *pkggraph.Repo
	capacity int64
	seed     int64
	next     core.CommitHook // chained hook, may be nil

	mu        sync.Mutex
	images    map[uint64]*shadowImg
	total     int64
	lastStamp uint64            // clock of the most recent stamped mutation
	lastImage uint64            // image stamped by it (eviction must spare it)
	lastKind  core.MutationKind // kind of the most recent stamped mutation
	muts      []core.Mutation
	failure   *Failure
}

type shadowImg struct {
	spec    spec.Spec
	size    int64
	lastUse uint64
	version uint64
}

// NewShadow creates a Shadow for a manager over repo with the given
// byte capacity (zero or negative = unlimited). next, if non-nil,
// receives every mutation after validation — chain the persist store
// here so the WAL sees the identical stream.
func NewShadow(repo *pkggraph.Repo, capacity int64, seed int64, next core.CommitHook) *Shadow {
	return &Shadow{
		repo:      repo,
		capacity:  capacity,
		seed:      seed,
		next:      next,
		images:    make(map[uint64]*shadowImg),
		lastImage: ^uint64(0),
	}
}

// LoadState seeds the shadow with a recovered manager state, so a
// post-crash shadow validates the continuation instead of expecting an
// empty cache. Must be called before any mutation flows.
func (sh *Shadow) LoadState(base core.ManagerState) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, snap := range base.Images {
		s := sh.specOf(snap.Packages)
		sh.images[snap.ID] = &shadowImg{spec: s, size: s.Size(sh.repo), lastUse: snap.LastUse, version: snap.Version}
		sh.total += s.Size(sh.repo)
	}
	sh.lastStamp = base.Clock
	sh.lastImage = ^uint64(0)
	// A recovered cache may legitimately exceed capacity (e.g. the WAL
	// was cut between a merge and its evictions); the bound is only
	// re-established by the next merge or insert, so leave lastKind
	// unset and let that mutation restart capacity checking.
	sh.lastKind = ""
}

// Err returns the first recorded violation, or nil.
func (sh *Shadow) Err() *Failure {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.failure
}

// Mutations returns the validated mutation stream so far. The returned
// slice must not be mutated.
func (sh *Shadow) Mutations() []core.Mutation {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.muts
}

// Len returns the number of mutations observed.
func (sh *Shadow) Len() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.muts)
}

// failf records the first violation; later mutations still flow to the
// chained hook so the system under test keeps running.
func (sh *Shadow) failf(format string, args ...any) {
	if sh.failure == nil {
		sh.failure = failf(sh.seed, len(sh.muts), format, args...)
	}
}

// Commit implements core.CommitHook.
func (sh *Shadow) Commit(mut core.Mutation) {
	sh.mu.Lock()
	sh.check(mut)
	sh.apply(mut)
	sh.muts = append(sh.muts, mut)
	sh.mu.Unlock()
	if sh.next != nil {
		sh.next.Commit(mut)
	}
}

// stamped reports whether the mutation carries a request's clock value
// (touches, merges, inserts — one per request). Deletes ride the
// request that caused them; splits come from prune passes.
func stamped(kind core.MutationKind) bool {
	switch kind {
	case core.MutTouch, core.MutMerge, core.MutInsert:
		return true
	}
	return false
}

// evicts reports whether the request that emitted this stamped
// mutation runs the eviction pass afterwards (hits never evict).
func evicts(kind core.MutationKind) bool {
	return kind == core.MutMerge || kind == core.MutInsert
}

// check validates mut against the shadow state (sh.mu held).
func (sh *Shadow) check(mut core.Mutation) {
	if stamped(mut.Kind) {
		// Total order: the commit hook runs before the lock that
		// stamped the clock is released, so mutations must arrive in
		// exactly clock order with no gaps — the property WAL replay
		// depends on.
		if mut.LastUse != sh.lastStamp+1 {
			sh.failf("%s of image %d stamped %d, want %d (commit-hook ordering / linearization violated)",
				mut.Kind, mut.ImageID, mut.LastUse, sh.lastStamp+1)
		}
		// The previous request's eviction pass has completed by the
		// time the next stamped mutation runs (it held the same lock),
		// so the capacity bound must hold here. Hits never evict, so
		// the bound is only guaranteed once a merge or insert has run
		// the eviction pass (a recovered cache may start oversized).
		if sh.capacity > 0 && evicts(sh.lastKind) && sh.total > sh.capacity && len(sh.images) > 1 {
			sh.failf("cache at %d bytes exceeds capacity %d with %d images at the next request",
				sh.total, sh.capacity, len(sh.images))
		}
	}
	img := sh.images[mut.ImageID]
	switch mut.Kind {
	case core.MutTouch:
		if img == nil {
			sh.failf("touch of unknown image %d", mut.ImageID)
		}
	case core.MutInsert:
		if img != nil {
			sh.failf("insert of already-live image %d", mut.ImageID)
		}
		if len(mut.Packages) == 0 {
			sh.failf("insert of image %d with no packages", mut.ImageID)
		}
	case core.MutMerge:
		if img == nil {
			sh.failf("merge into unknown image %d", mut.ImageID)
			return
		}
		merged := sh.specOf(mut.Packages)
		if !img.spec.SubsetOf(merged) {
			sh.failf("merge shrank image %d (new spec is not a superset of the old)", mut.ImageID)
		}
		if mut.Version != img.version+1 {
			sh.failf("merge left image %d at version %d, want %d", mut.ImageID, mut.Version, img.version+1)
		}
	case core.MutDelete:
		if img == nil {
			sh.failf("delete of unknown image %d", mut.ImageID)
			return
		}
		// The victim must be the least-recently-used image, never the
		// one the in-flight request just used.
		if mut.ImageID == sh.lastImage {
			sh.failf("evicted image %d, the image the in-flight request just used", mut.ImageID)
		}
		oldest, oldestID := img.lastUse, mut.ImageID
		for id, other := range sh.images {
			if id == mut.ImageID || id == sh.lastImage {
				continue
			}
			if other.lastUse < oldest || (other.lastUse == oldest && id < oldestID) {
				oldest, oldestID = other.lastUse, id
			}
		}
		if oldestID != mut.ImageID {
			sh.failf("evicted image %d (lastUse %d) while image %d (lastUse %d) is older — not the LRU victim",
				mut.ImageID, img.lastUse, oldestID, oldest)
		}
	case core.MutSplit:
		if img == nil {
			sh.failf("split of unknown image %d", mut.ImageID)
		}
	default:
		sh.failf("unknown mutation kind %q", mut.Kind)
	}
}

// apply folds mut into the shadow state (sh.mu held).
func (sh *Shadow) apply(mut core.Mutation) {
	if stamped(mut.Kind) {
		if mut.LastUse > sh.lastStamp {
			sh.lastStamp = mut.LastUse
		}
		sh.lastImage = mut.ImageID
		sh.lastKind = mut.Kind
	}
	switch mut.Kind {
	case core.MutTouch:
		if img := sh.images[mut.ImageID]; img != nil {
			img.lastUse = mut.LastUse
		}
	case core.MutInsert:
		s := sh.specOf(mut.Packages)
		sh.images[mut.ImageID] = &shadowImg{spec: s, size: s.Size(sh.repo), lastUse: mut.LastUse, version: mut.Version}
		sh.total += s.Size(sh.repo)
	case core.MutMerge, core.MutSplit:
		if img := sh.images[mut.ImageID]; img != nil {
			s := sh.specOf(mut.Packages)
			sh.total += s.Size(sh.repo) - img.size
			img.spec = s
			img.size = s.Size(sh.repo)
			img.version = mut.Version
			if mut.Kind == core.MutMerge {
				img.lastUse = mut.LastUse
			}
		}
	case core.MutDelete:
		if img := sh.images[mut.ImageID]; img != nil {
			sh.total -= img.size
			delete(sh.images, mut.ImageID)
		}
	}
}

// specOf resolves package keys; unknown keys are themselves a
// violation (the stream must be self-describing).
func (sh *Shadow) specOf(keys []string) spec.Spec {
	ids := make([]pkggraph.PkgID, 0, len(keys))
	for _, key := range keys {
		id, ok := sh.repo.Lookup(key)
		if !ok {
			sh.failf("mutation names unknown package %q", key)
			continue
		}
		ids = append(ids, id)
	}
	return spec.New(ids)
}

// Final runs the end-of-run checks: the capacity bound (no in-flight
// request can excuse an overflow once traffic has stopped) and any
// deferred violation.
func (sh *Shadow) Final() *Failure {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failure != nil {
		return sh.failure
	}
	if sh.capacity > 0 && evicts(sh.lastKind) && sh.total > sh.capacity && len(sh.images) > 1 {
		sh.failure = failf(sh.seed, len(sh.muts), "cache at %d bytes exceeds capacity %d with %d images after the run",
			sh.total, sh.capacity, len(sh.images))
	}
	return sh.failure
}

// VerifyState replays the observed mutation stream into a fresh
// manager and compares the resulting state with the live manager's
// exported state — the same equivalence crash recovery relies on,
// checked without a crash. base carries the state the stream started
// from (zero value for an initially empty cache).
func (sh *Shadow) VerifyState(mcfg core.Config, base, live core.ManagerState) error {
	sh.mu.Lock()
	muts := make([]core.Mutation, len(sh.muts))
	copy(muts, sh.muts)
	sh.mu.Unlock()

	mcfg.Commit = nil
	mcfg.Tracer = nil
	replayer, err := core.NewManager(sh.repo, mcfg)
	if err != nil {
		return err
	}
	if len(base.Images) > 0 || base.Clock > 0 {
		if err := replayer.ImportState(base); err != nil {
			return fmt.Errorf("check: importing base state: %w", err)
		}
	}
	for i, mut := range muts {
		if err := replayer.ApplyMutation(mut); err != nil {
			return fmt.Errorf("check: replaying mutation %d (%s of image %d): %w", i, mut.Kind, mut.ImageID, err)
		}
	}
	if err := statesEqual(replayer.ExportState(), live); err != nil {
		return fmt.Errorf("check: replayed state diverges from live state: %w", err)
	}
	return nil
}
