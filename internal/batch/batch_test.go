package batch

import (
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func testRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	return pkggraph.MustGenerate(cfg, 42)
}

func testSystem(t testing.TB, alpha float64) (*System, *pkggraph.Repo, *core.Manager) {
	t.Helper()
	repo := testRepo(t)
	mgr := core.MustNewManager(repo, core.Config{Alpha: alpha, MinHash: core.DefaultMinHash()})
	sys, err := NewSystem(repo, mgr, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return sys, repo, mgr
}

func job(repo *pkggraph.Repo, name string, picks ...pkggraph.PkgID) Job {
	return Job{Name: name, Spec: spec.WithClosure(repo, picks), RunTime: time.Minute}
}

func TestDrainExecutesFIFO(t *testing.T) {
	sys, repo, mgr := testSystem(t, 0.8)
	sys.Submit(job(repo, "gen", 160))
	sys.Submit(job(repo, "sim", 161))
	sys.Submit(job(repo, "gen-rerun", 160))
	if sys.Queued() != 3 {
		t.Fatalf("Queued = %d", sys.Queued())
	}
	recs, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || sys.Queued() != 0 {
		t.Fatalf("drained %d, queued %d", len(recs), sys.Queued())
	}
	if recs[0].Job != "gen" || recs[2].Job != "gen-rerun" {
		t.Fatal("FIFO order violated")
	}
	if recs[0].Op != core.OpInsert {
		t.Fatalf("first job op = %v", recs[0].Op)
	}
	if recs[2].Op != core.OpHit {
		t.Fatalf("re-run op = %v, want hit", recs[2].Op)
	}
	if mgr.Stats().Requests != 3 {
		t.Fatal("manager did not see all jobs")
	}
	if len(sys.Completed()) != 3 {
		t.Fatal("Completed not recorded")
	}
}

func TestDrainWritesParsableLogs(t *testing.T) {
	sys, repo, _ := testSystem(t, 0.8)
	original := job(repo, "trace-me", 170, 171)
	sys.Submit(original)
	recs, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(recs[0].LogPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "job trace-me starting") || !strings.Contains(text, "completed in") {
		t.Fatalf("log missing framing:\n%s", text)
	}
	// The paper's loop: derive the next submission's spec from the log.
	derived, err := DeriveSpec(recs[0].LogPath, repo)
	if err != nil {
		t.Fatal(err)
	}
	if !derived.Equal(original.Spec) {
		t.Fatalf("derived spec differs: %d vs %d packages", derived.Len(), original.Spec.Len())
	}
}

func TestDeriveSpecErrors(t *testing.T) {
	repo := testRepo(t)
	if _, err := DeriveSpec("/nonexistent.log", repo); err == nil {
		t.Error("missing log accepted")
	}
	dir := t.TempDir()
	empty := dir + "/empty.log"
	os.WriteFile(empty, []byte("no packages here\n"), 0o644)
	if _, err := DeriveSpec(empty, repo); err == nil {
		t.Error("log without packages accepted")
	}
	ghost := dir + "/ghost.log"
	os.WriteFile(ghost, []byte("landlord: using package ghost/1/p\n"), 0o644)
	if _, err := DeriveSpec(ghost, repo); err == nil {
		t.Error("log with unknown package accepted")
	}
}

func TestDrainStopsAtInvalidJob(t *testing.T) {
	sys, repo, _ := testSystem(t, 0.8)
	sys.Submit(job(repo, "ok", 160))
	sys.Submit(Job{Name: "", Spec: spec.New([]pkggraph.PkgID{1})})
	sys.Submit(job(repo, "after", 161))
	recs, err := sys.Drain()
	if err == nil {
		t.Fatal("expected error for nameless job")
	}
	if len(recs) != 1 {
		t.Fatalf("completed %d before failing, want 1", len(recs))
	}
	if sys.Queued() != 2 {
		t.Fatalf("queued = %d, want 2 (failed job + successor)", sys.Queued())
	}
}

func TestDrainRejectsEmptySpec(t *testing.T) {
	sys, _, _ := testSystem(t, 0.8)
	sys.Submit(Job{Name: "empty", Spec: spec.Spec{}})
	if _, err := sys.Drain(); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestNewSystemBadLogDir(t *testing.T) {
	repo := testRepo(t)
	mgr := core.MustNewManager(repo, core.Config{Alpha: 0.5})
	// A file where the directory should be.
	path := t.TempDir() + "/file"
	os.WriteFile(path, []byte("x"), 0o644)
	if _, err := NewSystem(repo, mgr, path); err == nil {
		t.Fatal("file as log dir accepted")
	}
}

// TestTraceLoopAcrossGenerations runs the paper's full wrapper loop:
// generation 1 jobs run from hand specs, generation 2 derives its
// specs from generation 1's logs and benefits from the warm cache.
func TestTraceLoopAcrossGenerations(t *testing.T) {
	sys, repo, mgr := testSystem(t, 0.8)
	gen1 := []Job{job(repo, "a", 180), job(repo, "b", 181)}
	for _, j := range gen1 {
		sys.Submit(j)
	}
	recs, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := mgr.Stats().Hits
	for i, rec := range recs {
		derived, err := DeriveSpec(rec.LogPath, repo)
		if err != nil {
			t.Fatal(err)
		}
		sys.Submit(Job{Name: rec.Job + "-gen2", Spec: derived, RunTime: time.Minute})
		_ = i
	}
	recs2, err := sys.Drain()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs2 {
		if rec.Op != core.OpHit {
			t.Errorf("generation-2 job %q did not hit (op=%v)", rec.Job, rec.Op)
		}
	}
	if mgr.Stats().Hits != hitsBefore+int64(len(recs2)) {
		t.Error("generation 2 should be all hits")
	}
}
