// Package batch integrates LANDLORD with a minimal batch/pilot-job
// system, the deployment mode of Section V: "researchers would also
// set up their particular submission systems to wrap invoked jobs",
// and when static specifications are unavailable, "runtime tracing
// (possibly over multiple runs...)" recovers them from job logs.
//
// A System drains a FIFO queue of jobs through the LANDLORD wrapper:
// each job's specification is requested from the cache manager, the
// job "runs" (simulated) in the prepared image, and a per-job log is
// written recording every package used — in exactly the format
// specscan.ScanJobLog parses, closing the paper's trace-derivation
// loop: run once with a hand spec, derive future specs from the log.
package batch

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/specscan"
)

// Job is one queued unit of work.
type Job struct {
	// Name identifies the job; it becomes the log file name, so it
	// must be non-empty and unique within a drain.
	Name string
	// Spec is the job's container specification (already
	// dependency-closed).
	Spec spec.Spec
	// RunTime is the simulated execution duration, accumulated into
	// the record for throughput accounting.
	RunTime time.Duration
}

// Record is the outcome of one executed job.
type Record struct {
	Job          string
	Op           core.Op
	ImageID      uint64
	ImageSize    int64
	BytesWritten int64
	RunTime      time.Duration
	LogPath      string
}

// System is a FIFO batch queue draining through a LANDLORD manager.
// It is not safe for concurrent use; wrap it (or use internal/server)
// for multi-submitter deployments.
type System struct {
	repo   *pkggraph.Repo
	mgr    *core.Manager
	logDir string
	queue  []Job
	done   []Record
}

// NewSystem creates a batch system writing job logs under logDir
// (created if absent).
func NewSystem(repo *pkggraph.Repo, mgr *core.Manager, logDir string) (*System, error) {
	if err := os.MkdirAll(logDir, 0o755); err != nil {
		return nil, fmt.Errorf("batch: creating log dir: %w", err)
	}
	return &System{repo: repo, mgr: mgr, logDir: logDir}, nil
}

// Submit queues a job. Validation happens at drain time, when the
// failure can be recorded against the job.
func (s *System) Submit(job Job) {
	s.queue = append(s.queue, job)
}

// Queued returns the number of jobs waiting.
func (s *System) Queued() int { return len(s.queue) }

// Completed returns the records of all drained jobs, oldest first.
func (s *System) Completed() []Record { return s.done }

// Drain executes every queued job in order. It stops at the first
// failure, leaving the remaining jobs queued, and returns the records
// of the jobs completed by this call.
func (s *System) Drain() ([]Record, error) {
	var out []Record
	for len(s.queue) > 0 {
		job := s.queue[0]
		if job.Name == "" {
			return out, fmt.Errorf("batch: job %d has no name", len(s.done))
		}
		if job.Spec.Empty() {
			return out, fmt.Errorf("batch: job %q has an empty specification", job.Name)
		}
		res, err := s.mgr.Request(job.Spec)
		if err != nil {
			return out, fmt.Errorf("batch: job %q: %w", job.Name, err)
		}
		logPath := filepath.Join(s.logDir, job.Name+".log")
		if err := s.writeLog(logPath, job, res); err != nil {
			return out, err
		}
		rec := Record{
			Job:          job.Name,
			Op:           res.Op,
			ImageID:      res.ImageID,
			ImageSize:    res.ImageSize,
			BytesWritten: res.BytesWritten,
			RunTime:      job.RunTime,
			LogPath:      logPath,
		}
		s.queue = s.queue[1:]
		s.done = append(s.done, rec)
		out = append(out, rec)
	}
	return out, nil
}

// writeLog emits the job's execution log, including the
// "landlord: using package <key>" lines that specscan.ScanJobLog
// recovers specifications from.
func (s *System) writeLog(path string, job Job, res core.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("batch: writing log for %q: %w", job.Name, err)
	}
	fmt.Fprintf(f, "job %s starting\n", job.Name)
	fmt.Fprintf(f, "landlord: %s image %d (%d bytes)\n", res.Op, res.ImageID, res.ImageSize)
	for _, id := range job.Spec.IDs() {
		fmt.Fprintf(f, "landlord: using package %s\n", s.repo.Package(id).Key())
	}
	fmt.Fprintf(f, "job %s completed in %v (simulated)\n", job.Name, job.RunTime)
	return f.Close()
}

// DeriveSpec recovers a job's specification from a log written by a
// previous Drain — the paper's runtime-tracing fallback. The returned
// spec is dependency-closed.
func DeriveSpec(logPath string, repo *pkggraph.Repo) (spec.Spec, error) {
	data, err := os.ReadFile(logPath)
	if err != nil {
		return spec.Spec{}, fmt.Errorf("batch: reading log: %w", err)
	}
	tokens := specscan.ScanJobLog(string(data))
	s, missing, err := specscan.Resolve(tokens, nil, repo)
	if err != nil {
		return spec.Spec{}, fmt.Errorf("batch: deriving spec from %s: %w", logPath, err)
	}
	if len(missing) > 0 {
		return spec.Spec{}, fmt.Errorf("batch: log %s references %d unknown packages (first: %q)",
			logPath, len(missing), missing[0])
	}
	return s, nil
}
