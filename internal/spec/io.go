package spec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/pkggraph"
)

// Write renders the specification as text: one package key per line, in
// a stable (key-sorted) order, so that equal specs serialize
// identically. This is the format cmd/landlord and cmd/specgen exchange.
func (s Spec) Write(w io.Writer, repo *pkggraph.Repo) error {
	keys := make([]string, 0, len(s.ids))
	for _, id := range s.ids {
		keys = append(keys, repo.Package(id).Key())
	}
	sort.Strings(keys)
	bw := bufio.NewWriter(w)
	for _, k := range keys {
		if _, err := fmt.Fprintln(bw, k); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// String renders the spec compactly for logs: up to eight keys followed
// by an ellipsis with the total count.
func (s Spec) String() string {
	return fmt.Sprintf("spec(%d packages, hash %016x)", len(s.ids), s.Hash())
}

// Parse reads a textual specification: one package key per line, with
// blank lines and lines starting with '#' ignored. Unknown keys are an
// error; a specification that cannot be satisfied from the repository
// must be rejected before it reaches the cache manager.
func Parse(r io.Reader, repo *pkggraph.Repo) (Spec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ids []pkggraph.PkgID
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, ok := repo.Lookup(text)
		if !ok {
			return Spec{}, fmt.Errorf("spec: line %d: unknown package %q", line, text)
		}
		ids = append(ids, id)
	}
	if err := sc.Err(); err != nil {
		return Spec{}, fmt.Errorf("spec: reading: %w", err)
	}
	return New(ids), nil
}

// ParseString is Parse over an in-memory string.
func ParseString(text string, repo *pkggraph.Repo) (Spec, error) {
	return Parse(strings.NewReader(text), repo)
}
