package spec

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pkggraph"
)

func ids(vs ...pkggraph.PkgID) []pkggraph.PkgID { return vs }

func TestNewSortsAndDedups(t *testing.T) {
	s := New(ids(3, 1, 2, 3, 1))
	want := ids(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, id := range s.IDs() {
		if id != want[i] {
			t.Fatalf("IDs = %v, want %v", s.IDs(), want)
		}
	}
}

func TestNewEmpty(t *testing.T) {
	s := New(nil)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("New(nil) should be empty")
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := ids(2, 1)
	s := New(in)
	in[0] = 99
	if s.Contains(99) {
		t.Fatal("New aliased caller slice")
	}
}

func TestFromSortedPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted(ids(2, 1))
}

func TestFromSortedPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted(ids(1, 1))
}

func TestContains(t *testing.T) {
	s := New(ids(1, 5, 9))
	for _, id := range []pkggraph.PkgID{1, 5, 9} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false", id)
		}
	}
	for _, id := range []pkggraph.PkgID{0, 2, 10} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true", id)
		}
	}
}

func TestEqual(t *testing.T) {
	a := New(ids(1, 2))
	b := New(ids(2, 1))
	c := New(ids(1, 2, 3))
	if !a.Equal(b) {
		t.Error("a should equal b")
	}
	if a.Equal(c) || c.Equal(a) {
		t.Error("a should not equal c")
	}
	if !(Spec{}).Equal(Spec{}) {
		t.Error("empty specs should be equal")
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		s, t []pkggraph.PkgID
		want bool
	}{
		{nil, nil, true},
		{nil, ids(1), true},
		{ids(1), nil, false},
		{ids(1, 3), ids(1, 2, 3), true},
		{ids(1, 4), ids(1, 2, 3), false},
		{ids(1, 2, 3), ids(1, 2, 3), true},
		{ids(0), ids(1, 2), false},
		{ids(3), ids(1, 2), false},
	}
	for _, c := range cases {
		if got := New(c.s).SubsetOf(New(c.t)); got != c.want {
			t.Errorf("SubsetOf(%v, %v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := New(ids(1, 2, 3))
	b := New(ids(3, 4))
	if u := a.Union(b); u.Len() != 4 || !u.Contains(4) || !u.Contains(1) {
		t.Errorf("Union = %v", u.IDs())
	}
	if x := a.Intersect(b); x.Len() != 1 || !x.Contains(3) {
		t.Errorf("Intersect = %v", x.IDs())
	}
	if d := a.Diff(b); d.Len() != 2 || d.Contains(3) {
		t.Errorf("Diff = %v", d.IDs())
	}
	if d := b.Diff(a); d.Len() != 1 || !d.Contains(4) {
		t.Errorf("Diff = %v", d.IDs())
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := New(ids(1, 2))
	if u := a.Union(Spec{}); !u.Equal(a) {
		t.Error("union with empty should be identity")
	}
	if u := (Spec{}).Union(a); !u.Equal(a) {
		t.Error("empty union should be identity")
	}
}

func TestIntersectionAndUnionLen(t *testing.T) {
	a := New(ids(1, 2, 3, 7))
	b := New(ids(2, 3, 9))
	if n := a.IntersectionLen(b); n != 2 {
		t.Errorf("IntersectionLen = %d, want 2", n)
	}
	if n := a.UnionLen(b); n != 5 {
		t.Errorf("UnionLen = %d, want 5", n)
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := New(ids(1, 2, 3))
	b := New(ids(1, 2, 4))
	c := New(ids(3, 2, 1))
	if a.Hash() == b.Hash() {
		t.Error("different specs hash equal")
	}
	if a.Hash() != c.Hash() {
		t.Error("equal specs hash differently")
	}
}

func TestSizeAgainstRepo(t *testing.T) {
	repo := testRepo(t)
	s := New(ids(0, 1))
	if got := s.Size(repo); got != 150 {
		t.Fatalf("Size = %d, want 150", got)
	}
}

func TestWithClosure(t *testing.T) {
	repo := testRepo(t)
	s := WithClosure(repo, ids(4))
	if s.Len() != 5 {
		t.Fatalf("closure spec has %d packages, want 5", s.Len())
	}
}

func TestString(t *testing.T) {
	s := New(ids(1, 2))
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// testRepo mirrors the tinyRepo in pkggraph's tests.
func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 100, FileCount: 10},
		{ID: 1, Name: "fw", Version: "1.0", Platform: "p", Tier: pkggraph.TierFramework, Size: 50, FileCount: 5, Deps: ids(0)},
		{ID: 2, Name: "libA", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 20, FileCount: 2, Deps: ids(1)},
		{ID: 3, Name: "libB", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 30, FileCount: 3, Deps: ids(1, 2)},
		{ID: 4, Name: "app", Version: "1.0", Platform: "p", Tier: pkggraph.TierApplication, Size: 10, FileCount: 1, Deps: ids(3)},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func specFromUints(vals []uint16, mod int) Spec {
	raw := make([]pkggraph.PkgID, len(vals))
	for i, v := range vals {
		raw[i] = pkggraph.PkgID(int(v) % mod)
	}
	return New(raw)
}

// Property: union is commutative and associative; intersection
// distributes the usual way; subset relations hold.
func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys, zs []uint16) bool {
		a := specFromUints(xs, 500)
		b := specFromUints(ys, 500)
		c := specFromUints(zs, 500)
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Union(b).Union(c).Equal(a.Union(b.Union(c))) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		u := a.Union(b)
		if !a.SubsetOf(u) || !b.SubsetOf(u) {
			return false
		}
		x := a.Intersect(b)
		if !x.SubsetOf(a) || !x.SubsetOf(b) {
			return false
		}
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Len() != a.Len()+b.Len()-x.Len() {
			return false
		}
		// Diff and intersect partition a.
		if a.Diff(b).Len()+x.Len() != a.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IDs are always sorted strictly increasing after New.
func TestCanonicalFormProperty(t *testing.T) {
	f := func(xs []uint16) bool {
		s := specFromUints(xs, 1<<16)
		got := s.IDs()
		return sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) &&
			func() bool {
				for i := 1; i < len(got); i++ {
					if got[i] == got[i-1] {
						return false
					}
				}
				return true
			}()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SubsetOf agrees with a map-based reference implementation.
func TestSubsetOfAgainstReference(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := specFromUints(widen(xs), 64)
		b := specFromUints(widen(ys), 64)
		inB := make(map[pkggraph.PkgID]bool)
		for _, id := range b.IDs() {
			inB[id] = true
		}
		want := true
		for _, id := range a.IDs() {
			if !inB[id] {
				want = false
				break
			}
		}
		return a.SubsetOf(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func widen(xs []uint8) []uint16 {
	out := make([]uint16, len(xs))
	for i, x := range xs {
		out[i] = uint16(x)
	}
	return out
}
