package spec

import (
	"math/rand"
	"testing"

	"repro/internal/pkggraph"
)

// bitsetRepo generates the realistic tiered repository the bitset tests
// share: large enough that the dense word array spans several words and
// the sparse/dense boundary sits at a non-trivial cardinality.
func bitsetRepo(tb testing.TB) *pkggraph.Repo {
	tb.Helper()
	gen := pkggraph.DefaultGenConfig()
	gen.CoreFamilies = 2
	gen.FrameworkFamilies = 6
	gen.LibraryFamilies = 18
	gen.ApplicationFamilies = 34
	return pkggraph.MustGenerate(gen, 1)
}

// specOfIDs builds a canonical Spec from raw id values (mod the repo
// size, so any byte soup maps to valid packages).
func specOfIDs(repo *pkggraph.Repo, raw []int) Spec {
	ids := make([]pkggraph.PkgID, 0, len(raw))
	for _, v := range raw {
		ids = append(ids, pkggraph.PkgID(v%repo.Len()))
	}
	return New(ids)
}

func TestInternRoundTrip(t *testing.T) {
	repo := bitsetRepo(t)
	it := NewInterner(repo)
	if it.Universe() != repo.Len() {
		t.Fatalf("universe %d != repo size %d", it.Universe(), repo.Len())
	}
	if want := (repo.Len() + 63) / 64; it.Words() != want {
		t.Fatalf("words %d != %d", it.Words(), want)
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(repo.Len())
		raw := make([]int, n)
		for i := range raw {
			raw[i] = rng.Intn(repo.Len())
		}
		s := specOfIDs(repo, raw)
		b := it.BitsetOf(s)
		if b.Card() != s.Len() {
			t.Fatalf("trial %d: card %d != len %d", trial, b.Card(), s.Len())
		}
		if !it.SpecOf(b).Equal(s) {
			t.Fatalf("trial %d: round trip changed the spec", trial)
		}
	}

	// The empty spec interns to the empty set in either direction.
	empty := it.BitsetOf(Spec{})
	if empty.Card() != 0 || !it.SpecOf(empty).Empty() {
		t.Fatalf("empty spec did not round-trip empty")
	}
}

func TestBitsetSparseDenseBoundary(t *testing.T) {
	repo := bitsetRepo(t)
	it := NewInterner(repo)
	max := it.sparseMax()
	if max < 2 || max >= repo.Len() {
		t.Fatalf("sparseMax %d gives no boundary to test (repo %d)", max, repo.Len())
	}
	for _, n := range []int{1, max - 1, max, max + 1, max + 2} {
		ids := make([]pkggraph.PkgID, n)
		for i := range ids {
			ids[i] = pkggraph.PkgID(i)
		}
		b := it.BitsetOf(New(ids))
		wantDense := n > max
		if b.Dense() != wantDense {
			t.Fatalf("card %d (boundary %d): Dense()=%v, want %v", n, max, b.Dense(), wantDense)
		}
		// The split exists to minimize footprint: at every cardinality the
		// chosen form must not exceed the other form's payload.
		sparseBytes, denseBytes := 4*n, 8*it.Words()
		if b.Dense() && denseBytes > sparseBytes {
			t.Fatalf("card %d stored dense (%dB) though sparse is smaller (%dB)", n, denseBytes, sparseBytes)
		}
		if !b.Dense() && sparseBytes > denseBytes {
			t.Fatalf("card %d stored sparse (%dB) though dense is smaller (%dB)", n, sparseBytes, denseBytes)
		}
		if b.MemoryBytes() != min(sparseBytes, denseBytes) {
			t.Fatalf("card %d MemoryBytes %d, want %d", n, b.MemoryBytes(), min(sparseBytes, denseBytes))
		}
	}
}

// TestBitsetOpsMatchSpec drives both bitset forms against the Spec
// reference operations across random set pairs: containment and
// intersection cardinality must agree exactly, whatever the layout.
func TestBitsetOpsMatchSpec(t *testing.T) {
	repo := bitsetRepo(t)
	it := NewInterner(repo)
	rng := rand.New(rand.NewSource(11))
	var words []uint64
	for trial := 0; trial < 400; trial++ {
		rawA := make([]int, 1+rng.Intn(repo.Len()/2))
		for i := range rawA {
			rawA[i] = rng.Intn(repo.Len())
		}
		a := specOfIDs(repo, rawA)
		var b Spec
		switch trial % 3 {
		case 0: // arbitrary second set
			rawB := make([]int, rng.Intn(repo.Len()/2))
			for i := range rawB {
				rawB[i] = rng.Intn(repo.Len())
			}
			b = specOfIDs(repo, rawB)
		case 1: // superset of a — the hit-path shape
			extra := make([]pkggraph.PkgID, 0, a.Len()+8)
			extra = append(extra, a.IDs()...)
			for i := 0; i < 8; i++ {
				extra = append(extra, pkggraph.PkgID(rng.Intn(repo.Len())))
			}
			b = New(extra)
		default: // strict subset of a
			cut := a.IDs()[:rng.Intn(a.Len())]
			b = New(append([]pkggraph.PkgID(nil), cut...))
		}
		words = it.DenseInto(words, a)
		bb := it.BitsetOf(b)
		if got, want := bb.SupersetOfWords(words, a.Len()), a.SubsetOf(b); got != want {
			t.Fatalf("trial %d: SupersetOfWords=%v, SubsetOf=%v (|a|=%d |b|=%d dense=%v)",
				trial, got, want, a.Len(), b.Len(), bb.Dense())
		}
		if got, want := bb.IntersectWords(words), a.IntersectionLen(b); got != want {
			t.Fatalf("trial %d: IntersectWords=%d, IntersectionLen=%d", trial, got, want)
		}
	}
}

// TestAliasCollision pins what the landlord_mutants "intern" seed bug
// does: after Alias(1, 0), package 1 becomes indistinguishable from
// package 0, so round trips rewrite it and cardinalities shrink —
// exactly the corruption CheckIntegrity's round-trip audit detects.
func TestAliasCollision(t *testing.T) {
	repo := bitsetRepo(t)
	it := NewInterner(repo)
	it.Alias(1, 0)

	only1 := New([]pkggraph.PkgID{1})
	if got := it.SpecOf(it.BitsetOf(only1)); !got.Equal(New([]pkggraph.PkgID{0})) {
		t.Fatalf("aliased {1} round-tripped to %v, want {0}", got.IDs())
	}
	both := New([]pkggraph.PkgID{0, 1})
	if b := it.BitsetOf(both); b.Card() != 1 {
		t.Fatalf("aliased {0,1} has cardinality %d, want 1", b.Card())
	}
	// An untouched interner keeps them distinct.
	fresh := NewInterner(repo)
	if b := fresh.BitsetOf(both); b.Card() != 2 {
		t.Fatalf("fresh {0,1} has cardinality %d, want 2", b.Card())
	}
}

// TestDenseIntoReuse pins the pooling contract: refilling a previously
// used buffer must clear every stale bit.
func TestDenseIntoReuse(t *testing.T) {
	repo := bitsetRepo(t)
	it := NewInterner(repo)
	big := make([]pkggraph.PkgID, repo.Len())
	for i := range big {
		big[i] = pkggraph.PkgID(i)
	}
	words := it.DenseInto(nil, New(big))
	small := New([]pkggraph.PkgID{3})
	words = it.DenseInto(words, small)
	set := 0
	for _, w := range words {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	if set != 1 {
		t.Fatalf("reused buffer holds %d bits, want 1", set)
	}
	if !it.SpecOf(it.BitsetOf(small)).Equal(small) {
		t.Fatalf("small spec round trip failed")
	}
}
