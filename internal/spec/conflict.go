package spec

import "repro/internal/pkggraph"

// ConflictPolicy decides whether two specifications may be merged. The
// paper notes that Jaccard similarity "does not capture conflicts
// between components" and that compatibility checking is package-manager
// specific; the policy is therefore pluggable and applied after distance
// prioritization, exactly as Section V prescribes.
type ConflictPolicy interface {
	// Conflicts reports whether merging a and b would produce an
	// unsatisfiable or broken image.
	Conflicts(a, b Spec) bool
}

// NoConflicts is the policy for CVMFS-style append-only repositories,
// where all versions coexist: "For LHC applications this is a non-issue,
// since CVMFS is normally append-only and all previous versions remain
// available."
type NoConflicts struct{}

// Conflicts always reports false.
func (NoConflicts) Conflicts(a, b Spec) bool { return false }

// SingleVersionPolicy models package managers in which certain families
// (for example, a Python interpreter installed at a fixed prefix) admit
// only one version per environment. Merging two specs that pin
// different versions of such a family is a conflict.
type SingleVersionPolicy struct {
	repo *pkggraph.Repo
	// exclusive holds the family names that cannot coexist in multiple
	// versions. When nil, every family is exclusive.
	exclusive map[string]bool
}

// NewSingleVersionPolicy builds a policy over repo. If families is
// empty, every package family is treated as single-version.
func NewSingleVersionPolicy(repo *pkggraph.Repo, families ...string) *SingleVersionPolicy {
	p := &SingleVersionPolicy{repo: repo}
	if len(families) > 0 {
		p.exclusive = make(map[string]bool, len(families))
		for _, f := range families {
			p.exclusive[f] = true
		}
	}
	return p
}

func (p *SingleVersionPolicy) isExclusive(name string) bool {
	return p.exclusive == nil || p.exclusive[name]
}

// Conflicts reports whether a and b pin different versions of any
// exclusive family.
func (p *SingleVersionPolicy) Conflicts(a, b Spec) bool {
	// Map family -> version package chosen by a, then check b against
	// it. Only exclusive families participate.
	versions := make(map[string]pkggraph.PkgID)
	for _, id := range a.IDs() {
		pkg := p.repo.Package(id)
		if !p.isExclusive(pkg.Name) {
			continue
		}
		if prev, ok := versions[pkg.Name]; ok && prev != id {
			// a itself is internally conflicted; treat as conflicting
			// with everything so it is never merged.
			return true
		}
		versions[pkg.Name] = id
	}
	for _, id := range b.IDs() {
		pkg := p.repo.Package(id)
		if !p.isExclusive(pkg.Name) {
			continue
		}
		if prev, ok := versions[pkg.Name]; ok && prev != id {
			return true
		}
	}
	return false
}
