package spec

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pkggraph"
)

// versionedRepo has two versions of "py" plus an unrelated "lib".
func versionedRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "py", Version: "2.7", Platform: "p", Tier: pkggraph.TierCore, Size: 10, FileCount: 1},
		{ID: 1, Name: "py", Version: "3.8", Platform: "p", Tier: pkggraph.TierCore, Size: 10, FileCount: 1},
		{ID: 2, Name: "lib", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 5, FileCount: 1},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNoConflicts(t *testing.T) {
	a := New(ids(0))
	b := New(ids(1))
	if (NoConflicts{}).Conflicts(a, b) {
		t.Fatal("NoConflicts reported a conflict")
	}
}

func TestSingleVersionPolicyAllFamilies(t *testing.T) {
	repo := versionedRepo(t)
	p := NewSingleVersionPolicy(repo)
	py2 := New(ids(0, 2))
	py3 := New(ids(1, 2))
	if !p.Conflicts(py2, py3) {
		t.Error("different py versions should conflict")
	}
	if p.Conflicts(py2, py2) {
		t.Error("identical specs should not conflict")
	}
	if p.Conflicts(New(ids(2)), py3) {
		t.Error("disjoint families should not conflict")
	}
}

func TestSingleVersionPolicyScoped(t *testing.T) {
	repo := versionedRepo(t)
	p := NewSingleVersionPolicy(repo, "otherfamily")
	py2 := New(ids(0))
	py3 := New(ids(1))
	if p.Conflicts(py2, py3) {
		t.Error("py not in exclusive set; should not conflict")
	}
}

func TestSingleVersionPolicyInternallyConflicted(t *testing.T) {
	repo := versionedRepo(t)
	p := NewSingleVersionPolicy(repo)
	both := New(ids(0, 1))
	if !p.Conflicts(both, New(ids(2))) {
		t.Error("internally conflicted spec should conflict with anything")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	repo := versionedRepo(t)
	orig := New(ids(0, 2))
	var buf bytes.Buffer
	if err := orig.Write(&buf, repo); err != nil {
		t.Fatalf("Write: %v", err)
	}
	parsed, err := Parse(&buf, repo)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("round trip mismatch: %v vs %v", parsed.IDs(), orig.IDs())
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	repo := versionedRepo(t)
	text := "# header\n\n  py/3.8/p  \n# trailing\nlib/1.0/p\n"
	s, err := ParseString(text, repo)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Len() != 2 || !s.Contains(1) || !s.Contains(2) {
		t.Fatalf("parsed %v", s.IDs())
	}
}

func TestParseRejectsUnknown(t *testing.T) {
	repo := versionedRepo(t)
	if _, err := ParseString("ghost/9.9/p\n", repo); err == nil {
		t.Fatal("expected error for unknown package")
	}
	if err := errString(t, repo); !strings.Contains(err, "line 1") {
		t.Fatalf("error should name the line: %q", err)
	}
}

func errString(t *testing.T, repo *pkggraph.Repo) string {
	t.Helper()
	_, err := ParseString("ghost/9.9/p\n", repo)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestParseDedups(t *testing.T) {
	repo := versionedRepo(t)
	s, err := ParseString("lib/1.0/p\nlib/1.0/p\n", repo)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("duplicate keys not deduped: %v", s.IDs())
	}
}
