// Package spec implements container specifications: declarative,
// unordered sets of package requirements.
//
// The paper's key insight (Section IV) is that specifications — unlike
// build recipes or built images — can be compared, reused when one is a
// subset of another, and automatically merged by taking unions. This
// package provides that algebra in canonical form: every Spec is a
// sorted, duplicate-free slice of pkggraph.PkgID, so subset, union,
// intersection and Jaccard computations are linear merge walks.
package spec

import (
	"hash/fnv"
	"sort"

	"repro/internal/pkggraph"
)

// Spec is an immutable set of required packages. The zero value is the
// empty specification. Specs are value types; copying is cheap (one
// slice header) and the underlying storage is never mutated after
// construction.
type Spec struct {
	ids []pkggraph.PkgID // sorted, unique
}

// New builds a Spec from ids, copying, sorting, and de-duplicating.
func New(ids []pkggraph.PkgID) Spec {
	if len(ids) == 0 {
		return Spec{}
	}
	s := make([]pkggraph.PkgID, len(ids))
	copy(s, ids)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return Spec{ids: out}
}

// FromSorted wraps an already sorted, duplicate-free slice without
// copying. The caller must not modify ids afterwards. It panics if the
// input is not strictly increasing, since silently accepting unsorted
// data would corrupt every set operation downstream.
func FromSorted(ids []pkggraph.PkgID) Spec {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			panic("spec: FromSorted input not strictly increasing")
		}
	}
	return Spec{ids: ids}
}

// WithClosure builds a Spec from the dependency closure of initial: the
// paper's image-request construction ("we chose a random selection of
// packages and then added the closure of the package dependencies").
func WithClosure(repo *pkggraph.Repo, initial []pkggraph.PkgID) Spec {
	return Spec{ids: repo.Closure(initial)}
}

// Len returns the number of packages in the specification.
func (s Spec) Len() int { return len(s.ids) }

// Empty reports whether the specification requires nothing.
func (s Spec) Empty() bool { return len(s.ids) == 0 }

// IDs returns the sorted package IDs. The returned slice is shared with
// the Spec and must not be modified.
func (s Spec) IDs() []pkggraph.PkgID { return s.ids }

// Contains reports whether the spec requires package id.
func (s Spec) Contains(id pkggraph.PkgID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	return i < len(s.ids) && s.ids[i] == id
}

// Equal reports whether two specs require exactly the same packages.
func (s Spec) Equal(t Spec) bool {
	if len(s.ids) != len(t.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != t.ids[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every package in s is also in t: the paper's
// reuse condition ("if a specification requires a subset of packages in
// a previously built image, we should be able to use the latter").
func (s Spec) SubsetOf(t Spec) bool {
	if len(s.ids) > len(t.ids) {
		return false
	}
	i, j := 0, 0
	for i < len(s.ids) {
		// Remaining needles must fit in the remaining haystack.
		if len(s.ids)-i > len(t.ids)-j {
			return false
		}
		switch {
		case j >= len(t.ids):
			return false
		case s.ids[i] == t.ids[j]:
			i++
			j++
		case s.ids[i] > t.ids[j]:
			j++
		default: // s.ids[i] < t.ids[j]: missing from t
			return false
		}
	}
	return true
}

// IntersectionLen returns |s ∩ t| without allocating.
func (s Spec) IntersectionLen(t Spec) int {
	i, j, n := 0, 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] == t.ids[j]:
			n++
			i++
			j++
		case s.ids[i] < t.ids[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// UnionLen returns |s ∪ t| without allocating.
func (s Spec) UnionLen(t Spec) int {
	return len(s.ids) + len(t.ids) - s.IntersectionLen(t)
}

// Union returns the merged specification s ∪ t: the paper's composite
// specification, usable in place of either constituent.
func (s Spec) Union(t Spec) Spec {
	if s.Empty() {
		return t
	}
	if t.Empty() {
		return s
	}
	out := make([]pkggraph.PkgID, 0, len(s.ids)+len(t.ids))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] == t.ids[j]:
			out = append(out, s.ids[i])
			i++
			j++
		case s.ids[i] < t.ids[j]:
			out = append(out, s.ids[i])
			i++
		default:
			out = append(out, t.ids[j])
			j++
		}
	}
	out = append(out, s.ids[i:]...)
	out = append(out, t.ids[j:]...)
	return Spec{ids: out}
}

// Intersect returns s ∩ t.
func (s Spec) Intersect(t Spec) Spec {
	out := make([]pkggraph.PkgID, 0, min(len(s.ids), len(t.ids)))
	i, j := 0, 0
	for i < len(s.ids) && j < len(t.ids) {
		switch {
		case s.ids[i] == t.ids[j]:
			out = append(out, s.ids[i])
			i++
			j++
		case s.ids[i] < t.ids[j]:
			i++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return Spec{}
	}
	return Spec{ids: out}
}

// Diff returns s \ t: packages required by s but not present in t.
func (s Spec) Diff(t Spec) Spec {
	out := make([]pkggraph.PkgID, 0, len(s.ids))
	i, j := 0, 0
	for i < len(s.ids) {
		switch {
		case j >= len(t.ids) || s.ids[i] < t.ids[j]:
			out = append(out, s.ids[i])
			i++
		case s.ids[i] == t.ids[j]:
			i++
			j++
		default:
			j++
		}
	}
	if len(out) == 0 {
		return Spec{}
	}
	return Spec{ids: out}
}

// Size returns the total installed size of the specification's packages.
func (s Spec) Size(repo *pkggraph.Repo) int64 {
	return repo.SetSize(s.ids)
}

// Hash returns a 64-bit FNV-1a hash of the canonical ID sequence,
// suitable for de-duplicating specs in workload generators and traces.
func (s Spec) Hash() uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, id := range s.ids {
		buf[0] = byte(id)
		buf[1] = byte(id >> 8)
		buf[2] = byte(id >> 16)
		buf[3] = byte(id >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
