package spec

import (
	"testing"

	"repro/internal/pkggraph"
)

// FuzzParse throws arbitrary text at the specification parser: it must
// never panic, and anything it accepts must round-trip through Write.
func FuzzParse(f *testing.F) {
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 10, FileCount: 1},
		{ID: 1, Name: "lib", Version: "2.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 5, FileCount: 1},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		f.Fatal(err)
	}
	f.Add("base/1.0/p\n")
	f.Add("# comment\nlib/2.0/p\n\nbase/1.0/p\n")
	f.Add("")
	f.Add("ghost/9/p\n")
	f.Add("base/1.0/p\x00\xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseString(input, repo)
		if err != nil {
			return
		}
		// Accepted specs are canonical and re-serializable.
		ids := s.IDs()
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("non-canonical spec from %q", input)
			}
		}
		var sb stringsBuilder
		if err := s.Write(&sb, repo); err != nil {
			t.Fatalf("Write failed on accepted spec: %v", err)
		}
		back, err := ParseString(sb.String(), repo)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !back.Equal(s) {
			t.Fatalf("round trip changed spec: %v vs %v", back.IDs(), s.IDs())
		}
	})
}

// FuzzSpecParse drives the parser against a realistic generated
// repository (the tiered shape the harness uses) instead of FuzzParse's
// two-package toy: family lookup, version disambiguation, and the
// closure machinery all run on accepted input. Any accepted spec must
// round-trip, stay canonical, and yield a closure that contains it.
func FuzzSpecParse(f *testing.F) {
	gen := pkggraph.DefaultGenConfig()
	gen.CoreFamilies = 2
	gen.FrameworkFamilies = 6
	gen.LibraryFamilies = 18
	gen.ApplicationFamilies = 34
	repo := pkggraph.MustGenerate(gen, 1)
	f.Add(repo.Package(0).Key() + "\n")
	f.Add(repo.Package(0).Key() + "\n" + repo.Package(pkggraph.PkgID(repo.Len()-1)).Key() + "\n")
	f.Add("# closure roots\n" + repo.Package(pkggraph.PkgID(repo.Len()/2)).Key() + "\n")
	f.Add("no/such/package\n")
	f.Add("\x00\n\xff\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseString(input, repo)
		if err != nil {
			return
		}
		ids := s.IDs()
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("non-canonical spec from %q", input)
			}
		}
		closure := repo.Closure(ids)
		if len(closure) < len(ids) {
			t.Fatalf("closure of %d packages has only %d members", len(ids), len(closure))
		}
		if repo.SetSize(closure) < repo.SetSize(ids) {
			t.Fatalf("closure smaller than its roots")
		}
		var sb stringsBuilder
		if err := s.Write(&sb, repo); err != nil {
			t.Fatalf("Write failed on accepted spec: %v", err)
		}
		back, err := ParseString(sb.String(), repo)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if !back.Equal(s) || back.Hash() != s.Hash() {
			t.Fatalf("round trip changed spec: %v vs %v", back.IDs(), s.IDs())
		}
	})
}

// stringsBuilder is a minimal io.Writer over a string (avoids
// importing strings just for Builder in a fuzz file).
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *stringsBuilder) String() string { return string(b.buf) }
