package spec

import (
	"testing"

	"repro/internal/pkggraph"
)

// specFromBlob decodes an arbitrary byte string into a valid spec:
// every 2-byte window picks one package (mod the repo size), so the
// fuzzer controls cardinality, clustering, and duplication freely.
func specFromBlob(repo *pkggraph.Repo, blob []byte) Spec {
	ids := make([]pkggraph.PkgID, 0, len(blob)/2)
	for i := 0; i+1 < len(blob); i += 2 {
		v := int(blob[i])<<8 | int(blob[i+1])
		ids = append(ids, pkggraph.PkgID(v%repo.Len()))
	}
	return New(ids)
}

// FuzzInternRoundTrip holds the interner to its core contract on
// arbitrary package sets: BitsetOf → SpecOf is the identity, the
// cardinality matches the spec, the sparse/dense split is a pure
// function of cardinality, and the pooled dense form agrees with the
// stored form bit for bit.
func FuzzInternRoundTrip(f *testing.F) {
	repo := bitsetRepo(f)
	it := NewInterner(repo)
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 2})                            // duplicates collapse
	f.Add([]byte{0, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6})    // dense run from position 0
	f.Add([]byte{255, 255, 0, 0, 127, 3, 9, 200, 31, 7, 2, 2}) // scattered
	f.Fuzz(func(t *testing.T, blob []byte) {
		s := specFromBlob(repo, blob)
		b := it.BitsetOf(s)
		if b.Card() != s.Len() {
			t.Fatalf("card %d != spec length %d", b.Card(), s.Len())
		}
		if !it.SpecOf(b).Equal(s) {
			t.Fatalf("round trip changed the spec: %v", s.IDs())
		}
		if wantDense := s.Len() > it.sparseMax(); b.Dense() != wantDense {
			t.Fatalf("card %d: Dense()=%v, want %v (boundary %d)", s.Len(), b.Dense(), wantDense, it.sparseMax())
		}
		// The stored form must describe the same set as the pooled dense
		// form: containment both ways means equality.
		words := it.DenseInto(nil, s)
		if !b.SupersetOfWords(words, s.Len()) {
			t.Fatalf("stored form lost bits of its own spec")
		}
		if b.IntersectWords(words) != s.Len() {
			t.Fatalf("self-intersection %d != %d", b.IntersectWords(words), s.Len())
		}
	})
}

// FuzzBitsetJaccard differentially tests the hot path's two primitives
// against the Spec reference on arbitrary set pairs: subset containment
// (SupersetOfWords vs SubsetOf) and intersection cardinality
// (IntersectWords vs IntersectionLen), plus the exact Jaccard distance
// assembled from them — the same float expression
// similarity.JaccardDistance evaluates, so the interned merge scan
// cannot drift from the reference by even one ULP.
func FuzzBitsetJaccard(f *testing.F) {
	repo := bitsetRepo(f)
	it := NewInterner(repo)
	f.Add([]byte{0, 1, 0, 2}, []byte{0, 1, 0, 2})
	f.Add([]byte{0, 1}, []byte{0, 2})
	f.Add([]byte{0, 1, 0, 2, 0, 3}, []byte{0, 2})
	f.Add([]byte{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9}, []byte{1, 1, 2, 2})
	f.Add([]byte{}, []byte{200, 0, 100, 50})
	f.Fuzz(func(t *testing.T, blobA, blobB []byte) {
		a := specFromBlob(repo, blobA)
		b := specFromBlob(repo, blobB)
		words := it.DenseInto(nil, a)
		bb := it.BitsetOf(b)

		if got, want := bb.SupersetOfWords(words, a.Len()), a.SubsetOf(b); got != want {
			t.Fatalf("SupersetOfWords=%v, SubsetOf=%v (|a|=%d |b|=%d dense=%v)", got, want, a.Len(), b.Len(), bb.Dense())
		}
		inter := bb.IntersectWords(words)
		if want := a.IntersectionLen(b); inter != want {
			t.Fatalf("IntersectWords=%d, IntersectionLen=%d", inter, want)
		}
		if a.Empty() || b.Empty() {
			return
		}
		// Bit-identical distance: same integers, same float expression.
		union := a.Len() + b.Len() - inter
		fast := 1 - float64(inter)/float64(union)
		refInter := a.IntersectionLen(b)
		refUnion := a.Len() + b.Len() - refInter
		ref := 1 - float64(refInter)/float64(refUnion)
		if fast != ref {
			t.Fatalf("interned distance %v != reference %v", fast, ref)
		}
	})
}
