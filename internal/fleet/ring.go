package fleet

import (
	"sort"
	"strconv"
)

// Consistent-hash ring with virtual nodes, plus rendezvous ordering
// for failover.
//
// The ring answers "who owns this spec?": each member contributes
// VNodes points on a 64-bit circle and a key belongs to the first
// point clockwise from its hash. Removing a member reassigns only the
// keys its own points owned — in expectation 1/N of the keyspace, and
// the fleet-chaos harness asserts the 2/N bound — while every other
// key keeps its owner. That stability is the whole reason the master
// hashes instead of load-balancing: a spec that re-lands on the same
// agent is a local cache hit instead of a rebuild.
//
// Rendezvous (highest-random-weight) hashing provides the *failover
// order*: when the ring's pick is suspect, open-circuited, or
// refusing, the master walks the remaining members by rendezvous score
// for the key. Unlike "next clockwise on the ring", the rendezvous
// order for a key is independent of vnode layout and is stable under
// churn — members joining or leaving never reshuffle the relative
// order of the survivors, so retries during membership transitions
// stay consistent.

// DefaultVNodes is the virtual-node count per member: enough that the
// per-member load imbalance and the removal bound stay tight at small
// fleet sizes.
const DefaultVNodes = 96

// Ring is a consistent-hash ring. Not goroutine-safe; the Master
// guards it with its route lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash  uint64
	owner string
}

// NewRing creates an empty ring with the given virtual-node count per
// member (<= 0 takes DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Has reports membership.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Add inserts a member's virtual nodes (no-op if present).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		h := mix64(hashString(member + "#" + strconv.Itoa(i)))
		r.points = append(r.points, ringPoint{hash: h, owner: member})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie on the circle: lexicographic owner keeps Lookup
		// deterministic regardless of insertion order.
		return r.points[i].owner < r.points[j].owner
	})
}

// Remove deletes a member's virtual nodes (no-op if absent).
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.owner != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the member owning key ("" on an empty ring).
func (r *Ring) Lookup(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	h := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].owner
}

// RendezvousOrder returns members sorted by descending
// highest-random-weight score for key: the failover order after the
// ring's pick. The order is a pure function of (key, member), so churn
// elsewhere in the fleet never reorders the survivors.
func RendezvousOrder(members []string, key uint64) []string {
	type scored struct {
		member string
		score  uint64
	}
	ss := make([]scored, 0, len(members))
	for _, m := range members {
		ss = append(ss, scored{member: m, score: mix64(key ^ hashString(m))})
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].score != ss[j].score {
			return ss[i].score > ss[j].score
		}
		return ss[i].member < ss[j].member
	})
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.member
	}
	return out
}
