package fleet

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestFleetSmoke is the CI fleet-smoke job: a master fronting two
// agents on loopback, 500 requests through the master, one agent
// SIGKILLed (its listener torn down, heartbeats stopped) halfway
// through. The contract: every request the client saw acknowledged is
// still served — as a hit on the acking agent when it survived, or
// re-satisfiable through the master regardless. Zero lost acks.
//
// CI runs this under -race; the heartbeat loops, the sweeper, and the
// request stream all run concurrently on purpose.
func TestFleetSmoke(t *testing.T) {
	f := newTestFleet(t, 2, MasterConfig{
		Quorum:         2,
		SuspectAfter:   30 * time.Millisecond,
		ForwardTimeout: 2 * time.Second,
	})
	for _, a := range f.agents {
		stop := a.ag.Start()
		t.Cleanup(stop)
	}
	stopSweep := f.master.StartSweeper(10 * time.Millisecond)
	t.Cleanup(stopSweep)

	// Wait for quorum before opening traffic, like a deployment would.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := f.agents[0].ag.BeatNow(context.Background()); err == nil {
			if err := f.agents[1].ag.BeatNow(context.Background()); err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet never reached quorum")
		}
		time.Sleep(5 * time.Millisecond)
	}

	const steps = 500
	type ack struct {
		keys  []string
		agent string
	}
	acked := make(map[string]ack)
	victim := f.agents[1]

	for i := 0; i < steps; i++ {
		if i == steps/2 {
			// SIGKILL one agent: listener gone, in-flight connections
			// severed, heartbeats stop. No graceful deregister.
			victim.ag.SetPaused(true)
			victim.ts.CloseClientConnections()
			victim.ts.Close()
		}
		keys := specKeys(f.repo, i%60, 3)
		res, err := f.request(keys)
		if err != nil {
			// The master may 503 transiently while the victim's failure
			// is being learned; that is load shedding, not data loss.
			continue
		}
		if res.Agent == "" {
			t.Fatalf("step %d: 200 with no agent attribution", i)
		}
		if i > steps/2 && res.Agent == victim.id {
			t.Fatalf("step %d: request attributed to the killed agent", i)
		}
		acked[strings.Join(keys, ",")] = ack{keys: keys, agent: res.Agent}
	}
	if len(acked) == 0 {
		t.Fatal("no requests were acknowledged")
	}

	// Audit: every acked spec must still be servable through the
	// master, and specs acked by the survivor must be hits there.
	lost := 0
	for _, a := range acked {
		res, err := f.request(a.keys)
		if err != nil {
			lost++
			t.Errorf("acked spec %s unservable after agent kill: %v", strings.Join(a.keys, ","), err)
			continue
		}
		if a.agent == f.agents[0].id && res.Agent == a.agent && res.Op != "hit" {
			t.Errorf("spec %s acked by survivor %s re-served as %q, want hit",
				strings.Join(a.keys, ","), a.agent, res.Op)
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acked specs lost after agent kill", lost, len(acked))
	}
}
