package fleet

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/server"
)

// Warm agent handoff: a deregistering agent (SIGTERM drain) pushes its
// resident-image specs to the agents that will inherit its keyspace,
// so its slice does not re-warm from zero.
//
// The master plans the handoff from state it already holds: the
// draining agent's gossiped directory names every resident image and
// its package set, and for each image the rendezvous order over the
// remaining agents names the successor — exactly where the routing
// layer will send that spec once the drainer is gone. The agent then
// POSTs each successor's slice to its /v1/warm endpoint and
// deregisters.

// HandoffTarget is one successor and the specs it inherits.
type HandoffTarget struct {
	ID    string     `json:"id"`
	URL   string     `json:"url"`
	Specs [][]string `json:"specs"`
}

// HandoffPlan is the GET /fleet/v1/handoff?id=X payload.
type HandoffPlan struct {
	Targets []HandoffTarget `json:"targets"`
}

// handleHandoff plans a drain for the named agent.
func (m *Master) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		fleetWriteError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		fleetWriteError(w, http.StatusBadRequest, "handoff needs ?id=<agent>")
		return
	}
	m.mu.Lock()
	plan := m.handoffPlanLocked(id)
	m.mu.Unlock()
	fleetWriteJSON(w, http.StatusOK, plan)
}

// handoffPlanLocked groups the drainer's resident specs by rendezvous
// successor. Caller holds m.mu.
func (m *Master) handoffPlanLocked(id string) HandoffPlan {
	var plan HandoffPlan
	dir := m.ms.Dir(id)
	if dir == nil {
		return plan
	}
	routable := m.ms.Routable()
	others := routable[:0:0]
	for _, a := range routable {
		if a != id {
			others = append(others, a)
		}
	}
	if len(others) == 0 {
		return plan
	}
	byTarget := make(map[string][][]string)
	var order []string // deterministic plan: first-appearance order
	for _, e := range dir.Entries() {
		if len(e.Packages) == 0 {
			continue
		}
		successor := RendezvousOrder(others, RouteKey(e.Packages))[0]
		if _, ok := byTarget[successor]; !ok {
			order = append(order, successor)
		}
		byTarget[successor] = append(byTarget[successor], e.Packages)
	}
	for _, t := range order {
		plan.Targets = append(plan.Targets, HandoffTarget{
			ID: t, URL: m.ms.URL(t), Specs: byTarget[t],
		})
	}
	return plan
}

// Drain performs the warm handoff and deregisters: fetch the plan from
// the first master that answers, push each successor's slice to its
// /v1/warm, then leave the fleet. Warm pushes are best-effort — a
// refused or unreachable successor re-warms organically — but the
// deregistration always runs.
func (a *Agent) Drain(ctx context.Context) error {
	var plan HandoffPlan
	var planErr error
	got := false
	for _, l := range a.links {
		planErr = l.client.DoCtx(ctx, http.MethodGet, "/fleet/v1/handoff?id="+a.cfg.ID, nil, &plan)
		if planErr == nil {
			got = true
			break
		}
	}
	if got {
		for _, t := range plan.Targets {
			if t.URL == "" || len(t.Specs) == 0 {
				continue
			}
			cl := server.NewClient(t.URL, a.cfg.HTTPClient)
			cl.MaxRetries = 0
			cl.DoCtx(ctx, http.MethodPost, "/v1/warm", server.WarmRequest{Specs: t.Specs}, nil)
		}
	}
	if err := a.Deregister(); err != nil {
		return err
	}
	if !got && planErr != nil {
		return fmt.Errorf("fleet agent %s: handoff plan: %w", a.cfg.ID, planErr)
	}
	return nil
}
