package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/server"
)

// haPair is two masters wired as primary + standby, each behind a
// handler-indirected httptest server so tests can kill and restart
// either one at a stable URL.
type haPair struct {
	t        *testing.T
	m1, m2   *Master
	h1, h2   atomic.Value // http.Handler
	ts1, ts2 *httptest.Server
	dir1     string
}

func newHAPair(t *testing.T) *haPair {
	t.Helper()
	p := &haPair{t: t, dir1: t.TempDir()}
	serve := func(h *atomic.Value) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.Load().(http.Handler).ServeHTTP(w, r)
		}))
	}
	p.ts1 = serve(&p.h1)
	p.ts2 = serve(&p.h2)
	t.Cleanup(p.ts1.Close)
	t.Cleanup(p.ts2.Close)
	p.m1 = NewMaster(MasterConfig{SuspectAfter: -1, HA: HAConfig{
		ID: "m1", PeerURL: p.ts2.URL, StartPrimary: true, StateDir: p.dir1,
	}})
	p.m2 = NewMaster(MasterConfig{SuspectAfter: -1, HA: HAConfig{
		ID: "m2", PeerURL: p.ts1.URL,
	}})
	p.h1.Store(p.m1.Handler())
	p.h2.Store(p.m2.Handler())
	return p
}

func (p *haPair) register(id string) {
	p.t.Helper()
	cl := server.NewClient(p.ts1.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp RegisterResponse
	if err := cl.DoCtx(ctx, http.MethodPost, "/fleet/v1/register",
		RegisterRequest{ID: id, URL: "http://" + id, Gen: 1}, &resp); err != nil {
		p.t.Fatalf("register %s: %v", id, err)
	}
}

func TestHALeaseReplicatesAndPromotesInTwoTicks(t *testing.T) {
	p := newHAPair(t)
	ctx := context.Background()

	p.register("ag1")
	p.register("ag2")

	// One lease poll drains the primary's HA log into the standby's
	// mirror: same epoch view, byte-identical folded state.
	st2 := p.m2.LeaseTick(ctx)
	st1 := p.m1.HAStatusNow()
	if st2.Role != "standby" || st2.Epoch != 1 || st2.Holder != "m1" {
		t.Fatalf("standby after grant: %+v", st2)
	}
	if st2.MirrorNext != st1.StreamNext {
		t.Fatalf("standby mirror at %d, primary log at %d: not drained", st2.MirrorNext, st1.StreamNext)
	}
	if !HAStateEqual(st1.State, st2.State) {
		t.Fatalf("replicated state differs:\n primary %s\n standby %s", st1.State, st2.State)
	}

	// The primary's durable ha-state.json matches its in-memory fold.
	onDisk, err := ReadHAState(filepath.Join(p.dir1, haStateFile))
	if err != nil {
		t.Fatalf("reading ha-state.json: %v", err)
	}
	if !HAStateEqual(onDisk, st1.State) {
		t.Fatalf("durable state differs from live state:\n disk %s\n live %s", onDisk, st1.State)
	}

	// Membership changes keep replicating incrementally (no resync).
	p.register("ag3")
	st2 = p.m2.LeaseTick(ctx)
	st1 = p.m1.HAStatusNow()
	if !HAStateEqual(st1.State, st2.State) {
		t.Fatalf("post-register state differs:\n primary %s\n standby %s", st1.State, st2.State)
	}
	if st2.Resyncs != 0 {
		t.Fatalf("incremental replication resynced %d times", st2.Resyncs)
	}

	// Kill the primary. The first missed poll is a suspicion, the second
	// promotes: within two lease intervals of primary silence.
	lastDurable := st1.State
	p.ts1.CloseClientConnections()
	p.ts1.Close()

	st2 = p.m2.LeaseTick(ctx)
	if st2.Role != "standby" || st2.Missed != 1 {
		t.Fatalf("after one missed poll: role=%s missed=%d, want standby/1", st2.Role, st2.Missed)
	}
	st2 = p.m2.LeaseTick(ctx)
	if st2.Role != "primary" || st2.Epoch != 2 || st2.Promotions != 1 {
		t.Fatalf("after two missed polls: %+v, want primary at epoch 2", st2)
	}

	// The promoted master's recovered state — its mirror as-at
	// promotion, before its own epoch record — is byte-identical to the
	// dead primary's last durable state.
	if !HAStateEqual(st2.RecoveredState, lastDurable) {
		t.Fatalf("recovered state differs from dead primary's durable state:\n recovered %s\n durable   %s",
			st2.RecoveredState, lastDurable)
	}
	onDisk, err = ReadHAState(filepath.Join(p.dir1, haStateFile))
	if err != nil {
		t.Fatalf("re-reading ha-state.json: %v", err)
	}
	if !HAStateEqual(st2.RecoveredState, onDisk) {
		t.Fatalf("recovered state differs from ha-state.json on disk")
	}
}

func TestHAStandbyRefusesRequestsWithEpoch(t *testing.T) {
	p := newHAPair(t)
	if st := p.m2.LeaseTick(context.Background()); st.Epoch != 1 {
		t.Fatalf("standby never learned the epoch: %+v", st)
	}

	cl := server.NewClient(p.ts2.URL, nil)
	cl.MaxRetries = 0
	err := cl.DoCtx(context.Background(), http.MethodPost, "/v1/request",
		server.RequestBody{Packages: []string{"x"}, Close: true}, nil)
	var se *server.StatusError
	if !asStatusError(err, &se) {
		t.Fatalf("standby /v1/request error = %v, want StatusError", err)
	}
	if se.Status != http.StatusServiceUnavailable {
		t.Fatalf("standby refused with %d, want 503", se.Status)
	}
	if se.Epoch != 1 {
		t.Fatalf("refusal carried epoch %d, want 1", se.Epoch)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("refusal carried no Retry-After hint: %+v", se)
	}
}

func TestHALeaseDemotesOnHigherEpoch(t *testing.T) {
	p := newHAPair(t)

	// A lease request carrying a higher epoch is proof of supersession:
	// the primary demotes before answering, and the answer is a refusal.
	cl := server.NewClient(p.ts1.URL, nil)
	var resp LeaseResponse
	err := cl.DoCtx(context.Background(), http.MethodPost, "/fleet/v1/lease",
		LeaseRequest{ID: "m2", Epoch: 5, From: 0}, &resp)
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	if resp.Granted || resp.Epoch != 5 || resp.Holder != "m2" {
		t.Fatalf("lease response %+v, want ungranted at epoch 5 held by m2", resp)
	}
	st := p.m1.HAStatusNow()
	if st.Role != "standby" || st.Epoch != 5 || st.Demotions != 1 {
		t.Fatalf("old primary after supersession: %+v, want standby at epoch 5", st)
	}
}

func TestEpochGate(t *testing.T) {
	var g EpochGate

	// Admission adopts the first epoch it sees and anything newer.
	if ok, _ := g.Admit(1, "m1"); !ok {
		t.Fatal("first epoch refused")
	}
	if ok, _ := g.Admit(2, "m2"); !ok {
		t.Fatal("newer epoch refused")
	}
	// Same epoch, same holder: fine.
	if ok, _ := g.Admit(2, "m2"); !ok {
		t.Fatal("same epoch same holder refused")
	}
	// Same epoch, different holder: protocol violation — refuse and count.
	if ok, _ := g.Admit(2, "m1"); ok {
		t.Fatal("same-epoch holder conflict admitted")
	}
	// Stale epoch: refuse with the current epoch so the old master can
	// demote itself.
	ok, cur := g.Admit(1, "m1")
	if ok || cur != 2 {
		t.Fatalf("stale epoch: ok=%v cur=%d, want refused at 2", ok, cur)
	}
	st := g.Snapshot()
	if st.Epoch != 2 || st.Holder != "m2" || st.StaleRejects != 1 || st.Conflicts != 1 {
		t.Fatalf("gate snapshot %+v", st)
	}

	// Observation teaches without rejecting: a heartbeat from epoch 3
	// moves the gate, and the old epoch-2 holder is now refused.
	g.Observe(3, "m1")
	if ok, _ := g.Admit(2, "m2"); ok {
		t.Fatal("epoch 2 still admitted after observing epoch 3")
	}
	if st := g.Snapshot(); st.Epoch != 3 || st.Holder != "m1" {
		t.Fatalf("gate after observe: %+v", st)
	}
}

// seedMember registers one agent on m with the given directory
// entries, straight through the membership layer.
func seedMember(t *testing.T, m *Master, id string, entries ...cluster.DirEntry) {
	t.Helper()
	now := time.Unix(0, 0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ms.Register(RegisterRequest{ID: id, URL: "http://" + id, Gen: 1}, now) {
		m.ring.Add(id)
	}
	d := cluster.NewDirectory(cluster.DefaultDirJournal)
	for _, e := range entries {
		d.Put(e)
	}
	if resp := m.ms.Heartbeat(HeartbeatRequest{ID: id, Gen: 1, Delta: d.Full()}, now); resp.Unknown || resp.Resync {
		t.Fatalf("seeding %s: heartbeat %+v", id, resp)
	}
}

// TestRouteAffinityOrder pins routeLocked's preference order:
//
//  1. the ring owner, when routable AND holding a superset
//  2. non-owner superset holders, in rendezvous order
//  3. the ring owner, when routable (no superset)
//  4. remaining routable agents, in rendezvous order
func TestRouteAffinityOrder(t *testing.T) {
	m := NewMaster(MasterConfig{SuspectAfter: -1, MaxAttempts: 10})
	agents := []string{"a1", "a2", "a3"}
	pkgs := []string{"p1", "p2"}
	key := RouteKey(pkgs)

	for _, id := range agents {
		seedMember(t, m, id)
	}
	m.mu.Lock()
	owner := m.routeLocked(key, nil).Owner
	m.mu.Unlock()
	rdv := RendezvousOrder(agents, key)
	var holder, other string
	for _, id := range rdv {
		if id == owner {
			continue
		}
		if holder == "" {
			holder = id
		} else {
			other = id
		}
	}

	// Nobody holds the spec: owner first, then rendezvous order, no
	// affinity.
	m.mu.Lock()
	info := m.routeLocked(key, pkgs)
	m.mu.Unlock()
	if info.Affinity || len(info.Candidates) != 3 || info.Candidates[0] != owner {
		t.Fatalf("cold route: %+v, want owner %s first without affinity", info, owner)
	}

	// A non-owner gossips a superset image: it outranks the owner and
	// the route is an affinity redirect.
	seedMember(t, m, holder, cluster.DirEntry{ID: 1, Version: 1, Size: 10,
		Packages: []string{"p1", "p2", "p3"}})
	m.mu.Lock()
	info = m.routeLocked(key, pkgs)
	m.mu.Unlock()
	want := []string{holder, owner, other}
	if !info.Affinity {
		t.Fatalf("superset holder did not flag affinity: %+v", info)
	}
	for i, id := range want {
		if info.Candidates[i] != id {
			t.Fatalf("affinity order = %v, want %v", info.Candidates, want)
		}
	}

	// The owner also gossips a superset: owner-with-affinity leads, no
	// redirect counted (the route went where the hash said anyway).
	seedMember(t, m, owner,
		cluster.DirEntry{ID: 2, Version: 1, Size: 10, Packages: []string{"p1", "p2", "p9"}})
	m.mu.Lock()
	info = m.routeLocked(key, pkgs)
	m.mu.Unlock()
	want = []string{owner, holder, other}
	if info.Affinity {
		t.Fatalf("owner-held superset still flagged affinity: %+v", info)
	}
	for i, id := range want {
		if info.Candidates[i] != id {
			t.Fatalf("owner-holds order = %v, want %v", info.Candidates, want)
		}
	}

	// An image too small or mismatched is not a superset.
	m.mu.Lock()
	info = m.routeLocked(key, []string{"p1", "p2", "p4"})
	m.mu.Unlock()
	if info.Affinity || info.Candidates[0] != owner {
		t.Fatalf("non-superset image influenced routing: %+v", info)
	}
}

func TestRouteAffinityCounterEndToEnd(t *testing.T) {
	f := newTestFleet(t, 3, MasterConfig{SuspectAfter: -1})
	f.beatAll()

	// Find a spec the ring does NOT own on agent 0, then warm agent 0
	// with it directly — the affinity case: the hash says elsewhere, the
	// gossiped directory says agent 0 already has the bytes.
	warm := f.agents[0]
	var keys []string
	for i := 0; ; i++ {
		keys = specKeys(f.repo, i, 3)
		f.master.mu.Lock()
		owner := f.master.routeLocked(RouteKey(keys), nil).Owner
		f.master.mu.Unlock()
		if owner != warm.id {
			break
		}
		if i > 1000 {
			t.Fatal("every spec hashed to agent 0")
		}
	}
	direct := server.NewClient(warm.ts.URL, nil)
	if _, err := direct.Request(keys, true); err != nil {
		t.Fatalf("warming agent 0: %v", err)
	}
	f.beatAll()

	res, err := f.request(keys)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if res.Agent != warm.id {
		t.Fatalf("request served by %s, want affinity redirect to %s", res.Agent, warm.id)
	}
	if res.Op != "hit" {
		t.Fatalf("affinity-routed request was %q, want hit", res.Op)
	}
	if got := f.master.Registry().Counter(metricRouteAffinity, helpRouteAffinity).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", metricRouteAffinity, got)
	}
}

func TestHandoffDrainWarmsSuccessors(t *testing.T) {
	f := newTestFleet(t, 3, MasterConfig{SuspectAfter: -1})
	f.beatAll()

	// Warm the drainer with two specs directly.
	drainer := f.agents[0]
	direct := server.NewClient(drainer.ts.URL, nil)
	specs := [][]string{specKeys(f.repo, 1, 3), specKeys(f.repo, 2, 3)}
	for _, keys := range specs {
		if _, err := direct.Request(keys, true); err != nil {
			t.Fatalf("warming drainer: %v", err)
		}
	}
	f.beatAll()

	// The plan names, per image, the rendezvous successor among the
	// remaining agents. One image per gossiped directory entry — the
	// server may have merged the two specs into one image.
	f.master.mu.Lock()
	plan := f.master.handoffPlanLocked(drainer.id)
	wantSpecs := 0
	for _, e := range f.master.ms.Dir(drainer.id).Entries() {
		if len(e.Packages) > 0 {
			wantSpecs++
		}
	}
	f.master.mu.Unlock()
	total := 0
	for _, tgt := range plan.Targets {
		if tgt.ID == drainer.id {
			t.Fatalf("plan hands off to the drainer itself: %+v", plan)
		}
		for _, spec := range tgt.Specs {
			wantID := RendezvousOrder([]string{f.agents[1].id, f.agents[2].id}, RouteKey(spec))[0]
			if tgt.ID != wantID {
				t.Fatalf("spec %v handed to %s, want rendezvous successor %s", spec, tgt.ID, wantID)
			}
			total++
		}
	}
	if total != wantSpecs || total == 0 {
		t.Fatalf("plan covers %d images, want %d", total, wantSpecs)
	}

	// Drain: successors are warmed, the drainer leaves the fleet.
	if err := drainer.ag.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, m := range f.master.MembersNow() {
		if m.ID == drainer.id {
			t.Fatalf("drainer still a member after Drain")
		}
	}
	holds := func(a *testAgent, keys []string) bool {
		for _, snap := range a.srv.SnapshotNow() {
			have := map[string]bool{}
			for _, k := range snap.Packages {
				have[k] = true
			}
			ok := true
			for _, k := range keys {
				if !have[k] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	for _, keys := range specs {
		covered := false
		for _, a := range f.agents[1:] {
			if holds(a, keys) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("spec %v not resident on any successor after drain", keys)
		}
	}
}

func TestAgentMultiMasterBeatsAndGate(t *testing.T) {
	p := newHAPair(t)
	repo := testRepo(t)
	srv, err := server.New(repo, core.Config{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ats := httptest.NewServer(srv.Handler())
	t.Cleanup(ats.Close)

	ag := NewAgent(AgentConfig{
		ID: "ag1", AdvertiseURL: ats.URL,
		MasterURLs: []string{p.ts1.URL, p.ts2.URL},
	}, srv)
	if err := ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("beat: %v", err)
	}
	if got := ag.Beats(); got != 2 {
		t.Fatalf("beats = %d, want 2 (one per master)", got)
	}
	for _, m := range []*Master{p.m1, p.m2} {
		found := false
		for _, mem := range m.MembersNow() {
			if mem.ID == "ag1" && mem.State == "healthy" {
				found = true
			}
		}
		if !found {
			t.Fatalf("agent not healthy on both masters")
		}
	}
	// The primary's heartbeat response taught the gate the epoch.
	if st := ag.Gate().Snapshot(); st.Epoch != 1 || st.Holder != "m1" {
		t.Fatalf("gate after beat: %+v, want epoch 1 held by m1", st)
	}

	// One master dying does not fail the beat: the survivor acks.
	p.ts1.CloseClientConnections()
	p.ts1.Close()
	if err := ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("beat with one master down: %v", err)
	}
	if !ag.Registered() {
		t.Fatal("agent lost registration with the surviving master")
	}
}

func TestAgentHandlerGatesStaleForwards(t *testing.T) {
	repo := testRepo(t)
	srv, err := server.New(repo, core.Config{Alpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	ag := NewAgent(AgentConfig{ID: "ag1", AdvertiseURL: "http://ag1", MasterURL: "http://m"}, srv)
	ts := httptest.NewServer(ag.Handler())
	t.Cleanup(ts.Close)

	cl := server.NewClient(ts.URL, nil)
	cl.MaxRetries = 0
	keys := specKeys(repo, 1, 3)

	// An epoch-2 forward is admitted and adopts the epoch.
	cl.SetExtraHeaders(func(h http.Header) {
		h.Set(server.EpochHeader, "2")
		h.Set(server.MasterHeader, "m2")
	})
	if err := cl.DoCtx(context.Background(), http.MethodPost, "/v1/request",
		server.RequestBody{Packages: keys, Close: true}, nil); err != nil {
		t.Fatalf("epoch-2 forward refused: %v", err)
	}

	// A stale epoch-1 forward is refused with 503 carrying the current
	// epoch — the demotion signal for the sender.
	cl.SetExtraHeaders(func(h http.Header) {
		h.Set(server.EpochHeader, "1")
		h.Set(server.MasterHeader, "m1")
	})
	err = cl.DoCtx(context.Background(), http.MethodPost, "/v1/request",
		server.RequestBody{Packages: keys, Close: true}, nil)
	var se *server.StatusError
	if !asStatusError(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("stale forward error = %v, want 503 StatusError", err)
	}
	if se.Epoch != 2 {
		t.Fatalf("rejection carried epoch %d, want current epoch 2", se.Epoch)
	}
	if st := ag.Gate().Snapshot(); st.StaleRejects != 1 {
		t.Fatalf("gate counted %d stale rejects, want 1", st.StaleRejects)
	}

	// Unstamped requests (direct clients) pass through ungated.
	cl.SetExtraHeaders(nil)
	if err := cl.DoCtx(context.Background(), http.MethodPost, "/v1/request",
		server.RequestBody{Packages: keys, Close: true}, nil); err != nil {
		t.Fatalf("unstamped request refused: %v", err)
	}
}
