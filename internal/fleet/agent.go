package fleet

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
)

const (
	metricHeartbeatRTT = "landlord_fleet_heartbeat_rtt_seconds"
	helpHeartbeatRTT   = "Agent heartbeat round-trip time to the master"
)

// AgentConfig tunes an Agent.
type AgentConfig struct {
	// ID is the agent's stable identity (its ring membership key). A
	// restarted agent keeps its ID — its keyspace slice — but bumps
	// Gen.
	ID string
	// AdvertiseURL is the base URL the master forwards requests to.
	AdvertiseURL string
	// MasterURL is the master's base URL.
	MasterURL string
	// MasterURLs lists every master in an HA fleet; the agent
	// registers with and heartbeats all of them, which is what keeps
	// the standby's membership, ring, and gossip mirrors warm for
	// promotion. When set it supersedes MasterURL.
	MasterURLs []string
	// Gen is the process generation; it must differ across restarts so
	// the master resets its gossip mirror (<= 0 takes 1, which suits
	// tests that never restart).
	Gen uint64
	// Interval is the heartbeat period (<= 0 takes 1s).
	Interval time.Duration
	// HTTPClient talks to the masters (nil = http.DefaultClient); the
	// chaos harness injects fault transports here.
	HTTPClient *http.Client
	// BeatTimeout bounds one register/heartbeat exchange (<= 0 takes
	// 2s).
	BeatTimeout time.Duration
}

func (cfg AgentConfig) withDefaults() AgentConfig {
	if cfg.Gen == 0 {
		cfg.Gen = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.BeatTimeout <= 0 {
		cfg.BeatTimeout = 2 * time.Second
	}
	if len(cfg.MasterURLs) == 0 && cfg.MasterURL != "" {
		cfg.MasterURLs = []string{cfg.MasterURL}
	}
	return cfg
}

// masterLink is the agent's control-plane state with one master:
// registration and the per-master delta-sync cursor (each master
// acknowledges directory revisions independently).
type masterLink struct {
	url        string
	client     *server.Client
	registered bool
	ackRev     uint64
	sendFull   bool
}

// Agent is the worker-side control loop: it registers its server with
// every configured master, heartbeats liveness, and gossips the
// server's image directory as delta-sync frames riding the heartbeat
// body. The data plane is untouched — the master forwards plain
// /v1/request calls to the server's own listener — except for the
// epoch gate (epoch.go) that Handler wraps around it in HA fleets.
type Agent struct {
	cfg   AgentConfig
	srv   *server.Server
	links []*masterLink
	rtt   *telemetry.Histogram
	gate  EpochGate

	paused atomic.Bool

	mu    sync.Mutex
	dir   *cluster.Directory
	beats uint64
}

// NewAgent wires srv into a fleet as cfg describes. Call Start (or
// BeatNow from tests) to begin heartbeating.
func NewAgent(cfg AgentConfig, srv *server.Server) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		cfg: cfg,
		srv: srv,
		rtt: srv.Registry().Histogram(metricHeartbeatRTT, helpHeartbeatRTT,
			telemetry.DefaultLatencyBuckets()),
		dir: cluster.NewDirectory(cluster.DefaultDirJournal),
	}
	for _, url := range cfg.MasterURLs {
		cl := server.NewClient(url, cfg.HTTPClient)
		cl.MaxRetries = 0 // the next beat is the retry
		a.links = append(a.links, &masterLink{url: url, client: cl})
	}
	return a
}

// SetPaused suspends (true) or resumes (false) heartbeating — the
// chaos harness's partition switch. A paused agent's BeatNow is a
// no-op, so the master's suspect/dead aging takes over.
func (a *Agent) SetPaused(v bool) { a.paused.Store(v) }

// Registered reports whether the last exchange left the agent
// registered with at least one master.
func (a *Agent) Registered() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, l := range a.links {
		if l.registered {
			return true
		}
	}
	return false
}

// Beats returns how many heartbeats have been acknowledged (summed
// across masters).
func (a *Agent) Beats() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.beats
}

// BeatNow runs one register-if-needed + heartbeat exchange with every
// master. It is the loop body of Start, exported so tests and
// harnesses can drive the control plane deterministically. The error
// is nil when at least one master acknowledged the beat.
func (a *Agent) BeatNow(ctx context.Context) error {
	if a.paused.Load() {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, a.cfg.BeatTimeout)
	defer cancel()

	a.mu.Lock()
	defer a.mu.Unlock()

	a.refreshDirLocked()

	var lastErr error
	acked := 0
	for _, l := range a.links {
		if err := a.beatLinkLocked(ctx, l); err != nil {
			lastErr = err
			continue
		}
		acked++
	}
	if acked == 0 {
		return lastErr
	}
	return nil
}

// beatLinkLocked runs one master's register-if-needed + heartbeat.
// Caller holds a.mu.
func (a *Agent) beatLinkLocked(ctx context.Context, l *masterLink) error {
	if !l.registered {
		if err := a.registerLocked(ctx, l); err != nil {
			return err
		}
	}
	err := a.beatLocked(ctx, l)
	if err == errUnknownAgent {
		// The master restarted (or declared us dead) and lost its soft
		// state: re-register and replay the full directory in the same
		// call so recovery does not cost an extra interval.
		l.registered = false
		if err := a.registerLocked(ctx, l); err != nil {
			return err
		}
		err = a.beatLocked(ctx, l)
	}
	return err
}

// errUnknownAgent is beatLocked's signal that the master does not know
// this agent and a re-register is required.
var errUnknownAgent = fmt.Errorf("fleet agent: master does not know us")

// registerLocked announces the agent to one master. On success the
// next heartbeat carries a Full directory frame: the master's mirror
// starts empty.
func (a *Agent) registerLocked(ctx context.Context, l *masterLink) error {
	req := RegisterRequest{ID: a.cfg.ID, URL: a.cfg.AdvertiseURL, Gen: a.cfg.Gen}
	var resp RegisterResponse
	if err := l.client.DoCtx(ctx, http.MethodPost, "/fleet/v1/register", req, &resp); err != nil {
		return fmt.Errorf("fleet agent %s: register: %w", a.cfg.ID, err)
	}
	l.registered = true
	l.sendFull = true
	l.ackRev = 0
	return nil
}

// beatLocked sends one heartbeat with the pending directory delta for
// one master.
func (a *Agent) beatLocked(ctx context.Context, l *masterLink) error {
	var delta cluster.DirDelta
	if l.sendFull {
		delta = a.dir.Full()
	} else {
		delta = a.dir.DeltaSince(l.ackRev)
	}
	req := HeartbeatRequest{ID: a.cfg.ID, Gen: a.cfg.Gen, Delta: delta}
	var resp HeartbeatResponse
	start := time.Now()
	if err := l.client.DoCtx(ctx, http.MethodPost, "/fleet/v1/heartbeat", req, &resp); err != nil {
		return fmt.Errorf("fleet agent %s: heartbeat: %w", a.cfg.ID, err)
	}
	a.rtt.Observe(time.Since(start).Seconds())
	if resp.Unknown {
		return errUnknownAgent
	}
	// The heartbeat doubles as lease gossip: adopt a newer epoch from
	// whichever master answered.
	a.gate.Observe(resp.Epoch, resp.Holder)
	a.beats++
	if resp.Resync {
		l.sendFull = true
		return nil
	}
	l.sendFull = false
	l.ackRev = resp.AckRev
	return nil
}

// refreshDirLocked reconciles the gossip directory against the
// server's live image list, including each image's package keys so
// masters can route by superset affinity. Put is idempotent, so an
// unchanged cache advances no revisions and the next delta is empty.
func (a *Agent) refreshDirLocked() {
	imgs := a.srv.ImagesNow()
	pkgs := make(map[uint64][]string, len(imgs))
	for _, snap := range a.srv.SnapshotNow() {
		pkgs[snap.ID] = snap.Packages
	}
	want := make(map[uint64]cluster.DirEntry, len(imgs))
	for _, im := range imgs {
		want[im.ID] = cluster.DirEntry{ID: im.ID, Version: im.Version, Size: im.Size, Packages: pkgs[im.ID]}
	}
	for _, e := range a.dir.Full().Upserts {
		if _, ok := want[e.ID]; !ok {
			a.dir.Remove(e.ID)
		}
	}
	for _, e := range want {
		a.dir.Put(e)
	}
}

// Start runs the heartbeat loop until the returned stop function is
// called. Stop deregisters best-effort (a crash-stopped agent is
// instead aged out by the master's sweeper).
func (a *Agent) Start() (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				a.BeatNow(context.Background()) // next tick retries on error
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			a.Deregister()
		})
	}
}

// Deregister removes the agent from every master (graceful shutdown).
// Drain (handoff.go) is the warm variant.
func (a *Agent) Deregister() error {
	ctx, cancel := context.WithTimeout(context.Background(), a.cfg.BeatTimeout)
	defer cancel()
	a.mu.Lock()
	for _, l := range a.links {
		l.registered = false
	}
	a.mu.Unlock()
	var lastErr error
	for _, l := range a.links {
		if err := l.client.DoCtx(ctx, http.MethodPost, "/fleet/v1/deregister",
			DeregisterRequest{ID: a.cfg.ID}, nil); err != nil {
			lastErr = err
		}
	}
	return lastErr
}
