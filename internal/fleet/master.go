package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// AgentHeader names the agent that served a routed request, echoed on
// the master's /v1/request responses so callers and harnesses can audit
// placement without parsing the body.
const AgentHeader = "X-Landlord-Agent"

// Metric names and help strings (constants so landlord-lint can audit
// them statically).
const (
	metricRouteTotal = "landlord_fleet_route_total"
	helpRouteTotal   = "Routed requests by agent and outcome"

	metricKeyMovement = "landlord_fleet_ring_key_movement"
	helpKeyMovement   = "Fraction of sampled keyspace that changed owner per ring membership change"

	metricAgents = "landlord_fleet_agents"
	helpAgents   = "Registered agents by state"

	metricRouteAffinity = "landlord_fleet_route_affinity_total"
	helpRouteAffinity   = "Requests routed to a non-owner agent already holding a superset of the spec"
)

// probeKeys is how many sampled keys the key-movement histogram probes
// around each ring change: enough resolution to see 1/N slices at
// realistic fleet sizes, cheap enough to run inline under the route
// lock.
const probeKeys = 512

// MasterConfig tunes a Master. The zero value is serviceable: quorum 1,
// default vnodes, 3s suspect / never dead, 5s forward timeout, 3
// forward attempts.
type MasterConfig struct {
	// Quorum is how many healthy agents /v1/readyz requires before the
	// master reports ready (<= 0 means 1).
	Quorum int
	// VNodes is the ring's virtual-node count per agent (<= 0 takes
	// DefaultVNodes).
	VNodes int
	// SuspectAfter is the heartbeat age that marks an agent suspect
	// (0 takes 3s; negative disables the age-based transition).
	SuspectAfter time.Duration
	// DeadAfter is the heartbeat age that removes an agent from the
	// ring (<= 0: never — partitioned agents stay suspect, which keeps
	// the keyspace stable through partitions and routes around them
	// via the rendezvous fallback).
	DeadAfter time.Duration
	// ForwardTimeout caps each routed request's downstream budget
	// (<= 0 takes 5s). An incoming X-Landlord-Deadline tighter than
	// this wins.
	ForwardTimeout time.Duration
	// MaxAttempts bounds how many agents one request may be offered to
	// (<= 0 takes 3): the ring's pick plus rendezvous-ordered
	// fallbacks.
	MaxAttempts int
	// Breaker configures the per-agent circuit breaker.
	Breaker resilience.BreakerConfig
	// TransportFor, when set, supplies the http.RoundTripper for the
	// connection to an agent URL — the chaos harness injects fault
	// transports here. nil uses http.DefaultTransport.
	TransportFor func(agentURL string) http.RoundTripper
	// Clock is the time source (nil = time.Now); injectable for tests.
	Clock func() time.Time
	// HA enables the high-availability layer (ha.go); the zero value
	// keeps the master single and stateless.
	HA HAConfig
}

func (cfg MasterConfig) withDefaults() MasterConfig {
	if cfg.Quorum <= 0 {
		cfg.Quorum = 1
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 3 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 5 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return cfg
}

// agentConn is the master's client to one agent: a server.Client with
// its own circuit breaker, no client-side retries (failover to the next
// candidate is the master's retry).
type agentConn struct {
	url    string
	client *server.Client
}

// Master is the fleet control plane: it owns membership, the
// consistent-hash ring, per-agent breakers and gossip mirrors, and
// forwards /v1/request to agents. All of its state is soft — rebuilt
// from agent re-registration after a restart.
type Master struct {
	cfg    MasterConfig
	reg    *telemetry.Registry
	spans  *telemetry.SpanTracer
	traces *telemetry.TraceRing

	mu    sync.Mutex
	ms    *Membership
	ring  *Ring
	conns map[string]*agentConn

	keyMove *telemetry.Histogram

	// ha is the high-availability half (ha.go). Lock order: m.mu
	// before ha.mu, never the reverse.
	ha haControl
}

// NewMaster creates a master.
func NewMaster(cfg MasterConfig) *Master {
	cfg = cfg.withDefaults()
	reg := telemetry.NewRegistry()
	traces := telemetry.NewTraceRing(64, 64)
	m := &Master{
		cfg:    cfg,
		reg:    reg,
		spans:  telemetry.NewSpanTracer(traces),
		traces: traces,
		ms:     NewMembership(cfg.SuspectAfter, cfg.DeadAfter),
		ring:   NewRing(cfg.VNodes),
		conns:  make(map[string]*agentConn),
	}
	m.keyMove = reg.Histogram(metricKeyMovement, helpKeyMovement,
		[]float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1})
	m.initHA(cfg.HA)
	for _, st := range []string{"known", "healthy", "suspect"} {
		st := st
		reg.GaugeFunc(metricAgents, helpAgents, func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			known, healthy, suspect := m.ms.Counts()
			switch st {
			case "healthy":
				return float64(healthy)
			case "suspect":
				return float64(suspect)
			default:
				return float64(known)
			}
		}, telemetry.Label{Key: "state", Value: st})
	}
	return m
}

// Registry returns the master's metric registry (for /metrics and
// tests).
func (m *Master) Registry() *telemetry.Registry { return m.reg }

// Tracer returns the master's span tracer, so harnesses can install a
// logical clock and seeded trace IDs.
func (m *Master) Tracer() *telemetry.SpanTracer { return m.spans }

// Handler returns the master's HTTP routes.
func (m *Master) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/v1/register", m.handleRegister)
	mux.HandleFunc("/fleet/v1/heartbeat", m.handleHeartbeat)
	mux.HandleFunc("/fleet/v1/deregister", m.handleDeregister)
	mux.HandleFunc("/fleet/v1/members", m.handleMembers)
	mux.HandleFunc("/fleet/v1/route", m.handleRoute)
	mux.HandleFunc("/fleet/v1/lease", m.handleLease)
	mux.HandleFunc("/fleet/v1/ha", m.handleHA)
	mux.HandleFunc("/fleet/v1/handoff", m.handleHandoff)
	mux.HandleFunc("/v1/request", m.handleRequest)
	mux.HandleFunc("/v1/readyz", m.handleReadyz)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		fleetWriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "master"})
	})
	mux.HandleFunc("/v1/trace", m.handleTrace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.reg.WriteText(w)
	})
	return mux
}

// ---- membership endpoints ----

func (m *Master) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fleetWriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, "decoding register: %v", err)
		return
	}
	if req.ID == "" || req.URL == "" {
		fleetWriteError(w, http.StatusBadRequest, "register needs id and url")
		return
	}
	m.mu.Lock()
	if m.ms.Register(req, m.cfg.Clock()) {
		m.observeRingChange(func() { m.ring.Add(req.ID) })
	}
	if c, ok := m.conns[req.ID]; ok && c.url != req.URL {
		delete(m.conns, req.ID) // re-registered elsewhere: drop the stale conn
	}
	known, _, _ := m.ms.Counts()
	m.mu.Unlock()
	m.haNoteMember(req.ID, req.URL, req.Gen)
	fleetWriteJSON(w, http.StatusOK, RegisterResponse{OK: true, Known: known})
}

func (m *Master) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fleetWriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	m.mu.Lock()
	resp := m.ms.Heartbeat(req, m.cfg.Clock())
	m.mu.Unlock()
	// Heartbeat responses carry the lease view — the "renewed over the
	// existing heartbeat plumbing" half: agents learn a new epoch from
	// whichever master they can still reach, including the standby.
	resp.Epoch, resp.Holder = m.haStamp()
	fleetWriteJSON(w, http.StatusOK, resp)
}

func (m *Master) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fleetWriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req DeregisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, "decoding deregister: %v", err)
		return
	}
	m.mu.Lock()
	if m.ms.Deregister(req.ID) {
		if m.ring.Has(req.ID) {
			m.observeRingChange(func() { m.ring.Remove(req.ID) })
		}
		delete(m.conns, req.ID)
	}
	m.mu.Unlock()
	m.haNoteUnmember(req.ID)
	fleetWriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (m *Master) handleMembers(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	snap := m.ms.Snapshot(m.cfg.Clock())
	m.mu.Unlock()
	fleetWriteJSON(w, http.StatusOK, snap)
}

// handleRoute is GET /fleet/v1/route?key=N: where a key routes right
// now. Chaos harnesses sample it across membership changes to assert
// the bounded-movement property on the live master, not just the ring
// in isolation.
func (m *Master) handleRoute(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		fleetWriteError(w, http.StatusBadRequest, "route needs ?key=<uint64>")
		return
	}
	m.mu.Lock()
	info := m.routeLocked(key, nil)
	m.mu.Unlock()
	fleetWriteJSON(w, http.StatusOK, info)
}

func (m *Master) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	known, healthy, suspect := m.ms.Counts()
	m.mu.Unlock()
	resp := ReadyResponse{Known: known, Healthy: healthy, Suspect: suspect, Quorum: m.cfg.Quorum}
	if healthy >= m.cfg.Quorum {
		resp.Status = "ready"
		fleetWriteJSON(w, http.StatusOK, resp)
		return
	}
	resp.Status = "not ready"
	w.Header().Set("Retry-After", "1")
	fleetWriteJSON(w, http.StatusServiceUnavailable, resp)
}

func (m *Master) handleTrace(w http.ResponseWriter, r *http.Request) {
	fleetWriteJSON(w, http.StatusOK, m.traces.Dump(0))
}

// ---- routing ----

// routeLocked computes a key's owner and failover candidates. When
// packages is non-nil, routing is affinity-aware: an agent whose
// gossiped directory already holds a superset image of the requested
// packages serves the spec as a pure hit — no merge, no new bytes —
// so superset holders outrank everything except the owner-when-it-
// also-holds. The pinned preference order (TestRouteAffinityOrder):
//
//  1. the ring owner, when routable AND holding a superset
//  2. non-owner superset holders, in rendezvous order
//  3. the ring owner, when routable (no superset)
//  4. remaining routable agents, in rendezvous order
//
// Caller holds m.mu.
func (m *Master) routeLocked(key uint64, packages []string) RouteInfo {
	info := RouteInfo{Key: key}
	routable := m.ms.Routable()
	owner := m.ring.Lookup(key)
	// The ring's pick leads iff it is currently routable; otherwise the
	// rendezvous order alone decides (the owner is partitioned or
	// draining — its keys spill to stable fallbacks until it returns).
	ownerRoutable := false
	for _, id := range routable {
		if id == owner {
			ownerRoutable = true
			break
		}
	}
	if owner != "" {
		info.Owner = owner
	}
	ownerHolds := packages != nil && ownerRoutable && m.holdsSupersetLocked(owner, packages)
	if ownerHolds {
		info.Candidates = append(info.Candidates, owner)
	}
	if packages != nil {
		for _, id := range RendezvousOrder(routable, key) {
			if id == owner {
				continue
			}
			if m.holdsSupersetLocked(id, packages) {
				if len(info.Candidates) == 0 {
					info.Affinity = true // leading pick is an affinity redirect
				}
				info.Candidates = append(info.Candidates, id)
			}
		}
	}
	if ownerRoutable && !ownerHolds {
		info.Candidates = append(info.Candidates, owner)
	}
	for _, id := range RendezvousOrder(routable, key) {
		if id == owner || contains(info.Candidates, id) {
			continue
		}
		info.Candidates = append(info.Candidates, id)
	}
	if len(info.Candidates) > m.cfg.MaxAttempts {
		info.Candidates = info.Candidates[:m.cfg.MaxAttempts]
	}
	return info
}

// holdsSupersetLocked reports whether id's gossiped directory mirror
// holds an image covering every requested package key. Caller holds
// m.mu.
func (m *Master) holdsSupersetLocked(id string, packages []string) bool {
	dir := m.ms.Dir(id)
	if dir == nil {
		return false
	}
	for _, e := range dir.Entries() {
		if len(e.Packages) < len(packages) {
			continue
		}
		have := make(map[string]bool, len(e.Packages))
		for _, k := range e.Packages {
			have[k] = true
		}
		ok := true
		for _, k := range packages {
			if !have[k] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func contains(ids []string, id string) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

// connLocked returns (creating if needed) the client for an agent.
// Caller holds m.mu.
func (m *Master) connLocked(id string) *agentConn {
	url := m.ms.URL(id)
	if url == "" {
		return nil
	}
	if c, ok := m.conns[id]; ok && c.url == url {
		return c
	}
	hc := &http.Client{}
	if m.cfg.TransportFor != nil {
		hc.Transport = m.cfg.TransportFor(url)
	}
	cl := server.NewClient(url, hc)
	cl.MaxRetries = 0 // failover to the next candidate is the retry
	cl.SetBreaker(resilience.NewBreaker(m.cfg.Breaker))
	if m.ha.enabled() {
		// Every forward carries the lease view, read at send time: a
		// demoted master's next forward already carries the new epoch.
		cl.SetExtraHeaders(func(h http.Header) {
			if epoch, holder := m.haStamp(); epoch > 0 {
				h.Set(server.EpochHeader, strconv.FormatUint(epoch, 10))
				h.Set(server.MasterHeader, holder)
			}
		})
	}
	c := &agentConn{url: url, client: cl}
	m.conns[id] = c
	return c
}

// handleRequest is POST /v1/request on the master: route by spec
// signature, forward, fail over along the rendezvous order.
func (m *Master) handleRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fleetWriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body server.RequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		fleetWriteError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(body.Packages) == 0 {
		fleetWriteError(w, http.StatusBadRequest, "request needs packages")
		return
	}

	// Responses are stamped with the lease view whatever the outcome, so
	// clients can tell which master term answered across a failover.
	epoch, holder := m.haStamp()
	if epoch > 0 {
		w.Header().Set(server.EpochHeader, strconv.FormatUint(epoch, 10))
		w.Header().Set(server.MasterHeader, holder)
	}
	if !m.haIsPrimary() {
		w.Header().Set("Retry-After", "1")
		fleetWriteError(w, http.StatusServiceUnavailable,
			"not primary: epoch %d held by %s", epoch, holder)
		return
	}

	// Continue a propagated trace or start a fresh one; the forward
	// client re-propagates it to the chosen agent.
	tid, parent, _ := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeaderName))
	at := m.spans.Start(tid, parent)
	routeSpan := at.Begin(telemetry.StageFleetRoute, at.Root())

	key := RouteKey(body.Packages)
	m.mu.Lock()
	info := m.routeLocked(key, body.Packages)
	m.mu.Unlock()
	if info.Affinity {
		m.reg.Counter(metricRouteAffinity, helpRouteAffinity).Inc()
	}
	at.AttrInt(routeSpan, "route_key", int64(key))
	at.AttrStr(routeSpan, "owner", info.Owner)
	at.End(routeSpan)

	if len(info.Candidates) == 0 {
		at.Finish("unroutable", "no routable agents", 0)
		w.Header().Set("Retry-After", "1")
		fleetWriteError(w, http.StatusServiceUnavailable, "no routable agents")
		return
	}

	ctx, cancel := m.forwardContext(r)
	defer cancel()
	ctx = telemetry.ContextWithTrace(ctx, at)

	var lastErr error
	for _, id := range info.Candidates {
		m.mu.Lock()
		conn := m.connLocked(id)
		m.mu.Unlock()
		if conn == nil {
			continue
		}
		fwd := at.Begin(telemetry.StageFleetForward, at.Root())
		at.AttrStr(fwd, "agent", id)
		var resp server.RequestResponse
		err := conn.client.DoCtx(ctx, http.MethodPost, "/v1/request", body, &resp)
		at.End(fwd)
		if err == nil {
			m.routeCount(id, "ok")
			at.Finish(resp.Op, "", 0)
			w.Header().Set(AgentHeader, id)
			fleetWriteJSON(w, http.StatusOK, RouteResponse{
				Op: resp.Op, ImageID: resp.ImageID, ImageVersion: resp.ImageVersion,
				ImageSize: resp.ImageSize, RequestBytes: resp.RequestBytes,
				BytesWritten: resp.BytesWritten, Evicted: resp.Evicted,
				Packages: resp.Packages, Agent: id,
			})
			return
		}
		lastErr = err
		// An agent refusing with a higher epoch is the demotion signal:
		// a newer primary exists and the agents already follow it. A
		// demoted master must not keep forwarding — the remaining
		// candidates would see a stale (or holderless) stamp.
		m.maybeDemoteOnEpoch(err)
		if !m.haIsPrimary() {
			newEpoch, newHolder := m.haStamp()
			w.Header().Set(server.EpochHeader, strconv.FormatUint(newEpoch, 10))
			w.Header().Set(server.MasterHeader, newHolder)
			w.Header().Set("Retry-After", "1")
			at.Finish("superseded", "demoted mid-forward", 0)
			fleetWriteError(w, http.StatusServiceUnavailable,
				"not primary: superseded at epoch %d", newEpoch)
			return
		}
		switch outcome := classifyForwardError(err); outcome {
		case "shed", "rejected":
			// The agent answered and said no (429 admission, 4xx): relay
			// verbatim — a different agent would only duplicate the spec's
			// cache slice.
			m.routeCount(id, outcome)
			se := err.(*server.StatusError)
			at.Finish(outcome, se.Msg, 0)
			if outcome == "shed" {
				w.Header().Set("Retry-After", retryAfterSeconds(se))
			}
			fleetWriteError(w, se.Status, "%s", forwardErrMsg(se))
			return
		case "unavailable":
			// 503: degraded/recovering agent — route around it.
			m.routeCount(id, outcome)
		case "circuit_open":
			m.routeCount(id, outcome)
		default: // transport error
			m.routeCount(id, "transport_error")
			m.mu.Lock()
			m.ms.Suspect(id)
			m.mu.Unlock()
		}
		if ctx.Err() != nil {
			break
		}
	}
	at.Finish("error", fmt.Sprintf("all candidates failed: %v", lastErr), 0)
	w.Header().Set("Retry-After", "1")
	fleetWriteError(w, http.StatusServiceUnavailable, "all candidates failed: %v", lastErr)
}

// forwardContext derives the downstream budget: the propagated client
// deadline if any, capped by ForwardTimeout.
func (m *Master) forwardContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if v := r.Header.Get(server.DeadlineHeader); v != "" {
		if ns, err := strconv.ParseInt(v, 10, 64); err == nil && ns > 0 {
			var cancel1 context.CancelFunc
			ctx, cancel1 = context.WithDeadline(ctx, time.Unix(0, ns))
			ctx2, cancel2 := context.WithTimeout(ctx, m.cfg.ForwardTimeout)
			return ctx2, func() { cancel2(); cancel1() }
		}
	}
	return context.WithTimeout(ctx, m.cfg.ForwardTimeout)
}

// classifyForwardError buckets a forward failure for the routing loop
// and the route_total outcome label.
func classifyForwardError(err error) string {
	if server.IsCircuitOpen(err) {
		return "circuit_open"
	}
	var se *server.StatusError
	if asStatusError(err, &se) {
		switch {
		case se.Status == http.StatusServiceUnavailable:
			return "unavailable"
		case se.Status == http.StatusTooManyRequests:
			return "shed"
		default:
			return "rejected"
		}
	}
	return "transport_error"
}

// asStatusError unwraps err to a *server.StatusError without importing
// errors.As at every call site.
func asStatusError(err error, out **server.StatusError) bool {
	for err != nil {
		if se, ok := err.(*server.StatusError); ok {
			*out = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func forwardErrMsg(se *server.StatusError) string {
	if se.Msg != "" {
		return se.Msg
	}
	return fmt.Sprintf("agent refused with status %d", se.Status)
}

// retryAfterSeconds relays the agent's own Retry-After hint (whole
// seconds, minimum 1) instead of a hardcoded value, so admission
// windows survive the extra hop.
func retryAfterSeconds(se *server.StatusError) string {
	if se.RetryAfter > 0 {
		return strconv.Itoa(int((se.RetryAfter + time.Second - 1) / time.Second))
	}
	return "1"
}

func (m *Master) routeCount(agent, outcome string) {
	m.reg.Counter(metricRouteTotal, helpRouteTotal,
		telemetry.Label{Key: "agent", Value: agent},
		telemetry.Label{Key: "outcome", Value: outcome}).Inc()
}

// ---- sweeping & ring movement ----

// SweepNow runs one membership sweep: ages healthy members to suspect
// and (when DeadAfter is set) suspect to dead, removing the dead from
// the ring. Returns the IDs that died.
func (m *Master) SweepNow() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	died := m.ms.Sweep(m.cfg.Clock())
	for _, id := range died {
		if m.ring.Has(id) {
			id := id
			m.observeRingChange(func() { m.ring.Remove(id) })
		}
		delete(m.conns, id)
	}
	return died
}

// StartSweeper runs SweepNow every interval until the returned stop
// function is called. interval <= 0 disables sweeping.
func (m *Master) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				m.SweepNow()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// observeRingChange runs mutate (an Add or Remove) and observes the
// fraction of a fixed probe keyset whose owner changed. Transitions
// from or to an empty ring are not observed — movement there is total
// by construction, not a churn property. Caller holds m.mu.
func (m *Master) observeRingChange(mutate func()) {
	if m.ring.Len() == 0 {
		mutate()
		return
	}
	before := make([]string, probeKeys)
	for i := range before {
		before[i] = m.ring.Lookup(probeKey(i))
	}
	mutate()
	if m.ring.Len() == 0 {
		return
	}
	moved := 0
	for i := range before {
		if m.ring.Lookup(probeKey(i)) != before[i] {
			moved++
		}
	}
	m.keyMove.Observe(float64(moved) / float64(probeKeys))
}

// probeKey spreads probe indices across the keyspace (golden-ratio
// stride; Lookup mixes again, so the stride just needs distinctness).
func probeKey(i int) uint64 { return uint64(i) * 0x9e3779b97f4a7c15 }

// KeyMovementStats exposes the key-movement histogram's count and mean
// for tests and the chaos harness audit.
func (m *Master) KeyMovementStats() (count int64, mean float64) {
	count = m.keyMove.Count()
	if count > 0 {
		mean = m.keyMove.Sum() / float64(count)
	}
	return count, mean
}

// MembersNow returns the current membership snapshot.
func (m *Master) MembersNow() []MemberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ms.Snapshot(m.cfg.Clock())
}

// ---- JSON helpers (mirror the server package's idiom) ----

func fleetWriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func fleetWriteError(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	fleetWriteJSON(w, status, map[string]string{"error": strings.TrimSpace(msg)})
}
