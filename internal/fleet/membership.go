package fleet

import (
	"sort"
	"time"

	"repro/internal/cluster"
)

// AgentState is one member's health as the master sees it.
type AgentState int

const (
	// AgentHealthy: heartbeats arriving, forwards succeeding.
	AgentHealthy AgentState = iota
	// AgentSuspect: heartbeats missing past SuspectAfter, or the last
	// forward to it failed at the transport. Suspect members stay on
	// the ring (so the keyspace does not reshuffle during a blip) but
	// are routed around via the rendezvous fallback order.
	AgentSuspect
	// AgentDead: missing past DeadAfter; removed from the ring.
	AgentDead
)

// String renders the state for /fleet/v1/members and logs.
func (s AgentState) String() string {
	switch s {
	case AgentSuspect:
		return "suspect"
	case AgentDead:
		return "dead"
	default:
		return "healthy"
	}
}

// member is one registered agent's control-plane state.
type member struct {
	id       string
	url      string
	gen      uint64
	state    AgentState
	lastBeat time.Time
	dir      *cluster.Follower
}

// Membership is the master's agent table. It is soft state: built
// entirely from Register/Heartbeat traffic, discarded on master
// restart, rebuilt by agents re-registering. Not goroutine-safe; the
// Master guards it with its route lock.
type Membership struct {
	members      map[string]*member
	suspectAfter time.Duration
	deadAfter    time.Duration
}

// NewMembership creates an empty table. suspectAfter <= 0 disables the
// heartbeat-age suspect transition; deadAfter <= 0 means members are
// never aged out (partition-tolerant default for harnesses).
func NewMembership(suspectAfter, deadAfter time.Duration) *Membership {
	return &Membership{
		members:      make(map[string]*member),
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
	}
}

// Register inserts or refreshes an agent. It returns whether the ring
// membership changed (a new agent, or one back from the dead). A
// generation change resets the gossip mirror: the agent's directory
// revisions restarted with its process.
func (ms *Membership) Register(req RegisterRequest, now time.Time) (ringChanged bool) {
	m, ok := ms.members[req.ID]
	if !ok {
		m = &member{id: req.ID, dir: cluster.NewFollower()}
		ms.members[req.ID] = m
		ringChanged = true
	}
	if m.state == AgentDead {
		ringChanged = true
	}
	if m.gen != req.Gen {
		m.dir.Reset()
	}
	m.url = req.URL
	m.gen = req.Gen
	m.state = AgentHealthy
	m.lastBeat = now
	return ringChanged
}

// Deregister removes an agent, reporting whether it was known.
func (ms *Membership) Deregister(id string) bool {
	if _, ok := ms.members[id]; !ok {
		return false
	}
	delete(ms.members, id)
	return true
}

// Heartbeat applies one beat. Unknown agents (or a generation the
// master has not registered) get Unknown=true and must re-register —
// the path that heals a master restart. A delta gap asks for a resync.
func (ms *Membership) Heartbeat(req HeartbeatRequest, now time.Time) HeartbeatResponse {
	m, ok := ms.members[req.ID]
	if !ok || m.gen != req.Gen || m.state == AgentDead {
		// A dead member is off the ring; it must re-register so the
		// master re-admits it (and re-observes the key movement).
		return HeartbeatResponse{Unknown: true}
	}
	m.lastBeat = now
	m.state = AgentHealthy
	resp := HeartbeatResponse{}
	if !req.Delta.Empty() || req.Delta.To != m.dir.Rev() {
		if m.dir.Apply(req.Delta) == cluster.DeltaGap {
			resp.Resync = true
		}
	}
	resp.AckRev = m.dir.Rev()
	return resp
}

// Suspect marks an agent suspect after a failed forward, so routing
// skips it before the heartbeat age catches up. Healthy is restored by
// the next heartbeat.
func (ms *Membership) Suspect(id string) {
	if m, ok := ms.members[id]; ok && m.state == AgentHealthy {
		m.state = AgentSuspect
	}
}

// Sweep ages members: healthy -> suspect past suspectAfter, anything
// -> dead past deadAfter. It returns the IDs that just died (the
// caller removes them from the ring).
func (ms *Membership) Sweep(now time.Time) (died []string) {
	for id, m := range ms.members {
		age := now.Sub(m.lastBeat)
		if ms.deadAfter > 0 && age > ms.deadAfter && m.state != AgentDead {
			m.state = AgentDead
			died = append(died, id)
			continue
		}
		if ms.suspectAfter > 0 && age > ms.suspectAfter && m.state == AgentHealthy {
			m.state = AgentSuspect
		}
	}
	sort.Strings(died)
	return died
}

// URL returns an agent's advertised URL ("" when unknown).
func (ms *Membership) URL(id string) string {
	if m, ok := ms.members[id]; ok {
		return m.url
	}
	return ""
}

// State returns an agent's state (AgentDead when unknown).
func (ms *Membership) State(id string) AgentState {
	if m, ok := ms.members[id]; ok {
		return m.state
	}
	return AgentDead
}

// Counts returns (known, healthy, suspect). Dead members count as
// known until deregistered or re-registered.
func (ms *Membership) Counts() (known, healthy, suspect int) {
	for _, m := range ms.members {
		known++
		switch m.state {
		case AgentHealthy:
			healthy++
		case AgentSuspect:
			suspect++
		}
	}
	return known, healthy, suspect
}

// Routable returns member IDs forwarding may target, sorted: healthy
// members, or — when none are healthy — suspects as forced probes
// (the same last-resort policy the cluster scheduler uses when every
// circuit is open).
func (ms *Membership) Routable() []string {
	var healthy, suspect []string
	for id, m := range ms.members {
		switch m.state {
		case AgentHealthy:
			healthy = append(healthy, id)
		case AgentSuspect:
			suspect = append(suspect, id)
		}
	}
	if len(healthy) > 0 {
		sort.Strings(healthy)
		return healthy
	}
	sort.Strings(suspect)
	return suspect
}

// Snapshot renders the member table for /fleet/v1/members.
func (ms *Membership) Snapshot(now time.Time) []MemberInfo {
	out := make([]MemberInfo, 0, len(ms.members))
	for _, m := range ms.members {
		out = append(out, MemberInfo{
			ID:          m.id,
			URL:         m.url,
			State:       m.state.String(),
			Gen:         m.gen,
			DirRev:      m.dir.Rev(),
			DirImages:   m.dir.Len(),
			SinceBeatMS: now.Sub(m.lastBeat).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dir returns an agent's mirrored image directory (nil when unknown),
// for observability endpoints and tests.
func (ms *Membership) Dir(id string) *cluster.Follower {
	if m, ok := ms.members[id]; ok {
		return m.dir
	}
	return nil
}
