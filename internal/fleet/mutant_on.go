//go:build landlord_mutants

package fleet

import (
	"os"
	"sync"
)

// Fleet-layer mutants compiled in under the landlord_mutants tag,
// selected by the LANDLORD_MUTANT environment variable (the same
// mechanism as internal/core's mutants):
//
//	staleepoch — the agent's epoch gate accepts forwards from a
//	             demoted primary, so after a failover both the old
//	             and new master can mutate the same agent's cache.
//	             check.RunHAChaos must catch it via the per-agent
//	             epoch-monotonicity audit.
var (
	mutantOnce sync.Once
	mutantName string
)

// mutantEnabled reports whether the named mutant was selected via
// LANDLORD_MUTANT. An empty or unset variable disables all mutants.
func mutantEnabled(name string) bool {
	mutantOnce.Do(func() { mutantName = os.Getenv("LANDLORD_MUTANT") })
	return mutantName == name
}
