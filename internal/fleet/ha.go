package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/persist"
	"repro/internal/server"
)

// High availability: lease-based multi-master with a replicated
// control-plane log.
//
// Two masters run at once — one primary holding the lease, one
// standby. The lease is pull-renewed: each LeaseTick the standby POSTs
// /fleet/v1/lease to its peer, and the grant doubles as replication —
// the response carries the primary's HA-log frames from the standby's
// watermark (the poll's From field is the ack), or a checkpoint when
// the watermark has gapped. The HA log records epoch changes and
// durable membership (registrations/deregistrations), and the primary
// persists the folded state to StateDir on every append, so the
// standby's mirror is provably byte-identical to the primary's last
// durable state once the stream is drained.
//
// Failover is epoch-counted, not wall-clocked: a standby that misses
// two consecutive lease polls promotes itself to epoch+1 — "within two
// lease intervals of primary silence" — and starts a fresh HA log
// whose stream identity is the new epoch. Every forward the primary
// sends is stamped with its epoch and ID; agents track the maximum
// epoch they have seen (learned from forwards and from heartbeat
// responses) and refuse stale-epoch forwards with 503 + the current
// epoch, which is also how a recovered old primary finds out it has
// been superseded: it demotes to standby and resyncs over the lease
// channel.
//
// What this deliberately is NOT: a quorum protocol. With only two
// masters and no fencing, a partition that severs exactly the
// master↔master link while both still reach the agents can alternate
// the lease between them ("epoch duel"). That is safe — epochs are
// monotone, agents only ever honor the highest, and no two masters
// ever hold the same epoch — but it is availability churn, accepted
// and documented as a non-goal (DESIGN.md §13).

// HAConfig enables the high-availability layer on a master. The zero
// value (ID == "") disables it entirely — single-master deployments
// stamp no epochs and serve no lease.
type HAConfig struct {
	// ID is this master's stable identity (stamped on forwards as
	// X-Landlord-Master).
	ID string
	// PeerURL is the other master's base URL (lease polls go here).
	PeerURL string
	// StartPrimary boots this master holding the lease at epoch 1; a
	// standby (false) boots polling PeerURL.
	StartPrimary bool
	// StateDir, when set, is where the primary persists the folded HA
	// state (ha-state.json, one CRC frame) on every log append.
	StateDir string
	// LeaseInterval is the tick period for StartLeaseLoop (<= 0 takes
	// 1s). Harness-driven masters call LeaseTick directly instead.
	LeaseInterval time.Duration
	// HTTPClient talks to the peer (nil = http.DefaultClient); the
	// chaos harness injects fault transports here.
	HTTPClient *http.Client
}

// haStateFile is the durable state's filename inside StateDir.
const haStateFile = "ha-state.json"

// haLogRing bounds the HA log's replay ring; control-plane records are
// tiny and a gapped standby resyncs from a checkpoint anyway.
const haLogRing = 1024

// HAMember is one durably-recorded agent registration.
type HAMember struct {
	ID  string `json:"id"`
	URL string `json:"url"`
	Gen uint64 `json:"gen"`
}

// HAState is the folded control-plane state: the lease position plus
// the durable member set, members sorted by ID so the encoding is
// canonical — byte-comparable across primary and standby.
type HAState struct {
	Epoch   uint64     `json:"epoch"`
	Holder  string     `json:"holder"`
	Members []HAMember `json:"members"`
}

// haRecord is one HA-log entry (JSON payload inside a CRC frame).
type haRecord struct {
	Kind   string   `json:"kind"` // "epoch", "member", "unmember"
	Epoch  uint64   `json:"epoch,omitempty"`
	Holder string   `json:"holder,omitempty"`
	Member HAMember `json:"member,omitempty"`
	ID     string   `json:"id,omitempty"`
}

// haCheckpoint is the HA log's resync payload.
type haCheckpoint struct {
	Next  uint64  `json:"next"`
	State HAState `json:"state"`
}

// apply folds one record into the state.
func (st *HAState) apply(rec haRecord) {
	switch rec.Kind {
	case "epoch":
		st.Epoch = rec.Epoch
		st.Holder = rec.Holder
	case "member":
		for i := range st.Members {
			if st.Members[i].ID == rec.Member.ID {
				st.Members[i] = rec.Member
				return
			}
		}
		st.Members = append(st.Members, rec.Member)
		sort.Slice(st.Members, func(i, j int) bool { return st.Members[i].ID < st.Members[j].ID })
	case "unmember":
		for i := range st.Members {
			if st.Members[i].ID == rec.ID {
				st.Members = append(st.Members[:i], st.Members[i+1:]...)
				return
			}
		}
	}
}

// canon renders the state canonically (members already sorted).
func (st HAState) canon() []byte {
	b, _ := json.Marshal(st)
	return b
}

// LeaseRequest is the standby's POST /fleet/v1/lease body: its
// identity, the highest epoch it knows, and its HA-log watermark (the
// ack — every record below From is applied on the standby).
type LeaseRequest struct {
	ID    string `json:"id"`
	Epoch uint64 `json:"epoch"`
	From  uint64 `json:"from"`
}

// LeaseResponse is the grant. Granted is false when the receiver is
// not primary (or has itself seen a higher epoch) — the poll still
// teaches the standby the receiver's epoch view.
type LeaseResponse struct {
	Granted bool   `json:"granted"`
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder"`
	// Exactly one of Batch/Checkpoint is set on a grant: frames from
	// the ack watermark, or a checkpoint when the watermark gapped.
	Batch      *persist.StreamBatch           `json:"batch,omitempty"`
	Checkpoint *persist.StreamCheckpointBatch `json:"checkpoint,omitempty"`
}

// HAStatus is the GET /fleet/v1/ha payload (and LeaseTick's report).
type HAStatus struct {
	Enabled bool   `json:"enabled"`
	Role    string `json:"role"` // "primary" | "standby"
	Epoch   uint64 `json:"epoch"`
	Holder  string `json:"holder"`
	// Missed is the standby's consecutive missed lease polls.
	Missed int `json:"missed"`
	// StreamNext is the primary's next HA-log sequence; MirrorNext the
	// standby's watermark. Drained replication means MirrorNext on the
	// standby equals StreamNext on the primary.
	StreamNext uint64 `json:"stream_next,omitempty"`
	MirrorNext uint64 `json:"mirror_next,omitempty"`
	Resyncs    int    `json:"resyncs"`
	Promotions int    `json:"promotions"`
	Demotions  int    `json:"demotions"`
	// State is the folded HA state's canonical encoding — the
	// byte-identity audit compares these across masters.
	State []byte `json:"state"`
	// RecoveredState is the mirror exactly as-at this master's last
	// promotion: what it inherited from the dead primary, before its
	// own epoch record. Empty if never promoted from standby.
	RecoveredState []byte `json:"recovered_state,omitempty"`
}

// haControl is the master's HA half, locked separately from the
// routing state (lock order: m.mu before ha.mu, never the reverse —
// the forward path stamps epochs under ha.mu alone).
type haControl struct {
	cfg  HAConfig
	peer *server.Client

	mu        sync.Mutex
	primary   bool
	epoch     uint64 // highest epoch seen; ours when primary
	holder    string
	missed    int
	state     HAState // primary: folded log; standby: replicated mirror
	log       *persist.Streamer
	mirror    *persist.Follower
	resyncs   int
	promoted  int
	demoted   int
	recovered []byte // mirror bytes as-at last promotion
}

// enabled reports whether HA is configured (safe unlocked: cfg is
// immutable after NewMaster).
func (ha *haControl) enabled() bool { return ha.cfg.ID != "" }

// initHA wires the HA half at master construction.
func (m *Master) initHA(cfg HAConfig) {
	m.ha.cfg = cfg
	if !m.ha.enabled() {
		return
	}
	if cfg.PeerURL != "" {
		cl := server.NewClient(cfg.PeerURL, cfg.HTTPClient)
		cl.MaxRetries = 0 // the next tick is the retry
		cl.SetBreaker(nil)
		m.ha.peer = cl
	}
	m.ha.mirror = persist.NewFollower(m.haMirrorApply, m.haMirrorRestore)
	if cfg.StartPrimary {
		m.ha.mu.Lock()
		m.becomePrimaryLocked(1)
		m.ha.mu.Unlock()
	}
}

// becomePrimaryLocked installs this master as the epoch's holder: a
// fresh HA log whose stream identity is the epoch (so any follower of
// the old log gaps into a resync), the epoch record appended, the
// folded state persisted. Members inherited from the previous epoch
// (the mirror at promotion) are re-logged so the fresh log is
// self-contained — a standby replaying it from record 1 rebuilds the
// full state, not just the epoch line. Caller holds ha.mu.
func (m *Master) becomePrimaryLocked(epoch uint64) {
	ha := &m.ha
	ha.primary = true
	ha.epoch = epoch
	ha.holder = ha.cfg.ID
	ha.missed = 0
	ha.log = persist.NewStreamer(epoch, haLogRing, func() ([]byte, uint64, error) {
		// Called from ServeWAL/lease handling; ha.mu is NOT held here
		// (Checkpoint() is only invoked from handleLease, which
		// snapshots under ha.mu itself). Guard anyway for the HTTP
		// /ha checkpoint path.
		ha.mu.Lock()
		defer ha.mu.Unlock()
		return m.haCheckpointLocked()
	})
	inherited := ha.state.Members
	ha.state.Members = nil
	m.haAppendLocked(haRecord{Kind: "epoch", Epoch: epoch, Holder: ha.cfg.ID})
	for _, mem := range inherited {
		m.haAppendLocked(haRecord{Kind: "member", Member: mem})
	}
}

// haCheckpointLocked marshals the checkpoint payload. Caller holds
// ha.mu.
func (m *Master) haCheckpointLocked() ([]byte, uint64, error) {
	payload, err := json.Marshal(haCheckpoint{Next: m.ha.log.Next(), State: m.ha.state})
	return payload, m.ha.log.Next(), err
}

// haAppendLocked publishes one record to the HA log, folds it into the
// state, and persists the fold. Caller holds ha.mu and must be
// primary.
func (m *Master) haAppendLocked(rec haRecord) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	m.ha.log.Publish(payload)
	m.ha.state.apply(rec)
	m.haPersistLocked()
}

// haPersistLocked writes the folded state to StateDir as one CRC
// frame, atomically (temp + rename). Caller holds ha.mu.
func (m *Master) haPersistLocked() {
	dir := m.ha.cfg.StateDir
	if dir == "" {
		return
	}
	frame := persist.AppendFrame(nil, m.ha.state.canon())
	tmp := filepath.Join(dir, haStateFile+".tmp")
	if err := os.WriteFile(tmp, frame, 0o644); err != nil {
		return
	}
	os.Rename(tmp, filepath.Join(dir, haStateFile))
}

// ReadHAState decodes a persisted ha-state.json (one CRC frame of
// canonical HAState JSON) — the harness reads a killed primary's file
// with it for the byte-identity audit.
func ReadHAState(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var payload []byte
	n, err := persist.DecodeFrames(b, func(p []byte) error {
		payload = append([]byte(nil), p...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n != 1 {
		return nil, fmt.Errorf("fleet: ha state file holds %d frames, want 1", n)
	}
	return payload, nil
}

// haStamp returns the epoch and holder to stamp on forwards and
// responses (0, "" when HA is off or this master is standby-silent).
func (m *Master) haStamp() (uint64, string) {
	if !m.ha.enabled() {
		return 0, ""
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.epoch, m.ha.holder
}

// haIsPrimary reports role (true when HA is disabled: a single master
// always serves).
func (m *Master) haIsPrimary() bool {
	if !m.ha.enabled() {
		return true
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.ha.primary
}

// haNoteMember durably records a registration (primary only; standbys
// learn it over replication).
func (m *Master) haNoteMember(id, url string, gen uint64) {
	if !m.ha.enabled() {
		return
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if m.ha.primary {
		m.haAppendLocked(haRecord{Kind: "member", Member: HAMember{ID: id, URL: url, Gen: gen}})
	}
}

// haNoteUnmember durably records a deregistration.
func (m *Master) haNoteUnmember(id string) {
	if !m.ha.enabled() {
		return
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if m.ha.primary {
		m.haAppendLocked(haRecord{Kind: "unmember", ID: id})
	}
}

// maybeDemoteOnEpoch inspects a forward failure for an epoch rejection
// from an agent that has adopted a newer primary, and demotes. This is
// how a partitioned-then-healed old primary finds out it lost the
// lease without waiting for a lease exchange.
func (m *Master) maybeDemoteOnEpoch(err error) {
	if !m.ha.enabled() || err == nil {
		return
	}
	var se *server.StatusError
	if !asStatusError(err, &se) {
		return
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if se.Epoch > m.ha.epoch {
		m.demoteLocked(se.Epoch, "")
	}
}

// demoteLocked steps down to standby under a higher epoch. The mirror
// restarts unadopted: the next lease poll gaps and resyncs from the
// new primary's checkpoint. Caller holds ha.mu.
func (m *Master) demoteLocked(epoch uint64, holder string) {
	ha := &m.ha
	ha.primary = false
	ha.epoch = epoch
	ha.holder = holder
	ha.missed = 0
	ha.log = nil
	ha.demoted++
	ha.state = HAState{}
	ha.mirror = persist.NewFollower(m.haMirrorApply, m.haMirrorRestore)
}

// handleLease serves the standby's pull: grant + replication when this
// master is primary, a refusal teaching the caller our epoch view
// otherwise. A request carrying a higher epoch than ours is proof we
// were superseded — demote before answering.
func (m *Master) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		fleetWriteError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !m.ha.enabled() {
		fleetWriteError(w, http.StatusNotFound, "ha not configured")
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, "decoding lease: %v", err)
		return
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if req.Epoch > m.ha.epoch {
		if m.ha.primary {
			m.demoteLocked(req.Epoch, req.ID)
		} else {
			m.ha.epoch = req.Epoch
			m.ha.holder = req.ID
		}
	}
	resp := LeaseResponse{Epoch: m.ha.epoch, Holder: m.ha.holder}
	if !m.ha.primary {
		fleetWriteJSON(w, http.StatusOK, resp)
		return
	}
	resp.Granted = true
	if batch, ok := m.ha.log.Batch(req.From, 0); ok {
		resp.Batch = &batch
	} else {
		payload, next, err := m.haCheckpointLocked()
		if err != nil {
			fleetWriteError(w, http.StatusInternalServerError, "lease checkpoint: %v", err)
			return
		}
		frame := persist.AppendFrame(nil, payload)
		resp.Checkpoint = &persist.StreamCheckpointBatch{
			StreamID: m.ha.log.ID(), Next: next, Frame: frame,
		}
	}
	fleetWriteJSON(w, http.StatusOK, resp)
}

// LeaseTick advances the lease state machine once. On a primary it is
// a no-op report. On a standby it polls the peer: a grant renews the
// lease and applies the replication it carried; a refusal or failure
// counts a miss, and two consecutive misses promote this master to
// epoch+1 — within two lease intervals of primary silence. Exported so
// harnesses drive failover deterministically; StartLeaseLoop wraps it
// for the daemon.
func (m *Master) LeaseTick(ctx context.Context) HAStatus {
	if !m.ha.enabled() {
		return HAStatus{}
	}
	m.ha.mu.Lock()
	if m.ha.primary || m.ha.peer == nil {
		defer m.ha.mu.Unlock()
		return m.haStatusLocked()
	}
	req := LeaseRequest{ID: m.ha.cfg.ID, Epoch: m.ha.epoch, From: m.ha.mirror.Next()}
	peer := m.ha.peer
	m.ha.mu.Unlock()

	var resp LeaseResponse
	err := peer.DoCtx(ctx, http.MethodPost, "/fleet/v1/lease", req, &resp)

	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	if m.ha.primary {
		// Promoted concurrently (an agent-side epoch rejection demoted
		// and re-promoted us, or another tick raced); the poll result
		// is stale.
		return m.haStatusLocked()
	}
	if err != nil || !resp.Granted {
		if resp.Epoch > m.ha.epoch {
			m.ha.epoch = resp.Epoch
			m.ha.holder = resp.Holder
		}
		m.ha.missed++
		if m.ha.missed >= 2 {
			m.ha.recovered = append([]byte(nil), m.ha.state.canon()...)
			m.ha.promoted++
			m.becomePrimaryLocked(m.ha.epoch + 1)
		}
		return m.haStatusLocked()
	}
	m.ha.missed = 0
	if resp.Epoch > m.ha.epoch || (resp.Epoch == m.ha.epoch && m.ha.holder == "") {
		m.ha.epoch = resp.Epoch
		m.ha.holder = resp.Holder
	}
	switch {
	case resp.Checkpoint != nil:
		if err := m.ha.mirror.ApplyCheckpoint(resp.Checkpoint.StreamID, resp.Checkpoint.Next, resp.Checkpoint.Frame); err == nil {
			m.ha.resyncs++
		}
	case resp.Batch != nil:
		if _, err := m.ha.mirror.ApplyBatch(resp.Batch.StreamID, resp.Batch.From, resp.Batch.Frames); err == persist.ErrStreamGap {
			// Identity changed under us (new primary term): the next
			// poll's From restarts from the mirror and the primary will
			// answer with a checkpoint.
			m.ha.mirror = persist.NewFollower(m.haMirrorApply, m.haMirrorRestore)
			m.ha.state = HAState{}
		}
	}
	return m.haStatusLocked()
}

// haMirrorApply / haMirrorRestore are the standby mirror callbacks
// (named so a gapped mirror can be rebuilt). They assume ha.mu is held
// by the caller driving the Follower — LeaseTick always holds it.
func (m *Master) haMirrorApply(payload []byte) error {
	var rec haRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return err
	}
	m.ha.state.apply(rec)
	return nil
}

func (m *Master) haMirrorRestore(payload []byte) error {
	var ck haCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return err
	}
	m.ha.state = ck.State
	return nil
}

// StartLeaseLoop runs LeaseTick every LeaseInterval until the returned
// stop function is called.
func (m *Master) StartLeaseLoop() (stop func()) {
	if !m.ha.enabled() {
		return func() {}
	}
	interval := m.ha.cfg.LeaseInterval
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				m.LeaseTick(ctx)
				cancel()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// haStatusLocked builds the status report. Caller holds ha.mu.
func (m *Master) haStatusLocked() HAStatus {
	ha := &m.ha
	st := HAStatus{
		Enabled:        true,
		Epoch:          ha.epoch,
		Holder:         ha.holder,
		Missed:         ha.missed,
		Resyncs:        ha.resyncs,
		Promotions:     ha.promoted,
		Demotions:      ha.demoted,
		State:          ha.state.canon(),
		RecoveredState: ha.recovered,
	}
	if ha.primary {
		st.Role = "primary"
		st.StreamNext = ha.log.Next()
	} else {
		st.Role = "standby"
		if ha.mirror != nil {
			st.MirrorNext = ha.mirror.Next()
		}
	}
	return st
}

// HAStatusNow returns the current HA status (the /fleet/v1/ha
// payload).
func (m *Master) HAStatusNow() HAStatus {
	if !m.ha.enabled() {
		return HAStatus{}
	}
	m.ha.mu.Lock()
	defer m.ha.mu.Unlock()
	return m.haStatusLocked()
}

func (m *Master) handleHA(w http.ResponseWriter, r *http.Request) {
	fleetWriteJSON(w, http.StatusOK, m.HAStatusNow())
}

// HAStateEqual reports whether two canonical state encodings match —
// a readable helper for tests and the harness.
func HAStateEqual(a, b []byte) bool { return bytes.Equal(a, b) }
