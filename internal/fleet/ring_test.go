package fleet

import (
	"fmt"
	"testing"
)

func ringWith(n, vnodes int) (*Ring, []string) {
	r := NewRing(vnodes)
	var members []string
	for i := 0; i < n; i++ {
		m := fmt.Sprintf("agent-%d", i)
		members = append(members, m)
		r.Add(m)
	}
	return r, members
}

func owners(r *Ring, keys int) []string {
	out := make([]string, keys)
	for k := 0; k < keys; k++ {
		out[k] = r.Lookup(uint64(k) * 0x9e3779b97f4a7c15)
	}
	return out
}

// TestRingKeyMovementBound pins the consistent-hashing contract the
// fleet-chaos acceptance criterion states: removing (or adding) one of
// N members moves at most 2/N of the keyspace, and every moved key
// involves the churned member.
func TestRingKeyMovementBound(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 4, 8, 16} {
		r, members := ringWith(n, 0)
		before := owners(r, keys)

		victim := members[n/2]
		r.Remove(victim)
		after := owners(r, keys)
		moved := 0
		for k := 0; k < keys; k++ {
			if before[k] != after[k] {
				moved++
				if before[k] != victim {
					t.Fatalf("n=%d: key %d moved %s -> %s without involving removed member %s",
						n, k, before[k], after[k], victim)
				}
			}
		}
		bound := 2 * keys / n
		if moved > bound {
			t.Fatalf("n=%d: removal moved %d/%d keys, bound %d (2/N)", n, moved, keys, bound)
		}
		if moved == 0 {
			t.Fatalf("n=%d: removal moved nothing; the member owned no keyspace", n)
		}

		// Re-adding restores the exact original assignment (the ring is
		// a pure function of the member set).
		r.Add(victim)
		restored := owners(r, keys)
		for k := 0; k < keys; k++ {
			if restored[k] != before[k] {
				t.Fatalf("n=%d: key %d not restored after re-add: %s != %s", n, k, restored[k], before[k])
			}
		}

		// Adding a fresh member moves at most 2/(N+1), all toward it.
		r.Add("agent-new")
		grown := owners(r, keys)
		moved = 0
		for k := 0; k < keys; k++ {
			if before[k] != grown[k] {
				moved++
				if grown[k] != "agent-new" {
					t.Fatalf("n=%d: key %d moved to %s, not the new member", n, k, grown[k])
				}
			}
		}
		if bound := 2 * keys / (n + 1); moved > bound {
			t.Fatalf("n=%d: addition moved %d/%d keys, bound %d", n, moved, keys, bound)
		}
	}
}

// TestRingBalance sanity-checks vnode spreading: no member owns more
// than ~3x its fair share at default vnodes.
func TestRingBalance(t *testing.T) {
	const keys = 30000
	r, _ := ringWith(6, 0)
	counts := map[string]int{}
	for _, o := range owners(r, keys) {
		counts[o]++
	}
	fair := keys / 6
	for m, c := range counts {
		if c > 3*fair || c < fair/3 {
			t.Fatalf("member %s owns %d of %d keys (fair %d): vnode spread too lumpy", m, c, keys, fair)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup(42); got != "" {
		t.Fatalf("empty ring returned %q", got)
	}
	r.Add("only")
	for k := uint64(0); k < 100; k++ {
		if got := r.Lookup(k); got != "only" {
			t.Fatalf("single-member ring returned %q", got)
		}
	}
	r.Remove("only")
	if got := r.Lookup(42); got != "" {
		t.Fatalf("emptied ring returned %q", got)
	}
}

// TestRendezvousStableUnderChurn pins the failover-order property: the
// relative order of surviving members for a key is unchanged by other
// members joining or leaving.
func TestRendezvousStableUnderChurn(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	for key := uint64(0); key < 200; key++ {
		full := RendezvousOrder(members, key)
		// Drop "c"; the order of the rest must be the full order with
		// "c" deleted.
		var want []string
		for _, m := range full {
			if m != "c" {
				want = append(want, m)
			}
		}
		got := RendezvousOrder([]string{"a", "b", "d", "e"}, key)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("key %d: survivor order changed after churn: got %v want %v", key, got, want)
			}
		}
	}
}

// TestRingDeterministicAcrossInsertionOrder: the ring is a pure
// function of the member set, not of Add ordering — a restarted master
// re-learning members in arbitrary order must route identically.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	a := NewRing(32)
	b := NewRing(32)
	for _, m := range []string{"x", "y", "z", "w"} {
		a.Add(m)
	}
	for _, m := range []string{"w", "z", "x", "y"} {
		b.Add(m)
	}
	for k := uint64(0); k < 5000; k++ {
		if a.Lookup(k) != b.Lookup(k) {
			t.Fatalf("key %d routes differently across insertion orders", k)
		}
	}
}

func TestRouteKeyOrderInsensitive(t *testing.T) {
	a := RouteKey([]string{"pkg-a", "pkg-b", "pkg-c"})
	b := RouteKey([]string{"pkg-c", "pkg-a", "pkg-b"})
	if a != b {
		t.Fatalf("RouteKey depends on package order: %x != %x", a, b)
	}
	if a == RouteKey([]string{"pkg-a", "pkg-b"}) {
		t.Fatal("distinct specs collided trivially")
	}
}
