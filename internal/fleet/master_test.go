package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/server"
)

// testRepo is a tiny shared package universe: every agent serves the
// same repository, as a real fleet would mount the same CVMFS tree.
func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 4
	cfg.LibraryFamilies = 8
	cfg.ApplicationFamilies = 12
	cfg.VersionsPerFamily = 2
	repo, err := pkggraph.Generate(cfg, 42)
	if err != nil {
		t.Fatalf("generating repo: %v", err)
	}
	return repo
}

// specKeys derives a deterministic distinct-package spec for index i.
func specKeys(repo *pkggraph.Repo, i, n int) []string {
	seen := map[string]bool{}
	var keys []string
	for j := 0; len(keys) < n; j++ {
		id := pkggraph.PkgID((i*7 + j*13 + 1) % repo.Len())
		k := repo.Package(id).Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

type testAgent struct {
	id  string
	srv *server.Server
	ts  *httptest.Server
	ag  *Agent
}

type testFleet struct {
	t      *testing.T
	repo   *pkggraph.Repo
	master *Master
	// handler indirection lets tests swap in a fresh master at the
	// same URL — a master restart from the agents' point of view.
	handler atomic.Value // http.Handler
	mts     *httptest.Server
	agents  []*testAgent
}

func newTestFleet(t *testing.T, nAgents int, mcfg MasterConfig) *testFleet {
	t.Helper()
	f := &testFleet{t: t, repo: testRepo(t), master: NewMaster(mcfg)}
	f.handler.Store(f.master.Handler())
	f.mts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(f.mts.Close)
	for i := 0; i < nAgents; i++ {
		f.addAgent(string(rune('a'+i)) + "gent")
	}
	return f
}

func (f *testFleet) addAgent(id string) *testAgent {
	f.t.Helper()
	srv, err := server.New(f.repo, core.Config{Alpha: 0.6})
	if err != nil {
		f.t.Fatalf("agent %s: %v", id, err)
	}
	ts := httptest.NewServer(srv.Handler())
	f.t.Cleanup(ts.Close)
	ag := NewAgent(AgentConfig{
		ID: id, AdvertiseURL: ts.URL, MasterURL: f.mts.URL,
		Interval: 10 * time.Millisecond,
	}, srv)
	a := &testAgent{id: id, srv: srv, ts: ts, ag: ag}
	f.agents = append(f.agents, a)
	return a
}

func (f *testFleet) beatAll() {
	f.t.Helper()
	for _, a := range f.agents {
		if err := a.ag.BeatNow(context.Background()); err != nil {
			f.t.Fatalf("agent %s beat: %v", a.id, err)
		}
	}
}

// request routes one spec through the master, returning the full
// RouteResponse (including which agent served it).
func (f *testFleet) request(keys []string) (RouteResponse, error) {
	cl := server.NewClient(f.mts.URL, nil)
	var out RouteResponse
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := cl.DoCtx(ctx, http.MethodPost, "/v1/request",
		server.RequestBody{Packages: keys, Close: true}, &out)
	return out, err
}

func TestFleetRegisterAndGossip(t *testing.T) {
	f := newTestFleet(t, 1, MasterConfig{SuspectAfter: -1})
	a := f.agents[0]
	f.beatAll()

	members := f.master.MembersNow()
	if len(members) != 1 || members[0].ID != a.id || members[0].State != "healthy" {
		t.Fatalf("after first beat: members = %+v", members)
	}

	// Grow the agent's cache directly, then gossip the delta.
	direct := server.NewClient(a.ts.URL, nil)
	for i := 0; i < 5; i++ {
		if _, err := direct.Request(specKeys(f.repo, i, 3), true); err != nil {
			t.Fatalf("direct request %d: %v", i, err)
		}
	}
	f.beatAll()

	m := f.master.MembersNow()[0]
	if want := len(a.srv.ImagesNow()); m.DirImages != want {
		t.Fatalf("master mirror has %d images, agent has %d", m.DirImages, want)
	}
	if m.DirRev == 0 {
		t.Fatal("master mirror revision never advanced")
	}

	// An idle agent's next delta is empty but still advances nothing:
	// revisions only move when the cache changes.
	rev := m.DirRev
	f.beatAll()
	if got := f.master.MembersNow()[0].DirRev; got != rev {
		t.Fatalf("idle beat moved mirror revision %d -> %d", rev, got)
	}
}

func TestFleetRoutingDeterministicAndSpread(t *testing.T) {
	f := newTestFleet(t, 3, MasterConfig{SuspectAfter: -1})
	f.beatAll()

	used := map[string]bool{}
	placement := map[int]string{}
	for i := 0; i < 24; i++ {
		res, err := f.request(specKeys(f.repo, i, 3))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Agent == "" {
			t.Fatalf("request %d: no agent attributed", i)
		}
		used[res.Agent] = true
		placement[i] = res.Agent
	}
	if len(used) < 2 {
		t.Fatalf("24 distinct specs all routed to %v: no spread", used)
	}
	// Re-requesting the same specs lands on the same agents — the
	// property that turns hashing into cache locality.
	for i := 0; i < 24; i++ {
		res, err := f.request(specKeys(f.repo, i, 3))
		if err != nil {
			t.Fatalf("re-request %d: %v", i, err)
		}
		if res.Agent != placement[i] {
			t.Fatalf("spec %d moved %s -> %s with stable membership", i, placement[i], res.Agent)
		}
		if res.Op != "hit" {
			t.Fatalf("spec %d re-request was %q on %s, want hit", i, res.Op, res.Agent)
		}
	}
}

func TestFleetFailoverRoutesAroundDeadAgent(t *testing.T) {
	f := newTestFleet(t, 3, MasterConfig{SuspectAfter: -1})
	f.beatAll()

	// Find a spec owned by agent 1, then take agent 1 down hard.
	victim := f.agents[1]
	var keys []string
	for i := 0; ; i++ {
		keys = specKeys(f.repo, i, 3)
		f.master.mu.Lock()
		info := f.master.routeLocked(RouteKey(keys), nil)
		f.master.mu.Unlock()
		if info.Owner == victim.id {
			break
		}
		if i > 1000 {
			t.Fatal("no spec hashed to the victim agent")
		}
	}
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	res, err := f.request(keys)
	if err != nil {
		t.Fatalf("request during agent outage: %v", err)
	}
	if res.Agent == victim.id {
		t.Fatalf("request attributed to the dead agent %s", victim.id)
	}
	// The transport failure marked the victim suspect.
	for _, m := range f.master.MembersNow() {
		if m.ID == victim.id && m.State != "suspect" {
			t.Fatalf("victim state %q after transport failure, want suspect", m.State)
		}
	}
}

func TestFleetReadyzQuorum(t *testing.T) {
	f := newTestFleet(t, 2, MasterConfig{Quorum: 2, SuspectAfter: -1})

	ready := func() (int, ReadyResponse) {
		resp, err := http.Get(f.mts.URL + "/v1/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		defer resp.Body.Close()
		var out ReadyResponse
		decodeJSONBody(t, resp, &out)
		return resp.StatusCode, out
	}

	if code, out := ready(); code != http.StatusServiceUnavailable || out.Healthy != 0 {
		t.Fatalf("empty fleet: readyz %d %+v, want 503", code, out)
	}
	if err := f.agents[0].ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("beat: %v", err)
	}
	if code, out := ready(); code != http.StatusServiceUnavailable || out.Healthy != 1 {
		t.Fatalf("below quorum: readyz %d %+v, want 503 with 1 healthy", code, out)
	}
	if err := f.agents[1].ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("beat: %v", err)
	}
	if code, out := ready(); code != http.StatusOK || out.Healthy != 2 || out.Status != "ready" {
		t.Fatalf("at quorum: readyz %d %+v, want 200 ready", code, out)
	}
}

func TestFleetMasterRestartRebuildsSoftState(t *testing.T) {
	f := newTestFleet(t, 2, MasterConfig{SuspectAfter: -1})
	f.beatAll()

	// Populate one agent so the rebuilt master must recover a non-empty
	// mirror too.
	direct := server.NewClient(f.agents[0].ts.URL, nil)
	for i := 0; i < 4; i++ {
		if _, err := direct.Request(specKeys(f.repo, i, 3), true); err != nil {
			t.Fatalf("direct request: %v", err)
		}
	}
	f.beatAll()
	wantImages := len(f.agents[0].srv.ImagesNow())

	// "Restart" the master: fresh process state at the same URL.
	f.master = NewMaster(MasterConfig{SuspectAfter: -1})
	f.handler.Store(f.master.Handler())
	if len(f.master.MembersNow()) != 0 {
		t.Fatal("fresh master already has members")
	}

	// The next beat gets Unknown, re-registers, and replays the full
	// directory — all within one BeatNow.
	f.beatAll()
	members := f.master.MembersNow()
	if len(members) != 2 {
		t.Fatalf("after restart + one beat: %d members, want 2", len(members))
	}
	for _, m := range members {
		if m.State != "healthy" {
			t.Fatalf("member %s state %q after re-register", m.ID, m.State)
		}
		if m.ID == f.agents[0].id && m.DirImages != wantImages {
			t.Fatalf("rebuilt mirror has %d images, want %d", m.DirImages, wantImages)
		}
	}

	// Routing still works immediately.
	if res, err := f.request(specKeys(f.repo, 1, 3)); err != nil || res.Agent == "" {
		t.Fatalf("post-restart request: res=%+v err=%v", res, err)
	}
}

func TestFleetSweepAgesSilentAgents(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	f := newTestFleet(t, 2, MasterConfig{
		SuspectAfter: 50 * time.Millisecond,
		DeadAfter:    200 * time.Millisecond,
		Clock:        clock,
	})
	// Note: the master's clock is injected but the agents beat through
	// HTTP, so drive everything manually.
	f.beatAll()

	now = now.Add(100 * time.Millisecond)
	f.master.SweepNow()
	for _, m := range f.master.MembersNow() {
		if m.State != "suspect" {
			t.Fatalf("member %s state %q after suspect age, want suspect", m.ID, m.State)
		}
	}

	// One agent beats again: healthy. The other ages to dead and leaves
	// the ring.
	if err := f.agents[0].ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("beat: %v", err)
	}
	now = now.Add(150 * time.Millisecond)
	died := f.master.SweepNow()
	if len(died) != 1 || died[0] != f.agents[1].id {
		t.Fatalf("sweep killed %v, want [%s]", died, f.agents[1].id)
	}
	f.master.mu.Lock()
	onRing := f.master.ring.Has(f.agents[1].id)
	f.master.mu.Unlock()
	if onRing {
		t.Fatal("dead agent still on the ring")
	}

	// The dead agent's next beat is told Unknown and re-registers
	// inside BeatNow, rejoining the ring.
	if err := f.agents[1].ag.BeatNow(context.Background()); err != nil {
		t.Fatalf("dead agent beat: %v", err)
	}
	for _, m := range f.master.MembersNow() {
		if m.ID == f.agents[1].id && m.State != "healthy" {
			t.Fatalf("resurrected agent state %q", m.State)
		}
	}

	// Ring churn was observed by the key-movement histogram: dead
	// removal + re-add, at least.
	if count, mean := f.master.KeyMovementStats(); count < 2 || mean <= 0 {
		t.Fatalf("key movement histogram count=%d mean=%v, want >= 2 observations", count, mean)
	}
}

func decodeJSONBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding body: %v", err)
	}
}
