//go:build !landlord_mutants

package fleet

// mutantEnabled reports whether a named fleet mutant is active. In
// normal builds it is a constant false the compiler erases; build with
// -tags landlord_mutants (see mutant_on.go) to select one at run time.
func mutantEnabled(string) bool { return false }
