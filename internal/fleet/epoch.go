package fleet

import (
	"net/http"
	"strconv"
	"sync"

	"repro/internal/server"
)

// Agent-side epoch gating: the fencing half of the lease protocol.
//
// Every forwarded request carries the sending master's epoch and ID.
// The agent tracks the maximum epoch it has ever seen (from forwards
// and from heartbeat responses) and refuses anything older with 503 +
// the current epoch — so a demoted primary cannot keep mutating the
// fleet's caches, and learns of its demotion from the rejection. Within
// one epoch the gate also pins the holder: two masters claiming the
// same epoch is a protocol violation (it cannot happen with monotone
// promotions), recorded as a conflict and refused.

// EpochGate is an agent's view of the lease. Safe for concurrent use.
type EpochGate struct {
	mu           sync.Mutex
	epoch        uint64
	holder       string
	staleRejects uint64
	conflicts    uint64
}

// Observe folds a passively learned lease view (heartbeat responses):
// newer epochs are adopted, same-epoch holder disagreement is recorded
// but nothing is rejected — observation is not admission.
func (g *EpochGate) Observe(epoch uint64, holder string) {
	if epoch == 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case epoch > g.epoch:
		g.epoch, g.holder = epoch, holder
	case epoch == g.epoch && holder != "" && g.holder == "":
		g.holder = holder
	case epoch == g.epoch && holder != "" && g.holder != "" && holder != g.holder:
		g.conflicts++
	}
}

// Admit decides one stamped forward: adopt-and-accept for the newest
// epoch, reject for a stale one or a same-epoch holder conflict. The
// returned epoch is the gate's current view, stamped on rejections so
// the stale master can demote itself.
func (g *EpochGate) Admit(epoch uint64, holder string) (bool, uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	switch {
	case epoch > g.epoch:
		g.epoch, g.holder = epoch, holder
		return true, g.epoch
	case epoch == g.epoch:
		if g.holder == "" {
			g.holder = holder
		} else if holder != g.holder {
			g.conflicts++
			return false, g.epoch
		}
		return true, g.epoch
	default: // stale epoch
		if mutantEnabled("staleepoch") {
			// Mutant: accept forwards from a demoted primary. The HA
			// chaos harness must catch the resulting per-agent epoch
			// regression.
			return true, g.epoch
		}
		g.staleRejects++
		return false, g.epoch
	}
}

// Snapshot returns the gate's counters for /fleet/v1/epoch and the
// harness audits.
func (g *EpochGate) Snapshot() EpochStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	return EpochStatus{Epoch: g.epoch, Holder: g.holder,
		StaleRejects: g.staleRejects, Conflicts: g.conflicts}
}

// EpochStatus is the GET /fleet/v1/epoch payload.
type EpochStatus struct {
	Epoch        uint64 `json:"epoch"`
	Holder       string `json:"holder"`
	StaleRejects uint64 `json:"stale_rejects"`
	Conflicts    uint64 `json:"conflicts"`
}

// Handler wraps the agent's server handler with the epoch gate:
// stamped /v1/request forwards are admitted or refused by epoch, and
// /fleet/v1/epoch exposes the gate. Unstamped requests (direct
// clients, single-master fleets) pass straight through.
func (a *Agent) Handler() http.Handler {
	inner := a.srv.Handler()
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/v1/epoch", func(w http.ResponseWriter, r *http.Request) {
		fleetWriteJSON(w, http.StatusOK, a.gate.Snapshot())
	})
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/request" {
			if v := r.Header.Get(server.EpochHeader); v != "" {
				epoch, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					fleetWriteError(w, http.StatusBadRequest, "bad epoch header %q", v)
					return
				}
				ok, cur := a.gate.Admit(epoch, r.Header.Get(server.MasterHeader))
				if !ok {
					w.Header().Set(server.EpochHeader, strconv.FormatUint(cur, 10))
					w.Header().Set("Retry-After", "1")
					fleetWriteError(w, http.StatusServiceUnavailable,
						"stale epoch %d (current %d): forwarding master was superseded", epoch, cur)
					return
				}
			}
		}
		inner.ServeHTTP(w, r)
	}))
	return mux
}

// Gate returns the agent's epoch gate, for harness audits.
func (a *Agent) Gate() *EpochGate { return &a.gate }
