// Package fleet is the networked control plane: the promotion of the
// in-process internal/cluster site model to a real master/agent
// deployment. A landlordd running in master mode routes every
// /v1/request to one of N landlordd agents over HTTP, choosing the
// agent by consistent hashing on the job specification's signature so
// the same spec keeps landing on the same cache (and membership churn
// moves a bounded slice of the keyspace). Agents register with the
// master, heartbeat their liveness, and gossip their image-directory
// state using the internal/cluster delta-sync encoding carried in the
// heartbeat body.
//
// The resilience stack rides every hop: the master keeps a circuit
// breaker per agent, propagates request deadlines (X-Landlord-Deadline)
// and trace context (X-Landlord-Trace) downstream, fails over to
// rendezvous-ordered fallback candidates when the ring's pick is
// suspect or refusing, and reports fleet membership on /v1/readyz —
// 503 until a configured quorum of agents is healthy.
//
// Cache state is never replicated across agents: each agent owns its
// slice of the keyspace independently, and a restarted master rebuilds
// its routing state (membership, gossip mirrors, breakers) from agent
// re-registration. What IS replicated is the control plane itself: a
// standby master mirrors the primary's durable lease + membership log
// over the lease channel and promotes on primary silence, agents fence
// stale primaries by epoch, and a draining agent hands its hot specs to
// its rendezvous successors (ha.go, epoch.go, handoff.go). See
// DESIGN.md section 10 for the failure-semantics contract and section
// 13 for the high-availability protocol.
package fleet

import (
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/cluster"
)

// Wire types. Everything the control plane sends is JSON, matching the
// data plane's /v1 API idiom.

// RegisterRequest announces an agent to the master.
type RegisterRequest struct {
	// ID is the agent's stable identity (ring membership key).
	ID string `json:"id"`
	// URL is the agent's advertised base URL for forwarded requests.
	URL string `json:"url"`
	// Gen is the agent's process generation; a changed generation
	// resets the master's gossip mirror (the agent's directory
	// revisions restarted from zero with its cache).
	Gen uint64 `json:"gen"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	OK bool `json:"ok"`
	// Known is the master's current member count, for logs.
	Known int `json:"known"`
}

// HeartbeatRequest is one agent liveness + gossip beat.
type HeartbeatRequest struct {
	ID  string `json:"id"`
	Gen uint64 `json:"gen"`
	// Delta carries the agent's image-directory changes since the last
	// revision the master acknowledged (cluster delta-sync encoding).
	Delta cluster.DirDelta `json:"delta"`
}

// HeartbeatResponse acks a beat.
type HeartbeatResponse struct {
	// AckRev is the master's applied directory revision; the agent's
	// next delta starts there.
	AckRev uint64 `json:"ack_rev"`
	// Resync asks the agent to send a Full directory frame next beat
	// (the master detected a gap in the delta stream).
	Resync bool `json:"resync,omitempty"`
	// Unknown tells the agent the master does not know it — it
	// restarted and lost membership — so the agent must re-register.
	Unknown bool `json:"unknown,omitempty"`
	// Epoch/Holder carry the responding master's lease view (zero when
	// HA is off): the heartbeat is the lease-renewal plumbing, so
	// agents learn a failover from whichever master still reaches
	// them.
	Epoch  uint64 `json:"epoch,omitempty"`
	Holder string `json:"holder,omitempty"`
}

// DeregisterRequest removes an agent (graceful shutdown).
type DeregisterRequest struct {
	ID string `json:"id"`
}

// RouteResponse is the master's /v1/request payload: the agent's
// response plus which agent served it.
type RouteResponse struct {
	Op           string `json:"op"`
	ImageID      uint64 `json:"image_id"`
	ImageVersion uint64 `json:"image_version"`
	ImageSize    int64  `json:"image_size"`
	RequestBytes int64  `json:"request_bytes"`
	BytesWritten int64  `json:"bytes_written"`
	Evicted      int    `json:"evicted"`
	Packages     int    `json:"packages"`
	// Agent is the ID of the agent that served the request.
	Agent string `json:"agent"`
}

// MemberInfo is one row of GET /fleet/v1/members.
type MemberInfo struct {
	ID        string `json:"id"`
	URL       string `json:"url"`
	State     string `json:"state"`
	Gen       uint64 `json:"gen"`
	DirRev    uint64 `json:"dir_rev"`
	DirImages int    `json:"dir_images"`
	// SinceBeatMS is milliseconds since the last heartbeat.
	SinceBeatMS int64 `json:"since_beat_ms"`
}

// ReadyResponse is the master's /v1/readyz payload: fleet membership
// and the quorum gate.
type ReadyResponse struct {
	Status  string `json:"status"`
	Known   int    `json:"known"`
	Healthy int    `json:"healthy"`
	Suspect int    `json:"suspect"`
	Quorum  int    `json:"quorum"`
}

// RouteInfo is the /fleet/v1/route debug payload: where a key routes
// and in what fallback order. Chaos harnesses sample it to assert the
// bounded-key-movement property.
type RouteInfo struct {
	Key        uint64   `json:"key"`
	Owner      string   `json:"owner"`
	Candidates []string `json:"candidates"`
	// Affinity marks the leading candidate as a non-owner agent chosen
	// because its directory already holds a superset of the spec.
	Affinity bool `json:"affinity,omitempty"`
}

// RouteKey derives the routing key from a job's package keys: the
// spec-signature hash the ring consumes. It is order-insensitive (the
// keys are sorted first) so a submitter's package ordering cannot
// scatter one logical spec across agents. Closure expansion happens on
// the agent, so the key hashes the requested packages, which is
// exactly as stable.
func RouteKey(packages []string) uint64 {
	sorted := append([]string(nil), packages...)
	sort.Strings(sorted)
	h := fnv.New64a()
	for _, k := range sorted {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// hashString is fnv64a of s, the member-name hash the ring and
// rendezvous scorer share.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer: decorrelates fnv outputs before
// they index the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// joinKeys renders package keys for diagnostics.
func joinKeys(keys []string) string { return strings.Join(keys, ",") }
