// Package cvmfs simulates the CernVM File System substrate the paper's
// prototype targets: a content-addressed object store publishing
// per-package file catalogs.
//
// Substitution note (see DESIGN.md §3): the paper reads the real,
// multi-terabyte SFT repository over CVMFS. Here the same interfaces
// are backed by synthetic catalogs derived deterministically from the
// package graph: each package's installed size is split across its
// FileCount files, and a fraction of a version's files are carried over
// unchanged from the previous version of its family, so content-level
// deduplication across versions behaves like a real append-only CVMFS
// repository. Higher layers (Shrinkwrap, the image store) exercise the
// same lookup → fetch → write code path they would against the real
// thing.
package cvmfs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/pkggraph"
)

// Digest is the content address of a stored object (SHA-256).
type Digest [32]byte

// String returns the hex form of the digest, shortened to 16 chars for
// readability in logs.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:8]) }

// FileEntry describes one file within a package catalog.
type FileEntry struct {
	Path   string
	Size   int64
	Digest Digest
}

// Catalog lists the files belonging to one published package, in path
// order. It corresponds to a CVMFS nested catalog.
type Catalog struct {
	Pkg   pkggraph.PkgID
	Files []FileEntry
}

// LogicalSize returns the sum of the catalog's file sizes (equals the
// package's installed size).
func (c *Catalog) LogicalSize() int64 {
	var n int64
	for i := range c.Files {
		n += c.Files[i].Size
	}
	return n
}

// carryOverFraction is the fraction of a version's files inherited
// bit-identically from the previous version of its family, calibrated
// to the strong cross-version duplication the paper reports in CVMFS
// container repositories.
const carryOverFraction = 0.4

// Store is a simulated CVMFS repository: published package catalogs
// plus a content-addressed object index. Publishing is lazy and
// idempotent; a Store is safe for concurrent use.
type Store struct {
	repo *pkggraph.Repo

	mu       sync.RWMutex
	catalogs map[pkggraph.PkgID]*Catalog
	objects  map[Digest]int64 // digest -> object size
	logical  int64            // sum of published file sizes (with duplicates)
	unique   int64            // sum of distinct object sizes
}

// NewStore creates an empty store over repo.
func NewStore(repo *pkggraph.Repo) *Store {
	return &Store{
		repo:     repo,
		catalogs: make(map[pkggraph.PkgID]*Catalog),
		objects:  make(map[Digest]int64),
	}
}

// Repo returns the package graph the store publishes from.
func (s *Store) Repo() *pkggraph.Repo { return s.repo }

// fileDigest derives the content address of file index i of a package,
// where originVersion identifies which version of the family the
// content was first introduced in. Files carried over across versions
// share an origin and therefore a digest.
func fileDigest(family string, originVersion, i int, size int64) Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(originVersion))
	binary.LittleEndian.PutUint32(buf[4:], uint32(i))
	binary.LittleEndian.PutUint64(buf[8:], uint64(size))
	h := sha256.New()
	h.Write([]byte(family))
	h.Write(buf[:])
	var d Digest
	h.Sum(d[:0])
	return d
}

// fileLayout is the deterministic per-file plan of a package: sizes and
// the version each file's content originated in. Files carried over
// from the previous family version keep that version's size and origin,
// so their digests — and therefore their stored objects — are shared.
type fileLayout struct {
	sizes   []int64
	origins []int
}

// layoutFor computes the file layout of a package, recursing into
// earlier versions of its family for carried-over files. Recursion
// depth is bounded by the family's version count.
func (s *Store) layoutFor(id pkggraph.PkgID) fileLayout {
	p := s.repo.Package(id)
	n := p.FileCount
	if n < 1 {
		n = 1
	}
	verIdx := 0
	versions := s.repo.FamilyVersions(p.Name)
	for i, v := range versions {
		if v == id {
			verIdx = i
			break
		}
	}
	lay := fileLayout{sizes: make([]int64, n), origins: make([]int, n)}
	carried := 0
	var carriedSum int64
	if verIdx > 0 {
		prev := s.layoutFor(versions[verIdx-1])
		carried = int(float64(n) * carryOverFraction)
		if carried > len(prev.sizes) {
			carried = len(prev.sizes)
		}
		// Shrink the carry-over if the inherited bytes would exceed
		// this version's total size.
		for carried > 0 {
			carriedSum = 0
			for i := 0; i < carried; i++ {
				carriedSum += prev.sizes[i]
			}
			if carriedSum <= p.Size {
				break
			}
			carried--
		}
		if carried == 0 {
			carriedSum = 0
		}
		for i := 0; i < carried; i++ {
			lay.sizes[i] = prev.sizes[i]
			lay.origins[i] = prev.origins[i]
		}
	}
	// Split the remaining bytes across the new files with a
	// deterministic xorshift weight stream seeded by the package ID.
	fresh := n - carried
	remaining := p.Size - carriedSum
	if fresh > 0 {
		weights := make([]uint32, fresh)
		var wsum uint64
		x := uint64(id)*0x9e3779b97f4a7c15 + 0x1234567
		for i := range weights {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			w := uint32(x%1000) + 1
			weights[i] = w
			wsum += uint64(w)
		}
		var used int64
		for i := 0; i < fresh; i++ {
			var size int64
			if i == fresh-1 {
				size = remaining - used
			} else {
				size = int64(uint64(remaining) * uint64(weights[i]) / wsum)
			}
			if size < 0 {
				size = 0
			}
			used += size
			lay.sizes[carried+i] = size
			lay.origins[carried+i] = verIdx
		}
	}
	return lay
}

// synthesize builds the catalog for a package from its file layout.
func (s *Store) synthesize(id pkggraph.PkgID) *Catalog {
	p := s.repo.Package(id)
	lay := s.layoutFor(id)
	cat := &Catalog{Pkg: id, Files: make([]FileEntry, 0, len(lay.sizes))}
	for i, size := range lay.sizes {
		cat.Files = append(cat.Files, FileEntry{
			Path:   fmt.Sprintf("/cvmfs/sft.cern.ch/%s/%s/%s/f%06d", p.Name, p.Version, p.Platform, i),
			Size:   size,
			Digest: fileDigest(p.Name, lay.origins[i], i, size),
		})
	}
	return cat
}

// Publish makes the package's catalog and objects available. It is
// idempotent and also publishes nothing else (dependencies are the
// caller's concern, as with real CVMFS where each package's content is
// simply present in the namespace).
func (s *Store) Publish(id pkggraph.PkgID) *Catalog {
	s.mu.RLock()
	if c, ok := s.catalogs[id]; ok {
		s.mu.RUnlock()
		return c
	}
	s.mu.RUnlock()
	cat := s.synthesize(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.catalogs[id]; ok { // lost the race; use the winner
		return c
	}
	s.catalogs[id] = cat
	for i := range cat.Files {
		f := &cat.Files[i]
		s.logical += f.Size
		if _, dup := s.objects[f.Digest]; !dup {
			s.objects[f.Digest] = f.Size
			s.unique += f.Size
		}
	}
	return cat
}

// PublishSet publishes every package in ids.
func (s *Store) PublishSet(ids []pkggraph.PkgID) {
	for _, id := range ids {
		s.Publish(id)
	}
}

// Catalog returns the catalog for a published package, or false if the
// package has not been published.
func (s *Store) Catalog(id pkggraph.PkgID) (*Catalog, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.catalogs[id]
	return c, ok
}

// HasObject reports whether an object is present and returns its size.
func (s *Store) HasObject(d Digest) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	size, ok := s.objects[d]
	return size, ok
}

// Stats summarizes the store's deduplication state.
type Stats struct {
	Packages     int
	Objects      int
	LogicalBytes int64 // with cross-version duplicates
	UniqueBytes  int64 // content-addressed
}

// DedupRatio is LogicalBytes / UniqueBytes (1.0 = no duplication).
func (st Stats) DedupRatio() float64 {
	if st.UniqueBytes == 0 {
		return 1
	}
	return float64(st.LogicalBytes) / float64(st.UniqueBytes)
}

// Stats returns a snapshot of the store's statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Packages:     len(s.catalogs),
		Objects:      len(s.objects),
		LogicalBytes: s.logical,
		UniqueBytes:  s.unique,
	}
}
