package cvmfs

import (
	"testing"
)

func TestParsePath(t *testing.T) {
	key, idx, err := ParsePath("/cvmfs/sft.cern.ch/tool/1.0/p/f000003")
	if err != nil || key != "tool/1.0/p" || idx != 3 {
		t.Fatalf("ParsePath = %q, %d, %v", key, idx, err)
	}
	bad := []string{
		"/other/mount/tool/1.0/p/f000001",
		"/cvmfs/sft.cern.ch/tool/1.0/f000001",    // missing platform
		"/cvmfs/sft.cern.ch/tool/1.0/p/extra/f0", // too deep
		"/cvmfs/sft.cern.ch/tool/1.0/p/notafile", // no f prefix
		"/cvmfs/sft.cern.ch/tool/1.0/p/fxyz",     // bad index
	}
	for _, p := range bad {
		if _, _, err := ParsePath(p); err == nil {
			t.Errorf("ParsePath(%q) accepted", p)
		}
	}
}

func TestStat(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	cat := s.Publish(0)
	want := cat.Files[2]
	got, err := s.Stat(want.Path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Stat = %+v, want %+v", got, want)
	}
	if _, err := s.Stat("/cvmfs/sft.cern.ch/ghost/1.0/p/f000000"); err == nil {
		t.Error("unknown package accepted")
	}
	if _, err := s.Stat("/cvmfs/sft.cern.ch/tool/1.0/p/f000099"); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestStatPublishesLazily(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	// No explicit Publish: Stat must publish on demand.
	if _, err := s.Stat("/cvmfs/sft.cern.ch/other/1.0/p/f000000"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Catalog(3); !ok {
		t.Fatal("Stat did not publish the catalog")
	}
}

func TestListDir(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	files, err := s.ListDir("/cvmfs/sft.cern.ch/tool/1.0/p/")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 10 {
		t.Fatalf("ListDir = %d files, want 10", len(files))
	}
	if _, err := s.ListDir("/cvmfs/sft.cern.ch/ghost/1.0/p"); err == nil {
		t.Error("unknown package dir accepted")
	}
	if _, err := s.ListDir("/elsewhere"); err == nil {
		t.Error("foreign path accepted")
	}
	if _, err := s.ListDir("/cvmfs/sft.cern.ch/tool"); err == nil {
		t.Error("non-package dir accepted")
	}
}

func TestWalkPublished(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	s.Publish(2)
	s.Publish(0)
	var order []int
	err := s.WalkPublished(func(c *Catalog) error {
		order = append(order, int(c.Pkg))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("walk order = %v, want [0 2]", order)
	}
	// Errors propagate.
	wantErr := s.WalkPublished(func(c *Catalog) error {
		return errStop
	})
	if wantErr != errStop {
		t.Fatalf("walk error = %v", wantErr)
	}
}

type stopError struct{}

func (stopError) Error() string { return "stop" }

var errStop = stopError{}
