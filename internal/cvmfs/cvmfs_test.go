package cvmfs

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/pkggraph"
)

// famRepo builds a repository with one family "tool" in three versions
// plus an unrelated singleton.
func famRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "tool", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 1000, FileCount: 10},
		{ID: 1, Name: "tool", Version: "2.0", Platform: "p", Tier: pkggraph.TierCore, Size: 1000, FileCount: 10},
		{ID: 2, Name: "tool", Version: "3.0", Platform: "p", Tier: pkggraph.TierCore, Size: 1200, FileCount: 10},
		{ID: 3, Name: "other", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 500, FileCount: 4},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestPublishCatalogSizes(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	cat := s.Publish(0)
	if len(cat.Files) != 10 {
		t.Fatalf("files = %d, want 10", len(cat.Files))
	}
	if cat.LogicalSize() != 1000 {
		t.Fatalf("LogicalSize = %d, want 1000 (package size)", cat.LogicalSize())
	}
	for _, f := range cat.Files {
		if f.Size < 0 {
			t.Fatalf("negative file size: %+v", f)
		}
		if f.Path == "" {
			t.Fatal("empty path")
		}
	}
}

func TestPublishIdempotent(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	a := s.Publish(0)
	b := s.Publish(0)
	if a != b {
		t.Fatal("second Publish returned a different catalog")
	}
	st := s.Stats()
	if st.Packages != 1 || st.LogicalBytes != 1000 {
		t.Fatalf("stats after double publish: %+v", st)
	}
}

func TestCrossVersionDedup(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	s.Publish(0)
	before := s.Stats()
	s.Publish(1)
	after := s.Stats()
	if after.UniqueBytes-before.UniqueBytes >= after.LogicalBytes-before.LogicalBytes {
		t.Fatalf("no cross-version dedup: unique grew by %d, logical by %d",
			after.UniqueBytes-before.UniqueBytes, after.LogicalBytes-before.LogicalBytes)
	}
	if after.DedupRatio() <= 1.0 {
		t.Fatalf("DedupRatio = %v, want > 1 after publishing two versions", after.DedupRatio())
	}
}

func TestFirstVersionHasNoCarryOver(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	s.Publish(0)
	st := s.Stats()
	if st.UniqueBytes != st.LogicalBytes {
		t.Fatalf("first version should be all-unique: %+v", st)
	}
}

func TestUnrelatedPackagesDoNotShare(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	s.Publish(0)
	s.Publish(3)
	st := s.Stats()
	if st.UniqueBytes != 1500 {
		t.Fatalf("UniqueBytes = %d, want 1500", st.UniqueBytes)
	}
}

func TestCatalogLookup(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	if _, ok := s.Catalog(0); ok {
		t.Fatal("catalog present before publish")
	}
	s.Publish(0)
	if _, ok := s.Catalog(0); !ok {
		t.Fatal("catalog missing after publish")
	}
}

func TestHasObject(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	cat := s.Publish(0)
	size, ok := s.HasObject(cat.Files[0].Digest)
	if !ok || size != cat.Files[0].Size {
		t.Fatalf("HasObject = %d,%v", size, ok)
	}
	var missing Digest
	if _, ok := s.HasObject(missing); ok {
		t.Fatal("zero digest should be absent")
	}
}

func TestPublishSet(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	s.PublishSet([]pkggraph.PkgID{0, 1, 2, 3})
	if st := s.Stats(); st.Packages != 4 {
		t.Fatalf("Packages = %d, want 4", st.Packages)
	}
}

func TestDigestDeterministic(t *testing.T) {
	a := fileDigest("tool", 1, 3, 100)
	b := fileDigest("tool", 1, 3, 100)
	if a != b {
		t.Fatal("same inputs, different digests")
	}
	if a == fileDigest("tool", 2, 3, 100) {
		t.Fatal("different origin version, same digest")
	}
	if a == fileDigest("tool", 1, 4, 100) {
		t.Fatal("different index, same digest")
	}
	if a == fileDigest("other", 1, 3, 100) {
		t.Fatal("different family, same digest")
	}
	if a.String() == "" {
		t.Fatal("empty digest string")
	}
}

func TestConcurrentPublish(t *testing.T) {
	repo := pkggraph.MustGenerate(scaledCfg(), 3)
	s := NewStore(repo)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < repo.Len(); i++ {
				s.Publish(pkggraph.PkgID((i + w*13) % repo.Len()))
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Packages != repo.Len() {
		t.Fatalf("Packages = %d, want %d", st.Packages, repo.Len())
	}
	if st.LogicalBytes != repo.TotalSize() {
		t.Fatalf("LogicalBytes = %d, want %d", st.LogicalBytes, repo.TotalSize())
	}
}

func scaledCfg() pkggraph.GenConfig {
	cfg := pkggraph.DefaultGenConfig()
	cfg.CoreFamilies = 2
	cfg.FrameworkFamilies = 5
	cfg.LibraryFamilies = 20
	cfg.ApplicationFamilies = 33
	return cfg
}

// Property: for any published package, catalog logical size equals the
// package's installed size and file count matches.
func TestCatalogConservationProperty(t *testing.T) {
	repo := pkggraph.MustGenerate(scaledCfg(), 5)
	s := NewStore(repo)
	f := func(raw uint16) bool {
		id := pkggraph.PkgID(int(raw) % repo.Len())
		cat := s.Publish(id)
		p := repo.Package(id)
		return cat.LogicalSize() == p.Size && len(cat.Files) == max(1, p.FileCount)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupRatioEmptyStore(t *testing.T) {
	repo := famRepo(t)
	s := NewStore(repo)
	if r := s.Stats().DedupRatio(); r != 1 {
		t.Fatalf("empty store DedupRatio = %v, want 1", r)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
