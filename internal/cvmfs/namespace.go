package cvmfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/pkggraph"
)

// Namespace operations.
//
// Real CVMFS exposes a POSIX namespace; Shrinkwrap resolves paths
// against it when building images. The synthetic namespace here is
// fully determined by the catalog layout
// (/cvmfs/sft.cern.ch/<name>/<version>/<platform>/fNNNNNN), so path
// resolution needs no index: the path is parsed back to its package
// and file index and served from the (lazily published) catalog.

// namespacePrefix is the mount point of the synthetic repository.
const namespacePrefix = "/cvmfs/sft.cern.ch/"

// ParsePath splits a repository path into its package key and file
// index.
func ParsePath(path string) (pkgKey string, fileIdx int, err error) {
	rest, ok := strings.CutPrefix(path, namespacePrefix)
	if !ok {
		return "", 0, fmt.Errorf("cvmfs: path %q outside the repository namespace", path)
	}
	parts := strings.Split(rest, "/")
	if len(parts) != 4 {
		return "", 0, fmt.Errorf("cvmfs: path %q is not <name>/<version>/<platform>/<file>", path)
	}
	file := parts[3]
	if !strings.HasPrefix(file, "f") {
		return "", 0, fmt.Errorf("cvmfs: %q is not a file entry", file)
	}
	idx, err := strconv.Atoi(file[1:])
	if err != nil || idx < 0 {
		return "", 0, fmt.Errorf("cvmfs: bad file index in %q", path)
	}
	return parts[0] + "/" + parts[1] + "/" + parts[2], idx, nil
}

// Stat resolves a path to its file entry, publishing the owning
// package if needed.
func (s *Store) Stat(path string) (FileEntry, error) {
	key, idx, err := ParsePath(path)
	if err != nil {
		return FileEntry{}, err
	}
	id, ok := s.repo.Lookup(key)
	if !ok {
		return FileEntry{}, fmt.Errorf("cvmfs: no such package %q", key)
	}
	cat := s.Publish(id)
	if idx >= len(cat.Files) {
		return FileEntry{}, fmt.Errorf("cvmfs: %q has no file index %d (package has %d files)", key, idx, len(cat.Files))
	}
	return cat.Files[idx], nil
}

// ListDir returns the file entries under a package directory
// (/cvmfs/sft.cern.ch/<name>/<version>/<platform>), publishing the
// package if needed.
func (s *Store) ListDir(dir string) ([]FileEntry, error) {
	rest, ok := strings.CutPrefix(strings.TrimSuffix(dir, "/"), namespacePrefix)
	if !ok {
		return nil, fmt.Errorf("cvmfs: path %q outside the repository namespace", dir)
	}
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		return nil, fmt.Errorf("cvmfs: %q is not a package directory", dir)
	}
	key := strings.Join(parts, "/")
	id, ok := s.repo.Lookup(key)
	if !ok {
		return nil, fmt.Errorf("cvmfs: no such package %q", key)
	}
	cat := s.Publish(id)
	out := make([]FileEntry, len(cat.Files))
	copy(out, cat.Files)
	return out, nil
}

// WalkPublished visits every published catalog in package-ID order,
// calling fn for each. It snapshots the published set first, so fn may
// publish further packages without deadlocking or invalidating the
// walk.
func (s *Store) WalkPublished(fn func(*Catalog) error) error {
	s.mu.RLock()
	ids := make([]int, 0, len(s.catalogs))
	for id := range s.catalogs {
		ids = append(ids, int(id))
	}
	s.mu.RUnlock()
	sort.Ints(ids)
	for _, id := range ids {
		s.mu.RLock()
		cat := s.catalogs[pkggraph.PkgID(id)]
		s.mu.RUnlock()
		if cat == nil {
			continue
		}
		if err := fn(cat); err != nil {
			return err
		}
	}
	return nil
}
