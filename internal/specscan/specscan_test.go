package specscan

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pkggraph"
)

func TestScanPythonImports(t *testing.T) {
	src := `#!/usr/bin/env python
import numpy
import scipy.linalg
from pandas import DataFrame
import os, sys
import ROOT as r
from uproot.models import TTree  # comment
x = "import fake"  # not at start... but regex is line-based
def f():
    import json
`
	got := ScanPythonImports(src)
	want := []string{"ROOT", "json", "numpy", "os", "pandas", "scipy", "sys", "uproot"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imports = %v, want %v", got, want)
	}
}

func TestScanPythonImportsMultiWithAlias(t *testing.T) {
	got := ScanPythonImports("import numpy as np, scipy as sp\n")
	want := []string{"numpy", "scipy"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imports = %v, want %v", got, want)
	}
}

func TestScanPythonImportsEmpty(t *testing.T) {
	if got := ScanPythonImports("x = 1\n"); len(got) != 0 {
		t.Fatalf("imports = %v, want none", got)
	}
}

func TestScanModuleLoads(t *testing.T) {
	src := `#!/bin/bash
module load gcc/8.2.0
module add root/6.18 geant4
echo module load fake
  module load python/3.8  # with comment
`
	got := ScanModuleLoads(src)
	want := []string{"gcc/8.2.0", "geant4", "python/3.8", "root/6.18"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("modules = %v, want %v", got, want)
	}
}

func TestScanJobLog(t *testing.T) {
	src := `starting job
landlord: using package root/6.18/x86
landlord: using package gcc/8.2/x86
landlord: using package root/6.18/x86
job done
`
	got := ScanJobLog(src)
	want := []string{"gcc/8.2/x86", "root/6.18/x86"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("log packages = %v, want %v", got, want)
	}
}

func TestScanFileDispatch(t *testing.T) {
	dir := t.TempDir()
	py := filepath.Join(dir, "a.py")
	os.WriteFile(py, []byte("import numpy\n"), 0o644)
	sh := filepath.Join(dir, "b.sh")
	os.WriteFile(sh, []byte("module load gcc/8\n"), 0o644)
	lg := filepath.Join(dir, "c.log")
	os.WriteFile(lg, []byte("landlord: using package k/1/p\n"), 0o644)
	other := filepath.Join(dir, "d.txt")
	os.WriteFile(other, []byte("x"), 0o644)

	if got, err := ScanFile(py); err != nil || len(got) != 1 || got[0] != "numpy" {
		t.Fatalf("py scan: %v %v", got, err)
	}
	if got, err := ScanFile(sh); err != nil || len(got) != 1 || got[0] != "gcc/8" {
		t.Fatalf("sh scan: %v %v", got, err)
	}
	if got, err := ScanFile(lg); err != nil || len(got) != 1 || got[0] != "k/1/p" {
		t.Fatalf("log scan: %v %v", got, err)
	}
	if _, err := ScanFile(other); err == nil {
		t.Fatal("unsupported extension accepted")
	}
	if _, err := ScanFile(filepath.Join(dir, "missing.py")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	os.MkdirAll(filepath.Join(dir, "sub"), 0o755)
	os.WriteFile(filepath.Join(dir, "a.py"), []byte("import numpy\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "sub", "b.sh"), []byte("module load gcc/8\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("import fake\n"), 0o644)
	got, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"gcc/8", "numpy"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dir scan = %v, want %v", got, want)
	}
	if _, err := ScanDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func testRepo(t *testing.T) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 100, FileCount: 1},
		{ID: 1, Name: "numpy", Version: "1.18", Platform: "p", Tier: pkggraph.TierLibrary, Size: 50, FileCount: 1, Deps: []pkggraph.PkgID{0}},
		{ID: 2, Name: "gcc", Version: "8.2", Platform: "p", Tier: pkggraph.TierFramework, Size: 70, FileCount: 1, Deps: []pkggraph.PkgID{0}},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResolveWithMapping(t *testing.T) {
	repo := testRepo(t)
	mapping := Mapping{"numpy": "numpy/1.18/p", "gcc/8.2.0": "gcc/8.2/p"}
	s, missing, err := Resolve([]string{"numpy", "gcc/8.2.0", "mystery"}, mapping, repo)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "mystery" {
		t.Fatalf("missing = %v", missing)
	}
	// Closure pulls in base.
	if s.Len() != 3 {
		t.Fatalf("spec len = %d, want 3 (numpy, gcc, base)", s.Len())
	}
}

func TestResolveDirectKey(t *testing.T) {
	repo := testRepo(t)
	s, missing, err := Resolve([]string{"numpy/1.18/p"}, nil, repo)
	if err != nil || len(missing) != 0 {
		t.Fatalf("direct key resolve failed: %v %v", missing, err)
	}
	if !s.Contains(1) || !s.Contains(0) {
		t.Fatal("closure missing packages")
	}
}

func TestResolveNothing(t *testing.T) {
	repo := testRepo(t)
	if _, _, err := Resolve([]string{"ghost"}, nil, repo); err == nil {
		t.Fatal("expected error when nothing resolves")
	}
}
