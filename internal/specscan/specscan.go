// Package specscan derives container specifications from application
// sources and logs — the paper's "simple analysis tools to
// automatically generate specifications by scanning for Python import
// statements, module load directives, or logs from previous jobs"
// (Section V).
//
// Scanners extract requirement tokens; Resolve maps tokens to concrete
// repository packages through a user-supplied Mapping (package naming
// is site-specific, so the mapping is explicit rather than guessed).
package specscan

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/pkggraph"
	"repro/internal/spec"
)

// Mapping translates requirement tokens (Python module names, module
// load arguments, log tokens) into repository package keys
// (name/version/platform). Tokens without an entry are reported as
// unresolved.
type Mapping map[string]string

var (
	// import numpy / import numpy as np / import a.b, c.d
	pyImportRe = regexp.MustCompile(`^\s*import\s+([\w\.,\s]+?)(?:\s+as\s+\w+)?\s*(?:#.*)?$`)
	// from numpy import array
	pyFromRe = regexp.MustCompile(`^\s*from\s+([\w\.]+)\s+import\s+`)
	// module load gcc/8.2.0 root [possibly several]
	moduleLoadRe = regexp.MustCompile(`^\s*module\s+(?:load|add)\s+(.+?)\s*(?:#.*)?$`)
	// landlord log lines: "landlord: using package <key>"
	logPackageRe = regexp.MustCompile(`landlord:\s+using\s+package\s+(\S+)`)
)

// ScanPythonImports extracts top-level imported module names from
// Python source text. Submodule imports are reduced to their top-level
// package ("numpy.linalg" -> "numpy"); duplicates are removed and the
// result is sorted.
func ScanPythonImports(src string) []string {
	seen := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := pyFromRe.FindStringSubmatch(line); m != nil {
			seen[topLevel(m[1])] = true
			continue
		}
		if m := pyImportRe.FindStringSubmatch(line); m != nil {
			for _, part := range strings.Split(m[1], ",") {
				name := strings.TrimSpace(part)
				// "import x as y" on multi-import lines: drop the alias.
				if i := strings.Index(name, " as "); i >= 0 {
					name = name[:i]
				}
				if name != "" {
					seen[topLevel(name)] = true
				}
			}
		}
	}
	return sortedKeys(seen)
}

func topLevel(module string) string {
	if i := strings.IndexByte(module, '.'); i >= 0 {
		return module[:i]
	}
	return module
}

// ScanModuleLoads extracts the arguments of `module load` / `module
// add` directives from shell script text, sorted and de-duplicated.
func ScanModuleLoads(src string) []string {
	seen := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if m := moduleLoadRe.FindStringSubmatch(sc.Text()); m != nil {
			for _, tok := range strings.Fields(m[1]) {
				seen[tok] = true
			}
		}
	}
	return sortedKeys(seen)
}

// ScanJobLog extracts package keys recorded by a previous LANDLORD run
// ("landlord: using package <key>" lines), the paper's runtime-tracing
// fallback when static analysis is unavailable.
func ScanJobLog(src string) []string {
	seen := make(map[string]bool)
	for _, m := range logPackageRe.FindAllStringSubmatch(src, -1) {
		seen[m[1]] = true
	}
	return sortedKeys(seen)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ScanFile dispatches on file extension: .py uses the Python scanner,
// .sh/.bash the module scanner, .log the job-log scanner. Other
// extensions are an error.
func ScanFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".py":
		return ScanPythonImports(string(data)), nil
	case ".sh", ".bash":
		return ScanModuleLoads(string(data)), nil
	case ".log":
		return ScanJobLog(string(data)), nil
	default:
		return nil, fmt.Errorf("specscan: unsupported file type %q", path)
	}
}

// ScanDir walks a directory tree, scanning every supported file, and
// returns the union of discovered tokens.
func ScanDir(root string) ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		switch strings.ToLower(filepath.Ext(path)) {
		case ".py", ".sh", ".bash", ".log":
			tokens, err := ScanFile(path)
			if err != nil {
				return err
			}
			for _, tok := range tokens {
				seen[tok] = true
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sortedKeys(seen), nil
}

// Resolve maps tokens to packages and returns the dependency-closed
// specification plus any unresolved tokens. A token resolves either
// through the mapping or, failing that, directly as a package key.
// Resolution succeeding for zero tokens is an error; a partially
// resolved spec is returned with the unresolved remainder so callers
// can decide whether to proceed.
func Resolve(tokens []string, mapping Mapping, repo *pkggraph.Repo) (spec.Spec, []string, error) {
	var ids []pkggraph.PkgID
	var missing []string
	for _, tok := range tokens {
		key := tok
		if mapped, ok := mapping[tok]; ok {
			key = mapped
		}
		if id, ok := repo.Lookup(key); ok {
			ids = append(ids, id)
		} else {
			missing = append(missing, tok)
		}
	}
	if len(ids) == 0 {
		return spec.Spec{}, missing, fmt.Errorf("specscan: no tokens resolved (%d unresolved)", len(missing))
	}
	return spec.WithClosure(repo, ids), missing, nil
}
