package dedup

import (
	"testing"

	"repro/internal/cvmfs"
	"repro/internal/pkggraph"
	"repro/internal/spec"
)

func testStore(t *testing.T) (*cvmfs.Store, *pkggraph.Repo) {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 4 << 20, FileCount: 4},
		{ID: 1, Name: "libA", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 2 << 20, FileCount: 2, Deps: []pkggraph.PkgID{0}},
		{ID: 2, Name: "libB", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 2 << 20, FileCount: 2, Deps: []pkggraph.PkgID{0}},
	}
	repo, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	return cvmfs.NewStore(repo), repo
}

func TestNewAnalyzerValidation(t *testing.T) {
	store, _ := testStore(t)
	if _, err := NewAnalyzer(store, Granularity(9), 0); err == nil {
		t.Fatal("bad granularity accepted")
	}
}

func TestGranularityString(t *testing.T) {
	if ByFile.String() != "file" || ByBlock.String() != "block" {
		t.Fatal("granularity names wrong")
	}
	if Granularity(7).String() == "" {
		t.Fatal("unknown granularity should render")
	}
}

func TestSingleImageNoDuplication(t *testing.T) {
	store, repo := testStore(t)
	img := spec.WithClosure(repo, []pkggraph.PkgID{1})
	rep, err := Analyze(store, []spec.Spec{img}, ByFile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != 1 {
		t.Fatalf("Images = %d", rep.Images)
	}
	if rep.DuplicateBytes != 0 || rep.DuplicationRatio() != 1 {
		t.Fatalf("single image should have no duplication: %+v", rep)
	}
	if rep.LogicalBytes != 6<<20 {
		t.Fatalf("LogicalBytes = %d, want 6MiB", rep.LogicalBytes)
	}
}

func TestOverlappingImagesDuplicate(t *testing.T) {
	store, repo := testStore(t)
	images := []spec.Spec{
		spec.WithClosure(repo, []pkggraph.PkgID{1}), // base+libA
		spec.WithClosure(repo, []pkggraph.PkgID{2}), // base+libB
	}
	rep, err := Analyze(store, images, ByFile, 0)
	if err != nil {
		t.Fatal(err)
	}
	// base (4 MiB) appears in both images.
	if rep.DuplicateBytes != 4<<20 {
		t.Fatalf("DuplicateBytes = %d, want 4MiB", rep.DuplicateBytes)
	}
	if rep.UniqueBytes != 8<<20 {
		t.Fatalf("UniqueBytes = %d, want 8MiB", rep.UniqueBytes)
	}
	if rep.DuplicationRatio() <= 1 {
		t.Fatal("ratio should exceed 1")
	}
}

func TestBlockAndFileAgreeOnTotals(t *testing.T) {
	store, repo := testStore(t)
	images := []spec.Spec{
		spec.WithClosure(repo, []pkggraph.PkgID{1}),
		spec.WithClosure(repo, []pkggraph.PkgID{2}),
	}
	fileRep, err := Analyze(store, images, ByFile, 0)
	if err != nil {
		t.Fatal(err)
	}
	blockRep, err := Analyze(store, images, ByBlock, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if fileRep.LogicalBytes != blockRep.LogicalBytes {
		t.Fatal("granularities disagree on logical bytes")
	}
	// Whole-file duplicates are found at both granularities; block
	// dedup can only find at least as much.
	if blockRep.UniqueBytes > fileRep.UniqueBytes {
		t.Fatalf("block unique %d > file unique %d", blockRep.UniqueBytes, fileRep.UniqueBytes)
	}
	// Block granularity tracks more, smaller units.
	if blockRep.Units <= fileRep.Units {
		t.Fatalf("block units %d <= file units %d", blockRep.Units, fileRep.Units)
	}
}

func TestAddImageRejectsEmpty(t *testing.T) {
	store, _ := testStore(t)
	a, err := NewAnalyzer(store, ByFile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddImage(spec.Spec{}); err == nil {
		t.Fatal("empty image accepted")
	}
}

func TestAnalyzeEmptySetIsClean(t *testing.T) {
	store, _ := testStore(t)
	rep, err := Analyze(store, nil, ByFile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Images != 0 || rep.LogicalBytes != 0 || rep.DuplicationRatio() != 1 {
		t.Fatalf("empty analysis: %+v", rep)
	}
}

func TestBlockDigestDistinct(t *testing.T) {
	var f1, f2 cvmfs.Digest
	f2[0] = 1
	if blockDigest(f1, 0) == blockDigest(f1, 1) {
		t.Fatal("same file, different blocks collide")
	}
	if blockDigest(f1, 0) == blockDigest(f2, 0) {
		t.Fatal("different files, same block collide")
	}
}
