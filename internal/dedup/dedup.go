// Package dedup implements the content-deduplication analysis of
// Section III's third "imperfect solution": scanning a collection of
// container images for duplicated content. The paper's point is that
// detection is easy but useless for container stores — "it is not
// difficult to identify duplicated files or blocks within container
// images. However, we lack a means to combine the extraneous copies;
// each container image by design contains complete copies of all
// data."
//
// The analyzer walks images at two granularities:
//
//   - file level: duplicates identified by CVMFS content address;
//   - block level: files cut into fixed-size blocks, each block
//     addressed by a derived digest, modeling block-store dedup.
//
// Its output quantifies how much storage a copy-on-write filesystem
// *could* reclaim — the savings container users cannot reach — which
// the experiment harness contrasts with what LANDLORD actually
// reclaims by merging specifications before images are built.
package dedup

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/cvmfs"
	"repro/internal/spec"
)

// Granularity selects the dedup unit.
type Granularity uint8

// Dedup granularities.
const (
	// ByFile deduplicates whole files by content address.
	ByFile Granularity = iota
	// ByBlock deduplicates fixed-size blocks within files.
	ByBlock
)

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case ByFile:
		return "file"
	case ByBlock:
		return "block"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Report summarizes duplication across a set of images.
type Report struct {
	Granularity Granularity
	Images      int
	// LogicalBytes is the total stored across all images (every copy
	// counted).
	LogicalBytes int64
	// UniqueBytes is the deduplicated total.
	UniqueBytes int64
	// DuplicateBytes = LogicalBytes - UniqueBytes: what a
	// copy-on-write store could reclaim.
	DuplicateBytes int64
	// Units is the number of distinct content units seen.
	Units int
}

// DuplicationRatio is LogicalBytes/UniqueBytes (1 = no duplication).
func (r Report) DuplicationRatio() float64 {
	if r.UniqueBytes == 0 {
		return 1
	}
	return float64(r.LogicalBytes) / float64(r.UniqueBytes)
}

// Analyzer accumulates content units across images.
type Analyzer struct {
	store       *cvmfs.Store
	granularity Granularity
	blockSize   int64

	units   map[[32]byte]int64 // unit digest -> size
	logical int64
	unique  int64
	images  int
}

// NewAnalyzer creates an analyzer over the store. blockSize is only
// used at ByBlock granularity and defaults to 1 MiB when zero.
func NewAnalyzer(store *cvmfs.Store, g Granularity, blockSize int64) (*Analyzer, error) {
	if g != ByFile && g != ByBlock {
		return nil, fmt.Errorf("dedup: unknown granularity %v", g)
	}
	if blockSize <= 0 {
		blockSize = 1 << 20
	}
	return &Analyzer{
		store:       store,
		granularity: g,
		blockSize:   blockSize,
		units:       make(map[[32]byte]int64),
	}, nil
}

// blockDigest derives the content address of one block of a file. Real
// block stores hash block contents; our synthetic contents are fully
// determined by (file digest, block index), so the derived address has
// the same collision structure.
func blockDigest(file cvmfs.Digest, idx int64) [32]byte {
	h := sha256.New()
	h.Write(file[:])
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(idx))
	h.Write(buf[:])
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// AddImage scans one image (a dependency-closed specification) into
// the analysis.
func (a *Analyzer) AddImage(s spec.Spec) error {
	if s.Empty() {
		return fmt.Errorf("dedup: empty image specification")
	}
	a.images++
	for _, id := range s.IDs() {
		cat := a.store.Publish(id)
		for i := range cat.Files {
			f := &cat.Files[i]
			a.logical += f.Size
			switch a.granularity {
			case ByFile:
				var key [32]byte
				copy(key[:], f.Digest[:])
				if _, dup := a.units[key]; !dup {
					a.units[key] = f.Size
					a.unique += f.Size
				}
			case ByBlock:
				remaining := f.Size
				for b := int64(0); remaining > 0; b++ {
					n := a.blockSize
					if n > remaining {
						n = remaining
					}
					key := blockDigest(f.Digest, b)
					if _, dup := a.units[key]; !dup {
						a.units[key] = n
						a.unique += n
					}
					remaining -= n
				}
			}
		}
	}
	return nil
}

// Report returns the accumulated duplication summary.
func (a *Analyzer) Report() Report {
	return Report{
		Granularity:    a.granularity,
		Images:         a.images,
		LogicalBytes:   a.logical,
		UniqueBytes:    a.unique,
		DuplicateBytes: a.logical - a.unique,
		Units:          len(a.units),
	}
}

// Analyze is a convenience: scan a set of images at the given
// granularity and return the report.
func Analyze(store *cvmfs.Store, images []spec.Spec, g Granularity, blockSize int64) (Report, error) {
	a, err := NewAnalyzer(store, g, blockSize)
	if err != nil {
		return Report{}, err
	}
	for i, s := range images {
		if err := a.AddImage(s); err != nil {
			return Report{}, fmt.Errorf("dedup: image %d: %w", i, err)
		}
	}
	return a.Report(), nil
}
