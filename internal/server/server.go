// Package server exposes a LANDLORD cache manager as a JSON-over-HTTP
// site service — the paper's site-wide deployment path: "the same core
// functionality of LANDLORD could easily be adapted into a plugin for
// a site's batch system" (Section V). A batch system or pilot-job
// factory POSTs each job's specification and receives the image to run
// in; administrators read stats and trigger maintenance (prune)
// passes.
//
// The service runs a concurrent request pipeline: the cache is a
// core.ShardedManager — cache_shards independently locked shards
// (default 1), each a ConcurrentManager serving hits under a shared
// read lock while merges, inserts, and maintenance serialize on that
// shard's write lock. Requests route to their shard by the hash of
// their package keys, so with more than one shard even slow-path
// traffic proceeds in parallel across shards. Read-only endpoints
// (/v1/stats, /v1/images, the cache gauges on /metrics) ride the read
// path and never block request traffic. SetMaxInflight optionally
// bounds concurrently processed requests.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/resilience"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// EventRingSize is how many request events the server retains for
// /v1/events.
const EventRingSize = 4096

// Server wraps a sharded concurrent cache behind an HTTP API. Create
// with New, mount via Handler.
type Server struct {
	repo *pkggraph.Repo
	reg  *telemetry.Registry
	ring *telemetry.Ring

	// Span tracing (trace.go): every request is traced; the
	// tail-sampling ring keeps the slowest and the interesting ones.
	spans  *telemetry.SpanTracer
	traces *telemetry.TraceRing

	cmgr *core.ShardedManager
	// sem, when non-nil, bounds concurrently processed /v1/request
	// calls (SetMaxInflight). Acquire = send, release = receive.
	sem chan struct{}
	// Durability (nil/zero without NewPersistent): the WAL+checkpoint
	// store, the checkpoint-every-N-requests threshold, the number of
	// requests served since the last successful checkpoint, and the
	// single-flight latch that keeps concurrent threshold-crossers from
	// piling up behind one checkpoint.
	store     *persist.Store
	ckptEvery int
	sinceCkpt atomic.Int64
	ckptBusy  atomic.Bool

	// Overload protection (resilience.go): optional admission control
	// installed by SetAdmission, and the serve-state machine
	// (healthy/shedding/degraded/recovering) driving /v1/readyz,
	// degraded-mode serving, and the state:* events.
	shedder *resilience.Shedder
	health  health

	// streamer, when non-nil (EnableReplication), republishes every
	// WAL record for read replicas pulling /ha/v1/wal.
	streamer *persist.Streamer
}

// New creates a Server with a fresh Manager. The server installs its
// own telemetry: request events flow into a bounded ring buffer
// (served by /v1/events) and per-operation latency histograms; any
// Tracer already present in cfg keeps receiving events too.
func New(repo *pkggraph.Repo, cfg core.Config) (*Server, error) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(EventRingSize)
	cfg.Tracer = telemetry.Multi(cfg.Tracer, ring, newOpTracer(reg))
	cmgr, err := core.NewSharded(repo, cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{repo: repo, reg: reg, ring: ring, cmgr: cmgr}
	s.initTracing()
	s.registerCacheMetrics()
	s.registerShardMetrics()
	s.registerContentionMetrics()
	s.registerResilienceMetrics()
	return s, nil
}

// SetMaxInflight bounds how many /v1/request calls are processed
// concurrently; excess requests queue on the semaphore (or fail with
// 503 when the client gives up first). n <= 0 removes the bound. Call
// before serving — it is not safe to change while requests are in
// flight.
func (s *Server) SetMaxInflight(n int) {
	if n <= 0 {
		s.sem = nil
		return
	}
	sem := make(chan struct{}, n)
	s.sem = sem
	s.reg.GaugeFunc("landlord_inflight_requests",
		"Cache requests currently being processed (bounded by max_inflight)",
		func() float64 { return float64(len(sem)) })
}

// registerContentionMetrics exposes the concurrent pipeline's lock
// behaviour: time spent waiting for each lock path and how much
// traffic each path carried.
func (s *Server) registerContentionMetrics() {
	const name = "landlord_lock_wait_seconds"
	const help = "Time spent waiting to acquire the cache lock, by path"
	s.cmgr.SetLockWaitMetrics(
		s.reg.Histogram(name, help, telemetry.DefaultLatencyBuckets(),
			telemetry.Label{Key: "path", Value: "read"}),
		s.reg.Histogram(name, help, telemetry.DefaultLatencyBuckets(),
			telemetry.Label{Key: "path", Value: "write"}),
	)
	s.reg.GaugeFunc("landlord_read_path_hits_total",
		"Requests served entirely under the shared read lock",
		func() float64 { return float64(s.cmgr.ReadHits()) })
	s.reg.GaugeFunc("landlord_write_lock_acquisitions_total",
		"Exclusive cache lock acquisitions (misses, merges, inserts, maintenance)",
		func() float64 { return float64(s.cmgr.WriteLockAcquisitions()) })
}

// Registry returns the server's metrics registry, so embedding
// processes (the daemon, tests) can add their own series.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// opTracer feeds the registry from core request events: one latency
// histogram and one eviction-churn pair per operation kind.
type opTracer struct {
	hists      map[string]*telemetry.Histogram
	fallback   *telemetry.Histogram
	evicted    *telemetry.Counter
	evictedByt *telemetry.Counter
}

func newOpTracer(reg *telemetry.Registry) *opTracer {
	const name = "landlord_request_duration_seconds"
	const help = "Cache request latency by operation"
	t := &opTracer{hists: make(map[string]*telemetry.Histogram)}
	for _, op := range []string{"hit", "merge", "insert"} {
		t.hists[op] = reg.Histogram(name, help, telemetry.DefaultLatencyBuckets(),
			telemetry.Label{Key: "op", Value: op})
	}
	t.fallback = t.hists["insert"]
	t.evicted = reg.Counter("landlord_evicted_images_total", "Images evicted by LRU pressure")
	t.evictedByt = reg.Counter("landlord_evicted_bytes_total", "Bytes evicted by LRU pressure")
	return t
}

// Trace implements telemetry.Tracer. Traced requests stamp their
// latency bucket with an exemplar, linking the histogram's tail
// buckets to concrete trace IDs in the tail-sampling ring.
func (t *opTracer) Trace(ev *telemetry.Event) {
	h, ok := t.hists[ev.Op]
	if !ok {
		h = t.fallback
	}
	h.ObserveExemplar(float64(ev.DurationNanos)/float64(time.Second), ev.TraceID)
	if ev.Evicted > 0 {
		t.evicted.Add(int64(ev.Evicted))
		t.evictedByt.Add(ev.EvictedBytes)
	}
}

// registerCacheMetrics exposes the manager's counters and live cache
// state as scrape-time gauges, keeping the metric names the previous
// hand-rolled /metrics table served. Every gauge reads through the
// concurrent manager's read path, so a scrape never blocks request
// traffic on the write lock.
func (s *Server) registerCacheMetrics() {
	snap := func(f func(st core.Stats) float64) func() float64 {
		return func() float64 {
			return f(s.cmgr.Stats())
		}
	}
	s.reg.GaugeFunc("landlord_requests_total", "Job requests processed",
		snap(func(st core.Stats) float64 { return float64(st.Requests) }))
	s.reg.GaugeFunc("landlord_hits_total", "Requests served by an existing image",
		snap(func(st core.Stats) float64 { return float64(st.Hits) }))
	s.reg.GaugeFunc("landlord_merges_total", "Requests merged into an image",
		snap(func(st core.Stats) float64 { return float64(st.Merges) }))
	s.reg.GaugeFunc("landlord_inserts_total", "Requests creating a new image",
		snap(func(st core.Stats) float64 { return float64(st.Inserts) }))
	s.reg.GaugeFunc("landlord_deletes_total", "Images evicted",
		snap(func(st core.Stats) float64 { return float64(st.Deletes) }))
	s.reg.GaugeFunc("landlord_splits_total", "Images trimmed by prune passes",
		snap(func(st core.Stats) float64 { return float64(st.Splits) }))
	s.reg.GaugeFunc("landlord_bytes_written_total", "Image bytes written to the cache",
		snap(func(st core.Stats) float64 { return float64(st.BytesWritten) }))
	s.reg.GaugeFunc("landlord_requested_bytes_total", "Bytes directly requested by jobs",
		snap(func(st core.Stats) float64 { return float64(st.RequestedBytes) }))
	s.reg.GaugeFunc("landlord_images", "Images currently cached", func() float64 {
		return float64(s.cmgr.Len())
	})
	s.reg.GaugeFunc("landlord_cached_bytes", "Bytes currently cached", func() float64 {
		return float64(s.cmgr.TotalData())
	})
	s.reg.GaugeFunc("landlord_unique_bytes", "Deduplicated bytes currently cached", func() float64 {
		return float64(s.cmgr.UniqueData())
	})
	s.reg.GaugeFunc("landlord_cache_efficiency", "UniqueData/TotalData of the live cache", func() float64 {
		return s.cmgr.CacheEfficiency()
	})
}

// registerShardMetrics exposes the sharded core: per-shard residency
// and budget gauges (labelled by shard index) plus the eviction
// balancer's counters. With cache_shards=1 the series still exist —
// one shard whose budget is the whole capacity — so dashboards need no
// special case for sharded sites.
func (s *Server) registerShardMetrics() {
	for i := 0; i < s.cmgr.NumShards(); i++ {
		shard := s.cmgr.Shard(i)
		label := telemetry.Label{Key: "shard", Value: strconv.Itoa(i)}
		s.reg.GaugeFunc("landlord_cache_shard_images", "Images cached on this shard",
			func() float64 { return float64(shard.Len()) }, label)
		s.reg.GaugeFunc("landlord_cache_shard_bytes", "Bytes cached on this shard",
			func() float64 { return float64(shard.TotalData()) }, label)
		s.reg.GaugeFunc("landlord_cache_shard_budget_bytes",
			"This shard's byte budget (the balancer reshapes it; 0 = unlimited)",
			func() float64 { return float64(shard.Capacity()) }, label)
	}
	bal := func(f func(st core.BalancerStats) float64) func() float64 {
		return func() float64 { return f(s.cmgr.BalancerStats()) }
	}
	s.reg.GaugeFunc("landlord_cache_rebalances_total", "Completed eviction-balancer passes",
		bal(func(st core.BalancerStats) float64 { return float64(st.Rebalances) }))
	s.reg.GaugeFunc("landlord_cache_rebalance_budget_moved_bytes_total",
		"Bytes of budget reassigned between shards by the balancer",
		bal(func(st core.BalancerStats) float64 { return float64(st.BudgetMoved) }))
	s.reg.GaugeFunc("landlord_cache_rebalance_evicted_images_total",
		"Images evicted by post-rebalance shrink passes",
		bal(func(st core.BalancerStats) float64 { return float64(st.Evicted) }))
	s.reg.GaugeFunc("landlord_cache_rebalance_evicted_bytes_total",
		"Bytes evicted by post-rebalance shrink passes",
		bal(func(st core.BalancerStats) float64 { return float64(st.EvictedBytes) }))
}

// RequestBody is the POST /v1/request payload.
type RequestBody struct {
	// Packages are the required package keys.
	Packages []string `json:"packages"`
	// Close adds the dependency closure before submission (the common
	// case; disable only for pre-closed specifications).
	Close bool `json:"close"`
}

// RequestResponse reports how the job's request was satisfied.
type RequestResponse struct {
	Op           string `json:"op"`
	ImageID      uint64 `json:"image_id"`
	ImageVersion uint64 `json:"image_version"`
	ImageSize    int64  `json:"image_size"`
	RequestBytes int64  `json:"request_bytes"`
	BytesWritten int64  `json:"bytes_written"`
	Evicted      int    `json:"evicted"`
	// Packages is the number of packages in the (possibly closed)
	// submitted specification.
	Packages int `json:"packages"`
}

// StatsResponse is the GET /v1/stats payload.
type StatsResponse struct {
	Requests            int64   `json:"requests"`
	Hits                int64   `json:"hits"`
	Merges              int64   `json:"merges"`
	Inserts             int64   `json:"inserts"`
	Deletes             int64   `json:"deletes"`
	Splits              int64   `json:"splits"`
	BytesWritten        int64   `json:"bytes_written"`
	RequestedBytes      int64   `json:"requested_bytes"`
	Images              int     `json:"images"`
	TotalData           int64   `json:"total_data"`
	UniqueData          int64   `json:"unique_data"`
	CacheEfficiency     float64 `json:"cache_efficiency"`
	ContainerEfficiency float64 `json:"container_efficiency"`
}

// ImageInfo is one row of GET /v1/images.
type ImageInfo struct {
	ID       uint64 `json:"id"`
	Version  uint64 `json:"version"`
	Size     int64  `json:"size"`
	Packages int    `json:"packages"`
	Merges   int    `json:"merges"`
}

// PruneBody is the POST /v1/prune payload.
type PruneBody struct {
	MaxUtilization float64 `json:"max_utilization"`
	MinServed      int     `json:"min_served"`
}

// SplitInfo is one split performed by a prune pass.
type SplitInfo struct {
	ImageID      uint64 `json:"image_id"`
	OldSize      int64  `json:"old_size"`
	NewSize      int64  `json:"new_size"`
	BytesWritten int64  `json:"bytes_written"`
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// Handler returns the service's HTTP routes, each wrapped in
// per-route request/latency/status instrumentation.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := map[string]http.HandlerFunc{
		"/v1/request":    s.handleRequest,
		"/v1/stats":      s.handleStats,
		"/v1/checkpoint": s.handleCheckpoint,
		"/v1/images":     s.handleImages,
		"/v1/prune":      s.handlePrune,
		"/v1/snapshot":   s.handleSnapshot,
		"/v1/restore":    s.handleRestore,
		"/v1/healthz":    s.handleHealthz,
		"/v1/readyz":     s.handleReadyz,
		"/v1/events":     s.handleEvents,
		"/v1/trace":      s.handleTrace,
		"/v1/trace/":     s.handleTrace,
		"/v1/warm":       s.handleWarm,
		"/metrics":       s.handleMetrics,
	}
	if s.streamer != nil {
		routes["/ha/v1/wal"] = s.handleStreamWAL
		routes["/ha/v1/checkpoint"] = s.handleStreamCheckpoint
	}
	for route, h := range routes {
		mux.Handle(route, telemetry.Middleware(s.reg, route, h))
	}
	return mux
}

// handleSnapshot returns the cache state for external persistence, so
// a site can survive daemon restarts (the HTTP face of
// core.Snapshot/Restore used by the cmd/landlord wrapper).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.cmgr.Snapshot())
}

// handleRestore loads a previously saved snapshot. Like core.Restore
// it only applies to an empty cache: restoring over live images would
// interleave two cache histories.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var snaps []core.ImageSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snaps); err != nil {
		writeError(w, http.StatusBadRequest, "decoding snapshot: %v", err)
		return
	}
	// Restore is not WAL-logged (it rewrites the whole state), so
	// checkpoint immediately — still inside the restore's all-shard
	// critical section — to close the durability hole. Checkpoint
	// failure is tolerable: the in-memory restore succeeded, and
	// recovery skips WAL records that reference the missing images.
	err := s.cmgr.RestoreThen(snaps, func(ms []*core.Manager) {
		if s.store != nil {
			s.checkpointAll(ms)
		}
	})
	if err != nil {
		writeError(w, http.StatusConflict, "restore: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"images": len(snaps)})
}

// handleHealthz is liveness: 200 for as long as the process can answer
// HTTP at all, including while recovering or degraded. Supervisors
// restart on liveness failures; a degraded-but-healing daemon must not
// be restarted out of its heal. Readiness lives at /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Every request is span-traced (tail sampling decides retention at
	// the end). The trace continues a propagated X-Landlord-Trace
	// header when present, and the response echoes this hop's context
	// so the caller can correlate.
	at := s.startTrace(r)
	if at != nil {
		w.Header().Set(telemetry.TraceHeaderName,
			telemetry.FormatTraceHeader(at.TraceID(), at.Root()))
	}
	outcome, errMsg, seq := s.serveRequest(w, r, at)
	at.Finish(outcome, errMsg, seq)
}

// serveRequest is the traced body of handleRequest. It returns the
// trace outcome ("hit"/"merge"/"insert" for served requests, "shed",
// "degraded", "timeout", "canceled", or "error" otherwise), the error
// message for the trace, and the request's linearization Seq.
func (s *Server) serveRequest(w http.ResponseWriter, r *http.Request, at *telemetry.ActiveTrace) (string, string, uint64) {
	// Admission control runs before anything queues: a shed response
	// costs microseconds and a Retry-After, an admitted request holds a
	// connection, a semaphore slot, and eventually the cache lock.
	if s.shedder != nil {
		adm := at.Begin(telemetry.StageAdmission, at.Root())
		release, reason := s.shedder.Admit()
		if release == nil {
			at.AttrStr(adm, "decision", "shed")
			at.End(adm)
			s.noteShed()
			retry := s.shedder.RetryAfter(reason)
			w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
			writeError(w, http.StatusTooManyRequests, "overloaded: shedding by %s", reason)
			return "shed", fmt.Sprintf("overloaded: shedding by %s", reason), 0
		}
		at.AttrStr(adm, "decision", "admit")
		at.End(adm)
		defer release()
		s.noteAdmit()
	}
	dls := at.Begin(telemetry.StageDeadline, at.Root())
	ctx, cancel := requestContext(r)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		at.AttrInt(dls, "present", 1)
	} else {
		at.AttrInt(dls, "present", 0)
	}
	at.End(dls)
	// The trace rides the context from here down: the concurrent
	// manager, the core algorithm, and the commit hook all record into
	// it.
	ctx = telemetry.ContextWithTrace(ctx, at)
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-ctx.Done():
			writeError(w, http.StatusServiceUnavailable, "server at max_inflight and client gave up: %v", ctx.Err())
			return "shed", "max_inflight queue abandoned: " + ctx.Err().Error(), 0
		}
	}
	var body RequestBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return "error", "decoding request: " + err.Error(), 0
	}
	if len(body.Packages) == 0 {
		writeError(w, http.StatusBadRequest, "no packages in specification")
		return "error", "no packages in specification", 0
	}
	ids := make([]pkggraph.PkgID, 0, len(body.Packages))
	for _, key := range body.Packages {
		id, ok := s.repo.Lookup(key)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown package %q", key)
			return "error", fmt.Sprintf("unknown package %q", key), 0
		}
		ids = append(ids, id)
	}
	var sp spec.Spec
	if body.Close {
		sp = spec.WithClosure(s.repo, ids)
	} else {
		sp = spec.New(ids)
	}

	// Degraded mode: while the store is failing, mutations cannot be
	// made durable, so the cache goes read-only — superset hits on
	// untainted images are answered from memory with zero mutation
	// (PeekHit bumps no clock, writes no stats, drops no WAL record),
	// everything else is refused. This is the invariant the chaos
	// harness audits: a degraded server never acks state recovery
	// cannot rebuild.
	if s.store != nil && s.store.Err() != nil {
		s.noteDegraded()
		return s.serveDegraded(w, sp)
	}

	res, err := s.cmgr.RequestCtx(ctx, sp)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded before the cache mutated: %v", err)
			return "timeout", err.Error(), 0
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "client gave up: %v", err)
			return "canceled", err.Error(), 0
		default:
			writeError(w, http.StatusInternalServerError, "request failed: %v", err)
			return "error", err.Error(), 0
		}
	}
	s.maybeCheckpoint()
	if s.store != nil {
		// Group-commit barrier: the request's WAL records must be on
		// stable storage before the acknowledgement (under fsync=always;
		// a no-op otherwise). Called with no cache locks held, so one
		// leader's fsync covers every request in flight.
		fss := at.Begin(telemetry.StageFsyncWait, at.Root())
		err := s.store.WaitDurable()
		at.End(fss)
		if err != nil {
			// Durability failed under this request's feet. Refuse to ack
			// anything the WAL lost: inserts/merges are gone, and even a
			// hit is unsafe if the image it names was never made durable.
			s.noteDegraded()
			if res.Op == core.OpHit && !s.store.Tainted(res.ImageID) {
				s.writeDegradedHit(w, res, sp.Len())
				return "degraded", "", res.Seq
			}
			writeError(w, http.StatusServiceUnavailable,
				"durability lost before acknowledgement (%s of image %d not persisted): %v",
				res.Op, res.ImageID, err)
			return "degraded", err.Error(), res.Seq
		}
	}
	writeJSON(w, http.StatusOK, RequestResponse{
		Op:           res.Op.String(),
		ImageID:      res.ImageID,
		ImageVersion: res.ImageVersion,
		ImageSize:    res.ImageSize,
		RequestBytes: res.RequestBytes,
		BytesWritten: res.BytesWritten,
		Evicted:      res.Evicted,
		Packages:     sp.Len(),
	})
	return res.Op.String(), "", res.Seq
}

// serveDegraded answers a /v1/request while the store is failing.
func (s *Server) serveDegraded(w http.ResponseWriter, sp spec.Spec) (string, string, uint64) {
	res, ok := s.cmgr.PeekHit(sp)
	if ok && !s.store.Tainted(res.ImageID) {
		s.writeDegradedHit(w, res, sp.Len())
		return "degraded", "", 0
	}
	w.Header().Set("Retry-After", "1")
	w.Header().Set(DegradedHeader, "1")
	writeError(w, http.StatusServiceUnavailable,
		"degraded: durability lost (%v); serving read-only until healed", s.store.Err())
	return "degraded", s.store.Err().Error(), 0
}

// writeDegradedHit acks a hit that is safe despite the failing store:
// the image's existence is already durable and a lost LRU touch
// cannot violate recovery.
func (s *Server) writeDegradedHit(w http.ResponseWriter, res core.Result, packages int) {
	w.Header().Set(DegradedHeader, "1")
	writeJSON(w, http.StatusOK, RequestResponse{
		Op:           res.Op.String(),
		ImageID:      res.ImageID,
		ImageVersion: res.ImageVersion,
		ImageSize:    res.ImageSize,
		RequestBytes: res.RequestBytes,
		Packages:     packages,
	})
}

// StatsNow snapshots the cache's aggregate state — the /v1/stats
// payload — for callers embedding the server (the daemon logs it
// periodically and on shutdown). It reads with every shard quiescent
// under shared locks, so the snapshot is internally consistent across
// shards but never blocks requests for long.
func (s *Server) StatsNow() StatsResponse {
	var out StatsResponse
	s.cmgr.WithSharedAll(func(ms []*core.Manager) {
		st := core.MergedStats(ms)
		var images int
		var total int64
		for _, m := range ms {
			images += m.Len()
			total += m.TotalData()
		}
		unique := core.UnionData(ms)
		eff := 1.0
		if total > 0 {
			eff = float64(unique) / float64(total)
		}
		out = StatsResponse{
			Requests:            st.Requests,
			Hits:                st.Hits,
			Merges:              st.Merges,
			Inserts:             st.Inserts,
			Deletes:             st.Deletes,
			Splits:              st.Splits,
			BytesWritten:        st.BytesWritten,
			RequestedBytes:      st.RequestedBytes,
			Images:              images,
			TotalData:           total,
			UniqueData:          unique,
			CacheEfficiency:     eff,
			ContainerEfficiency: st.MeanContainerEfficiency(),
		}
	})
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.StatsNow())
}

// ImagesNow lists the cached images for callers embedding the server:
// the fleet agent rebuilds its gossip directory from it every
// heartbeat. Reads ride the shared lock and never block requests.
func (s *Server) ImagesNow() []ImageInfo {
	imgs := s.cmgr.Images()
	out := make([]ImageInfo, 0, len(imgs))
	for _, img := range imgs {
		out = append(out, ImageInfo{
			ID:       img.ID,
			Version:  img.Version,
			Size:     img.Size,
			Packages: img.Spec.Len(),
			Merges:   img.Merges,
		})
	}
	return out
}

func (s *Server) handleImages(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.ImagesNow())
}

func (s *Server) handlePrune(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var body PruneBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	splits, err := s.cmgr.Prune(body.MaxUtilization, body.MinServed)
	if err != nil {
		writeError(w, http.StatusBadRequest, "prune: %v", err)
		return
	}
	out := make([]SplitInfo, 0, len(splits))
	for _, sp := range splits {
		out = append(out, SplitInfo{
			ImageID:      sp.ImageID,
			OldSize:      sp.OldSize,
			NewSize:      sp.NewSize,
			BytesWritten: sp.BytesWritten,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics exposes the telemetry registry in the Prometheus text
// exposition format, so site monitoring can scrape the cache without
// bespoke integration: the legacy cache counters plus request-latency
// histograms and the per-route HTTP series. OpenMetrics output — with
// bucket exemplars linking latency buckets to trace IDs — is served
// when the scraper asks for it (Accept: application/openmetrics-text
// or ?exemplars=1); plain 0.0.4 scrapes stay byte-compatible.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") ||
		r.URL.Query().Get("exemplars") == "1" {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		s.reg.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}

// handleEvents serves the most recent request events from the trace
// ring buffer, oldest first. `?limit=N` bounds the response to the N
// most recent events and `?outcome=hit|merge|insert` filters by
// operation.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := 0 // 0 = everything retained
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		if n == 0 {
			writeJSON(w, http.StatusOK, []telemetry.Event{})
			return
		}
		limit = n
	}
	outcome := r.URL.Query().Get("outcome")
	switch outcome {
	case "", "hit", "merge", "insert":
	default:
		writeError(w, http.StatusBadRequest, "outcome must be one of hit, merge, insert")
		return
	}
	events := s.ring.EventsWhere(outcome, limit)
	if events == nil {
		events = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

// PruneNow runs one maintenance split pass, for the daemon's
// background scheduler. Invalid parameters are treated as a no-op pass
// (the daemon validated its configuration at startup).
func (s *Server) PruneNow(maxUtilization float64, minServed int) int {
	splits, err := s.cmgr.Prune(maxUtilization, minServed)
	if err != nil {
		return 0
	}
	return len(splits)
}

// RebalanceNow runs one eviction-balancer pass, reshaping the
// per-shard byte budgets toward the current load and shrinking any
// shard left over its new budget. A no-op for single-shard or
// unlimited caches; the daemon calls it on its maintenance cadence.
// Returns the cumulative balancer counters.
func (s *Server) RebalanceNow() core.BalancerStats {
	return s.cmgr.Rebalance()
}
