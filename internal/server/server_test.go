package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
)

func testRepo(t testing.TB) *pkggraph.Repo {
	t.Helper()
	pkgs := []pkggraph.Package{
		{ID: 0, Name: "base", Version: "1.0", Platform: "p", Tier: pkggraph.TierCore, Size: 100, FileCount: 1},
		{ID: 1, Name: "fw", Version: "1.0", Platform: "p", Tier: pkggraph.TierFramework, Size: 50, FileCount: 1, Deps: []pkggraph.PkgID{0}},
		{ID: 2, Name: "libA", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 20, FileCount: 1, Deps: []pkggraph.PkgID{1}},
		{ID: 3, Name: "libB", Version: "1.0", Platform: "p", Tier: pkggraph.TierLibrary, Size: 30, FileCount: 1, Deps: []pkggraph.PkgID{1}},
	}
	r, err := pkggraph.New(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testService(t testing.TB, cfg core.Config) (*httptest.Server, *Client) {
	t.Helper()
	repo := testRepo(t)
	srv, err := New(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, ts.Client())
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(testRepo(t), core.Config{Alpha: 3}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestHealthz(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0.6})
	if err := client.Healthz(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestLifecycle(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0.6})

	// Insert with closure: libA -> fw -> base.
	res, err := client.Request([]string{"libA/1.0/p"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "insert" || res.Packages != 3 || res.ImageSize != 170 {
		t.Fatalf("insert: %+v", res)
	}

	// Exact repeat hits.
	res, err = client.Request([]string{"libA/1.0/p"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "hit" || res.BytesWritten != 0 {
		t.Fatalf("hit: %+v", res)
	}

	// Close sibling request merges (d = 2/4 = 0.5 < 0.6).
	res, err = client.Request([]string{"libB/1.0/p"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "merge" || res.ImageSize != 200 {
		t.Fatalf("merge: %+v", res)
	}
	if res.ImageVersion == 0 {
		t.Fatal("merge should bump the image version")
	}
}

func TestRequestWithoutClosure(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0})
	res, err := client.Request([]string{"base/1.0/p"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Packages != 1 || res.ImageSize != 100 {
		t.Fatalf("unclosed request: %+v", res)
	}
}

func TestRequestErrors(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0.5})

	if _, err := client.Request(nil, true); err == nil {
		t.Error("empty package list accepted")
	}
	if _, err := client.Request([]string{"ghost/1/p"}, true); err == nil {
		t.Error("unknown package accepted")
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/request")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/request status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	resp, err = http.Post(ts.URL+"/v1/request", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", resp.StatusCode)
	}
}

func TestStatsAndImages(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0})
	client.Request([]string{"libA/1.0/p"}, true)
	client.Request([]string{"libB/1.0/p"}, true)

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Inserts != 2 || st.Images != 2 {
		t.Fatalf("stats: %+v", st)
	}
	// libA image: base+fw+libA = 170; libB image: base+fw+libB = 180.
	if st.TotalData != 350 || st.UniqueData != 200 {
		t.Fatalf("data accounting: %+v", st)
	}
	if st.CacheEfficiency <= 0 || st.CacheEfficiency > 1 {
		t.Fatalf("cache efficiency: %v", st.CacheEfficiency)
	}

	imgs, err := client.Images()
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 2 {
		t.Fatalf("images: %d", len(imgs))
	}
	for _, img := range imgs {
		if img.Packages != 3 {
			t.Fatalf("image packages = %d", img.Packages)
		}
	}
}

func TestPruneEndpoint(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0.9})
	// Build a merged image, then serve a narrow corner of it.
	client.Request([]string{"libA/1.0/p"}, true)
	client.Request([]string{"libB/1.0/p"}, true)      // merged: base+fw+libA+libB = 200
	if _, err := client.Prune(0.9, 100); err != nil { // reset window
		t.Fatal(err)
	}
	client.Request([]string{"base/1.0/p"}, false)
	client.Request([]string{"base/1.0/p"}, false)
	splits, err := client.Prune(0.75, 2) // hot {base}=100 of 200 = 0.5 <= 0.75
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 1 || splits[0].NewSize != 100 {
		t.Fatalf("splits: %+v", splits)
	}
	// Invalid parameters surface as errors.
	if _, err := client.Prune(2.0, 1); err == nil {
		t.Error("bad prune params accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0.8, MinHash: core.DefaultMinHash()})
	keys := [][]string{
		{"libA/1.0/p"}, {"libB/1.0/p"}, {"fw/1.0/p"}, {"base/1.0/p"},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := client.Request(keys[(w+i)%len(keys)], true); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 64 {
		t.Fatalf("requests = %d, want 64", st.Requests)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1", nil)
	client.MaxRetries = 0 // keep the test fast; retry behaviour is covered in client_test.go
	if err := client.Healthz(); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestSnapshotRestoreOverHTTP(t *testing.T) {
	_, client := testService(t, core.Config{Alpha: 0.6})
	client.Request([]string{"libA/1.0/p"}, true)
	client.Request([]string{"libB/1.0/p"}, true)
	snaps, err := client.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 { // libB merged into libA's image at alpha 0.6
		t.Fatalf("snapshot images = %d, want 1", len(snaps))
	}
	// Restore into a fresh service.
	_, fresh := testService(t, core.Config{Alpha: 0.6})
	if err := fresh.Restore(snaps); err != nil {
		t.Fatal(err)
	}
	res, err := fresh.Request([]string{"libA/1.0/p"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Op != "hit" {
		t.Fatalf("restored service op = %s, want hit", res.Op)
	}
	// Restoring over a non-empty cache is rejected.
	if err := fresh.Restore(snaps); err == nil {
		t.Fatal("restore over live cache accepted")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0.6})
	client.Request([]string{"libA/1.0/p"}, true)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"landlord_requests_total 1",
		"landlord_inserts_total 1",
		"landlord_images 1",
		"# TYPE landlord_cached_bytes gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestPruneNow(t *testing.T) {
	repo := testRepo(t)
	srv, err := New(repo, core.Config{Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := NewClient(ts.URL, ts.Client())
	client.Request([]string{"libA/1.0/p"}, true)
	client.Request([]string{"libB/1.0/p"}, true)
	srv.PruneNow(0.9, 100) // reset window
	client.Request([]string{"base/1.0/p"}, false)
	client.Request([]string{"base/1.0/p"}, false)
	if got := srv.PruneNow(0.75, 2); got != 1 {
		t.Fatalf("PruneNow = %d, want 1", got)
	}
	// Invalid params are a no-op, not a panic.
	if got := srv.PruneNow(5, 1); got != 0 {
		t.Fatalf("invalid PruneNow = %d", got)
	}
}
