package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// testServiceWithServer is testService but also returns the Server so
// tests can reach the tracer and ring directly.
func testServiceWithServer(t testing.TB, cfg core.Config) (*Server, *Client, string) {
	t.Helper()
	srv, err := New(testRepo(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL, ts.Client()), ts.URL
}

func TestEveryRequestIsTracedAndTailSampled(t *testing.T) {
	srv, client, _ := testServiceWithServer(t, core.Config{Alpha: 0.6})
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	if srv.SpanTracer().Started() < 2 {
		t.Fatalf("started %d traces, want >= 2", srv.SpanTracer().Started())
	}
	dump := srv.TraceRing().Dump(0)
	if len(dump) < 2 {
		t.Fatalf("ring kept %d traces", len(dump))
	}
	outcomes := map[string]bool{}
	for _, tr := range dump {
		outcomes[tr.Outcome] = true
		if len(tr.Spans) == 0 || tr.Spans[0].Stage != telemetry.StageRequest {
			t.Fatalf("trace %s has no root request span", tr.ID)
		}
	}
	if !outcomes["insert"] || !outcomes["hit"] {
		t.Fatalf("dump outcomes %v, want insert and hit", outcomes)
	}
}

func TestTraceResponseHeaderAndPropagation(t *testing.T) {
	srv, _, base := testServiceWithServer(t, core.Config{Alpha: 0.6})

	body := strings.NewReader(`{"packages":["libA/1.0/p"],"close":true}`)
	req, _ := http.NewRequest(http.MethodPost, base+"/v1/request", body)
	req.Header.Set(telemetry.TraceHeaderName, "00000000deadbeef-00000003-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// The response echoes this hop's context with the propagated ID.
	echo := resp.Header.Get(telemetry.TraceHeaderName)
	id, parent, ok := telemetry.ParseTraceHeader(echo)
	if !ok || id != 0xdeadbeef || parent != 1 {
		t.Fatalf("response header %q (id=%v parent=%d ok=%v)", echo, id, parent, ok)
	}
	// The retained trace records the caller's span link.
	tr, ok := srv.TraceRing().Get(0xdeadbeef)
	if !ok {
		t.Fatalf("propagated trace not retained")
	}
	if tr.RemoteParent != 3 {
		t.Fatalf("RemoteParent = %d, want 3", tr.RemoteParent)
	}

	// A malformed header starts a fresh trace instead of failing.
	req2, _ := http.NewRequest(http.MethodPost, base+"/v1/request",
		strings.NewReader(`{"packages":["libB/1.0/p"],"close":true}`))
	req2.Header.Set(telemetry.TraceHeaderName, "not-a-trace-header")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("malformed header broke the request: %d", resp2.StatusCode)
	}
	if echo2 := resp2.Header.Get(telemetry.TraceHeaderName); echo2 == "" {
		t.Fatalf("fresh trace not echoed")
	}
}

func TestClientPropagatesContextTrace(t *testing.T) {
	srv, client, _ := testServiceWithServer(t, core.Config{Alpha: 0.6})
	ht := telemetry.NewSpanTracer(nil)
	at := ht.Start(0, 0)
	ctx := telemetry.ContextWithTrace(context.Background(), at)
	if _, err := client.RequestCtx(ctx, []string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	want := at.TraceID()
	at.Finish("insert", "", 0)
	if _, ok := srv.TraceRing().Get(want); !ok {
		t.Fatalf("server did not continue the client's trace %s", want)
	}
}

func TestTraceEndpoints(t *testing.T) {
	srv, client, base := testServiceWithServer(t, core.Config{Alpha: 0.6})
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	traces, err := client.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatalf("GET /v1/trace returned nothing")
	}
	got, err := client.TraceByID(traces[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != traces[0].ID || len(got.Spans) == 0 {
		t.Fatalf("TraceByID = %+v", got)
	}
	// Unknown ID is a 404, bad ID a 400, bad limit a 400.
	if _, err := client.TraceByID(telemetry.TraceID(0x1234)); err == nil {
		t.Fatalf("ghost trace served")
	}
	for _, path := range []string{"/v1/trace/zzz", "/v1/trace?limit=x"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	// Limit truncates.
	if _, err := client.Request([]string{"libB/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	limited, err := client.Traces(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 {
		t.Fatalf("Traces(1) returned %d", len(limited))
	}
	_ = srv
}

func TestEventsOutcomeFilter(t *testing.T) {
	_, client, base := testServiceWithServer(t, core.Config{Alpha: 0.6})
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}

	get := func(q string) (int, []telemetry.Event) {
		resp, err := http.Get(base + "/v1/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return resp.StatusCode, nil
		}
		var evs []telemetry.Event
		if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, evs
	}

	if code, evs := get("?outcome=hit"); code != http.StatusOK || len(evs) != 1 || evs[0].Op != "hit" {
		t.Fatalf("outcome=hit: code=%d evs=%+v", code, evs)
	}
	if code, evs := get("?outcome=insert&limit=1"); code != http.StatusOK || len(evs) != 1 || evs[0].Op != "insert" {
		t.Fatalf("outcome=insert&limit=1: code=%d evs=%+v", code, evs)
	}
	if code, evs := get(""); code != http.StatusOK || len(evs) != 2 {
		t.Fatalf("unfiltered: code=%d evs=%+v", code, evs)
	}
	if code, _ := get("?outcome=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus outcome accepted: %d", code)
	}
	// Events carry the trace ID that links them to the ring.
	if _, evs := get("?outcome=hit"); len(evs) == 1 && evs[0].TraceID == 0 {
		t.Fatalf("event missing trace id: %+v", evs[0])
	}
}

func TestMetricsExemplarsAreOptIn(t *testing.T) {
	_, client, base := testServiceWithServer(t, core.Config{Alpha: 0.6})
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}

	fetch := func(accept, query string) (string, string) {
		req, _ := http.NewRequest(http.MethodGet, base+"/metrics"+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get("Content-Type")
	}

	plain, plainCT := fetch("", "")
	if strings.Contains(plain, "# {") || strings.Contains(plain, "# EOF") {
		t.Fatalf("plain scrape contains OpenMetrics syntax")
	}
	if strings.Contains(plainCT, "openmetrics") {
		t.Fatalf("plain scrape content type %q", plainCT)
	}

	for _, mode := range []struct{ accept, query string }{
		{"application/openmetrics-text; version=1.0.0", ""},
		{"", "?exemplars=1"},
	} {
		om, ct := fetch(mode.accept, mode.query)
		if !strings.Contains(ct, "application/openmetrics-text") {
			t.Fatalf("openmetrics content type %q (accept=%q query=%q)", ct, mode.accept, mode.query)
		}
		if !strings.HasSuffix(om, "# EOF\n") {
			t.Fatalf("openmetrics scrape missing EOF")
		}
		if !strings.Contains(om, `trace_id="`) {
			t.Fatalf("openmetrics scrape has no exemplars:\n%s", om[:min(len(om), 2000)])
		}
		// The exemplar's trace ID must reference a retained trace.
		scr, err := telemetry.ParseText(strings.NewReader(om))
		if err != nil {
			t.Fatalf("own scrape unparseable: %v", err)
		}
		if len(scr.Exemplars) == 0 {
			t.Fatalf("parsed scrape has no exemplars")
		}
	}
}
