package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/resilience"
	"repro/internal/telemetry"
)

// Client talks to a LANDLORD site service. It is safe for concurrent
// use (http.Client is, and the resilience state is internally locked).
//
// Idempotent requests (GETs) are retried with full-jitter capped
// exponential backoff on transport errors — connection refused while
// the daemon restarts, timeouts — and on 503, which the daemon serves
// while it replays its WAL after a crash. POSTs are never retried: a
// request that mutates the cache may have been applied even when its
// response was lost.
//
// Two mechanisms bound what retrying can cost the service:
//
//   - A circuit breaker around every exchange: after enough
//     consecutive transport/503 failures the client fails fast for a
//     cool-down instead of hammering a dead or drowning server, then
//     lets a single probe through. Responses the server chose to send
//     (429, 4xx, 500) close the loop as successes — the dependency is
//     reachable, it just said no.
//   - A retry budget: each initial attempt deposits a fraction of a
//     retry, each retry withdraws one. A healthy service never
//     notices; a brownout caps aggregate retry amplification at the
//     deposit ratio instead of MaxRetries×.
type Client struct {
	base string
	hc   *http.Client

	// MaxRetries bounds re-attempts after the first try of an
	// idempotent request (0 disables retrying).
	MaxRetries int
	// RetryBase is the first backoff ceiling; each retry doubles it.
	RetryBase time.Duration
	// RetryCap bounds the backoff ceiling (every attempt, including
	// the first: a misconfigured RetryBase > RetryCap is clamped, not
	// honored).
	RetryCap time.Duration

	breaker *resilience.Breaker
	budget  *resilience.RetryBudget

	sleep  func(time.Duration) // test hook
	jitter func() float64      // in [0,1); seeded/injectable for tests

	extraHeaders func(http.Header)
}

// NewClient creates a client for the service at base (e.g.
// "http://headnode:8080"). A nil httpClient uses http.DefaultClient.
// Retry policy defaults: 4 retries, 100ms base, 2s cap, full jitter,
// a 5-failure/1s-cool-down breaker, and a 0.2-ratio/10-burst retry
// budget.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:       base,
		hc:         httpClient,
		MaxRetries: 4,
		RetryBase:  100 * time.Millisecond,
		RetryCap:   2 * time.Second,
		breaker:    resilience.NewBreaker(resilience.BreakerConfig{}),
		budget:     resilience.NewRetryBudget(0, 0),
		sleep:      time.Sleep,
		jitter:     rand.Float64,
	}
}

// SetBreaker replaces the client's circuit breaker (nil disables it).
// Call before use; not safe to change concurrently with requests.
func (c *Client) SetBreaker(b *resilience.Breaker) { c.breaker = b }

// SetRetryBudget replaces the client's retry budget (nil removes the
// bound). Call before use.
func (c *Client) SetRetryBudget(b *resilience.RetryBudget) { c.budget = b }

// SetJitter replaces the backoff jitter source with fn (values in
// [0,1)); tests inject a seeded RNG so sleep schedules are
// reproducible. fn must be safe for concurrent use if the client is
// shared.
func (c *Client) SetJitter(fn func() float64) { c.jitter = fn }

// SetExtraHeaders installs a hook stamping extra headers on every
// outgoing request — the fleet master uses it to mark forwards with
// its lease epoch. Call before use; fn must be safe for concurrent use
// if the client is shared.
func (c *Client) SetExtraHeaders(fn func(http.Header)) { c.extraHeaders = fn }

// Breaker returns the client's circuit breaker (nil when disabled),
// for tests and metrics.
func (c *Client) Breaker() *resilience.Breaker { return c.breaker }

// StatusError is a non-200 service response, exposing the status code
// for callers that dispatch on it (429 vs 503 vs 4xx).
type StatusError struct {
	Method string
	Path   string
	Status int
	Msg    string // server-provided error payload, may be empty
	// RetryAfter is the server's Retry-After hint (zero when absent).
	// DoCtx honors it as a floor under the jittered backoff, so a
	// fleet-wide "come back in N seconds" during failover is respected
	// even when the jitter would have retried sooner.
	RetryAfter time.Duration
	// Epoch is the fleet lease epoch stamped on the response (zero when
	// absent), letting callers spot a failover mid-conversation.
	Epoch uint64
}

// Error implements error.
func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("server client: %s %s: %s (status %d)", e.Method, e.Path, e.Msg, e.Status)
	}
	return fmt.Sprintf("server client: %s %s: status %d", e.Method, e.Path, e.Status)
}

// backoff returns the delay ceiling before retry attempt n (1-based):
// RetryBase doubled per attempt, capped at RetryCap — including the
// first retry, so RetryBase > RetryCap never sleeps past the cap.
func (c *Client) backoff(n int) time.Duration {
	d := c.RetryBase
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if c.RetryCap > 0 && d >= c.RetryCap {
			d = c.RetryCap
			break
		}
	}
	if c.RetryCap > 0 && d > c.RetryCap {
		d = c.RetryCap
	}
	return d
}

// sleepBackoff sleeps the full-jitter delay for retry n: a uniformly
// random fraction of the exponential ceiling. Deterministic backoff
// synchronizes every client that failed together into retrying
// together — the thundering herd that keeps a recovering server down;
// jitter spreads the herd across the whole window. A server-provided
// Retry-After floor wins over a shorter jittered delay: when the
// service names its recovery window, retrying inside it is wasted
// load.
func (c *Client) sleepBackoff(n int, floor time.Duration) {
	d := c.backoff(n)
	if c.jitter != nil {
		d = time.Duration(c.jitter() * float64(d))
	}
	if d < floor {
		d = floor
	}
	c.sleep(d)
}

// do issues a request and decodes the JSON response into out. See
// DoCtx.
func (c *Client) do(method, path string, in, out any) error {
	return c.DoCtx(context.Background(), method, path, in, out)
}

// DoCtx issues one API request under ctx — deadline/cancellation apply
// to every attempt, and a context deadline is propagated to the server
// in the X-Landlord-Deadline header so server-side work the caller has
// abandoned aborts early. JSON-encodes in (nil = no body), decodes the
// response into out (nil = discard), converts service error payloads
// into *StatusError, and retries idempotent requests per the client's
// retry policy, breaker, and budget.
func (c *Client) DoCtx(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("server client: encoding request: %w", err)
		}
		payload = data
	}
	attempts := 1
	if method == http.MethodGet && c.MaxRetries > 0 {
		attempts += c.MaxRetries
	}
	if c.budget != nil {
		c.budget.OnAttempt()
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if c.budget != nil && !c.budget.Withdraw() {
				return fmt.Errorf("server client: retry budget exhausted: %w", lastErr)
			}
			var floor time.Duration
			var se *StatusError
			if errors.As(lastErr, &se) {
				floor = se.RetryAfter
			}
			c.sleepBackoff(attempt-1, floor)
		}
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return lastErr
			}
			return fmt.Errorf("server client: %s %s: %w", method, path, err)
		}
		retryable, err := c.tryCtx(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	return lastErr
}

// tryCtx performs one HTTP exchange under the circuit breaker. The
// boolean reports whether the failure is worth retrying (transport
// error, 503, or an open circuit that may close before the next
// attempt).
func (c *Client) tryCtx(ctx context.Context, method, path string, payload []byte, out any) (bool, error) {
	var done func(bool)
	if c.breaker != nil {
		var err error
		done, err = c.breaker.Allow()
		if err != nil {
			// Fail fast; by the next backoff the cool-down may have
			// elapsed, making that attempt the half-open probe.
			return true, fmt.Errorf("server client: %s %s: %w", method, path, err)
		}
	}
	retryable, err := c.exchange(ctx, method, path, payload, out)
	if done != nil {
		// The circuit tracks the dependency, not the call: any response
		// the server chose to send — including 429 and 4xx — proves the
		// dependency alive. Only transport failures and 503 count
		// against it.
		done(err == nil || !retryable)
	}
	return retryable, err
}

// exchange is one raw HTTP round trip plus decode.
func (c *Client) exchange(ctx context.Context, method, path string, payload []byte, out any) (bool, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return false, fmt.Errorf("server client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if deadline, ok := ctx.Deadline(); ok {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(deadline.UnixNano(), 10))
	}
	// Trace propagation: a caller holding an ActiveTrace in ctx gets
	// its trace continued on the server side (same trace ID, this hop's
	// root span as the remote parent).
	if at := telemetry.TraceFromContext(ctx); at != nil {
		req.Header.Set(telemetry.TraceHeaderName,
			telemetry.FormatTraceHeader(at.TraceID(), at.Root()))
	}
	if c.extraHeaders != nil {
		c.extraHeaders(req.Header)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, fmt.Errorf("server client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusServiceUnavailable
		se := &StatusError{Method: method, Path: path, Status: resp.StatusCode}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		if v := resp.Header.Get(EpochHeader); v != "" {
			if e, err := strconv.ParseUint(v, 10, 64); err == nil {
				se.Epoch = e
			}
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil {
			se.Msg = eb.Error
		}
		return retryable, se
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("server client: decoding response: %w", err)
	}
	return false, nil
}

// Request submits a job specification (package keys) and returns the
// image decision. close adds the dependency closure server-side.
func (c *Client) Request(packages []string, close bool) (RequestResponse, error) {
	return c.RequestCtx(context.Background(), packages, close)
}

// RequestCtx is Request under a context: cancellation aborts the
// exchange client-side, and a deadline is propagated to the server so
// it can abandon the work too.
func (c *Client) RequestCtx(ctx context.Context, packages []string, close bool) (RequestResponse, error) {
	var out RequestResponse
	err := c.DoCtx(ctx, http.MethodPost, "/v1/request", RequestBody{Packages: packages, Close: close}, &out)
	return out, err
}

// Stats fetches the service counters.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Images lists the cached images.
func (c *Client) Images() ([]ImageInfo, error) {
	var out []ImageInfo
	err := c.do(http.MethodGet, "/v1/images", nil, &out)
	return out, err
}

// Prune triggers a split pass.
func (c *Client) Prune(maxUtilization float64, minServed int) ([]SplitInfo, error) {
	var out []SplitInfo
	err := c.do(http.MethodPost, "/v1/prune", PruneBody{MaxUtilization: maxUtilization, MinServed: minServed}, &out)
	return out, err
}

// Checkpoint asks the service to durably checkpoint its cache state.
func (c *Client) Checkpoint() (persist.CheckpointInfo, error) {
	var out persist.CheckpointInfo
	err := c.do(http.MethodPost, "/v1/checkpoint", nil, &out)
	return out, err
}

// Snapshot fetches the cache state for persistence.
func (c *Client) Snapshot() ([]core.ImageSnapshot, error) {
	var out []core.ImageSnapshot
	err := c.do(http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Restore loads a snapshot into an empty service cache.
func (c *Client) Restore(snaps []core.ImageSnapshot) error {
	return c.do(http.MethodPost, "/v1/restore", snaps, nil)
}

// Healthz checks service liveness: 200 whenever the process is up,
// even while recovering or degraded.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Ready checks service readiness: an error while the daemon is
// recovering, degraded, or mid-heal.
func (c *Client) Ready() error {
	return c.do(http.MethodGet, "/v1/readyz", nil, nil)
}

// IsCircuitOpen reports whether err is the client's breaker failing
// fast (no attempt reached the server).
func IsCircuitOpen(err error) bool {
	return errors.Is(err, resilience.ErrCircuitOpen)
}

// Events fetches the most recent request trace events, oldest first.
// limit <= 0 fetches everything the server retains.
func (c *Client) Events(limit int) ([]telemetry.Event, error) {
	path := "/v1/events"
	if limit > 0 {
		path = fmt.Sprintf("/v1/events?limit=%d", limit)
	}
	var out []telemetry.Event
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Traces fetches the server's tail-sampling trace ring (GET /v1/trace),
// slowest first. limit <= 0 fetches everything retained.
func (c *Client) Traces(limit int) ([]telemetry.Trace, error) {
	path := "/v1/trace"
	if limit > 0 {
		path = fmt.Sprintf("/v1/trace?limit=%d", limit)
	}
	var out []telemetry.Trace
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// TraceByID fetches one retained trace (GET /v1/trace/{id}).
func (c *Client) TraceByID(id telemetry.TraceID) (telemetry.Trace, error) {
	var out telemetry.Trace
	err := c.do(http.MethodGet, "/v1/trace/"+id.String(), nil, &out)
	return out, err
}
