package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// Client talks to a LANDLORD site service. It is safe for concurrent
// use (http.Client is).
//
// Idempotent requests (GETs) are retried with capped exponential
// backoff on transport errors — connection refused while the daemon
// restarts, timeouts — and on 503, which the daemon serves while it
// replays its WAL after a crash. POSTs are never retried: a request
// that mutates the cache may have been applied even when its response
// was lost.
type Client struct {
	base string
	hc   *http.Client

	// MaxRetries bounds re-attempts after the first try of an
	// idempotent request (0 disables retrying).
	MaxRetries int
	// RetryBase is the first backoff delay; each retry doubles it.
	RetryBase time.Duration
	// RetryCap bounds the backoff delay.
	RetryCap time.Duration

	sleep func(time.Duration) // test hook
}

// NewClient creates a client for the service at base (e.g.
// "http://headnode:8080"). A nil httpClient uses http.DefaultClient.
// Retry policy defaults: 4 retries, 100ms base, 2s cap.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:       base,
		hc:         httpClient,
		MaxRetries: 4,
		RetryBase:  100 * time.Millisecond,
		RetryCap:   2 * time.Second,
		sleep:      time.Sleep,
	}
}

// backoff returns the delay before retry attempt n (1-based):
// RetryBase doubled per attempt, capped at RetryCap.
func (c *Client) backoff(n int) time.Duration {
	d := c.RetryBase
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	for i := 1; i < n; i++ {
		d *= 2
		if c.RetryCap > 0 && d >= c.RetryCap {
			return c.RetryCap
		}
	}
	if c.RetryCap > 0 && d > c.RetryCap {
		return c.RetryCap
	}
	return d
}

// do issues a request and decodes the JSON response into out,
// converting service error payloads into Go errors and retrying
// idempotent requests per the client's retry policy.
func (c *Client) do(method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("server client: encoding request: %w", err)
		}
		payload = data
	}
	attempts := 1
	if method == http.MethodGet && c.MaxRetries > 0 {
		attempts += c.MaxRetries
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.sleep(c.backoff(attempt - 1))
		}
		retryable, err := c.try(method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable {
			return err
		}
	}
	return lastErr
}

// try performs one HTTP exchange. The boolean reports whether the
// failure is worth retrying (transport error or 503).
func (c *Client) try(method, path string, payload []byte, out any) (bool, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return false, fmt.Errorf("server client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return true, fmt.Errorf("server client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		retryable := resp.StatusCode == http.StatusServiceUnavailable
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return retryable, fmt.Errorf("server client: %s %s: %s (status %d)", method, path, eb.Error, resp.StatusCode)
		}
		return retryable, fmt.Errorf("server client: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return false, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("server client: decoding response: %w", err)
	}
	return false, nil
}

// Request submits a job specification (package keys) and returns the
// image decision. close adds the dependency closure server-side.
func (c *Client) Request(packages []string, close bool) (RequestResponse, error) {
	var out RequestResponse
	err := c.do(http.MethodPost, "/v1/request", RequestBody{Packages: packages, Close: close}, &out)
	return out, err
}

// Stats fetches the service counters.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Images lists the cached images.
func (c *Client) Images() ([]ImageInfo, error) {
	var out []ImageInfo
	err := c.do(http.MethodGet, "/v1/images", nil, &out)
	return out, err
}

// Prune triggers a split pass.
func (c *Client) Prune(maxUtilization float64, minServed int) ([]SplitInfo, error) {
	var out []SplitInfo
	err := c.do(http.MethodPost, "/v1/prune", PruneBody{MaxUtilization: maxUtilization, MinServed: minServed}, &out)
	return out, err
}

// Checkpoint asks the service to durably checkpoint its cache state.
func (c *Client) Checkpoint() (persist.CheckpointInfo, error) {
	var out persist.CheckpointInfo
	err := c.do(http.MethodPost, "/v1/checkpoint", nil, &out)
	return out, err
}

// Snapshot fetches the cache state for persistence.
func (c *Client) Snapshot() ([]core.ImageSnapshot, error) {
	var out []core.ImageSnapshot
	err := c.do(http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Restore loads a snapshot into an empty service cache.
func (c *Client) Restore(snaps []core.ImageSnapshot) error {
	return c.do(http.MethodPost, "/v1/restore", snaps, nil)
}

// Healthz checks service liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Events fetches the most recent request trace events, oldest first.
// limit <= 0 fetches everything the server retains.
func (c *Client) Events(limit int) ([]telemetry.Event, error) {
	path := "/v1/events"
	if limit > 0 {
		path = fmt.Sprintf("/v1/events?limit=%d", limit)
	}
	var out []telemetry.Event
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}
