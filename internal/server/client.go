package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Client talks to a LANDLORD site service. It is safe for concurrent
// use (http.Client is).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the service at base (e.g.
// "http://headnode:8080"). A nil httpClient uses
// http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// do issues a request and decodes the JSON response into out,
// converting service error payloads into Go errors.
func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("server client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("server client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("server client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err == nil && eb.Error != "" {
			return fmt.Errorf("server client: %s %s: %s (status %d)", method, path, eb.Error, resp.StatusCode)
		}
		return fmt.Errorf("server client: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("server client: decoding response: %w", err)
	}
	return nil
}

// Request submits a job specification (package keys) and returns the
// image decision. close adds the dependency closure server-side.
func (c *Client) Request(packages []string, close bool) (RequestResponse, error) {
	var out RequestResponse
	err := c.do(http.MethodPost, "/v1/request", RequestBody{Packages: packages, Close: close}, &out)
	return out, err
}

// Stats fetches the service counters.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/v1/stats", nil, &out)
	return out, err
}

// Images lists the cached images.
func (c *Client) Images() ([]ImageInfo, error) {
	var out []ImageInfo
	err := c.do(http.MethodGet, "/v1/images", nil, &out)
	return out, err
}

// Prune triggers a split pass.
func (c *Client) Prune(maxUtilization float64, minServed int) ([]SplitInfo, error) {
	var out []SplitInfo
	err := c.do(http.MethodPost, "/v1/prune", PruneBody{MaxUtilization: maxUtilization, MinServed: minServed}, &out)
	return out, err
}

// Snapshot fetches the cache state for persistence.
func (c *Client) Snapshot() ([]core.ImageSnapshot, error) {
	var out []core.ImageSnapshot
	err := c.do(http.MethodGet, "/v1/snapshot", nil, &out)
	return out, err
}

// Restore loads a snapshot into an empty service cache.
func (c *Client) Restore(snaps []core.ImageSnapshot) error {
	return c.do(http.MethodPost, "/v1/restore", snaps, nil)
}

// Healthz checks service liveness.
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/v1/healthz", nil, nil)
}

// Events fetches the most recent request trace events, oldest first.
// limit <= 0 fetches everything the server retains.
func (c *Client) Events(limit int) ([]telemetry.Event, error) {
	path := "/v1/events"
	if limit > 0 {
		path = fmt.Sprintf("/v1/events?limit=%d", limit)
	}
	var out []telemetry.Event
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}
