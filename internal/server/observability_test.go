package server

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/pkggraph"
	"repro/internal/spec"
	"repro/internal/telemetry"
)

// tracerFunc adapts a closure to telemetry.Tracer.
type tracerFunc func(*telemetry.Event)

func (f tracerFunc) Trace(ev *telemetry.Event) { f(ev) }

// mustSpec resolves a package key to its dependency-closed spec.
func mustSpec(t *testing.T, repo *pkggraph.Repo, key string) spec.Spec {
	t.Helper()
	id, ok := repo.Lookup(key)
	if !ok {
		t.Fatalf("unknown package %q", key)
	}
	return spec.WithClosure(repo, []pkggraph.PkgID{id})
}

// scrape fetches /metrics and parses it as a Prometheus scraper would,
// so every assertion doubles as exposition-format validation.
func scrape(t *testing.T, ts string) *telemetry.Scrape {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("content type %q", ct)
	}
	sc, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics output did not parse: %v", err)
	}
	return sc
}

func TestMetricsExpositionRoundTrip(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0.6})
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Request([]string{"libA/1.0/p"}, true); err != nil {
		t.Fatal(err)
	}

	sc := scrape(t, ts.URL)
	for name, want := range map[string]float64{
		"landlord_requests_total": 2,
		"landlord_hits_total":     1,
		"landlord_inserts_total":  1,
		"landlord_images":         1,
		"landlord_cached_bytes":   170,
		"landlord_unique_bytes":   170,
	} {
		if v, ok := sc.Value(name); !ok || v != want {
			t.Errorf("%s = %v (present=%v), want %v", name, v, ok, want)
		}
	}
	if v, ok := sc.Value("landlord_cache_efficiency"); !ok || v != 1 {
		t.Errorf("cache efficiency = %v (present=%v)", v, ok)
	}

	// Request-latency histograms, labelled by operation.
	if v, ok := sc.Value("landlord_request_duration_seconds_count",
		telemetry.Label{Key: "op", Value: "insert"}); !ok || v != 1 {
		t.Errorf("insert latency count = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_request_duration_seconds_count",
		telemetry.Label{Key: "op", Value: "hit"}); !ok || v != 1 {
		t.Errorf("hit latency count = %v (present=%v)", v, ok)
	}
	if sc.Types["landlord_request_duration_seconds"] != "histogram" {
		t.Errorf("latency metric type = %q", sc.Types["landlord_request_duration_seconds"])
	}

	// Per-route HTTP middleware counters: two POSTs to /v1/request.
	if v, ok := sc.Value("landlord_http_requests_total",
		telemetry.Label{Key: "route", Value: "/v1/request"},
		telemetry.Label{Key: "code", Value: "2xx"}); !ok || v != 2 {
		t.Errorf("http 2xx on /v1/request = %v (present=%v)", v, ok)
	}
	if v, ok := sc.Value("landlord_http_request_duration_seconds_count",
		telemetry.Label{Key: "route", Value: "/v1/request"}); !ok || v != 2 {
		t.Errorf("http latency count on /v1/request = %v (present=%v)", v, ok)
	}
}

func TestMetricsCountsErrorStatusClasses(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0.6})
	// A bad request: unknown package.
	if _, err := client.Request([]string{"no-such-pkg/0/p"}, true); err == nil {
		t.Fatal("unknown package accepted")
	}
	sc := scrape(t, ts.URL)
	if v, ok := sc.Value("landlord_http_requests_total",
		telemetry.Label{Key: "route", Value: "/v1/request"},
		telemetry.Label{Key: "code", Value: "4xx"}); !ok || v != 1 {
		t.Errorf("http 4xx on /v1/request = %v (present=%v)", v, ok)
	}
}

func TestEventsEndpoint(t *testing.T) {
	ts, client := testService(t, core.Config{Alpha: 0.6})
	specs := [][]string{{"libA/1.0/p"}, {"libA/1.0/p"}, {"libB/1.0/p"}}
	for _, s := range specs {
		if _, err := client.Request(s, true); err != nil {
			t.Fatal(err)
		}
	}

	events, err := client.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	wantOps := []string{"insert", "hit", "merge"}
	for i, ev := range events {
		if ev.Op != wantOps[i] {
			t.Errorf("event %d op = %q, want %q", i, ev.Op, wantOps[i])
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d seq = %d", i, ev.Seq)
		}
	}
	if len(events[2].Candidates) == 0 {
		t.Errorf("merge event carries no candidates: %+v", events[2])
	}

	// ?limit= keeps only the most recent events.
	events, err = client.Events(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Op != "hit" || events[1].Op != "merge" {
		t.Fatalf("limit=2 returned %+v", events)
	}

	// limit=0 explicitly returns an empty (but valid JSON) list.
	resp, err := http.Get(ts.URL + "/v1/events?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var empty []telemetry.Event
	if err := json.Unmarshal(body, &empty); err != nil || len(empty) != 0 {
		t.Fatalf("limit=0 body %q (err %v)", body, err)
	}

	// Bad limits are rejected.
	for _, q := range []string{"-1", "x"} {
		resp, err := http.Get(ts.URL + "/v1/events?limit=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("limit=%s -> status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestConfiguredTracerStillReceivesEvents(t *testing.T) {
	// A tracer supplied via core.Config must keep working alongside the
	// server's ring and histograms.
	var events []telemetry.Event
	tracer := tracerFunc(func(ev *telemetry.Event) { events = append(events, *ev) })
	repo := testRepo(t)
	srv, err := New(repo, core.Config{Alpha: 0.6, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.cmgr.Request(mustSpec(t, repo, "libA/1.0/p")); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("configured tracer saw %d events", len(events))
	}
	if got := srv.ring.Total(); got != 1 {
		t.Fatalf("ring saw %d events", got)
	}
}
