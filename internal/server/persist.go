package server

import (
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

// NewPersistent creates a Server whose cache state is durable: the
// manager is recovered from the store's checkpoint + WAL, the store is
// installed as the manager's commit hook, and the durability metrics
// join the server's registry. checkpointEvery > 0 compacts the log
// after that many requests; zero leaves checkpointing to shutdown and
// explicit POST /v1/checkpoint calls.
//
// If recovery replayed a WAL tail, the state is checkpointed
// immediately, so the next restart starts from a compact log.
func NewPersistent(repo *pkggraph.Repo, cfg core.Config, store *persist.Store, checkpointEvery int) (*Server, *persist.RecoveryReport, error) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(EventRingSize)
	cfg.Tracer = telemetry.Multi(cfg.Tracer, ring, newOpTracer(reg))
	mgr, rep, err := store.Recover(repo, cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &Server{repo: repo, reg: reg, ring: ring, mgr: mgr, store: store, ckptEvery: checkpointEvery}
	s.registerCacheMetrics()
	store.RegisterMetrics(reg, rep)
	if rep.RecordsReplayed > 0 {
		if _, err := store.Checkpoint(mgr.ExportState()); err != nil {
			return nil, nil, err
		}
	}
	return s, rep, nil
}

var errNoStore = errors.New("server: no persistence configured")

// CheckpointNow durably checkpoints the cache state and compacts the
// WAL. It fails with an error when the server was built without a
// store (New rather than NewPersistent).
func (s *Server) CheckpointNow() (persist.CheckpointInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked runs a checkpoint under s.mu, so no mutation can
// slip between exporting the state and sealing the WAL segment. The
// request counter resets only on success: a failed checkpoint (full
// disk) is retried at the next threshold crossing.
func (s *Server) checkpointLocked() (persist.CheckpointInfo, error) {
	if s.store == nil {
		return persist.CheckpointInfo{}, errNoStore
	}
	info, err := s.store.Checkpoint(s.mgr.ExportState())
	if err == nil {
		s.sinceCkpt = 0
	}
	return info, err
}

// maybeCheckpointLocked is the per-request compaction trigger; the
// caller holds s.mu. Errors are not fatal to the request that tripped
// the threshold — the WAL keeps the state recoverable, the
// checkpoint-age metric exposes the stall, and the next request
// retries.
func (s *Server) maybeCheckpointLocked() {
	if s.store == nil || s.ckptEvery <= 0 {
		return
	}
	s.sinceCkpt++
	if s.sinceCkpt >= s.ckptEvery {
		s.checkpointLocked()
	}
}

// handleCheckpoint is POST /v1/checkpoint: durably checkpoint now.
// Operators call it before planned maintenance; 412 means the daemon
// runs without a state directory.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	info, err := s.CheckpointNow()
	if errors.Is(err, errNoStore) {
		writeError(w, http.StatusPreconditionFailed, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// RecoveringHandler serves 503 for every route while the daemon
// replays its WAL at startup, so load balancers and clients (whose
// GETs retry on 503) hold off instead of seeing connection errors.
func RecoveringHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	})
}
