package server

import (
	"errors"
	"net/http"

	"repro/internal/core"
	"repro/internal/persist"
	"repro/internal/pkggraph"
	"repro/internal/telemetry"
)

// NewPersistent creates a Server whose cache state is durable: the
// manager is recovered from the store's checkpoint + WAL, the store is
// installed as the manager's commit hook, and the durability metrics
// join the server's registry. checkpointEvery > 0 compacts the log
// after that many requests; zero leaves checkpointing to shutdown and
// explicit POST /v1/checkpoint calls.
//
// If recovery replayed a WAL tail, the state is checkpointed
// immediately, so the next restart starts from a compact log.
func NewPersistent(repo *pkggraph.Repo, cfg core.Config, store *persist.Store, checkpointEvery int) (*Server, *persist.RecoveryReport, error) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(EventRingSize)
	cfg.Tracer = telemetry.Multi(cfg.Tracer, ring, newOpTracer(reg))
	sm, rep, err := store.RecoverSharded(repo, cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &Server{repo: repo, reg: reg, ring: ring, cmgr: sm, store: store, ckptEvery: checkpointEvery}
	s.initTracing()
	s.registerCacheMetrics()
	s.registerShardMetrics()
	s.registerContentionMetrics()
	s.registerResilienceMetrics()
	store.RegisterMetrics(reg, rep)
	if rep.RecordsReplayed > 0 {
		var ckptErr error
		sm.WithExclusiveAll(func(ms []*core.Manager) {
			_, ckptErr = store.Checkpoint(core.MergedState(ms))
		})
		if ckptErr != nil {
			return nil, nil, ckptErr
		}
	}
	return s, rep, nil
}

var errNoStore = errors.New("server: no persistence configured")

// CheckpointNow durably checkpoints the cache state and compacts the
// WAL. It fails with an error when the server was built without a
// store (New rather than NewPersistent).
func (s *Server) CheckpointNow() (persist.CheckpointInfo, error) {
	if s.store == nil {
		return persist.CheckpointInfo{}, errNoStore
	}
	var info persist.CheckpointInfo
	var err error
	s.cmgr.WithExclusiveAll(func(ms []*core.Manager) {
		info, err = s.checkpointAll(ms)
	})
	return info, err
}

// checkpointAll runs a checkpoint of the merged shard states; the
// caller holds every shard's write lock (WithExclusiveAll), so no
// mutation can slip between exporting the state and sealing the WAL
// segment. The request counter resets only on success: a failed
// checkpoint (full disk) is retried at the next threshold crossing.
func (s *Server) checkpointAll(ms []*core.Manager) (persist.CheckpointInfo, error) {
	if s.store == nil {
		return persist.CheckpointInfo{}, errNoStore
	}
	info, err := s.store.Checkpoint(core.MergedState(ms))
	if err == nil {
		s.sinceCkpt.Store(0)
	}
	return info, err
}

// maybeCheckpoint is the per-request compaction trigger, called after
// each successful request with no locks held. The counter is atomic
// and the checkpoint itself is single-flight: the first goroutine over
// the threshold takes the latch and runs the checkpoint (briefly
// freezing the cache via the write lock); everyone else keeps serving.
// Errors are not fatal to the request that tripped the threshold — the
// WAL keeps the state recoverable, the checkpoint-age metric exposes
// the stall, and a later request retries.
func (s *Server) maybeCheckpoint() {
	if s.store == nil || s.ckptEvery <= 0 {
		return
	}
	if s.sinceCkpt.Add(1) < int64(s.ckptEvery) {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	defer s.ckptBusy.Store(false)
	// Re-check under the latch: a checkpoint that completed while we
	// were acquiring it has already reset the counter.
	if s.sinceCkpt.Load() < int64(s.ckptEvery) {
		return
	}
	s.CheckpointNow()
}

// handleCheckpoint is POST /v1/checkpoint: durably checkpoint now.
// Operators call it before planned maintenance; 412 means the daemon
// runs without a state directory.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	info, err := s.CheckpointNow()
	if errors.Is(err, errNoStore) {
		writeError(w, http.StatusPreconditionFailed, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// RecoveringHandler serves the daemon's startup window while it
// replays its WAL: liveness (/v1/healthz) answers 200 — the process
// is up and must not be restarted mid-replay — while readiness
// (/v1/readyz) and every serving route answer 503 with Retry-After,
// so load balancers and clients (whose GETs retry on 503) hold off
// instead of seeing connection errors.
func RecoveringHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "state": "recovering"})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "recovering"})
	})
}
